package gen_test

import (
	"math"
	"sort"
	"testing"

	"aap/internal/algo/ref"
	"aap/internal/gen"
)

func TestPowerLawShape(t *testing.T) {
	g := gen.PowerLaw(2000, 8, 2.1, true, 1)
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 16000 {
		t.Fatalf("edges = %d, want 16000", g.NumEdges())
	}
	if !g.Directed() || !g.Weighted() {
		t.Fatal("flags wrong")
	}
	// Heavy tail: the max degree should far exceed the average.
	maxDeg := 0
	for v := int32(0); v < 2000; v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 40 {
		t.Errorf("max degree %d too small for a power law (avg 8)", maxDeg)
	}
	// Weights positive.
	for v := int32(0); v < 2000; v += 97 {
		for _, w := range g.OutWeights(v) {
			if w <= 0 {
				t.Fatalf("nonpositive weight %v", w)
			}
		}
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := gen.PowerLaw(300, 4, 2.1, true, 42)
	b := gen.PowerLaw(300, 4, 2.1, true, 42)
	c := gen.PowerLaw(300, 4, 2.1, true, 43)
	sig := func(g interface {
		OutDegree(int32) int
		NumVertices() int
	}) []int {
		out := make([]int, g.NumVertices())
		for v := range out {
			out[v] = g.OutDegree(int32(v))
		}
		return out
	}
	sa, sb, sc := sig(a), sig(b), sig(c)
	same, diff := true, false
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
		}
		if sa[i] != sc[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different graphs")
	}
	if !diff {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGridStructure(t *testing.T) {
	g := gen.Grid(5, 7, 2)
	if g.NumVertices() != 35 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Edges: horizontal 5*(7-1) + vertical (5-1)*7 = 30 + 28.
	if g.NumEdges() != 58 {
		t.Fatalf("edges = %d, want 58", g.NumEdges())
	}
	if g.Directed() {
		t.Fatal("grid should be undirected")
	}
	// A road network is connected.
	cc := ref.CC(g)
	for v := range cc {
		if cc[v] != cc[0] {
			t.Fatal("grid not connected")
		}
	}
	// Corner has degree 2, interior degree 4.
	v0, _ := g.IndexOf(0)
	if g.OutDegree(v0) != 2 {
		t.Errorf("corner degree %d", g.OutDegree(v0))
	}
	vi, _ := g.IndexOf(7 + 1) // row 1, col 1
	if g.OutDegree(vi) != 4 {
		t.Errorf("interior degree %d", g.OutDegree(vi))
	}
}

func TestSmallWorldShape(t *testing.T) {
	g := gen.SmallWorld(500, 3, 0.1, false, 3)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 1400 || g.NumEdges() > 1500 {
		t.Errorf("edges = %d, want ~1500", g.NumEdges())
	}
	cc := ref.CC(g)
	counts := map[int64]int{}
	for _, c := range cc {
		counts[c]++
	}
	// A ring lattice with k=3 is connected; mild rewiring keeps one
	// dominant component.
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	if best < 450 {
		t.Errorf("largest component %d of 500", best)
	}
}

func TestRandomGraph(t *testing.T) {
	g := gen.Random(100, 400, true, 5)
	if g.NumVertices() != 100 || g.NumEdges() != 400 {
		t.Fatalf("size %d/%d", g.NumVertices(), g.NumEdges())
	}
	var selfLoops int
	g.Edges(func(s, d int32, w float64) {
		if s == d {
			selfLoops++
		}
	})
	if selfLoops > 0 {
		t.Errorf("%d self loops", selfLoops)
	}
}

func TestBipartiteRatings(t *testing.T) {
	r := gen.Bipartite(200, 50, 10, 4, 0.9, 7)
	if r.Users != 200 || r.Products != 50 || r.Rank != 4 {
		t.Fatal("dimensions wrong")
	}
	total := len(r.TrainEdges) + len(r.HoldoutEdges)
	if total == 0 || total > 2000 {
		t.Fatalf("ratings = %d", total)
	}
	frac := float64(len(r.TrainEdges)) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("train fraction %.2f, want ~0.9", frac)
	}
	if int64(len(r.TrainEdges)) != r.G.NumEdges() {
		t.Errorf("graph edges %d != train edges %d", r.G.NumEdges(), len(r.TrainEdges))
	}
	// Edges go user -> product with ids in the documented ranges.
	for _, e := range r.TrainEdges[:10] {
		if e.Src < 0 || int(e.Src) >= 200 {
			t.Fatalf("bad user id %d", e.Src)
		}
		if int(e.Dst) < 200 || int(e.Dst) >= 250 {
			t.Fatalf("bad product id %d", e.Dst)
		}
	}
	// Planted low-rank structure: ratings should correlate with the
	// ground-truth factors (noise sigma is 0.1).
	var se float64
	for _, e := range r.TrainEdges {
		pred := dot(r.UserFactor[e.Src], r.ProdFactor[int(e.Dst)-200])
		se += (e.Weight - pred) * (e.Weight - pred)
	}
	rmse := math.Sqrt(se / float64(len(r.TrainEdges)))
	if rmse > 0.15 {
		t.Errorf("ground-truth RMSE %.3f, want ~0.1", rmse)
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestBipartitePopularitySkew(t *testing.T) {
	r := gen.Bipartite(500, 100, 8, 4, 1.0, 11)
	deg := make([]int, 100)
	for _, e := range r.TrainEdges {
		deg[int(e.Dst)-500]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	if deg[0] < 3*deg[50] {
		t.Errorf("product popularity not skewed: top %d vs median %d", deg[0], deg[50])
	}
}

func TestRoadNetShape(t *testing.T) {
	g := gen.RoadNet(40, 50, 7)
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d, want 2000", g.NumVertices())
	}
	if g.Directed() || !g.Weighted() {
		t.Fatal("flags wrong: want undirected weighted")
	}
	// Roughly the lattice edge count minus closures plus shortcuts.
	if m := g.NumEdges(); m < 3200 || m > 4200 {
		t.Fatalf("edges = %d, outside the expected lattice band", m)
	}
	// Weights positive and finite; degrees stay lattice-small.
	var sum, sumSq float64
	var n int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.OutDegree(v); d > 10 {
			t.Fatalf("degree %d at vertex %d: not road-like", d, v)
		}
		for _, w := range g.OutWeights(v) {
			if !(w > 0) || math.IsInf(w, 1) {
				t.Fatalf("bad weight %v", w)
			}
			sum += w
			sumSq += w * w
			n++
		}
	}
	// Dispersed weights: the kernel heuristic keys on CV >= 0.1; the
	// speed factors should put RoadNet far above that.
	mean := sum / float64(n)
	cv := math.Sqrt(sumSq/float64(n)-mean*mean) / mean
	if cv < 0.2 {
		t.Fatalf("weight dispersion CV = %.3f: too uniform for a road net", cv)
	}
	// High diameter: the SSSP tree from a corner should be deep in hops.
	dist := ref.SSSP(g, 0)
	reach := 0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reach++
		}
	}
	if reach < g.NumVertices()*8/10 {
		t.Fatalf("only %d/%d vertices reachable", reach, g.NumVertices())
	}
}

func TestRoadNetDeterministic(t *testing.T) {
	a := gen.RoadNet(12, 15, 5)
	b := gen.RoadNet(12, 15, 5)
	c := gen.RoadNet(12, 15, 6)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		wa, wb := a.OutWeights(v), b.OutWeights(v)
		if len(wa) != len(wb) {
			t.Fatalf("same seed, different degree at %d", v)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("same seed, different weight at %d[%d]", v, i)
			}
		}
	}
	if a.NumEdges() == c.NumEdges() {
		// Different seeds dropping exactly the same segments is
		// vanishingly unlikely at this size.
		t.Log("seed 5 and 6 produced equal edge counts (suspicious but possible)")
	}
}
