// Package gen produces the synthetic graphs used throughout the
// experiments as stand-ins for the paper's datasets: power-law social
// networks (Friendster, UKWeb), grid-like road networks (traffic),
// small-world graphs (GTgraph), uniform random graphs, and bipartite
// rating graphs (movieLens, Netflix).
//
// Every generator is deterministic given its seed.
package gen

import (
	"math"
	"math/rand"

	"aap/internal/graph"
)

// PowerLaw generates a directed scale-free graph with n vertices and
// roughly avgDeg*n edges using a Chung-Lu style degree-weighted endpoint
// sampler with exponent alpha (typically 2.1). Weights, when weighted is
// true, are uniform in (0, 100].
//
// It is the stand-in for Friendster and UKWeb: low diameter, heavy-tailed
// degrees, the skew that produces stragglers under uneven partitions.
func PowerLaw(n int, avgDeg float64, alpha float64, weighted bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Degree weights w_i = (i+1)^(-1/(alpha-1)) normalized implicitly by
	// the alias-free cumulative table.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -1/(alpha-1))
	}
	total := cum[n]
	pick := func() int32 {
		x := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	m := int(avgDeg * float64(n))
	b := graph.NewBuilder(true)
	if weighted {
		b.SetWeighted()
	}
	b.Reserve(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < m; e++ {
		s, d := pick(), pick()
		if s == d {
			d = int32((int(d) + 1) % n)
		}
		if weighted {
			b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*99)
		} else {
			b.AddEdge(graph.VertexID(s), graph.VertexID(d))
		}
	}
	return b.Build()
}

// Grid generates an undirected rows x cols grid with random positive edge
// weights, the stand-in for the traffic road network: high diameter, near
// uniform degree.
func Grid(rows, cols int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	b.SetWeighted()
	b.Reserve(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddVertex(id(r, c))
			if c+1 < cols {
				b.AddWeightedEdge(id(r, c), id(r, c+1), 1+rng.Float64()*9)
			}
			if r+1 < rows {
				b.AddWeightedEdge(id(r, c), id(r+1, c), 1+rng.Float64()*9)
			}
		}
	}
	return b.Build()
}

// RoadNet generates an undirected road-network-like graph: a jittered
// rows x cols lattice of intersections whose segment weights are the
// Euclidean length of the segment scaled by a skewed per-edge speed
// factor, with a small fraction of local segments dropped (closed
// roads — occasionally stranding a pocket of unreachable vertices, as
// real map extracts do) and sparse diagonal shortcuts. Compared to Grid
// it keeps the high diameter and near-uniform degree but disperses the
// weights, producing the long shortest-path trees on which
// Bellman-Ford-ordered relaxation re-relaxes worst — the workload the
// delta-stepping SSSP kernel is for.
func RoadNet(rows, cols int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	b.SetWeighted()
	b.Reserve(rows*cols, 2*rows*cols+rows*cols/16)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	// Jittered intersection coordinates; jitter stays below half the
	// lattice spacing so segment lengths are always positive.
	xs := make([]float64, rows*cols)
	ys := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := int(id(r, c))
			b.AddVertex(graph.VertexID(i))
			xs[i] = float64(c) + (rng.Float64()-0.5)*0.6
			ys[i] = float64(r) + (rng.Float64()-0.5)*0.6
		}
	}
	segment := func(a, d graph.VertexID) {
		dx, dy := xs[a]-xs[d], ys[a]-ys[d]
		length := math.Sqrt(dx*dx + dy*dy)
		// Skewed speed factor in [1, 4): most roads are fast, a few
		// crawl, so weights disperse instead of clustering at the mean.
		speed := 1 + 3*rng.Float64()*rng.Float64()
		b.AddWeightedEdge(a, d, length*speed)
	}
	const (
		pClosed = 0.06 // local segment dropped
		pDiag   = 0.04 // diagonal shortcut added
	)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() >= pClosed {
				segment(id(r, c), id(r, c+1))
			}
			if r+1 < rows && rng.Float64() >= pClosed {
				segment(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < pDiag {
				segment(id(r, c), id(r+1, c+1))
			}
		}
	}
	return b.Build()
}

// SmallWorld generates an undirected Watts-Strogatz small-world graph:
// a ring lattice with k neighbors per side and rewiring probability p.
// It is the GTgraph "small world" stand-in used for the large synthetic
// experiments.
func SmallWorld(n, k int, p float64, weighted bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	if weighted {
		b.SetWeighted()
	}
	b.Reserve(n, n*k)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	add := func(s, d int) {
		if s == d {
			return
		}
		if weighted {
			b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*9)
		} else {
			b.AddEdge(graph.VertexID(s), graph.VertexID(d))
		}
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			d := (i + j) % n
			if rng.Float64() < p {
				d = rng.Intn(n)
			}
			add(i, d)
		}
	}
	return b.Build()
}

// Random generates a directed Erdos-Renyi style graph with m edges chosen
// uniformly among ordered pairs.
func Random(n, m int, weighted bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(true)
	if weighted {
		b.SetWeighted()
	}
	b.Reserve(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < m; e++ {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			d = (d + 1) % n
		}
		if weighted {
			b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*99)
		} else {
			b.AddEdge(graph.VertexID(s), graph.VertexID(d))
		}
	}
	return b.Build()
}

// Ratings describes a synthetic bipartite rating graph generated by
// Bipartite, the stand-in for movieLens and Netflix. Ratings are produced
// from a planted rank-k factorization plus Gaussian noise, so collaborative
// filtering has a recoverable ground truth.
type Ratings struct {
	G            *graph.Graph // bipartite: user -> product edges with rating weights
	Users        int
	Products     int
	Rank         int
	UserFactor   [][]float64 // ground-truth latent factors
	ProdFactor   [][]float64
	TrainEdges   []graph.Edge // |E_T| = trainFrac of all ratings
	HoldoutEdges []graph.Edge
}

// UserID returns the external id of user u (users occupy ids [0, Users)).
func (r *Ratings) UserID(u int) graph.VertexID { return graph.VertexID(u) }

// ProductID returns the external id of product p (products occupy ids
// [Users, Users+Products)).
func (r *Ratings) ProductID(p int) graph.VertexID { return graph.VertexID(r.Users + p) }

// Bipartite generates a rating graph with the given numbers of users and
// products, ratingsPerUser known ratings per user drawn with a power-law
// product popularity, planted rank latent factors, and trainFrac of
// ratings used for training (the paper uses 90%).
func Bipartite(users, products, ratingsPerUser, rank int, trainFrac float64, seed int64) *Ratings {
	rng := rand.New(rand.NewSource(seed))
	r := &Ratings{Users: users, Products: products, Rank: rank}
	r.UserFactor = randomFactors(users, rank, rng)
	r.ProdFactor = randomFactors(products, rank, rng)

	cum := make([]float64, products+1)
	for i := 0; i < products; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -0.7)
	}
	total := cum[products]
	pickProduct := func() int {
		x := rng.Float64() * total
		lo, hi := 0, products
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.Reserve(users+products, users*ratingsPerUser)
	for u := 0; u < users; u++ {
		b.AddVertex(graph.VertexID(u))
	}
	for p := 0; p < products; p++ {
		b.AddVertex(graph.VertexID(users + p))
	}
	seen := make(map[int64]bool)
	for u := 0; u < users; u++ {
		for k := 0; k < ratingsPerUser; k++ {
			p := pickProduct()
			key := int64(u)*int64(products) + int64(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			rating := dot(r.UserFactor[u], r.ProdFactor[p]) + rng.NormFloat64()*0.1
			e := graph.Edge{Src: r.UserID(u), Dst: r.ProductID(p), Weight: rating}
			if rng.Float64() < trainFrac {
				r.TrainEdges = append(r.TrainEdges, e)
				b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
			} else {
				r.HoldoutEdges = append(r.HoldoutEdges, e)
			}
		}
	}
	r.G = b.Build()
	return r
}

func randomFactors(n, rank int, rng *rand.Rand) [][]float64 {
	f := make([][]float64, n)
	for i := range f {
		row := make([]float64, rank)
		for j := range row {
			row[j] = rng.NormFloat64() / math.Sqrt(float64(rank))
		}
		f[i] = row
	}
	return f
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
