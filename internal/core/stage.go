package core

// Staged sends: the lock-free path a parallel kernel uses to emit
// designated messages from several goroutines at once.
//
// Context.Send and friends are single-goroutine by contract (the engine
// invokes a Program from one worker at a time). A kernel that sweeps a
// fragment with k shards instead asks for k Stages, hands stage w to
// shard w, and calls MergeStages after the sweep's barrier. Each Stage
// buffers messages per destination privately — no lock, no atomic, no
// sharing — and MergeStages splices the stage buffers into the context's
// outgoing buffers in stage order.
//
// Determinism contract: when a kernel partitions its work into
// contiguous chunks and assigns chunk w to stage w, the merged
// per-destination message order equals the order a sequential pass over
// the same items would have produced, for any stage count. Kernels
// whose aggregate function is order-sensitive (sum) rely on this;
// min-folded kernels get it for free.

// Stage is a single-goroutine view of a Context's send side. A Stage is
// owned by exactly one goroutine between Stages and MergeStages.
type Stage[T any] struct {
	c    *Context[T]
	out  [][]VMsg[T]
	work int64
}

// Stages returns k reusable stages, one per kernel shard. The returned
// stages are valid until the next MergeStages call. Not safe
// concurrently with Send or MergeStages.
func (c *Context[T]) Stages(k int) []*Stage[T] {
	for len(c.stages) < k {
		c.stages = append(c.stages, &Stage[T]{c: c, out: make([][]VMsg[T], len(c.out))})
	}
	return c.stages[:k]
}

// push appends one message to destination j's stage buffer, drawing
// recycled slices from the shared pool (sync.Pool is safe for
// concurrent use, so stages never contend with each other).
func (s *Stage[T]) push(j int, m VMsg[T]) {
	if s.out[j] == nil {
		s.out[j] = s.c.pool.get()
	}
	s.out[j] = append(s.out[j], m)
}

// Send stages the value of update parameter v for the worker owning v,
// exactly like Context.Send but callable from the stage's goroutine.
func (s *Stage[T]) Send(v int32, val T) {
	c := s.c
	s.push(c.part.Owner(v), VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
}

// SendTo stages val for vertex v directly to worker j (the arbitrary
// routing of the MapReduce simulation).
func (s *Stage[T]) SendTo(j int, v int32, val T) {
	c := s.c
	s.push(j, VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
}

// SendToHolders stages val for every fragment holding a copy of owned
// vertex v.
func (s *Stage[T]) SendToHolders(v int32, val T) {
	c := s.c
	for _, j := range c.part.Holders(v) {
		if int(j) == c.frag.ID {
			continue
		}
		s.push(int(j), VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
	}
}

// AddWork reports work units from the stage's goroutine; MergeStages
// folds them into the context's counter.
func (s *Stage[T]) AddWork(n int) { s.work += int64(n) }

// MergeStages splices every stage's buffered messages into the
// context's outgoing buffers in stage order and resets the stages. The
// first stage to hit an empty destination donates its slice wholesale;
// later stages append and recycle. Must be called from the context's
// owning goroutine after the parallel section's barrier.
func (c *Context[T]) MergeStages() {
	for _, s := range c.stages {
		for j, msgs := range s.out {
			if len(msgs) == 0 {
				if msgs != nil {
					c.pool.put(msgs)
					s.out[j] = nil
				}
				continue
			}
			if c.out[j] == nil {
				c.out[j] = msgs // adopt: no copy on the common single-writer path
			} else {
				c.out[j] = append(c.out[j], msgs...)
				c.pool.put(msgs)
			}
			s.out[j] = nil
		}
		c.work += s.work
		s.work = 0
	}
}
