package core_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

// tcpOpts runs the engine with every batch and coordinator token
// traveling the loopback TCP plane instead of in-proc channels.
func tcpOpts() core.Options {
	return core.Options{
		Mode:      core.AAP,
		Timeout:   time.Minute,
		Transport: &core.TransportOptions{TCP: true},
	}
}

// TestTCPPlaneMatchesInProcSSSP pins the plane-independence contract for
// the idempotent min-fold kernel: serializing every designated message
// through the wire format and bouncing it off a real socket must change
// nothing about the result, bit for bit, at every forced shard count.
func TestTCPPlaneMatchesInProcSSSP(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p := mustPartition(t, g, 4, partition.Hash{})
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			base, err := core.Run(p, sssp.JobShards(0, k), core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, sssp.JobShards(0, k), tcpOpts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.WireBytesOut == 0 || res.Stats.WireBytesIn == 0 {
				t.Fatalf("TCP run shipped no wire bytes: %+v", res.Stats)
			}
			for v := range base.Values {
				if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
					t.Fatalf("vertex %d: in-proc %v, tcp %v", v, b, r)
				}
			}
		})
	}
}

// TestTCPPlaneMatchesInProcCC repeats the contract for CC's exact int64
// labels.
func TestTCPPlaneMatchesInProcCC(t *testing.T) {
	g := gen.SmallWorld(400, 2, 0.05, false, 2)
	p := mustPartition(t, g, 4, partition.Hash{})
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			base, err := core.Run(p, cc.JobShards(k), core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, cc.JobShards(k), tcpOpts())
			if err != nil {
				t.Fatal(err)
			}
			for v := range base.Values {
				if base.Values[v] != res.Values[v] {
					t.Fatalf("vertex %d: in-proc %d, tcp %d", v, base.Values[v], res.Values[v])
				}
			}
		})
	}
}

// TestTCPPlaneMatchesInProcPageRank allows FP tolerance: AAP folds
// PageRank's sum aggregate in arrival order, and the wire plane shifts
// arrival timing — which changes both rounding and WHICH sub-Tol deltas
// get parked, so per-vertex scores can legitimately differ by a few
// multiples of the kernel's Tol (1e-6). The bound here is 100×Tol,
// far below anything a ranking consumer can observe.
func TestTCPPlaneMatchesInProcPageRank(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.2, false, 3)
	p := mustPartition(t, g, 4, partition.Hash{})
	base, err := core.Run(p, pagerank.Job(pagerank.Config{}), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, pagerank.Job(pagerank.Config{}), tcpOpts())
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Values {
		d := math.Abs(base.Values[v] - res.Values[v])
		if rel := d / math.Max(1, math.Abs(base.Values[v])); rel > 1e-4 {
			t.Fatalf("vertex %d: in-proc %v, tcp %v (rel Δ=%g)", v, base.Values[v], res.Values[v], rel)
		}
	}
}

// TestTCPPlaneChaosKillRecovers combines both robustness layers in one
// process: the full fault schedule of the chaos tests (checkpoint every
// round, worker 1 killed at its first incremental round) with every
// message and token on the wire. Recovery must replay to bit-identical
// output.
func TestTCPPlaneChaosKillRecovers(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p := mustPartition(t, g, 4, partition.Hash{})
	base, err := core.Run(p, sssp.JobShards(0, 2), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(42)
	opts.Transport = &core.TransportOptions{TCP: true}
	res, err := core.Run(p, sssp.JobShards(0, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: fault-free %v, tcp-recovered %v", v, b, r)
		}
	}
}

// TestTCPPlaneRequiresCodec: a job without EncodeVal/DecodeVal must fail
// fast, not panic mid-run.
func TestTCPPlaneRequiresCodec(t *testing.T) {
	g := gen.Random(50, 100, true, 7)
	p := mustPartition(t, g, 2, partition.Hash{})
	job := sssp.Job(0)
	job.EncodeVal = nil
	if _, err := core.Run(p, job, tcpOpts()); err == nil {
		t.Fatal("TCP run without a value codec succeeded")
	}
}
