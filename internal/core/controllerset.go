package core

// ControllerSet builds the per-worker delay-stretch controllers for a run
// together with the shared state that Hsync mode needs. It is the facade
// through which engines outside this package (the virtual-time simulator)
// instantiate the same δ functions the concurrent engine uses.
type ControllerSet struct {
	ctrls []Controller
	hsync *hsyncState
}

// NewControllerSet creates one controller per worker for the options.
func NewControllerSet(opts Options, m int) *ControllerSet {
	s := &ControllerSet{ctrls: make([]Controller, m)}
	if opts.Mode == Hsync {
		s.hsync = newHsyncState(opts.HsyncWindow)
	}
	for i := range s.ctrls {
		s.ctrls[i] = newController(opts, s.hsync)
	}
	return s
}

// Controller returns worker i's controller.
func (s *ControllerSet) Controller(i int) Controller { return s.ctrls[i] }

// ObserveConsumed feeds message consumption into the Hsync throughput
// window; a no-op for other modes.
func (s *ControllerSet) ObserveConsumed(n int64) {
	if s.hsync != nil {
		s.hsync.processed.Add(n)
	}
}

// ObserveRound feeds round completion into the Hsync phase switcher; a
// no-op for other modes.
func (s *ControllerSet) ObserveRound(rmax int32) {
	if s.hsync != nil {
		s.hsync.observe(rmax, 0)
	}
}
