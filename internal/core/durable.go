package core

import (
	"fmt"
	"os"
	"time"

	"aap/internal/checkpoint"
	"aap/internal/codec"
	"aap/internal/partition"
)

// resumeState carries a decoded durable snapshot from Resume into run.
type resumeState[T any] struct {
	snap    *checkpoint.Snapshot[VMsg[T]]
	store   *checkpoint.DurableStore
	bytes   int64     // record payload bytes read
	t0      time.Time // when Resume opened the directory
	seconds float64   // open → decode → restore → relaunch, set by run
}

// Resume restarts job from the newest sealed epoch in
// opts.Checkpoint.Dir: it rebuilds every worker's program from the
// durably stored snapshot (over RPC for Options.Transport remote
// workers), replays the captured in-flight batches through the normal
// inbox path, and continues the run — bit-identical to the fault-free
// execution for idempotent aggregates, by the same argument that backs
// in-process rollback recovery. A record with a torn tail or CRC
// mismatch is skipped in favor of the previous sealed epoch; when no
// record decodes at all the returned error wraps
// checkpoint.ErrNoSealedEpoch.
func Resume[T any](p *partition.Partitioned, job Job[T], opts Options) (*Result[T], error) {
	if opts.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("core: %s: Resume requires Options.Checkpoint.Dir", job.Name)
	}
	if job.EncodeVal == nil || job.DecodeVal == nil {
		return nil, fmt.Errorf("core: %s: durable checkpoints require Job.EncodeVal/DecodeVal", job.Name)
	}
	t0 := time.Now()
	d, err := checkpoint.OpenDurable(opts.Checkpoint.Dir, durableOptions(opts.Checkpoint))
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", job.Name, err)
	}
	epoch, payload, err := d.NewestSealed()
	if err != nil {
		return nil, fmt.Errorf("core: %s: resume: %w", job.Name, err)
	}
	snap, err := decodeDurableSnapshot(&job, epoch, payload)
	if err != nil {
		return nil, fmt.Errorf("core: %s: resume: sealed epoch %d undecodable: %w", job.Name, epoch, err)
	}
	if len(snap.States) != p.M {
		return nil, fmt.Errorf("core: %s: resume: snapshot has %d workers, partition has %d", job.Name, len(snap.States), p.M)
	}
	for _, f := range snap.InFlight {
		if f.From < 0 || int(f.From) >= p.M || f.To < 0 || int(f.To) >= p.M {
			return nil, fmt.Errorf("core: %s: resume: in-flight batch %d->%d outside %d workers", job.Name, f.From, f.To, p.M)
		}
	}
	return run(p, job, opts, &resumeState[T]{snap: snap, store: d, bytes: int64(len(payload)), t0: t0})
}

func durableOptions(c CheckpointOptions) checkpoint.DurableOptions {
	return checkpoint.DurableOptions{SyncEvery: c.SyncEvery, Retain: c.Retain, FS: c.FS}
}

// setupDurable wires the seal-to-disk tee: the store's onSeal hook
// hands sealed snapshots to a buffered channel (non-blocking — the hook
// runs under the store lock on a worker goroutine) and the persister
// goroutine encodes and writes them. A full channel drops the offered
// seal; the durable tail then lags the in-memory store by one epoch
// until the next seal, which only widens the resume fallback, never
// corrupts it.
func (e *engine[T]) setupDurable(rs *resumeState[T]) error {
	if e.ckpt == nil {
		return fmt.Errorf("core: %s: Checkpoint.Dir requires Checkpoint.EveryRounds > 0", e.job.Name)
	}
	if e.job.EncodeVal == nil || e.job.DecodeVal == nil {
		return fmt.Errorf("core: %s: durable checkpoints require Job.EncodeVal/DecodeVal", e.job.Name)
	}
	if rs != nil {
		e.durable = rs.store
	} else {
		d, err := checkpoint.OpenDurable(e.opts.Checkpoint.Dir, durableOptions(e.opts.Checkpoint))
		if err != nil {
			return fmt.Errorf("core: %s: %w", e.job.Name, err)
		}
		e.durable = d
	}
	e.persistCh = make(chan *checkpoint.Snapshot[VMsg[T]], 8)
	e.persistQuit = make(chan struct{})
	e.ckpt.SetOnSeal(func(s *checkpoint.Snapshot[VMsg[T]]) {
		select {
		case e.persistCh <- s:
		default:
			// The persister is further than 8 seals behind (slow disk or
			// injected write stall): dropping the seal only widens the
			// resume fallback, but silently is how durability rots —
			// count it and say so once.
			e.droppedSeals.Add(1)
			e.dropWarnOnce.Do(func() {
				fmt.Fprintf(os.Stderr, "core: %s: durable persister lagging, dropped sealed epoch %d (see RunStats.DroppedSeals)\n", e.job.Name, s.Epoch)
			})
		}
	})
	return nil
}

// degradeDurable records the first durable write failure and turns the
// persister off: the run continues non-durable (the in-memory sealed
// snapshot still backs rollback) instead of failing or wedging the seal
// path on a full/broken disk. Surfaced in RunStats.DurableDegraded.
func (e *engine[T]) degradeDurable(err error) {
	e.degradeMu.Lock()
	first := e.degraded == ""
	if first {
		e.degraded = err.Error()
	}
	e.degradeMu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "core: %s: durable checkpoints degraded, run continues non-durable: %v\n", e.job.Name, err)
	}
}

func (e *engine[T]) durableDegraded() bool {
	e.degradeMu.Lock()
	defer e.degradeMu.Unlock()
	return e.degraded != ""
}

// persistLoop drains sealed snapshots to disk until persistQuit closes,
// then flushes whatever is still queued. Seals arriving after the final
// flush (a straggler control frame past run teardown) stay in the
// buffered channel and are dropped with it.
func (e *engine[T]) persistLoop() {
	defer e.persistWg.Done()
	write := func(s *checkpoint.Snapshot[VMsg[T]]) {
		if e.durableDegraded() {
			return // disk already failed once; don't keep hammering it
		}
		payload := encodeDurableSnapshot(&e.job, s)
		if err := e.durable.WriteEpoch(s.Epoch, payload); err != nil {
			e.degradeDurable(fmt.Errorf("core: %s: durable checkpoint epoch %d: %w", e.job.Name, s.Epoch, err))
		}
	}
	for {
		select {
		case s := <-e.persistCh:
			write(s)
		case <-e.persistQuit:
			for {
				select {
				case s := <-e.persistCh:
					write(s)
				default:
					return
				}
			}
		}
	}
}

// seedResume rewrites the freshly built engine to the durable snapshot
// before any worker starts: the in-memory store is seeded so rollback
// and epoch numbering continue from the stored epoch, every program is
// restored through its Snapshotter (an RPC for remote workers — the
// plane is already up), and the captured channel state is re-injected
// with the same sent/outstanding accounting a rollback uses, so
// termination waits for the replayed batches and the next epoch cannot
// seal before they drain.
func (e *engine[T]) seedResume(snap *checkpoint.Snapshot[VMsg[T]]) error {
	e.ckpt.Seed(snap)
	rounds := make([]int32, e.p.M)
	for i, w := range e.workers {
		if err := w.prog.(Snapshotter).RestoreState(snap.States[i]); err != nil {
			return fmt.Errorf("core: %s: worker %d failed to restore sealed epoch %d: %w", e.job.Name, i, snap.Epoch, err)
		}
		w.rounds = snap.Rounds[i]
		w.pevalDone = snap.PEvalDone[i]
		w.epoch = snap.Epoch
		rounds[i] = w.rounds
	}
	e.coord.reset(rounds)
	for _, f := range snap.InFlight {
		msgs := append([]VMsg[T](nil), f.Msgs...)
		e.coord.addSent(int64(len(msgs)))
		e.ckpt.BatchSent(snap.Epoch)
		e.workers[f.To].inbox.put(batch[T]{from: f.From, epoch: snap.Epoch, msgs: msgs})
	}
	return nil
}

// encodeDurableSnapshot serializes a sealed snapshot for the record
// file, each captured message as (vertex, round, from, value) with the
// job's value codec.
func encodeDurableSnapshot[T any](job *Job[T], s *checkpoint.Snapshot[VMsg[T]]) []byte {
	return checkpoint.EncodeSnapshot(s, func(dst []byte, m VMsg[T]) []byte {
		dst = codec.AppendInt32(dst, m.V)
		dst = codec.AppendInt32(dst, m.Round)
		dst = codec.AppendInt32(dst, m.From)
		return job.EncodeVal(dst, m.Val)
	})
}

func decodeDurableSnapshot[T any](job *Job[T], epoch int32, payload []byte) (*checkpoint.Snapshot[VMsg[T]], error) {
	return checkpoint.DecodeSnapshot(epoch, payload, func(r *codec.Reader) VMsg[T] {
		m := VMsg[T]{V: r.Int32(), Round: r.Int32(), From: r.Int32()}
		m.Val = job.DecodeVal(r)
		return m
	})
}
