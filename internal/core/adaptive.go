package core

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Forever is the delay stretch meaning "suspend until the worker's state
// changes" (a new message arrives or relative progress advances).
var Forever = math.Inf(1)

// View is the information a delay-stretch controller sees when deciding
// whether worker i should start its next round: the worker's relative
// progress and the staleness of its buffer, in the paper's notation
// (r_i, r_min, r_max, η_i) plus the runtime estimates used by Eq. (1).
type View struct {
	Worker     int
	NumWorkers int

	Round int32 // r_i: rounds completed by this worker
	RMin  int32 // smallest round among active workers
	RMax  int32 // largest round among all workers

	Eta      int // η_i: messages in B_x̄i counted by distinct origin worker
	Buffered int // raw message count in B_x̄i

	RoundTime    float64 // t_i: predicted duration of the next round (seconds)
	AvgRoundTime float64 // mean predicted round time across workers
	Rate         float64 // s_i: predicted message arrival rate (messages/second)
	AvgRate      float64 // mean arrival rate across workers
	IdleTime     float64 // T_idle: time since this worker's last round ended
}

// Controller decides the delay stretch DS_i of one worker. A Controller
// instance belongs to a single worker, so implementations may keep
// per-worker adaptive state (such as the accumulation target L_i) without
// synchronization.
type Controller interface {
	// Delay returns the delay stretch in seconds: 0 runs the next round
	// immediately, Forever suspends until the state changes, anything
	// else holds the worker for that long to accumulate messages.
	Delay(v View) float64
}

// Mode selects a parallel model; each is a Controller instantiation
// (Section 3, "special cases").
type Mode int

// Parallel models supported by the engine.
const (
	// AAP is the adaptive model of the paper: Eq. (1) with dynamically
	// adjusted accumulation targets.
	AAP Mode = iota
	// BSP synchronizes all workers: DS_i = Forever while r_i > r_min.
	BSP
	// AP never delays: DS_i = 0 whenever the buffer is nonempty.
	AP
	// SSP bounds staleness: DS_i = Forever while r_i - r_min > c.
	SSP
	// Hsync switches the whole cluster between AP and BSP phases on a
	// throughput heuristic, emulating PowerSwitch.
	Hsync
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case AAP:
		return "AAP"
	case BSP:
		return "BSP"
	case AP:
		return "AP"
	case SSP:
		return "SSP"
	case Hsync:
		return "Hsync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// bspController implements δ for BSP: a worker that has completed more
// rounds than the slowest active worker is suspended, so no worker can
// outpace the others.
type bspController struct{}

func (bspController) Delay(v View) float64 {
	if v.Round > v.RMin {
		return Forever
	}
	return 0
}

// apController implements δ for AP: never wait.
type apController struct{}

func (apController) Delay(View) float64 { return 0 }

// sspController implements δ for SSP with staleness bound C: the fastest
// worker may outpace the slowest by at most C rounds.
type sspController struct{ C int32 }

func (c sspController) Delay(v View) float64 {
	if v.Round-v.RMin > c.C {
		return Forever
	}
	return 0
}

// aapController implements the dynamic adjustment function δ of Eq. (1):
//
//	DS_i = Forever            if ¬S(r_i, r_min, r_max) or η_i = 0
//	DS_i = T_Li − T_idle      if S and 1 ≤ η_i < L_i
//	DS_i = 0                  if S and η_i ≥ L_i
//
// where L_i predicts how many messages are worth accumulating before the
// next round and T_Li = (L_i − η_i)/s_i estimates the time to accumulate
// them. L_i starts at the user bound L⊥ and is raised to
// max(η_i, L⊥) + Δt_i·s_i whenever the worker's arrival rate is above the
// cluster average, i.e. when more up-to-date messages are on the way.
type aapController struct {
	// LFloor is L⊥, the user-selectable initial accumulation bound.
	LFloor float64
	// C is the bounded-staleness constant for predicate S; C <= 0 means
	// S is constantly true (SSSP, CC, PageRank need no staleness bound,
	// Section 5.3).
	C int32
	// DeltaFrac is the fraction of the predicted round time used as the
	// extra accumulation window Δt_i.
	DeltaFrac float64

	l float64 // L_i
}

// newAAPController returns an AAP controller with the paper's defaults.
func newAAPController(lFloor float64, c int32) *aapController {
	return &aapController{LFloor: lFloor, C: c, DeltaFrac: 0.5, l: lFloor}
}

func (c *aapController) Delay(v View) float64 {
	// Predicate S: false only under bounded staleness when this worker
	// is the fastest and too far ahead of the slowest.
	if c.C > 0 && v.Round >= v.RMax && v.Round-v.RMin > c.C {
		return Forever
	}
	if v.Eta == 0 {
		return Forever
	}
	if v.Rate <= 0 || v.RoundTime <= 0 {
		return 0 // no estimates yet: behave like AP
	}
	// Only stragglers accumulate: a worker whose predicted round time is
	// near or below the cluster average runs as soon as it has messages
	// (the fast workers "automatically group together and run essentially
	// BSP within the group, while the group and slow workers run under
	// AP" — Section 3). A straggler folds many fast-worker updates into
	// one slow round by waiting, which is where AAP converges in fewer
	// rounds (Example 4).
	if v.AvgRoundTime > 0 && v.RoundTime <= 1.25*v.AvgRoundTime {
		return 0
	}
	// Δt_i is the straggler's accumulation window, a fraction of the
	// cluster-average round time: waiting about half of everyone else's
	// round lets one slow round fold one round's worth of updates from
	// every fast worker instead of cascading each batch separately.
	// (Scaling by the straggler's own round time would over-wait right
	// after an expensive PEval whose successor rounds are cheap bounded
	// incremental steps.)
	dt := c.DeltaFrac * v.AvgRoundTime
	if v.Rate*dt < 1 {
		// No messages are predicted to arrive within the window; waiting
		// buys nothing (the paper's "DS_i = 0 since no messages are
		// predicted to arrive" case).
		return 0
	}
	// L_i = max(η_i + Δt_i·s_i, L⊥): the staleness we expect to absorb
	// within the window (Section 3's adjustment rule).
	c.l = math.Max(float64(v.Eta)+v.Rate*dt, c.LFloor)
	if float64(v.Eta) >= c.l {
		return 0
	}
	// T_Li = (L_i − η_i)/s_i, bounded by the window, less the time
	// already spent idle.
	ds := (c.l - float64(v.Eta)) / v.Rate
	if ds > dt {
		ds = dt
	}
	ds -= v.IdleTime
	if ds <= 0 {
		return 0
	}
	return ds
}

// NextRoundTimeEWMA updates the predicted round time t_i. The estimate
// is asymmetric: it tracks decreases quickly (bounded-incremental
// IncEval rounds get cheap right after an expensive PEval, and a stale
// high estimate would make the AAP controller over-wait) but rises
// conservatively.
func NextRoundTimeEWMA(prev, dur float64) float64 {
	if prev == 0 {
		return dur
	}
	if dur < prev {
		return 0.25*prev + 0.75*dur
	}
	return 0.5*prev + 0.5*dur
}

// nextRoundTimeEWMA is the package-internal alias used by the engine.
func nextRoundTimeEWMA(prev, dur float64) float64 { return NextRoundTimeEWMA(prev, dur) }

// hsyncState is the shared phase of an Hsync run: every worker consults
// it, and the phase flips between AP and BSP on a throughput window, the
// PowerSwitch heuristic. Mode switches are whole-cluster, which is
// exactly the rigidity AAP removes.
type hsyncState struct {
	bspPhase atomic.Bool
	// processed counts messages consumed in the current window.
	processed atomic.Int64
	// windowRounds is how many global rounds a phase lasts.
	windowRounds int32
	lastSwitch   atomic.Int32 // r_max at the last switch
	lastScore    atomic.Int64 // messages consumed during the previous window
}

func newHsyncState(window int32) *hsyncState {
	if window <= 0 {
		window = 4
	}
	return &hsyncState{windowRounds: window}
}

// observe is called by workers as rounds complete; it flips the phase
// when the current phase processes fewer messages per window than the
// previous one did.
func (h *hsyncState) observe(rmax int32, consumed int64) {
	last := h.lastSwitch.Load()
	if rmax-last < h.windowRounds {
		return
	}
	if !h.lastSwitch.CompareAndSwap(last, rmax) {
		return
	}
	score := h.processed.Swap(0)
	prev := h.lastScore.Swap(score)
	if prev > 0 && score < prev {
		h.bspPhase.Store(!h.bspPhase.Load())
	}
	_ = consumed
}

// hsyncController follows the shared phase: BSP semantics during BSP
// phases, AP semantics otherwise.
type hsyncController struct{ state *hsyncState }

func (c hsyncController) Delay(v View) float64 {
	if c.state.bspPhase.Load() {
		if v.Round > v.RMin {
			return Forever
		}
		return 0
	}
	return 0
}

// newController builds the Controller for one worker under the options.
func newController(opts Options, hs *hsyncState) Controller {
	switch opts.Mode {
	case BSP:
		return bspController{}
	case AP:
		return apController{}
	case SSP:
		return sspController{C: int32(opts.Staleness)}
	case Hsync:
		return hsyncController{state: hs}
	default:
		return newAAPController(float64(opts.LFloor), int32(opts.Staleness))
	}
}
