// Package core implements the AAP (Adaptive Asynchronous Parallel) model
// of Fan et al., SIGMOD 2018, together with the GRAPE PIE programming
// model it parallelizes.
//
// A graph computation is expressed as a Job: a factory for per-fragment
// Programs (PEval + IncEval, Section 2 of the paper), an aggregate
// function f_aggr resolving conflicting updates to the same update
// parameter, and a wire-size function for communication accounting.
//
// The Run function executes a Job over a partitioned graph under a
// configurable parallel model: BSP, AP, SSP and AAP are all instances of
// the same delay-stretch controller (Section 3).
package core

import (
	"slices"
	"sort"
	"sync"

	"aap/internal/codec"
	"aap/internal/partition"
)

// VMsg is a designated message (x, val, r) in the paper's terms: the
// value of the update parameter of border vertex V computed at round
// Round by worker From.
type VMsg[T any] struct {
	V     int32 // global vertex index of the update parameter
	Val   T
	Round int32
	From  int32 // sending worker
}

// Program is the per-fragment half of a PIE program. A Program instance
// is created per fragment by Job.New and invoked by a single worker at a
// time, so it may keep unguarded local state (components, heaps, factor
// matrices) across rounds.
type Program[T any] interface {
	// PEval performs partial evaluation on the fragment: it computes the
	// local partial result and sends initial values of update parameters
	// for border vertices through ctx.Send.
	PEval(ctx *Context[T])

	// IncEval incrementally updates the partial result given the
	// aggregated changes msgs to the fragment's update parameters. msgs
	// holds at most one entry per vertex (the engine folds the buffer
	// B_x̄i with the job's aggregate function first) in ascending vertex
	// order. The slice is scratch the engine reuses on the next round:
	// IncEval may read it freely during the call but must not retain it.
	// IncEval must run to local quiescence: after it returns with no new
	// messages the partial result is a local fixpoint.
	IncEval(msgs []VMsg[T], ctx *Context[T])

	// Get returns the current value for an owned vertex, used by
	// Assemble to collect the global result.
	Get(v int32) T
}

// Snapshotter is the optional fault-tolerance half of a Program: a
// kernel that implements it can participate in Chandy-Lamport
// checkpointing (Options.Checkpoint) and recover from worker failure.
// Programs that don't implement it still run — the engine fails fast
// only when checkpointing is actually requested.
//
// The engine calls both methods at round boundaries only, when the
// kernel's transient worklists (frontiers, buckets, heaps) are empty by
// the IncEval local-quiescence contract, so implementations serialize
// just the durable per-vertex state plus their internal round counters.
type Snapshotter interface {
	// SnapshotState returns the codec-serialized durable state. The
	// engine owns the returned buffer.
	SnapshotState() []byte

	// RestoreState replaces the program's durable state with a
	// previously snapshotted buffer and rebuilds any derived structures
	// (e.g. CC's root→copies index). It may be called on a freshly
	// constructed Program (a replacement for a dead worker) or on a
	// live one being rolled back.
	RestoreState(data []byte) error
}

// Job packages a PIE program for execution by an engine.
type Job[T any] struct {
	// Name identifies the job in reports.
	Name string

	// New creates the Program for one fragment.
	New func(f *partition.Fragment) Program[T]

	// Aggregate is f_aggr: it folds two values destined for the same
	// update parameter into one (e.g. min for CC and SSSP, sum for the
	// PageRank deltas). It must be associative and commutative.
	Aggregate func(a, b T) T

	// Bytes returns the wire size of one value for communication
	// accounting. When nil, 8 bytes per value is assumed.
	Bytes func(T) int

	// Default returns the value reported for vertices never touched by
	// the computation; the zero value of T when nil.
	Default func(v int32) T

	// EncodeVal and DecodeVal give the value type a wire form for the
	// TCP transport plane (Options.Transport): EncodeVal appends val's
	// serialized bytes to dst, DecodeVal reads them back. They must be
	// exact inverses producing byte-stable output, since cross-process
	// runs are pinned bit-identical to in-proc runs. Jobs that leave
	// them nil still run on the in-proc plane; the engine fails fast
	// only when a TCP or remote-worker run actually needs them.
	EncodeVal func(dst []byte, val T) []byte
	DecodeVal func(r *codec.Reader) T

	// Validate, when set, checks the job's preconditions against the
	// partitioned graph (e.g. SSSP's "edge weights must be positive",
	// which the unique-fixpoint argument rests on). Engines call it
	// before constructing any Program and fail fast on error, so a bad
	// input surfaces as a clear error instead of kernels silently
	// diverging.
	Validate func(p *partition.Partitioned) error
}

// valueBytes returns the accounted wire size of val plus the fixed
// per-message header (vertex id 4B + round 4B).
func (j *Job[T]) valueBytes(val T) int {
	const header = 8
	if j.Bytes == nil {
		return header + 8
	}
	return header + j.Bytes(val)
}

// msgPool recycles message slices between the send side (Context) and
// the receive side (the engine's inbox drain), so steady-state rounds
// ship messages without allocating.
type msgPool[T any] struct{ p sync.Pool }

func (mp *msgPool[T]) get() []VMsg[T] {
	if v := mp.p.Get(); v != nil {
		return (*v.(*[]VMsg[T]))[:0]
	}
	return make([]VMsg[T], 0, 16)
}

func (mp *msgPool[T]) put(s []VMsg[T]) {
	if cap(s) == 0 {
		return
	}
	clear(s) // drop pointer payloads so recycled capacity pins nothing
	s = s[:0]
	mp.p.Put(&s)
}

// Context is the interface a Program uses to talk to its engine: sending
// designated messages and reporting work for cost accounting.
type Context[T any] struct {
	frag  *partition.Fragment
	part  *partition.Partitioned
	round int32
	work  int64

	// out accumulates messages per destination worker within a round;
	// spare is the recycled outer array handed back through ReleaseOut.
	out   [][]VMsg[T]
	spare [][]VMsg[T]

	// stages are the per-goroutine send buffers of parallel kernels
	// (stage.go), reused across rounds.
	stages []*Stage[T]

	pool *msgPool[T]
}

func newContext[T any](f *partition.Fragment, m int, pool *msgPool[T]) *Context[T] {
	return &Context[T]{
		frag: f,
		part: f.Partitioned(),
		out:  make([][]VMsg[T], m),
		pool: pool,
	}
}

// Fragment returns the fragment the program runs on.
func (c *Context[T]) Fragment() *partition.Fragment { return c.frag }

// Round returns the current round number (0 for PEval).
func (c *Context[T]) Round() int32 { return c.round }

// Send ships the value of update parameter v to the worker owning v. It
// corresponds to including v in the designated message M(i, j) of the
// current round. Sending to the local fragment is allowed and delivered
// through the local buffer like any other message.
func (c *Context[T]) Send(v int32, val T) {
	c.push(c.part.Owner(v), VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
}

// push appends one message to destination j's buffer, lazily drawing a
// recycled slice from the pool on the first send of the round.
func (c *Context[T]) push(j int, m VMsg[T]) {
	if c.out[j] == nil {
		c.out[j] = c.pool.get()
	}
	c.out[j] = append(c.out[j], m)
}

// SendToHolders ships val to every fragment holding a copy of owned
// vertex v (the owner-to-copies direction used by collaborative
// filtering, routed through the index I_i).
func (c *Context[T]) SendToHolders(v int32, val T) {
	for _, j := range c.part.Holders(v) {
		if int(j) == c.frag.ID {
			continue
		}
		c.push(int(j), VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
	}
}

// SendTo ships val for vertex v directly to worker j, the arbitrary
// routing used by the MapReduce simulation (Theorem 4), where update
// parameters live on a worker clique.
func (c *Context[T]) SendTo(j int, v int32, val T) {
	c.push(j, VMsg[T]{V: v, Val: val, Round: c.round, From: int32(c.frag.ID)})
}

// AddWork reports n units of work (vertices touched, edges relaxed) for
// the cost model and the stale-computation metric.
func (c *Context[T]) AddWork(n int) { c.work += int64(n) }

// NewEngineContext, SetRound, TakeOut and ReleaseOut expose the context
// plumbing to engines outside this package (the virtual-time simulator);
// they are not part of the programming API.
func NewEngineContext[T any](f *partition.Fragment, m int) *Context[T] {
	return newContext[T](f, m, &msgPool[T]{})
}

// SetRound sets the round number recorded in outgoing messages.
func (c *Context[T]) SetRound(r int32) { c.round = r }

// TakeOut returns and clears the per-destination message lists and the
// accumulated work of the finished round.
func (c *Context[T]) TakeOut() ([][]VMsg[T], int64) { return c.takeOut() }

// ValueBytes returns the accounted wire size of one message carrying val.
func (j *Job[T]) ValueBytes(val T) int { return j.valueBytes(val) }

// ReleaseOut hands an outer array obtained from TakeOut back for reuse
// by the next round. The caller must be done reading the array itself
// (the message slices it pointed to remain owned by their receivers).
func (c *Context[T]) ReleaseOut(out [][]VMsg[T]) {
	clear(out)
	c.spare = out
}

// takeOut returns and clears the per-destination message lists and the
// accumulated work of the finished round.
func (c *Context[T]) takeOut() ([][]VMsg[T], int64) {
	out := c.out
	if c.spare != nil {
		c.out = c.spare
		c.spare = nil
	} else {
		c.out = make([][]VMsg[T], len(out))
	}
	w := c.work
	c.work = 0
	return out, w
}

// FoldMessages folds a message buffer with the aggregate function,
// producing at most one message per vertex, in ascending vertex order
// (so IncEval sees a deterministic input regardless of arrival order).
// The retained Round/From are those of the latest-round contribution.
//
// FoldMessages works on arbitrary buffers but allocates; the engine's
// per-round hot path uses a Folder, which produces identical output from
// reusable fragment-sized scratch.
func FoldMessages[T any](buf []VMsg[T], agg func(a, b T) T) []VMsg[T] {
	return foldMessagesGeneric(buf, agg)
}

// foldMessagesGeneric is the map-based reference fold: it handles
// messages for any vertex, at the cost of a map plus an output
// allocation per call. The Folder's dense path is verified bit-identical
// against it by the differential tests.
func foldMessagesGeneric[T any](buf []VMsg[T], agg func(a, b T) T) []VMsg[T] {
	if len(buf) == 0 {
		return nil
	}
	byV := make(map[int32]VMsg[T], len(buf))
	for _, m := range buf {
		if cur, ok := byV[m.V]; ok {
			cur.Val = agg(cur.Val, m.Val)
			if m.Round > cur.Round {
				cur.Round = m.Round
				cur.From = m.From
			}
			byV[m.V] = cur
		} else {
			byV[m.V] = m
		}
	}
	out := make([]VMsg[T], 0, len(byV))
	for _, m := range byV {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}

// Folder folds message buffers for one fragment without allocating: a
// dense slot→output-index table guarded by a generation counter (so no
// per-round clearing) folds each message in O(1), and the reused output
// slice is sorted in place. Messages for vertices outside the fragment's
// slot domain (the MapReduce simulation's clique routing) fall back to
// the generic fold. A Folder is owned by a single worker; it is not safe
// for concurrent use, and the returned slice is only valid until the
// next Fold call.
type Folder[T any] struct {
	frag *partition.Fragment
	pos  []int32  // slot -> index into out, valid when gen[slot] == cur
	gen  []uint32 // generation stamp per slot
	cur  uint32
	out  []VMsg[T]
}

// NewFolder returns a Folder with scratch sized by f's slot count.
func NewFolder[T any](f *partition.Fragment) *Folder[T] {
	n := f.Slots()
	return &Folder[T]{
		frag: f,
		pos:  make([]int32, n),
		gen:  make([]uint32, n),
	}
}

// Fold folds buf exactly like FoldMessages, reusing the Folder's
// scratch. The result is overwritten by the next Fold call.
func (fd *Folder[T]) Fold(buf []VMsg[T], agg func(a, b T) T) []VMsg[T] {
	if len(buf) == 0 {
		return nil
	}
	fd.cur++
	if fd.cur == 0 { // generation wrapped: invalidate all stamps
		clear(fd.gen)
		fd.cur = 1
	}
	out := fd.out[:0]
	for _, m := range buf {
		slot := fd.frag.Slot(m.V)
		if slot < 0 {
			// Arbitrary routing (SendTo): the vertex has no local slot,
			// so the dense table cannot key it.
			return foldMessagesGeneric(buf, agg)
		}
		if fd.gen[slot] != fd.cur {
			fd.gen[slot] = fd.cur
			fd.pos[slot] = int32(len(out))
			out = append(out, m)
			continue
		}
		e := &out[fd.pos[slot]]
		e.Val = agg(e.Val, m.Val)
		if m.Round > e.Round {
			e.Round = m.Round
			e.From = m.From
		}
	}
	slices.SortFunc(out, func(a, b VMsg[T]) int { return int(a.V) - int(b.V) })
	fd.out = out
	return out
}

// Result is the outcome of running a Job: the assembled per-vertex values
// (indexed by global vertex) and the run statistics.
type Result[T any] struct {
	Values []T
	Stats  RunStats
}

// Assemble collects owned values from every program into a global vector,
// the default Assemble of the paper's PIE programs (taking the union of
// partial results).
func Assemble[T any](p *partition.Partitioned, progs []Program[T], job Job[T]) []T {
	values := make([]T, p.G.NumVertices())
	if job.Default != nil {
		for v := range values {
			values[v] = job.Default(int32(v))
		}
	}
	for i, f := range p.Frags {
		for v := f.Lo; v < f.Hi; v++ {
			values[v] = progs[i].Get(v)
		}
	}
	return values
}
