package core

import (
	"sync/atomic"
	"time"

	"aap/internal/partition"
)

// Session is the resident half of the serving plane: it owns the shared
// read-only state of a loaded graph — the partitioned fragments, their
// CSR rows, slot tables, border sets and routing index — and executes
// any number of queries over it, concurrently or in sequence. The state
// split is strict:
//
//	shared, immutable   partition.Partitioned (graph CSR, Ranges, owner
//	                    table, holder index), every Fragment (border
//	                    sets, slot tables)
//	per query           the engine built by Query: Programs and their
//	                    vertex-state arenas, Contexts, Folders, inboxes,
//	                    message pools, the coordinator, the Result
//
// Nothing in the engine or the kernels writes to the shared plane after
// partition.Build returns — queries against one Session are data-race
// free by construction, which TestSessionConcurrentQueries pins under
// the race detector. A Session adds no locking to the query path; it
// only keeps serving counters. Admission control, batching and
// deadlines live one layer up, in internal/serve.
//
// Each concurrent query runs its own engine with its own
// PhysicalWorkers pool, so Q concurrent queries may oversubscribe the
// machine Q-fold; cap Options.PhysicalWorkers per query (the
// serve.WithNJobs knob) when serving many at once.
type Session struct {
	p       *partition.Partitioned
	started time.Time

	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	active    atomic.Int64
	busyNanos atomic.Int64
}

// NewSession wraps an already partitioned graph as a resident session.
// The caller must not mutate p (or its graph) afterwards; partition
// produces no mutating operations on a built Partitioned, so in
// practice this means not re-slicing the exported border arrays.
func NewSession(p *partition.Partitioned) *Session {
	return &Session{p: p, started: time.Now()}
}

// Partitioned returns the shared read-only partitioned graph.
func (s *Session) Partitioned() *partition.Partitioned { return s.p }

// SessionStats is a point-in-time snapshot of a Session's serving
// counters.
type SessionStats struct {
	Admitted    int64   // queries started
	Completed   int64   // queries finished without error
	Failed      int64   // queries finished with an error
	Active      int64   // queries currently inside the engine
	BusySeconds float64 // cumulative wall time inside engine runs
	UpSeconds   float64 // session age
	QPS         float64 // Completed / UpSeconds
}

// Stats snapshots the serving counters.
func (s *Session) Stats() SessionStats {
	up := time.Since(s.started).Seconds()
	st := SessionStats{
		Admitted:    s.admitted.Load(),
		Completed:   s.completed.Load(),
		Failed:      s.failed.Load(),
		Active:      s.active.Load(),
		BusySeconds: float64(s.busyNanos.Load()) / 1e9,
		UpSeconds:   up,
	}
	if up > 0 {
		st.QPS = float64(st.Completed) / up
	}
	return st
}

// Query executes one job over the session's resident graph — the
// Session.Run of the serving plane, a package-level function because Go
// methods cannot introduce the job's value type parameter. It is safe
// to call from any number of goroutines at once; each call builds an
// independent engine whose only shared inputs are the session's
// immutable fragments. The one-shot core.Run is a thin wrapper that
// builds a throwaway Session around this.
func Query[T any](s *Session, job Job[T], opts Options) (*Result[T], error) {
	s.admitted.Add(1)
	s.active.Add(1)
	t0 := time.Now()
	res, err := run(s.p, job, opts, nil)
	s.busyNanos.Add(time.Since(t0).Nanoseconds())
	s.active.Add(-1)
	if err != nil && res == nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return res, err
}

// ScanCounter is implemented by kernels that count the raw edges their
// sweeps scanned (each CSR row read costs its length, however many
// lanes the scan served). The engine sums it across workers into
// RunStats.ScannedEdges — the measure behind the batched multi-source
// amortization claim: k lanes sharing one scan report ~1/k of the edges
// k separate runs would.
type ScanCounter interface {
	ScannedEdges() int64
}

// arenaBytes estimates the per-query vertex-state arena footprint of a
// run: one value per local slot (owned vertices + border copies, the
// only per-job memory the kernels allocate per vertex) plus the
// assembled global result vector, priced at the job's wire size for a
// default value. An estimate — kernels are free to keep denser or
// fatter state — but proportional to the real footprint, and what the
// serving plane reports per query.
func arenaBytes[T any](p *partition.Partitioned, job *Job[T]) int64 {
	per := 8
	if job.Bytes != nil {
		var v T
		if job.Default != nil {
			v = job.Default(0)
		}
		per = job.Bytes(v)
	}
	slots := 0
	for _, f := range p.Frags {
		slots += f.Slots()
	}
	return int64(per) * int64(slots+p.G.NumVertices())
}
