package core_test

import (
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/checkpoint"
	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

// Satellite regression tests for surfaced durability degradation: a
// persister that cannot keep up drops seals visibly (DroppedSeals), and
// a disk that fails mid-run degrades the run to non-durable
// (DurableDegraded) instead of failing it.

// ticker is a synthetic Program that runs exactly `limit` rounds by
// sending itself one message per round — every worker stays active the
// whole time, so with EveryRounds=1 the run seals an epoch per round,
// deterministically, no matter how the scheduler interleaves.
type ticker struct {
	f     *partition.Fragment
	limit int32
	state int64
}

func (tk *ticker) PEval(ctx *core.Context[float64]) {
	tk.state++
	ctx.Send(tk.f.Lo, 1)
}

func (tk *ticker) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	tk.state++
	if ctx.Round() < tk.limit {
		ctx.Send(tk.f.Lo, 1)
	}
}

func (tk *ticker) Get(int32) float64     { return float64(tk.state) }
func (tk *ticker) SnapshotState() []byte { return codec.AppendInt64(nil, tk.state) }
func (tk *ticker) RestoreState(b []byte) error {
	tk.state = codec.NewReader(b).Int64()
	return nil
}

func tickerJob(limit int32) core.Job[float64] {
	return core.Job[float64]{
		Name:      "ticker",
		New:       func(f *partition.Fragment) core.Program[float64] { return &ticker{f: f, limit: limit} },
		Aggregate: math.Min,
		EncodeVal: codec.AppendFloat64,
		DecodeVal: func(r *codec.Reader) float64 { return r.Float64() },
	}
}

// gateFS blocks every file write until released, simulating a stalled
// disk; reads pass through so NewestSealed keeps working.
type gateFS struct {
	checkpoint.FS
	gate chan struct{}
	once sync.Once
}

func newGateFS() *gateFS { return &gateFS{FS: checkpoint.OsFS(), gate: make(chan struct{})} }

func (g *gateFS) release() { g.once.Do(func() { close(g.gate) }) }

func (g *gateFS) OpenFile(name string, flag int, perm os.FileMode) (checkpoint.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, gate: g.gate}, nil
}

type gateFile struct {
	checkpoint.File
	gate chan struct{}
}

func (f *gateFile) Write(b []byte) (int, error) {
	<-f.gate
	return f.File.Write(b)
}

// TestDroppedSealsSurfaced forces the persister's channel over capacity
// (a run sealing ~40 epochs against a disk stalled for the first 35
// rounds) and pins satellite 1: the dropped seals are counted in
// RunStats.DroppedSeals instead of vanishing, and the run itself is
// unharmed.
func TestDroppedSealsSurfaced(t *testing.T) {
	g := gen.Grid(8, 8, 1)
	p, err := partition.Build(g, 4, partition.Range{})
	if err != nil {
		t.Fatal(err)
	}
	fsys := newGateFS()
	defer fsys.release() // never leave Run's drain wedged on a failure path
	const limit = 40
	res, err := core.Run(p, tickerJob(limit), core.Options{
		Mode: core.AAP,
		// Epoch announcements are sequential (a new epoch waits for the
		// previous seal), so the run must outlive the recording cadence
		// to seal one epoch per round.
		Latency:    2 * time.Millisecond,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1, Dir: t.TempDir(), FS: fsys},
		RoundHook: func(worker int, round int32) {
			if round >= limit-5 {
				fsys.release()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Checkpoints < 10 {
		t.Fatalf("run sealed only %d epochs; the ticker should seal ~%d", res.Stats.Checkpoints, limit)
	}
	if res.Stats.DroppedSeals < 1 {
		t.Fatalf("stalled persister dropped no seals: %+v", res.Stats)
	}
	if res.Stats.DurableDegraded != "" {
		t.Fatalf("drops must not read as disk failure: %q", res.Stats.DurableDegraded)
	}
}

// failOpenFS fails every file creation — the full-disk model at its
// bluntest.
type failOpenFS struct{ checkpoint.FS }

func (failOpenFS) OpenFile(string, int, os.FileMode) (checkpoint.File, error) {
	return nil, os.ErrPermission
}

// TestDurableDegradeOnDiskFailure pins satellite 2 at the engine level:
// a disk failing from the first epoch degrades the run to non-durable —
// the run still completes with correct output, the error is surfaced in
// RunStats.DurableDegraded, and the seal path never wedges.
func TestDurableDegradeOnDiskFailure(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, true, 4)
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1, Dir: t.TempDir(), FS: failOpenFS{checkpoint.OsFS()}},
	})
	if err != nil {
		t.Fatalf("failing disk must degrade, not fail the run: %v", err)
	}
	if res.Stats.DurableDegraded == "" {
		t.Fatal("disk failure left no trace in RunStats.DurableDegraded")
	}
	if !strings.Contains(res.Stats.DurableDegraded, "permission") {
		t.Fatalf("degradation does not carry the cause: %q", res.Stats.DurableDegraded)
	}
	if res.Stats.Checkpoints < 1 {
		t.Fatal("in-memory sealing stopped with the disk — the seal path wedged")
	}
	sameFloats(t, base.Values, res.Values, "degraded run values")
}
