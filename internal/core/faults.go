package core

import (
	"sync/atomic"
	"time"
)

// Faults configures deterministic, seed-driven fault injection. The
// same Faults value against the same run produces the same fault
// schedule: delivery faults are decided by hashing (Seed, sender,
// per-sender batch sequence number), not by a shared random stream, so
// the nth batch worker i hands off draws the same verdict regardless of
// goroutine interleaving.
type Faults struct {
	// Seed drives every probabilistic decision.
	Seed int64

	// Kill simulates the death of one worker: its program state is
	// discarded and rebuilt from the last sealed checkpoint (or from
	// scratch when none has sealed) through a global rollback.
	Kill *KillSpec

	// Stall freezes one worker for a duration when it reaches a round,
	// modeling a straggler or a hung host; used with Options.Deadline
	// to exercise graceful degradation.
	Stall *StallSpec

	// DelayProb delays a delivered batch by DelayBy (on top of
	// Options.Latency) with this probability.
	DelayProb float64
	DelayBy   time.Duration

	// DupProb duplicates a delivered batch with this probability. The
	// engine compensates the termination counters, and idempotent
	// min-fold kernels (SSSP, CC) are unaffected by the duplicate;
	// sum-fold kernels are not safe under duplication.
	DupProb float64

	// DropProb drops a batch with this probability. Dropping voids the
	// determinism contract (the lost update never arrives); it exists
	// to prove liveness — the run must still terminate.
	DropProb float64
}

// KillSpec kills Worker when it reaches Round; it fires exactly once
// per run, surviving the round rollback that recovery performs.
type KillSpec struct {
	Worker int
	Round  int32
}

// StallSpec freezes Worker for For when it reaches Round; fires once.
type StallSpec struct {
	Worker int
	Round  int32
	For    time.Duration
}

// faultInjector evaluates a Faults plan at the engine's fault points.
type faultInjector struct {
	f          Faults
	killFired  atomic.Bool
	stallFired atomic.Bool
	seq        []atomic.Uint64 // per-sender delivery sequence numbers
}

func newFaultInjector(f Faults, m int) *faultInjector {
	return &faultInjector{f: f, seq: make([]atomic.Uint64, m)}
}

// shouldKill reports whether worker w dying at round r is this run's
// scheduled kill; the CAS makes it fire exactly once even though the
// rollback rewinds w's round counter past the trigger again.
func (fi *faultInjector) shouldKill(w int, r int32) bool {
	k := fi.f.Kill
	if k == nil || w != k.Worker || r < k.Round {
		return false
	}
	return fi.killFired.CompareAndSwap(false, true)
}

// shouldStall reports whether worker w stalls at round r, and for how
// long.
func (fi *faultInjector) shouldStall(w int, r int32) (time.Duration, bool) {
	s := fi.f.Stall
	if s == nil || w != s.Worker || r < s.Round {
		return 0, false
	}
	if !fi.stallFired.CompareAndSwap(false, true) {
		return 0, false
	}
	return s.For, true
}

// delivery draws the verdict for the next batch sender `from` hands
// off: drop wins over dup, and delay composes with either.
func (fi *faultInjector) delivery(from int) (drop, dup bool, delay time.Duration) {
	if fi.f.DropProb <= 0 && fi.f.DupProb <= 0 && fi.f.DelayProb <= 0 {
		return false, false, 0
	}
	seq := fi.seq[from].Add(1)
	h := splitmix64(uint64(fi.f.Seed) ^ uint64(from)*0x9E3779B97F4A7C15 ^ seq<<17)
	drop = unit(h) < fi.f.DropProb
	h = splitmix64(h)
	dup = !drop && unit(h) < fi.f.DupProb
	h = splitmix64(h)
	if unit(h) < fi.f.DelayProb {
		delay = fi.f.DelayBy
	}
	return drop, dup, delay
}

// splitmix64 is the standard 64-bit finalizer; one application per
// decision keeps verdicts independent.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
