package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/checkpoint"
	"aap/internal/partition"
	"aap/internal/transport"
)

// Options configures a run of the concurrent engine.
type Options struct {
	// Mode selects the parallel model; AAP is the default.
	Mode Mode
	// Staleness is the bound c for SSP, and for AAP's predicate S when
	// the algorithm needs bounded staleness (CF). Zero means unbounded.
	Staleness int
	// LFloor is L⊥, the initial accumulation bound of the AAP controller.
	LFloor int
	// PhysicalWorkers bounds how many virtual workers compute at once,
	// modeling n physical workers hosting m > n virtual workers.
	// Defaults to GOMAXPROCS.
	PhysicalWorkers int
	// Latency delays every message batch, and Jitter adds a uniformly
	// random extra delay in [0, Jitter); both default to zero. They are
	// used by the Church-Rosser tests to randomize schedules.
	Latency time.Duration
	Jitter  time.Duration
	// Seed drives the jitter randomness.
	Seed int64
	// MaxRounds aborts the run when any worker exceeds it; a safety
	// valve for non-terminating programs. Defaults to 1 << 20.
	MaxRounds int32
	// Timeout aborts the run after this wall time. Defaults to 5 minutes.
	Timeout time.Duration
	// HsyncWindow is the phase length, in global rounds, of Hsync mode.
	HsyncWindow int32
	// Checkpoint enables Chandy-Lamport snapshots; requires every
	// Program of the job to implement Snapshotter.
	Checkpoint CheckpointOptions
	// Faults, when non-nil, injects the configured deterministic fault
	// schedule (worker kill/stall, message delay/duplicate/drop).
	Faults *Faults
	// Deadline, when positive, force-finishes the run after this wall
	// time: Run returns the partial Result plus an error wrapping
	// context.DeadlineExceeded, instead of the nil Result a Timeout
	// abort produces.
	Deadline time.Duration
	// Transport selects the message plane (in-proc channels, TCP, remote
	// Program hosts); nil is the in-proc fast path.
	Transport *TransportOptions
	// RoundHook, when set, is called at the top of every execRound with
	// the worker id and the round about to run — a test seam for timing
	// external events (e.g. kill -9 of a remote host process at a chosen
	// round). It runs on the worker goroutine and must not block.
	RoundHook func(worker int, round int32)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PhysicalWorkers <= 0 {
		out.PhysicalWorkers = runtime.GOMAXPROCS(0)
	}
	if out.MaxRounds <= 0 {
		out.MaxRounds = 1 << 20
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Minute
	}
	return out
}

// Run executes job over the partitioned graph p under the configured
// parallel model and returns the assembled result. It is the engine of
// Section 3: PEval at every worker, asynchronous IncEval rounds gated by
// each worker's delay-stretch controller, and termination detected when
// every worker is inactive with no designated messages in flight.
//
// Run is the one-shot wrapper over the resident serving plane: it wraps
// p in a throwaway Session and issues a single Query. Long-lived
// callers that run many queries over one loaded graph should hold a
// Session (see NewSession) and call Query directly.
func Run[T any](p *partition.Partitioned, job Job[T], opts Options) (*Result[T], error) {
	return Query(NewSession(p), job, opts)
}

// run is the shared body of Run and Resume: rs, when non-nil, seeds the
// engine from a durably stored sealed snapshot before the first round.
func run[T any](p *partition.Partitioned, job Job[T], opts Options, rs *resumeState[T]) (*Result[T], error) {
	if job.Validate != nil {
		if err := job.Validate(p); err != nil {
			return nil, err
		}
	}
	opts = opts.withDefaults()
	e := &engine[T]{
		p:          p,
		job:        job,
		opts:       opts,
		slots:      make(chan struct{}, opts.PhysicalWorkers),
		done:       make(chan struct{}),
		rates:      make([]uint64, p.M),
		roundTimes: make([]uint64, p.M),
	}
	e.coord.init(p.M, e)
	e.plane = &inprocPlane[T]{e}
	e.clink = &inprocLink[T]{e}
	if opts.Mode == Hsync {
		e.hsync = newHsyncState(opts.HsyncWindow)
	}
	if opts.Checkpoint.EveryRounds > 0 || rs != nil {
		e.ckpt = checkpoint.NewStore[VMsg[T]](p.M)
	}
	if opts.Faults != nil {
		e.inj = newFaultInjector(*opts.Faults, p.M)
	}
	if e.ckpt != nil || e.inj != nil ||
		(opts.Transport != nil && len(opts.Transport.RemoteWorkers) > 0) {
		e.recov = &recovery[T]{e: e}
	}
	e.workers = make([]*worker[T], p.M)
	for i, f := range p.Frags {
		w := &worker[T]{
			id:         i,
			eng:        e,
			frag:       f,
			prog:       job.New(f),
			ctx:        newContext[T](f, p.M, &e.pool),
			ctrl:       newController(opts, e.hsync),
			folder:     NewFolder[T](f),
			originSeen: make([]int32, p.M),
			originGen:  1,
			rng:        rand.New(rand.NewSource(opts.Seed + int64(i)*7919)),
		}
		w.inbox.notify = make(chan struct{}, 1)
		w.progress = make(chan struct{}, 1)
		w.flushCh = make(chan flushOut[T], 1)
		w.spareCh = make(chan [][]VMsg[T], 2)
		w.frng = rand.New(rand.NewSource(opts.Seed + int64(i)*7919 + 104729))
		e.workers[i] = w
	}
	if e.ckpt != nil {
		for _, w := range e.workers {
			if _, ok := w.prog.(Snapshotter); !ok {
				return nil, fmt.Errorf("core: %s: checkpointing requires the Program to implement core.Snapshotter", job.Name)
			}
		}
	}
	if opts.Checkpoint.Dir != "" {
		if err := e.setupDurable(rs); err != nil {
			return nil, err
		}
	}
	if opts.Transport.enabled() {
		err := e.setupPlane()
		if e.tp != nil {
			defer e.shutdownPlane() // runs after Assemble collects remote values
		}
		if err != nil {
			return nil, err
		}
	}
	if rs != nil {
		// Seed after the transport plane is up so remote workers restore
		// their program state over RPC, exactly like a rollback would.
		if err := e.seedResume(rs.snap); err != nil {
			return nil, err
		}
		rs.seconds = time.Since(rs.t0).Seconds()
	}

	start := time.Now()
	var wg, fwg sync.WaitGroup
	wg.Add(p.M)
	fwg.Add(p.M)
	if e.durable != nil {
		e.persistWg.Add(1)
		go e.persistLoop()
	}
	for _, w := range e.workers {
		go func(w *worker[T]) {
			defer fwg.Done()
			w.flusher()
		}(w)
		go func(w *worker[T]) {
			defer wg.Done()
			w.run()
		}(w)
	}

	timer := time.NewTimer(opts.Timeout)
	defer timer.Stop()
	var deadlineC <-chan time.Time
	if opts.Deadline > 0 {
		dt := time.NewTimer(opts.Deadline)
		defer dt.Stop()
		deadlineC = dt.C
	}
	deadlined := false
	select {
	case <-e.coord.doneCh():
	case <-deadlineC:
		deadlined = true
		e.coord.forceDone()
	case <-timer.C:
		e.fail(fmt.Errorf("core: %s/%s timed out after %v", job.Name, opts.Mode, opts.Timeout))
	}
	e.closeDone()
	wg.Wait()
	fwg.Wait() // flushers own BytesSent; join before reading stats
	if e.recov != nil {
		e.recov.wg.Wait() // a mid-flight rollback mutates worker state
	}
	if e.durable != nil {
		// Drain the persist queue before reading durable stats (or
		// returning an error): every seal the run produced must be on
		// disk when Run returns.
		close(e.persistQuit)
		e.persistWg.Wait()
	}
	if err := e.err(); err != nil {
		return nil, err
	}

	stats := RunStats{Job: job.Name, Mode: opts.Mode.String(), Seconds: time.Since(start).Seconds()}
	stats.Workers = make([]WorkerStats, p.M)
	for i, w := range e.workers {
		stats.Workers[i] = w.stats
	}
	stats.finalize()
	stats.ArenaBytes = arenaBytes(p, &job)
	for _, w := range e.workers {
		if sc, ok := w.prog.(ScanCounter); ok {
			stats.ScannedEdges += sc.ScannedEdges()
		}
	}
	if e.ckpt != nil {
		stats.Checkpoints = e.ckpt.SealedCount()
		stats.CheckpointBytes = e.ckpt.SealedBytes()
	}
	stats.Recoveries = e.recoveries.Load()
	stats.RecoverySeconds = float64(e.recoveryNanos.Load()) / 1e9
	stats.Restarts = e.restarts.Load()
	stats.RejoinSeconds = float64(e.rejoinNanos.Load()) / 1e9
	stats.Failbacks = e.failbacks.Load()
	stats.FreshRestarts = e.freshRestarts.Load()
	stats.DroppedSeals = e.droppedSeals.Load()
	e.degradeMu.Lock()
	stats.DurableDegraded = e.degraded
	e.degradeMu.Unlock()
	if e.durable != nil {
		stats.DurableBytes = e.durable.BytesWritten()
		stats.FsyncCount = e.durable.FsyncCount()
	}
	if rs != nil {
		stats.ResumeEpoch = rs.snap.Epoch
		stats.ResumeBytes = rs.bytes
		stats.ResumeSeconds = rs.seconds
	}
	if e.tp != nil {
		ws := e.tp.Stats()
		stats.WireBytesOut = ws.WireBytesOut
		stats.WireBytesIn = ws.WireBytesIn
		stats.Retries = ws.Retries
		stats.HeartbeatTimeouts = ws.HeartbeatTimeouts
	}

	progs := make([]Program[T], p.M)
	for i, w := range e.workers {
		progs[i] = w.prog
	}
	res := &Result[T]{Values: Assemble(p, progs, job), Stats: stats}
	if deadlined {
		return res, fmt.Errorf("core: %s/%s exceeded deadline %v: %w", job.Name, opts.Mode, opts.Deadline, context.DeadlineExceeded)
	}
	return res, nil
}

// engine holds the shared state of one run.
type engine[T any] struct {
	p       *partition.Partitioned
	job     Job[T]
	opts    Options
	workers []*worker[T]
	slots   chan struct{} // physical-worker pool
	coord   coordinator
	hsync   *hsyncState
	pool    msgPool[T]    // recycles message slices between senders and receivers
	done    chan struct{} // closed when the run ends (success or failure)

	rates      []uint64 // per-worker arrival-rate EWMA as float bits
	roundTimes []uint64 // per-worker round-time EWMA as float bits

	// Message plane and coordinator link, the pluggable halves of the
	// transport refactor: plane carries batches, clink carries the
	// coordinator tokens. Defaults are the in-proc implementations; the
	// TCP plane (tp) replaces both and adds remote Program proxies.
	plane   msgPlane[T]
	clink   coordLink
	tp      *transport.Plane
	wlink   *wireLink[T]
	remotes []*remoteProg[T]
	ctrlReq chan transport.Frame
	planeWg sync.WaitGroup

	// Fault-tolerance plane, all nil/zero when disabled.
	ckpt  *checkpoint.Store[VMsg[T]]
	recov *recovery[T]
	inj   *faultInjector
	// Durable tee (Options.Checkpoint.Dir): sealed snapshots flow from
	// the store's onSeal hook through persistCh to the persister
	// goroutine, which encodes and writes them off the hot path.
	durable     *checkpoint.DurableStore
	persistCh   chan *checkpoint.Snapshot[VMsg[T]]
	persistQuit chan struct{}
	persistWg   sync.WaitGroup
	// undelivered counts batches between flush handoff and inbox.put
	// (including time.AfterFunc latency limbo); recovery's quiesce
	// waits for it to reach zero before rewriting state.
	undelivered   atomic.Int64
	recoveries    atomic.Int64
	recoveryNanos atomic.Int64

	// Self-healing ladder accounting (recover.go's superviseDead and
	// rollback) plus durability-degradation surfacing. rejoinInc[k] is
	// the highest incarnation of worker k's host that has completed a
	// handshake, recorded by onPeerRejoin and polled by awaitRejoin.
	rejoinInc     []atomic.Uint64
	restarts      atomic.Int64
	rejoinNanos   atomic.Int64
	failbacks     atomic.Int64
	freshRestarts atomic.Int64
	droppedSeals  atomic.Int64
	dropWarnOnce  sync.Once
	degradeMu     sync.Mutex
	degraded      string

	doneOnce sync.Once

	errMu  sync.Mutex
	runErr error
}

func (e *engine[T]) closeDone() {
	e.doneOnce.Do(func() { close(e.done) })
}

func (e *engine[T]) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.coord.forceDone()
}

func (e *engine[T]) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.runErr
}

func (e *engine[T]) avgRate() float64 {
	var sum float64
	for i := range e.rates {
		sum += math.Float64frombits(atomic.LoadUint64(&e.rates[i]))
	}
	return sum / float64(len(e.rates))
}

func (e *engine[T]) avgRoundTime() float64 {
	var sum float64
	for i := range e.roundTimes {
		sum += math.Float64frombits(atomic.LoadUint64(&e.roundTimes[i]))
	}
	return sum / float64(len(e.roundTimes))
}

// Batch delivery lives behind the msgPlane interface (plane.go): the
// in-proc implementation is the old direct inbox handoff, the TCP
// implementation codec-encodes the batch into a frame. Both end with
// inbox.put plus the undelivered decrement, whichever path carried the
// bytes. The batch was already counted as sent by the worker at flush
// handoff, which is what keeps the termination check sound while
// delivery runs in the background; epoch is the sender's snapshot epoch
// at handoff — the Chandy-Lamport marker the receiver compares against
// its own cut.

// batch is one designated message M(i, j): the update-parameter changes
// shipped from worker i to worker j after a round, stamped with the
// sender's snapshot epoch at handoff.
type batch[T any] struct {
	from  int32
	epoch int32
	msgs  []VMsg[T]
}

// inbox is the unbounded mailbox B_x̄i of a worker. put never blocks, so
// message passing cannot deadlock regardless of schedule. Two batch
// arrays alternate between the producer side and the draining worker, so
// steady-state rounds append into recycled capacity.
type inbox[T any] struct {
	mu      sync.Mutex
	batches []batch[T]
	spare   []batch[T]
	notify  chan struct{}
}

func (ib *inbox[T]) put(b batch[T]) {
	ib.mu.Lock()
	ib.batches = append(ib.batches, b)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

func (ib *inbox[T]) take() []batch[T] {
	ib.mu.Lock()
	bs := ib.batches
	ib.batches = ib.spare
	ib.spare = nil
	ib.mu.Unlock()
	return bs
}

// release hands a drained batch array back for reuse by put.
func (ib *inbox[T]) release(bs []batch[T]) {
	clear(bs) // drop references to the recycled message slices
	ib.mu.Lock()
	if ib.spare == nil {
		ib.spare = bs[:0]
	}
	ib.mu.Unlock()
}

// coordinator tracks relative progress (r_i, r_min, r_max), worker
// activity, and global message counts for termination detection: the run
// is complete when every worker is inactive and every sent message has
// been consumed — the master's inactive/terminate/ack protocol of
// Section 3, realized with Mattern-style counters.
//
// Round counters, the Mattern sent/consumed pair, and activity flags are
// atomics, so the per-round hot path (roundDone, addSent, addConsumed)
// and every progress snapshot (view) run without the global lock. The
// mutex serializes only activity transitions, which keeps the
// termination check sound: while it is held with activeCount == 0, no
// worker can send (sends happen in rounds, which only active workers
// execute) or consume (drains happen after setActive(true), which blocks
// on the same mutex), so sent == consumed proves quiescence.
type coordinator struct {
	rounds   []atomic.Int32
	active   []atomic.Bool
	activeN  atomic.Int32
	sent     atomic.Int64
	consumed atomic.Int64

	mu       sync.Mutex // guards activity transitions and the finish check
	finished bool
	done     chan struct{}
	eng      interface{ broadcastProgress() }
}

func (c *coordinator) init(m int, eng interface{ broadcastProgress() }) {
	c.rounds = make([]atomic.Int32, m)
	c.active = make([]atomic.Bool, m)
	for i := range c.active {
		c.active[i].Store(true)
	}
	c.activeN.Store(int32(m))
	c.done = make(chan struct{})
	c.eng = eng
}

func (c *coordinator) doneCh() <-chan struct{} { return c.done }

func (c *coordinator) forceDone() {
	c.mu.Lock()
	if !c.finished {
		c.finished = true
		close(c.done)
	}
	c.mu.Unlock()
}

func (c *coordinator) roundDone(id int) int32 {
	r := c.rounds[id].Add(1)
	c.eng.broadcastProgress()
	return r
}

func (c *coordinator) addSent(n int64)     { c.sent.Add(n) }
func (c *coordinator) addConsumed(n int64) { c.consumed.Add(n) }

// reset rewinds the coordinator to a recovery cut: per-worker round
// counters from the snapshot, every worker active, and the Mattern
// counters zeroed (the rollback re-adds the replayed in-flight
// messages as sent). Only called while every worker is parked, so no
// concurrent transition can race the wholesale rewrite.
func (c *coordinator) reset(rounds []int32) {
	c.mu.Lock()
	for i := range c.rounds {
		c.rounds[i].Store(rounds[i])
		c.active[i].Store(true)
	}
	c.activeN.Store(int32(len(c.rounds)))
	c.sent.Store(0)
	c.consumed.Store(0)
	c.mu.Unlock()
}

func (c *coordinator) setActive(id int, active bool) {
	c.mu.Lock()
	if c.active[id].Load() != active {
		c.active[id].Store(active)
		if active {
			c.activeN.Add(1)
		} else {
			c.activeN.Add(-1)
		}
	}
	fire := !active && c.activeN.Load() == 0 && c.sent.Load() == c.consumed.Load() && !c.finished
	if fire {
		c.finished = true
		close(c.done)
	}
	c.mu.Unlock()
	if !fire {
		c.eng.broadcastProgress()
	}
}

// view returns (r_min over active workers, r_max over all workers). When
// no worker is active r_min falls back to the caller's round. The
// snapshot is advisory (controllers tolerate slight staleness), so it
// reads the atomics without taking the lock.
func (c *coordinator) view(self int) (rmin, rmax int32) {
	rmin = int32(math.MaxInt32)
	for i := range c.rounds {
		r := c.rounds[i].Load()
		if r > rmax {
			rmax = r
		}
		if c.active[i].Load() && r < rmin {
			rmin = r
		}
	}
	if rmin == int32(math.MaxInt32) {
		rmin = c.rounds[self].Load()
	}
	return rmin, rmax
}

func (e *engine[T]) broadcastProgress() {
	for _, w := range e.workers {
		select {
		case w.progress <- struct{}{}:
		default:
		}
	}
}

// flushOut is one round's handoff from worker to flusher: the
// per-destination batches plus the sender's snapshot epoch at handoff.
type flushOut[T any] struct {
	out   [][]VMsg[T]
	epoch int32
}

// flusher is the per-worker delivery goroutine: it prices and ships the
// batches of a finished round while the worker computes the next one.
// Delivery faults (drop/duplicate/delay) are injected here, at the
// boundary between handoff and inbox — the engine's stand-in for the
// network. Only the flusher touches stats.BytesSent; Run joins the
// flushers before reading stats.
func (w *worker[T]) flusher() {
	e := w.eng
	for {
		select {
		case fo := <-w.flushCh:
			out := fo.out
			var bytes int64
			for j, msgs := range out {
				if len(msgs) == 0 {
					continue
				}
				var fdelay time.Duration
				if e.inj != nil {
					drop, dup, d := e.inj.delivery(w.id)
					fdelay = d
					if drop {
						// The batch was pre-counted as sent at handoff
						// and will never drain: balance the Mattern
						// counter and the checkpoint outstanding count
						// so termination and sealing stay live.
						e.undelivered.Add(-1)
						e.clink.addConsumed(w.id, int64(len(msgs)))
						if e.ckpt != nil {
							e.clink.batchDrained(w.id, fo.epoch)
						}
						e.pool.put(msgs)
						continue
					}
					if dup {
						// Receivers recycle drained slices, so the
						// duplicate needs its own copy; it is accounted
						// exactly like a real batch.
						cp := append([]VMsg[T](nil), msgs...)
						e.undelivered.Add(1)
						e.clink.addSent(w.id, int64(len(cp)))
						if e.ckpt != nil {
							e.clink.batchSent(w.id, fo.epoch)
						}
						e.plane.deliver(w.id, j, fo.epoch, cp, fdelay)
					}
				}
				for _, m := range msgs {
					bytes += int64(e.job.valueBytes(m.Val))
				}
				var extra time.Duration
				if e.opts.Jitter > 0 {
					extra = time.Duration(w.frng.Int63n(int64(e.opts.Jitter)))
				}
				e.plane.deliver(w.id, j, fo.epoch, msgs, extra+fdelay)
			}
			w.stats.BytesSent += bytes
			clear(out)
			select {
			case w.spareCh <- out:
			default:
			}
		case <-w.eng.done:
			return
		}
	}
}

// worker is one virtual worker P_i.
type worker[T any] struct {
	id     int
	eng    *engine[T]
	frag   *partition.Fragment
	prog   Program[T]
	ctx    *Context[T]
	ctrl   Controller
	folder *Folder[T]

	inbox    inbox[T]
	progress chan struct{}
	buffer   []VMsg[T]

	// originSeen counts distinct origin workers of the buffered messages
	// (η in the controller's view) without map traffic: originSeen[j]
	// equals originGen when worker j has contributed to the current
	// buffer, and bumping originGen resets the set in O(1).
	originSeen []int32
	originGen  int32
	originCnt  int

	// timer backs every finite wait; allocated once and Reset per use
	// instead of a fresh time.Timer per delay.
	timer *time.Timer

	rng *rand.Rand

	// flushCh hands a finished round's outgoing batches to the worker's
	// flusher goroutine, overlapping delivery (byte accounting, jitter,
	// inbox puts) with the next round's compute. The epoch rides along
	// because the worker may record a new cut between the handoff and
	// the flusher shipping the batches — the stamp must be the one in
	// force at handoff. spareCh returns the drained outer array for
	// reuse. frng is the flusher's own jitter stream so the two
	// goroutines never share a rand.Rand.
	flushCh chan flushOut[T]
	spareCh chan [][]VMsg[T]
	frng    *rand.Rand

	// epoch is the worker's recorded snapshot epoch; pevalDone flips
	// when PEval has run, and is cleared by a from-scratch rollback.
	epoch     int32
	pevalDone bool

	stats         WorkerStats
	rounds        int32
	roundTimeEWMA float64
	rateEWMA      float64
	lastDrain     time.Time
	lastRoundEnd  time.Time
	isActive      bool
}

type wakeReason int

const (
	wakeMsg wakeReason = iota
	wakeProgress
	wakeTimer
	wakeDone
)

func (w *worker[T]) run() {
	// Contain kernel panics: a Program blowing up must fail the run
	// with a diagnosable error, not kill the process. The worker exits
	// cleanly (its deferred wg.Done still runs) and fail() unblocks
	// everyone else through e.done.
	defer func() {
		if p := recover(); p != nil {
			e := w.eng
			e.fail(fmt.Errorf("core: %s/%s worker %d panicked at round %d: %v", e.job.Name, e.opts.Mode, w.id, w.rounds, p))
		}
	}()
	w.isActive = true
	w.lastDrain = time.Now()
	for {
		select {
		case <-w.eng.done:
			return
		default:
		}
		// Safe point: park for a recovery quiesce, record an announced
		// snapshot epoch, fire scheduled faults. PEval runs through the
		// loop (not ahead of it) so a from-scratch rollback can demand
		// it again by clearing pevalDone.
		if !w.safepoint() {
			return
		}
		if !w.pevalDone {
			w.pevalDone = true
			w.execRound(true)
			continue
		}
		w.drain()
		if len(w.buffer) == 0 {
			w.setActive(false)
			// Double-check the inbox after flagging inactive; a message
			// may have landed in between (its notify token persists, so
			// the wait below returns immediately in that case).
			//
			// Only a message (or shutdown) reactivates an inactive
			// worker: its buffer is empty, so progress broadcasts cannot
			// create work for it. Flipping active on every broadcast
			// would also re-broadcast from setActive, and with delivery
			// running on the flusher goroutines those echo waves can
			// rotate through the workers indefinitely, keeping activeN
			// above zero at every termination check. The exception is
			// fault-tolerance business (a quiesce to park for, an epoch
			// to record): progress wakes check for it explicitly, or an
			// idle worker would never reach a safe point and recovery
			// (or epoch sealing) would stall forever.
			stay := true
			for stay {
				switch w.wait(Forever) {
				case wakeDone:
					return
				case wakeMsg:
					stay = false
				case wakeProgress:
					if w.interrupted() {
						stay = false
					}
				}
			}
			w.setActive(true)
			continue
		}
		d := w.ctrl.Delay(w.view())
		if math.IsInf(d, 1) {
			if r := w.wait(Forever); r == wakeDone {
				return
			}
			continue
		}
		if d > 0 {
			r := w.wait(d)
			if r == wakeDone {
				return
			}
			if r != wakeTimer {
				continue // new information: re-evaluate the stretch
			}
		}
		w.execRound(false)
	}
}

func (w *worker[T]) setActive(active bool) {
	if w.isActive == active {
		return
	}
	w.isActive = active
	w.eng.clink.setActive(w.id, active)
}

// wait blocks until a message arrives, global progress changes, the delay
// stretch d elapses (if finite), or the run ends.
func (w *worker[T]) wait(d float64) wakeReason {
	var timerC <-chan time.Time
	if !math.IsInf(d, 1) {
		dur := time.Duration(d * float64(time.Second))
		if w.timer == nil {
			w.timer = time.NewTimer(dur)
		} else {
			// The previous wait may have left the timer running or its
			// tick unconsumed; drain before Reset so a stale expiry can
			// never masquerade as this wait's timeout.
			if !w.timer.Stop() {
				select {
				case <-w.timer.C:
				default:
				}
			}
			w.timer.Reset(dur)
		}
		timerC = w.timer.C
	}
	t0 := time.Now()
	defer func() { w.stats.IdleSeconds += time.Since(t0).Seconds() }()
	select {
	case <-w.inbox.notify:
		return wakeMsg
	case <-w.progress:
		return wakeProgress
	case <-timerC:
		return wakeTimer
	case <-w.eng.done:
		return wakeDone
	}
}

// drain moves arrived batches from the inbox into the local buffer B_x̄i
// and refreshes the arrival-rate estimate s_i.
func (w *worker[T]) drain() {
	bs := w.inbox.take()
	if len(bs) == 0 {
		if bs != nil {
			w.inbox.release(bs)
		}
		return
	}
	n := 0
	for _, b := range bs {
		if w.eng.ckpt != nil {
			// Marker rule: a batch stamped with a newer epoch is the
			// first sign of that snapshot — record the cut before the
			// batch touches the buffer, so the captured buffer holds
			// only pre-cut messages. A batch stamped with an older
			// epoch is a late message without the token: copy it into
			// the snapshot's channel state, then process it normally.
			if b.epoch > w.epoch {
				w.record(b.epoch)
			}
			if b.epoch < w.epoch {
				w.eng.ckpt.Capture(checkpoint.Flight[VMsg[T]]{
					From: b.from, To: int32(w.id),
					Msgs: append([]VMsg[T](nil), b.msgs...),
				})
			}
		}
		n += len(b.msgs)
		w.buffer = append(w.buffer, b.msgs...)
		if w.originSeen[b.from] != w.originGen {
			w.originSeen[b.from] = w.originGen
			w.originCnt++
		}
		w.eng.pool.put(b.msgs)
		if w.eng.ckpt != nil {
			w.eng.clink.batchDrained(w.id, b.epoch)
		}
	}
	w.inbox.release(bs)
	w.stats.MsgsRecv += int64(n)
	w.eng.clink.addConsumed(w.id, int64(n))
	if w.eng.hsync != nil {
		w.eng.hsync.processed.Add(int64(n))
	}
	now := time.Now()
	dt := now.Sub(w.lastDrain).Seconds()
	w.lastDrain = now
	if dt > 0 {
		inst := float64(n) / dt
		w.rateEWMA = 0.5*w.rateEWMA + 0.5*inst
		atomic.StoreUint64(&w.eng.rates[w.id], math.Float64bits(w.rateEWMA))
	}
}

func (w *worker[T]) view() View {
	rmin, rmax := w.eng.clink.view(w.id)
	return View{
		Worker:       w.id,
		NumWorkers:   w.eng.p.M,
		Round:        w.rounds,
		RMin:         rmin,
		RMax:         rmax,
		Eta:          w.originCnt,
		Buffered:     len(w.buffer),
		RoundTime:    w.roundTimeEWMA,
		AvgRoundTime: w.eng.avgRoundTime(),
		Rate:         w.rateEWMA,
		AvgRate:      w.eng.avgRate(),
		IdleTime:     time.Since(w.lastRoundEnd).Seconds(),
	}
}

// execRound runs PEval (peval=true) or one IncEval round: it acquires a
// physical-worker slot, folds the buffer with f_aggr, evaluates, and
// flushes the designated messages.
func (w *worker[T]) execRound(peval bool) {
	e := w.eng
	if e.opts.RoundHook != nil {
		e.opts.RoundHook(w.id, w.rounds)
	}
	if w.rounds >= e.opts.MaxRounds {
		e.fail(fmt.Errorf("core: %s/%s worker %d exceeded %d rounds", e.job.Name, e.opts.Mode, w.id, e.opts.MaxRounds))
		return
	}
	select {
	case e.slots <- struct{}{}:
	case <-e.done:
		return
	}
	// Reclaim an outer array the flusher finished with; if the previous
	// flush is still running the context allocates a fresh one (rare —
	// it means compute fully overlapped the flush).
	select {
	case sp := <-w.spareCh:
		w.ctx.ReleaseOut(sp)
	default:
	}
	t0 := time.Now()
	w.ctx.round = w.rounds
	if peval {
		w.prog.PEval(w.ctx)
	} else {
		msgs := w.folder.Fold(w.buffer, e.job.Aggregate)
		w.buffer = w.buffer[:0]
		// Bump the generation to clear the origin set; on the (absurdly
		// distant) wrap, fall back to an explicit clear.
		if w.originGen == math.MaxInt32 {
			clear(w.originSeen)
			w.originGen = 0
		}
		w.originGen++
		w.originCnt = 0
		w.prog.IncEval(msgs, w.ctx)
	}
	dur := time.Since(t0).Seconds()
	<-e.slots

	w.stats.BusySeconds += dur
	w.roundTimeEWMA = nextRoundTimeEWMA(w.roundTimeEWMA, dur)
	atomic.StoreUint64(&e.roundTimes[w.id], math.Float64bits(w.roundTimeEWMA))
	out, work := w.ctx.takeOut()
	w.stats.Work += work
	var total int64
	for _, msgs := range out {
		total += int64(len(msgs))
	}
	if total == 0 {
		w.ctx.ReleaseOut(out)
	} else {
		// Count the messages as sent *before* handing them to the
		// flusher: the worker may flag itself inactive while delivery is
		// still in flight, and the termination check (all inactive ∧
		// sent == consumed) only stays sound if undelivered messages
		// keep sent ahead of consumed. The same pre-accounting covers
		// the snapshot plane: each non-empty destination batch is
		// registered as outstanding under the sender's current epoch
		// (the stamp it will carry), and undelivered tracks it until
		// its inbox.put so recovery can wait out the delivery limbo.
		w.stats.MsgsSent += total
		e.clink.addSent(w.id, total)
		nd := int64(0)
		for _, msgs := range out {
			if len(msgs) > 0 {
				nd++
			}
		}
		e.undelivered.Add(nd)
		if e.ckpt != nil {
			for i := int64(0); i < nd; i++ {
				e.clink.batchSent(w.id, w.epoch)
			}
		}
		select {
		case w.flushCh <- flushOut[T]{out: out, epoch: w.epoch}:
		case <-e.done:
			// Run over (failure/timeout): the batches are never
			// delivered, and the pre-counted sent total cannot matter —
			// done has already fired.
			e.undelivered.Add(-nd)
		}
	}
	w.rounds = e.clink.roundDone(w.id)
	w.stats.Rounds = w.rounds
	w.lastRoundEnd = time.Now()
	if e.ckpt != nil {
		if ev := e.opts.Checkpoint.EveryRounds; ev > 0 && w.rounds%ev == 0 {
			// Any worker may play master and announce the next epoch;
			// the store refuses while the previous one is recording.
			// Re-broadcast afterwards: idle workers record on progress
			// wakes, and roundDone's broadcast above may have fired
			// before the announcement became visible.
			if e.clink.announce(w.id) {
				e.broadcastProgress()
			}
		}
	}
	if e.hsync != nil {
		_, rmax := e.clink.view(w.id)
		e.hsync.observe(rmax, 0)
	}
}
