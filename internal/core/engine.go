package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/partition"
)

// Options configures a run of the concurrent engine.
type Options struct {
	// Mode selects the parallel model; AAP is the default.
	Mode Mode
	// Staleness is the bound c for SSP, and for AAP's predicate S when
	// the algorithm needs bounded staleness (CF). Zero means unbounded.
	Staleness int
	// LFloor is L⊥, the initial accumulation bound of the AAP controller.
	LFloor int
	// PhysicalWorkers bounds how many virtual workers compute at once,
	// modeling n physical workers hosting m > n virtual workers.
	// Defaults to GOMAXPROCS.
	PhysicalWorkers int
	// Latency delays every message batch, and Jitter adds a uniformly
	// random extra delay in [0, Jitter); both default to zero. They are
	// used by the Church-Rosser tests to randomize schedules.
	Latency time.Duration
	Jitter  time.Duration
	// Seed drives the jitter randomness.
	Seed int64
	// MaxRounds aborts the run when any worker exceeds it; a safety
	// valve for non-terminating programs. Defaults to 1 << 20.
	MaxRounds int32
	// Timeout aborts the run after this wall time. Defaults to 5 minutes.
	Timeout time.Duration
	// HsyncWindow is the phase length, in global rounds, of Hsync mode.
	HsyncWindow int32
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PhysicalWorkers <= 0 {
		out.PhysicalWorkers = runtime.GOMAXPROCS(0)
	}
	if out.MaxRounds <= 0 {
		out.MaxRounds = 1 << 20
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Minute
	}
	return out
}

// Run executes job over the partitioned graph p under the configured
// parallel model and returns the assembled result. It is the engine of
// Section 3: PEval at every worker, asynchronous IncEval rounds gated by
// each worker's delay-stretch controller, and termination detected when
// every worker is inactive with no designated messages in flight.
func Run[T any](p *partition.Partitioned, job Job[T], opts Options) (*Result[T], error) {
	if job.Validate != nil {
		if err := job.Validate(p); err != nil {
			return nil, err
		}
	}
	opts = opts.withDefaults()
	e := &engine[T]{
		p:          p,
		job:        job,
		opts:       opts,
		slots:      make(chan struct{}, opts.PhysicalWorkers),
		done:       make(chan struct{}),
		rates:      make([]uint64, p.M),
		roundTimes: make([]uint64, p.M),
	}
	e.coord.init(p.M, e)
	if opts.Mode == Hsync {
		e.hsync = newHsyncState(opts.HsyncWindow)
	}
	e.workers = make([]*worker[T], p.M)
	for i, f := range p.Frags {
		w := &worker[T]{
			id:         i,
			eng:        e,
			frag:       f,
			prog:       job.New(f),
			ctx:        newContext[T](f, p.M, &e.pool),
			ctrl:       newController(opts, e.hsync),
			folder:     NewFolder[T](f),
			originSeen: make([]int32, p.M),
			originGen:  1,
			rng:        rand.New(rand.NewSource(opts.Seed + int64(i)*7919)),
		}
		w.inbox.notify = make(chan struct{}, 1)
		w.progress = make(chan struct{}, 1)
		w.flushCh = make(chan [][]VMsg[T], 1)
		w.spareCh = make(chan [][]VMsg[T], 2)
		w.frng = rand.New(rand.NewSource(opts.Seed + int64(i)*7919 + 104729))
		e.workers[i] = w
	}

	start := time.Now()
	var wg, fwg sync.WaitGroup
	wg.Add(p.M)
	fwg.Add(p.M)
	for _, w := range e.workers {
		go func(w *worker[T]) {
			defer fwg.Done()
			w.flusher()
		}(w)
		go func(w *worker[T]) {
			defer wg.Done()
			w.run()
		}(w)
	}

	timer := time.NewTimer(opts.Timeout)
	defer timer.Stop()
	select {
	case <-e.coord.doneCh():
	case <-timer.C:
		e.fail(fmt.Errorf("core: %s/%s timed out after %v", job.Name, opts.Mode, opts.Timeout))
	}
	close(e.done)
	wg.Wait()
	fwg.Wait() // flushers own BytesSent; join before reading stats
	if err := e.err(); err != nil {
		return nil, err
	}

	stats := RunStats{Job: job.Name, Mode: opts.Mode.String(), Seconds: time.Since(start).Seconds()}
	stats.Workers = make([]WorkerStats, p.M)
	for i, w := range e.workers {
		stats.Workers[i] = w.stats
	}
	stats.finalize()

	progs := make([]Program[T], p.M)
	for i, w := range e.workers {
		progs[i] = w.prog
	}
	return &Result[T]{Values: Assemble(p, progs, job), Stats: stats}, nil
}

// engine holds the shared state of one run.
type engine[T any] struct {
	p       *partition.Partitioned
	job     Job[T]
	opts    Options
	workers []*worker[T]
	slots   chan struct{} // physical-worker pool
	coord   coordinator
	hsync   *hsyncState
	pool    msgPool[T]    // recycles message slices between senders and receivers
	done    chan struct{} // closed when the run ends (success or failure)

	rates      []uint64 // per-worker arrival-rate EWMA as float bits
	roundTimes []uint64 // per-worker round-time EWMA as float bits

	errMu  sync.Mutex
	runErr error
}

func (e *engine[T]) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.coord.forceDone()
}

func (e *engine[T]) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.runErr
}

func (e *engine[T]) avgRate() float64 {
	var sum float64
	for i := range e.rates {
		sum += math.Float64frombits(atomic.LoadUint64(&e.rates[i]))
	}
	return sum / float64(len(e.rates))
}

func (e *engine[T]) avgRoundTime() float64 {
	var sum float64
	for i := range e.roundTimes {
		sum += math.Float64frombits(atomic.LoadUint64(&e.roundTimes[i]))
	}
	return sum / float64(len(e.roundTimes))
}

// deliver ships a message batch from worker `from` to worker `to`,
// optionally after the configured latency; jitter is drawn by the caller
// so each flusher uses its own random stream. The batch was already
// counted as sent by the worker at flush handoff, which is what keeps
// the termination check sound while delivery runs in the background.
func (e *engine[T]) deliver(from, to int, msgs []VMsg[T], extra time.Duration) {
	put := func() { e.workers[to].inbox.put(batch[T]{from: int32(from), msgs: msgs}) }
	d := e.opts.Latency + extra
	if d > 0 {
		time.AfterFunc(d, put)
	} else {
		put()
	}
}

// batch is one designated message M(i, j): the update-parameter changes
// shipped from worker i to worker j after a round.
type batch[T any] struct {
	from int32
	msgs []VMsg[T]
}

// inbox is the unbounded mailbox B_x̄i of a worker. put never blocks, so
// message passing cannot deadlock regardless of schedule. Two batch
// arrays alternate between the producer side and the draining worker, so
// steady-state rounds append into recycled capacity.
type inbox[T any] struct {
	mu      sync.Mutex
	batches []batch[T]
	spare   []batch[T]
	notify  chan struct{}
}

func (ib *inbox[T]) put(b batch[T]) {
	ib.mu.Lock()
	ib.batches = append(ib.batches, b)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

func (ib *inbox[T]) take() []batch[T] {
	ib.mu.Lock()
	bs := ib.batches
	ib.batches = ib.spare
	ib.spare = nil
	ib.mu.Unlock()
	return bs
}

// release hands a drained batch array back for reuse by put.
func (ib *inbox[T]) release(bs []batch[T]) {
	clear(bs) // drop references to the recycled message slices
	ib.mu.Lock()
	if ib.spare == nil {
		ib.spare = bs[:0]
	}
	ib.mu.Unlock()
}

// coordinator tracks relative progress (r_i, r_min, r_max), worker
// activity, and global message counts for termination detection: the run
// is complete when every worker is inactive and every sent message has
// been consumed — the master's inactive/terminate/ack protocol of
// Section 3, realized with Mattern-style counters.
//
// Round counters, the Mattern sent/consumed pair, and activity flags are
// atomics, so the per-round hot path (roundDone, addSent, addConsumed)
// and every progress snapshot (view) run without the global lock. The
// mutex serializes only activity transitions, which keeps the
// termination check sound: while it is held with activeCount == 0, no
// worker can send (sends happen in rounds, which only active workers
// execute) or consume (drains happen after setActive(true), which blocks
// on the same mutex), so sent == consumed proves quiescence.
type coordinator struct {
	rounds   []atomic.Int32
	active   []atomic.Bool
	activeN  atomic.Int32
	sent     atomic.Int64
	consumed atomic.Int64

	mu       sync.Mutex // guards activity transitions and the finish check
	finished bool
	done     chan struct{}
	eng      interface{ broadcastProgress() }
}

func (c *coordinator) init(m int, eng interface{ broadcastProgress() }) {
	c.rounds = make([]atomic.Int32, m)
	c.active = make([]atomic.Bool, m)
	for i := range c.active {
		c.active[i].Store(true)
	}
	c.activeN.Store(int32(m))
	c.done = make(chan struct{})
	c.eng = eng
}

func (c *coordinator) doneCh() <-chan struct{} { return c.done }

func (c *coordinator) forceDone() {
	c.mu.Lock()
	if !c.finished {
		c.finished = true
		close(c.done)
	}
	c.mu.Unlock()
}

func (c *coordinator) roundDone(id int) int32 {
	r := c.rounds[id].Add(1)
	c.eng.broadcastProgress()
	return r
}

func (c *coordinator) addSent(n int64)     { c.sent.Add(n) }
func (c *coordinator) addConsumed(n int64) { c.consumed.Add(n) }

func (c *coordinator) setActive(id int, active bool) {
	c.mu.Lock()
	if c.active[id].Load() != active {
		c.active[id].Store(active)
		if active {
			c.activeN.Add(1)
		} else {
			c.activeN.Add(-1)
		}
	}
	fire := !active && c.activeN.Load() == 0 && c.sent.Load() == c.consumed.Load() && !c.finished
	if fire {
		c.finished = true
		close(c.done)
	}
	c.mu.Unlock()
	if !fire {
		c.eng.broadcastProgress()
	}
}

// view returns (r_min over active workers, r_max over all workers). When
// no worker is active r_min falls back to the caller's round. The
// snapshot is advisory (controllers tolerate slight staleness), so it
// reads the atomics without taking the lock.
func (c *coordinator) view(self int) (rmin, rmax int32) {
	rmin = int32(math.MaxInt32)
	for i := range c.rounds {
		r := c.rounds[i].Load()
		if r > rmax {
			rmax = r
		}
		if c.active[i].Load() && r < rmin {
			rmin = r
		}
	}
	if rmin == int32(math.MaxInt32) {
		rmin = c.rounds[self].Load()
	}
	return rmin, rmax
}

func (e *engine[T]) broadcastProgress() {
	for _, w := range e.workers {
		select {
		case w.progress <- struct{}{}:
		default:
		}
	}
}

// flusher is the per-worker delivery goroutine: it prices and ships the
// batches of a finished round while the worker computes the next one.
// Only the flusher touches stats.BytesSent; Run joins the flushers
// before reading stats.
func (w *worker[T]) flusher() {
	e := w.eng
	for {
		select {
		case out := <-w.flushCh:
			var bytes int64
			for j, msgs := range out {
				if len(msgs) == 0 {
					continue
				}
				for _, m := range msgs {
					bytes += int64(e.job.valueBytes(m.Val))
				}
				var extra time.Duration
				if e.opts.Jitter > 0 {
					extra = time.Duration(w.frng.Int63n(int64(e.opts.Jitter)))
				}
				e.deliver(w.id, j, msgs, extra)
			}
			w.stats.BytesSent += bytes
			clear(out)
			select {
			case w.spareCh <- out:
			default:
			}
		case <-w.eng.done:
			return
		}
	}
}

// worker is one virtual worker P_i.
type worker[T any] struct {
	id     int
	eng    *engine[T]
	frag   *partition.Fragment
	prog   Program[T]
	ctx    *Context[T]
	ctrl   Controller
	folder *Folder[T]

	inbox    inbox[T]
	progress chan struct{}
	buffer   []VMsg[T]

	// originSeen counts distinct origin workers of the buffered messages
	// (η in the controller's view) without map traffic: originSeen[j]
	// equals originGen when worker j has contributed to the current
	// buffer, and bumping originGen resets the set in O(1).
	originSeen []int32
	originGen  int32
	originCnt  int

	// timer backs every finite wait; allocated once and Reset per use
	// instead of a fresh time.Timer per delay.
	timer *time.Timer

	rng *rand.Rand

	// flushCh hands a finished round's outgoing batches to the worker's
	// flusher goroutine, overlapping delivery (byte accounting, jitter,
	// inbox puts) with the next round's compute. spareCh returns the
	// drained outer array for reuse. frng is the flusher's own jitter
	// stream so the two goroutines never share a rand.Rand.
	flushCh chan [][]VMsg[T]
	spareCh chan [][]VMsg[T]
	frng    *rand.Rand

	stats         WorkerStats
	rounds        int32
	roundTimeEWMA float64
	rateEWMA      float64
	lastDrain     time.Time
	lastRoundEnd  time.Time
	isActive      bool
}

type wakeReason int

const (
	wakeMsg wakeReason = iota
	wakeProgress
	wakeTimer
	wakeDone
)

func (w *worker[T]) run() {
	w.isActive = true
	w.lastDrain = time.Now()
	w.execRound(true)
	for {
		select {
		case <-w.eng.done:
			return
		default:
		}
		w.drain()
		if len(w.buffer) == 0 {
			w.setActive(false)
			// Double-check the inbox after flagging inactive; a message
			// may have landed in between (its notify token persists, so
			// the wait below returns immediately in that case).
			//
			// Only a message (or shutdown) reactivates an inactive
			// worker: its buffer is empty, so progress broadcasts cannot
			// create work for it. Flipping active on every broadcast
			// would also re-broadcast from setActive, and with delivery
			// running on the flusher goroutines those echo waves can
			// rotate through the workers indefinitely, keeping activeN
			// above zero at every termination check.
			stay := true
			for stay {
				switch w.wait(Forever) {
				case wakeDone:
					return
				case wakeMsg:
					stay = false
				}
			}
			w.setActive(true)
			continue
		}
		d := w.ctrl.Delay(w.view())
		if math.IsInf(d, 1) {
			if r := w.wait(Forever); r == wakeDone {
				return
			}
			continue
		}
		if d > 0 {
			r := w.wait(d)
			if r == wakeDone {
				return
			}
			if r != wakeTimer {
				continue // new information: re-evaluate the stretch
			}
		}
		w.execRound(false)
	}
}

func (w *worker[T]) setActive(active bool) {
	if w.isActive == active {
		return
	}
	w.isActive = active
	w.eng.coord.setActive(w.id, active)
}

// wait blocks until a message arrives, global progress changes, the delay
// stretch d elapses (if finite), or the run ends.
func (w *worker[T]) wait(d float64) wakeReason {
	var timerC <-chan time.Time
	if !math.IsInf(d, 1) {
		dur := time.Duration(d * float64(time.Second))
		if w.timer == nil {
			w.timer = time.NewTimer(dur)
		} else {
			// The previous wait may have left the timer running or its
			// tick unconsumed; drain before Reset so a stale expiry can
			// never masquerade as this wait's timeout.
			if !w.timer.Stop() {
				select {
				case <-w.timer.C:
				default:
				}
			}
			w.timer.Reset(dur)
		}
		timerC = w.timer.C
	}
	t0 := time.Now()
	defer func() { w.stats.IdleSeconds += time.Since(t0).Seconds() }()
	select {
	case <-w.inbox.notify:
		return wakeMsg
	case <-w.progress:
		return wakeProgress
	case <-timerC:
		return wakeTimer
	case <-w.eng.done:
		return wakeDone
	}
}

// drain moves arrived batches from the inbox into the local buffer B_x̄i
// and refreshes the arrival-rate estimate s_i.
func (w *worker[T]) drain() {
	bs := w.inbox.take()
	if len(bs) == 0 {
		if bs != nil {
			w.inbox.release(bs)
		}
		return
	}
	n := 0
	for _, b := range bs {
		n += len(b.msgs)
		w.buffer = append(w.buffer, b.msgs...)
		if w.originSeen[b.from] != w.originGen {
			w.originSeen[b.from] = w.originGen
			w.originCnt++
		}
		w.eng.pool.put(b.msgs)
	}
	w.inbox.release(bs)
	w.stats.MsgsRecv += int64(n)
	w.eng.coord.addConsumed(int64(n))
	if w.eng.hsync != nil {
		w.eng.hsync.processed.Add(int64(n))
	}
	now := time.Now()
	dt := now.Sub(w.lastDrain).Seconds()
	w.lastDrain = now
	if dt > 0 {
		inst := float64(n) / dt
		w.rateEWMA = 0.5*w.rateEWMA + 0.5*inst
		atomic.StoreUint64(&w.eng.rates[w.id], math.Float64bits(w.rateEWMA))
	}
}

func (w *worker[T]) view() View {
	rmin, rmax := w.eng.coord.view(w.id)
	return View{
		Worker:       w.id,
		NumWorkers:   w.eng.p.M,
		Round:        w.rounds,
		RMin:         rmin,
		RMax:         rmax,
		Eta:          w.originCnt,
		Buffered:     len(w.buffer),
		RoundTime:    w.roundTimeEWMA,
		AvgRoundTime: w.eng.avgRoundTime(),
		Rate:         w.rateEWMA,
		AvgRate:      w.eng.avgRate(),
		IdleTime:     time.Since(w.lastRoundEnd).Seconds(),
	}
}

// execRound runs PEval (peval=true) or one IncEval round: it acquires a
// physical-worker slot, folds the buffer with f_aggr, evaluates, and
// flushes the designated messages.
func (w *worker[T]) execRound(peval bool) {
	e := w.eng
	if w.rounds >= e.opts.MaxRounds {
		e.fail(fmt.Errorf("core: %s/%s worker %d exceeded %d rounds", e.job.Name, e.opts.Mode, w.id, e.opts.MaxRounds))
		return
	}
	select {
	case e.slots <- struct{}{}:
	case <-e.done:
		return
	}
	// Reclaim an outer array the flusher finished with; if the previous
	// flush is still running the context allocates a fresh one (rare —
	// it means compute fully overlapped the flush).
	select {
	case sp := <-w.spareCh:
		w.ctx.ReleaseOut(sp)
	default:
	}
	t0 := time.Now()
	w.ctx.round = w.rounds
	if peval {
		w.prog.PEval(w.ctx)
	} else {
		msgs := w.folder.Fold(w.buffer, e.job.Aggregate)
		w.buffer = w.buffer[:0]
		// Bump the generation to clear the origin set; on the (absurdly
		// distant) wrap, fall back to an explicit clear.
		if w.originGen == math.MaxInt32 {
			clear(w.originSeen)
			w.originGen = 0
		}
		w.originGen++
		w.originCnt = 0
		w.prog.IncEval(msgs, w.ctx)
	}
	dur := time.Since(t0).Seconds()
	<-e.slots

	w.stats.BusySeconds += dur
	w.roundTimeEWMA = nextRoundTimeEWMA(w.roundTimeEWMA, dur)
	atomic.StoreUint64(&e.roundTimes[w.id], math.Float64bits(w.roundTimeEWMA))
	out, work := w.ctx.takeOut()
	w.stats.Work += work
	var total int64
	for _, msgs := range out {
		total += int64(len(msgs))
	}
	if total == 0 {
		w.ctx.ReleaseOut(out)
	} else {
		// Count the messages as sent *before* handing them to the
		// flusher: the worker may flag itself inactive while delivery is
		// still in flight, and the termination check (all inactive ∧
		// sent == consumed) only stays sound if undelivered messages
		// keep sent ahead of consumed.
		w.stats.MsgsSent += total
		e.coord.addSent(total)
		select {
		case w.flushCh <- out:
		case <-e.done:
			// Run over (failure/timeout): the batches are never
			// delivered, and the pre-counted sent total cannot matter —
			// done has already fired.
		}
	}
	w.rounds = e.coord.roundDone(w.id)
	w.stats.Rounds = w.rounds
	w.lastRoundEnd = time.Now()
	if e.hsync != nil {
		_, rmax := e.coord.view(w.id)
		e.hsync.observe(rmax, 0)
	}
}
