package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBSPControllerBarriers(t *testing.T) {
	c := bspController{}
	if d := c.Delay(View{Round: 3, RMin: 2}); !math.IsInf(d, 1) {
		t.Errorf("ahead of r_min should suspend, got %v", d)
	}
	if d := c.Delay(View{Round: 2, RMin: 2}); d != 0 {
		t.Errorf("at r_min should run, got %v", d)
	}
	if d := c.Delay(View{Round: 1, RMin: 2}); d != 0 {
		t.Errorf("behind r_min should run, got %v", d)
	}
}

func TestAPControllerNeverWaits(t *testing.T) {
	c := apController{}
	f := func(round, rmin, rmax int32, eta int) bool {
		return c.Delay(View{Round: round, RMin: rmin, RMax: rmax, Eta: eta}) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSPControllerBound(t *testing.T) {
	c := sspController{C: 2}
	if d := c.Delay(View{Round: 5, RMin: 2}); !math.IsInf(d, 1) {
		t.Errorf("3 ahead with c=2 should suspend, got %v", d)
	}
	if d := c.Delay(View{Round: 4, RMin: 2}); d != 0 {
		t.Errorf("2 ahead with c=2 should run, got %v", d)
	}
}

func TestAAPControllerSuspendsOnEmptyBuffer(t *testing.T) {
	c := newAAPController(0, 0)
	if d := c.Delay(View{Eta: 0}); !math.IsInf(d, 1) {
		t.Errorf("empty buffer should suspend, got %v", d)
	}
}

func TestAAPControllerBoundedStalenessPredicate(t *testing.T) {
	c := newAAPController(0, 2)
	// Fastest worker too far ahead: S is false, suspend.
	v := View{Eta: 3, Round: 10, RMax: 10, RMin: 5}
	if d := c.Delay(v); !math.IsInf(d, 1) {
		t.Errorf("S=false should suspend, got %v", d)
	}
	// Not the fastest: S holds even when far ahead of r_min.
	v.RMax = 12
	if d := c.Delay(v); math.IsInf(d, 1) {
		t.Error("non-fastest worker should not suspend")
	}
}

func TestAAPControllerFastWorkerRunsImmediately(t *testing.T) {
	c := newAAPController(0, 0)
	// Round time at the cluster average: run like AP.
	v := View{Eta: 1, RoundTime: 1, AvgRoundTime: 1, Rate: 100, NumWorkers: 8}
	if d := c.Delay(v); d != 0 {
		t.Errorf("average-speed worker should not wait, got %v", d)
	}
}

func TestAAPControllerStragglerAccumulates(t *testing.T) {
	c := newAAPController(0, 0)
	// 4x straggler with heavy incoming traffic: positive finite stretch.
	v := View{Eta: 1, RoundTime: 4, AvgRoundTime: 1, Rate: 10, NumWorkers: 8, IdleTime: 0}
	d := c.Delay(v)
	if d <= 0 || math.IsInf(d, 1) {
		t.Fatalf("straggler under heavy traffic should wait a finite stretch, got %v", d)
	}
	if d > 0.5 { // capped by DeltaFrac * AvgRoundTime
		t.Errorf("stretch %v exceeds the accumulation window", d)
	}
	// Idle time already spent is subtracted.
	v.IdleTime = 10
	if d := c.Delay(v); d != 0 {
		t.Errorf("long-idle straggler should run, got %v", d)
	}
}

func TestAAPControllerNoTrafficNoWait(t *testing.T) {
	c := newAAPController(0, 0)
	// Straggler but nothing arriving: run immediately.
	v := View{Eta: 1, RoundTime: 4, AvgRoundTime: 1, Rate: 0.01, NumWorkers: 8}
	if d := c.Delay(v); d != 0 {
		t.Errorf("no predicted arrivals should mean no wait, got %v", d)
	}
}

func TestAAPControllerNoEstimates(t *testing.T) {
	c := newAAPController(0, 0)
	if d := c.Delay(View{Eta: 1}); d != 0 {
		t.Errorf("without estimates the controller must not block, got %v", d)
	}
}

func TestNextRoundTimeEWMA(t *testing.T) {
	if got := NextRoundTimeEWMA(0, 5); got != 5 {
		t.Errorf("first sample = %v", got)
	}
	// Decreases track fast.
	down := NextRoundTimeEWMA(4, 1)
	if down >= 2.5 {
		t.Errorf("decay too slow: %v", down)
	}
	// Increases are conservative.
	up := NextRoundTimeEWMA(1, 4)
	if up != 2.5 {
		t.Errorf("rise = %v, want 2.5", up)
	}
}

func TestNextRoundTimeEWMAMonotoneProperty(t *testing.T) {
	f := func(prev, dur float64) bool {
		prev, dur = math.Abs(prev), math.Abs(dur)
		got := NextRoundTimeEWMA(prev, dur)
		lo, hi := math.Min(prev, dur), math.Max(prev, dur)
		if prev == 0 {
			return got == dur
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{AAP: "AAP", BSP: "BSP", AP: "AP", SSP: "SSP", Hsync: "Hsync", Mode(42): "Mode(42)"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestControllerSetModes(t *testing.T) {
	for _, mode := range []Mode{AAP, BSP, AP, SSP, Hsync} {
		set := NewControllerSet(Options{Mode: mode, Staleness: 2}, 4)
		for i := 0; i < 4; i++ {
			if set.Controller(i) == nil {
				t.Fatalf("%s: nil controller", mode)
			}
		}
		// Observe hooks must be safe for every mode.
		set.ObserveConsumed(10)
		set.ObserveRound(5)
	}
}

func TestHsyncPhaseFlipsOnThroughputDrop(t *testing.T) {
	h := newHsyncState(2)
	c := hsyncController{state: h}
	if d := c.Delay(View{Round: 5, RMin: 1}); d != 0 {
		t.Error("AP phase should never wait")
	}
	// Window 1: high throughput.
	h.processed.Add(100)
	h.observe(2, 0)
	// Window 2: throughput collapse triggers a phase flip.
	h.processed.Add(10)
	h.observe(4, 0)
	if !h.bspPhase.Load() {
		t.Fatal("phase did not flip after throughput drop")
	}
	if d := c.Delay(View{Round: 5, RMin: 1}); !math.IsInf(d, 1) {
		t.Error("BSP phase should suspend workers ahead of r_min")
	}
	if d := c.Delay(View{Round: 1, RMin: 1}); d != 0 {
		t.Error("BSP phase should run workers at r_min")
	}
}

func TestAAPControllerLFloor(t *testing.T) {
	// A large L⊥ forces accumulation beyond the expected-arrival target.
	c := newAAPController(100, 0)
	v := View{Eta: 2, RoundTime: 4, AvgRoundTime: 1, Rate: 10, NumWorkers: 4}
	d := c.Delay(v)
	if d <= 0 {
		t.Fatalf("L⊥=100 with η=2 should wait, got %v", d)
	}
}
