package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/checkpoint"
)

// CheckpointOptions configures consistent snapshots of a run.
type CheckpointOptions struct {
	// EveryRounds announces a new snapshot epoch whenever a worker
	// completes a multiple of this many rounds (and the previous epoch
	// has sealed). Zero disables checkpointing.
	EveryRounds int32
	// Dir, when set, tees every sealed snapshot to crash-consistent
	// record files in this directory (created if missing), so Resume
	// can restart the whole process from the newest sealed epoch.
	// Requires EveryRounds > 0 (except under Resume, where the seeded
	// epoch alone may be enough) and Job.EncodeVal/DecodeVal.
	Dir string
	// SyncEvery fsyncs every Nth durable record write; 1 (the default)
	// syncs every write. See checkpoint.DurableOptions.
	SyncEvery int
	// Retain keeps the newest K epochs on disk (default 3, floor 2).
	Retain int
	// FS overrides the durable store's filesystem (fault-injection
	// seam); nil uses the real one.
	FS checkpoint.FS
}

// The engine adapts Chandy-Lamport to its asynchronous rounds with the
// epoch stamp as the marker:
//
//   - Every outgoing batch is stamped with the sender's recorded epoch
//     at flush handoff, so "carries the token" is simply stamp == e.
//   - A worker records its cut for epoch e the first time it learns of
//     e: at a round boundary (polling the announced epoch) or upon
//     draining a batch stamped e — before that batch enters its buffer.
//     The cut is the program's durable state plus the buffer contents,
//     which by the record-before-drain rule hold only pre-cut messages;
//     they are captured as channel state.
//   - Batches stamped before the receiver's recorded epoch are late
//     messages without the token: copied into the snapshot's channel
//     state at drain, then processed normally.
//   - Epoch e seals when every worker has recorded it and every batch
//     stamped < e has drained (checkpoint.Store's outstanding counts).
//
// Recovery is a global rollback, not a victim-only restore: replaying a
// victim's lost messages necessarily re-sends data that surviving
// workers may have already folded, which is only sound when the
// aggregate is idempotent. Rolling every worker back to the sealed cut
// makes the resumed run a legal execution from a consistent state for
// any aggregate, which is what the determinism contract (recovered
// output ≡ fault-free output) rests on.

// recovery coordinates quiesce → rollback → resume after a worker
// death. Workers park at safe points (loop top and idle wake) while it
// rewrites their state.
type recovery[T any] struct {
	e     *engine[T]
	pause atomic.Bool

	mu     sync.Mutex
	resume chan struct{}
	active bool

	parked atomic.Int32
	wg     sync.WaitGroup
}

// request starts a recovery for the death of worker victim; redundant
// requests while one is in progress are ignored.
func (r *recovery[T]) request(victim int) {
	r.mu.Lock()
	if r.active {
		r.mu.Unlock()
		return
	}
	r.active = true
	r.resume = make(chan struct{})
	r.pause.Store(true)
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.recover(victim)
	}()
}

// park blocks the calling worker until the recovery completes. It
// returns false when the run ended instead.
func (r *recovery[T]) park() bool {
	r.mu.Lock()
	ch := r.resume
	r.mu.Unlock()
	if ch == nil {
		return true // recovery already finished
	}
	r.parked.Add(1)
	defer r.parked.Add(-1)
	select {
	case <-ch:
		return true
	case <-r.e.done:
		return false
	}
}

// recover quiesces the engine, rolls back to the last sealed snapshot,
// and resumes. Quiescence means every worker is parked and every
// handed-off batch has landed in an inbox (undelivered == 0), so no
// message can materialize while state is rewritten.
func (r *recovery[T]) recover(victim int) {
	e := r.e
	t0 := time.Now()
	for {
		e.broadcastProgress() // wake idle workers so they reach a safe point
		if int(r.parked.Load()) == e.p.M && e.undelivered.Load() == 0 {
			break
		}
		select {
		case <-e.done:
			r.finish()
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
	r.superviseDead()
	r.rollback(victim)
	e.recoveries.Add(1)
	e.recoveryNanos.Add(time.Since(t0).Nanoseconds())
	r.finish()
}

// superviseDead is the self-healing ladder's first rung, running with
// the engine quiesced, before the rollback: for every remote host the
// detector declared dead, ask the restart policy for a replacement
// process, wait for its higher-incarnation handshake, and rearm the
// proxy — so the rollback below restores its Program over RPC exactly
// like any live remote worker. A refusal (budget exhausted) or a
// respawn that never dials in leaves the proxy dead and the rollback
// fails that worker back to a locally rebuilt Program. Scanning all
// proxies (not just the requesting victim) covers a second host dying
// while this recovery was already active — request() ignores the
// redundant trigger, but the corpse is here to be found.
func (r *recovery[T]) superviseDead() {
	e := r.e
	topts := e.opts.Transport
	if topts == nil || topts.Supervisor == nil {
		return
	}
	wait := topts.RejoinWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	for k, rp := range e.remotes {
		if rp == nil || rp.alive() {
			continue
		}
		for {
			inc, ok := topts.Supervisor.Respawn(k)
			if !ok {
				break // budget spent: rollback fails this worker back
			}
			t0 := time.Now()
			if e.awaitRejoin(k, inc, wait) {
				rp.rejoin()
				e.restarts.Add(1)
				e.rejoinNanos.Add(time.Since(t0).Nanoseconds())
				break
			}
			// The respawn never completed its handshake (launch failure,
			// or it died again instantly): spend the next unit of budget.
		}
	}
}

// awaitRejoin polls until worker k's host has completed a handshake at
// incarnation >= inc (recorded by onPeerRejoin), the wait elapses, or
// the run ends.
func (e *engine[T]) awaitRejoin(k int, inc uint64, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		if e.rejoinInc[k].Load() >= inc {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		select {
		case <-e.done:
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// finish releases parked workers and re-arms the manager.
func (r *recovery[T]) finish() {
	r.mu.Lock()
	r.pause.Store(false)
	ch := r.resume
	r.resume = nil
	r.active = false
	r.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// rollback rewrites the whole engine to the last sealed snapshot while
// every worker is parked. With no sealed snapshot the run restarts from
// scratch: fresh programs, PEval again. The victim's program is
// discarded and rebuilt purely from snapshot bytes — its in-memory
// state is treated as lost with the "dead" worker.
func (r *recovery[T]) rollback(victim int) {
	e := r.e
	var snap *checkpoint.Snapshot[VMsg[T]]
	if e.ckpt != nil {
		snap = e.ckpt.Sealed()
	}
	// Second rung of the no-checkpoint fallback: before declaring a
	// fresh restart, try the durable tail — a previous incarnation of
	// this process (or a dropped in-memory seal) may have left a newer
	// record on disk than the store holds in memory.
	if snap == nil && e.ckpt != nil && e.durable != nil {
		if ep, payload, err := e.durable.NewestSealed(); err == nil {
			if s, derr := decodeDurableSnapshot(&e.job, ep, payload); derr == nil && len(s.States) == e.p.M {
				e.ckpt.Seed(s) // Reset below rewinds announce to this epoch
				snap = s
			}
		}
	}

	// Destroy the abandoned execution's residue: inbox contents and
	// local buffers are all post-cut.
	for _, w := range e.workers {
		bs := w.inbox.take()
		for _, b := range bs {
			e.pool.put(b.msgs)
		}
		if bs != nil {
			w.inbox.release(bs)
		}
		w.buffer = w.buffer[:0]
		if w.originGen == int32(1)<<30 {
			clear(w.originSeen)
			w.originGen = 0
		}
		w.originGen++
		w.originCnt = 0
	}

	rounds := make([]int32, e.p.M)
	freshRestart := false
	for i, w := range e.workers {
		// A dead remote host can't execute anything again: fail back to a
		// locally hosted Program rebuilt from the fragment (its in-memory
		// state is lost with the process either way). A host that
		// superviseDead respawned and rejoined reads as a live remote
		// here, so its proxy survives and the restore below rides the
		// RPC to the new incarnation.
		deadRemote, liveRemote := false, false
		if rp, ok := w.prog.(*remoteProg[T]); ok {
			if rp.alive() {
				liveRemote = true
			} else {
				deadRemote = true
			}
		}
		if deadRemote {
			e.failbacks.Add(1)
		}
		if snap == nil {
			freshRestart = true
			if liveRemote {
				// Full restart with a live remote host: have it rebuild
				// its Program in place instead of replacing the proxy.
				if rp := w.prog.(*remoteProg[T]); rp.reset() != nil {
					e.fail(fmt.Errorf("core: %s worker %d remote reset failed", e.job.Name, i))
					return
				}
			} else {
				w.prog = e.job.New(w.frag)
			}
			w.rounds = 0
			w.pevalDone = false
			w.epoch = 0
		} else {
			if (i == victim && !liveRemote) || deadRemote {
				w.prog = e.job.New(w.frag)
			}
			if err := w.prog.(Snapshotter).RestoreState(snap.States[i]); err != nil {
				e.fail(fmt.Errorf("core: %s worker %d failed to restore epoch %d: %w", e.job.Name, i, snap.Epoch, err))
				return
			}
			w.rounds = snap.Rounds[i]
			w.pevalDone = snap.PEvalDone[i]
			w.epoch = snap.Epoch
		}
		rounds[i] = w.rounds
		w.isActive = true
	}
	if freshRestart {
		e.freshRestarts.Add(1)
	}
	e.coord.reset(rounds)
	if e.ckpt != nil {
		e.ckpt.Reset()
	}

	// Replay the captured channel state through the normal inbox path.
	// The copies keep the sealed snapshot intact for a second recovery,
	// and the sent/outstanding accounting makes the replayed batches
	// indistinguishable from live ones: termination waits for them, and
	// the next epoch cannot seal before they drain.
	if snap != nil {
		for _, f := range snap.InFlight {
			msgs := append([]VMsg[T](nil), f.Msgs...)
			e.coord.addSent(int64(len(msgs)))
			if e.ckpt != nil {
				e.ckpt.BatchSent(snap.Epoch)
			}
			e.workers[f.To].inbox.put(batch[T]{from: f.From, epoch: snap.Epoch, msgs: msgs})
		}
	}
}

// safepoint handles fault-tolerance business at the top of the worker
// loop: parking for a quiesce, recording an announced epoch, and firing
// scheduled stall/kill faults. It returns false when the run ended.
func (w *worker[T]) safepoint() bool {
	e := w.eng
	if e.recov != nil && e.recov.pause.Load() {
		if !e.recov.park() {
			return false
		}
	}
	if e.ckpt != nil {
		if ep := e.clink.announcedEpoch(w.id); ep > w.epoch {
			w.record(ep)
		}
	}
	if e.inj != nil {
		if d, ok := e.inj.shouldStall(w.id, w.rounds); ok {
			select {
			case <-time.After(d):
			case <-e.done:
				return false
			}
		}
		if e.inj.shouldKill(w.id, w.rounds) {
			e.recov.request(w.id)
			if !e.recov.park() {
				return false
			}
		}
	}
	return true
}

// interrupted reports whether an idle worker must leave its wait loop
// for a non-message reason: a quiesce in progress or an epoch to
// record.
func (w *worker[T]) interrupted() bool {
	e := w.eng
	if e.recov != nil && e.recov.pause.Load() {
		return true
	}
	return e.ckpt != nil && e.clink.announcedEpoch(w.id) > w.epoch
}

// record takes this worker's cut for epoch: durable program state,
// round counter, and the buffer as captured channel state (the
// record-before-drain rule guarantees it holds only pre-cut messages).
// The buffer is copied, grouped into per-origin flights so replay
// preserves the origin accounting of the inbox path.
func (w *worker[T]) record(epoch int32) {
	snap, ok := w.prog.(Snapshotter)
	if !ok {
		return // Run validated this when checkpointing is enabled
	}
	if rp, ok := w.prog.(*remoteProg[T]); ok && !rp.alive() {
		// The host died: its snapshot RPC would return nil state, and
		// sealing an epoch over it would corrupt the recovery point.
		// Recovery is already requested; it rolls back past this epoch.
		return
	}
	state := snap.SnapshotState()
	if rp, ok := w.prog.(*remoteProg[T]); ok && !rp.alive() {
		return // host died mid-snapshot; state may be truncated
	}
	var fl []checkpoint.Flight[VMsg[T]]
	for i := 0; i < len(w.buffer); {
		j := i + 1
		for j < len(w.buffer) && w.buffer[j].From == w.buffer[i].From {
			j++
		}
		fl = append(fl, checkpoint.Flight[VMsg[T]]{
			From: w.buffer[i].From,
			To:   int32(w.id),
			Msgs: append([]VMsg[T](nil), w.buffer[i:j]...),
		})
		i = j
	}
	if err := w.eng.ckpt.Record(int32(w.id), epoch, state, w.rounds, w.pevalDone, fl); err == nil {
		w.epoch = epoch
	}
}
