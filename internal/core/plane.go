package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"aap/internal/codec"
	"aap/internal/transport"
)

// TransportOptions selects and tunes the message plane of a run.
//
// The default (nil, or TCP false with no remote workers) is the in-proc
// plane: batches move by pointer handoff between goroutines and the
// coordinator is shared-memory atomics. With TCP true the engine runs
// its cluster wiring for real on a loopback listener: every batch is
// codec-encoded into a length-prefixed frame, shipped over TCP, and
// decoded on the far side — communication accounting measures real
// serialized bytes — and the coordinator tokens (round / sent /
// consumed / active, snapshot announce & seal) travel the same plane as
// synchronous request/reply RPCs. RemoteWorkers additionally moves the
// named workers' Programs into separate processes (see ServeWorker):
// the parent keeps the worker loop and drives the Program over RPC, so
// a kill -9 of the host process is detected by heartbeat silence and
// recovered through the ordinary rollback path.
type TransportOptions struct {
	// TCP routes worker batches and coordinator tokens over the TCP
	// plane (loopback by default) instead of in-proc channels.
	TCP bool
	// ListenAddr is the plane's listen address; "127.0.0.1:0" if empty.
	ListenAddr string
	// RemoteWorkers lists worker ids whose Programs are hosted by
	// external processes that dial in with ServeWorker.
	RemoteWorkers []int
	// RemoteWait bounds how long Run waits for every remote host to
	// complete its handshake; 10s if zero.
	RemoteWait time.Duration
	// OnListen, when set, is called with the plane's bound address once
	// the listener is up and before Run waits for remote hosts — the
	// hook a parent uses to spawn worker processes against a :0 port.
	// It must not block.
	OnListen func(addr string)
	// Heartbeat / failure-detector / retry tuning, passed through to
	// transport.Config (zeros pick that package's defaults).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
	RetryLimit     int
	RetryBase      time.Duration
	RetryMax       time.Duration
	// Supervisor, when set, owns the remote hosts' lifecycle: when the
	// failure detector declares a host dead, the recovery goroutine asks
	// it (with the run quiesced) to respawn the process under its
	// restart policy. A granted respawn is waited out via the
	// incarnation handshake and the worker rejoins; a refusal (budget
	// exhausted) fails the worker back to a local Program.
	// internal/supervise.Supervisor implements this.
	Supervisor RespawnPolicy
	// RejoinWait bounds how long recovery waits for a respawned host's
	// higher-incarnation handshake before spending the next unit of
	// restart budget; 10s if zero.
	RejoinWait time.Duration
	// Incarnation is this process's link incarnation, carried in every
	// Hello so a supervisor-respawned host fences its dead predecessor's
	// frames. Meaningful for ServeWorker children; zero means 1.
	Incarnation uint64
	// LinkFaults, when non-nil, injects the deterministic link-fault
	// schedule (partition windows, loss-as-RTO, delay) below the plane,
	// composing with Options.Faults' delivery faults above it.
	LinkFaults *transport.LinkFaults
}

// RespawnPolicy is the supervision hook recovery consults for each dead
// remote host: it returns the incarnation a replacement process is
// being launched as, or ok=false when the restart budget is exhausted
// and the worker must fail back locally. Called on the recovery
// goroutine with the run quiesced; it may block (backoff, process
// launch).
type RespawnPolicy interface {
	Respawn(worker int) (incarnation uint64, ok bool)
}

func (t *TransportOptions) enabled() bool {
	return t != nil && (t.TCP || len(t.RemoteWorkers) > 0)
}

// Endpoint id scheme on the plane: workers are 0..M-1, the coordinator
// is M, and the remote host serving worker k's Program is M+1+k.
func (e *engine[T]) coordEndpoint() int32 { return int32(e.p.M) }

func hostEndpoint(m, worker int) int32 { return int32(m + 1 + worker) }

// msgPlane is the pluggable delivery path for designated-message
// batches. Both implementations sit below the flusher — fault injection
// (drop/dup/delay) happens above this boundary, so one fault model
// covers both planes — and above the inbox: a delivered batch ends with
// inbox.put plus the undelivered decrement, whichever plane carried it.
type msgPlane[T any] interface {
	// deliver ships msgs from worker `from` to worker `to` after the
	// extra delay, stamped with the sender's snapshot epoch. The plane
	// owns msgs from this call on.
	deliver(from, to int, epoch int32, msgs []VMsg[T], extra time.Duration)
	// wireStats reports serialized-byte and robustness counters; all
	// zero for the in-proc plane.
	wireStats() transport.Stats
}

// inprocPlane is the fast path: batches move by pointer handoff.
type inprocPlane[T any] struct{ e *engine[T] }

func (p *inprocPlane[T]) deliver(from, to int, epoch int32, msgs []VMsg[T], extra time.Duration) {
	e := p.e
	put := func() {
		e.workers[to].inbox.put(batch[T]{from: int32(from), epoch: epoch, msgs: msgs})
		e.undelivered.Add(-1)
	}
	d := e.opts.Latency + extra
	if d > 0 {
		time.AfterFunc(d, put)
	} else {
		put()
	}
}

func (p *inprocPlane[T]) wireStats() transport.Stats { return transport.Stats{} }

// tcpPlane codec-encodes each batch into a KindData frame and ships it
// through the transport; the engine's onFrame decodes it back into the
// destination inbox. Sender-side slices return to the pool right after
// encoding; the receiver decodes into fresh pooled slices.
type tcpPlane[T any] struct{ e *engine[T] }

func (p *tcpPlane[T]) deliver(from, to int, epoch int32, msgs []VMsg[T], extra time.Duration) {
	e := p.e
	ship := func() {
		payload := codec.AppendInt32(nil, epoch)
		payload = codec.AppendUint32(payload, uint32(len(msgs)))
		for _, m := range msgs {
			payload = codec.AppendInt32(payload, m.V)
			payload = codec.AppendInt32(payload, m.Round)
			payload = codec.AppendInt32(payload, m.From)
			payload = e.job.EncodeVal(payload, m.Val)
		}
		n := int64(len(msgs))
		e.pool.put(msgs)
		if err := e.tp.Send(int32(from), int32(to), transport.KindData, payload); err != nil {
			// The frame will never arrive (plane closed or link declared
			// dead): compensate exactly like an injected drop so the
			// Mattern counters, the seal accounting, and the quiesce
			// condition stay live.
			e.undelivered.Add(-1)
			e.clink.addConsumed(from, n)
			if e.ckpt != nil {
				e.clink.batchDrained(from, epoch)
			}
		}
	}
	d := e.opts.Latency + extra
	if d > 0 {
		time.AfterFunc(d, ship)
	} else {
		ship()
	}
}

func (p *tcpPlane[T]) wireStats() transport.Stats { return p.e.tp.Stats() }

// decodeBatch decodes a KindData payload into a pooled message slice.
func (e *engine[T]) decodeBatch(payload []byte) (epoch int32, msgs []VMsg[T], err error) {
	r := codec.NewReader(payload)
	epoch = r.Int32()
	n := int(r.Uint32())
	// Header-lie guard: each message costs at least 13 bytes on the
	// wire (3×int32 + ≥1 value byte), so cap the claimed count before
	// allocating and let truncation surface as a decode error.
	if lim := r.Remaining()/13 + 1; n > lim {
		return 0, nil, fmt.Errorf("core: batch claims %d messages, %d bytes remain", n, r.Remaining())
	}
	msgs = e.pool.get()
	for i := 0; i < n; i++ {
		m := VMsg[T]{V: r.Int32(), Round: r.Int32(), From: r.Int32()}
		m.Val = e.job.DecodeVal(r)
		msgs = append(msgs, m)
	}
	if err := r.Err(); err != nil {
		e.pool.put(msgs)
		return 0, nil, err
	}
	return epoch, msgs, nil
}

// onFrame is the plane's delivery callback, running on transport reader
// goroutines. It must never call transport send paths synchronously
// (transport.Config.OnFrame contract): everything it does is enqueue —
// inbox puts, buffered control-request queue, single-slot reply chans.
func (e *engine[T]) onFrame(f transport.Frame) {
	switch f.Kind {
	case transport.KindData:
		to := int(f.To)
		if to < 0 || to >= e.p.M {
			return
		}
		epoch, msgs, err := e.decodeBatch(f.Payload)
		if err != nil {
			e.fail(fmt.Errorf("core: %s: corrupt batch frame %d→%d: %w", e.job.Name, f.From, f.To, err))
			return
		}
		e.workers[to].inbox.put(batch[T]{from: f.From, epoch: epoch, msgs: msgs})
		e.undelivered.Add(-1)
	case transport.KindCtrl:
		if f.To == e.coordEndpoint() {
			select {
			case e.ctrlReq <- f:
			case <-e.done:
			}
			return
		}
		if int(f.To) >= 0 && int(f.To) < e.p.M {
			e.wlink.clients[f.To].deliver(f.Payload)
		}
	case transport.KindRPC:
		// Only replies reach the parent (requests target host
		// endpoints, which live in the worker processes).
		if int(f.To) >= 0 && int(f.To) < e.p.M {
			if rp := e.remotes[f.To]; rp != nil {
				rp.deliver(f.Payload)
			}
		}
	}
}

// onPeerRejoin fires when a higher-incarnation Hello superseded a
// link: the respawned host for some worker has completed its handshake.
// Recovery's awaitRejoin polls the recorded incarnation. Runs on a
// transport goroutine; record-max only, no sends.
func (e *engine[T]) onPeerRejoin(linkID int32, served []int32, inc uint64) {
	for _, s := range served {
		k := int(s) - (e.p.M + 1)
		if k < 0 || k >= e.p.M {
			continue
		}
		for {
			cur := e.rejoinInc[k].Load()
			if inc <= cur || e.rejoinInc[k].CompareAndSwap(cur, inc) {
				break
			}
		}
	}
}

// onPeerDead is the heartbeat verdict: a host process went silent past
// the death threshold (or exhausted its reconnect budget). Mark its
// proxy dead — aborting any blocked RPC — and trigger the ordinary
// quiesce → rollback-to-sealed-epoch → replay recovery for the worker
// it served.
func (e *engine[T]) onPeerDead(linkID int32, served []int32, err error) {
	for _, s := range served {
		k := int(s) - (e.p.M + 1)
		if k < 0 || k >= e.p.M {
			continue
		}
		if rp := e.remotes[k]; rp != nil {
			rp.markDead()
			if e.recov != nil {
				e.recov.request(k)
			}
		}
	}
}

// setupPlane wires the TCP transport into the engine: the loopback
// listener, the self-link that carries the parent's own batches and
// coordinator tokens as real frames, the coordinator server, and the
// remote Program proxies (waiting for each host to dial in).
func (e *engine[T]) setupPlane() error {
	topts := e.opts.Transport
	if e.job.EncodeVal == nil || e.job.DecodeVal == nil {
		return fmt.Errorf("core: %s: the TCP plane requires Job.EncodeVal/DecodeVal", e.job.Name)
	}
	addr := topts.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	tp, err := transport.Listen(transport.Config{
		ListenAddr:     addr,
		Incarnation:    topts.Incarnation,
		HeartbeatEvery: topts.HeartbeatEvery,
		SuspectAfter:   topts.SuspectAfter,
		DeadAfter:      topts.DeadAfter,
		RetryLimit:     topts.RetryLimit,
		Retry:          transport.Backoff{Base: topts.RetryBase, Max: topts.RetryMax, Seed: uint64(e.opts.Seed)},
		OnFrame:        e.onFrame,
		OnPeerDead:     e.onPeerDead,
		OnPeerRejoin:   e.onPeerRejoin,
		Faults:         topts.LinkFaults,
	})
	if err != nil {
		return err
	}
	e.tp = tp
	e.rejoinInc = make([]atomic.Uint64, e.p.M)
	e.remotes = make([]*remoteProg[T], e.p.M)
	e.ctrlReq = make(chan transport.Frame, 4*e.p.M+16)
	if topts.OnListen != nil {
		topts.OnListen(tp.Addr())
	}
	if topts.TCP {
		// Self-link 0: every parent endpoint (workers + coordinator)
		// routes through one loopback conn, so parent-side batches and
		// tokens are serialized, framed, and byte-accounted for real.
		route := make([]int32, 0, e.p.M+1)
		for i := 0; i <= e.p.M; i++ {
			route = append(route, int32(i))
		}
		if err := tp.Dial(0, tp.Addr(), nil, route); err != nil {
			return err
		}
		e.plane = &tcpPlane[T]{e}
		e.wlink = newWireLink(e)
		e.clink = e.wlink
		e.planeWg.Add(1)
		go e.coordServe()
	}
	for _, k := range topts.RemoteWorkers {
		if k < 0 || k >= e.p.M {
			return fmt.Errorf("core: %s: remote worker %d out of range [0,%d)", e.job.Name, k, e.p.M)
		}
		rp := newRemoteProg(e, k)
		e.remotes[k] = rp
		e.workers[k].prog = rp
	}
	wait := topts.RemoteWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	for _, k := range topts.RemoteWorkers {
		if err := tp.WaitRoute(hostEndpoint(e.p.M, k), wait); err != nil {
			return fmt.Errorf("core: %s: remote host for worker %d never dialed in: %w", e.job.Name, k, err)
		}
	}
	return nil
}

// shutdownPlane runs after the result is assembled (remote value
// collection needs the links): tell live hosts to exit, then tear the
// transport down.
func (e *engine[T]) shutdownPlane() {
	e.closeDone() // also covers early-error exits before the run started
	for _, rp := range e.remotes {
		if rp != nil && rp.alive() {
			rp.shutdown()
		}
	}
	e.tp.Close()
	e.planeWg.Wait()
}

// coordLink is how workers (and their flushers) reach the coordinator
// and the checkpoint store's announce/seal accounting. The in-proc
// implementation is direct shared-memory calls; the wire implementation
// speaks the ctrl token protocol over the plane. Every operation is a
// synchronous request/reply — fire-and-forget tokens would be unsound:
// a consumed token racing ahead of its sent counterpart could show the
// coordinator sent == consumed during a transient and terminate a run
// with messages still in flight. Awaiting the reply preserves the same
// happens-before edges the shared-memory atomics give (a worker's sent
// is visible before any later token it emits).
type coordLink interface {
	roundDone(id int) int32
	addSent(id int, n int64)
	addConsumed(id int, n int64)
	setActive(id int, active bool)
	view(self int) (rmin, rmax int32)
	announce(id int) bool
	announcedEpoch(id int) int32
	batchSent(id int, stamp int32)
	batchDrained(id int, stamp int32)
}

// inprocLink is the shared-memory coordinator path.
type inprocLink[T any] struct{ e *engine[T] }

func (l *inprocLink[T]) roundDone(id int) int32        { return l.e.coord.roundDone(id) }
func (l *inprocLink[T]) addSent(id int, n int64)       { l.e.coord.addSent(n) }
func (l *inprocLink[T]) addConsumed(id int, n int64)   { l.e.coord.addConsumed(n) }
func (l *inprocLink[T]) setActive(id int, active bool) { l.e.coord.setActive(id, active) }
func (l *inprocLink[T]) view(self int) (int32, int32)  { return l.e.coord.view(self) }
func (l *inprocLink[T]) announcedEpoch(id int) int32   { return l.e.ckpt.AnnouncedEpoch() }
func (l *inprocLink[T]) batchSent(id int, stamp int32) { l.e.ckpt.BatchSent(stamp) }
func (l *inprocLink[T]) batchDrained(id int, stamp int32) {
	l.e.ckpt.BatchDrained(stamp)
}
func (l *inprocLink[T]) announce(id int) bool {
	_, ok := l.e.ckpt.Announce()
	return ok
}

// Ctrl protocol ops. Request payload: [op int32][args...], from the
// worker endpoint to the coordinator endpoint. Reply payload: [op
// int32][results...], back to the requester. Per-worker calls are
// serialized (one outstanding request per endpoint), and the link is
// FIFO, so replies match requests without ids.
const (
	opRoundDone int32 = iota + 1
	opAddSent
	opAddConsumed
	opSetActive
	opView
	opAnnounce
	opAnnouncedEpoch
	opBatchSent
	opBatchDrained
)

// ctrlClient is one worker's synchronous channel to the coordinator
// server. The mutex serializes the worker goroutine and its flusher,
// which share the endpoint.
type ctrlClient[T any] struct {
	e      *engine[T]
	id     int
	mu     chan struct{} // 1-token semaphore (mutex with done-abort)
	respCh chan []byte
}

func newCtrlClient[T any](e *engine[T], id int) *ctrlClient[T] {
	c := &ctrlClient[T]{e: e, id: id, mu: make(chan struct{}, 1), respCh: make(chan []byte, 1)}
	c.mu <- struct{}{}
	return c
}

// deliver hands a reply payload to the waiting call; runs on the
// transport reader. The single-outstanding discipline guarantees the
// slot is free.
func (c *ctrlClient[T]) deliver(payload []byte) {
	select {
	case c.respCh <- payload:
	default:
		// A reply for a call that aborted on shutdown; drop it.
	}
}

// call sends one ctrl request and blocks for its reply. After the run
// ends it returns nil, and callers treat the zero results as inert —
// every caller is on its way out through e.done.
func (c *ctrlClient[T]) call(req []byte) *codec.Reader {
	select {
	case <-c.mu:
	case <-c.e.done:
		return nil
	}
	defer func() { c.mu <- struct{}{} }()
	// Drain a reply abandoned by a previous aborted call so the FIFO
	// pairing stays intact.
	select {
	case <-c.respCh:
	default:
	}
	if err := c.e.tp.Send(int32(c.id), c.e.coordEndpoint(), transport.KindCtrl, req); err != nil {
		return nil
	}
	select {
	case resp := <-c.respCh:
		return codec.NewReader(resp)
	case <-c.e.done:
		return nil
	}
}

// wireLink is the coordinator-over-the-plane path.
type wireLink[T any] struct {
	e       *engine[T]
	clients []*ctrlClient[T]
}

func newWireLink[T any](e *engine[T]) *wireLink[T] {
	l := &wireLink[T]{e: e, clients: make([]*ctrlClient[T], e.p.M)}
	for i := range l.clients {
		l.clients[i] = newCtrlClient(e, i)
	}
	return l
}

func req(op int32) []byte { return codec.AppendInt32(nil, op) }

func (l *wireLink[T]) roundDone(id int) int32 {
	r := l.clients[id].call(req(opRoundDone))
	if r == nil {
		return 0
	}
	r.Int32() // op echo
	return r.Int32()
}

func (l *wireLink[T]) addSent(id int, n int64) {
	l.clients[id].call(codec.AppendInt64(req(opAddSent), n))
}

func (l *wireLink[T]) addConsumed(id int, n int64) {
	l.clients[id].call(codec.AppendInt64(req(opAddConsumed), n))
}

func (l *wireLink[T]) setActive(id int, active bool) {
	l.clients[id].call(codec.AppendBool(codec.AppendInt32(req(opSetActive), int32(id)), active))
}

func (l *wireLink[T]) view(self int) (int32, int32) {
	r := l.clients[self].call(codec.AppendInt32(req(opView), int32(self)))
	if r == nil {
		return 0, 0
	}
	r.Int32()
	return r.Int32(), r.Int32()
}

func (l *wireLink[T]) announce(id int) bool {
	r := l.clients[id].call(req(opAnnounce))
	if r == nil {
		return false
	}
	r.Int32()
	return r.Bool()
}

func (l *wireLink[T]) announcedEpoch(id int) int32 {
	r := l.clients[id].call(req(opAnnouncedEpoch))
	if r == nil {
		return 0
	}
	r.Int32()
	return r.Int32()
}

func (l *wireLink[T]) batchSent(id int, stamp int32) {
	l.clients[id].call(codec.AppendInt32(req(opBatchSent), stamp))
}

func (l *wireLink[T]) batchDrained(id int, stamp int32) {
	l.clients[id].call(codec.AppendInt32(req(opBatchDrained), stamp))
}

// coordServe is the coordinator endpoint: a single goroutine draining
// ctrl requests in arrival order and applying them to the shared
// coordinator/checkpoint state. It is the wire-protocol stand-in for
// the paper's master. Replies go back through the plane's non-blocking
// send queue, so the server can never deadlock against a slow link.
func (e *engine[T]) coordServe() {
	defer e.planeWg.Done()
	for {
		var f transport.Frame
		select {
		case f = <-e.ctrlReq:
		case <-e.done:
			return
		}
		r := codec.NewReader(f.Payload)
		op := r.Int32()
		resp := codec.AppendInt32(nil, op)
		switch op {
		case opRoundDone:
			resp = codec.AppendInt32(resp, e.coord.roundDone(int(f.From)))
		case opAddSent:
			e.coord.addSent(r.Int64())
		case opAddConsumed:
			e.coord.addConsumed(r.Int64())
		case opSetActive:
			id := r.Int32()
			e.coord.setActive(int(id), r.Bool())
		case opView:
			rmin, rmax := e.coord.view(int(r.Int32()))
			resp = codec.AppendInt32(resp, rmin)
			resp = codec.AppendInt32(resp, rmax)
		case opAnnounce:
			ok := false
			if e.ckpt != nil {
				_, ok = e.ckpt.Announce()
			}
			resp = codec.AppendBool(resp, ok)
		case opAnnouncedEpoch:
			ep := int32(0)
			if e.ckpt != nil {
				ep = e.ckpt.AnnouncedEpoch()
			}
			resp = codec.AppendInt32(resp, ep)
		case opBatchSent:
			if e.ckpt != nil {
				e.ckpt.BatchSent(r.Int32())
			}
		case opBatchDrained:
			if e.ckpt != nil {
				e.ckpt.BatchDrained(r.Int32())
			}
		default:
			e.fail(fmt.Errorf("core: coordinator received unknown ctrl op %d", op))
			continue
		}
		if r.Err() != nil {
			e.fail(fmt.Errorf("core: corrupt ctrl request op %d from %d: %w", op, f.From, r.Err()))
			continue
		}
		// Best-effort: a send error here means the plane is closing.
		_ = e.tp.Send(e.coordEndpoint(), f.From, transport.KindCtrl, resp)
	}
}
