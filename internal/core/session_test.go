package core_test

// Concurrency tests of the resident Session: many queries in flight on
// ONE Session must produce exactly what the same queries produce as
// serial one-shot core.Run calls — the state-split contract (shared
// plane read-only, per-query state private) pinned under -race across
// forced kernel shard counts.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

// TestSessionConcurrentQueriesMatchSerial: >= 8 concurrent queries on a
// single Session versus the same queries serial through core.Run — SSSP
// and CC bit-identical (unique exact-min fixpoints), PageRank within
// 1e-4 relative (AAP scheduling reorders its sum), at forced kernel
// shards {1, 2, 4}.
func TestSessionConcurrentQueriesMatchSerial(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 7)
	und := graph.AsUndirected(g)
	p, err := partition.Build(g, 3, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := partition.Build(und, 3, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Mode: core.AAP}
	sources := []graph.VertexID{0, 1, 2, 3, 40, 50}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Serial baselines: fresh one-shot runs, no Session shared.
			wantS := make([][]float64, len(sources))
			for i, src := range sources {
				res, err := core.Run(p, sssp.JobShards(src, shards), opts)
				if err != nil {
					t.Fatal(err)
				}
				wantS[i] = res.Values
			}
			resP, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-8, Shards: shards}), opts)
			if err != nil {
				t.Fatal(err)
			}
			wantP := resP.Values
			resC, err := core.Run(pu, cc.JobShards(shards), opts)
			if err != nil {
				t.Fatal(err)
			}
			wantC := resC.Values

			// Concurrent: 8 queries (6 SSSP + 2 PageRank) race on one
			// Session; 2 CC queries race on the undirected Session.
			s := core.NewSession(p)
			su := core.NewSession(pu)
			gotS := make([][]float64, len(sources))
			gotP := make([][]float64, 2)
			gotC := make([][]int64, 2)
			errs := make([]error, len(sources)+4)
			var wg sync.WaitGroup
			for i, src := range sources {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := core.Query(s, sssp.JobShards(src, shards), opts)
					if err == nil {
						gotS[i] = res.Values
					}
					errs[i] = err
				}()
			}
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := core.Query(s, pagerank.Job(pagerank.Config{Tol: 1e-8, Shards: shards}), opts)
					if err == nil {
						gotP[i] = res.Values
					}
					errs[len(sources)+i] = err
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := core.Query(su, cc.JobShards(shards), opts)
					if err == nil {
						gotC[i] = res.Values
					}
					errs[len(sources)+2+i] = err
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			for i := range sources {
				for v := range wantS[i] {
					if math.Float64bits(gotS[i][v]) != math.Float64bits(wantS[i][v]) {
						t.Fatalf("sssp src=%d vertex %d: concurrent %v != serial %v",
							sources[i], v, gotS[i][v], wantS[i][v])
					}
				}
			}
			for i := range gotC {
				for v := range wantC {
					if gotC[i][v] != wantC[v] {
						t.Fatalf("cc query %d vertex %d: concurrent %d != serial %d",
							i, v, gotC[i][v], wantC[v])
					}
				}
			}
			for i := range gotP {
				for v := range wantP {
					diff := math.Abs(gotP[i][v] - wantP[v])
					if rel := diff / math.Max(math.Abs(wantP[v]), 1e-300); rel > 1e-4 {
						t.Fatalf("pagerank query %d vertex %d: relative diff %g > 1e-4", i, v, rel)
					}
				}
			}

			stats := s.Stats()
			if stats.Admitted != 8 || stats.Completed != 8 || stats.Failed != 0 || stats.Active != 0 {
				t.Fatalf("session stats off: %+v", stats)
			}
			if stats.QPS <= 0 || stats.BusySeconds <= 0 {
				t.Fatalf("session rates off: %+v", stats)
			}
		})
	}
}

// TestSessionRunStatsServingFields: every engine run prices its
// per-query arena and harvests the kernels' scan counters into RunStats.
func TestSessionRunStatsServingFields(t *testing.T) {
	g := gen.Grid(16, 16, 3)
	p, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(p)
	res, err := core.Query(s, sssp.JobShards(0, 2), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ArenaBytes <= 0 {
		t.Fatalf("ArenaBytes = %d, want > 0", res.Stats.ArenaBytes)
	}
	if res.Stats.ScannedEdges <= 0 {
		t.Fatalf("ScannedEdges = %d, want > 0", res.Stats.ScannedEdges)
	}
	if got := s.Partitioned(); got != p {
		t.Fatal("Partitioned() did not return the shared plane")
	}
}

// TestRunIsThinSessionWrapper: the one-shot Run must behave exactly like
// a single-query Session — same values, same serving stats fields.
func TestRunIsThinSessionWrapper(t *testing.T) {
	g := gen.Grid(10, 10, 1)
	p, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := core.Run(p, sssp.JobShards(0, 1), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	two, err := core.Query(core.NewSession(p), sssp.JobShards(0, 1), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := range one.Values {
		if math.Float64bits(one.Values[v]) != math.Float64bits(two.Values[v]) {
			t.Fatalf("vertex %d: Run %v != Query %v", v, one.Values[v], two.Values[v])
		}
	}
	if one.Stats.ArenaBytes != two.Stats.ArenaBytes {
		t.Fatalf("ArenaBytes: Run %d != Query %d", one.Stats.ArenaBytes, two.Stats.ArenaBytes)
	}
}
