package core

import (
	"math"
	"math/rand"
	"testing"
)

// stagePlan is one randomized staging scenario: a message list plus the
// contiguous chunk boundaries assigning messages to stages — the
// assignment discipline parallel kernels use, which is what makes the
// merged order equal the sequential order.
func stagePlan(rng *rand.Rand, n, k int) []int {
	bounds := make([]int, k+1)
	for i := 1; i < k; i++ {
		bounds[i] = rng.Intn(n + 1)
	}
	bounds[k] = n
	// Sort boundaries so chunks are contiguous (possibly empty).
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	return bounds
}

// TestStagedSendsMatchSequential is the concurrent-staging differential
// test: random message lists sent (a) sequentially through Context.Send
// and (b) concurrently through k Stages over contiguous chunks must
// produce per-destination buffers that fold to bit-identical inboxes —
// including under sum aggregation, which is sensitive to message order.
func TestStagedSendsMatchSequential(t *testing.T) {
	p := buildPartition(t, 4)
	rng := rand.New(rand.NewSource(41))
	agg := func(a, b float64) float64 { return a + b } // order-sensitive on purpose
	for _, frag := range p.Frags {
		seqCtx := newContext[float64](frag, p.M, &msgPool[float64]{})
		stgCtx := newContext[float64](frag, p.M, &msgPool[float64]{})
		folders := make([]*Folder[float64], p.M)
		for j, f := range p.Frags {
			folders[j] = NewFolder[float64](f)
		}
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(400)
			k := 1 + rng.Intn(8)
			msgs := randomFoldBuffer(frag, rng, n)
			round := int32(rng.Intn(5))
			seqCtx.SetRound(round)
			stgCtx.SetRound(round)

			for _, m := range msgs {
				seqCtx.Send(m.V, m.Val)
			}
			wantOut, _ := seqCtx.takeOut()

			bounds := stagePlan(rng, n, k)
			stages := stgCtx.Stages(k)
			done := make(chan struct{})
			for w := 0; w < k; w++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					for _, m := range msgs[bounds[w]:bounds[w+1]] {
						stages[w].Send(m.V, m.Val)
					}
				}(w)
			}
			for w := 0; w < k; w++ {
				<-done
			}
			stgCtx.MergeStages()
			gotOut, _ := stgCtx.takeOut()

			for j := range wantOut {
				want := folders[j].Fold(wantOut[j], agg)
				// Folder reuses its output; copy before the second fold.
				wantCopy := append([]VMsg[float64](nil), want...)
				got := folders[j].Fold(gotOut[j], agg)
				if !foldEqual(got, wantCopy) {
					t.Fatalf("frag %d trial %d dest %d (k=%d): staged fold diverged\n got %+v\nwant %+v",
						frag.ID, trial, j, k, got, wantCopy)
				}
			}
			seqCtx.ReleaseOut(wantOut)
			stgCtx.ReleaseOut(gotOut)
		}
	}
}

// TestStagedSendVariants pins SendTo and SendToHolders staging against
// their sequential counterparts, and the stage work merge.
func TestStagedSendVariants(t *testing.T) {
	p := buildPartition(t, 4)
	f := p.Frags[1]
	seqCtx := newContext[float64](f, p.M, &msgPool[float64]{})
	stgCtx := newContext[float64](f, p.M, &msgPool[float64]{})

	// A vertex owned by f with remote holders, if any exists.
	var held int32 = -1
	for v := f.Lo; v < f.Hi; v++ {
		if len(p.Holders(v)) > 0 {
			held = v
			break
		}
	}

	// Sequential order mirrors the stage assignment below (stage 0's
	// sends precede stage 1's), the discipline MergeStages preserves.
	if held >= 0 {
		seqCtx.SendToHolders(held, 9)
	}
	seqCtx.SendTo(2, 12345, 7)
	seqCtx.AddWork(5)
	wantOut, wantWork := seqCtx.takeOut()

	st := stgCtx.Stages(2)
	st[1].SendTo(2, 12345, 7)
	if held >= 0 {
		st[0].SendToHolders(held, 9)
	}
	st[0].AddWork(2)
	st[1].AddWork(3)
	stgCtx.MergeStages()
	gotOut, gotWork := stgCtx.takeOut()

	if gotWork != wantWork {
		t.Fatalf("staged work %d, sequential %d", gotWork, wantWork)
	}
	for j := range wantOut {
		if len(gotOut[j]) != len(wantOut[j]) {
			t.Fatalf("dest %d: staged %d msgs, sequential %d", j, len(gotOut[j]), len(wantOut[j]))
		}
		for i := range wantOut[j] {
			a, b := gotOut[j][i], wantOut[j][i]
			if a.V != b.V || a.From != b.From || math.Float64bits(a.Val) != math.Float64bits(b.Val) {
				t.Fatalf("dest %d msg %d: staged %+v, sequential %+v", j, i, a, b)
			}
		}
	}
}
