package core

// WorkerStats accumulates per-worker measurements of a run.
type WorkerStats struct {
	Rounds      int32   // completed rounds, PEval included
	BusySeconds float64 // time spent inside PEval/IncEval
	IdleSeconds float64 // time spent inactive or suspended
	Work        int64   // work units reported via Context.AddWork
	MsgsSent    int64
	BytesSent   int64
	MsgsRecv    int64
}

// RunStats summarizes one engine run. Times are wall-clock seconds for
// the concurrent engine and virtual seconds for the simulator.
type RunStats struct {
	Job     string
	Mode    string
	Workers []WorkerStats

	Seconds    float64
	TotalMsgs  int64
	TotalBytes int64
	TotalWork  int64
	TotalIdle  float64
	TotalBusy  float64
	MaxRound   int32
	MinRound   int32
	SumRounds  int64

	// Fault-tolerance accounting, zero unless checkpointing or fault
	// injection was enabled for the run.
	Checkpoints     int64   // snapshot epochs sealed
	CheckpointBytes int64   // cumulative serialized state bytes across sealed snapshots
	Recoveries      int64   // rollback-and-resume cycles executed
	RecoverySeconds float64 // wall time spent quiesced in recovery

	// Self-healing supervision accounting: the failure ladder is
	// respawn+rejoin → (budget exhausted) local failback → (no sealed
	// snapshot anywhere) fresh restart, and each rung leaves its count
	// here. Zero unless Transport.Supervisor (Restarts/RejoinSeconds) or
	// recovery (Failbacks/FreshRestarts) ran.
	Restarts      int64   // remote hosts respawned and rejoined mid-run
	RejoinSeconds float64 // wall time from respawn grant to completed handshake
	Failbacks     int64   // dead remote workers failed back to local Programs
	FreshRestarts int64   // rollbacks that found no sealed snapshot (from-scratch)

	// Durable checkpoint accounting, zero unless Options.Checkpoint.Dir
	// was set (or the run was started by Resume).
	DurableBytes    int64   // record + manifest bytes written to the checkpoint dir
	FsyncCount      int64   // fsync syscalls issued by the durable store
	DroppedSeals    int64   // sealed snapshots the persister dropped (queue full)
	DurableDegraded string  // first durable write error; run continued non-durable
	ResumeEpoch     int32   // sealed epoch the run resumed from, 0 for a fresh start
	ResumeBytes     int64   // record payload bytes read back by Resume
	ResumeSeconds   float64 // wall time from opening the dir to workers relaunched

	// Serving-plane accounting. ArenaBytes and ScannedEdges are filled
	// by the engine on every run: ArenaBytes estimates the per-query
	// vertex-state arena (slots + result vector priced at the job's wire
	// size — the only per-query memory; fragments and routing stay
	// shared in the Session), ScannedEdges sums the raw CSR edge scans
	// of kernels implementing core.ScanCounter (the batched multi-source
	// amortization metric). QueueWaitSeconds and BatchSize are stamped
	// by the internal/serve scheduler: wall time the query spent in the
	// admission queue, and how many queries shared its engine run (k
	// lanes of a batched multi-source SSSP; 1 for direct runs).
	QueueWaitSeconds float64
	BatchSize        int
	ArenaBytes       int64
	ScannedEdges     int64

	// Transport accounting, zero unless the run used the TCP plane
	// (Options.Transport). WireBytes count real serialized frames —
	// headers, heartbeats and acks included — as written to / read from
	// sockets, unlike TotalBytes which is the model's accounted message
	// size.
	WireBytesOut      int64
	WireBytesIn       int64
	Retries           int64 // reconnect attempts across all links
	HeartbeatTimeouts int64 // links that entered suspicion at least once
}

// finalize derives the aggregate fields from the per-worker entries.
func (s *RunStats) finalize() {
	s.MinRound = 1 << 30
	for _, w := range s.Workers {
		s.TotalMsgs += w.MsgsSent
		s.TotalBytes += w.BytesSent
		s.TotalWork += w.Work
		s.TotalIdle += w.IdleSeconds
		s.TotalBusy += w.BusySeconds
		s.SumRounds += int64(w.Rounds)
		if w.Rounds > s.MaxRound {
			s.MaxRound = w.Rounds
		}
		if w.Rounds < s.MinRound {
			s.MinRound = w.Rounds
		}
	}
	if len(s.Workers) == 0 {
		s.MinRound = 0
	}
}

// Finalize computes aggregate totals; exported for engines outside this
// package (the simulator) that fill Workers directly.
func (s *RunStats) Finalize() { s.finalize() }
