package core_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

// chaosOpts is the canonical fault schedule of the recovery tests: a
// checkpoint every round and worker 1 killed the first time it reaches
// an incremental round.
func chaosOpts(seed int64) core.Options {
	return core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Faults: &core.Faults{
			Seed: seed,
			Kill: &core.KillSpec{Worker: 1, Round: 1},
		},
	}
}

// TestChaosKillMatchesFaultFreeSSSP is the determinism contract for an
// idempotent min-fold kernel: a run that loses a worker and recovers
// from the last sealed snapshot must produce bit-identical output to
// the fault-free run, at every forced kernel shard count.
func TestChaosKillMatchesFaultFreeSSSP(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p := mustPartition(t, g, 4, partition.Hash{})
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			base, err := core.Run(p, sssp.JobShards(0, k), core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, sssp.JobShards(0, k), chaosOpts(42))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Recoveries < 1 {
				t.Fatalf("kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
			}
			for v := range base.Values {
				if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
					t.Fatalf("vertex %d: fault-free %v, recovered %v", v, b, r)
				}
			}
		})
	}
}

// TestChaosKillMatchesFaultFreeCC repeats the contract for the CC
// kernel, whose int64 labels admit exact comparison.
func TestChaosKillMatchesFaultFreeCC(t *testing.T) {
	g := gen.SmallWorld(400, 2, 0.05, false, 2)
	p := mustPartition(t, g, 4, partition.Hash{})
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			base, err := core.Run(p, cc.JobShards(k), core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, cc.JobShards(k), chaosOpts(43))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Recoveries < 1 {
				t.Fatalf("kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
			}
			for v := range base.Values {
				if base.Values[v] != res.Values[v] {
					t.Fatalf("vertex %d: fault-free cid %d, recovered %d", v, base.Values[v], res.Values[v])
				}
			}
		})
	}
}

// TestChaosKillMatchesFaultFreePageRank: PageRank's sum aggregate is
// not schedule-independent at the bit level (floating-point addition
// order varies across legal executions), so the recovered run is held
// to the same tolerance the differential tests use rather than bitwise
// equality.
func TestChaosKillMatchesFaultFreePageRank(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, false, 3)
	p := mustPartition(t, g, 4, partition.Range{})
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			cfg := pagerank.Config{Tol: 1e-10, Shards: k}
			base, err := core.Run(p, pagerank.Job(cfg), core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(p, pagerank.Job(cfg), chaosOpts(44))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Recoveries < 1 {
				t.Fatalf("kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
			}
			for v := range base.Values {
				if d := math.Abs(base.Values[v] - res.Values[v]); d > 1e-6 {
					t.Fatalf("vertex %d: fault-free %v, recovered %v (|Δ|=%g)", v, base.Values[v], res.Values[v], d)
				}
			}
		})
	}
}

// TestKillBeforeAnySealRestartsFresh: with no checkpointing configured
// the rollback has no sealed snapshot and must restart the computation
// from scratch — fresh programs, PEval again — and still land on the
// fault-free answer.
func TestKillBeforeAnySealRestartsFresh(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 5)
	p := mustPartition(t, g, 4, partition.Hash{})
	base, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:    core.AAP,
		Timeout: time.Minute,
		Faults:  &core.Faults{Kill: &core.KillSpec{Worker: 2, Round: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: fault-free %v, restarted %v", v, b, r)
		}
	}
}

// TestCheckpointDoesNotPerturb: enabling snapshots must not change the
// answer of a fault-free run, and the run must actually seal epochs.
func TestCheckpointDoesNotPerturb(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p := mustPartition(t, g, 4, partition.Hash{})
	base, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Checkpoints < 1 {
		t.Errorf("no snapshot epoch sealed")
	}
	if res.Stats.Checkpoints > 0 && res.Stats.CheckpointBytes == 0 {
		t.Errorf("sealed %d epochs but recorded 0 state bytes", res.Stats.Checkpoints)
	}
	if res.Stats.Recoveries != 0 {
		t.Errorf("fault-free run performed %d recoveries", res.Stats.Recoveries)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: plain %v, checkpointed %v", v, b, r)
		}
	}
}

// TestDuplicateAndDelaySafeForMinFold: duplicated and delayed batches
// must leave an idempotent min-fold kernel bit-identical to the
// fault-free run and must not break termination accounting.
func TestDuplicateAndDelaySafeForMinFold(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 7)
	p := mustPartition(t, g, 4, partition.Hash{})
	base, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:    core.AAP,
		Timeout: time.Minute,
		Faults: &core.Faults{
			Seed:      9,
			DupProb:   0.3,
			DelayProb: 0.3,
			DelayBy:   time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: fault-free %v, under dup/delay %v", v, b, r)
		}
	}
}

// TestDropLiveness: dropping batches voids the determinism contract
// (the lost update never arrives), but the termination counters are
// compensated, so the run must still end cleanly.
func TestDropLiveness(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 8)
	p := mustPartition(t, g, 4, partition.Hash{})
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:    core.AAP,
		Timeout: time.Minute,
		Faults:  &core.Faults{Seed: 11, DropProb: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Values) != g.NumVertices() {
		t.Fatal("lossy run returned no result")
	}
}

// bomb panics in IncEval: satellite regression test that a worker panic
// is contained into a run error naming the worker instead of crashing
// the process.
type bomb struct{ f *partition.Fragment }

func (b *bomb) PEval(ctx *core.Context[float64]) {
	for _, v := range b.f.Out {
		ctx.Send(v, 1)
	}
}

func (b *bomb) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	panic("kaboom")
}

func (b *bomb) Get(int32) float64 { return 0 }

func TestWorkerPanicContained(t *testing.T) {
	g := gen.Grid(10, 10, 2)
	p := mustPartition(t, g, 2, partition.Hash{})
	job := core.Job[float64]{
		Name:      "bomb",
		New:       func(f *partition.Fragment) core.Program[float64] { return &bomb{f: f} },
		Aggregate: math.Min,
	}
	_, err := core.Run(p, job, core.Options{Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("panicking worker produced no error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not attributed: %v", err)
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("error does not name the worker: %v", err)
	}
}

// TestCheckpointRequiresSnapshotter: enabling checkpoints against a job
// whose programs cannot snapshot must fail up front, not at the first
// epoch.
func TestCheckpointRequiresSnapshotter(t *testing.T) {
	g := gen.Grid(8, 8, 1)
	p := mustPartition(t, g, 2, partition.Hash{})
	job := core.Job[float64]{
		Name:      "bomb",
		New:       func(f *partition.Fragment) core.Program[float64] { return &bomb{f: f} },
		Aggregate: math.Min,
	}
	_, err := core.Run(p, job, core.Options{
		Timeout:    30 * time.Second,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "Snapshotter") {
		t.Fatalf("want Snapshotter requirement error, got %v", err)
	}
}

// TestDeadlinePartialResult: a stalled worker keeps the run from ever
// terminating; Deadline must hand back the partial result wrapped in
// context.DeadlineExceeded instead of aborting with nothing.
func TestDeadlinePartialResult(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, true, 4)
	p := mustPartition(t, g, 4, partition.Hash{})
	res, err := core.Run(p, sssp.Job(0), core.Options{
		Mode:     core.AAP,
		Timeout:  time.Minute,
		Deadline: 200 * time.Millisecond,
		Faults: &core.Faults{
			Stall: &core.StallSpec{Worker: 0, Round: 0, For: time.Minute},
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res == nil {
		t.Fatal("deadline returned no partial result")
	}
	if len(res.Values) != g.NumVertices() {
		t.Fatalf("partial result has %d values, want %d", len(res.Values), g.NumVertices())
	}
	if res.Stats.Seconds <= 0 {
		t.Errorf("partial result missing stats")
	}
}
