package core_test

import (
	"math"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"aap/internal/algo/pagerank"
	"aap/internal/core"
	"aap/internal/supervise"
	"aap/internal/transport"
)

// The supervised-respawn acceptance tests drive the full self-healing
// ladder across a real process boundary: a Supervisor owns worker 1's
// host (this test binary re-exec'd into TestHelperSupervisedWorker),
// chaos SIGKILLs it mid-run, the detector declares it dead, and the
// recovery goroutine climbs the ladder — respawn + rejoin while budget
// lasts, local failback past it — with the run landing bit-identical to
// fault-free either way. The link-fault tests exercise the other side
// of the same detector: a partition that heals before DeadAfter must
// cost zero restarts and zero recoveries.

const (
	superviseWorkerEnv = "AAP_SUPERVISE_WORKER"
	superviseAddrEnv   = "AAP_SUPERVISE_ADDR"
	superviseIncEnv    = "AAP_SUPERVISE_INC"
	superviseAlgoEnv   = "AAP_SUPERVISE_ALGO"

	// superviseTickerRounds paces the link-fault tests: with Latency
	// stretching each self-message round, the run deterministically
	// outlives the whole partition schedule.
	superviseTickerRounds = 300
)

func prSuperviseConfig() pagerank.Config { return pagerank.Config{Tol: 1e-10, Shards: 2} }

// superviseChildTopts is the re-exec'd host's view of the plane: same
// fast heartbeats as the parent, but a DeadAfter far above any injected
// partition window so only the parent's detector drives the test.
func superviseChildTopts(inc uint64) core.TransportOptions {
	topts := remoteTopts()
	topts.DeadAfter = 2 * time.Second
	topts.Incarnation = inc
	return topts
}

// TestHelperSupervisedWorker is not a test: it is the supervised worker
// host process, entered only via the Supervisor's launch spec.
func TestHelperSupervisedWorker(t *testing.T) {
	addr := os.Getenv(superviseAddrEnv)
	if addr == "" {
		t.Skip("helper process for the supervised-respawn tests")
	}
	w, err := strconv.Atoi(os.Getenv(superviseWorkerEnv))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := strconv.ParseUint(os.Getenv(superviseIncEnv), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	topts := superviseChildTopts(inc)
	switch algo := os.Getenv(superviseAlgoEnv); algo {
	case "pagerank":
		err = core.ServeWorker(prTestPartition(t), pagerank.Job(prSuperviseConfig()), w, addr, topts)
	case "ticker":
		err = core.ServeWorker(remoteTestPartition(t), tickerJob(superviseTickerRounds), w, addr, topts)
	default:
		err = core.ServeWorker(remoteTestPartition(t), remoteTestJob(), w, addr, topts)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// newTestSupervisor builds a Supervisor whose launch spec re-execs this
// test binary as the host of the victim worker running algo. The
// Backoff seed stands in for the run seed: the respawn schedule replays
// identically across runs.
func newTestSupervisor(t *testing.T, algo string, maxRestarts int) *supervise.Supervisor {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spec := supervise.Spec{
		Worker: remoteVictim,
		Start: func(addr string, inc uint64) (*exec.Cmd, error) {
			cmd := exec.Command(exe, "-test.run", "^TestHelperSupervisedWorker$", "-test.timeout", "2m")
			cmd.Env = append(os.Environ(),
				superviseWorkerEnv+"="+strconv.Itoa(remoteVictim),
				superviseAddrEnv+"="+addr,
				superviseIncEnv+"="+strconv.FormatUint(inc, 10),
				superviseAlgoEnv+"="+algo,
			)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd, nil
		},
	}
	sup := supervise.New(supervise.Policy{
		MaxRestarts: maxRestarts,
		Backoff:     transport.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 42},
	}, spec)
	t.Cleanup(sup.Stop)
	return sup
}

// killer shoots the victim's current incarnation from the RoundHook,
// at most once per incarnation and at most maxKills times — the
// per-incarnation guard is what lets "kill it again after it rejoined"
// work even though recovery rewinds the round counter.
type killer struct {
	sup      *supervise.Supervisor
	maxKills int

	mu      sync.Mutex
	kills   int
	shotInc uint64
}

func (k *killer) hook(worker int, round int32) {
	if worker != remoteVictim || round < 2 {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.kills >= k.maxKills {
		return
	}
	if inc := k.sup.Incarnation(remoteVictim); inc > k.shotInc {
		k.shotInc = inc
		k.kills++
		_ = k.sup.Kill(remoteVictim) // SIGKILL: no goodbye, only silence
	}
}

func (k *killer) count() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.kills
}

func supervisedTopts(sup *supervise.Supervisor) core.TransportOptions {
	topts := remoteTopts()
	topts.RemoteWorkers = []int{remoteVictim}
	topts.OnListen = sup.OnListen
	topts.Supervisor = sup
	return topts
}

// TestSupervisedRespawnRejoins is the headline acceptance run: the
// victim host is SIGKILLed twice mid-run and the supervisor must
// respawn and rejoin it both times — two restarts, zero failbacks, and
// output matching the fault-free run (bit-identical for the idempotent
// kernel, 1e-4 relative for PageRank).
func TestSupervisedRespawnRejoins(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		p := remoteTestPartition(t)
		job := remoteTestJob()
		base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		sup := newTestSupervisor(t, "sssp", 2)
		k := &killer{sup: sup, maxKills: 2}
		topts := supervisedTopts(sup)
		res, err := core.Run(p, job, core.Options{
			Mode:       core.AAP,
			Timeout:    time.Minute,
			Checkpoint: core.CheckpointOptions{EveryRounds: 1},
			Transport:  &topts,
			RoundHook:  k.hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSupervised(t, res.Stats, k, 2, 2)
		if rep := sup.Report(); rep.Restarts != 2 || rep.Hosts[0].Exhausted {
			t.Fatalf("supervisor report: %+v, want 2 restarts, budget intact", rep)
		}
		sameFloats(t, base.Values, res.Values, "respawn+rejoin x2")
	})
	t.Run("pagerank", func(t *testing.T) {
		p := prTestPartition(t)
		job := pagerank.Job(prSuperviseConfig())
		base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		sup := newTestSupervisor(t, "pagerank", 2)
		k := &killer{sup: sup, maxKills: 2}
		topts := supervisedTopts(sup)
		res, err := core.Run(p, job, core.Options{
			Mode:       core.AAP,
			Timeout:    time.Minute,
			Checkpoint: core.CheckpointOptions{EveryRounds: 1},
			Transport:  &topts,
			RoundHook:  k.hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSupervised(t, res.Stats, k, 2, 2)
		for v := range base.Values {
			b, r := base.Values[v], res.Values[v]
			if d := math.Abs(b - r); d > 1e-4*math.Max(math.Abs(b), 1e-12) {
				t.Fatalf("vertex %d: fault-free %v, supervised %v (rel Δ too large)", v, b, r)
			}
		}
	})
}

// TestSupervisedBudgetFailback kills the host once past its restart
// budget: two respawns succeed, the third kill exhausts the policy and
// the engine fails the worker back to a local Program — the run still
// completes and still matches fault-free output.
func TestSupervisedBudgetFailback(t *testing.T) {
	p := remoteTestPartition(t)
	job := remoteTestJob()
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sup := newTestSupervisor(t, "sssp", 2)
	k := &killer{sup: sup, maxKills: 3}
	topts := supervisedTopts(sup)
	res, err := core.Run(p, job, core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Transport:  &topts,
		RoundHook:  k.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSupervised(t, res.Stats, k, 3, 2)
	if res.Stats.Failbacks < 1 {
		t.Fatalf("budget exhausted but no failback recorded: %+v", res.Stats)
	}
	if rep := sup.Report(); !rep.Hosts[0].Exhausted {
		t.Fatalf("supervisor report should show an exhausted budget: %+v", rep)
	}
	sameFloats(t, base.Values, res.Values, "budget failback")
}

// assertSupervised checks the supervision ladder's accounting: every
// kill fired, restarts match the expected rung, and rejoins were timed.
func assertSupervised(t *testing.T, st core.RunStats, k *killer, wantKills int, wantRestarts int64) {
	t.Helper()
	if got := k.count(); got != wantKills {
		t.Fatalf("run finished after %d kills, want %d; nothing was tested", got, wantKills)
	}
	if st.Restarts != wantRestarts {
		t.Fatalf("restarts = %d, want %d: %+v", st.Restarts, wantRestarts, st)
	}
	if st.HeartbeatTimeouts < 1 {
		t.Fatalf("host was killed but no heartbeat timeout recorded: %+v", st)
	}
	if st.Recoveries < int64(wantKills) {
		t.Fatalf("recoveries = %d, want >= %d", st.Recoveries, wantKills)
	}
	if wantRestarts > 0 && st.RejoinSeconds <= 0 {
		t.Fatalf("restarts happened but no rejoin time recorded: %+v", st)
	}
}

// hostLink is the victim host's link endpoint in an M-worker plane.
func hostLink(m int) int32 { return int32(m + 1 + remoteVictim) }

// TestSupervisedPartitionHealNoRestarts seeds three partition windows
// on the victim's host link, each longer than SuspectAfter but shorter
// than DeadAfter: the detector must walk Alive→Suspect→Alive three
// times without ever reaching the supervisor — zero restarts, zero
// recoveries, fault-free output.
func TestSupervisedPartitionHealNoRestarts(t *testing.T) {
	p := remoteTestPartition(t)
	job := tickerJob(superviseTickerRounds)
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sup := newTestSupervisor(t, "ticker", 2)
	topts := supervisedTopts(sup)
	topts.DeadAfter = 500 * time.Millisecond // every 150ms window heals well before death
	topts.LinkFaults = &transport.LinkFaults{
		Seed:    42,
		Windows: transport.PartitionSchedule(hostLink(p.M), 3, 300*time.Millisecond, 250*time.Millisecond, 150*time.Millisecond),
	}
	res, err := core.Run(p, job, core.Options{
		Mode:       core.AAP,
		Latency:    3 * time.Millisecond,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Transport:  &topts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HeartbeatTimeouts < 1 {
		t.Fatalf("partitions opened but the detector never suspected: %+v", res.Stats)
	}
	if res.Stats.Restarts != 0 || res.Stats.Recoveries != 0 || res.Stats.Failbacks != 0 {
		t.Fatalf("healed partitions must cost nothing: restarts=%d recoveries=%d failbacks=%d",
			res.Stats.Restarts, res.Stats.Recoveries, res.Stats.Failbacks)
	}
	if rep := sup.Report(); rep.Restarts != 0 {
		t.Fatalf("supervisor fired on a healed partition: %+v", rep)
	}
	sameFloats(t, base.Values, res.Values, "healed partitions")
}

// TestSupervisedPartitionKillConverges overlaps a real SIGKILL with an
// open partition window: the detector cannot tell silence from death
// until the host truly is dead, and the supervisor must still converge —
// respawn, rejoin through the still-partitioned link (the new Hello
// passes before the link is named; the restore RPC waits out the
// window), and land fault-free output.
func TestSupervisedPartitionKillConverges(t *testing.T) {
	p := remoteTestPartition(t)
	job := tickerJob(superviseTickerRounds)
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sup := newTestSupervisor(t, "ticker", 2)
	topts := supervisedTopts(sup)
	topts.LinkFaults = &transport.LinkFaults{
		Seed:    42,
		Windows: []transport.Window{{Link: hostLink(p.M), Dir: transport.DirBoth, After: 300 * time.Millisecond, For: 450 * time.Millisecond}},
	}
	timer := time.AfterFunc(400*time.Millisecond, func() { _ = sup.Kill(remoteVictim) })
	defer timer.Stop()
	res, err := core.Run(p, job, core.Options{
		Mode:       core.AAP,
		Latency:    3 * time.Millisecond,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Transport:  &topts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Restarts < 1 {
		t.Fatalf("killed under partition but never respawned: %+v", res.Stats)
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("killed under partition but no recovery ran: %+v", res.Stats)
	}
	sameFloats(t, base.Values, res.Values, "kill under partition")
}
