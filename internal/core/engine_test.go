package core_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/ref"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

func mustPartition(t testing.TB, g *graph.Graph, m int, s partition.Strategy) *partition.Partitioned {
	t.Helper()
	p, err := partition.Build(g, m, s)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	return p
}

func modes() []core.Options {
	return []core.Options{
		{Mode: core.AAP},
		{Mode: core.BSP},
		{Mode: core.AP},
		{Mode: core.SSP, Staleness: 2},
		{Mode: core.Hsync},
	}
}

func TestSSSPMatchesDijkstraAllModes(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	want := ref.SSSP(g, 0)
	for _, m := range []int{1, 2, 4, 8} {
		p := mustPartition(t, g, m, partition.Hash{})
		for _, opts := range modes() {
			opts := opts
			t.Run(fmt.Sprintf("m=%d/%s", m, opts.Mode), func(t *testing.T) {
				res, err := core.Run(p, sssp.Job(0), opts)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumVertices(); v++ {
					id := p.G.IDOf(int32(v))
					orig, _ := g.IndexOf(id)
					if got, w := res.Values[v], want[orig]; got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
						t.Fatalf("vertex %d: got %v want %v", id, got, w)
					}
				}
			})
		}
	}
}

func TestCCMatchesUnionFindAllModes(t *testing.T) {
	g := gen.SmallWorld(400, 2, 0.05, false, 2)
	want := ref.CC(g)
	for _, m := range []int{1, 3, 8} {
		p := mustPartition(t, g, m, partition.Hash{})
		for _, opts := range modes() {
			opts := opts
			t.Run(fmt.Sprintf("m=%d/%s", m, opts.Mode), func(t *testing.T) {
				res, err := core.Run(p, cc.Job(), opts)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumVertices(); v++ {
					id := p.G.IDOf(int32(v))
					orig, _ := g.IndexOf(id)
					if res.Values[v] != want[orig] {
						t.Fatalf("vertex %d: got cid %d want %d", id, res.Values[v], want[orig])
					}
				}
			})
		}
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, false, 3)
	want := ref.PageRank(g, 0.85, 1e-9, 500)
	for _, m := range []int{1, 4} {
		p := mustPartition(t, g, m, partition.Range{})
		for _, opts := range modes() {
			opts := opts
			t.Run(fmt.Sprintf("m=%d/%s", m, opts.Mode), func(t *testing.T) {
				res, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-10}), opts)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumVertices(); v++ {
					id := p.G.IDOf(int32(v))
					orig, _ := g.IndexOf(id)
					if d := math.Abs(res.Values[v] - want[orig]); d > 1e-5 {
						t.Fatalf("vertex %d: got %v want %v (|Δ|=%g)", id, res.Values[v], want[orig], d)
					}
				}
			})
		}
	}
}

// TestChurchRosserSSSP exercises Theorem 2: runs with randomized message
// latency, different modes, different worker counts and different
// partition strategies must all converge to the same fixpoint.
func TestChurchRosserSSSP(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 7)
	want := ref.SSSP(g, 0)
	strategies := []partition.Strategy{partition.Hash{}, partition.Range{}, partition.BFSLocality{Seed: 1}}
	for seed := int64(0); seed < 6; seed++ {
		for _, s := range strategies {
			p := mustPartition(t, g, 4+int(seed), s)
			opts := core.Options{
				Mode:    core.Mode(seed % 3), // cycles AAP, BSP, AP
				Jitter:  2 * time.Millisecond,
				Seed:    seed,
				LFloor:  int(seed % 4),
				Timeout: time.Minute,
			}
			res, err := core.Run(p, sssp.Job(0), opts)
			if err != nil {
				t.Fatalf("seed %d strategy %s: %v", seed, s.Name(), err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				id := p.G.IDOf(int32(v))
				orig, _ := g.IndexOf(id)
				got, w := res.Values[v], want[orig]
				if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
					t.Fatalf("seed %d strategy %s vertex %d: got %v want %v", seed, s.Name(), id, got, w)
				}
			}
		}
	}
}

func TestRunStatsPopulated(t *testing.T) {
	g := gen.Grid(20, 20, 1)
	p := mustPartition(t, g, 4, partition.Range{})
	res, err := core.Run(p, cc.Job(), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Job != "cc" || st.Mode != "AAP" {
		t.Errorf("bad labels: %q %q", st.Job, st.Mode)
	}
	if len(st.Workers) != 4 {
		t.Fatalf("want 4 worker stats, got %d", len(st.Workers))
	}
	if st.MaxRound < 1 || st.TotalWork == 0 {
		t.Errorf("suspicious stats: rounds=%d work=%d", st.MaxRound, st.TotalWork)
	}
	if st.TotalMsgs == 0 || st.TotalBytes == 0 {
		t.Errorf("expected cross-fragment traffic, got msgs=%d bytes=%d", st.TotalMsgs, st.TotalBytes)
	}
	if st.Seconds <= 0 {
		t.Errorf("non-positive duration %v", st.Seconds)
	}
}

func TestSingleFragmentNoMessages(t *testing.T) {
	g := gen.Grid(10, 10, 2)
	p := mustPartition(t, g, 1, partition.Hash{})
	res, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMsgs != 0 {
		t.Errorf("single fragment sent %d messages", res.Stats.TotalMsgs)
	}
	want := ref.SSSP(g, 0)
	for v := range want {
		id := p.G.IDOf(int32(v))
		orig, _ := g.IndexOf(id)
		if res.Values[v] != want[orig] {
			t.Fatalf("vertex %d: got %v want %v", id, res.Values[v], want[orig])
		}
	}
}

func TestUnreachableVerticesStayInfinite(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(2, 3, 1) // disconnected from source 0
	g := b.Build()
	p := mustPartition(t, g, 2, partition.Hash{})
	res, err := core.Run(p, sssp.Job(0), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := p.G.IDOf(int32(v))
		d := res.Values[v]
		switch id {
		case 0:
			if d != 0 {
				t.Errorf("source dist %v", d)
			}
		case 1:
			if d != 1 {
				t.Errorf("dist(1)=%v", d)
			}
		default:
			if !math.IsInf(d, 1) {
				t.Errorf("vertex %d should be unreachable, got %v", id, d)
			}
		}
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := gen.Grid(8, 8, 3)
	p := mustPartition(t, g, 4, partition.Hash{})
	// A job that ping-pongs forever: every IncEval re-sends.
	job := core.Job[float64]{
		Name: "pingpong",
		New: func(f *partition.Fragment) core.Program[float64] {
			return &pingpong{f: f}
		},
		Aggregate: math.Min,
	}
	_, err := core.Run(p, job, core.Options{MaxRounds: 50, Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("expected max-rounds error")
	}
}

type pingpong struct{ f *partition.Fragment }

func (p *pingpong) PEval(ctx *core.Context[float64]) {
	for _, v := range p.f.Out {
		ctx.Send(v, 1)
	}
}

func (p *pingpong) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, v := range p.f.Out {
		ctx.Send(v, float64(ctx.Round()))
	}
	_ = msgs
}

func (p *pingpong) Get(int32) float64 { return 0 }

func TestFoldMessages(t *testing.T) {
	buf := []core.VMsg[float64]{
		{V: 3, Val: 5, Round: 1, From: 0},
		{V: 1, Val: 2, Round: 2, From: 1},
		{V: 3, Val: 4, Round: 3, From: 2},
		{V: 1, Val: 7, Round: 0, From: 0},
	}
	out := core.FoldMessages(buf, math.Min)
	if len(out) != 2 {
		t.Fatalf("want 2 folded messages, got %d", len(out))
	}
	if out[0].V != 1 || out[0].Val != 2 {
		t.Errorf("folded[0] = %+v", out[0])
	}
	if out[1].V != 3 || out[1].Val != 4 || out[1].Round != 3 {
		t.Errorf("folded[1] = %+v", out[1])
	}
	if core.FoldMessages(nil, math.Min) != nil {
		t.Error("empty fold should be nil")
	}
}

func TestPhysicalWorkerLimit(t *testing.T) {
	g := gen.PowerLaw(200, 4, 2.1, true, 9)
	p := mustPartition(t, g, 16, partition.Hash{})
	res, err := core.Run(p, sssp.Job(0), core.Options{PhysicalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SSSP(g, 0)
	for v := 0; v < g.NumVertices(); v++ {
		id := p.G.IDOf(int32(v))
		orig, _ := g.IndexOf(id)
		got, w := res.Values[v], want[orig]
		if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
			t.Fatalf("vertex %d: got %v want %v", id, got, w)
		}
	}
}
