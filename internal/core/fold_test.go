package core

import (
	"math"
	"math/rand"
	"testing"

	"aap/internal/partition"
)

// foldEqual reports whether two fold outputs are bit-identical.
func foldEqual(a, b []VMsg[float64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.V != y.V || x.Round != y.Round || x.From != y.From {
			return false
		}
		// Compare values bitwise so ±0 and NaN differences surface.
		if math.Float64bits(x.Val) != math.Float64bits(y.Val) {
			return false
		}
	}
	return true
}

// randomFoldBuffer draws msgs messages over the fragment's slot domain
// with heavy duplication and out-of-order rounds.
func randomFoldBuffer(frag *partition.Fragment, rng *rand.Rand, msgs int) []VMsg[float64] {
	owned := frag.NumOwned()
	buf := make([]VMsg[float64], msgs)
	for i := range buf {
		var v int32
		if nOut := len(frag.Out); nOut > 0 && rng.Intn(3) == 0 {
			v = frag.Out[rng.Intn(nOut)]
		} else {
			v = frag.Lo + int32(rng.Intn(owned))
		}
		buf[i] = VMsg[float64]{
			V:     v,
			Val:   math.Floor(rng.Float64()*1000) / 8, // exact in binary
			Round: int32(rng.Intn(6)),
			From:  int32(rng.Intn(8)),
		}
	}
	return buf
}

// TestFolderMatchesGeneric is the differential fuzz test of the dense
// fold: on thousands of random buffers (duplicates, out-of-order rounds,
// varying sizes) the Folder must produce output bit-identical to the
// map-based reference, including Round/From tie-breaking.
func TestFolderMatchesGeneric(t *testing.T) {
	p := buildPartition(t, 4)
	rng := rand.New(rand.NewSource(99))
	for _, frag := range p.Frags {
		folder := NewFolder[float64](frag)
		for trial := 0; trial < 500; trial++ {
			n := rng.Intn(200)
			buf := randomFoldBuffer(frag, rng, n)
			want := foldMessagesGeneric(buf, math.Min)
			got := folder.Fold(buf, math.Min)
			if !foldEqual(got, want) {
				t.Fatalf("frag %d trial %d: dense fold diverged\n got %+v\nwant %+v",
					frag.ID, trial, got, want)
			}
		}
	}
}

// TestFolderAggregationOrder pins the exact fold semantics: values are
// aggregated in buffer order and Round/From follow the latest-round
// contribution (strictly greater replaces).
func TestFolderAggregationOrder(t *testing.T) {
	p := buildPartition(t, 2)
	frag := p.Frags[0]
	v := frag.Lo
	buf := []VMsg[float64]{
		{V: v, Val: 5, Round: 2, From: 1},
		{V: v, Val: 3, Round: 1, From: 0}, // lower round: value folds, stamp kept
		{V: v, Val: 7, Round: 2, From: 3}, // equal round: stamp kept
	}
	folder := NewFolder[float64](frag)
	out := folder.Fold(buf, math.Min)
	if len(out) != 1 {
		t.Fatalf("folded to %d entries", len(out))
	}
	if out[0].Val != 3 || out[0].Round != 2 || out[0].From != 1 {
		t.Fatalf("got %+v, want Val 3 Round 2 From 1", out[0])
	}
	if !foldEqual(out, foldMessagesGeneric(buf, math.Min)) {
		t.Fatal("dense and generic folds disagree on the pinned case")
	}
}

// TestFolderEmptyAndReuse checks the nil-on-empty contract and that
// scratch reuse across rounds does not leak folded state.
func TestFolderEmptyAndReuse(t *testing.T) {
	p := buildPartition(t, 2)
	frag := p.Frags[0]
	folder := NewFolder[float64](frag)
	if folder.Fold(nil, math.Min) != nil {
		t.Fatal("empty fold should be nil")
	}
	v := frag.Lo
	first := folder.Fold([]VMsg[float64]{{V: v, Val: 1}}, math.Min)
	if len(first) != 1 || first[0].Val != 1 {
		t.Fatalf("first fold: %+v", first)
	}
	// A later round for a different vertex must not resurrect v.
	u := frag.Lo + 1
	second := folder.Fold([]VMsg[float64]{{V: u, Val: 9}}, math.Min)
	if len(second) != 1 || second[0].V != u || second[0].Val != 9 {
		t.Fatalf("second fold leaked scratch: %+v", second)
	}
}

// TestFolderFallbackArbitraryVertices exercises the MapReduce-style
// routing where a message's vertex has no slot in the receiving
// fragment: the Folder must fall back to the generic fold and still
// match it exactly.
func TestFolderFallbackArbitraryVertices(t *testing.T) {
	p := buildPartition(t, 4)
	frag := p.Frags[1]
	rng := rand.New(rand.NewSource(3))
	folder := NewFolder[float64](frag)
	n := int32(p.G.NumVertices())
	for trial := 0; trial < 200; trial++ {
		buf := randomFoldBuffer(frag, rng, rng.Intn(50))
		// Splice in vertices the fragment neither owns nor copies,
		// including synthetic ids outside the graph's vertex range.
		for i := 0; i < 5; i++ {
			v := int32(rng.Intn(int(n)))
			buf = append(buf, VMsg[float64]{V: v, Val: float64(rng.Intn(100)), Round: int32(rng.Intn(4))})
		}
		buf = append(buf,
			VMsg[float64]{V: n + int32(rng.Intn(100)), Val: 1},
			VMsg[float64]{V: -1 - int32(rng.Intn(3)), Val: 2},
		)
		want := foldMessagesGeneric(buf, math.Min)
		got := folder.Fold(buf, math.Min)
		if !foldEqual(got, want) {
			t.Fatalf("trial %d: fallback fold diverged", trial)
		}
	}
}
