package core

import (
	"fmt"
	"sync"
	"time"

	"aap/internal/codec"
	"aap/internal/partition"
	"aap/internal/transport"
)

// Remote Program hosting. The parent process keeps everything stateful
// about the run — worker loops, inboxes, the coordinator, the
// checkpoint store — and moves only the Program (the PIE kernel) into
// the worker process. The host is a passive RPC executor: PEval /
// IncEval / Snapshot / Restore / Collect arrive as frames, run against
// the local Program, and the produced designated messages travel back
// in the reply for the parent to route through its ordinary flush path.
// This keeps the Mattern and seal accounting entirely inside the
// parent, so a host process dying at any instant loses only Program
// state — exactly what the sealed snapshot restores.

// RPC ops. Request payload: [op int32][args...]; reply: [op int32]
// [results...]. Calls are serialized per proxy (one outstanding), so
// replies pair with requests by link FIFO order.
const (
	rpcPEval int32 = iota + 1
	rpcIncEval
	rpcSnapshot
	rpcRestore
	rpcCollect
	rpcReset
	rpcShutdown
)

// evalReply is the wire shape both eval ops return: [work int64]
// [ndest uint32] then per destination [dest int32][n uint32][msgs...].

// remoteProg is the parent-side Program proxy for one remote-hosted
// worker. It implements Program and Snapshotter by shipping each call
// to the host endpoint and injecting the returned messages into the
// worker's Context, so the engine cannot tell it from a local kernel.
type remoteProg[T any] struct {
	e    *engine[T]
	w    int   // worker id (= our endpoint)
	host int32 // host endpoint id

	mu     sync.Mutex // serializes calls (worker loop vs. recovery)
	respCh chan []byte

	// dead aborts blocked calls when the heartbeat verdict lands. Unlike
	// a sync.Once-guarded close, the channel is replaced by rejoin()
	// when a supervisor respawns the host, so a proxy can die and come
	// back any number of times across one run.
	deadMu sync.Mutex
	dead   chan struct{}
	isDead bool

	collected []T
	haveVals  bool
}

func newRemoteProg[T any](e *engine[T], w int) *remoteProg[T] {
	return &remoteProg[T]{
		e:      e,
		w:      w,
		host:   hostEndpoint(e.p.M, w),
		respCh: make(chan []byte, 1),
		dead:   make(chan struct{}),
	}
}

// markDead aborts any blocked call; fired by the heartbeat verdict.
func (rp *remoteProg[T]) markDead() {
	rp.deadMu.Lock()
	if !rp.isDead {
		rp.isDead = true
		close(rp.dead)
	}
	rp.deadMu.Unlock()
}

func (rp *remoteProg[T]) alive() bool {
	rp.deadMu.Lock()
	defer rp.deadMu.Unlock()
	return !rp.isDead
}

// deadCh snapshots the current death channel; callers select on the
// snapshot so a concurrent rejoin (which swaps the channel) cannot race
// the read.
func (rp *remoteProg[T]) deadCh() <-chan struct{} {
	rp.deadMu.Lock()
	defer rp.deadMu.Unlock()
	return rp.dead
}

// rejoin rearms a proxy whose host was respawned: the new incarnation
// has completed its handshake, so calls may flow again. Called on the
// recovery goroutine with the run quiesced — no call is in flight, and
// the rollback that follows restores the Program over RPC.
func (rp *remoteProg[T]) rejoin() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	select {
	case <-rp.respCh: // stale reply from the dead incarnation
	default:
	}
	rp.deadMu.Lock()
	if rp.isDead {
		rp.isDead = false
		rp.dead = make(chan struct{})
	}
	rp.deadMu.Unlock()
	rp.collected = nil
	rp.haveVals = false
}

// deliver hands a reply payload to the blocked call; runs on the
// transport reader goroutine.
func (rp *remoteProg[T]) deliver(payload []byte) {
	select {
	case rp.respCh <- payload:
	default:
	}
}

// call ships one RPC and blocks for the reply. It does NOT abort on
// e.done — result collection runs after the run finishes — only on host
// death or the timeout. A nil return means the host is gone; the caller
// returns inert results and the death path (recovery) takes over.
func (rp *remoteProg[T]) call(payload []byte, timeout time.Duration) *codec.Reader {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	select {
	case <-rp.respCh: // reply abandoned by an aborted predecessor
	default:
	}
	if err := rp.e.tp.Send(int32(rp.w), rp.host, transport.KindRPC, payload); err != nil {
		return nil
	}
	dead := rp.deadCh()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case resp := <-rp.respCh:
		r := codec.NewReader(resp)
		r.Int32() // op echo
		return r
	case <-dead:
		return nil
	case <-t.C:
		rp.markDead()
		return nil
	}
}

// rpcTimeout bounds a single Program call round trip. A host that
// cannot answer an eval this long is as good as dead — the heartbeat
// detector will almost always fire first.
const rpcTimeout = 60 * time.Second

// injectEval decodes an eval reply into ctx: work accounting plus every
// produced designated message, routed exactly as a local kernel's
// ctx.Send would have.
func (rp *remoteProg[T]) injectEval(r *codec.Reader, ctx *Context[T]) {
	if r == nil {
		return // host died mid-call; recovery rolls this round back
	}
	e := rp.e
	ctx.AddWork(int(r.Int64()))
	nd := int(r.Uint32())
	for d := 0; d < nd && r.Err() == nil; d++ {
		dest := int(r.Int32())
		n := int(r.Uint32())
		if dest < 0 || dest >= e.p.M || n > r.Remaining()+1 {
			e.fail(fmt.Errorf("core: %s: corrupt eval reply from host of worker %d", e.job.Name, rp.w))
			return
		}
		for i := 0; i < n && r.Err() == nil; i++ {
			m := VMsg[T]{V: r.Int32(), Round: r.Int32(), From: r.Int32()}
			m.Val = e.job.DecodeVal(r)
			ctx.push(dest, m)
		}
	}
	if err := r.Err(); err != nil {
		e.fail(fmt.Errorf("core: %s: corrupt eval reply from host of worker %d: %w", e.job.Name, rp.w, err))
	}
}

func (rp *remoteProg[T]) PEval(ctx *Context[T]) {
	pl := codec.AppendInt32(codec.AppendInt32(nil, rpcPEval), ctx.round)
	rp.injectEval(rp.call(pl, rpcTimeout), ctx)
}

func (rp *remoteProg[T]) IncEval(msgs []VMsg[T], ctx *Context[T]) {
	e := rp.e
	pl := codec.AppendInt32(codec.AppendInt32(nil, rpcIncEval), ctx.round)
	pl = codec.AppendUint32(pl, uint32(len(msgs)))
	for _, m := range msgs {
		pl = codec.AppendInt32(pl, m.V)
		pl = codec.AppendInt32(pl, m.Round)
		pl = codec.AppendInt32(pl, m.From)
		pl = e.job.EncodeVal(pl, m.Val)
	}
	rp.injectEval(rp.call(pl, rpcTimeout), ctx)
}

func (rp *remoteProg[T]) Get(v int32) T {
	var zero T
	if !rp.haveVals {
		r := rp.call(codec.AppendInt32(nil, rpcCollect), rpcTimeout)
		if r == nil {
			return zero // dead host; rollback replaced us for real runs
		}
		f := rp.e.p.Frags[rp.w]
		n := int(f.Hi - f.Lo)
		if lim := r.Remaining() + 1; n > lim {
			return zero
		}
		vals := make([]T, n)
		for i := range vals {
			vals[i] = rp.e.job.DecodeVal(r)
		}
		if r.Err() != nil {
			return zero
		}
		rp.collected = vals
		rp.haveVals = true
	}
	f := rp.e.p.Frags[rp.w]
	if v < f.Lo || v >= f.Hi {
		return zero
	}
	return rp.collected[v-f.Lo]
}

func (rp *remoteProg[T]) SnapshotState() []byte {
	r := rp.call(codec.AppendInt32(nil, rpcSnapshot), rpcTimeout)
	if r == nil {
		return nil // record() skips dead proxies before getting here
	}
	return append([]byte(nil), r.Bytes()...)
}

func (rp *remoteProg[T]) RestoreState(data []byte) error {
	pl := codec.AppendBytes(codec.AppendInt32(nil, rpcRestore), data)
	r := rp.call(pl, rpcTimeout)
	if r == nil {
		return fmt.Errorf("core: host of worker %d is dead", rp.w)
	}
	if !r.Bool() {
		return fmt.Errorf("core: host of worker %d: %s", rp.w, r.String())
	}
	return r.Err()
}

// reset asks the host to rebuild a fresh Program (the from-scratch
// rollback path, where no sealed snapshot exists).
func (rp *remoteProg[T]) reset() error {
	if rp.call(codec.AppendInt32(nil, rpcReset), rpcTimeout) == nil {
		return fmt.Errorf("core: host of worker %d is dead", rp.w)
	}
	return nil
}

// shutdown tells the host process to exit; best-effort with a short
// deadline (a dead host already exited, a live one replies instantly).
func (rp *remoteProg[T]) shutdown() {
	rp.call(codec.AppendInt32(nil, rpcShutdown), 2*time.Second)
}

// ServeWorker hosts worker `workerID`'s Program for a parent engine
// listening at parentAddr: the child half of the two-process plane. The
// caller must have built the identical partitioned graph (deterministic
// generators + the same partitioner), mirroring how cluster workers
// load the same fragment assignment. ServeWorker blocks until the
// parent sends a shutdown RPC or the link to it is declared dead (the
// parent exited or the network stayed down past the retry budget).
func ServeWorker[T any](p *partition.Partitioned, job Job[T], workerID int, parentAddr string, topts TransportOptions) error {
	if workerID < 0 || workerID >= p.M {
		return fmt.Errorf("core: ServeWorker: worker %d out of range [0,%d)", workerID, p.M)
	}
	if job.EncodeVal == nil || job.DecodeVal == nil {
		return fmt.Errorf("core: %s: remote hosting requires Job.EncodeVal/DecodeVal", job.Name)
	}
	f := p.Frags[workerID]
	prog := job.New(f)
	pool := &msgPool[T]{}
	ctx := newContext[T](f, p.M, pool)
	host := hostEndpoint(p.M, workerID)

	work := make(chan transport.Frame, 16)
	dead := make(chan struct{})
	var deadOnce sync.Once
	tp, err := transport.Listen(transport.Config{
		Incarnation:    topts.Incarnation,
		HeartbeatEvery: topts.HeartbeatEvery,
		SuspectAfter:   topts.SuspectAfter,
		DeadAfter:      topts.DeadAfter,
		RetryLimit:     topts.RetryLimit,
		Retry:          transport.Backoff{Base: topts.RetryBase, Max: topts.RetryMax},
		OnFrame: func(fr transport.Frame) {
			if fr.Kind == transport.KindRPC && fr.To == host {
				select {
				case work <- fr:
				case <-dead:
				}
			}
		},
		OnPeerDead: func(int32, []int32, error) {
			deadOnce.Do(func() { close(dead) })
		},
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	if err := tp.Dial(host, parentAddr, []int32{host}, []int32{int32(workerID)}); err != nil {
		return err
	}

	scratch := make([]VMsg[T], 0, 256)
	for {
		var fr transport.Frame
		select {
		case fr = <-work:
		case <-dead:
			return nil // parent gone: the engine recovered without us
		}
		r := codec.NewReader(fr.Payload)
		op := r.Int32()
		resp := codec.AppendInt32(nil, op)
		quit := false
		switch op {
		case rpcPEval:
			ctx.round = r.Int32()
			prog.PEval(ctx)
			resp = appendEvalReply(resp, ctx, &job, pool)
		case rpcIncEval:
			ctx.round = r.Int32()
			n := int(r.Uint32())
			if lim := r.Remaining()/13 + 1; n > lim {
				return fmt.Errorf("core: ServeWorker: batch claims %d messages, %d bytes remain", n, r.Remaining())
			}
			scratch = scratch[:0]
			for i := 0; i < n && r.Err() == nil; i++ {
				m := VMsg[T]{V: r.Int32(), Round: r.Int32(), From: r.Int32()}
				m.Val = job.DecodeVal(r)
				scratch = append(scratch, m)
			}
			if r.Err() != nil {
				return fmt.Errorf("core: ServeWorker: corrupt IncEval request: %w", r.Err())
			}
			prog.IncEval(scratch, ctx)
			resp = appendEvalReply(resp, ctx, &job, pool)
		case rpcSnapshot:
			var state []byte
			if s, ok := prog.(Snapshotter); ok {
				state = s.SnapshotState()
			}
			resp = codec.AppendBytes(resp, state)
		case rpcRestore:
			data := r.Bytes()
			s, ok := prog.(Snapshotter)
			if !ok {
				resp = codec.AppendBool(resp, false)
				resp = codec.AppendString(resp, "program does not implement Snapshotter")
				break
			}
			if err := s.RestoreState(append([]byte(nil), data...)); err != nil {
				resp = codec.AppendBool(resp, false)
				resp = codec.AppendString(resp, err.Error())
			} else {
				resp = codec.AppendBool(resp, true)
				resp = codec.AppendString(resp, "")
			}
		case rpcCollect:
			for v := f.Lo; v < f.Hi; v++ {
				resp = job.EncodeVal(resp, prog.Get(v))
			}
		case rpcReset:
			prog = job.New(f)
			ctx = newContext[T](f, p.M, pool)
		case rpcShutdown:
			quit = true
		default:
			return fmt.Errorf("core: ServeWorker: unknown rpc op %d", op)
		}
		if err := tp.Send(host, fr.From, transport.KindRPC, resp); err != nil {
			return nil // link died under us
		}
		if quit {
			// Give the writer a beat to flush the ack before closing.
			time.Sleep(50 * time.Millisecond)
			return nil
		}
	}
}

// appendEvalReply drains ctx's produced messages into an eval reply and
// recycles the buffers.
func appendEvalReply[T any](resp []byte, ctx *Context[T], job *Job[T], pool *msgPool[T]) []byte {
	out, work := ctx.takeOut()
	resp = codec.AppendInt64(resp, work)
	nd := 0
	for _, msgs := range out {
		if len(msgs) > 0 {
			nd++
		}
	}
	resp = codec.AppendUint32(resp, uint32(nd))
	for j, msgs := range out {
		if len(msgs) == 0 {
			continue
		}
		resp = codec.AppendInt32(resp, int32(j))
		resp = codec.AppendUint32(resp, uint32(len(msgs)))
		for _, m := range msgs {
			resp = codec.AppendInt32(resp, m.V)
			resp = codec.AppendInt32(resp, m.Round)
			resp = codec.AppendInt32(resp, m.From)
			resp = job.EncodeVal(resp, m.Val)
		}
		pool.put(msgs)
	}
	ctx.ReleaseOut(out)
	return resp
}
