package core

import (
	"math"
	"math/rand"
	"testing"

	"aap/internal/gen"
	"aap/internal/partition"
)

// benchBuffer builds a message buffer addressed at fragment frag: msgs
// messages drawn over the fragment's owned vertices and F.O copies, with
// duplicates and out-of-order rounds, as an IncEval round would see.
func benchBuffer(frag *partition.Fragment, msgs int, seed int64) []VMsg[float64] {
	rng := rand.New(rand.NewSource(seed))
	owned := int(frag.Hi - frag.Lo)
	buf := make([]VMsg[float64], msgs)
	for i := range buf {
		var v int32
		if nOut := len(frag.Out); nOut > 0 && rng.Intn(4) == 0 {
			v = frag.Out[rng.Intn(nOut)]
		} else {
			v = frag.Lo + int32(rng.Intn(owned))
		}
		buf[i] = VMsg[float64]{
			V:     v,
			Val:   rng.Float64() * 100,
			Round: int32(rng.Intn(8)),
			From:  int32(rng.Intn(4)),
		}
	}
	return buf
}

func benchFragment(b *testing.B) *partition.Fragment {
	b.Helper()
	g := gen.Random(20000, 80000, false, 42)
	p, err := partition.Build(g, 8, partition.Hash{})
	if err != nil {
		b.Fatal(err)
	}
	return p.Frags[0]
}

// BenchmarkFoldMessages measures the fold path the concurrent engine runs
// every IncEval round: the dense per-worker Folder.
func BenchmarkFoldMessages(b *testing.B) {
	frag := benchFragment(b)
	buf := benchBuffer(frag, 4096, 7)
	folder := NewFolder[float64](frag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := folder.Fold(buf, math.Min)
		if len(out) == 0 {
			b.Fatal("empty fold")
		}
	}
}

// BenchmarkFoldMessagesGeneric measures the map-based reference fold the
// dense path replaced (still used for arbitrary routing).
func BenchmarkFoldMessagesGeneric(b *testing.B) {
	frag := benchFragment(b)
	buf := benchBuffer(frag, 4096, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := foldMessagesGeneric(buf, math.Min)
		if len(out) == 0 {
			b.Fatal("empty fold")
		}
	}
}
