package core

import (
	"math"
	"testing"
	"testing/quick"

	"aap/internal/gen"
	"aap/internal/partition"
)

func buildPartition(t testing.TB, m int) *partition.Partitioned {
	t.Helper()
	g := gen.PowerLaw(200, 5, 2.1, false, 7)
	p, err := partition.Build(g, m, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestContextSendRoutesToOwner(t *testing.T) {
	p := buildPartition(t, 4)
	f := p.Frags[0]
	if len(f.Out) == 0 {
		t.Skip("fragment 0 has no out-border on this seed")
	}
	ctx := newContext[float64](f, p.M, &msgPool[float64]{})
	ctx.round = 3
	v := f.Out[0]
	ctx.Send(v, 1.5)
	out, _ := ctx.takeOut()
	owner := p.Owner(v)
	for j, msgs := range out {
		if j == owner {
			if len(msgs) != 1 || msgs[0].V != v || msgs[0].Val != 1.5 || msgs[0].Round != 3 || msgs[0].From != 0 {
				t.Fatalf("bad message %+v", msgs)
			}
		} else if len(msgs) != 0 {
			t.Fatalf("message leaked to worker %d", j)
		}
	}
	// takeOut clears.
	out2, _ := ctx.takeOut()
	for _, msgs := range out2 {
		if len(msgs) != 0 {
			t.Fatal("takeOut did not clear")
		}
	}
}

func TestContextSendToHolders(t *testing.T) {
	p := buildPartition(t, 4)
	// Find an owned vertex with remote copies.
	var frag *partition.Fragment
	var v int32 = -1
	for _, f := range p.Frags {
		for _, u := range f.In {
			if len(p.Holders(u)) > 0 {
				frag, v = f, u
				break
			}
		}
		if v >= 0 {
			break
		}
	}
	if v < 0 {
		t.Skip("no shared border vertex on this seed")
	}
	ctx := newContext[float64](frag, p.M, &msgPool[float64]{})
	ctx.SendToHolders(v, 2.5)
	out, _ := ctx.takeOut()
	want := map[int32]bool{}
	for _, h := range p.Holders(v) {
		if int(h) != frag.ID {
			want[h] = true
		}
	}
	got := map[int32]bool{}
	for j, msgs := range out {
		if len(msgs) > 0 {
			got[int32(j)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("holders %v, messages to %v", want, got)
	}
	for h := range want {
		if !got[h] {
			t.Errorf("holder %d missed", h)
		}
	}
}

func TestContextSendToAndWork(t *testing.T) {
	p := buildPartition(t, 3)
	ctx := newContext[float64](p.Frags[0], p.M, &msgPool[float64]{})
	ctx.SendTo(2, 5, 9)
	ctx.AddWork(7)
	ctx.AddWork(3)
	out, work := ctx.takeOut()
	if work != 10 {
		t.Errorf("work = %d", work)
	}
	if len(out[2]) != 1 || out[2][0].V != 5 || out[2][0].Val != 9 {
		t.Errorf("SendTo misrouted: %+v", out)
	}
}

func TestFoldMessagesProperties(t *testing.T) {
	// Folding with min: output has unique ascending vertices, each value
	// is the min of that vertex's inputs, and the count never grows.
	f := func(vs []int32, vals []float64) bool {
		n := len(vs)
		if len(vals) < n {
			n = len(vals)
		}
		var buf []VMsg[float64]
		want := map[int32]float64{}
		for i := 0; i < n; i++ {
			v := vs[i] % 64
			if v < 0 {
				v = -v
			}
			val := math.Abs(vals[i])
			buf = append(buf, VMsg[float64]{V: v, Val: val})
			if cur, ok := want[v]; !ok || val < cur {
				want[v] = val
			}
		}
		out := FoldMessages(buf, math.Min)
		if len(out) != len(want) {
			return false
		}
		prev := int32(-1)
		for _, m := range out {
			if m.V <= prev {
				return false
			}
			prev = m.V
			if want[m.V] != m.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJobValueBytes(t *testing.T) {
	j := Job[float64]{}
	if got := j.ValueBytes(1); got != 16 {
		t.Errorf("default wire size = %d, want 16 (8B header + 8B value)", got)
	}
	j.Bytes = func(float64) int { return 100 }
	if got := j.ValueBytes(1); got != 108 {
		t.Errorf("custom wire size = %d, want 108", got)
	}
}

func TestRunStatsFinalize(t *testing.T) {
	s := RunStats{Workers: []WorkerStats{
		{Rounds: 3, MsgsSent: 10, BytesSent: 100, Work: 7, BusySeconds: 1, IdleSeconds: 2},
		{Rounds: 5, MsgsSent: 20, BytesSent: 200, Work: 3, BusySeconds: 4, IdleSeconds: 1},
	}}
	s.Finalize()
	if s.TotalMsgs != 30 || s.TotalBytes != 300 || s.TotalWork != 10 {
		t.Errorf("totals wrong: %+v", s)
	}
	if s.MaxRound != 5 || s.MinRound != 3 || s.SumRounds != 8 {
		t.Errorf("rounds wrong: %+v", s)
	}
	if s.TotalBusy != 5 || s.TotalIdle != 3 {
		t.Errorf("times wrong: %+v", s)
	}
	var empty RunStats
	empty.Finalize()
	if empty.MinRound != 0 {
		t.Errorf("empty MinRound = %d", empty.MinRound)
	}
}

func TestAssembleUsesDefault(t *testing.T) {
	p := buildPartition(t, 2)
	job := Job[float64]{
		Default: func(int32) float64 { return -1 },
	}
	progs := make([]Program[float64], 2)
	for i, f := range p.Frags {
		progs[i] = constProgram{f: f, val: float64(i + 1)}
	}
	vals := Assemble(p, progs, job)
	for v := int32(0); v < int32(len(vals)); v++ {
		want := float64(p.Owner(v) + 1)
		if vals[v] != want {
			t.Fatalf("vertex %d = %v, want %v", v, vals[v], want)
		}
	}
}

type constProgram struct {
	f   *partition.Fragment
	val float64
}

func (c constProgram) PEval(*Context[float64])                    {}
func (c constProgram) IncEval([]VMsg[float64], *Context[float64]) {}
func (c constProgram) Get(int32) float64                          { return c.val }
