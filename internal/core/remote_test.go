package core_test

import (
	"math"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

// The two-process tests run the engine for real across a process
// boundary: worker 1's Program lives in a child process (this same test
// binary re-exec'd into TestHelperRemoteWorker) that dials the parent's
// loopback listener. Both processes rebuild the identical partitioned
// graph from the deterministic generator, mirroring how cluster workers
// load a shared fragment assignment.

const (
	remoteWorkerEnv = "AAP_REMOTE_WORKER"
	parentAddrEnv   = "AAP_PARENT_ADDR"
	remoteVictim    = 1
)

func remoteTestPartition(t testing.TB) *partition.Partitioned {
	t.Helper()
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func remoteTestJob() core.Job[float64] { return sssp.JobShards(0, 2) }

// remoteTopts keeps the failure detector fast enough for a test but far
// above scheduler jitter: death needs ~250ms of true heartbeat silence.
func remoteTopts() core.TransportOptions {
	return core.TransportOptions{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   80 * time.Millisecond,
		DeadAfter:      250 * time.Millisecond,
	}
}

// TestHelperRemoteWorker is not a test: it is the worker process, entered
// only when the parent re-execs the binary with the env markers set.
func TestHelperRemoteWorker(t *testing.T) {
	addr := os.Getenv(parentAddrEnv)
	if addr == "" {
		t.Skip("helper process for the two-process transport tests")
	}
	w, err := strconv.Atoi(os.Getenv(remoteWorkerEnv))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ServeWorker(remoteTestPartition(t), remoteTestJob(), w, addr, remoteTopts()); err != nil {
		t.Fatal(err)
	}
}

// spawnRemoteWorker re-execs the test binary as the host of worker w
// against the parent listening at addr.
func spawnRemoteWorker(t *testing.T, w int, addr string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestHelperRemoteWorker$", "-test.timeout", "2m")
	cmd.Env = append(os.Environ(),
		remoteWorkerEnv+"="+strconv.Itoa(w),
		parentAddrEnv+"="+addr,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestRemoteWorkerMatchesInProc: hosting a worker's Program in another
// process changes nothing about the result.
func TestRemoteWorkerMatchesInProc(t *testing.T) {
	p := remoteTestPartition(t)
	base, err := core.Run(p, remoteTestJob(), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	var cmd *exec.Cmd
	topts := remoteTopts()
	topts.RemoteWorkers = []int{remoteVictim}
	topts.OnListen = func(addr string) { cmd = spawnRemoteWorker(t, remoteVictim, addr) }
	res, err := core.Run(p, remoteTestJob(), core.Options{
		Mode:      core.AAP,
		Timeout:   time.Minute,
		Transport: &topts,
	})
	if cmd != nil {
		defer func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}()
	}
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: in-proc %v, remote-hosted %v", v, b, r)
		}
	}
}

// TestRemoteWorkerKillRecovers is the end-to-end process-kill contract:
// SIGKILL the worker host mid-run — no injected fault, no signal to the
// engine — and the heartbeat detector alone must notice the silence,
// declare the host dead, roll back to the last sealed checkpoint with
// the victim failed back to a local Program, and finish bit-identical
// to the fault-free run.
func TestRemoteWorkerKillRecovers(t *testing.T) {
	p := remoteTestPartition(t)
	base, err := core.Run(p, remoteTestJob(), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu   sync.Mutex
		cmd  *exec.Cmd
		shot bool
	)
	topts := remoteTopts()
	topts.RemoteWorkers = []int{remoteVictim}
	topts.OnListen = func(addr string) {
		c := spawnRemoteWorker(t, remoteVictim, addr)
		mu.Lock()
		cmd = c
		mu.Unlock()
	}
	res, err := core.Run(p, remoteTestJob(), core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Transport:  &topts,
		RoundHook: func(worker int, round int32) {
			if worker != remoteVictim || round < 2 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if !shot && cmd != nil {
				shot = true
				_ = cmd.Process.Kill() // SIGKILL: the host gets no chance to say goodbye
			}
		},
	})
	mu.Lock()
	c := cmd
	mu.Unlock()
	if c != nil {
		defer func() {
			_ = c.Process.Kill()
			_ = c.Wait()
		}()
	}
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fired := shot
	mu.Unlock()
	if !fired {
		t.Fatal("run finished before the kill round; nothing was tested")
	}
	if res.Stats.HeartbeatTimeouts < 1 {
		t.Fatalf("host was killed but no heartbeat timeout recorded: %+v", res.Stats)
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("host was killed but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
	}
	for v := range base.Values {
		if b, r := base.Values[v], res.Values[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("vertex %d: fault-free %v, kill-recovered %v", v, b, r)
		}
	}
}
