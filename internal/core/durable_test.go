package core_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/checkpoint"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

// The durable tests exercise the whole-process crash story: a victim
// process (this test binary re-exec'd into TestHelperDurableVictim)
// runs a checkpointed job against a shared directory, the parent
// SIGKILLs it mid-execution, and core.Resume must continue from the
// newest sealed record bit-identically to the fault-free run.

const (
	durableDirEnv      = "AAP_DURABLE_DIR"
	durableAlgoEnv     = "AAP_DURABLE_ALGO"
	durableShardsEnv   = "AAP_DURABLE_SHARDS"
	durableArtifactEnv = "AAP_DURABLE_ARTIFACT_DIR"
)

// durableDir places checkpoint directories under the CI artifact root
// when one is configured (so a failing run's records get uploaded), and
// under the test's temp dir otherwise. Passing tests clean up after
// themselves either way; failing ones leave the directory for autopsy.
func durableDir(t *testing.T) string {
	root := os.Getenv(durableArtifactEnv)
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, strings.ReplaceAll(t.Name(), "/", "_")+"-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// durableRunOpts is the canonical durable configuration of these tests:
// a snapshot every round, teed to dir, with enough retained epochs that
// corrupting the newest always leaves a fallback.
func durableRunOpts(dir string) core.Options {
	return core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1, Dir: dir, Retain: 8},
	}
}

func ccTestPartition(t testing.TB) *partition.Partitioned {
	t.Helper()
	g := gen.SmallWorld(400, 2, 0.05, false, 2)
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func prTestPartition(t testing.TB) *partition.Partitioned {
	t.Helper()
	g := gen.PowerLaw(300, 5, 2.1, false, 3)
	p, err := partition.Build(g, 4, partition.Range{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHelperDurableVictim is not a test: it is the process the parent
// SIGKILLs. It runs the configured job with a checkpoint every round
// teed to the shared directory, slightly slowed so the kill reliably
// lands mid-execution.
func TestHelperDurableVictim(t *testing.T) {
	dir := os.Getenv(durableDirEnv)
	if dir == "" {
		t.Skip("helper process for the durable resume tests")
	}
	shards, err := strconv.Atoi(os.Getenv(durableShardsEnv))
	if err != nil {
		t.Fatal(err)
	}
	opts := durableRunOpts(dir)
	opts.Latency = 2 * time.Millisecond
	switch algo := os.Getenv(durableAlgoEnv); algo {
	case "sssp":
		_, err = core.Run(remoteTestPartition(t), sssp.JobShards(0, shards), opts)
	case "cc":
		_, err = core.Run(ccTestPartition(t), cc.JobShards(shards), opts)
	case "pagerank":
		_, err = core.Run(prTestPartition(t), pagerank.Job(pagerank.Config{Tol: 1e-10, Shards: shards}), opts)
	default:
		t.Fatalf("unknown victim algo %q", algo)
	}
	if err != nil {
		t.Fatal(err)
	}
}

func spawnDurableVictim(t *testing.T, dir, algo string, shards int) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestHelperDurableVictim$", "-test.timeout", "2m")
	cmd.Env = append(os.Environ(),
		durableDirEnv+"="+dir,
		durableAlgoEnv+"="+algo,
		durableShardsEnv+"="+strconv.Itoa(shards),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitForSeal polls the directory until a record for at least epoch min
// decodes cleanly. The victim may finish and exit before the kill — its
// records persist, so resume is still exercised, just from the final
// epoch.
func waitForSeal(t *testing.T, dir string, min int32, timeout time.Duration) int32 {
	t.Helper()
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e, _, err := d.NewestSealed(); err == nil && e >= min {
			return e
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("no sealed epoch >= %d appeared in %s within %v", min, dir, timeout)
	return 0
}

func sigkill(cmd *exec.Cmd) {
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
}

func sameFloats(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for v := range want {
		if b, r := want[v], got[v]; b != r && !(math.IsInf(b, 1) && math.IsInf(r, 1)) {
			t.Fatalf("%s: vertex %d: fault-free %v, resumed %v", label, v, b, r)
		}
	}
}

// TestDurableProcessKillResume is the headline contract: SIGKILL the
// whole process mid-execution, resume from the checkpoint directory in
// a fresh engine, land bit-identical to the fault-free run.
func TestDurableProcessKillResume(t *testing.T) {
	p := remoteTestPartition(t)
	job := remoteTestJob()
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	dir := durableDir(t)
	cmd := spawnDurableVictim(t, dir, "sssp", 2)
	waitForSeal(t, dir, 1, 30*time.Second)
	sigkill(cmd)

	res, err := core.Resume(p, job, durableRunOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.ResumeEpoch < 1 {
		t.Fatalf("resume reported epoch %d, want >= 1", st.ResumeEpoch)
	}
	if st.ResumeBytes <= 0 {
		t.Fatalf("resume read %d bytes, want > 0", st.ResumeBytes)
	}
	if st.ResumeSeconds <= 0 {
		t.Fatalf("resume seconds %v, want > 0", st.ResumeSeconds)
	}
	sameFloats(t, base.Values, res.Values, "sigkill+resume")
}

// TestDurableProcessKillResumePageRank holds the non-idempotent
// aggregate to the tolerance contract: resumed PageRank scores within
// 1e-4 relative of the fault-free run.
func TestDurableProcessKillResumePageRank(t *testing.T) {
	p := prTestPartition(t)
	cfg := pagerank.Config{Tol: 1e-10, Shards: 2}
	base, err := core.Run(p, pagerank.Job(cfg), core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	dir := durableDir(t)
	cmd := spawnDurableVictim(t, dir, "pagerank", 2)
	waitForSeal(t, dir, 1, 30*time.Second)
	sigkill(cmd)

	res, err := core.Resume(p, pagerank.Job(cfg), durableRunOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumeEpoch < 1 {
		t.Fatalf("resume reported epoch %d, want >= 1", res.Stats.ResumeEpoch)
	}
	for v := range base.Values {
		b, r := base.Values[v], res.Values[v]
		if d := math.Abs(b - r); d > 1e-4*math.Max(math.Abs(b), 1e-12) {
			t.Fatalf("vertex %d: fault-free %v, resumed %v (rel Δ too large)", v, b, r)
		}
	}
}

// TestDurableKillResumeKill pins the recovery-then-checkpoint
// interleaving (kill → resume → kill): a second fault after a
// successful resume must recover from the post-resume seal — the
// resumed engine's store was seeded, so rollback has a cut to return to
// even before it seals a fresh epoch — and still land bit-identical,
// across both exactly-comparable kernels at forced shard counts.
func TestDurableKillResumeKill(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("sssp/shards=%d", shards), func(t *testing.T) {
			p := remoteTestPartition(t)
			job := sssp.JobShards(0, shards)
			base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res := killResumeKill(t, "sssp", shards, func(dir string) (*core.Result[float64], error) {
				return core.Resume(p, job, resumeWithKill(dir))
			})
			sameFloats(t, base.Values, res.Values, "kill-resume-kill")
		})
		t.Run(fmt.Sprintf("cc/shards=%d", shards), func(t *testing.T) {
			p := ccTestPartition(t)
			job := cc.JobShards(shards)
			base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			res := killResumeKill(t, "cc", shards, func(dir string) (*core.Result[int64], error) {
				return core.Resume(p, job, resumeWithKill(dir))
			})
			for v := range base.Values {
				if base.Values[v] != res.Values[v] {
					t.Fatalf("vertex %d: fault-free cid %d, resumed %d", v, base.Values[v], res.Values[v])
				}
			}
		})
	}
}

// resumeWithKill schedules the second fault: worker 1 dies at its first
// post-resume safe point with rounds >= 1 (always true after a resumed
// epoch or a re-run PEval), forcing a rollback inside the resumed run.
func resumeWithKill(dir string) core.Options {
	opts := durableRunOpts(dir)
	opts.Faults = &core.Faults{
		Seed: 42,
		Kill: &core.KillSpec{Worker: 1, Round: 1},
	}
	return opts
}

func killResumeKill[T any](t *testing.T, algo string, shards int, resume func(dir string) (*core.Result[T], error)) *core.Result[T] {
	t.Helper()
	dir := durableDir(t)
	cmd := spawnDurableVictim(t, dir, algo, shards)
	waitForSeal(t, dir, 1, 30*time.Second)
	sigkill(cmd)
	res, err := resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumeEpoch < 1 {
		t.Fatalf("resume reported epoch %d, want >= 1", res.Stats.ResumeEpoch)
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("second kill scheduled but no recovery ran (recoveries=%d)", res.Stats.Recoveries)
	}
	return res
}

// corruptNewest truncates or bit-flips the newest record in dir and
// returns its epoch, so resume must fall back to an older seal.
func corruptNewest(t *testing.T, dir string, truncate bool) int32 {
	t.Helper()
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	es := d.Epochs()
	if len(es) < 2 {
		t.Fatalf("need >= 2 epochs on disk to test fallback, have %v", es)
	}
	newest := es[len(es)-1]
	p := filepath.Join(dir, checkpoint.RecordFile(newest))
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if truncate {
		b = b[:len(b)*2/3]
	} else {
		b[len(b)-5] ^= 0x20
	}
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return newest
}

func copyDurableDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		b, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableCorruptionFallback: resume against a directory whose
// newest record is torn (truncated) or bit-flipped must fall back to
// the previous sealed epoch and still complete bit-identically.
func TestDurableCorruptionFallback(t *testing.T) {
	p := remoteTestPartition(t)
	job := remoteTestJob()
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := durableRunOpts(dir)
	opts.Latency = time.Millisecond // more rounds in flight => several sealed epochs
	if _, err := core.Run(p, job, opts); err != nil {
		t.Fatal(err)
	}

	t.Run("intact", func(t *testing.T) {
		res, err := core.Resume(p, job, durableRunOpts(copyDurableDir(t, dir)))
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, base.Values, res.Values, "resume from final epoch")
	})
	for _, tc := range []struct {
		name     string
		truncate bool
	}{{"truncated", true}, {"bitflipped", false}} {
		t.Run(tc.name, func(t *testing.T) {
			cdir := copyDurableDir(t, dir)
			newest := corruptNewest(t, cdir, tc.truncate)
			res, err := core.Resume(p, job, durableRunOpts(cdir))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.ResumeEpoch >= newest {
				t.Fatalf("resumed from epoch %d, want fallback below corrupted %d", res.Stats.ResumeEpoch, newest)
			}
			if res.Stats.ResumeEpoch < 1 {
				t.Fatalf("no fallback epoch used: %d", res.Stats.ResumeEpoch)
			}
			sameFloats(t, base.Values, res.Values, tc.name)
		})
	}
}

// TestDurableResumeRemoteTCP: Resume with the TCP plane and worker 1's
// Program hosted in a child process — the restore travels over RPC —
// from a fallback epoch (the newest record is corrupted first, so the
// resumed run really re-executes rounds across the wire).
func TestDurableResumeRemoteTCP(t *testing.T) {
	p := remoteTestPartition(t)
	job := remoteTestJob()
	base, err := core.Run(p, job, core.Options{Mode: core.AAP, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	full := durableRunOpts(dir)
	full.Latency = time.Millisecond
	if _, err := core.Run(p, job, full); err != nil {
		t.Fatal(err)
	}
	newest := corruptNewest(t, dir, true)

	var cmd *exec.Cmd
	topts := remoteTopts()
	topts.RemoteWorkers = []int{remoteVictim}
	topts.OnListen = func(addr string) { cmd = spawnRemoteWorker(t, remoteVictim, addr) }
	opts := durableRunOpts(dir)
	opts.Transport = &topts
	res, err := core.Resume(p, job, opts)
	if cmd != nil {
		defer sigkill(cmd)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumeEpoch < 1 || res.Stats.ResumeEpoch >= newest {
		t.Fatalf("resumed from epoch %d, want a fallback in [1, %d)", res.Stats.ResumeEpoch, newest)
	}
	sameFloats(t, base.Values, res.Values, "tcp remote resume")
}

// TestResumeErrors pins the failure modes: no directory configured, an
// empty directory (ErrNoSealedEpoch by name), and a snapshot whose
// worker count disagrees with the partition.
func TestResumeErrors(t *testing.T) {
	p := remoteTestPartition(t)
	job := remoteTestJob()

	if _, err := core.Resume(p, job, core.Options{Mode: core.AAP}); err == nil || !strings.Contains(err.Error(), "Checkpoint.Dir") {
		t.Fatalf("resume without a dir: err = %v", err)
	}

	empty := durableRunOpts(t.TempDir())
	if _, err := core.Resume(p, job, empty); !errors.Is(err, checkpoint.ErrNoSealedEpoch) {
		t.Fatalf("resume from empty dir: err = %v, want ErrNoSealedEpoch", err)
	}

	// A 4-worker run's snapshot cannot seed a 2-worker partition.
	dir := t.TempDir()
	if _, err := core.Run(p, job, durableRunOpts(dir)); err != nil {
		t.Fatal(err)
	}
	g := gen.PowerLaw(500, 6, 2.1, true, 1)
	p2, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Resume(p2, job, durableRunOpts(dir)); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("worker-count mismatch: err = %v", err)
	}
}

// TestDurableRunWritesRecords: a plain (non-resumed) run with Dir set
// leaves decodable records and accurate stats behind.
func TestDurableRunWritesRecords(t *testing.T) {
	p := remoteTestPartition(t)
	res, err := core.Run(p, remoteTestJob(), durableRunOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Checkpoints < 1 {
		t.Fatalf("no epochs sealed: %+v", res.Stats)
	}
	if res.Stats.DurableBytes <= 0 || res.Stats.FsyncCount <= 0 {
		t.Fatalf("durable accounting empty: bytes %d fsyncs %d", res.Stats.DurableBytes, res.Stats.FsyncCount)
	}
	if res.Stats.ResumeEpoch != 0 {
		t.Fatalf("fresh run reports resume epoch %d", res.Stats.ResumeEpoch)
	}
}

// TestDurableDirRequiresCheckpointing: Dir without EveryRounds (outside
// Resume) is a configuration error, not a silent no-op.
func TestDurableDirRequiresCheckpointing(t *testing.T) {
	p := remoteTestPartition(t)
	opts := core.Options{Mode: core.AAP, Timeout: time.Minute,
		Checkpoint: core.CheckpointOptions{Dir: t.TempDir()}}
	if _, err := core.Run(p, remoteTestJob(), opts); err == nil || !strings.Contains(err.Error(), "EveryRounds") {
		t.Fatalf("Dir without EveryRounds: err = %v", err)
	}
}
