package cf

// Checkpoint support (core.Snapshotter): the durable state is the
// factor matrix plus the epoch/convergence bookkeeping. weight and
// edges are derived from the static rating graph in newProgram and
// never change, so they are not serialized. A slot whose factor vector
// was never initialized (no incident ratings) stays nil; a presence
// flag per slot preserves that distinction across the round trip.

import (
	"fmt"

	"aap/internal/codec"
)

// SnapshotState serializes the CF kernel's durable state.
func (p *program) SnapshotState() []byte {
	buf := make([]byte, 0, (1+8*p.cfg.Rank+4)*len(p.factor)+32)
	buf = codec.AppendUint32(buf, uint32(len(p.factor)))
	for _, f := range p.factor {
		buf = codec.AppendBool(buf, f != nil)
		if f != nil {
			buf = codec.AppendFloat64s(buf, f)
		}
	}
	buf = codec.AppendInt64(buf, int64(p.epochs))
	buf = codec.AppendFloat64(buf, p.lastRMSE)
	buf = codec.AppendBool(buf, p.converged)
	return buf
}

// RestoreState rewinds the CF kernel to a snapshot.
func (p *program) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(p.factor) {
		return fmt.Errorf("cf: snapshot has %d slots, fragment has %d", n, len(p.factor))
	}
	factor := make([][]float64, n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			factor[i] = r.Float64s()
		}
	}
	epochs := r.Int64()
	lastRMSE := r.Float64()
	converged := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	copy(p.factor, factor)
	p.epochs = int(epochs)
	p.lastRMSE = lastRMSE
	p.converged = converged
	return nil
}
