// Package cf is the PIE program for collaborative filtering (Section 5.2
// of the paper): mini-batched stochastic gradient descent for matrix
// factorization. Users are partitioned with their rating edges; product
// vectors are the update parameters, shipped copy-to-owner as weighted
// contributions and owner-to-copies as canonical values. CF is the one
// workload of the paper that requires bounded staleness (run it with
// Options.Staleness > 0).
package cf

import (
	"math"

	"aap/internal/algo/ref"
	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// Val is the status variable (f, δ, t) of Section 5.2 in transit: a
// weighted factor-vector contribution. Vec holds weight-scaled factor
// sums so that folding two Vals is elementwise addition, keeping the
// aggregate function associative and commutative; TS carries the latest
// round stamp.
type Val struct {
	Vec    []float64
	Weight float64
	TS     int32
}

// Mean returns the weighted mean vector of the contribution.
func (v Val) Mean() []float64 {
	out := make([]float64, len(v.Vec))
	if v.Weight == 0 {
		return out
	}
	for i := range out {
		out[i] = v.Vec[i] / v.Weight
	}
	return out
}

// Config parameterizes the CF job.
type Config struct {
	Users, Products int
	Rank            int
	LearnRate       float64
	Lambda          float64
	// Epochs bounds how many SGD epochs each worker contributes.
	Epochs int
	// Tol stops a worker early when its training RMSE improves by less
	// than Tol between rounds.
	Tol  float64
	Seed int64
	// Shards forces the kernel shard count used to build and stage the
	// per-copy product contributions in ship: >= 1 forces that many
	// shards (1 keeps the sequential path), 0 picks automatically. SGD
	// epochs themselves stay sequential — reordering rating updates
	// would change the trained model.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Lambda == 0 {
		c.Lambda = 0.01
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// Job builds the CF PIE job over a bipartite rating graph whose users
// have external ids [0, Users) and products [Users, Users+Products).
func Job(cfg Config) core.Job[Val] {
	cfg = cfg.withDefaults()
	return core.Job[Val]{
		Name: "cf",
		New:  func(f *partition.Fragment) core.Program[Val] { return newProgram(f, cfg) },
		Aggregate: func(a, b Val) Val {
			out := Val{Vec: make([]float64, len(a.Vec)), Weight: a.Weight + b.Weight, TS: a.TS}
			if b.TS > out.TS {
				out.TS = b.TS
			}
			for i := range a.Vec {
				out.Vec[i] = a.Vec[i] + b.Vec[i]
			}
			return out
		},
		Bytes: func(v Val) int { return 8*len(v.Vec) + 12 },
		EncodeVal: func(dst []byte, v Val) []byte {
			dst = codec.AppendFloat64s(dst, v.Vec)
			dst = codec.AppendFloat64(dst, v.Weight)
			return codec.AppendInt32(dst, v.TS)
		},
		DecodeVal: func(r *codec.Reader) Val {
			return Val{Vec: r.Float64s(), Weight: r.Float64(), TS: r.Int32()}
		},
	}
}

// edge is one local training rating.
type edge struct {
	u, p int32 // local slots of user and product
	r    float64
}

// program holds the fragment's users, its product slots (owned products
// plus copies), and the local training edges.
type program struct {
	f   *partition.Fragment
	g   *graph.Graph
	cfg Config

	factor [][]float64 // per local slot
	weight []float64   // ratings incident to the slot locally
	edges  []edge

	epochs    int
	lastRMSE  float64
	converged bool
}

func newProgram(f *partition.Fragment, cfg Config) *program {
	n := f.Slots()
	p := &program{f: f, g: f.Graph(), cfg: cfg,
		factor: make([][]float64, n),
		weight: make([]float64, n),
	}
	g := f.Graph()
	init := func(v int32) {
		s := f.Slot(v)
		if p.factor[s] == nil {
			// Deterministic per-(external id, k) init keeps the starting
			// point independent of partitioning.
			p.factor[s] = ref.DeterministicFactors(1, cfg.Rank, int64(g.IDOf(v))*31+cfg.Seed)[0]
		}
	}
	for v := f.Lo; v < f.Hi; v++ {
		init(v)
		ws := g.OutWeights(v)
		for i, u := range g.Out(v) {
			init(u)
			p.edges = append(p.edges, edge{u: f.Slot(v), p: f.Slot(u), r: ws[i]})
			p.weight[f.Slot(u)]++
		}
	}
	for _, v := range f.Out {
		init(v)
	}
	return p
}

// PEval runs the first SGD epoch and ships initial product contributions.
// A fragment with no border (single-fragment runs) can never be triggered
// by messages, so partial evaluation runs its whole epoch budget to local
// convergence, which is the complete answer Q(F) the PIE model expects.
func (p *program) PEval(ctx *core.Context[Val]) {
	p.epoch(ctx)
	if len(p.f.Out) == 0 && len(p.f.In) == 0 {
		for !p.converged && p.epochs < p.cfg.Epochs {
			p.epoch(ctx)
		}
		return
	}
	p.ship(ctx)
}

// IncEval folds incoming product contributions, runs another epoch while
// the budget lasts, and ships updates.
func (p *program) IncEval(msgs []core.VMsg[Val], ctx *core.Context[Val]) {
	for _, m := range msgs {
		s := p.f.Slot(m.V)
		if s < 0 || m.Val.Weight == 0 {
			continue
		}
		if p.f.Owns(m.V) {
			// Owner blends remote contributions with its canonical vector,
			// weighting by local rating counts.
			own := p.weight[s] + 1
			tot := own + m.Val.Weight
			for k := range p.factor[s] {
				p.factor[s][k] = (p.factor[s][k]*own + m.Val.Vec[k]) / tot
			}
		} else {
			// Copies adopt the owner's canonical mean, divided in place to
			// avoid materializing the Mean() vector.
			for k := range p.factor[s] {
				p.factor[s][k] = m.Val.Vec[k] / m.Val.Weight
			}
		}
	}
	ctx.AddWork(len(msgs))
	if p.converged || p.epochs >= p.cfg.Epochs {
		return
	}
	p.epoch(ctx)
	p.ship(ctx)
}

// Get returns the factor vector of owned vertex v as a weight-1 Val.
func (p *program) Get(v int32) Val {
	s := p.f.Slot(v)
	if p.factor[s] == nil {
		return Val{Vec: make([]float64, p.cfg.Rank), Weight: 1}
	}
	return Val{Vec: append([]float64(nil), p.factor[s]...), Weight: 1}
}

// epoch performs one pass of SGD over the local training edges.
func (p *program) epoch(ctx *core.Context[Val]) {
	if len(p.edges) == 0 {
		p.converged = true
		return
	}
	var se float64
	lr, lam := p.cfg.LearnRate, p.cfg.Lambda
	for _, e := range p.edges {
		uf, pf := p.factor[e.u], p.factor[e.p]
		pred := ref.Dot(uf, pf)
		err := e.r - pred
		se += err * err
		for k := range uf {
			du := lr * (err*pf[k] - lam*uf[k])
			dp := lr * (err*uf[k] - lam*pf[k])
			uf[k] += du
			pf[k] += dp
		}
	}
	ctx.AddWork(len(p.edges) * p.cfg.Rank)
	rmse := math.Sqrt(se / float64(len(p.edges)))
	if p.epochs > 0 && math.Abs(p.lastRMSE-rmse) < p.cfg.Tol {
		p.converged = true
	}
	p.lastRMSE = rmse
	p.epochs++
}

// ship sends copy contributions to product owners and canonical vectors
// from owners to copy holders. Building the weight-scaled vectors is the
// allocation-heavy half (one Rank-wide vector per border product per
// round), so it fans out across kernel shards with staged sends; the
// contiguous chunking keeps each destination's message order identical
// to the sequential pass.
func (p *program) ship(ctx *core.Context[Val]) {
	if p.converged && p.epochs >= p.cfg.Epochs {
		return
	}
	ts := ctx.Round()
	base := int32(p.f.NumOwned())
	nOut := len(p.f.Out)
	k := p.cfg.Shards
	if k == 0 {
		k = par.Kernel(int64(nOut) * int64(p.cfg.Rank))
	}
	sendCopy := func(send func(v int32, val Val), i int) {
		v := p.f.Out[i]
		s := base + int32(i)
		w := p.weight[s]
		if w == 0 || p.factor[s] == nil {
			return
		}
		vec := make([]float64, p.cfg.Rank)
		for k := range vec {
			vec[k] = p.factor[s][k] * w
		}
		send(v, Val{Vec: vec, Weight: w, TS: ts})
	}
	if k <= 1 {
		for i := range p.f.Out {
			sendCopy(ctx.Send, i)
		}
	} else {
		stages := ctx.Stages(k)
		par.Do(k, func(w int) {
			for i := w * nOut / k; i < (w+1)*nOut/k; i++ {
				sendCopy(stages[w].Send, i)
			}
		})
		ctx.MergeStages()
	}
	// Owned products with remote copies broadcast their canonical value.
	for _, v := range p.f.In {
		s := p.f.Slot(v)
		if p.factor[s] == nil {
			continue
		}
		vec := append([]float64(nil), p.factor[s]...)
		ctx.SendToHolders(v, Val{Vec: vec, Weight: 1, TS: ts})
	}
}

// Factors extracts user and product factor matrices from an assembled
// result vector (indexed by global vertex of the partitioned graph).
func Factors(p *partition.Partitioned, values []Val, cfg Config) (uf, pf [][]float64) {
	cfg = cfg.withDefaults()
	uf = make([][]float64, cfg.Users)
	pf = make([][]float64, cfg.Products)
	g := p.G
	for v := 0; v < g.NumVertices(); v++ {
		id := int(g.IDOf(int32(v)))
		vec := values[v].Vec
		if vec == nil {
			vec = make([]float64, cfg.Rank)
		}
		if id < cfg.Users {
			uf[id] = vec
		} else {
			pf[id-cfg.Users] = vec
		}
	}
	return uf, pf
}
