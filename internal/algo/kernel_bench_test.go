package algo_test

// Kernel benchmarks: PEval-to-local-fixpoint on one fragment, the
// per-round scaling axis of BENCH_PR4. Shard rows beyond the core count
// measure fan-out overhead, not speedup.

import (
	"fmt"
	"testing"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

func benchFragment(b *testing.B, g *graph.Graph) *partition.Partitioned {
	b.Helper()
	p, err := partition.Build(g, 1, partition.Hash{})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchKernel[T any](b *testing.B, p *partition.Partitioned, job core.Job[T]) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog := job.New(p.Frags[0])
		ctx := core.NewEngineContext[T](p.Frags[0], 1)
		prog.PEval(ctx)
		ctx.TakeOut()
	}
}

func BenchmarkKernelSSSP(b *testing.B) {
	g := gen.PowerLaw(40000, 8, 2.1, true, 5)
	p := benchFragment(b, g)
	b.Run("ref", func(b *testing.B) { benchKernel(b, p, sssp.RefJob(0)) })
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) { benchKernel(b, p, sssp.JobShards(0, k)) })
	}
}

// BenchmarkKernelSSSPDelta is the delta axis on the road-network
// stand-in: the Bellman-Ford-ordered frontier sweep against the
// bucketed kernel at tiny/auto/huge bucket widths — relaxation counts,
// not just wall time, are what the widths trade (see aapbench -exp
// compute for the counters).
func BenchmarkKernelSSSPDelta(b *testing.B) {
	g := gen.RoadNet(150, 150, 131)
	p := benchFragment(b, g)
	b.Run("frontier", func(b *testing.B) {
		benchKernel(b, p, sssp.JobConfig(sssp.Config{Kernel: sssp.KernelFrontier, Shards: 1}))
	})
	for _, d := range []struct {
		name  string
		delta float64
	}{{"tiny", 0.02}, {"auto", 0}, {"huge", 1e18}} {
		b.Run("delta="+d.name, func(b *testing.B) {
			benchKernel(b, p, sssp.JobConfig(sssp.Config{Kernel: sssp.KernelBuckets, Shards: 1, Delta: d.delta}))
		})
	}
}

func BenchmarkKernelCC(b *testing.B) {
	g := graph.AsUndirected(gen.PowerLaw(40000, 8, 2.1, false, 5))
	p := benchFragment(b, g)
	b.Run("ref", func(b *testing.B) { benchKernel(b, p, cc.RefJob()) })
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) { benchKernel(b, p, cc.JobShards(k)) })
	}
}

func BenchmarkKernelPageRank(b *testing.B) {
	g := gen.PowerLaw(40000, 8, 2.1, false, 5)
	p := benchFragment(b, g)
	b.Run("ref", func(b *testing.B) { benchKernel(b, p, pagerank.RefJob(pagerank.Config{Tol: 1e-4})) })
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			benchKernel(b, p, pagerank.Job(pagerank.Config{Tol: 1e-4, Shards: k}))
		})
	}
}
