package cc

// The retained sequential CC kernel: a union-find forest over local
// slots built in PEval, with root cids lowered incrementally. It is the
// pinned reference of the differential tests — both kernels converge to
// the canonical labeling (minimum external id per component, an exact
// int64 min), so the hook-and-shortcut parallel kernel must match it bit
// for bit — and the path the auto heuristic picks for small fragments.

import (
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// refProgram keeps the local component forest: a union-find over local
// slots whose roots carry the component's cid (the paper's root nodes
// v_c), plus the precomputed list of F.O copies per root used to
// propagate cid decreases outward.
type refProgram struct {
	f *partition.Fragment
	g *graph.Graph

	parent []int32 // union-find over local slots
	cid    []int64 // per root: minimum external id seen

	// copiesOf lists, for each root slot, the F.O copies linked to it;
	// the local forest is fixed after PEval (no new local edges appear),
	// so the lists are computed once.
	copiesOf [][]int32

	// changedRoots/rootChanged are the reusable scratch IncEval uses to
	// dedup lowered roots, replacing a per-round map.
	changedRoots []int32
	rootChanged  []bool
}

func newRefProgram(f *partition.Fragment) *refProgram {
	n := f.Slots()
	p := &refProgram{f: f, g: f.Graph(),
		parent:      make([]int32, n),
		cid:         make([]int64, n),
		rootChanged: make([]bool, n),
	}
	for i := range p.parent {
		p.parent[i] = int32(i)
	}
	return p
}

func (p *refProgram) find(s int32) int32 {
	for p.parent[s] != s {
		p.parent[s] = p.parent[p.parent[s]]
		s = p.parent[s]
	}
	return s
}

func (p *refProgram) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra != rb {
		p.parent[ra] = rb
	}
}

// PEval computes local components over the edges of owned vertices (both
// directions, underlying undirected graph), assigns each root the minimum
// external id, and ships the cids of F.O copies to their owners.
func (p *refProgram) PEval(ctx *core.Context[int64]) {
	f := p.f
	for v := f.Lo; v < f.Hi; v++ {
		vs := f.Slot(v)
		for _, u := range p.g.Out(v) {
			if us := f.Slot(u); us >= 0 {
				p.union(vs, us)
			}
		}
		for _, u := range p.g.In(v) {
			if us := f.Slot(u); us >= 0 {
				p.union(vs, us)
			}
		}
		ctx.AddWork(p.g.OutDegree(v) + p.g.InDegree(v))
	}
	// Root cids: the minimum external id over the component's members.
	for i := range p.cid {
		p.cid[i] = int64(1) << 62
	}
	assign := func(v int32) {
		s := f.Slot(v)
		r := p.find(s)
		if id := int64(p.g.IDOf(v)); id < p.cid[r] {
			p.cid[r] = id
		}
	}
	for v := f.Lo; v < f.Hi; v++ {
		assign(v)
	}
	for _, v := range f.Out {
		assign(v)
	}
	// Link copies to their roots once and for all.
	p.copiesOf = make([][]int32, f.Slots())
	for _, v := range f.Out {
		r := p.find(f.Slot(v))
		p.copiesOf[r] = append(p.copiesOf[r], v)
	}
	for _, v := range f.Out {
		ctx.Send(v, p.cid[p.find(f.Slot(v))])
	}
}

// IncEval lowers root cids from the aggregated messages and propagates
// every decrease to the owners of the copies linked to the changed roots
// — the bounded incremental step of Figure 3.
func (p *refProgram) IncEval(msgs []core.VMsg[int64], ctx *core.Context[int64]) {
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		r := p.find(slot)
		if m.Val < p.cid[r] {
			p.cid[r] = m.Val
			if !p.rootChanged[r] {
				p.rootChanged[r] = true
				p.changedRoots = append(p.changedRoots, r)
			}
		}
	}
	ctx.AddWork(len(msgs))
	for _, r := range p.changedRoots {
		p.rootChanged[r] = false
		copies := p.copiesOf[r]
		ctx.AddWork(len(copies))
		for _, v := range copies {
			ctx.Send(v, p.cid[r])
		}
	}
	p.changedRoots = p.changedRoots[:0]
}

// Get returns the cid of owned vertex v.
func (p *refProgram) Get(v int32) int64 { return p.cid[p.find(p.f.Slot(v))] }
