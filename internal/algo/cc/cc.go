// Package cc is the PIE program for connected components (Figures 2-3 of
// the paper): PEval finds local components and links their members to a
// root carrying the minimum external vertex id as cid; IncEval merges
// components across fragments by propagating smaller cids with min as
// f_aggr. The input is treated as its underlying undirected graph.
//
// Two kernels implement the semantics: the retained sequential
// union-find (cc_ref.go) and the parallel hook-and-shortcut label
// propagation in this file — every slot carries a label, edge hooks
// lower the larger endpoint's label with an exact atomic min, and a
// pointer-jumping pass compresses label chains between hook rounds, so
// local components settle in O(log n) rounds instead of O(diameter).
// Both kernels converge to the canonical labeling (minimum member),
// which is why they are bit-identical under the differential tests.
package cc

import (
	"sync/atomic"

	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// Job builds the CC PIE job. Every vertex ends with the minimum external
// id of its connected component as its cid. Fragments big enough to
// shard run the parallel label-propagation kernel; small ones keep the
// sequential union-find.
func Job() core.Job[int64] {
	return JobShards(0)
}

// JobShards builds the CC job with a forced kernel shard count:
// shards >= 1 runs the parallel kernel with exactly that many shards
// (1 exercises it single-threaded), 0 picks automatically.
func JobShards(shards int) core.Job[int64] {
	return core.Job[int64]{
		Name: "cc",
		New: func(f *partition.Fragment) core.Program[int64] {
			g := f.Graph()
			if shards == 0 && par.Kernel(g.OutSpan(f.Lo, f.Hi)) <= 1 {
				return newRefProgram(f)
			}
			return newProgram(f, shards)
		},
		Aggregate: func(a, b int64) int64 { return min64(a, b) },
		Bytes:     func(int64) int { return 8 },
		EncodeVal: codec.AppendInt64,
		DecodeVal: (*codec.Reader).Int64,
	}
}

// RefJob builds the job over the retained union-find kernel only — the
// pinned oracle of the differential tests.
func RefJob() core.Job[int64] {
	return core.Job[int64]{
		Name:      "cc",
		New:       func(f *partition.Fragment) core.Program[int64] { return newRefProgram(f) },
		Aggregate: func(a, b int64) int64 { return min64(a, b) },
		Bytes:     func(int64) int { return 8 },
		EncodeVal: codec.AppendInt64,
		DecodeVal: (*codec.Reader).Int64,
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// program is the parallel kernel. After PEval converges, comp[s] is the
// minimum local slot of s's component (fully compressed: comp is
// constant and comp[comp[s]] == comp[s]), cid[r] carries the minimum
// external id of root r's component, and copiesOf links each root to
// its F.O copies for outward propagation.
type program struct {
	f      *partition.Fragment
	g      *graph.Graph
	shards int // forced kernel shard count; 0 = auto

	comp     []atomic.Int32 // slot -> component label (min slot)
	cid      []atomic.Int64 // root slot -> min external id
	copiesOf [][]int32

	// changed is the worklist of roots lowered by one IncEval: sharded
	// dedup'd staging, drained sorted so the downstream message order is
	// canonical regardless of shard count.
	changed *par.Frontier

	ownedSlots []int32 // reusable [0, NumOwned) item list for chunking
	bounds     []int
	rounds     int
}

func newProgram(f *partition.Fragment, shards int) *program {
	n := f.Slots()
	p := &program{f: f, g: f.Graph(), shards: shards,
		comp:    make([]atomic.Int32, n),
		cid:     make([]atomic.Int64, n),
		changed: par.NewFrontier(n, max(shards, 1)),
	}
	return p
}

// KernelRounds reports hook+shortcut rounds executed by PEval.
func (p *program) KernelRounds() int { return p.rounds }

// kernelShards resolves the shard count for `work` units this round.
func (p *program) kernelShards(work int64) int {
	if p.shards > 0 {
		return p.shards
	}
	return par.Kernel(work)
}

// PEval finds local components by parallel hook-and-shortcut label
// propagation, assigns root cids, and ships the cids of F.O copies to
// their owners.
func (p *program) PEval(ctx *core.Context[int64]) {
	f := p.f
	n := f.Slots()
	owned := f.NumOwned()
	for s := range p.comp {
		p.comp[s].Store(int32(s))
	}

	// Owned-vertex item list chunked by local degree: the hook rounds
	// sweep each owned row's out- and in-edges.
	p.ownedSlots = p.ownedSlots[:0]
	for s := 0; s < owned; s++ {
		p.ownedSlots = append(p.ownedSlots, int32(s))
	}
	deg := func(s int32) int64 {
		v := f.Lo + s
		return int64(p.g.OutDegree(v)+p.g.InDegree(v)) + 1
	}
	var span int64
	for _, s := range p.ownedSlots {
		span += deg(s)
	}
	k := p.kernelShards(span)
	p.bounds = par.ChunksByWork(p.ownedSlots, k, p.bounds, deg)

	var work int64
	for {
		p.rounds++
		var hooked atomic.Bool
		par.Do(k, func(w int) {
			ch := false
			for _, s := range p.ownedSlots[p.bounds[w]:p.bounds[w+1]] {
				v := f.Lo + s
				for _, u := range p.g.Out(v) {
					ch = p.hook(s, u) || ch
				}
				for _, u := range p.g.In(v) {
					ch = p.hook(s, u) || ch
				}
			}
			if ch {
				hooked.Store(true)
			}
		})
		// Shortcut: compress label chains by pointer jumping. Each slot
		// is written by its range owner only; cross-range reads go
		// through the atomics.
		var jumped atomic.Bool
		par.Do(k, func(w int) {
			ch := false
			for s := w * n / k; s < (w+1)*n/k; s++ {
				for {
					c := p.comp[s].Load()
					cc := p.comp[c].Load()
					if cc >= c {
						break
					}
					p.comp[s].Store(cc)
					ch = true
				}
			}
			if ch {
				jumped.Store(true)
			}
		})
		work += span
		if !hooked.Load() && !jumped.Load() {
			break
		}
	}
	ctx.AddWork(int(work))

	// Root cids: the minimum external id over the component's members
	// (owned vertices and F.O copies alike), via the exact atomic min.
	for i := range p.cid {
		p.cid[i].Store(int64(1) << 62)
	}
	par.Do(k, func(w int) {
		for s := w * n / k; s < (w+1)*n/k; s++ {
			var v int32
			if s < owned {
				v = f.Lo + int32(s)
			} else {
				v = f.Out[s-owned]
			}
			par.MinInt64(&p.cid[p.comp[s].Load()], int64(p.g.IDOf(v)))
		}
	})

	// Link copies to their roots once and for all (sequential: the
	// copiesOf list order is the deterministic f.Out order).
	p.copiesOf = make([][]int32, n)
	for _, v := range f.Out {
		r := p.comp[f.Slot(v)].Load()
		p.copiesOf[r] = append(p.copiesOf[r], v)
	}
	p.sendCopies(ctx, k)
}

// hook lowers the label of the larger endpoint of edge (owned slot s,
// neighbor u) to the smaller endpoint's label; copies hook too, since
// sequential PEval unions across every local edge of an owned row.
func (p *program) hook(s int32, u int32) bool {
	us := p.f.Slot(u)
	if us < 0 {
		return false
	}
	a := p.comp[s].Load()
	b := p.comp[us].Load()
	switch {
	case a < b:
		return par.MinInt32(&p.comp[us], a)
	case b < a:
		return par.MinInt32(&p.comp[s], b)
	}
	return false
}

// sendCopies ships every F.O copy's current root cid, staged across
// shards in f.Out order.
func (p *program) sendCopies(ctx *core.Context[int64], k int) {
	nOut := len(p.f.Out)
	if nOut == 0 {
		return
	}
	if k <= 1 {
		for _, v := range p.f.Out {
			ctx.Send(v, p.cid[p.comp[p.f.Slot(v)].Load()].Load())
		}
		return
	}
	stages := ctx.Stages(k)
	par.Do(k, func(w int) {
		st := stages[w]
		for i := w * nOut / k; i < (w+1)*nOut/k; i++ {
			v := p.f.Out[i]
			st.Send(v, p.cid[p.comp[p.f.Slot(v)].Load()].Load())
		}
	})
	ctx.MergeStages()
}

// IncEval lowers root cids from the aggregated messages in parallel and
// propagates every decrease to the owners of the copies linked to the
// changed roots — the bounded incremental step of Figure 3.
func (p *program) IncEval(msgs []core.VMsg[int64], ctx *core.Context[int64]) {
	k := p.kernelShards(int64(len(msgs)))
	p.changed.EnsureShards(k)
	par.Do(k, func(w int) {
		lo, hi := w*len(msgs)/k, (w+1)*len(msgs)/k
		for _, m := range msgs[lo:hi] {
			slot := p.f.Slot(m.V)
			if slot < 0 {
				continue
			}
			r := p.comp[slot].Load()
			if par.MinInt64(&p.cid[r], m.Val) {
				p.changed.Add(w, r)
			}
		}
	})
	ctx.AddWork(len(msgs))

	// Drain sorted so the downstream message order is canonical
	// regardless of shard count.
	roots := p.changed.Advance(true)
	if len(roots) == 0 {
		return
	}

	copies := func(r int32) int64 { return int64(len(p.copiesOf[r])) + 1 }
	var span int64
	for _, r := range roots {
		span += copies(r)
	}
	kk := p.kernelShards(span)
	p.bounds = par.ChunksByWork(roots, kk, p.bounds, copies)
	if kk <= 1 {
		for _, r := range roots {
			ctx.AddWork(len(p.copiesOf[r]))
			for _, v := range p.copiesOf[r] {
				ctx.Send(v, p.cid[r].Load())
			}
		}
		return
	}
	stages := ctx.Stages(kk)
	par.Do(kk, func(w int) {
		st := stages[w]
		for _, r := range roots[p.bounds[w]:p.bounds[w+1]] {
			st.AddWork(len(p.copiesOf[r]))
			val := p.cid[r].Load()
			for _, v := range p.copiesOf[r] {
				st.Send(v, val)
			}
		}
	})
	ctx.MergeStages()
}

// Get returns the cid of owned vertex v.
func (p *program) Get(v int32) int64 {
	return p.cid[p.comp[p.f.Slot(v)].Load()].Load()
}
