package cc

// Checkpoint support (core.Snapshotter): at round boundaries the only
// durable state is the component labeling (comp/parent), the per-root
// cids, and the round counter — the changed-root worklists are drained
// within each IncEval. copiesOf is derived from the labeling (the local
// forest is fixed after PEval), so it is rebuilt on restore rather than
// serialized; a presence flag distinguishes "PEval ran" from a fresh
// program, since a pre-PEval snapshot has no forest to index.

import (
	"fmt"

	"aap/internal/codec"
)

// SnapshotState serializes the parallel kernel's durable state.
func (p *program) SnapshotState() []byte {
	comp := make([]int32, len(p.comp))
	for i := range p.comp {
		comp[i] = p.comp[i].Load()
	}
	cid := make([]int64, len(p.cid))
	for i := range p.cid {
		cid[i] = p.cid[i].Load()
	}
	buf := make([]byte, 0, 4*len(comp)+8*len(cid)+24)
	buf = codec.AppendInt32s(buf, comp)
	buf = codec.AppendInt64s(buf, cid)
	buf = codec.AppendInt64(buf, int64(p.rounds))
	buf = codec.AppendBool(buf, p.copiesOf != nil)
	return buf
}

// RestoreState rewinds the parallel kernel to a snapshot and rebuilds
// the root→copies index from the restored labeling.
func (p *program) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	comp := r.Int32s()
	cid := r.Int64s()
	rounds := r.Int64()
	built := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if len(comp) != len(p.comp) || len(cid) != len(p.cid) {
		return fmt.Errorf("cc: snapshot has %d/%d slots, fragment has %d", len(comp), len(cid), len(p.comp))
	}
	for i, c := range comp {
		p.comp[i].Store(c)
	}
	for i, c := range cid {
		p.cid[i].Store(c)
	}
	p.rounds = int(rounds)
	if built {
		p.copiesOf = make([][]int32, len(comp))
		for _, v := range p.f.Out {
			root := p.comp[p.f.Slot(v)].Load()
			p.copiesOf[root] = append(p.copiesOf[root], v)
		}
	} else {
		p.copiesOf = nil
	}
	return nil
}

// SnapshotState serializes the union-find kernel's durable state.
func (p *refProgram) SnapshotState() []byte {
	buf := make([]byte, 0, 4*len(p.parent)+8*len(p.cid)+16)
	buf = codec.AppendInt32s(buf, p.parent)
	buf = codec.AppendInt64s(buf, p.cid)
	buf = codec.AppendBool(buf, p.copiesOf != nil)
	return buf
}

// RestoreState rewinds the union-find kernel to a snapshot and rebuilds
// the root→copies index from the restored forest.
func (p *refProgram) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	parent := r.Int32s()
	cid := r.Int64s()
	built := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if len(parent) != len(p.parent) || len(cid) != len(p.cid) {
		return fmt.Errorf("cc: snapshot has %d/%d slots, fragment has %d", len(parent), len(cid), len(p.parent))
	}
	copy(p.parent, parent)
	copy(p.cid, cid)
	if built {
		p.copiesOf = make([][]int32, len(parent))
		for _, v := range p.f.Out {
			root := p.find(p.f.Slot(v))
			p.copiesOf[root] = append(p.copiesOf[root], v)
		}
	} else {
		p.copiesOf = nil
	}
	p.changedRoots = p.changedRoots[:0]
	clear(p.rootChanged)
	return nil
}
