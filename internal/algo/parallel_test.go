package algo_test

// Differential tests of the frontier-parallel compute plane: every
// parallel kernel, forced to shard counts {1, 2, 3, 8}, must be
// bit-identical to its retained sequential reference — at the program
// level (one fragment, PEval to local fixpoint) and end to end through
// the deterministic virtual-time simulator (many fragments, real
// message traffic), plus a smoke run through the concurrent engine.

import (
	"fmt"
	"math"
	"testing"

	"aap/internal/algo/cc"
	"aap/internal/algo/cf"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/ref"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/sim"
)

// kernelShardCounts is the forced-shard axis of every differential test.
var kernelShardCounts = []int{1, 2, 3, 8}

// bitsEqualF64 compares float64 slices bitwise (±0 and NaN differences
// surface).
func bitsEqualF64(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: got %v (%#x) want %v (%#x)",
				tag, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func equalI64(t *testing.T, tag string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: got %d want %d", tag, i, got[i], want[i])
		}
	}
}

// peval runs a job's program on a single-fragment partition to its local
// fixpoint and collects the owned values — the kernel in isolation,
// no engine scheduling involved.
func peval[T any](t *testing.T, p *partition.Partitioned, job core.Job[T]) []T {
	t.Helper()
	if p.M != 1 {
		t.Fatalf("peval wants a single-fragment partition, got %d", p.M)
	}
	f := p.Frags[0]
	prog := job.New(f)
	ctx := core.NewEngineContext[T](f, 1)
	prog.PEval(ctx)
	out, _ := ctx.TakeOut()
	for _, msgs := range out {
		if len(msgs) != 0 {
			t.Fatalf("single-fragment PEval shipped %d messages", len(msgs))
		}
	}
	vals := make([]T, p.G.NumVertices())
	for v := f.Lo; v < f.Hi; v++ {
		vals[v] = prog.Get(v)
	}
	return vals
}

// kernelRounds asserts the program behind job reports its frontier
// rounds (the aapbench -exp compute contract).
func kernelRounds[T any](t *testing.T, p *partition.Partitioned, job core.Job[T]) int {
	t.Helper()
	prog := job.New(p.Frags[0])
	rr, ok := prog.(interface{ KernelRounds() int })
	if !ok {
		t.Fatalf("program %T does not report kernel rounds", prog)
	}
	ctx := core.NewEngineContext[T](p.Frags[0], 1)
	prog.PEval(ctx)
	ctx.TakeOut()
	return rr.KernelRounds()
}

// testGraphs are the shared differential corpora: a heavy-tailed graph
// (hub contention on the atomic mins), a grid (deep frontiers), and a
// small random weighted graph (ragged partitions).
func diffGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"powerlaw": gen.PowerLaw(600, 6, 2.1, true, 11),
		"grid":     gen.Grid(28, 28, 13),
		"random":   gen.Random(150, 700, true, 17),
	}
}

// TestSSSPParallelKernelMatchesRef: program-level differential — the
// frontier sweep at every forced shard count against sequential
// Dijkstra on one fragment.
func TestSSSPParallelKernelMatchesRef(t *testing.T) {
	for name, g := range diffGraphs() {
		p, err := partition.Build(g, 1, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		want := peval(t, p, sssp.RefJob(0))
		for _, k := range kernelShardCounts {
			got := peval(t, p, sssp.JobShards(0, k))
			bitsEqualF64(t, fmt.Sprintf("sssp/%s/shards=%d", name, k), got, want)
		}
		if r := kernelRounds(t, p, sssp.JobShards(0, 2)); r <= 0 {
			t.Fatalf("sssp/%s reported %d kernel rounds", name, r)
		}
	}
}

// TestCCParallelKernelMatchesRef: hook-and-shortcut label propagation
// against union-find on one fragment.
func TestCCParallelKernelMatchesRef(t *testing.T) {
	for name, g := range diffGraphs() {
		und := graph.AsUndirected(g)
		p, err := partition.Build(und, 1, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		want := peval(t, p, cc.RefJob())
		for _, k := range kernelShardCounts {
			got := peval(t, p, cc.JobShards(k))
			equalI64(t, fmt.Sprintf("cc/%s/shards=%d", name, k), got, want)
		}
		if r := kernelRounds(t, p, cc.JobShards(2)); r <= 0 {
			t.Fatalf("cc/%s reported %d kernel rounds", name, r)
		}
	}
}

// TestPageRankParallelKernelMatchesRef: the parallel edge sweep's
// (source-shard, dest-shard) staging must replay the sequential
// contribution order exactly — a sum fixpoint, so any reordering would
// change low-order bits and fail this test.
func TestPageRankParallelKernelMatchesRef(t *testing.T) {
	for name, g := range diffGraphs() {
		p, err := partition.Build(g, 1, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tol := range []float64{1e-6, 1e-10} {
			want := peval(t, p, pagerank.RefJob(pagerank.Config{Tol: tol}))
			for _, k := range kernelShardCounts {
				got := peval(t, p, pagerank.Job(pagerank.Config{Tol: tol, Shards: k}))
				bitsEqualF64(t, fmt.Sprintf("pagerank/%s/tol=%g/shards=%d", name, tol, k), got, want)
			}
		}
		if r := kernelRounds(t, p, pagerank.Job(pagerank.Config{Shards: 2})); r <= 0 {
			t.Fatalf("pagerank/%s reported %d kernel rounds", name, r)
		}
	}
}

// simValues runs a job under the deterministic virtual-time simulator
// and returns the assembled values.
func simValues[T any](t *testing.T, p *partition.Partitioned, job core.Job[T]) []T {
	t.Helper()
	res, err := sim.Run(p, job, sim.Config{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

// TestParallelKernelsMatchRefUnderSim: end-to-end differential through
// the simulator with real multi-fragment message traffic. SSSP and CC
// converge to unique exact-min fixpoints, so ref and parallel runs must
// agree bitwise even though their round structures differ. PageRank is
// compared across shard counts of the same kernel (its per-round message
// content is deterministic for any shard count); the work profile of the
// ref kernel is identical, so ref is included too.
func TestParallelKernelsMatchRefUnderSim(t *testing.T) {
	g := gen.PowerLaw(500, 5, 2.1, true, 23)
	und := graph.AsUndirected(g)
	for _, m := range []int{2, 5} {
		p, err := partition.Build(g, m, partition.BFSLocality{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		pu, err := partition.Build(und, m, partition.BFSLocality{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}

		wantS := simValues(t, p, sssp.RefJob(0))
		wantC := simValues(t, pu, cc.RefJob())
		wantP := simValues(t, p, pagerank.RefJob(pagerank.Config{Tol: 1e-8}))
		for _, k := range kernelShardCounts {
			bitsEqualF64(t, fmt.Sprintf("sim/sssp/m=%d/shards=%d", m, k),
				simValues(t, p, sssp.JobShards(0, k)), wantS)
			equalI64(t, fmt.Sprintf("sim/cc/m=%d/shards=%d", m, k),
				simValues(t, pu, cc.JobShards(k)), wantC)
			bitsEqualF64(t, fmt.Sprintf("sim/pagerank/m=%d/shards=%d", m, k),
				simValues(t, p, pagerank.Job(pagerank.Config{Tol: 1e-8, Shards: k})), wantP)
		}
	}
}

// TestCFStagedShipMatchesSequential: the staged parallel ship must not
// perturb training — contributions are built per copy independently and
// merged in copy order, so the trained factors are bit-identical.
func TestCFStagedShipMatchesSequential(t *testing.T) {
	r := gen.Bipartite(200, 40, 10, 4, 0.9, 29)
	p, err := partition.Build(r.G, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	base := cf.Config{Users: 200, Products: 40, Rank: 4, Epochs: 10, Seed: 2}
	seq := base
	seq.Shards = 1
	want := simValues(t, p, cf.Job(seq))
	for _, k := range []int{2, 3, 8} {
		cfg := base
		cfg.Shards = k
		got := simValues(t, p, cf.Job(cfg))
		for v := range want {
			if got[v].Weight != want[v].Weight || len(got[v].Vec) != len(want[v].Vec) {
				t.Fatalf("cf shards=%d vertex %d: shape diverged", k, v)
			}
			for i := range want[v].Vec {
				if math.Float64bits(got[v].Vec[i]) != math.Float64bits(want[v].Vec[i]) {
					t.Fatalf("cf shards=%d vertex %d dim %d: %v != %v",
						k, v, i, got[v].Vec[i], want[v].Vec[i])
				}
			}
		}
	}
}

// TestParallelKernelsUnderEngine: smoke the parallel kernels through the
// real concurrent engine (staged sends racing with the flusher under
// -race in CI) against the single-threaded oracles.
func TestParallelKernelsUnderEngine(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 31)
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	wantS := ref.SSSP(g, 0)
	res, err := core.Run(p, sssp.JobShards(0, 3), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := p.G.IDOf(int32(v))
		orig, _ := g.IndexOf(id)
		got, w := res.Values[v], wantS[orig]
		if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
			t.Fatalf("engine sssp vertex %d: got %v want %v", id, got, w)
		}
	}

	und := graph.AsUndirected(g)
	pu, err := partition.Build(und, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	wantC := ref.CC(und)
	resC, err := core.Run(pu, cc.JobShards(3), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < und.NumVertices(); v++ {
		id := pu.G.IDOf(int32(v))
		orig, _ := und.IndexOf(id)
		if resC.Values[v] != wantC[orig] {
			t.Fatalf("engine cc vertex %d: got %d want %d", id, resC.Values[v], wantC[orig])
		}
	}

	wantP := ref.PageRank(g, 0.85, 1e-10, 1000)
	resP, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-10, Shards: 3}), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := p.G.IDOf(int32(v))
		orig, _ := g.IndexOf(id)
		if d := math.Abs(resP.Values[v] - wantP[orig]); d > 1e-6 {
			t.Fatalf("engine pagerank vertex %d: |Δ|=%g", id, d)
		}
	}
}
