package sssp

// Checkpoint support (core.Snapshotter): the engine calls these at
// round boundaries only, where every kernel's worklist is empty by the
// IncEval local-quiescence contract — the frontier and buckets are
// drained by sweep, the Dijkstra heap by dijkstra, and the copy-flush
// marks by flushBorder. The durable state is therefore just the
// distance array (as raw float bits, so the round trip is bit-exact)
// plus the kernel's work counters.

import (
	"fmt"

	"aap/internal/codec"
)

// SnapshotState serializes the frontier kernel's durable state.
func (p *program) SnapshotState() []byte {
	buf := make([]byte, 0, 4+8*len(p.dist)+16)
	bits := make([]uint64, len(p.dist))
	for i := range p.dist {
		bits[i] = p.dist[i].Load()
	}
	buf = codec.AppendUint64s(buf, bits)
	buf = codec.AppendInt64(buf, int64(p.rounds))
	buf = codec.AppendInt64(buf, p.relaxed)
	return buf
}

// RestoreState rewinds the frontier kernel to a snapshot.
func (p *program) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	bits := r.Uint64s()
	rounds := r.Int64()
	relaxed := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(bits) != len(p.dist) {
		return fmt.Errorf("sssp: snapshot has %d slots, fragment has %d", len(bits), len(p.dist))
	}
	for i, b := range bits {
		p.dist[i].Store(b)
	}
	p.rounds = int(rounds)
	p.relaxed = relaxed
	p.copyChanged.Reset()
	return nil
}

// SnapshotState serializes the delta-stepping kernel's durable state.
func (p *deltaProgram) SnapshotState() []byte {
	buf := make([]byte, 0, 4+8*len(p.dist)+24)
	bits := make([]uint64, len(p.dist))
	for i := range p.dist {
		bits[i] = p.dist[i].Load()
	}
	buf = codec.AppendUint64s(buf, bits)
	buf = codec.AppendInt64(buf, int64(p.rounds))
	buf = codec.AppendInt64(buf, int64(p.buckets))
	buf = codec.AppendInt64(buf, p.relaxed)
	return buf
}

// RestoreState rewinds the delta-stepping kernel to a snapshot. The
// bucket window needs no repair: IncEval restarts it at the smallest
// incoming improvement before staging anything.
func (p *deltaProgram) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	bits := r.Uint64s()
	rounds := r.Int64()
	buckets := r.Int64()
	relaxed := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(bits) != len(p.dist) {
		return fmt.Errorf("sssp: snapshot has %d slots, fragment has %d", len(bits), len(p.dist))
	}
	for i, b := range bits {
		p.dist[i].Store(b)
	}
	p.rounds = int(rounds)
	p.buckets = int(buckets)
	p.relaxed = relaxed
	p.copyChanged.Reset()
	p.settledIn.Reset()
	return nil
}

// SnapshotState serializes the sequential reference kernel's durable
// state.
func (p *refProgram) SnapshotState() []byte {
	buf := make([]byte, 0, 4+8*len(p.dist)+8)
	buf = codec.AppendFloat64s(buf, p.dist)
	buf = codec.AppendInt64(buf, p.relaxed)
	return buf
}

// RestoreState rewinds the sequential reference kernel to a snapshot.
func (p *refProgram) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	dist := r.Float64s()
	relaxed := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(dist) != len(p.dist) {
		return fmt.Errorf("sssp: snapshot has %d slots, fragment has %d", len(dist), len(p.dist))
	}
	copy(p.dist, dist)
	p.relaxed = relaxed
	p.pq.items = p.pq.items[:0]
	p.changedCopies = p.changedCopies[:0]
	clear(p.copyChanged)
	return nil
}
