// Batched multi-source SSSP: k sources evaluated in one engine run over
// shared edge scans — the serving plane's amortization kernel.
//
// Each local slot holds a lane vector of k distances, one per source.
// The frontier is the union of the per-lane frontiers: a slot is
// (re)expanded when ANY lane improved, and expanding it reads its CSR
// row ONCE, relaxing all k lanes against each edge. That is the
// share-the-scan argument: where k separate runs read a row once per
// source that reaches it, the batch reads it once per union-frontier
// activation, so the scanned-edge total (ScannedEdges, surfaced through
// core.RunStats) drops toward 1/k of the separate-run sum as the
// sources' reach overlaps.
//
// Results are bit-identical to k separate single-source runs, by the
// same unique-fixpoint argument the single-source kernels share: lanes
// never mix (relaxation only ever combines lane l's distance with an
// edge weight), every candidate distance in lane l is the exact
// left-to-right float64 sum along one path from source l, and the
// atomic min over that candidate set is exact — so each lane converges
// to exactly the value its own run would, regardless of scan order or
// how lanes share frontier activations. The differential tests pin this
// at forced shard counts.
package sssp

import (
	"math"
	"sync/atomic"

	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// MultiConfig parameterizes the batched multi-source SSSP job.
type MultiConfig struct {
	// Sources are the external ids of the batch's sources; lane i of
	// every result vector belongs to Sources[i].
	Sources []graph.VertexID

	// Shards forces the kernel shard count per round when >= 1;
	// 0 picks automatically (the same axis as Config.Shards).
	Shards int
}

// MultiJob builds the batched multi-source SSSP job: one engine run
// whose per-vertex result is the lane vector of distances from every
// source in cfg.Sources, bit-identical lane by lane to separate
// single-source runs. Edge weights must be positive and finite, the
// same precondition (and fail-fast Validate) as the single-source job.
func MultiJob(cfg MultiConfig) core.Job[[]float64] {
	k := len(cfg.Sources)
	return core.Job[[]float64]{
		Name:     "sssp-multi",
		Validate: ValidateWeights,
		New: func(f *partition.Fragment) core.Program[[]float64] {
			return newMultiProgram(f, cfg)
		},
		// Elementwise min, folded into a in place: a is always the
		// accumulating entry of the fold, whose vector the first message
		// owns outright (flushBorder allocates per send).
		Aggregate: func(a, b []float64) []float64 {
			n := min(len(a), len(b))
			for i := 0; i < n; i++ {
				if b[i] < a[i] {
					a[i] = b[i]
				}
			}
			return a
		},
		Bytes: func(v []float64) int { return 8*len(v) + 4 },
		Default: func(int32) []float64 {
			d := make([]float64, k)
			for i := range d {
				d[i] = Inf
			}
			return d
		},
		EncodeVal: codec.AppendFloat64s,
		DecodeVal: (*codec.Reader).Float64s,
	}
}

// Lane extracts source lane l from a multi-source result vector as a
// per-vertex distance slice — the shape a single-source run returns.
func Lane(values [][]float64, l int) []float64 {
	out := make([]float64, len(values))
	for v, lanes := range values {
		if l < len(lanes) {
			out[v] = lanes[l]
		} else {
			out[v] = Inf
		}
	}
	return out
}

// multiProgram is the per-fragment state: a slots×k lane-major distance
// matrix in atomic float bits, the union frontier, and the shared-scan
// sweep.
type multiProgram struct {
	f       *partition.Fragment
	g       *graph.Graph
	sources []graph.VertexID
	k       int
	shards  int

	dist        []atomic.Uint64 // float64 bits, dist[slot*k+lane]
	fr          *par.Frontier   // union frontier over owned slots
	copyChanged *par.Marks      // F.O copies with any improved lane

	bounds  []int   // reusable chunk-boundary scratch
	edges   []int64 // per-shard scan counts
	rounds  int
	scanned int64 // raw CSR edges read (once per expansion, k lanes served)
}

func newMultiProgram(f *partition.Fragment, cfg MultiConfig) *multiProgram {
	p := &multiProgram{
		f: f, g: f.Graph(),
		sources: cfg.Sources, k: len(cfg.Sources), shards: cfg.Shards,
	}
	p.dist = make([]atomic.Uint64, f.Slots()*p.k)
	inf := math.Float64bits(Inf)
	for i := range p.dist {
		p.dist[i].Store(inf)
	}
	p.fr = par.NewFrontier(f.NumOwned(), max(cfg.Shards, 1))
	p.copyChanged = par.NewMarks(len(f.Out))
	return p
}

// KernelRounds reports the frontier rounds executed so far.
func (p *multiProgram) KernelRounds() int { return p.rounds }

// ScannedEdges reports the raw CSR edges the sweeps read; each serves
// all k lanes (core.ScanCounter).
func (p *multiProgram) ScannedEdges() int64 { return p.scanned }

// PEval seeds every owned source's lane and sweeps to the local
// fixpoint.
func (p *multiProgram) PEval(ctx *core.Context[[]float64]) {
	for l, src := range p.sources {
		s, ok := p.g.IndexOf(src)
		if !ok || !p.f.Owns(s) {
			continue
		}
		slot := s - p.f.Lo
		p.dist[int(slot)*p.k+l].Store(math.Float64bits(0))
		p.fr.Add(0, slot)
	}
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// IncEval lowers lane distances from the folded messages, re-seeds the
// union frontier with slots any lane improved, and resumes the sweep.
func (p *multiProgram) IncEval(msgs []core.VMsg[[]float64], ctx *core.Context[[]float64]) {
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		base := int(slot) * p.k
		improved := false
		for l := 0; l < p.k && l < len(m.Val); l++ {
			nd := m.Val[l]
			if nd < math.Float64frombits(p.dist[base+l].Load()) {
				p.dist[base+l].Store(math.Float64bits(nd))
				improved = true
			}
		}
		if improved && p.f.Owns(m.V) {
			p.fr.Add(0, slot)
		}
	}
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// Get returns the lane vector of owned vertex v.
func (p *multiProgram) Get(v int32) []float64 {
	base := int(p.f.Slot(v)) * p.k
	out := make([]float64, p.k)
	for l := range out {
		out[l] = math.Float64frombits(p.dist[base+l].Load())
	}
	return out
}

func (p *multiProgram) kernelShards(work int64) int {
	if p.shards > 0 {
		return p.shards
	}
	return par.Kernel(work)
}

// sweep expands the union frontier to the local fixpoint: one CSR row
// read per expanded slot, all k lanes relaxed against each edge.
func (p *multiProgram) sweep(ctx *core.Context[[]float64]) {
	owned := int32(p.f.NumOwned())
	for {
		items := p.fr.Advance(false)
		if len(items) == 0 {
			return
		}
		p.rounds++
		deg := func(s int32) int64 { return int64(p.g.OutDegree(p.f.Lo+s)) + 1 }
		var span int64
		for _, s := range items {
			span += deg(s)
		}
		k := p.kernelShards(span)
		p.fr.EnsureShards(k)
		p.bounds = par.ChunksByWork(items, k, p.bounds, deg)
		if cap(p.edges) < k {
			p.edges = make([]int64, k)
		}
		edges := p.edges[:k]
		par.Do(k, func(w int) {
			var scanned int64
			d := make([]float64, p.k) // lane snapshot of the expanding slot
			for _, s := range items[p.bounds[w]:p.bounds[w+1]] {
				v := p.f.Lo + s
				base := int(s) * p.k
				live := false
				for l := range d {
					d[l] = math.Float64frombits(p.dist[base+l].Load())
					live = live || !math.IsInf(d[l], 1)
				}
				wts := p.g.OutWeights(v)
				out := p.g.Out(v)
				scanned += int64(len(out))
				if !live {
					continue // stale activation: every lane still at Inf
				}
				for i, u := range out {
					wt := 1.0
					if wts != nil {
						wt = wts[i]
					}
					p.relax(u, d, wt, w, owned)
				}
			}
			edges[w] = scanned
		})
		var total int64
		for _, n := range edges {
			total += n
		}
		p.scanned += total
		ctx.AddWork(int(total))
	}
}

// relax lowers every reachable lane of u through an edge of weight wt
// from a slot whose lane snapshot is d; any improvement stages u once.
func (p *multiProgram) relax(u int32, d []float64, wt float64, w int, owned int32) {
	slot := p.f.Slot(u)
	if slot < 0 {
		return
	}
	base := int(slot) * p.k
	improved := false
	for l, dl := range d {
		if math.IsInf(dl, 1) {
			continue
		}
		if par.MinFloat64Bits(&p.dist[base+l], dl+wt) {
			improved = true
		}
	}
	if !improved {
		return
	}
	if slot < owned {
		p.fr.Add(w, slot)
	} else {
		p.copyChanged.TryMark(slot - owned)
	}
}

// flushBorder ships the lane vectors of copies improved since the last
// flush, staged across kernel shards in copy-slot order (the same
// deterministic merge as the single-source kernels).
func (p *multiProgram) flushBorder(ctx *core.Context[[]float64]) {
	nOut := len(p.f.Out)
	if nOut == 0 {
		return
	}
	owned := p.f.NumOwned()
	sendCopy := func(send func(v int32, val []float64), i int) {
		base := (owned + i) * p.k
		vec := make([]float64, p.k)
		for l := range vec {
			vec[l] = math.Float64frombits(p.dist[base+l].Load())
		}
		send(p.f.Out[i], vec)
	}
	k := p.kernelShards(int64(nOut) * int64(p.k))
	if k <= 1 {
		for i := range p.f.Out {
			if p.copyChanged.Marked(int32(i)) {
				sendCopy(ctx.Send, i)
			}
		}
	} else {
		stages := ctx.Stages(k)
		par.Do(k, func(w int) {
			for i := w * nOut / k; i < (w+1)*nOut/k; i++ {
				if p.copyChanged.Marked(int32(i)) {
					sendCopy(stages[w].Send, i)
				}
			}
		})
		ctx.MergeStages()
	}
	p.copyChanged.Reset()
}
