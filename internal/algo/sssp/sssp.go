// Package sssp is the PIE program for single-source shortest paths
// (Section 5.1 of the paper). Three kernels implement the same PEval /
// IncEval semantics:
//
//   - the retained sequential reference (sssp_ref.go): Dijkstra as PEval
//     and Ramalingam-Reps incremental relaxation as IncEval;
//   - the frontier-parallel kernel (this file): a sharded worklist of
//     improved vertices swept in Bellman-Ford order over the CSR rows,
//     relaxing with an exact atomic float-min;
//   - the bucketed delta-stepping kernel (delta.go): the same sweep
//     staged through distance-range buckets (par.Buckets) with a
//     light/heavy edge split, restoring near-Dijkstra work on weighted
//     graphs with long shortest-path trees at full shard parallelism.
//
// The three are bit-identical by construction: with positive weights
// every candidate distance is the left-to-right sum along one path,
// extending a path never lowers its sum, and min over that candidate set
// is exact — so the fixpoint is unique and independent of relaxation
// order. Bucketing changes only how much work reaching it wastes. The
// differential tests in internal/algo pin this at forced shard counts
// and bucket widths. The positivity precondition the argument rests on
// is enforced by ValidateWeights before any kernel runs.
package sssp

import (
	"fmt"
	"math"
	"sync/atomic"

	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// Inf is the distance of unreachable vertices.
var Inf = math.Inf(1)

// KernelKind selects which SSSP kernel a fragment runs.
type KernelKind int

const (
	// KernelAuto picks per fragment: sequential Dijkstra below the
	// sharding grain, the bucketed kernel when edge weights are
	// dispersed, the plain frontier sweep otherwise.
	KernelAuto KernelKind = iota
	// KernelRef forces the retained sequential Dijkstra reference.
	KernelRef
	// KernelFrontier forces the Bellman-Ford-ordered frontier sweep.
	KernelFrontier
	// KernelBuckets forces the delta-stepping bucketed frontier.
	KernelBuckets
)

// ParseKernel resolves a CLI kernel name.
func ParseKernel(s string) (KernelKind, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "ref":
		return KernelRef, nil
	case "frontier":
		return KernelFrontier, nil
	case "buckets", "delta":
		return KernelBuckets, nil
	}
	return 0, fmt.Errorf("sssp: unknown kernel %q (want auto, ref, frontier or buckets)", s)
}

// Config parameterizes the SSSP job. The zero value (plus a Source) is
// the production configuration: automatic kernel choice, automatic
// shard count, delta tuned from the mean edge weight.
type Config struct {
	// Source is the external id of the source vertex.
	Source graph.VertexID

	// Shards forces the kernel shard count per round when >= 1
	// (1 exercises the sweeps single-threaded); 0 picks automatically.
	// The differential tests and the compute-scaling benchmark force
	// the axis through here.
	Shards int

	// Delta is the bucket width of the delta-stepping kernel: distances
	// [i*Delta, (i+1)*Delta) share bucket i. 0 auto-tunes to the mean
	// edge weight of the fragment. A tiny Delta approaches Dijkstra
	// ordering (least wasted work, most rounds); a huge one degrades to
	// a single bucket, i.e. the Bellman-Ford frontier order.
	Delta float64

	// Kernel selects the kernel; KernelAuto (the zero value) decides
	// per fragment.
	Kernel KernelKind
}

// Job builds the SSSP PIE job for the given source (an external vertex
// id). Edge weights must be positive and finite — enforced up front by
// ValidateWeights; unweighted edges count as 1. Each fragment picks its
// kernel automatically (see KernelAuto).
func Job(source graph.VertexID) core.Job[float64] {
	return JobConfig(Config{Source: source})
}

// JobShards builds the SSSP job with a forced kernel shard count, the
// scaling axis of the differential tests and benchmarks; kernel choice
// stays automatic.
func JobShards(source graph.VertexID, shards int) core.Job[float64] {
	return JobConfig(Config{Source: source, Shards: shards})
}

// JobConfig builds the SSSP job from an explicit configuration.
func JobConfig(cfg Config) core.Job[float64] {
	return core.Job[float64]{
		Name:     "sssp",
		Validate: ValidateWeights,
		New: func(f *partition.Fragment) core.Program[float64] {
			return newKernel(f, cfg)
		},
		Aggregate: math.Min,
		Bytes:     func(float64) int { return 8 },
		Default:   func(int32) float64 { return Inf },
		EncodeVal: codec.AppendFloat64,
		DecodeVal: (*codec.Reader).Float64,
	}
}

// RefJob builds the job over the retained sequential kernel only — the
// pinned oracle of the differential tests.
func RefJob(source graph.VertexID) core.Job[float64] {
	return JobConfig(Config{Source: source, Kernel: KernelRef})
}

// weightDispersionMin is the coefficient-of-variation threshold of the
// kernel heuristic: below it weights are (near) uniform, every frontier
// level is one distance band, and Bellman-Ford order already is
// delta-stepping order — bucketing would only add staging overhead.
const weightDispersionMin = 0.1

// newKernel resolves cfg to a program for fragment f.
func newKernel(f *partition.Fragment, cfg Config) core.Program[float64] {
	switch cfg.Kernel {
	case KernelRef:
		return newRefProgram(f, cfg.Source)
	case KernelFrontier:
		return newProgram(f, cfg.Source, cfg.Shards)
	case KernelBuckets:
		return newDeltaProgram(f, cfg.Source, cfg.Shards, cfg.Delta)
	}
	if cfg.Shards == 0 && par.Kernel(f.Graph().OutSpan(f.Lo, f.Hi)) <= 1 {
		// Too small to shard: sequential Dijkstra is work-optimal.
		return newRefProgram(f, cfg.Source)
	}
	if mean, disp := weightStats(f); disp >= weightDispersionMin {
		// Dispersed weights: long shortest-path trees re-relax badly in
		// Bellman-Ford order; bucket the frontier. The mean is in hand,
		// so resolve the auto delta here instead of rescanning the
		// fragment's weights in newDeltaProgram.
		delta := cfg.Delta
		if !(delta > 0) {
			delta = mean
		}
		return newDeltaProgram(f, cfg.Source, cfg.Shards, delta)
	}
	return newProgram(f, cfg.Source, cfg.Shards)
}

// ValidateWeights enforces the job's documented precondition: every
// edge weight is positive and finite. A zero, negative, NaN or infinite
// weight silently voids the unique-fixpoint argument (relaxation order
// could then change results, and zero-weight cycles never terminate),
// so engines fail fast instead. Unweighted graphs pass trivially.
func ValidateWeights(p *partition.Partitioned) error {
	g := p.G
	if !g.Weighted() {
		return nil
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		out := g.Out(v)
		for i, w := range g.OutWeights(v) {
			if !(w > 0) || math.IsInf(w, 1) {
				return fmt.Errorf("sssp: edge %d->%d has weight %v: edge weights must be positive and finite",
					g.IDOf(v), g.IDOf(out[i]), w)
			}
		}
	}
	return nil
}

// program is the frontier-parallel kernel: distances live in atomic
// float bits, improved owned slots feed a sharded frontier, and each
// round sweeps the frontier's out-edges across kernel shards balanced by
// edge count. Improved F.O copies are recorded in a concurrent mark set
// and flushed once per engine round.
type program struct {
	f      *partition.Fragment
	g      *graph.Graph
	source graph.VertexID
	shards int // forced kernel shard count; 0 = auto per round

	dist        []atomic.Uint64 // float64 bits per local slot
	fr          *par.Frontier   // owned slots to re-expand
	copyChanged *par.Marks      // F.O copies improved since last flush

	bounds  []int   // reusable chunk-boundary scratch
	edges   []int64 // per-shard edge counts for work accounting
	rounds  int     // kernel (frontier) rounds executed
	relaxed int64   // edge relaxations attempted
}

func newProgram(f *partition.Fragment, source graph.VertexID, shards int) *program {
	p := &program{f: f, g: f.Graph(), source: source, shards: shards}
	p.dist = make([]atomic.Uint64, f.Slots())
	inf := math.Float64bits(Inf)
	for i := range p.dist {
		p.dist[i].Store(inf)
	}
	p.fr = par.NewFrontier(f.NumOwned(), max(shards, 1))
	p.copyChanged = par.NewMarks(len(f.Out))
	return p
}

// KernelRounds reports the frontier rounds executed so far (the
// per-round scaling axis of aapbench -exp compute).
func (p *program) KernelRounds() int { return p.rounds }

// Relaxations reports the edge relaxations attempted so far — the work
// metric the delta-stepping comparison is about.
func (p *program) Relaxations() int64 { return p.relaxed }

// ScannedEdges reports the raw CSR edges the sweeps read (one per
// out-edge of every expanded frontier vertex) — core.ScanCounter, the
// denominator of the batched multi-source amortization ratio.
func (p *program) ScannedEdges() int64 { return p.relaxed }

// PEval seeds the source if owned and sweeps to the local fixpoint.
func (p *program) PEval(ctx *core.Context[float64]) {
	s, ok := p.g.IndexOf(p.source)
	if !ok || !p.f.Owns(s) {
		return
	}
	p.dist[s-p.f.Lo].Store(math.Float64bits(0))
	p.fr.Add(0, s-p.f.Lo)
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// IncEval lowers distances from the aggregated messages, re-seeds the
// frontier with the improved owned vertices, and resumes the sweep.
func (p *program) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		if m.Val < math.Float64frombits(p.dist[slot].Load()) {
			p.dist[slot].Store(math.Float64bits(m.Val))
			if p.f.Owns(m.V) {
				p.fr.Add(0, slot)
			}
		}
	}
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// Get returns the current distance of owned vertex v.
func (p *program) Get(v int32) float64 {
	return math.Float64frombits(p.dist[p.f.Slot(v)].Load())
}

// kernelShards resolves the shard count for `work` units this round.
func (p *program) kernelShards(work int64) int {
	if p.shards > 0 {
		return p.shards
	}
	return par.Kernel(work)
}

// sweep runs frontier rounds to the local fixpoint: each round expands
// the current frontier's out-edges in parallel, relaxing with the exact
// atomic min; newly improved owned slots stage the next frontier,
// improved copies mark the flush set.
func (p *program) sweep(ctx *core.Context[float64]) {
	owned := int32(p.f.NumOwned())
	for {
		items := p.fr.Advance(false)
		if len(items) == 0 {
			return
		}
		p.rounds++
		deg := func(s int32) int64 { return int64(p.g.OutDegree(p.f.Lo+s)) + 1 }
		var span int64
		for _, s := range items {
			span += deg(s)
		}
		k := p.kernelShards(span)
		p.fr.EnsureShards(k)
		p.bounds = par.ChunksByWork(items, k, p.bounds, deg)
		if cap(p.edges) < k {
			p.edges = make([]int64, k)
		}
		edges := p.edges[:k]
		par.Do(k, func(w int) {
			var scanned int64
			for _, s := range items[p.bounds[w]:p.bounds[w+1]] {
				v := p.f.Lo + s
				d := math.Float64frombits(p.dist[s].Load())
				wts := p.g.OutWeights(v)
				out := p.g.Out(v)
				scanned += int64(len(out))
				for i, u := range out {
					wt := 1.0
					if wts != nil {
						wt = wts[i]
					}
					p.relax(u, d+wt, w, owned)
				}
			}
			edges[w] = scanned
		})
		var total int64
		for _, n := range edges {
			total += n
		}
		p.relaxed += total
		ctx.AddWork(int(total))
	}
}

// relax lowers u's distance to nd if it improves, staging owned slots on
// shard w's frontier list and marking improved copies for the flush.
func (p *program) relax(u int32, nd float64, w int, owned int32) {
	slot := p.f.Slot(u)
	if slot < 0 {
		return
	}
	if !par.MinFloat64Bits(&p.dist[slot], nd) {
		return
	}
	if slot < owned {
		p.fr.Add(w, slot)
	} else {
		p.copyChanged.TryMark(slot - owned)
	}
}

// flushBorder ships the distances of copies improved since the last
// flush.
func (p *program) flushBorder(ctx *core.Context[float64]) {
	flushAtomicCopies(ctx, p.f, p.dist, p.copyChanged, p.kernelShards(int64(len(p.f.Out))))
}

// flushAtomicCopies ships the distances of F.O copies marked in changed,
// staged across k kernel shards and merged in copy-slot order so the
// per-destination message order matches a sequential pass, then clears
// the mark set. Shared by the frontier and delta-stepping kernels.
func flushAtomicCopies(ctx *core.Context[float64], f *partition.Fragment, dist []atomic.Uint64, changed *par.Marks, k int) {
	nOut := len(f.Out)
	if nOut == 0 {
		return
	}
	owned := int32(f.NumOwned())
	if k <= 1 {
		for i, v := range f.Out {
			if changed.Marked(int32(i)) {
				ctx.Send(v, math.Float64frombits(dist[owned+int32(i)].Load()))
			}
		}
	} else {
		stages := ctx.Stages(k)
		par.Do(k, func(w int) {
			st := stages[w]
			for i := w * nOut / k; i < (w+1)*nOut/k; i++ {
				if changed.Marked(int32(i)) {
					st.Send(f.Out[i], math.Float64frombits(dist[owned+int32(i)].Load()))
				}
			}
		})
		ctx.MergeStages()
	}
	changed.Reset()
}
