// Package sssp is the PIE program for single-source shortest paths
// (Section 5.1 of the paper). Two kernels implement the same PEval /
// IncEval semantics:
//
//   - the retained sequential reference (sssp_ref.go): Dijkstra as PEval
//     and Ramalingam-Reps incremental relaxation as IncEval;
//   - the frontier-parallel kernel (this file): a sharded worklist of
//     improved vertices swept in parallel over the CSR rows, relaxing
//     with an exact atomic float-min.
//
// The two are bit-identical by construction: with positive weights every
// candidate distance is the left-to-right sum along one path, extending
// a path never lowers its sum, and min over that candidate set is exact
// — so the fixpoint is unique and independent of relaxation order. The
// differential tests in internal/algo pin this at forced shard counts.
package sssp

import (
	"math"
	"sync/atomic"

	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// Inf is the distance of unreachable vertices.
var Inf = math.Inf(1)

// Job builds the SSSP PIE job for the given source (an external vertex
// id). Edge weights must be positive; unweighted edges count as 1. Each
// fragment picks its kernel by size: fragments with enough edges to
// shard run the frontier-parallel kernel, small ones keep the
// work-optimal sequential Dijkstra.
func Job(source graph.VertexID) core.Job[float64] {
	return JobShards(source, 0)
}

// JobShards builds the SSSP job with a forced kernel shard count:
// shards >= 1 runs the frontier-parallel kernel with exactly that many
// shards per round (1 exercises the sweep single-threaded), 0 picks
// automatically. The differential tests and the compute-scaling
// benchmark force the axis through here.
func JobShards(source graph.VertexID, shards int) core.Job[float64] {
	return core.Job[float64]{
		Name: "sssp",
		New: func(f *partition.Fragment) core.Program[float64] {
			if shards == 0 && par.Kernel(f.Graph().OutSpan(f.Lo, f.Hi)) <= 1 {
				return newRefProgram(f, source)
			}
			return newProgram(f, source, shards)
		},
		Aggregate: math.Min,
		Bytes:     func(float64) int { return 8 },
		Default:   func(int32) float64 { return Inf },
	}
}

// RefJob builds the job over the retained sequential kernel only — the
// pinned oracle of the differential tests.
func RefJob(source graph.VertexID) core.Job[float64] {
	return core.Job[float64]{
		Name: "sssp",
		New: func(f *partition.Fragment) core.Program[float64] {
			return newRefProgram(f, source)
		},
		Aggregate: math.Min,
		Bytes:     func(float64) int { return 8 },
		Default:   func(int32) float64 { return Inf },
	}
}

// program is the frontier-parallel kernel: distances live in atomic
// float bits, improved owned slots feed a sharded frontier, and each
// round sweeps the frontier's out-edges across kernel shards balanced by
// edge count. Improved F.O copies are recorded in a concurrent mark set
// and flushed once per engine round.
type program struct {
	f      *partition.Fragment
	g      *graph.Graph
	source graph.VertexID
	shards int // forced kernel shard count; 0 = auto per round

	dist        []atomic.Uint64 // float64 bits per local slot
	fr          *par.Frontier   // owned slots to re-expand
	copyChanged *par.Marks      // F.O copies improved since last flush

	bounds []int   // reusable chunk-boundary scratch
	edges  []int64 // per-shard edge counts for work accounting
	rounds int     // kernel (frontier) rounds executed
}

func newProgram(f *partition.Fragment, source graph.VertexID, shards int) *program {
	p := &program{f: f, g: f.Graph(), source: source, shards: shards}
	p.dist = make([]atomic.Uint64, f.Slots())
	inf := math.Float64bits(Inf)
	for i := range p.dist {
		p.dist[i].Store(inf)
	}
	p.fr = par.NewFrontier(f.NumOwned(), max(shards, 1))
	p.copyChanged = par.NewMarks(len(f.Out))
	return p
}

// KernelRounds reports the frontier rounds executed so far (the
// per-round scaling axis of aapbench -exp compute).
func (p *program) KernelRounds() int { return p.rounds }

// PEval seeds the source if owned and sweeps to the local fixpoint.
func (p *program) PEval(ctx *core.Context[float64]) {
	s, ok := p.g.IndexOf(p.source)
	if !ok || !p.f.Owns(s) {
		return
	}
	p.dist[s-p.f.Lo].Store(math.Float64bits(0))
	p.fr.Add(0, s-p.f.Lo)
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// IncEval lowers distances from the aggregated messages, re-seeds the
// frontier with the improved owned vertices, and resumes the sweep.
func (p *program) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		if m.Val < math.Float64frombits(p.dist[slot].Load()) {
			p.dist[slot].Store(math.Float64bits(m.Val))
			if p.f.Owns(m.V) {
				p.fr.Add(0, slot)
			}
		}
	}
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// Get returns the current distance of owned vertex v.
func (p *program) Get(v int32) float64 {
	return math.Float64frombits(p.dist[p.f.Slot(v)].Load())
}

// kernelShards resolves the shard count for `work` units this round.
func (p *program) kernelShards(work int64) int {
	if p.shards > 0 {
		return p.shards
	}
	return par.Kernel(work)
}

// sweep runs frontier rounds to the local fixpoint: each round expands
// the current frontier's out-edges in parallel, relaxing with the exact
// atomic min; newly improved owned slots stage the next frontier,
// improved copies mark the flush set.
func (p *program) sweep(ctx *core.Context[float64]) {
	owned := int32(p.f.NumOwned())
	for {
		items := p.fr.Advance(false)
		if len(items) == 0 {
			return
		}
		p.rounds++
		deg := func(s int32) int64 { return int64(p.g.OutDegree(p.f.Lo+s)) + 1 }
		var span int64
		for _, s := range items {
			span += deg(s)
		}
		k := p.kernelShards(span)
		p.fr.EnsureShards(k)
		p.bounds = par.ChunksByWork(items, k, p.bounds, deg)
		if cap(p.edges) < k {
			p.edges = make([]int64, k)
		}
		edges := p.edges[:k]
		par.Do(k, func(w int) {
			var scanned int64
			for _, s := range items[p.bounds[w]:p.bounds[w+1]] {
				v := p.f.Lo + s
				d := math.Float64frombits(p.dist[s].Load())
				wts := p.g.OutWeights(v)
				out := p.g.Out(v)
				scanned += int64(len(out))
				for i, u := range out {
					wt := 1.0
					if wts != nil {
						wt = wts[i]
					}
					p.relax(u, d+wt, w, owned)
				}
			}
			edges[w] = scanned
		})
		var total int64
		for _, n := range edges {
			total += n
		}
		ctx.AddWork(int(total))
	}
}

// relax lowers u's distance to nd if it improves, staging owned slots on
// shard w's frontier list and marking improved copies for the flush.
func (p *program) relax(u int32, nd float64, w int, owned int32) {
	slot := p.f.Slot(u)
	if slot < 0 {
		return
	}
	if !par.MinFloat64Bits(&p.dist[slot], nd) {
		return
	}
	if slot < owned {
		p.fr.Add(w, slot)
	} else {
		p.copyChanged.TryMark(slot - owned)
	}
}

// flushBorder ships the distances of copies improved since the last
// flush, staged across kernel shards and merged in copy-slot order so
// the per-destination message order matches a sequential pass.
func (p *program) flushBorder(ctx *core.Context[float64]) {
	nOut := len(p.f.Out)
	if nOut == 0 {
		return
	}
	owned := int32(p.f.NumOwned())
	k := p.kernelShards(int64(nOut))
	if k <= 1 {
		for i, v := range p.f.Out {
			if p.copyChanged.Marked(int32(i)) {
				ctx.Send(v, math.Float64frombits(p.dist[owned+int32(i)].Load()))
			}
		}
	} else {
		stages := ctx.Stages(k)
		par.Do(k, func(w int) {
			st := stages[w]
			for i := w * nOut / k; i < (w+1)*nOut/k; i++ {
				if p.copyChanged.Marked(int32(i)) {
					st.Send(p.f.Out[i], math.Float64frombits(p.dist[owned+int32(i)].Load()))
				}
			}
		})
		ctx.MergeStages()
	}
	p.copyChanged.Reset()
}
