// Package sssp is the PIE program for single-source shortest paths
// (Section 5.1 of the paper): Dijkstra's algorithm as PEval and the
// Ramalingam-Reps style incremental shortest-path algorithm as IncEval,
// with min as the aggregate function over distance update parameters.
package sssp

import (
	"container/heap"
	"math"

	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// Inf is the distance of unreachable vertices.
var Inf = math.Inf(1)

// Job builds the SSSP PIE job for the given source (an external vertex
// id). Edge weights must be positive; unweighted edges count as 1.
func Job(source graph.VertexID) core.Job[float64] {
	return core.Job[float64]{
		Name: "sssp",
		New: func(f *partition.Fragment) core.Program[float64] {
			return newProgram(f, source)
		},
		Aggregate: math.Min,
		Bytes:     func(float64) int { return 8 },
		Default:   func(int32) float64 { return Inf },
	}
}

// program holds the per-fragment state: one distance per local slot
// (owned vertices then F.O copies) and a priority queue reused across
// rounds.
type program struct {
	f      *partition.Fragment
	g      *graph.Graph
	source graph.VertexID
	dist   []float64
	pq     distHeap
	// changedCopies records F.O copies improved in the current round, so
	// flushBorder ships only decreased values (the paper's "v.cid
	// decreased" message-segment analogue).
	changedCopies []int32
}

func newProgram(f *partition.Fragment, source graph.VertexID) *program {
	p := &program{f: f, g: f.Graph(), source: source}
	p.dist = make([]float64, f.Slots())
	for i := range p.dist {
		p.dist[i] = Inf
	}
	return p
}

// PEval runs Dijkstra from the source if it is owned; fragments not
// owning the source have nothing to do until messages arrive.
func (p *program) PEval(ctx *core.Context[float64]) {
	s, ok := p.g.IndexOf(p.source)
	if !ok || !p.f.Owns(s) {
		return
	}
	p.relax(s, 0)
	p.dijkstra(ctx)
	p.flushBorder(ctx, nil)
}

// IncEval resumes Dijkstra from the owned vertices whose distance the
// aggregated messages improved; the cost is bounded by the size of the
// affected area, the bounded-incremental property of [Ramalingam-Reps].
func (p *program) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	improved := make(map[int32]bool)
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		if m.Val < p.dist[slot] {
			p.dist[slot] = m.Val
			if p.f.Owns(m.V) {
				heap.Push(&p.pq, distItem{v: m.V, d: m.Val})
				improved[m.V] = true
			}
		}
	}
	p.dijkstra(ctx)
	p.flushBorder(ctx, nil)
}

// Get returns the current distance of owned vertex v.
func (p *program) Get(v int32) float64 { return p.dist[p.f.Slot(v)] }

// relax lowers the distance of a local vertex; returns true if improved.
func (p *program) relax(v int32, d float64) bool {
	slot := p.f.Slot(v)
	if slot < 0 || d >= p.dist[slot] {
		return false
	}
	p.dist[slot] = d
	if p.f.Owns(v) {
		heap.Push(&p.pq, distItem{v: v, d: d})
	} else {
		p.changedCopies = append(p.changedCopies, v)
	}
	return true
}

func (p *program) dijkstra(ctx *core.Context[float64]) {
	for p.pq.Len() > 0 {
		it := heap.Pop(&p.pq).(distItem)
		slot := p.f.Slot(it.v)
		if it.d > p.dist[slot] {
			continue
		}
		ws := p.g.OutWeights(it.v)
		out := p.g.Out(it.v)
		ctx.AddWork(len(out))
		for i, u := range out {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			p.relax(u, it.d+w)
		}
	}
}

// flushBorder sends improved copy distances to their owners.
func (p *program) flushBorder(ctx *core.Context[float64], _ []int32) {
	seen := make(map[int32]bool, len(p.changedCopies))
	for _, v := range p.changedCopies {
		if seen[v] {
			continue
		}
		seen[v] = true
		ctx.Send(v, p.dist[p.f.Slot(v)])
	}
	p.changedCopies = p.changedCopies[:0]
}

type distItem struct {
	v int32
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}
