// The delta-stepping SSSP kernel: the frontier-parallel sweep of
// sssp.go staged through the bucketed frontier (par.Buckets).
//
// Owned vertices enter distance-range buckets of width delta. Buckets
// drain lowest first; within a bucket, light edges (weight <= delta)
// relax repeatedly until the bucket settles — a light relaxation can
// only land in the current or the next bucket, so the inner loop is a
// local fixpoint — and only then do the settled vertices ship their
// heavy edges (weight > delta), each of which lands strictly beyond the
// current bucket. The effect is near-Dijkstra processing order at full
// shard parallelism: a vertex is expanded when its distance is already
// within delta of final, instead of every time it improves, which on
// long shortest-path trees (road networks) removes most re-relaxations
// the Bellman-Ford order pays for.
//
// Correctness does not depend on any of that ordering: distances relax
// through the same exact atomic min as the other kernels, every
// improvement re-stages its vertex, and the sweep only stops when all
// buckets are empty — so the kernel terminates at the same unique
// fixpoint bit for bit, as the differential tests pin across bucket
// widths and shard counts.

package sssp

import (
	"math"
	"sync/atomic"

	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// weightStats scans the fragment's owned out-edges and returns the mean
// edge weight and the coefficient of variation (the weight-dispersion
// signal of the kernel heuristic). Unweighted fragments report (1, 0).
func weightStats(f *partition.Fragment) (mean, disp float64) {
	g := f.Graph()
	if !g.Weighted() {
		return 1, 0
	}
	var sum, sumSq float64
	var n int64
	for v := f.Lo; v < f.Hi; v++ {
		for _, w := range g.OutWeights(v) {
			sum += w
			sumSq += w * w
			n++
		}
	}
	if n == 0 || !(sum > 0) {
		return 1, 0
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// deltaProgram is the per-fragment state of the bucketed kernel.
type deltaProgram struct {
	f      *partition.Fragment
	g      *graph.Graph
	source graph.VertexID
	shards int     // forced kernel shard count; 0 = auto per phase
	delta  float64 // bucket width

	dist        []atomic.Uint64 // float64 bits per local slot
	bk          *par.Buckets    // owned slots staged by distance range
	copyChanged *par.Marks      // F.O copies improved since last flush
	settledIn   *par.Marks      // dedups the per-bucket settled list

	settled []int32 // vertices settled in the current bucket (heavy-phase input)
	items   []int32 // TakeCur scratch
	seeds   []int32 // IncEval re-seed scratch
	bounds  []int   // reusable chunk-boundary scratch
	scanned []int64 // per-shard relaxation counts

	rounds  int   // parallel sweep phases executed
	buckets int   // nonempty buckets drained
	relaxed int64 // edge relaxations attempted
}

// newDeltaProgram builds the bucketed kernel for one fragment. A delta
// that is not a positive number (zero, negative, NaN) auto-tunes the
// bucket width to the fragment's mean edge weight — one bucket then
// spans roughly one expected hop, the classic delta-stepping starting
// point (unweighted fragments get delta 1, i.e. BFS levels).
func newDeltaProgram(f *partition.Fragment, source graph.VertexID, shards int, delta float64) *deltaProgram {
	if !(delta > 0) {
		delta, _ = weightStats(f)
	}
	p := &deltaProgram{f: f, g: f.Graph(), source: source, shards: shards, delta: delta}
	p.dist = make([]atomic.Uint64, f.Slots())
	inf := math.Float64bits(Inf)
	for i := range p.dist {
		p.dist[i].Store(inf)
	}
	p.bk = par.NewBuckets(f.NumOwned(), max(shards, 1), delta)
	p.copyChanged = par.NewMarks(len(f.Out))
	p.settledIn = par.NewMarks(f.NumOwned())
	return p
}

// Delta returns the resolved bucket width.
func (p *deltaProgram) Delta() float64 { return p.delta }

// KernelRounds reports the parallel sweep phases executed so far.
func (p *deltaProgram) KernelRounds() int { return p.rounds }

// BucketsDrained reports the nonempty buckets drained so far.
func (p *deltaProgram) BucketsDrained() int { return p.buckets }

// Relaxations reports the edge relaxations attempted so far.
func (p *deltaProgram) Relaxations() int64 { return p.relaxed }

// ScannedEdges reports the raw CSR edges the sweeps read
// (core.ScanCounter).
func (p *deltaProgram) ScannedEdges() int64 { return p.relaxed }

// PEval seeds the source if owned and sweeps to the local fixpoint.
func (p *deltaProgram) PEval(ctx *core.Context[float64]) {
	s, ok := p.g.IndexOf(p.source)
	if !ok || !p.f.Owns(s) {
		return
	}
	p.dist[s-p.f.Lo].Store(math.Float64bits(0))
	p.bk.Restart(0)
	p.bk.Add(0, s-p.f.Lo, 0)
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// IncEval lowers distances from the aggregated messages, re-aims the
// bucket window at the smallest improved distance, re-seeds the improved
// owned vertices, and resumes the sweep.
func (p *deltaProgram) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	p.seeds = p.seeds[:0]
	minPri := math.Inf(1)
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		if m.Val < math.Float64frombits(p.dist[slot].Load()) {
			p.dist[slot].Store(math.Float64bits(m.Val))
			if p.f.Owns(m.V) {
				p.seeds = append(p.seeds, slot)
				if m.Val < minPri {
					minPri = m.Val
				}
			}
		}
	}
	if len(p.seeds) > 0 {
		// The structure is empty between rounds (sweep drains it), so
		// the window may legally rewind below the previous base.
		p.bk.Restart(minPri)
		for _, s := range p.seeds {
			p.bk.Add(0, s, math.Float64frombits(p.dist[s].Load()))
		}
	}
	p.sweep(ctx)
	p.flushBorder(ctx)
}

// Get returns the current distance of owned vertex v.
func (p *deltaProgram) Get(v int32) float64 {
	return math.Float64frombits(p.dist[p.f.Slot(v)].Load())
}

// kernelShards resolves the shard count for `work` units this phase.
func (p *deltaProgram) kernelShards(work int64) int {
	if p.shards > 0 {
		return p.shards
	}
	return par.Kernel(work)
}

// sweep drains buckets to the local fixpoint. Per bucket: the light
// phase re-takes and relaxes light edges until no staging lands in the
// bucket anymore (settling it), then one heavy phase ships the settled
// vertices' heavy edges, which land strictly beyond the bucket.
func (p *deltaProgram) sweep(ctx *core.Context[float64]) {
	owned := int32(p.f.NumOwned())
	for {
		p.settled = p.settled[:0]
		p.settledIn.Reset()
		for {
			p.items = p.bk.TakeCur(p.items)
			if len(p.items) == 0 {
				break
			}
			for _, s := range p.items {
				if p.settledIn.TryMark(s) {
					p.settled = append(p.settled, s)
				}
			}
			p.relaxPhase(ctx, p.items, true, owned)
		}
		if len(p.settled) > 0 {
			p.buckets++
			p.relaxPhase(ctx, p.settled, false, owned)
		}
		if !p.bk.Advance() {
			return
		}
	}
}

// relaxPhase expands items' out-edges of one weight class — light
// (weight <= delta) or heavy — in parallel across kernel shards
// balanced by degree, relaxing with the exact atomic min.
func (p *deltaProgram) relaxPhase(ctx *core.Context[float64], items []int32, light bool, owned int32) {
	p.rounds++
	deg := func(s int32) int64 { return int64(p.g.OutDegree(p.f.Lo+s)) + 1 }
	var span int64
	for _, s := range items {
		span += deg(s)
	}
	k := p.kernelShards(span)
	p.bk.EnsureShards(k)
	p.bounds = par.ChunksByWork(items, k, p.bounds, deg)
	if cap(p.scanned) < k {
		p.scanned = make([]int64, k)
	}
	scanned := p.scanned[:k]
	par.Do(k, func(w int) {
		var n int64
		for _, s := range items[p.bounds[w]:p.bounds[w+1]] {
			v := p.f.Lo + s
			d := math.Float64frombits(p.dist[s].Load())
			wts := p.g.OutWeights(v)
			for i, u := range p.g.Out(v) {
				wt := 1.0
				if wts != nil {
					wt = wts[i]
				}
				if (wt <= p.delta) != light {
					continue
				}
				n++
				p.relax(u, d+wt, w, owned)
			}
		}
		scanned[w] = n
	})
	var total int64
	for _, n := range scanned {
		total += n
	}
	p.relaxed += total
	ctx.AddWork(int(total))
}

// relax lowers u's distance to nd if it improves, staging owned slots
// into the bucket of their new distance and marking improved copies for
// the flush. A racing further improvement can leave nd stale-high here;
// the loser's staging then fails the bucket CAS-min (or goes stale) and
// the winner's bucket is the one drained — the processing always reads
// the then-current distance.
func (p *deltaProgram) relax(u int32, nd float64, w int, owned int32) {
	slot := p.f.Slot(u)
	if slot < 0 {
		return
	}
	if !par.MinFloat64Bits(&p.dist[slot], nd) {
		return
	}
	if slot < owned {
		p.bk.Add(w, slot, nd)
	} else {
		p.copyChanged.TryMark(slot - owned)
	}
}

// flushBorder ships the distances of copies improved since the last
// flush.
func (p *deltaProgram) flushBorder(ctx *core.Context[float64]) {
	flushAtomicCopies(ctx, p.f, p.dist, p.copyChanged, p.kernelShards(int64(len(p.f.Out))))
}
