package sssp

// The retained sequential SSSP kernel: Dijkstra's algorithm as PEval and
// the Ramalingam-Reps style incremental relaxation as IncEval, exactly
// as shipped before the parallel compute plane. It is the pinned
// reference of the differential tests (the frontier-parallel kernel must
// match it bit for bit — shortest-path distances are the unique fixpoint
// of min over exact per-path sums, so relaxation order cannot change the
// result) and the work-optimal path the auto heuristic picks when a
// fragment is too small to shard.

import (
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// refProgram holds the per-fragment state: one distance per local slot
// (owned vertices then F.O copies), a priority queue reused across
// rounds, and a copy-slot bitmap that dedups border flushes without a
// per-round map.
type refProgram struct {
	f      *partition.Fragment
	g      *graph.Graph
	source graph.VertexID
	dist   []float64
	pq     distHeap
	// changedCopies records F.O copies improved in the current round, so
	// flushBorder ships only decreased values (the paper's "v.cid
	// decreased" message-segment analogue). copyChanged mirrors it as a
	// bitmap over copy slots so each copy is recorded at most once.
	changedCopies []int32
	copyChanged   []bool
	relaxed       int64 // edge relaxations attempted
}

// ScannedEdges reports the raw CSR edges read (core.ScanCounter).
func (p *refProgram) ScannedEdges() int64 { return p.relaxed }

// Relaxations reports the edge relaxations attempted so far, the work
// metric the kernel comparisons in aapbench -exp compute use.
func (p *refProgram) Relaxations() int64 { return p.relaxed }

func newRefProgram(f *partition.Fragment, source graph.VertexID) *refProgram {
	p := &refProgram{f: f, g: f.Graph(), source: source}
	p.dist = make([]float64, f.Slots())
	for i := range p.dist {
		p.dist[i] = Inf
	}
	p.copyChanged = make([]bool, len(f.Out))
	return p
}

// PEval runs Dijkstra from the source if it is owned; fragments not
// owning the source have nothing to do until messages arrive.
func (p *refProgram) PEval(ctx *core.Context[float64]) {
	s, ok := p.g.IndexOf(p.source)
	if !ok || !p.f.Owns(s) {
		return
	}
	p.relax(s, 0)
	p.dijkstra(ctx)
	p.flushBorder(ctx)
}

// IncEval resumes Dijkstra from the owned vertices whose distance the
// aggregated messages improved; the cost is bounded by the size of the
// affected area, the bounded-incremental property of [Ramalingam-Reps].
func (p *refProgram) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		slot := p.f.Slot(m.V)
		if slot < 0 {
			continue
		}
		if m.Val < p.dist[slot] {
			p.dist[slot] = m.Val
			if p.f.Owns(m.V) {
				p.pq.push(distItem{v: m.V, d: m.Val})
			}
		}
	}
	p.dijkstra(ctx)
	p.flushBorder(ctx)
}

// Get returns the current distance of owned vertex v.
func (p *refProgram) Get(v int32) float64 { return p.dist[p.f.Slot(v)] }

// relax lowers the distance of a local vertex; returns true if improved.
func (p *refProgram) relax(v int32, d float64) bool {
	slot := p.f.Slot(v)
	if slot < 0 || d >= p.dist[slot] {
		return false
	}
	p.dist[slot] = d
	owned := int32(p.f.NumOwned())
	if slot < owned {
		p.pq.push(distItem{v: v, d: d})
	} else if cs := slot - owned; !p.copyChanged[cs] {
		p.copyChanged[cs] = true
		p.changedCopies = append(p.changedCopies, v)
	}
	return true
}

func (p *refProgram) dijkstra(ctx *core.Context[float64]) {
	for p.pq.len() > 0 {
		it := p.pq.pop()
		slot := p.f.Slot(it.v)
		if it.d > p.dist[slot] {
			continue
		}
		ws := p.g.OutWeights(it.v)
		out := p.g.Out(it.v)
		ctx.AddWork(len(out))
		p.relaxed += int64(len(out))
		for i, u := range out {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			p.relax(u, it.d+w)
		}
	}
}

// flushBorder sends improved copy distances to their owners. The bitmap
// already dedups entries at relax time, so the flush is a single pass.
func (p *refProgram) flushBorder(ctx *core.Context[float64]) {
	owned := int32(p.f.NumOwned())
	for _, v := range p.changedCopies {
		slot := p.f.Slot(v)
		p.copyChanged[slot-owned] = false
		ctx.Send(v, p.dist[slot])
	}
	p.changedCopies = p.changedCopies[:0]
}

type distItem struct {
	v int32
	d float64
}

// distHeap is a monomorphic binary min-heap on distance. Unlike
// container/heap it never boxes items through interface{}, so pushes on
// the relaxation hot path do not allocate.
type distHeap struct{ items []distItem }

func (h *distHeap) len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < last && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
