// Package ref holds single-threaded reference implementations of the
// paper's four graph computations. They are the correctness oracles for
// the parallel engines and the "single machine" baseline row of Exp-1.
package ref

import (
	"container/heap"
	"math"

	"aap/internal/graph"
)

// Inf is the distance of unreachable vertices.
var Inf = math.Inf(1)

// SSSP computes single-source shortest path distances from the vertex
// with external id source using Dijkstra's algorithm with a binary heap.
// Unreachable vertices get +Inf. Edge weights must be positive.
func SSSP(g *graph.Graph, source graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	s, ok := g.IndexOf(source)
	if !ok {
		return dist
	}
	dist[s] = 0
	pq := &distHeap{items: []distItem{{v: s, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.OutWeights(it.v)
		for i, u := range g.Out(it.v) {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := it.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int32
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}

// CC computes connected components of the underlying undirected graph;
// the result assigns every vertex the minimum external id in its
// component, the cid convention of the paper's Example 2.
func CC(g *graph.Graph) []int64 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Out(v) {
			union(v, u)
		}
		for _, u := range g.In(v) {
			union(v, u)
		}
	}
	cid := make([]int64, n)
	minID := make(map[int32]int64)
	for v := int32(0); v < int32(n); v++ {
		r := find(v)
		id := int64(g.IDOf(v))
		if cur, ok := minID[r]; !ok || id < cur {
			minID[r] = id
		}
	}
	for v := int32(0); v < int32(n); v++ {
		cid[v] = minID[find(v)]
	}
	return cid
}

// PageRank runs synchronous power iteration with damping factor d using
// the paper's formulation P_v = d * Σ P_u/N_u + (1-d) (no dangling-mass
// redistribution), until the L1 change drops below eps or maxIter rounds.
func PageRank(g *graph.Graph, d, eps float64, maxIter int) []float64 {
	n := g.NumVertices()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 - d
	}
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 1 - d
		}
		for v := int32(0); v < int32(n); v++ {
			deg := g.OutDegree(v)
			if deg == 0 {
				continue
			}
			share := d * cur[v] / float64(deg)
			for _, u := range g.Out(v) {
				next[u] += share
			}
		}
		var delta float64
		for i := range cur {
			delta += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if delta < eps {
			break
		}
	}
	return cur
}

// SGDConfig parameterizes the reference matrix-factorization trainer.
type SGDConfig struct {
	Rank      int
	LearnRate float64
	Lambda    float64
	Epochs    int
	Seed      int64
}

// CF trains latent factors on the training edges of a bipartite rating
// graph with plain (single-threaded) stochastic gradient descent and
// returns user and product factors plus the final training RMSE.
func CF(users, products int, train []graph.Edge, cfg SGDConfig) (uf, pf [][]float64, rmse float64) {
	uf = DeterministicFactors(users, cfg.Rank, cfg.Seed)
	pf = DeterministicFactors(products, cfg.Rank, cfg.Seed+1)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var se float64
		for _, e := range train {
			u := int(e.Src)
			p := int(e.Dst) - users
			pred := Dot(uf[u], pf[p])
			err := e.Weight - pred
			se += err * err
			for k := 0; k < cfg.Rank; k++ {
				du := cfg.LearnRate * (err*pf[p][k] - cfg.Lambda*uf[u][k])
				dp := cfg.LearnRate * (err*uf[u][k] - cfg.Lambda*pf[p][k])
				uf[u][k] += du
				pf[p][k] += dp
			}
		}
		rmse = math.Sqrt(se / float64(len(train)))
	}
	return uf, pf, rmse
}

// RMSE evaluates factor matrices on a set of rating edges.
func RMSE(users int, uf, pf [][]float64, edges []graph.Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	var se float64
	for _, e := range edges {
		u := int(e.Src)
		p := int(e.Dst) - users
		err := e.Weight - Dot(uf[u], pf[p])
		se += err * err
	}
	return math.Sqrt(se / float64(len(edges)))
}

// DeterministicFactors produces a reproducible pseudo-random factor
// matrix: entry (i, k) depends only on (i, k, seed). Both the reference
// and the distributed CF initialize from it, so their starting points
// coincide regardless of partitioning.
func DeterministicFactors(n, rank int, seed int64) [][]float64 {
	f := make([][]float64, n)
	scale := 1 / math.Sqrt(float64(rank))
	for i := range f {
		row := make([]float64, rank)
		for k := range row {
			row[k] = hashUnit(int64(i), int64(k), seed) * scale
		}
		f[i] = row
	}
	return f
}

// hashUnit maps (i, k, seed) to a deterministic value in [-0.5, 0.5).
func hashUnit(i, k, seed int64) float64 {
	x := uint64(i*1_000_003 + k*7919 + seed*104_729 + 0x9E3779B9)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return float64(x%1_000_000)/1_000_000 - 0.5
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
