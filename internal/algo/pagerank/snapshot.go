package pagerank

// Checkpoint support (core.Snapshotter): at round boundaries the
// frontier is drained and the staged buckets are empty (sweep/apply
// consume them within each round), so the durable state is the score
// and pending-delta arrays plus the round counter. Scores and deltas
// are serialized as float64s; the codec round trip is bit-exact, which
// the differential recovery tests rely on.

import (
	"fmt"

	"aap/internal/codec"
	"aap/internal/par"
)

// SnapshotState serializes the parallel kernel's durable state.
func (p *program) SnapshotState() []byte {
	buf := make([]byte, 0, 16*len(p.score)+16)
	buf = codec.AppendFloat64s(buf, p.score)
	buf = codec.AppendFloat64s(buf, p.delta)
	buf = codec.AppendInt64(buf, int64(p.rounds))
	return buf
}

// RestoreState rewinds the parallel kernel to a snapshot.
func (p *program) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	score := r.Float64s()
	delta := r.Float64s()
	rounds := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(score) != len(p.score) || len(delta) != len(p.delta) {
		return fmt.Errorf("pagerank: snapshot has %d/%d slots, fragment has %d", len(score), len(delta), len(p.score))
	}
	copy(p.score, score)
	copy(p.delta, delta)
	p.rounds = int(rounds)
	p.fr = par.NewFrontier(p.f.NumOwned(), 1)
	for i := range p.buckets {
		p.buckets[i] = p.buckets[i][:0]
	}
	return nil
}

// SnapshotState serializes the sequential reference kernel's durable
// state.
func (p *refProgram) SnapshotState() []byte {
	buf := make([]byte, 0, 16*len(p.score)+16)
	buf = codec.AppendFloat64s(buf, p.score)
	buf = codec.AppendFloat64s(buf, p.delta)
	buf = codec.AppendInt64(buf, int64(p.rounds))
	return buf
}

// RestoreState rewinds the sequential reference kernel to a snapshot.
func (p *refProgram) RestoreState(data []byte) error {
	r := codec.NewReader(data)
	score := r.Float64s()
	delta := r.Float64s()
	rounds := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(score) != len(p.score) || len(delta) != len(p.delta) {
		return fmt.Errorf("pagerank: snapshot has %d/%d slots, fragment has %d", len(score), len(delta), len(p.score))
	}
	copy(p.score, score)
	copy(p.delta, delta)
	p.rounds = int(rounds)
	clear(p.inQ)
	p.frontier = p.frontier[:0]
	p.next = p.next[:0]
	return nil
}
