// Package pagerank is the PIE program for PageRank under AAP (Section 5.3
// of the paper): the delta-accumulative formulation where every vertex
// keeps a score P_v and a pending update x_v, PEval seeds x_v = 1-d,
// local evaluation pushes d*x_v/N_v along out-edges, and sum is the
// aggregate function over the deltas shipped to border vertices. The
// fixpoint P_v = Σ_paths p(v) + (1-d) is order-independent, so PageRank
// needs no bounded staleness (Church-Rosser holds under T1-T3).
package pagerank

import (
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// Config parameterizes the PageRank job.
type Config struct {
	// Damping is the damping factor d; 0.85 when zero.
	Damping float64
	// Tol is the residual threshold below which a pending delta is
	// parked instead of propagated; 1e-6 when zero. The total parked
	// residual bounds the L1 error of the fixpoint.
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	return c
}

// Job builds the PageRank PIE job.
func Job(cfg Config) core.Job[float64] {
	cfg = cfg.withDefaults()
	return core.Job[float64]{
		Name:      "pagerank",
		New:       func(f *partition.Fragment) core.Program[float64] { return newProgram(f, cfg) },
		Aggregate: func(a, b float64) float64 { return a + b },
		Bytes:     func(float64) int { return 8 },
	}
}

// program holds per-slot scores and pending deltas. Copies (F.O slots)
// only accumulate deltas destined for other fragments.
type program struct {
	f   *partition.Fragment
	g   *graph.Graph
	cfg Config

	score []float64
	delta []float64
	queue []int32 // slots of owned vertices with pending delta above Tol
	inQ   []bool
}

func newProgram(f *partition.Fragment, cfg Config) *program {
	n := f.Slots()
	return &program{
		f: f, g: f.Graph(), cfg: cfg,
		score: make([]float64, n),
		delta: make([]float64, n),
		inQ:   make([]bool, n),
	}
}

// PEval seeds every owned vertex with the teleport mass 1-d and runs the
// local push loop; accumulated copy deltas are shipped to their owners.
func (p *program) PEval(ctx *core.Context[float64]) {
	seed := 1 - p.cfg.Damping
	for v := p.f.Lo; v < p.f.Hi; v++ {
		p.add(v, seed)
	}
	p.push(ctx)
	p.flush(ctx)
}

// IncEval folds incoming delta sums into owned vertices and resumes the
// push loop.
func (p *program) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		p.add(m.V, m.Val)
	}
	p.push(ctx)
	p.flush(ctx)
}

// Get returns the score of owned vertex v including its parked residual,
// which tightens the result by the sub-threshold mass.
func (p *program) Get(v int32) float64 {
	s := p.f.Slot(v)
	return p.score[s] + p.delta[s]
}

// add accumulates a delta on a local vertex and enqueues owned vertices
// whose pending mass crosses the propagation threshold. Owned vertices
// occupy slots [0, NumOwned), so the queue stores slots and push maps
// them back to v = Lo + slot without another lookup.
func (p *program) add(v int32, d float64) {
	s := p.f.Slot(v)
	if s < 0 {
		return
	}
	p.delta[s] += d
	if s < int32(p.f.NumOwned()) && !p.inQ[s] && p.delta[s] > p.cfg.Tol {
		p.inQ[s] = true
		p.queue = append(p.queue, s)
	}
}

// push drains the local queue: each pending delta is folded into the
// score and d*x/N is pushed along out-edges; pushes to copies accumulate
// for the next flush. The queue is FIFO so that deltas coalesce on a
// vertex while it waits, keeping the number of pushes near-linear even at
// tight tolerances.
func (p *program) push(ctx *core.Context[float64]) {
	for head := 0; head < len(p.queue); head++ {
		s := p.queue[head]
		v := p.f.Lo + s
		p.inQ[s] = false
		x := p.delta[s]
		if x <= p.cfg.Tol {
			continue
		}
		p.delta[s] = 0
		p.score[s] += x
		out := p.g.Out(v)
		ctx.AddWork(len(out) + 1)
		if len(out) == 0 {
			continue
		}
		share := p.cfg.Damping * x / float64(len(out))
		for _, u := range out {
			p.add(u, share)
		}
	}
	p.queue = p.queue[:0]
}

// flush ships the accumulated copy deltas to their owners and resets
// them.
func (p *program) flush(ctx *core.Context[float64]) {
	base := int32(p.f.NumOwned())
	for i, v := range p.f.Out {
		s := base + int32(i)
		if p.delta[s] > 0 {
			ctx.Send(v, p.delta[s])
			p.delta[s] = 0
		}
	}
}
