// Package pagerank is the PIE program for PageRank under AAP (Section 5.3
// of the paper): the delta-accumulative formulation where every vertex
// keeps a score P_v and a pending update x_v, PEval seeds x_v = 1-d,
// local evaluation pushes d*x_v/N_v along out-edges, and sum is the
// aggregate function over the deltas shipped to border vertices. The
// fixpoint P_v = Σ_paths p(v) + (1-d) is order-independent, so PageRank
// needs no bounded staleness (Church-Rosser holds under T1-T3).
//
// The kernel is round-based and deterministic by construction, because
// floating-point sums remember their addition order: each round consumes
// the frontier (owned slots whose pending delta crossed Tol) in sorted
// slot order and applies the pushed shares in that same canonical order.
// The parallel kernel shards the sweep into contiguous frontier chunks
// and stages each chunk's shares into per-(source-shard, dest-shard)
// buckets; the apply phase walks every destination shard's buckets in
// source-shard order, which replays the exact per-slot addition sequence
// of the sequential reference — bit-identical results at any shard
// count.
package pagerank

import (
	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// Config parameterizes the PageRank job.
type Config struct {
	// Damping is the damping factor d; 0.85 when zero.
	Damping float64
	// Tol is the residual threshold below which a pending delta is
	// parked instead of propagated; 1e-6 when zero. The total parked
	// residual bounds the L1 error of the fixpoint.
	Tol float64
	// Shards forces the kernel shard count: >= 1 runs the parallel
	// kernel with exactly that many shards (1 exercises it
	// single-threaded), 0 picks automatically — parallel when the
	// fragment has enough edges, the sequential reference otherwise.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	return c
}

// Job builds the PageRank PIE job.
func Job(cfg Config) core.Job[float64] {
	cfg = cfg.withDefaults()
	return core.Job[float64]{
		Name: "pagerank",
		New: func(f *partition.Fragment) core.Program[float64] {
			if cfg.Shards == 0 && par.Kernel(f.Graph().OutSpan(f.Lo, f.Hi)) <= 1 {
				return newRefProgram(f, cfg)
			}
			return newProgram(f, cfg)
		},
		Aggregate: func(a, b float64) float64 { return a + b },
		Bytes:     func(float64) int { return 8 },
		EncodeVal: codec.AppendFloat64,
		DecodeVal: (*codec.Reader).Float64,
	}
}

// RefJob builds the job over the sequential reference kernel only — the
// pinned oracle of the differential tests.
func RefJob(cfg Config) core.Job[float64] {
	cfg = cfg.withDefaults()
	return core.Job[float64]{
		Name:      "pagerank",
		New:       func(f *partition.Fragment) core.Program[float64] { return newRefProgram(f, cfg) },
		Aggregate: func(a, b float64) float64 { return a + b },
		Bytes:     func(float64) int { return 8 },
		EncodeVal: codec.AppendFloat64,
		DecodeVal: (*codec.Reader).Float64,
	}
}

// program is the parallel kernel. score and delta are plain slices:
// every phase partitions its writes (frontier chunks own their consumed
// slots, destination shards own their slot ranges) and par.Do's barrier
// orders the phases, so no atomics are needed on the accumulators.
type program struct {
	f   *partition.Fragment
	g   *graph.Graph
	cfg Config

	score []float64
	delta []float64

	// fr is the worklist of owned slots admitted above Tol: admissions
	// stage per shard, and the sorted Advance at each round start makes
	// the consume order canonical for any shard count.
	fr      *par.Frontier
	buckets [][]contrib // (source shard × dest shard) share staging
	xs      []float64   // consumed pending mass for the 1-shard path
	bounds  []int
	work    []int64
	rounds  int
}

func newProgram(f *partition.Fragment, cfg Config) *program {
	n := f.Slots()
	return &program{
		f: f, g: f.Graph(), cfg: cfg,
		score: make([]float64, n),
		delta: make([]float64, n),
		fr:    par.NewFrontier(f.NumOwned(), 1),
	}
}

// KernelRounds reports frontier rounds executed so far.
func (p *program) KernelRounds() int { return p.rounds }

// PEval seeds every owned vertex with the teleport mass 1-d, runs rounds
// to the local fixpoint, and ships accumulated copy deltas.
func (p *program) PEval(ctx *core.Context[float64]) {
	seed := 1 - p.cfg.Damping
	for s := int32(0); s < int32(p.f.NumOwned()); s++ {
		p.add(s, seed)
	}
	p.run(ctx)
	p.flush(ctx)
}

// IncEval folds incoming delta sums into owned vertices (sequentially —
// the folded message list is small and already in canonical vertex
// order) and resumes the rounds.
func (p *program) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		if s := p.f.Slot(m.V); s >= 0 {
			p.add(s, m.Val)
		}
	}
	p.run(ctx)
	p.flush(ctx)
}

// Get returns the score of owned vertex v including its parked residual.
func (p *program) Get(v int32) float64 {
	s := p.f.Slot(v)
	return p.score[s] + p.delta[s]
}

// add accumulates a delta on local slot s from the owning goroutine and
// admits owned slots crossing Tol to the frontier's shard-0 staging
// list (sequential callers only).
func (p *program) add(s int32, d float64) {
	p.delta[s] += d
	if s < int32(p.f.NumOwned()) && p.delta[s] > p.cfg.Tol {
		p.fr.Add(0, s)
	}
}

// kernelShards resolves the shard count for `work` units this round.
func (p *program) kernelShards(work int64) int {
	if p.cfg.Shards > 0 {
		return p.cfg.Shards
	}
	return par.Kernel(work)
}

// run executes rounds until the frontier drains. Each round has two
// barrier-separated parallel phases:
//
//	sweep  — frontier chunk w consumes its slots in order (score += x,
//	         delta = 0) and stages each pushed share into bucket (w, d)
//	         where d = ⌊slot·k/n⌋ keys the destination shard;
//	apply  — destination shard d applies buckets (0,d), (1,d), …, (k-1,d)
//	         sequentially, so the additions landing on any slot replay
//	         the frontier-order sequence of the sequential reference.
//
// Advancing the frontier resets its dedup set before any slot is
// consumed, which is equivalent to the reference's unmark-at-consume:
// admissions only ever happen in the apply half, after every
// current-frontier slot has been consumed.
func (p *program) run(ctx *core.Context[float64]) {
	n := len(p.delta)
	owned := int32(p.f.NumOwned())
	for {
		frontier := p.fr.Advance(true) // sorted: canonical for any shard count
		if len(frontier) == 0 {
			return
		}
		p.rounds++

		deg := func(s int32) int64 { return int64(p.g.OutDegree(p.f.Lo+s)) + 1 }
		var span int64
		for _, s := range frontier {
			span += deg(s)
		}
		k := p.kernelShards(span)
		if k <= 1 {
			// Single-shard rounds push directly, two passes in frontier
			// order — the reference discipline, no bucket staging.
			p.runSeqRound(frontier, ctx)
			continue
		}
		p.fr.EnsureShards(k)
		p.bounds = par.ChunksByWork(frontier, k, p.bounds, deg)
		for len(p.buckets) < k*k {
			p.buckets = append(p.buckets, nil)
		}
		if cap(p.work) < k {
			p.work = make([]int64, k)
		}
		work := p.work[:k]

		// Sweep phase: chunk w writes only its consumed slots and its
		// own bucket row.
		par.Do(k, func(w int) {
			var units int64
			row := p.buckets[w*k : w*k+k]
			for d := range row {
				row[d] = row[d][:0]
			}
			for _, s := range frontier[p.bounds[w]:p.bounds[w+1]] {
				x := p.delta[s]
				p.delta[s] = 0
				p.score[s] += x
				v := p.f.Lo + s
				out := p.g.Out(v)
				units += int64(len(out)) + 1
				if len(out) == 0 {
					continue
				}
				share := p.cfg.Damping * x / float64(len(out))
				for _, u := range out {
					if us := p.f.Slot(u); us >= 0 {
						d := int(us) * k / n
						row[d] = append(row[d], contrib{slot: us, val: share})
					}
				}
			}
			work[w] = units
		})
		var units int64
		for _, u := range work {
			units += u
		}
		ctx.AddWork(int(units))

		// Apply phase: all contributions for a slot land in the single
		// bucket column d = ⌊slot·k/n⌋, so shard d is the only writer of
		// that slot — that keying, not a contiguous range split, is the
		// write-disjointness invariant. Walking the column in source
		// order replays the sequential addition sequence.
		par.Do(k, func(d int) {
			for w := 0; w < k; w++ {
				for _, c := range p.buckets[w*k+d] {
					p.delta[c.slot] += c.val
					if c.slot < owned && p.delta[c.slot] > p.cfg.Tol {
						p.fr.Add(d, c.slot)
					}
				}
			}
		})
	}
}

// runSeqRound consumes the sorted frontier and pushes its shares
// directly in frontier order — bit-identical to the staged two-phase
// round at any shard count, without the bucket traffic.
func (p *program) runSeqRound(frontier []int32, ctx *core.Context[float64]) {
	owned := int32(p.f.NumOwned())
	xs := p.xs[:0]
	for _, s := range frontier {
		x := p.delta[s]
		p.delta[s] = 0
		p.score[s] += x
		xs = append(xs, x)
	}
	p.xs = xs
	var work int64
	for i, s := range frontier {
		v := p.f.Lo + s
		out := p.g.Out(v)
		work += int64(len(out)) + 1
		if len(out) == 0 {
			continue
		}
		share := p.cfg.Damping * xs[i] / float64(len(out))
		for _, u := range out {
			us := p.f.Slot(u)
			if us < 0 {
				continue
			}
			p.delta[us] += share
			if us < owned && p.delta[us] > p.cfg.Tol {
				p.fr.Add(0, us)
			}
		}
	}
	ctx.AddWork(int(work))
}

// flush ships the accumulated copy deltas to their owners and resets
// them.
func (p *program) flush(ctx *core.Context[float64]) {
	base := int32(p.f.NumOwned())
	for i, v := range p.f.Out {
		s := base + int32(i)
		if p.delta[s] > 0 {
			ctx.Send(v, p.delta[s])
			p.delta[s] = 0
		}
	}
}
