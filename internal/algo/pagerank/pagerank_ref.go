package pagerank

// The retained sequential PageRank kernel: the pinned reference of the
// differential tests. It implements the round-based semantics of the
// compute plane with plain loops — first consume the sorted frontier in
// slot order (fold pending deltas into scores), then walk it again in
// the same order pushing each share directly — so it is the "one-shard
// execution" the parallel kernel must reproduce bit for bit. The two
// passes matter: consuming everything before pushing anything means a
// frontier member's x never includes same-round contributions, which is
// the property that lets the parallel kernel apply its staged buckets
// after a barrier and land on identical bits.
//
// Note on lineage: before the parallel compute plane this package used a
// coalescing FIFO push queue. Floating-point sums depend on addition
// order, so a FIFO-order kernel cannot be reproduced by any parallel
// schedule; the round-based formulation was adopted for both kernels
// precisely because its contribution order (frontier slot order × edge
// order) is canonical. Both formulations park the same sub-Tol residual
// mass, so accuracy bounds are unchanged.

import (
	"slices"

	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// contrib is one pushed share staged between the parallel kernel's
// sweep and apply phases (pagerank.go); the sequential reference pushes
// directly and never materializes it.
type contrib struct {
	slot int32
	val  float64
}

// refProgram holds per-slot scores and pending deltas. Copies (F.O
// slots) only accumulate deltas destined for other fragments.
type refProgram struct {
	f   *partition.Fragment
	g   *graph.Graph
	cfg Config

	score    []float64
	delta    []float64
	inQ      []bool
	frontier []int32 // owned slots above Tol, sorted, consumed per round
	next     []int32
	xs       []float64 // consumed pending mass, parallel to frontier
	rounds   int
}

func newRefProgram(f *partition.Fragment, cfg Config) *refProgram {
	n := f.Slots()
	return &refProgram{
		f: f, g: f.Graph(), cfg: cfg,
		score: make([]float64, n),
		delta: make([]float64, n),
		inQ:   make([]bool, n),
	}
}

// KernelRounds reports frontier rounds executed so far.
func (p *refProgram) KernelRounds() int { return p.rounds }

// PEval seeds every owned vertex with the teleport mass 1-d and runs
// rounds to the local fixpoint; accumulated copy deltas are shipped to
// their owners.
func (p *refProgram) PEval(ctx *core.Context[float64]) {
	seed := 1 - p.cfg.Damping
	for s := int32(0); s < int32(p.f.NumOwned()); s++ {
		p.add(s, seed)
	}
	p.run(ctx)
	p.flush(ctx)
}

// IncEval folds incoming delta sums into owned vertices and resumes the
// rounds.
func (p *refProgram) IncEval(msgs []core.VMsg[float64], ctx *core.Context[float64]) {
	for _, m := range msgs {
		if s := p.f.Slot(m.V); s >= 0 {
			p.add(s, m.Val)
		}
	}
	p.run(ctx)
	p.flush(ctx)
}

// Get returns the score of owned vertex v including its parked residual,
// which tightens the result by the sub-threshold mass.
func (p *refProgram) Get(v int32) float64 {
	s := p.f.Slot(v)
	return p.score[s] + p.delta[s]
}

// add accumulates a delta on local slot s and admits owned slots to the
// next frontier when their pending mass crosses the propagation
// threshold.
func (p *refProgram) add(s int32, d float64) {
	p.delta[s] += d
	if s < int32(p.f.NumOwned()) && !p.inQ[s] && p.delta[s] > p.cfg.Tol {
		p.inQ[s] = true
		p.next = append(p.next, s)
	}
}

// run executes rounds until the frontier drains: consume the sorted
// frontier in slot order, then push each share directly in that same
// order.
func (p *refProgram) run(ctx *core.Context[float64]) {
	for len(p.next) > 0 {
		p.rounds++
		p.frontier = append(p.frontier[:0], p.next...)
		p.next = p.next[:0]
		slices.Sort(p.frontier)
		xs := p.xs[:0]
		for _, s := range p.frontier {
			p.inQ[s] = false
			x := p.delta[s]
			p.delta[s] = 0
			p.score[s] += x
			xs = append(xs, x)
		}
		p.xs = xs
		var work int
		for i, s := range p.frontier {
			v := p.f.Lo + s
			out := p.g.Out(v)
			work += len(out) + 1
			if len(out) == 0 {
				continue
			}
			share := p.cfg.Damping * xs[i] / float64(len(out))
			for _, u := range out {
				if us := p.f.Slot(u); us >= 0 {
					p.add(us, share)
				}
			}
		}
		ctx.AddWork(work)
	}
}

// flush ships the accumulated copy deltas to their owners and resets
// them.
func (p *refProgram) flush(ctx *core.Context[float64]) {
	base := int32(p.f.NumOwned())
	for i, v := range p.f.Out {
		s := base + int32(i)
		if p.delta[s] > 0 {
			ctx.Send(v, p.delta[s])
			p.delta[s] = 0
		}
	}
}
