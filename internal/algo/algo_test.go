// Package algo_test holds cross-algorithm integration tests: each PIE
// program against its sequential oracle on varied graphs, partitions and
// modes, plus edge cases the per-engine tests do not cover.
package algo_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aap/internal/algo/cc"
	"aap/internal/algo/cf"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/ref"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/sim"
)

// TestSSSPRandomGraphsProperty: for random weighted graphs, partitions
// and sources, the PIE program matches Dijkstra.
func TestSSSPRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		g := gen.Random(n, n*4, true, seed)
		src := graph.VertexID(rng.Intn(n))
		m := 1 + rng.Intn(8)
		p, err := partition.Build(g, m, partition.Hash{})
		if err != nil {
			return false
		}
		res, err := core.Run(p, sssp.Job(src), core.Options{Mode: core.Mode(rng.Intn(3))})
		if err != nil {
			return false
		}
		want := ref.SSSP(g, src)
		for v := 0; v < n; v++ {
			id := p.G.IDOf(int32(v))
			orig, _ := g.IndexOf(id)
			got, w := res.Values[v], want[orig]
			if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCCRandomGraphsProperty: CC matches union-find for random undirected
// graphs under random partitions.
func TestCCRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		// Sparse graphs leave several components.
		g := graph.AsUndirected(gen.Random(n, n, false, seed))
		m := 1 + rng.Intn(6)
		p, err := partition.Build(g, m, partition.BFSLocality{Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(p, cc.Job(), core.Options{Mode: core.Mode(rng.Intn(3))})
		if err != nil {
			return false
		}
		want := ref.CC(g)
		for v := 0; v < n; v++ {
			id := p.G.IDOf(int32(v))
			orig, _ := g.IndexOf(id)
			if res.Values[v] != want[orig] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCCManyComponents: a forest of disjoint paths keeps distinct cids.
func TestCCManyComponents(t *testing.T) {
	b := graph.NewBuilder(false)
	for c := 0; c < 10; c++ {
		base := graph.VertexID(c * 100)
		for i := 0; i < 5; i++ {
			b.AddEdge(base+graph.VertexID(i), base+graph.VertexID(i+1))
		}
	}
	g := b.Build()
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, cc.Job(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := map[int64]int{}
	for v := 0; v < g.NumVertices(); v++ {
		comps[res.Values[v]]++
	}
	if len(comps) != 10 {
		t.Fatalf("components = %d, want 10", len(comps))
	}
	for cid, size := range comps {
		if size != 6 {
			t.Errorf("component %d size %d, want 6", cid, size)
		}
		if cid%100 != 0 {
			t.Errorf("component id %d is not the minimum member", cid)
		}
	}
}

// TestPageRankMassConservation: with no dangling vertices, total rank
// mass converges to n (each vertex's fixpoint sums the teleport mass it
// absorbs); the L1 distance to power iteration stays within tolerance.
func TestPageRankMassConservation(t *testing.T) {
	g := gen.SmallWorld(400, 3, 0.1, false, 51)
	p, err := partition.Build(g, 5, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-9}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Values {
		sum += s
	}
	if math.Abs(sum-400) > 0.5 {
		t.Errorf("total mass %v, want ~400", sum)
	}
}

// TestPageRankDanglingVertices: vertices without out-edges park their
// mass, matching the reference formulation.
func TestPageRankDanglingVertices(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // 2 is dangling
	b.AddEdge(0, 2)
	g := b.Build()
	want := ref.PageRank(g, 0.85, 1e-12, 1000)
	p, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-12}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		id := p.G.IDOf(int32(v))
		orig, _ := g.IndexOf(id)
		if d := math.Abs(res.Values[v] - want[orig]); d > 1e-6 {
			t.Errorf("vertex %d: got %v want %v", id, res.Values[v], want[orig])
		}
	}
}

// TestCFRecoversPlantedFactors: distributed SGD on a planted low-rank
// rating matrix must reach a holdout RMSE close to the noise floor and
// comparable to single-threaded SGD.
func TestCFRecoversPlantedFactors(t *testing.T) {
	r := gen.Bipartite(300, 60, 12, 4, 0.9, 61)
	cfg := cf.Config{Users: 300, Products: 60, Rank: 4, Epochs: 40, Seed: 1}

	// Reference single-thread SGD.
	_, _, trainRMSE := ref.CF(300, 60, r.TrainEdges, ref.SGDConfig{Rank: 4, LearnRate: 0.05, Lambda: 0.01, Epochs: 40, Seed: 1})

	p, err := partition.Build(r.G, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, cf.Job(cfg), core.Options{Mode: core.AAP, Staleness: 4})
	if err != nil {
		t.Fatal(err)
	}
	uf, pf := cf.Factors(p, res.Values, cfg)
	hold := ref.RMSE(300, uf, pf, r.HoldoutEdges)
	if hold > 0.5 {
		t.Errorf("holdout RMSE %.3f too high (noise floor ~0.1)", hold)
	}
	train := ref.RMSE(300, uf, pf, r.TrainEdges)
	if train > trainRMSE*3+0.2 {
		t.Errorf("distributed train RMSE %.3f far above single-thread %.3f", train, trainRMSE)
	}
}

// TestCFModesAllConverge: every mode trains to a usable model; SSP and
// AAP honor the staleness bound without diverging.
func TestCFModesAllConverge(t *testing.T) {
	r := gen.Bipartite(200, 40, 10, 4, 0.9, 67)
	cfg := cf.Config{Users: 200, Products: 40, Rank: 4, Epochs: 25, Seed: 2}
	p, err := partition.Build(r.G, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []core.Options{
		{Mode: core.BSP},
		{Mode: core.AP},
		{Mode: core.SSP, Staleness: 3},
		{Mode: core.AAP, Staleness: 3},
	} {
		res, err := core.Run(p, cf.Job(cfg), opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Mode, err)
		}
		uf, pf := cf.Factors(p, res.Values, cfg)
		if rmse := ref.RMSE(200, uf, pf, r.HoldoutEdges); rmse > 0.6 {
			t.Errorf("%s: holdout RMSE %.3f", opts.Mode, rmse)
		}
	}
}

// TestCFSingleFragmentMatchesLocalSGD: with one fragment there is no
// communication, so the distributed trainer is plain SGD over all edges.
func TestCFSingleFragmentMatchesLocalSGD(t *testing.T) {
	r := gen.Bipartite(100, 20, 8, 3, 1.0, 71)
	cfg := cf.Config{Users: 100, Products: 20, Rank: 3, Epochs: 15, Seed: 3}
	p, err := partition.Build(r.G, 1, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, cf.Job(cfg), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMsgs != 0 {
		t.Errorf("single fragment shipped %d messages", res.Stats.TotalMsgs)
	}
	uf, pf := cf.Factors(p, res.Values, cfg)
	if rmse := ref.RMSE(100, uf, pf, r.TrainEdges); rmse > 0.4 {
		t.Errorf("train RMSE %.3f", rmse)
	}
}

// TestSSSPOnSimulatorMatchesEngine: the two engines compute identical
// fixpoints for the same job and partition.
func TestSSSPOnSimulatorMatchesEngine(t *testing.T) {
	g := gen.Grid(30, 30, 73)
	p, err := partition.Build(g, 6, partition.Range{})
	if err != nil {
		t.Fatal(err)
	}
	real, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	simres, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for v := range real.Values {
		if real.Values[v] != simres.Values[v] {
			t.Fatalf("vertex %d: engine %v sim %v", v, real.Values[v], simres.Values[v])
		}
	}
}

// TestSSSPSourceAbsent: a source not in the graph leaves every distance
// infinite.
func TestSSSPSourceAbsent(t *testing.T) {
	g := gen.Grid(5, 5, 79)
	p, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, sssp.Job(99999), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range res.Values {
		if !math.IsInf(d, 1) {
			t.Fatalf("vertex %d reachable from absent source: %v", v, d)
		}
	}
}

// TestRefPageRankAgreesWithVCentricFormulation pins the shared
// formulation: the oracle itself conserves mass on dangling-free graphs.
func TestRefPageRankAgreesWithVCentricFormulation(t *testing.T) {
	g := gen.SmallWorld(200, 2, 0, false, 83)
	scores := ref.PageRank(g, 0.85, 1e-12, 2000)
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-200) > 0.01 {
		t.Errorf("reference total mass %v", sum)
	}
}
