package algo_test

// Differential tests of the delta-stepping SSSP kernel: at every forced
// shard count and bucket width — tiny (near-Dijkstra ordering), huge
// (degenerates to one bucket, the Bellman-Ford frontier order), and
// auto-tuned — the bucketed kernel must match the retained references
// bit for bit, at the program level and end to end through the
// simulator. Plus the contracts around it: the positive-weight
// precondition fails fast, and on a road-network graph bucketing
// actually removes re-relaxations.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/sim"
)

// deltaWidths is the forced bucket-width axis: tiny approaches Dijkstra
// (every distance its own bucket, exercising the overflow window), huge
// collapses to a single bucket (Bellman-Ford order, zero-span staging
// for every relaxation), 0 auto-tunes from the mean edge weight, and
// NaN/negative must fall back to auto-tuning instead of silently
// mis-classifying every edge (regression: 'delta <= 0' missed NaN).
var deltaWidths = []float64{0.05, 1e18, 0, math.NaN(), -2}

func deltaTag(d float64) string {
	switch {
	case math.IsNaN(d):
		return "nan"
	case d < 0:
		return "neg"
	case d == 0:
		return "auto"
	case d > 1e6:
		return "huge"
	default:
		return "tiny"
	}
}

// deltaGraphs extends the shared differential corpora with the
// workloads the bucketed kernel exists for and its edge cases: a road
// network (long shortest-path trees, dropped segments leaving
// unreachable pockets), a two-component graph (whole fragments never
// reached), and an unweighted graph (delta degenerates to BFS levels).
func deltaGraphs() map[string]*graph.Graph {
	gs := diffGraphs()
	gs["roadnet"] = gen.RoadNet(24, 24, 41)
	gs["twocomp"] = twoComponents()
	gs["unweighted"] = gen.PowerLaw(300, 5, 2.1, false, 43)
	return gs
}

// twoComponents builds a weighted graph whose second component is
// unreachable from vertex 0.
func twoComponents() *graph.Graph {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	for i := 0; i < 40; i++ {
		b.AddWeightedEdge(graph.VertexID(i), graph.VertexID((i+1)%40), 1+float64(i%7))
	}
	for i := 100; i < 130; i++ {
		b.AddWeightedEdge(graph.VertexID(i), graph.VertexID(100+(i+1)%30), 2.5)
	}
	b.AddVertex(graph.VertexID(999)) // fully isolated vertex
	return b.Build()
}

// TestSSSPDeltaKernelMatchesRef: program-level differential — the
// bucketed kernel at every forced shard count x bucket width against
// sequential Dijkstra and the frontier kernel on one fragment.
func TestSSSPDeltaKernelMatchesRef(t *testing.T) {
	for name, g := range deltaGraphs() {
		p, err := partition.Build(g, 1, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		want := peval(t, p, sssp.RefJob(0))
		for _, k := range kernelShardCounts {
			// The auto heuristic now routes dispersed-weight fragments
			// to the bucketed kernel, so the frontier kernel keeps its
			// own forced-shard pins here.
			wantF := peval(t, p, sssp.JobConfig(sssp.Config{Kernel: sssp.KernelFrontier, Shards: k}))
			bitsEqualF64(t, fmt.Sprintf("sssp-frontier/%s/shards=%d", name, k), wantF, want)
			for _, d := range deltaWidths {
				cfg := sssp.Config{Kernel: sssp.KernelBuckets, Shards: k, Delta: d}
				got := peval(t, p, sssp.JobConfig(cfg))
				bitsEqualF64(t, fmt.Sprintf("sssp-delta/%s/shards=%d/delta=%s", name, k, deltaTag(d)), got, want)
			}
		}
		if r := kernelRounds(t, p, sssp.JobConfig(sssp.Config{Kernel: sssp.KernelBuckets, Shards: 2})); r <= 0 {
			t.Fatalf("sssp-delta/%s reported %d kernel rounds", name, r)
		}
	}
}

// TestSSSPDeltaUnderSim: end-to-end differential through the simulator
// with real multi-fragment message traffic, including m close to n so
// fragments hold one or two vertices (IncEval re-seeding dominates).
func TestSSSPDeltaUnderSim(t *testing.T) {
	corpora := map[string]struct {
		g  *graph.Graph
		ms []int
	}{
		"roadnet":   {gen.RoadNet(16, 16, 47), []int{2, 5}},
		"twocomp":   {twoComponents(), []int{3}},
		"tinyfrags": {gen.Random(24, 90, true, 51), []int{24}}, // single-vertex fragments
	}
	for name, c := range corpora {
		for _, m := range c.ms {
			p, err := partition.Build(c.g, m, partition.Hash{})
			if err != nil {
				t.Fatal(err)
			}
			want := simValues(t, p, sssp.RefJob(0))
			for _, k := range kernelShardCounts {
				for _, d := range deltaWidths {
					cfg := sssp.Config{Kernel: sssp.KernelBuckets, Shards: k, Delta: d}
					got := simValues(t, p, sssp.JobConfig(cfg))
					bitsEqualF64(t, fmt.Sprintf("sim/sssp-delta/%s/m=%d/shards=%d/delta=%s",
						name, m, k, deltaTag(d)), got, want)
				}
			}
		}
	}
}

// TestSSSPDeltaUnderEngine smokes the bucketed kernel through the real
// concurrent engine (concurrent bucket staging under -race in CI).
func TestSSSPDeltaUnderEngine(t *testing.T) {
	g := gen.RoadNet(16, 16, 53)
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	want := simValues(t, p, sssp.RefJob(0))
	res, err := core.Run(p, sssp.JobConfig(sssp.Config{Kernel: sssp.KernelBuckets, Shards: 3}), core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualF64(t, "engine/sssp-delta", res.Values, want)
}

// TestSSSPRejectsBadWeights: the documented "edge weights must be
// positive" contract is enforced at run start — zero, negative, NaN and
// +Inf weights all fail fast with a clear error from both engines,
// before any kernel can silently diverge.
func TestSSSPRejectsBadWeights(t *testing.T) {
	for _, bad := range []float64{0, -1.5, math.NaN(), math.Inf(1)} {
		b := graph.NewBuilder(true)
		b.AddWeightedEdge(0, 1, 2.5)
		b.AddWeightedEdge(1, 2, bad)
		g := b.Build()
		p, err := partition.Build(g, 2, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP}); err == nil {
			t.Fatalf("engine accepted weight %v", bad)
		} else if !strings.Contains(err.Error(), "must be positive") {
			t.Fatalf("weight %v: unhelpful error %q", bad, err)
		}
		if _, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: core.AAP}); err == nil {
			t.Fatalf("simulator accepted weight %v", bad)
		}
	}
	// Positive finite weights must still pass.
	b := graph.NewBuilder(true)
	b.AddWeightedEdge(0, 1, 0.25)
	p, err := partition.Build(b.Build(), 1, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(p, sssp.Job(0), core.Options{Mode: core.AAP}); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

// TestSSSPDeltaFewerRelaxations pins the point of the bucketed kernel:
// on a road network the auto-tuned delta must attempt at most half the
// edge relaxations of the Bellman-Ford-ordered frontier sweep at equal
// shard count. Both kernels are deterministic at shards=1, so the ratio
// is stable for a fixed seed. (The Bellman-Ford re-relaxation factor
// grows with network diameter: 1.7x at 60x60, 2.7x here, 3.9x at
// 200x200 — so this size is the smallest that pins the 2x claim.)
func TestSSSPDeltaFewerRelaxations(t *testing.T) {
	g := gen.RoadNet(100, 100, 61)
	p, err := partition.Build(g, 1, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	relaxations := func(cfg sssp.Config) int64 {
		prog := sssp.JobConfig(cfg).New(p.Frags[0])
		ctx := core.NewEngineContext[float64](p.Frags[0], 1)
		prog.PEval(ctx)
		ctx.TakeOut()
		return prog.(interface{ Relaxations() int64 }).Relaxations()
	}
	frontier := relaxations(sssp.Config{Kernel: sssp.KernelFrontier, Shards: 1})
	delta := relaxations(sssp.Config{Kernel: sssp.KernelBuckets, Shards: 1})
	if delta*2 > frontier {
		t.Fatalf("delta-stepping attempted %d relaxations vs frontier's %d: want at least 2x fewer",
			delta, frontier)
	}
}
