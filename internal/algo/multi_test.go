package algo_test

// Differential tests of the batched multi-source SSSP kernel: every
// lane of one batched run must be bit-identical to a separate
// single-source run (the serving plane's correctness contract), and the
// batch must actually amortize — the scan counters must show at least a
// 2x reduction in scanned edges versus the per-source runs for k >= 4.

import (
	"fmt"
	"testing"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

// multiSources is the shared source batch; ids stay below the smallest
// differential corpus (150 vertices).
var multiSources = []graph.VertexID{0, 7, 19, 42, 88, 101}

// runEngine is a small engine harness: run the job over p in AAP mode.
func runEngine[T any](t *testing.T, p *partition.Partitioned, job core.Job[T]) *core.Result[T] {
	t.Helper()
	res, err := core.Run(p, job, core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiSourceSSSPMatchesSingleRuns: lane l of the batched run must
// equal a single-source run from Sources[l] bit for bit, across the
// differential corpora, fragment counts, and forced kernel shards —
// including against the sequential Dijkstra reference, so the lanes
// inherit the whole cross-kernel equivalence class.
func TestMultiSourceSSSPMatchesSingleRuns(t *testing.T) {
	for name, g := range diffGraphs() {
		for _, m := range []int{1, 3} {
			p, err := partition.Build(g, m, partition.Hash{})
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]float64, len(multiSources))
			for l, src := range multiSources {
				want[l] = runEngine(t, p, sssp.RefJob(src)).Values
			}
			for _, shards := range []int{1, 2, 4} {
				res := runEngine(t, p, sssp.MultiJob(sssp.MultiConfig{
					Sources: multiSources, Shards: shards,
				}))
				for l := range multiSources {
					bitsEqualF64(t,
						fmt.Sprintf("multi/%s/m=%d/shards=%d/lane=%d", name, m, shards, l),
						sssp.Lane(res.Values, l), want[l])
				}
			}
		}
	}
}

// TestMultiSourceSSSPDuplicateAndMissingSources: duplicate sources get
// identical lanes, and a source absent from the graph leaves its lane
// all-Inf without disturbing the others.
func TestMultiSourceSSSPDuplicateAndMissingSources(t *testing.T) {
	g := gen.Grid(12, 12, 5)
	p, err := partition.Build(g, 2, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []graph.VertexID{3, 3, 99999}
	res := runEngine(t, p, sssp.MultiJob(sssp.MultiConfig{Sources: srcs, Shards: 2}))
	want := runEngine(t, p, sssp.RefJob(3)).Values
	bitsEqualF64(t, "dup/lane0", sssp.Lane(res.Values, 0), want)
	bitsEqualF64(t, "dup/lane1", sssp.Lane(res.Values, 1), want)
	for v, d := range sssp.Lane(res.Values, 2) {
		if d != sssp.Inf {
			t.Fatalf("missing-source lane: vertex %d got %v, want +Inf", v, d)
		}
	}
}

// TestMultiSourceSSSPScanAmortization: the acceptance gate of the
// batching plane — one batched run over k >= 4 sources must scan at
// least 2x fewer edges than the k single-source runs it replaces, as
// measured by the kernels' own ScanCounter totals surfaced in RunStats.
// A union-frontier batch only shares a CSR row read among the lanes
// that improved the slot in the same round, so the ratio is a
// coincidence property of the workload: it grows with k, with source
// affinity, and with the small-world structure that puts most vertices
// at the same wave depth from every batch source (the MS-BFS
// observation). The gate here uses k=8 clustered sources on a
// heavy-tailed graph — the serving scenario the scheduler's batching
// targets — plus a weighted grid as the deep-frontier case; both clear
// 2x with margin (and ~4x single-fragment, measured stable over
// repeated trials).
func TestMultiSourceSSSPScanAmortization(t *testing.T) {
	clustered := make([]graph.VertexID, 8)
	for i := range clustered {
		clustered[i] = graph.VertexID(i)
	}
	pl := gen.PowerLaw(3000, 12, 2.0, true, 41)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		m    int
	}{
		{"powerlaw/m=1", pl, 1},
		{"powerlaw/m=2", pl, 2},
		{"grid/m=2", gen.Grid(40, 40, 9), 2},
	} {
		p, err := partition.Build(tc.g, tc.m, partition.Hash{})
		if err != nil {
			t.Fatal(err)
		}
		var single int64
		for _, src := range clustered {
			res := runEngine(t, p, sssp.JobShards(src, 2))
			if res.Stats.ScannedEdges <= 0 {
				t.Fatalf("%s: single-source run reported %d scanned edges", tc.name, res.Stats.ScannedEdges)
			}
			single += res.Stats.ScannedEdges
		}
		res := runEngine(t, p, sssp.MultiJob(sssp.MultiConfig{Sources: clustered, Shards: 2}))
		batched := res.Stats.ScannedEdges
		if batched <= 0 {
			t.Fatalf("%s: batched run reported %d scanned edges", tc.name, batched)
		}
		if 2*batched > single {
			t.Fatalf("%s: batched run scanned %d edges, %d single runs scanned %d — amortization below 2x",
				tc.name, batched, len(clustered), single)
		}
		t.Logf("%s: k=%d amortization %.2fx (%d batched vs %d single)",
			tc.name, len(clustered), float64(single)/float64(batched), batched, single)
	}
}
