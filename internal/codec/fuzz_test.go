package codec_test

import (
	"testing"

	"aap/internal/codec"
)

// FuzzCodecDecode drives every decoder over arbitrary byte soup. The
// contract under attack: a decoder must either succeed within the bytes
// it was given or set a sticky error — it must never panic, and a
// length prefix lying about its payload ("2^32 floats follow") must be
// rejected by the need-before-make guard instead of forcing a giant
// allocation.
func FuzzCodecDecode(f *testing.F) {
	// Well-formed seed: one of everything, so the fuzzer starts from a
	// buffer where every decode path initially succeeds and mutations
	// explore the boundaries.
	var seed []byte
	seed = codec.AppendUint32(seed, 42)
	seed = codec.AppendUint64(seed, 1<<40)
	seed = codec.AppendInt32(seed, -7)
	seed = codec.AppendInt64(seed, -1<<50)
	seed = codec.AppendBool(seed, true)
	seed = codec.AppendFloat64(seed, 3.5)
	seed = codec.AppendString(seed, "hello")
	seed = codec.AppendFloat64s(seed, []float64{1, 2, 3})
	seed = codec.AppendUint64s(seed, []uint64{4, 5})
	seed = codec.AppendInt32s(seed, []int32{-1, 0, 1})
	seed = codec.AppendInt64s(seed, []int64{-9, 9})
	f.Add(seed)

	// Truncations of the seed exercise mid-value cuts.
	for _, n := range []int{0, 1, 3, 4, 7, 11, 12, 20} {
		if n <= len(seed) {
			f.Add(seed[:n])
		}
	}
	// Length-lying prefixes: claim huge vectors with no payload.
	f.Add(codec.AppendUint32(nil, 0xFFFFFFFF))
	f.Add(codec.AppendUint32(codec.AppendUint32(nil, 1<<30), 99))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := codec.NewReader(data)
		_ = r.Uint32()
		_ = r.Uint64()
		_ = r.Int32()
		_ = r.Int64()
		_ = r.Bool()
		_ = r.Float64()
		_ = r.String()
		if vs := r.Float64s(); vs != nil && len(vs)*8 > len(data) {
			t.Fatalf("Float64s over-allocated: %d elems from %d bytes", len(vs), len(data))
		}
		if vs := r.Uint64s(); vs != nil && len(vs)*8 > len(data) {
			t.Fatalf("Uint64s over-allocated: %d elems from %d bytes", len(vs), len(data))
		}
		if vs := r.Int32s(); vs != nil && len(vs)*4 > len(data) {
			t.Fatalf("Int32s over-allocated: %d elems from %d bytes", len(vs), len(data))
		}
		if vs := r.Int64s(); vs != nil && len(vs)*8 > len(data) {
			t.Fatalf("Int64s over-allocated: %d elems from %d bytes", len(vs), len(data))
		}
		// A reader that errored must stay errored and keep returning
		// zero values (sticky-error contract).
		if r.Err() != nil {
			if r.Uint64() != 0 || r.String() != "" || r.Float64s() != nil {
				t.Fatal("reads after error returned non-zero values")
			}
		}
	})
}
