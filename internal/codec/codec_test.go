package codec_test

import (
	"testing"
	"testing/quick"

	"aap/internal/codec"
)

func TestRoundTripScalars(t *testing.T) {
	var buf []byte
	buf = codec.AppendUint32(buf, 42)
	buf = codec.AppendUint64(buf, 1<<40)
	buf = codec.AppendFloat64(buf, 3.5)
	buf = codec.AppendString(buf, "hello")
	buf = codec.AppendFloat64s(buf, []float64{1, 2, 3})

	r := codec.NewReader(buf)
	if got := r.Uint32(); got != 42 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	vs := r.Float64s()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Errorf("Float64s = %v", vs)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestTruncatedInput(t *testing.T) {
	buf := codec.AppendUint64(nil, 7)
	r := codec.NewReader(buf[:4])
	_ = r.Uint64()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Errors are sticky: further reads return zero values.
	if got := r.Uint32(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
}

func TestTruncatedVector(t *testing.T) {
	buf := codec.AppendUint32(nil, 1000) // claims 1000 floats, provides none
	r := codec.NewReader(buf)
	if vs := r.Float64s(); vs != nil {
		t.Errorf("Float64s on truncated input = %v", vs)
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, c float64, s string, vec []float64) bool {
		var buf []byte
		buf = codec.AppendUint32(buf, a)
		buf = codec.AppendUint64(buf, b)
		buf = codec.AppendFloat64(buf, c)
		buf = codec.AppendString(buf, s)
		buf = codec.AppendFloat64s(buf, vec)
		r := codec.NewReader(buf)
		if r.Uint32() != a || r.Uint64() != b {
			return false
		}
		if got := r.Float64(); got != c && !(got != got && c != c) { // NaN-safe
			return false
		}
		if r.String() != s {
			return false
		}
		got := r.Float64s()
		if len(got) != len(vec) {
			return false
		}
		for i := range got {
			if got[i] != vec[i] && !(got[i] != got[i] && vec[i] != vec[i]) {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyString(t *testing.T) {
	buf := codec.AppendString(nil, "")
	r := codec.NewReader(buf)
	if got := r.String(); got != "" {
		t.Errorf("empty string round trip = %q", got)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}
