package codec_test

import (
	"testing"
	"testing/quick"

	"aap/internal/codec"
)

func TestRoundTripScalars(t *testing.T) {
	var buf []byte
	buf = codec.AppendUint32(buf, 42)
	buf = codec.AppendUint64(buf, 1<<40)
	buf = codec.AppendFloat64(buf, 3.5)
	buf = codec.AppendString(buf, "hello")
	buf = codec.AppendFloat64s(buf, []float64{1, 2, 3})

	r := codec.NewReader(buf)
	if got := r.Uint32(); got != 42 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	vs := r.Float64s()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Errorf("Float64s = %v", vs)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripIntsAndBools(t *testing.T) {
	var buf []byte
	buf = codec.AppendInt32(buf, -42)
	buf = codec.AppendInt64(buf, -1<<40)
	buf = codec.AppendBool(buf, true)
	buf = codec.AppendBool(buf, false)
	buf = codec.AppendUint64s(buf, []uint64{0, 1, 1 << 63})
	buf = codec.AppendInt32s(buf, []int32{-1, 0, 1})
	buf = codec.AppendInt64s(buf, []int64{-9, 1 << 50})

	r := codec.NewReader(buf)
	if got := r.Int32(); got != -42 {
		t.Errorf("Int32 = %d", got)
	}
	if got := r.Int64(); got != -1<<40 {
		t.Errorf("Int64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if vs := r.Uint64s(); len(vs) != 3 || vs[2] != 1<<63 {
		t.Errorf("Uint64s = %v", vs)
	}
	if vs := r.Int32s(); len(vs) != 3 || vs[0] != -1 {
		t.Errorf("Int32s = %v", vs)
	}
	if vs := r.Int64s(); len(vs) != 2 || vs[1] != 1<<50 {
		t.Errorf("Int64s = %v", vs)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestTruncatedInput(t *testing.T) {
	buf := codec.AppendUint64(nil, 7)
	r := codec.NewReader(buf[:4])
	_ = r.Uint64()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Errors are sticky: further reads return zero values.
	if got := r.Uint32(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
}

func TestTruncatedVector(t *testing.T) {
	buf := codec.AppendUint32(nil, 1000) // claims 1000 floats, provides none
	r := codec.NewReader(buf)
	if vs := r.Float64s(); vs != nil {
		t.Errorf("Float64s on truncated input = %v", vs)
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, c float64, s string, vec []float64) bool {
		var buf []byte
		buf = codec.AppendUint32(buf, a)
		buf = codec.AppendUint64(buf, b)
		buf = codec.AppendFloat64(buf, c)
		buf = codec.AppendString(buf, s)
		buf = codec.AppendFloat64s(buf, vec)
		r := codec.NewReader(buf)
		if r.Uint32() != a || r.Uint64() != b {
			return false
		}
		if got := r.Float64(); got != c && !(got != got && c != c) { // NaN-safe
			return false
		}
		if r.String() != s {
			return false
		}
		got := r.Float64s()
		if len(got) != len(vec) {
			return false
		}
		for i := range got {
			if got[i] != vec[i] && !(got[i] != got[i] && vec[i] != vec[i]) {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyString(t *testing.T) {
	buf := codec.AppendString(nil, "")
	r := codec.NewReader(buf)
	if got := r.String(); got != "" {
		t.Errorf("empty string round trip = %q", got)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}
