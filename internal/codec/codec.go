// Package codec provides the binary wire format for designated messages
// and program state: length-prefixed little-endian encoding with no
// reflection, so communication accounting measures real serialized bytes
// and checkpoints are byte-stable.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUint32 appends v in little-endian order.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v in little-endian order.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// AppendFloat64s appends a length-prefixed vector.
func AppendFloat64s(dst []byte, vs []float64) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendFloat64(dst, v)
	}
	return dst
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// Reader decodes values appended by the Append functions.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("codec: truncated input at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}

// Uint32 decodes a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Float64 decodes an IEEE-754 float.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Float64s decodes a length-prefixed vector.
func (r *Reader) Float64s() []float64 {
	n := r.Uint32()
	if r.err != nil || !r.need(int(n)*8) {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint32()
	if r.err != nil || !r.need(int(n)) {
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
