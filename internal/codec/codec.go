// Package codec provides the binary wire format for designated messages
// and program state: length-prefixed little-endian encoding with no
// reflection, so communication accounting measures real serialized bytes
// and checkpoints are byte-stable.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUint32 appends v in little-endian order.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v in little-endian order.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// AppendInt32 appends v as its two's-complement uint32 bits.
func AppendInt32(dst []byte, v int32) []byte {
	return AppendUint32(dst, uint32(v))
}

// AppendInt64 appends v as its two's-complement uint64 bits.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v))
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendFloat64s appends a length-prefixed vector.
func AppendFloat64s(dst []byte, vs []float64) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendFloat64(dst, v)
	}
	return dst
}

// AppendUint64s appends a length-prefixed vector of raw uint64 words
// (the byte-stable form checkpoints use for atomic float bits).
func AppendUint64s(dst []byte, vs []uint64) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendUint64(dst, v)
	}
	return dst
}

// AppendInt32s appends a length-prefixed vector.
func AppendInt32s(dst []byte, vs []int32) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendInt32(dst, v)
	}
	return dst
}

// AppendInt64s appends a length-prefixed vector.
func AppendInt64s(dst []byte, vs []int64) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendInt64(dst, v)
	}
	return dst
}

// AppendBools appends a length-prefixed vector of booleans, one byte
// each.
func AppendBools(dst []byte, vs []bool) []byte {
	dst = AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendBool(dst, v)
	}
	return dst
}

// AppendBytes appends a length-prefixed byte blob (a nested payload:
// serialized program state inside an RPC frame, for example).
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// Reader decodes values appended by the Append functions.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("codec: truncated input at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}

// Uint32 decodes a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Int32 decodes a two's-complement int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Int64 decodes a two's-complement int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Bool decodes one byte as a boolean; any nonzero value is true.
func (r *Reader) Bool() bool {
	if !r.need(1) {
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

// Float64 decodes an IEEE-754 float.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// vecLen decodes a vector's length prefix and verifies the payload is
// actually present before the caller allocates — the header-lie guard:
// a corrupted or malicious prefix claiming 2^32 elements fails here with
// a truncation error instead of forcing a giant allocation.
func (r *Reader) vecLen(elemBytes int) (int, bool) {
	n := r.Uint32()
	if r.err != nil || !r.need(int(n)*elemBytes) {
		return 0, false
	}
	return int(n), true
}

// Float64s decodes a length-prefixed vector.
func (r *Reader) Float64s() []float64 {
	n, ok := r.vecLen(8)
	if !ok {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Uint64s decodes a length-prefixed vector of raw uint64 words.
func (r *Reader) Uint64s() []uint64 {
	n, ok := r.vecLen(8)
	if !ok {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// Int32s decodes a length-prefixed vector.
func (r *Reader) Int32s() []int32 {
	n, ok := r.vecLen(4)
	if !ok {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int32()
	}
	return out
}

// Int64s decodes a length-prefixed vector.
func (r *Reader) Int64s() []int64 {
	n, ok := r.vecLen(8)
	if !ok {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int64()
	}
	return out
}

// Bools decodes a length-prefixed vector of booleans.
func (r *Reader) Bools() []bool {
	n, ok := r.vecLen(1)
	if !ok {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

// Bytes decodes a length-prefixed byte blob. The returned slice aliases
// the reader's buffer (the nested payload is decoded in place, not
// copied); callers that retain it past the buffer's lifetime must copy.
func (r *Reader) Bytes() []byte {
	n := r.Uint32()
	if r.err != nil || !r.need(int(n)) {
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint32()
	if r.err != nil || !r.need(int(n)) {
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
