package harness

import (
	"fmt"
	"runtime"
	"strings"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// computeShardCounts is the kernel-shard axis of the compute experiment.
var computeShardCounts = []int{1, 2, 4, 8}

// roundsReporter is implemented by the compute-plane kernels: the
// number of frontier rounds PEval ran to its local fixpoint, which
// normalizes wall time and allocations to per-round figures.
type roundsReporter interface{ KernelRounds() int }

// runKernel executes one job's kernel to its local fixpoint on a
// single-fragment partition and returns (seconds, rounds, allocations).
func runKernel[T any](p *partition.Partitioned, job core.Job[T]) (float64, int, uint64) {
	f := p.Frags[0]
	prog := job.New(f)
	ctx := core.NewEngineContext[T](f, 1)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	secs := timeIt(func() { prog.PEval(ctx) })
	runtime.ReadMemStats(&m1)
	ctx.TakeOut()
	rounds := 1
	if rr, ok := prog.(roundsReporter); ok {
		rounds = max(rr.KernelRounds(), 1)
	}
	return secs, rounds, m1.Mallocs - m0.Mallocs
}

// Compute measures the intra-fragment parallel compute plane: each
// kernel runs PEval to its local fixpoint on one fragment holding the
// whole stand-in graph, at forced kernel shard counts 1/2/4/8, and the
// report normalizes to ns/round and allocs/round. On a machine with
// fewer cores than shards the extra rows measure fan-out overhead, not
// speedup — the row to read is shards=cores. The sequential reference
// kernel is included as the baseline row. cmd/aapbench exposes it as
// -exp compute.
func Compute() (string, error) {
	ds := FriendsterSim(Scale())
	und := graph.AsUndirected(ds.Graph)
	p, err := partition.Build(ds.Graph, 1, partition.Hash{})
	if err != nil {
		return "", err
	}
	pu, err := partition.Build(und, 1, partition.Hash{})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "frontier-parallel kernels on %s (n=%d, m=%d), one fragment, GOMAXPROCS=%d\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), runtime.GOMAXPROCS(0))
	b.WriteString("(shard rows beyond the core count measure fan-out overhead, not speedup)\n")

	type row struct {
		name string
		run  func(shards int) (float64, int, uint64)
		ref  func() (float64, int, uint64)
	}
	rows := []row{
		{
			name: "sssp",
			run:  func(k int) (float64, int, uint64) { return runKernel(p, sssp.JobShards(ds.Source, k)) },
			ref:  func() (float64, int, uint64) { return runKernel(p, sssp.RefJob(ds.Source)) },
		},
		{
			name: "cc",
			run:  func(k int) (float64, int, uint64) { return runKernel(pu, cc.JobShards(k)) },
			ref:  func() (float64, int, uint64) { return runKernel(pu, cc.RefJob()) },
		},
		{
			name: "pagerank",
			run: func(k int) (float64, int, uint64) {
				return runKernel(p, pagerank.Job(pagerank.Config{Tol: 1e-4, Shards: k}))
			},
			ref: func() (float64, int, uint64) {
				return runKernel(p, pagerank.RefJob(pagerank.Config{Tol: 1e-4}))
			},
		},
	}
	for _, r := range rows {
		secs, rounds, allocs := r.ref()
		fmt.Fprintf(&b, "%s:\n  %-10s %10.3fms total  %4d rounds  %12.0f ns/round  %8.1f allocs/round\n",
			r.name, "seq ref", secs*1e3, rounds, secs*1e9/float64(rounds), float64(allocs)/float64(rounds))
		for _, k := range computeShardCounts {
			secs, rounds, allocs := r.run(k)
			fmt.Fprintf(&b, "  shards=%-3d %10.3fms total  %4d rounds  %12.0f ns/round  %8.1f allocs/round\n",
				k, secs*1e3, rounds, secs*1e9/float64(rounds), float64(allocs)/float64(rounds))
		}
	}
	return b.String(), nil
}
