package harness

import (
	"fmt"
	"runtime"
	"strings"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// computeShardCounts is the kernel-shard axis of the compute experiment.
var computeShardCounts = []int{1, 2, 4, 8}

// roundsReporter is implemented by the compute-plane kernels: the
// number of frontier rounds PEval ran to its local fixpoint, which
// normalizes wall time and allocations to per-round figures.
type roundsReporter interface{ KernelRounds() int }

// relaxReporter is implemented by the SSSP kernels: edge relaxations
// attempted, the work metric the delta-stepping comparison is about.
type relaxReporter interface{ Relaxations() int64 }

// bucketReporter is implemented by the delta-stepping kernel: nonempty
// distance-range buckets drained.
type bucketReporter interface{ BucketsDrained() int }

// kernelRun is one kernel execution's measurements.
type kernelRun struct {
	secs    float64
	rounds  int
	allocs  uint64
	relaxed int64 // -1 when the kernel does not report relaxations
	buckets int   // 0 when the kernel is not bucketed
}

// runKernel executes one job's kernel to its local fixpoint on a
// single-fragment partition.
func runKernel[T any](p *partition.Partitioned, job core.Job[T]) kernelRun {
	f := p.Frags[0]
	prog := job.New(f)
	ctx := core.NewEngineContext[T](f, 1)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	secs := timeIt(func() { prog.PEval(ctx) })
	runtime.ReadMemStats(&m1)
	ctx.TakeOut()
	r := kernelRun{secs: secs, rounds: 1, allocs: m1.Mallocs - m0.Mallocs, relaxed: -1}
	if rr, ok := prog.(roundsReporter); ok {
		r.rounds = max(rr.KernelRounds(), 1)
	}
	if xr, ok := prog.(relaxReporter); ok {
		r.relaxed = xr.Relaxations()
	}
	if br, ok := prog.(bucketReporter); ok {
		r.buckets = br.BucketsDrained()
	}
	return r
}

// kernelRow formats one measurement row: per-round time and allocation
// figures plus, when reported, relaxations per round and the bucket
// count.
func kernelRow(b *strings.Builder, name string, r kernelRun) {
	fmt.Fprintf(b, "  %-14s %10.3fms total  %5d rounds  %12.0f ns/round  %8.1f allocs/round",
		name, r.secs*1e3, r.rounds, r.secs*1e9/float64(r.rounds), float64(r.allocs)/float64(r.rounds))
	if r.relaxed >= 0 {
		fmt.Fprintf(b, "  %9d relax", r.relaxed)
	}
	if r.buckets > 0 {
		fmt.Fprintf(b, "  %5d buckets", r.buckets)
	}
	b.WriteByte('\n')
}

// Compute measures the intra-fragment parallel compute plane: each
// kernel runs PEval to its local fixpoint on one fragment holding the
// whole stand-in graph, at forced kernel shard counts 1/2/4/8, and the
// report normalizes to ns/round and allocs/round (plus relaxations and
// bucket counts where kernels report them). On a machine with fewer
// cores than shards the extra rows measure fan-out overhead, not
// speedup — the row to read is shards=cores. The sequential reference
// kernel is included as the baseline row.
//
// The second section is the SSSP delta axis on the road-network
// stand-in: the Bellman-Ford-ordered frontier sweep against the
// delta-stepping kernel at bucket widths tiny (near-Dijkstra ordering),
// auto (mean edge weight) and huge (degenerates back to Bellman-Ford),
// at equal shard counts — the relaxation columns are the point.
// ssspDelta > 0 adds a row with that forced bucket width.
// cmd/aapbench exposes it all as -exp compute [-sssp-delta w].
func Compute(ssspDelta float64) (string, error) {
	ds := FriendsterSim(Scale())
	und := graph.AsUndirected(ds.Graph)
	p, err := partition.Build(ds.Graph, 1, partition.Hash{})
	if err != nil {
		return "", err
	}
	pu, err := partition.Build(und, 1, partition.Hash{})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "frontier-parallel kernels on %s (n=%d, m=%d), one fragment, GOMAXPROCS=%d\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), runtime.GOMAXPROCS(0))
	b.WriteString("(shard rows beyond the core count measure fan-out overhead, not speedup)\n")

	type row struct {
		name string
		run  func(shards int) kernelRun
		ref  func() kernelRun
	}
	rows := []row{
		{
			name: "sssp",
			run:  func(k int) kernelRun { return runKernel(p, sssp.JobShards(ds.Source, k)) },
			ref:  func() kernelRun { return runKernel(p, sssp.RefJob(ds.Source)) },
		},
		{
			name: "cc",
			run:  func(k int) kernelRun { return runKernel(pu, cc.JobShards(k)) },
			ref:  func() kernelRun { return runKernel(pu, cc.RefJob()) },
		},
		{
			name: "pagerank",
			run: func(k int) kernelRun {
				return runKernel(p, pagerank.Job(pagerank.Config{Tol: 1e-4, Shards: k}))
			},
			ref: func() kernelRun {
				return runKernel(p, pagerank.RefJob(pagerank.Config{Tol: 1e-4}))
			},
		},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%s:\n", r.name)
		kernelRow(&b, "seq ref", r.ref())
		for _, k := range computeShardCounts {
			kernelRow(&b, fmt.Sprintf("shards=%d", k), r.run(k))
		}
	}

	// SSSP delta axis on the road network.
	rd := RoadNetSim(Scale())
	prd, err := partition.Build(rd.Graph, 1, partition.Hash{})
	if err != nil {
		return "", err
	}
	meanW := meanWeight(rd.Graph)
	fmt.Fprintf(&b, "\nsssp delta axis on %s (n=%d, m=%d, mean w=%.3f):\n",
		rd.Name, rd.Graph.NumVertices(), rd.Graph.NumEdges(), meanW)
	kernelRow(&b, "dijkstra ref", runKernel(prd, sssp.RefJob(rd.Source)))
	widths := []struct {
		name  string
		delta float64
	}{
		{"delta=tiny", meanW / 64},
		{"delta=auto", 0},
		{"delta=huge", 1e18},
	}
	if ssspDelta > 0 {
		widths = append(widths, struct {
			name  string
			delta float64
		}{fmt.Sprintf("delta=%g", ssspDelta), ssspDelta})
	}
	for _, k := range []int{1, 4} {
		kernelRow(&b, fmt.Sprintf("frontier/s=%d", k),
			runKernel(prd, sssp.JobConfig(sssp.Config{Source: rd.Source, Kernel: sssp.KernelFrontier, Shards: k})))
		for _, w := range widths {
			kernelRow(&b, fmt.Sprintf("%s/s=%d", w.name, k),
				runKernel(prd, sssp.JobConfig(sssp.Config{
					Source: rd.Source, Kernel: sssp.KernelBuckets, Shards: k, Delta: w.delta,
				})))
		}
	}
	return b.String(), nil
}

// meanWeight returns the mean edge weight of g (1 for unweighted).
func meanWeight(g *graph.Graph) float64 {
	if !g.Weighted() {
		return 1
	}
	var sum float64
	var n int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, w := range g.OutWeights(v) {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
