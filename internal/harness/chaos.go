package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/partition"
)

// ChaosSeeds is the fixed fault-schedule axis of -exp chaos; the CI
// smoke step runs exactly these three seeds so a regression in the
// recovery path is reproducible from the log alone.
var ChaosSeeds = []int64{1, 7, 42}

// Chaos measures the fault-tolerance plane on a wall-clock engine run:
//
//   - checkpoint overhead — the same SSSP run with snapshots every
//     round and every 4 rounds against the plain run, reported as
//     ns/epoch sealed and bytes/snapshot;
//
//   - recovery — for each seed, a run that loses a worker at its first
//     incremental round, restores from the last sealed snapshot, and
//     must land bit-identical to the fault-free distances (the
//     determinism contract for the idempotent min fold); recovery wall
//     time comes from the engine's quiesce-to-resume clock.
//
//   - transport overhead — the same run with every designated batch and
//     coordinator token codec-encoded onto the loopback TCP plane,
//     reporting real serialized wire bytes against the in-proc model's
//     accounted bytes, plus a kill+recovery run over the wire.
//
//   - durability — a victim child process with every sealed epoch teed
//     to disk is SIGKILLed mid-run and resumed from its records, intact
//     and with the newest record torn or bit-flipped (see durability).
//
//   - self-healing — a supervised worker host is SIGKILLed inside and
//     then past its restart budget; the supervisor must respawn+rejoin
//     within budget and fail back locally beyond it (see supervision).
//
// cmd/aapbench exposes it as -exp chaos; maxRestarts and restartBackoff
// mirror the -max-restarts/-restart-backoff flags.
func Chaos(workers int, seeds []int64, maxRestarts int, restartBackoff time.Duration) (string, error) {
	ds := FriendsterSim(Scale())
	p, err := partition.Build(ds.Graph, workers, partition.Hash{})
	if err != nil {
		return "", err
	}
	job := sssp.Job(ds.Source)
	plain := core.Options{Mode: core.AAP, Timeout: time.Minute}

	base, err := core.Run(p, job, plain)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "fault tolerance: sssp on %s (n=%d, m=%d), %d workers\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), workers)
	fmt.Fprintf(&b, "%-22s %10s %8s %12s %14s %12s\n",
		"run", "time(s)", "epochs", "ns/epoch", "bytes/snap", "recoveries")
	fmt.Fprintf(&b, "%-22s %10.3f %8d %12s %14s %12d\n",
		"baseline", base.Stats.Seconds, 0, "-", "-", 0)

	for _, every := range []int32{1, 4} {
		opts := plain
		opts.Checkpoint = core.CheckpointOptions{EveryRounds: every}
		res, err := core.Run(p, job, opts)
		if err != nil {
			return "", err
		}
		if err := sameDistances(base.Values, res.Values); err != nil {
			return "", fmt.Errorf("checkpointed run (every=%d) diverged: %w", every, err)
		}
		st := res.Stats
		nsEpoch, bytesSnap := "-", "-"
		if st.Checkpoints > 0 {
			nsEpoch = fmt.Sprintf("%.0f", (st.Seconds-base.Stats.Seconds)*1e9/float64(st.Checkpoints))
			bytesSnap = fmt.Sprintf("%d", st.CheckpointBytes/st.Checkpoints)
		}
		fmt.Fprintf(&b, "%-22s %10.3f %8d %12s %14s %12d\n",
			fmt.Sprintf("checkpoint every=%d", every), st.Seconds, st.Checkpoints, nsEpoch, bytesSnap, st.Recoveries)
	}

	b.WriteString("\nseeded kill + recovery (checkpoint every round, kill at first incremental round):\n")
	fmt.Fprintf(&b, "%-22s %10s %8s %12s %14s %12s\n",
		"run", "time(s)", "epochs", "victim", "recovery(ms)", "recoveries")
	for _, seed := range seeds {
		victim := int(seed) % workers
		opts := plain
		opts.Checkpoint = core.CheckpointOptions{EveryRounds: 1}
		opts.Faults = &core.Faults{
			Seed: seed,
			Kill: &core.KillSpec{Worker: victim, Round: 1},
		}
		res, err := core.Run(p, job, opts)
		if err != nil {
			return "", err
		}
		if err := sameDistances(base.Values, res.Values); err != nil {
			return "", fmt.Errorf("seed %d: recovered run diverged from fault-free run: %w", seed, err)
		}
		st := res.Stats
		fmt.Fprintf(&b, "%-22s %10.3f %8d %12d %14.3f %12d\n",
			fmt.Sprintf("seed=%d", seed), st.Seconds, st.Checkpoints, victim, st.RecoverySeconds*1e3, st.Recoveries)
		if st.Recoveries < 1 {
			return "", fmt.Errorf("seed %d: kill scheduled for worker %d but no recovery ran", seed, victim)
		}
	}
	b.WriteString("\nall recovered runs bit-identical to the fault-free baseline\n")

	b.WriteString("\ntransport plane: loopback TCP, codec-encoded batches + wire coordinator:\n")
	fmt.Fprintf(&b, "%-22s %10s %12s %12s %9s %8s %12s\n",
		"run", "time(s)", "wire-out(B)", "wire-in(B)", "retries", "hb-t/o", "recoveries")
	tcp := plain
	tcp.Transport = &core.TransportOptions{TCP: true}
	wire, err := core.Run(p, job, tcp)
	if err != nil {
		return "", err
	}
	if err := sameDistances(base.Values, wire.Values); err != nil {
		return "", fmt.Errorf("tcp run diverged from in-proc run: %w", err)
	}
	st := wire.Stats
	fmt.Fprintf(&b, "%-22s %10.3f %12d %12d %9d %8d %12d\n",
		"tcp", st.Seconds, st.WireBytesOut, st.WireBytesIn, st.Retries, st.HeartbeatTimeouts, st.Recoveries)

	tcpKill := tcp
	tcpKill.Checkpoint = core.CheckpointOptions{EveryRounds: 1}
	tcpKill.Faults = &core.Faults{
		Seed: seeds[len(seeds)-1],
		Kill: &core.KillSpec{Worker: int(seeds[len(seeds)-1]) % workers, Round: 1},
	}
	wk, err := core.Run(p, job, tcpKill)
	if err != nil {
		return "", err
	}
	if err := sameDistances(base.Values, wk.Values); err != nil {
		return "", fmt.Errorf("tcp kill+recovery run diverged from fault-free run: %w", err)
	}
	if wk.Stats.Recoveries < 1 {
		return "", fmt.Errorf("tcp run: kill scheduled but no recovery ran")
	}
	st = wk.Stats
	fmt.Fprintf(&b, "%-22s %10.3f %12d %12d %9d %8d %12d\n",
		fmt.Sprintf("tcp kill seed=%d", tcpKill.Faults.Seed),
		st.Seconds, st.WireBytesOut, st.WireBytesIn, st.Retries, st.HeartbeatTimeouts, st.Recoveries)
	fmt.Fprintf(&b, "tcp overhead %.2fx over in-proc; wire bytes vs accounted model bytes %.2fx\n",
		wire.Stats.Seconds/base.Stats.Seconds,
		float64(wire.Stats.WireBytesOut)/float64(max(wire.Stats.TotalBytes, 1)))
	b.WriteString("tcp runs bit-identical to the in-proc fault-free baseline\n")

	if err := durability(&b, p, job, base.Values, workers); err != nil {
		return "", err
	}
	if err := supervision(&b, p, job, base.Values, workers, maxRestarts, restartBackoff); err != nil {
		return "", err
	}
	return b.String(), nil
}

// sameDistances compares two assembled SSSP value vectors bitwise,
// treating +Inf as equal to +Inf.
func sameDistances(want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("length %d vs %d", len(got), len(want))
	}
	for v := range want {
		if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
			return fmt.Errorf("vertex %d: %v vs %v", v, got[v], want[v])
		}
	}
	return nil
}
