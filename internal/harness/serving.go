package harness

// The serving experiment measures the resident-service plane of the
// repo (internal/serve over one core.Session): closed-loop query
// throughput and latency under concurrent clients, and the edge-scan
// amortization of batched multi-source SSSP against dedicated runs.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/serve"
)

// Serving runs the resident-service experiment: a serve.Server hosting
// the Friendster stand-in on `workers` fragments, driven closed-loop by
// concurrent clients, then the batched-SSSP scan amortization
// comparison. Correctness is asserted, not sampled: every served
// distance vector must be bit-identical to a dedicated engine run.
func Serving(workers, clients, perClient int) (string, error) {
	ds := FriendsterSim(Scale())
	p, err := partition.Build(ds.Graph, workers, partition.Hash{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "serving plane: %s (n=%d, m=%d), %d fragments, %d clients x %d queries\n\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), workers, clients, perClient)

	if err := closedLoop(&b, p, ds.Graph, clients, perClient); err != nil {
		return "", err
	}
	if err := amortization(&b, p); err != nil {
		return "", err
	}
	return b.String(), nil
}

// closedLoop drives the server with `clients` goroutines, each issuing
// `perClient` SSSP queries back to back, and reports QPS, latency
// percentiles, and batching counters. Sources are spread over the
// graph so queries differ, and every answer is checked bit-identical
// against a dedicated core.Run of the same source.
func closedLoop(b *strings.Builder, p *partition.Partitioned, g *graph.Graph, clients, perClient int) error {
	srv := serve.New(p,
		serve.WithMaxInflight(4),
		serve.WithBatchWindow(2*time.Millisecond),
		serve.WithBatchMax(8),
	)
	total := clients * perClient
	sources := make([]graph.VertexID, total)
	for i := range sources {
		sources[i] = graph.VertexID((i * 911) % g.NumVertices())
	}
	// Dedicated-run baselines, one per distinct source, computed before
	// the clock starts.
	want := make(map[graph.VertexID][]float64)
	for _, src := range sources {
		if _, ok := want[src]; ok {
			continue
		}
		res, err := core.Run(p, sssp.Job(src), core.Options{Mode: core.AAP})
		if err != nil {
			return err
		}
		want[src] = res.Values
	}

	lat := make([]float64, total)
	queueWait := make([]float64, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				i := c*perClient + q
				t0 := time.Now()
				vals, st, err := srv.SSSP(sources[i])
				lat[i] = time.Since(t0).Seconds()
				queueWait[i] = st.QueueWaitSeconds
				if err == nil {
					err = sameDistances(want[sources[i]], vals)
				}
				errs[i] = err
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d (source %d): %w", i, sources[i], err)
		}
	}

	st := srv.Stats()
	meanBatch := 0.0
	if st.Batches > 0 {
		meanBatch = float64(st.BatchedQueries) / float64(st.Batches)
	}
	fmt.Fprintf(b, "closed loop (sssp, batch window 2ms, batch max 8, in-flight cap 4):\n")
	fmt.Fprintf(b, "  %-22s %10.1f\n", "qps", float64(total)/wall)
	fmt.Fprintf(b, "  %-22s %10.2f\n", "p50 latency (ms)", 1e3*percentile(lat, 0.50))
	fmt.Fprintf(b, "  %-22s %10.2f\n", "p99 latency (ms)", 1e3*percentile(lat, 0.99))
	fmt.Fprintf(b, "  %-22s %10.2f\n", "p50 queue wait (ms)", 1e3*percentile(queueWait, 0.50))
	fmt.Fprintf(b, "  %-22s %10d\n", "engine runs", st.Completed)
	fmt.Fprintf(b, "  %-22s %10d\n", "batches", st.Batches)
	fmt.Fprintf(b, "  %-22s %10.2f\n", "mean batch size", meanBatch)
	fmt.Fprintf(b, "  %-22s %10d\n", "max batch size", st.MaxBatch)
	fmt.Fprintf(b, "  %-22s %10d\n", "rejected", st.Rejected)
	fmt.Fprintf(b, "  all %d answers bit-identical to dedicated runs\n\n", total)
	return nil
}

// amortization compares total scanned edges of k dedicated SSSP runs
// against one batched multi-source run over the same k sources —
// clustered low ids, the workload batching is for (concurrent queries
// about the same hot region). Lanes are checked bit-identical to the
// dedicated runs before the ratio is believed.
func amortization(b *strings.Builder, p *partition.Partitioned) error {
	// External ids 0..7: hubs of the power-law stand-in, clustered the
	// way concurrent queries about one hot region are.
	sources := make([]graph.VertexID, 8)
	for i := range sources {
		sources[i] = graph.VertexID(i)
	}
	var single int64
	want := make([][]float64, len(sources))
	for i, src := range sources {
		res, err := core.Run(p, sssp.Job(src), core.Options{Mode: core.AAP})
		if err != nil {
			return err
		}
		want[i] = res.Values
		single += res.Stats.ScannedEdges
	}
	res, err := core.Run(p, sssp.MultiJob(sssp.MultiConfig{Sources: sources}), core.Options{Mode: core.AAP})
	if err != nil {
		return err
	}
	for i := range sources {
		if err := sameDistances(want[i], sssp.Lane(res.Values, i)); err != nil {
			return fmt.Errorf("batched lane %d: %w", i, err)
		}
	}
	batched := res.Stats.ScannedEdges
	fmt.Fprintf(b, "batch amortization (k=%d clustered sources, one multi-source run vs k dedicated runs):\n", len(sources))
	fmt.Fprintf(b, "  %-22s %10d\n", "dedicated scans", single)
	fmt.Fprintf(b, "  %-22s %10d\n", "batched scans", batched)
	fmt.Fprintf(b, "  %-22s %10.2f\n", "amortization ratio", float64(single)/float64(batched))
	fmt.Fprintf(b, "  all %d lanes bit-identical to dedicated runs\n", len(sources))
	return nil
}

// percentile returns the q-quantile of xs by nearest-rank on a sorted
// copy.
func percentile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(s)-1))
	return s[i]
}
