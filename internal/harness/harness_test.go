package harness_test

import (
	"strconv"
	"strings"
	"testing"

	"aap/internal/harness"
)

// makespans parses "(MODE) makespan N ..." lines from a report.
func makespans(t *testing.T, out string) map[string]float64 {
	t.Helper()
	mk := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		idx := strings.Index(line, "makespan")
		if idx < 0 || !strings.HasPrefix(line, "(") {
			continue
		}
		close := strings.Index(line, ")")
		mode := line[1:close]
		fields := strings.Fields(line[idx:])
		num := strings.TrimSuffix(fields[1], ",")
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			t.Fatalf("bad makespan line %q: %v", line, err)
		}
		mk[mode] = v
	}
	if len(mk) != 4 {
		t.Fatalf("parsed %d makespans from:\n%s", len(mk), out)
	}
	return mk
}

// TestIngestReport smoke-tests the self-contained ingest experiment:
// the scaling rows and both slot-table representations must appear.
func TestIngestReport(t *testing.T) {
	out, err := harness.Ingest("")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"read shards=1", "read shards=8", "hybrid", "dense", "edges/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ingest report missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShapesHold(t *testing.T) {
	out, err := harness.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	for _, want := range []string{"(AAP)", "(BSP)", "(AP)", "(SSP)", "P1", "P3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q", want)
		}
	}
	mk := makespans(t, out)
	// The headline claim of Example 1: AAP finishes no later than BSP.
	if mk["AAP"] > mk["BSP"]+1e-9 {
		t.Errorf("Fig1: AAP makespan %.0f exceeds BSP %.0f", mk["AAP"], mk["BSP"])
	}
}

func TestFig6PanelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := harness.Fig6(harness.Fig6Panels()[1], []int{8, 16}) // SSSP on friendster-sim
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	if !strings.Contains(out, "Figure 6(b)") {
		t.Error("missing panel header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+2 data rows, got %d lines", len(lines))
	}
}

func TestFig6kSkewTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := harness.Fig6k(8, []float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	rows := parseSeries(t, out, 4)
	// At r=9 the straggler dominates: AAP (column 0) must beat BSP
	// (column 1), the paper's Exp-4 claim.
	r9 := rows[len(rows)-1]
	if r9[0] > r9[1] {
		t.Errorf("at r=9 AAP %.2f slower than BSP %.2f", r9[0], r9[1])
	}
}

// parseSeries extracts the numeric columns of a worker/ratio sweep table.
func parseSeries(t *testing.T, out string, cols int) [][]float64 {
	t.Helper()
	var rows [][]float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != cols+1 {
			continue
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			continue
		}
		var row []float64
		ok := true
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			row = append(row, v)
		}
		if ok {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		t.Fatalf("no data rows in:\n%s", out)
	}
	return rows
}

func TestScaleUpNearFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := harness.Fig6ScaleUp("sssp", []int{8, 16, 24})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	rows := parseSeries(t, out, 2)
	last := rows[len(rows)-1][1]
	if last > 3 {
		t.Errorf("scale-up ratio %.2f degrades badly (want near flat)", last)
	}
}

func TestCFCaseRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := harness.CFCase()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	if !strings.Contains(out, "robustness") {
		t.Error("missing robustness sweep")
	}
}

func TestDatasetsWellFormed(t *testing.T) {
	for _, ds := range []harness.Dataset{
		harness.FriendsterSim(1), harness.TrafficSim(1), harness.UKWebSim(1),
		harness.MovieLensSim(1), harness.NetflixSim(1), harness.SyntheticSim(16, 1),
	} {
		if ds.Graph == nil || ds.Graph.NumVertices() == 0 {
			t.Errorf("%s: empty graph", ds.Name)
		}
		if ds.Name == "" {
			t.Error("dataset without name")
		}
	}
	if harness.Scale() < 1 {
		t.Error("Scale() < 1")
	}
}
