package harness

import "time"

// timeIt measures one invocation of fn in seconds.
func timeIt(fn func()) float64 {
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}
