package harness

import (
	"fmt"
	"strings"

	"aap/internal/algo/cc"
	"aap/internal/algo/cf"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/ref"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/sim"
	"aap/internal/vcentric"
)

// Row is one measured configuration.
type Row struct {
	System  string
	Seconds float64
	MB      float64
	Rounds  int32
	Msgs    int64
	Extra   string
}

// Table renders rows as an aligned text table.
func Table(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %12s %12s %10s %12s %s\n", "system", "time(s)", "comm(MB)", "maxround", "msgs", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12.3f %12.3f %10d %12d %s\n", r.System, r.Seconds, r.MB, r.Rounds, r.Msgs, r.Extra)
	}
	return b.String()
}

// Modes are the four parallel models compared throughout Exp-1/Exp-4.
func Modes() []core.Mode {
	return []core.Mode{core.AAP, core.BSP, core.AP, core.SSP}
}

// simRun executes one job under the virtual-time simulator and converts
// the stats to a Row. The partition carries the experiment's skew; the
// simulator prices rounds by the work the programs report.
func simRun[T any](name string, p *partition.Partitioned, job core.Job[T], cfg sim.Config) (Row, error) {
	res, err := sim.Run(p, job, cfg)
	if err != nil {
		return Row{}, err
	}
	st := res.Stats
	return Row{
		System:  name,
		Seconds: st.Seconds,
		MB:      float64(st.TotalBytes) / (1 << 20),
		Rounds:  st.MaxRound,
		Msgs:    st.TotalMsgs,
	}, nil
}

// SimModes runs job over p under all four models and returns one row per
// model, the controlled comparison of Exp-1 ("the same system under
// different modes, so results are not affected by implementation").
func SimModes[T any](p *partition.Partitioned, job core.Job[T], base sim.Config, staleness int) ([]Row, error) {
	var rows []Row
	for _, m := range Modes() {
		cfg := base
		cfg.Mode = m
		if m == core.SSP || m == core.AAP {
			cfg.Staleness = staleness
		}
		if m == core.SSP && staleness == 0 {
			cfg.Staleness = 2
		}
		name := "GRAPE+ (" + m.String() + ")"
		if m == core.AAP {
			name = "GRAPE+ (AAP)"
		}
		r, err := simRun(name, p, job, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// SkewPartition partitions ds for m workers with the experiment's default
// straggler profile (r = 3 unless overridden), mirroring the paper's
// reshuffled inputs.
func SkewPartition(ds Dataset, m int, ratio float64) (*partition.Partitioned, error) {
	return partition.Build(ds.Graph, m, partition.Skewed{Ratio: ratio, Seed: 131})
}

// Table1 reproduces Table 1: PageRank and SSSP on the Friendster
// stand-in, comparing the vertex-centric engines (the Giraph /
// GraphLab-sync row is "vcentric sync", GraphLab-async / Maiter is
// "vcentric async", PowerSwitch is "vcentric hsync") against GRAPE+
// under AAP. All engines here run wall-clock on the same machine.
func Table1(workers int) (string, error) {
	scale := Scale()
	ds := FriendsterSim(scale)
	und := graph.AsUndirected(ds.Graph)
	var out strings.Builder

	type vcSpec struct {
		name string
		mode vcentric.Mode
	}
	vcs := []vcSpec{
		{"vcentric sync (Giraph/GLsync)", vcentric.Sync},
		{"vcentric async (GLasync/Maiter)", vcentric.Async},
		{"vcentric hsync (PowerSwitch)", vcentric.HsyncMode},
	}

	// PageRank.
	var prRows []Row
	for _, v := range vcs {
		_, st, err := vcentric.Run(ds.Graph, vcentric.PageRankProgram{Tol: 1e-4}, vcentric.Options{Mode: v.mode, Shards: 8})
		if err != nil {
			return "", err
		}
		prRows = append(prRows, Row{System: v.name, Seconds: st.Seconds, MB: float64(st.Bytes) / (1 << 20), Msgs: st.Msgs, Rounds: int32(st.Supersteps)})
	}
	p, err := SkewPartition(ds, workers, 3)
	if err != nil {
		return "", err
	}
	res, err := core.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), core.Options{Mode: core.AAP})
	if err != nil {
		return "", err
	}
	prRows = append(prRows, Row{System: "GRAPE+ (AAP)", Seconds: res.Stats.Seconds, MB: float64(res.Stats.TotalBytes) / (1 << 20), Msgs: res.Stats.TotalMsgs, Rounds: res.Stats.MaxRound})
	out.WriteString(Table(fmt.Sprintf("Table 1 / PageRank on %s (%d workers)", ds.Name, workers), prRows))

	// SSSP.
	var spRows []Row
	for _, v := range vcs {
		_, st, err := vcentric.Run(ds.Graph, vcentric.SSSPProgram{Source: ds.Source}, vcentric.Options{Mode: v.mode, Shards: 8})
		if err != nil {
			return "", err
		}
		spRows = append(spRows, Row{System: v.name, Seconds: st.Seconds, MB: float64(st.Bytes) / (1 << 20), Msgs: st.Msgs, Rounds: int32(st.Supersteps)})
	}
	resS, err := core.Run(p, sssp.Job(ds.Source), core.Options{Mode: core.AAP})
	if err != nil {
		return "", err
	}
	spRows = append(spRows, Row{System: "GRAPE+ (AAP)", Seconds: resS.Stats.Seconds, MB: float64(resS.Stats.TotalBytes) / (1 << 20), Msgs: resS.Stats.TotalMsgs, Rounds: resS.Stats.MaxRound})
	out.WriteString("\n")
	out.WriteString(Table(fmt.Sprintf("Table 1 / SSSP on %s (%d workers)", ds.Name, workers), spRows))

	// Single-thread baselines (Exp-1's "single machine" remark).
	stSeconds := timeIt(func() { ref.PageRank(ds.Graph, 0.85, 1e-4, 200) })
	out.WriteString(fmt.Sprintf("\nsingle-thread PageRank: %.3fs, Dijkstra SSSP: %.3fs (CC union-find: %.3fs)\n",
		stSeconds,
		timeIt(func() { ref.SSSP(ds.Graph, ds.Source) }),
		timeIt(func() { ref.CC(und) })))
	return out.String(), nil
}

// Fig1 reproduces Figure 1: the Example 1/4 scenario — three workers
// computing CC over the chained-components graph of Fig 1(b), where P1
// and P2 take 3 time units per round, P3 takes 6, and messages take 1.
// It renders one timing diagram per model and reports makespans.
func Fig1() (string, error) {
	g, assign := fig1Graph()
	p, err := partition.Build(g, 3, fixedAssign(assign))
	if err != nil {
		return "", err
	}
	var out strings.Builder
	out.WriteString("Figure 1: CC on the Fig 1(b) graph; P1,P2 = 3u/round, P3 = 6u, latency 1u\n\n")
	for _, m := range Modes() {
		cfg := sim.Config{
			Mode:          m,
			Staleness:     1, // the paper's SSP run uses c = 1
			RoundOverhead: 3,
			WorkUnitCost:  0.25, // stale propagation costs real time
			MsgLatency:    1,
			Speed:         []float64{1, 1, 2},
			Trace:         true,
			LFloor:        2,
		}
		res, err := sim.Run(p, cc.Job(), cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "(%s) makespan %.0f units, rounds per worker %v\n", m, res.Stats.Seconds, sim.RoundsOf(res.Trace, 3))
		out.WriteString(sim.RenderTrace(res.Trace, 3, 64))
		out.WriteString("\n")
	}
	return out.String(), nil
}

// fig1Graph builds the Fig 1(b) workload: eight components C0..C7, each
// a 3-node path whose minimum id is its component number; cut edges chain
// C0-C1-C2-...-C7, so cid 0 must hop across every fragment boundary to
// reach C7 (5 BSP rounds in the paper). Components 1,3,5 live on P1;
// 2,4,6 on P2; 0,7 on the straggler P3 — intermediate cids reach C7
// before cid 0 does, which is exactly the stale work AAP's delay stretch
// lets P3 absorb in one accumulated round (Example 4).
func fig1Graph() (*graph.Graph, map[graph.VertexID]int32) {
	b := graph.NewBuilder(false)
	member := func(c, i int) graph.VertexID {
		if i == 0 {
			return graph.VertexID(c)
		}
		return graph.VertexID(100 + c*10 + i)
	}
	for c := 0; c < 8; c++ {
		b.AddEdge(member(c, 0), member(c, 1))
		b.AddEdge(member(c, 1), member(c, 2))
	}
	for c := 0; c < 7; c++ {
		b.AddEdge(member(c, 2), member(c+1, 0))
	}
	g := b.Build()
	assign := map[graph.VertexID]int32{}
	fragOf := map[int]int32{1: 0, 3: 0, 5: 0, 2: 1, 4: 1, 6: 1, 0: 2, 7: 2}
	for c := 0; c < 8; c++ {
		for i := 0; i < 3; i++ {
			assign[member(c, i)] = fragOf[c]
		}
	}
	return g, assign
}

// fixedAssign is a Strategy fixing each external id to a fragment.
type fixedAssign map[graph.VertexID]int32

// Name implements partition.Strategy.
func (fixedAssign) Name() string { return "fixed" }

// Assign implements partition.Strategy.
func (f fixedAssign) Assign(g *graph.Graph, m int) []int32 {
	out := make([]int32, g.NumVertices())
	for v := range out {
		out[v] = f[g.IDOf(int32(v))]
	}
	return out
}

// Fig6Workload identifies one of the eight worker-sweep panels of Fig 6.
type Fig6Workload struct {
	Panel   string
	Algo    string
	Dataset func(scale int) Dataset
}

// Fig6Panels lists panels (a)-(h).
func Fig6Panels() []Fig6Workload {
	return []Fig6Workload{
		{"a", "sssp", TrafficSim},
		{"b", "sssp", FriendsterSim},
		{"c", "cc", TrafficSim},
		{"d", "cc", FriendsterSim},
		{"e", "pagerank", FriendsterSim},
		{"f", "pagerank", UKWebSim},
		{"g", "cf", MovieLensSim},
		{"h", "cf", NetflixSim},
	}
}

// Fig6 runs one panel: time vs number of workers for the four models.
func Fig6(w Fig6Workload, workerCounts []int) (string, error) {
	ds := w.Dataset(Scale())
	var out strings.Builder
	fmt.Fprintf(&out, "Figure 6(%s): %s on %s, time (virtual s) vs workers\n", w.Panel, w.Algo, ds.Name)
	fmt.Fprintf(&out, "%-8s", "workers")
	for _, m := range Modes() {
		fmt.Fprintf(&out, " %10s", m)
	}
	out.WriteString("\n")
	for _, n := range workerCounts {
		rows, err := runPanel(w, ds, n)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%-8d", n)
		for _, r := range rows {
			fmt.Fprintf(&out, " %10.2f", r.Seconds)
		}
		out.WriteString("\n")
	}
	return out.String(), nil
}

func runPanel(w Fig6Workload, ds Dataset, workers int) ([]Row, error) {
	switch w.Algo {
	case "sssp":
		p, err := SkewPartition(ds, workers, 3)
		if err != nil {
			return nil, err
		}
		return SimModes(p, sssp.Job(ds.Source), sim.Config{}, 0)
	case "cc":
		und := Dataset{Name: ds.Name, Graph: graph.AsUndirected(ds.Graph)}
		p, err := SkewPartition(und, workers, 3)
		if err != nil {
			return nil, err
		}
		return SimModes(p, cc.Job(), sim.Config{}, 0)
	case "pagerank":
		p, err := SkewPartition(ds, workers, 3)
		if err != nil {
			return nil, err
		}
		return SimModes(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{}, 0)
	case "cf":
		p, err := SkewPartition(ds, workers, 3)
		if err != nil {
			return nil, err
		}
		cfg := cf.Config{Users: ds.Users, Products: ds.Prods, Rank: 8, Epochs: 12, Seed: 5}
		return SimModes(p, cf.Job(cfg), sim.Config{}, 4)
	default:
		return nil, fmt.Errorf("harness: unknown algo %q", w.Algo)
	}
}

// Fig6ScaleUp reproduces panels (i) and (j): workers and graph size grow
// together; the report shows the time ratio relative to the smallest
// configuration (flat = perfect scale-up).
func Fig6ScaleUp(algo string, workerCounts []int) (string, error) {
	var out strings.Builder
	fmt.Fprintf(&out, "Figure 6(%s): scale-up of %s (time ratio vs %d workers; 1.0 = perfect)\n",
		map[string]string{"sssp": "i", "pagerank": "j"}[algo], algo, workerCounts[0])
	fmt.Fprintf(&out, "%-8s %10s %12s\n", "workers", "|V|", "ratio")
	var base float64
	for i, n := range workerCounts {
		ds := SyntheticSim(n, Scale())
		p, err := SkewPartition(ds, n, 1)
		if err != nil {
			return "", err
		}
		var row Row
		switch algo {
		case "sssp":
			row, err = simRun("AAP", p, sssp.Job(ds.Source), sim.Config{Mode: core.AAP})
		case "pagerank":
			row, err = simRun("AAP", p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{Mode: core.AAP})
		default:
			err = fmt.Errorf("harness: unknown algo %q", algo)
		}
		if err != nil {
			return "", err
		}
		if i == 0 {
			base = row.Seconds
		}
		fmt.Fprintf(&out, "%-8d %10d %12.3f\n", n, ds.Graph.NumVertices(), row.Seconds/base)
	}
	return out.String(), nil
}

// Fig6k reproduces panel (k): the impact of partition skew r on SSSP
// under the four models.
func Fig6k(workers int, ratios []float64) (string, error) {
	ds := FriendsterSim(Scale())
	var out strings.Builder
	fmt.Fprintf(&out, "Figure 6(k): SSSP on %s, %d workers, time vs partition skew r\n", ds.Name, workers)
	fmt.Fprintf(&out, "%-8s", "r")
	for _, m := range Modes() {
		fmt.Fprintf(&out, " %10s", m)
	}
	out.WriteString("\n")
	for _, r := range ratios {
		p, err := SkewPartition(ds, workers, r)
		if err != nil {
			return "", err
		}
		rows, err := SimModes(p, sssp.Job(ds.Source), sim.Config{}, 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%-8.0f", r)
		for _, row := range rows {
			fmt.Fprintf(&out, " %10.2f", row.Seconds)
		}
		out.WriteString("\n")
	}
	return out.String(), nil
}

// Fig6l reproduces panel (l): PageRank on the large synthetic graph with
// many workers, reporting AAP's speedup over the other models.
func Fig6l(workerCounts []int) (string, error) {
	var out strings.Builder
	out.WriteString("Figure 6(l): PageRank on synthetic graphs, AAP speedup over each model\n")
	fmt.Fprintf(&out, "%-8s %10s %10s %10s\n", "workers", "vs BSP", "vs AP", "vs SSP")
	for _, n := range workerCounts {
		ds := SyntheticSim(n, Scale())
		p, err := SkewPartition(ds, n, 4)
		if err != nil {
			return "", err
		}
		rows, err := SimModes(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{}, 0)
		if err != nil {
			return "", err
		}
		aap := rows[0].Seconds
		fmt.Fprintf(&out, "%-8d %10.2f %10.2f %10.2f\n", n, rows[1].Seconds/aap, rows[2].Seconds/aap, rows[3].Seconds/aap)
	}
	return out.String(), nil
}

// Exp2Comm reproduces Exp-2: communication cost of the four models for a
// workload (bytes shipped, counted by the codec-size of every designated
// message).
func Exp2Comm(workers int) (string, error) {
	ds := FriendsterSim(Scale())
	p, err := SkewPartition(ds, workers, 3)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for _, algo := range []string{"sssp", "pagerank"} {
		var rows []Row
		switch algo {
		case "sssp":
			rows, err = SimModes(p, sssp.Job(ds.Source), sim.Config{}, 0)
		case "pagerank":
			rows, err = SimModes(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{}, 0)
		}
		if err != nil {
			return "", err
		}
		out.WriteString(Table(fmt.Sprintf("Exp-2: %s communication on %s (%d workers)", algo, ds.Name, workers), rows))
		out.WriteString("\n")
	}
	return out.String(), nil
}

// Fig7 reproduces the Appendix B PageRank case study: 32 workers, one
// 4x straggler (P12, index 11), timing diagrams for the four models plus
// per-model makespans and straggler round counts.
func Fig7() (string, error) {
	ds := FriendsterSim(Scale())
	p, err := SkewPartition(ds, 32, 1)
	if err != nil {
		return "", err
	}
	speed := make([]float64, 32)
	for i := range speed {
		speed[i] = 1
	}
	speed[11] = 4 // P12 is the straggler
	var out strings.Builder
	out.WriteString("Figure 7: PageRank, 32 workers, P12 is a 4x straggler\n\n")
	for _, m := range Modes() {
		cfg := sim.Config{Mode: m, Speed: speed, Trace: true, LFloor: 4}
		if m == core.SSP {
			cfg.Staleness = 5 // the paper's c = 5 run
		}
		res, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), cfg)
		if err != nil {
			return "", err
		}
		rounds := sim.RoundsOf(res.Trace, 32)
		fmt.Fprintf(&out, "(%s) makespan %.2f, straggler rounds %d, fastest-worker rounds %d\n",
			m, res.Stats.Seconds, rounds[11], maxInt(rounds))
		out.WriteString(sim.RenderTrace(res.Trace, 32, 72))
		out.WriteString("\n")
	}
	return out.String(), nil
}

// CFCase reproduces the Appendix B CF case study: rounds and time under
// the four models, and AAP's robustness to the staleness bound c.
func CFCase() (string, error) {
	ds := NetflixSim(Scale())
	p, err := SkewPartition(ds, 16, 2)
	if err != nil {
		return "", err
	}
	cfg := cf.Config{Users: ds.Users, Products: ds.Prods, Rank: 8, Epochs: 15, Seed: 7}
	var out strings.Builder
	out.WriteString("Appendix B: CF on netflix-sim, 16 workers\n")
	rows, err := SimModes(p, cf.Job(cfg), sim.Config{}, 4)
	if err != nil {
		return "", err
	}
	out.WriteString(Table("model comparison (c=4 where bounded staleness applies)", rows))
	out.WriteString("\nAAP robustness to the staleness bound c:\n")
	fmt.Fprintf(&out, "%-6s %12s %12s\n", "c", "AAP time", "SSP time")
	for _, c := range []int{2, 8, 32} {
		ra, err := simRun("AAP", p, cf.Job(cfg), sim.Config{Mode: core.AAP, Staleness: c})
		if err != nil {
			return "", err
		}
		rs, err := simRun("SSP", p, cf.Job(cfg), sim.Config{Mode: core.SSP, Staleness: c})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%-6d %12.2f %12.2f\n", c, ra.Seconds, rs.Seconds)
	}
	return out.String(), nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
