package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"aap/internal/graph"
	"aap/internal/par"
	"aap/internal/partition"
)

// withShards runs fn under a forced par.Override, restoring the
// process-wide flag even if fn panics.
func withShards(shards int, fn func()) {
	prev := par.Override
	par.Override = shards
	defer func() { par.Override = prev }()
	fn()
}

// withSlotTables runs fn under the given slot-table representation,
// restoring partition.DenseSlotTables even if fn panics.
func withSlotTables(dense bool, fn func()) {
	prev := partition.DenseSlotTables
	partition.DenseSlotTables = dense
	defer func() { partition.DenseSlotTables = prev }()
	fn()
}

// Ingest measures the streaming ingest pipeline end to end: file bytes
// → chunked parallel parse → partitioned fragments. It reports a
// forced-shard scaling row (cores 1/2/4/8 via par.Override — on a
// machine with fewer cores the extra rows measure fan-out overhead, not
// speedup) and the routing-table memory of the hybrid versus dense slot
// representations. With an empty inputPath it writes the friendster and
// traffic stand-ins to temp files first, so the run is self-contained;
// cmd/aapbench exposes it as -exp ingest [-input file].
func Ingest(inputPath string) (string, error) {
	type input struct {
		name string
		path string
	}
	var inputs []input
	if inputPath != "" {
		inputs = append(inputs, input{filepath.Base(inputPath), inputPath})
	} else {
		dir, err := os.MkdirTemp("", "aap-ingest")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		for _, ds := range []Dataset{FriendsterSim(Scale()), TrafficSim(Scale())} {
			path := filepath.Join(dir, ds.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				return "", err
			}
			err = graph.WriteEdgeList(f, ds.Graph)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return "", err
			}
			inputs = append(inputs, input{ds.Name, path})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "streaming ingest, GOMAXPROCS=%d (shard rows beyond the core count measure fan-out overhead, not speedup)\n",
		runtime.GOMAXPROCS(0))
	for _, in := range inputs {
		st, err := os.Stat(in.path)
		if err != nil {
			return "", err
		}
		mb := float64(st.Size()) / (1 << 20)
		var g *graph.Graph
		fmt.Fprintf(&b, "%s: %.1f MB on disk\n", in.name, mb)
		for _, shards := range []int{1, 2, 4, 8} {
			var rerr error
			var secs float64
			withShards(shards, func() {
				secs = timeIt(func() { g, rerr = graph.ReadEdgeListFile(in.path) })
			})
			if rerr != nil {
				return "", rerr
			}
			fmt.Fprintf(&b, "  read shards=%d: %7.3fs  %s\n",
				shards, secs, graph.Throughput(st.Size(), g.NumEdges(), secs))
		}
		for _, dense := range []bool{false, true} {
			var p *partition.Partitioned
			var perr error
			var secs float64
			withSlotTables(dense, func() {
				secs = timeIt(func() { p, perr = partition.Build(g, 16, partition.BFSLocality{}) })
			})
			if perr != nil {
				return "", perr
			}
			kind := "hybrid"
			if dense {
				kind = "dense"
			}
			fmt.Fprintf(&b, "  partition m=16 %-6s slots: %7.3fs  slot tables %8.3f MB  routing total %8.3f MB\n",
				kind, secs, float64(p.SlotTableBytes())/(1<<20), float64(p.RoutingTableBytes())/(1<<20))
		}
	}
	return b.String(), nil
}
