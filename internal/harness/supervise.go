package harness

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/partition"
	"aap/internal/supervise"
	"aap/internal/transport"
)

// The self-healing section of -exp chaos re-execs aapbench itself as a
// supervised worker host: the parent owns the victim through a
// Supervisor, chaos SIGKILLs the host from the round hook, and the
// supervision ladder must respawn + rejoin it while budget lasts and
// fail back locally past it — bit-identical output either way.
const (
	superviseChildAddrEnv    = "AAP_SUPERVISE_CHILD_ADDR"
	superviseChildWorkerEnv  = "AAP_SUPERVISE_CHILD_WORKER"
	superviseChildWorkersEnv = "AAP_SUPERVISE_CHILD_WORKERS"
	superviseChildIncEnv     = "AAP_SUPERVISE_CHILD_INC"
)

// superviseVictim is the worker whose host the chaos section owns.
const superviseVictim = 1

// SuperviseChildMain turns the current process into a supervised worker
// host when AAP_SUPERVISE_CHILD_ADDR is set, and returns immediately
// otherwise. cmd/aapbench calls it before flag parsing, next to
// DurableChildMain.
func SuperviseChildMain() {
	addr := os.Getenv(superviseChildAddrEnv)
	if addr == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "aapbench supervised host:", err)
		os.Exit(1)
	}
	worker, err := strconv.Atoi(os.Getenv(superviseChildWorkerEnv))
	if err != nil {
		fail(err)
	}
	workers, err := strconv.Atoi(os.Getenv(superviseChildWorkersEnv))
	if err != nil {
		fail(err)
	}
	inc, err := strconv.ParseUint(os.Getenv(superviseChildIncEnv), 10, 64)
	if err != nil {
		fail(err)
	}
	ds := FriendsterSim(Scale())
	p, err := partition.Build(ds.Graph, workers, partition.Hash{})
	if err != nil {
		fail(err)
	}
	topts := core.TransportOptions{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   80 * time.Millisecond,
		// The host must outlive the parent's recovery quiesce without
		// declaring the parent dead itself.
		DeadAfter:   2 * time.Second,
		Incarnation: inc,
	}
	if err := core.ServeWorker(p, sssp.Job(ds.Source), worker, addr, topts); err != nil {
		fail(err)
	}
	os.Exit(0)
}

// supervisedChaosRun runs one supervised job with the victim host
// SIGKILLed maxKills times (at most once per incarnation, from the
// round hook), returning the result and how many kills actually fired.
func supervisedChaosRun(p *partition.Partitioned, job core.Job[float64], workers, maxKills int, pol supervise.Policy) (*core.Result[float64], int, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, 0, err
	}
	spec := supervise.Spec{
		Worker: superviseVictim,
		Start: func(addr string, inc uint64) (*exec.Cmd, error) {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				superviseChildAddrEnv+"="+addr,
				superviseChildWorkerEnv+"="+strconv.Itoa(superviseVictim),
				superviseChildWorkersEnv+"="+strconv.Itoa(workers),
				superviseChildIncEnv+"="+strconv.FormatUint(inc, 10))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd, nil
		},
	}
	sup := supervise.New(pol, spec)
	defer sup.Stop()

	topts := core.TransportOptions{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   80 * time.Millisecond,
		DeadAfter:      250 * time.Millisecond,
		RemoteWorkers:  []int{superviseVictim},
		OnListen:       sup.OnListen,
		Supervisor:     sup,
	}
	var (
		mu      sync.Mutex
		kills   int
		shotInc uint64
	)
	res, err := core.Run(p, job, core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1},
		Transport:  &topts,
		RoundHook: func(worker int, round int32) {
			if worker != superviseVictim || round < 2 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if kills >= maxKills {
				return
			}
			// Once per incarnation: the round counter rewinds on
			// recovery, the incarnation number only moves forward.
			if inc := sup.Incarnation(superviseVictim); inc > shotInc {
				shotInc = inc
				kills++
				_ = sup.Kill(superviseVictim)
			}
		},
	})
	mu.Lock()
	fired := kills
	mu.Unlock()
	return res, fired, err
}

// supervision appends the self-healing section to the chaos report: one
// run with every kill inside the restart budget (all respawned and
// rejoined, zero failbacks) and one with a kill past it (budget
// exhausted, victim failed back to a local Program). Both must land
// bit-identical to the fault-free baseline.
func supervision(b *strings.Builder, p *partition.Partitioned, job core.Job[float64], base []float64, workers, maxRestarts int, backoffBase time.Duration) error {
	if workers <= superviseVictim {
		fmt.Fprintf(b, "\nself-healing: skipped (needs > %d workers)\n", superviseVictim)
		return nil
	}
	if maxRestarts < 1 {
		maxRestarts = 1
	}
	pol := supervise.Policy{
		MaxRestarts: maxRestarts,
		Backoff:     transport.Backoff{Base: backoffBase, Seed: 42},
	}
	fmt.Fprintf(b, "\nself-healing: supervised worker host (loopback TCP, SIGKILL victim=%d, max-restarts=%d):\n",
		superviseVictim, maxRestarts)
	fmt.Fprintf(b, "%-22s %10s %7s %9s %12s %10s %14s\n",
		"run", "time(s)", "kills", "restarts", "rejoin(ms)", "failbacks", "dropped-seals")

	row := func(name string, maxKills int, wantRestarts int64, wantFailback bool) error {
		res, kills, err := supervisedChaosRun(p, job, workers, maxKills, pol)
		if err != nil {
			return fmt.Errorf("self-healing: %s: %w", name, err)
		}
		if kills != maxKills {
			return fmt.Errorf("self-healing: %s: run finished after %d of %d kills", name, kills, maxKills)
		}
		if err := sameDistances(base, res.Values); err != nil {
			return fmt.Errorf("self-healing: %s: supervised run diverged from fault-free run: %w", name, err)
		}
		st := res.Stats
		if st.Restarts != wantRestarts {
			return fmt.Errorf("self-healing: %s: %d restarts, want %d", name, st.Restarts, wantRestarts)
		}
		if wantFailback && st.Failbacks < 1 {
			return fmt.Errorf("self-healing: %s: budget exhausted but no failback recorded", name)
		}
		if !wantFailback && st.Failbacks != 0 {
			return fmt.Errorf("self-healing: %s: unexpected failback (%d)", name, st.Failbacks)
		}
		fmt.Fprintf(b, "%-22s %10.3f %7d %9d %12.3f %10d %14d\n",
			name, st.Seconds, kills, st.Restarts, st.RejoinSeconds*1e3, st.Failbacks, st.DroppedSeals)
		return nil
	}

	if err := row(fmt.Sprintf("respawn x%d", maxRestarts), maxRestarts, int64(maxRestarts), false); err != nil {
		return err
	}
	if err := row("budget exhausted", maxRestarts+1, int64(maxRestarts), true); err != nil {
		return err
	}
	b.WriteString("all supervised runs bit-identical to the fault-free baseline\n")
	return nil
}
