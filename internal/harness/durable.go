package harness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aap/internal/algo/sssp"
	"aap/internal/checkpoint"
	"aap/internal/core"
	"aap/internal/partition"
)

// The durability half of -exp chaos re-execs aapbench itself as a
// victim process: the child runs the same SSSP job with every sealed
// epoch teed to a shared directory, the parent SIGKILLs it mid-run and
// resumes from whatever the disk holds — including after deliberately
// tearing or bit-flipping the newest record.
const (
	durableChildDirEnv     = "AAP_DURABLE_CHILD_DIR"
	durableChildWorkersEnv = "AAP_DURABLE_CHILD_WORKERS"
)

// DurableChildMain turns the current process into the durability
// victim when AAP_DURABLE_CHILD_DIR is set, and returns immediately
// otherwise. cmd/aapbench calls it before flag parsing so the child
// needs no arguments — only the two environment markers.
func DurableChildMain() {
	dir := os.Getenv(durableChildDirEnv)
	if dir == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "aapbench durable child:", err)
		os.Exit(1)
	}
	workers, err := strconv.Atoi(os.Getenv(durableChildWorkersEnv))
	if err != nil {
		fail(err)
	}
	ds := FriendsterSim(Scale())
	p, err := partition.Build(ds.Graph, workers, partition.Hash{})
	if err != nil {
		fail(err)
	}
	opts := core.Options{
		Mode:       core.AAP,
		Timeout:    time.Minute,
		Checkpoint: core.CheckpointOptions{EveryRounds: 1, Dir: dir, Retain: 8},
		// Stretch the run so the parent's SIGKILL lands mid-execution
		// rather than after completion.
		Latency: 2 * time.Millisecond,
	}
	if _, err := core.Run(p, sssp.Job(ds.Source), opts); err != nil {
		fail(err)
	}
	os.Exit(0)
}

// durability appends the crash-restart section to the chaos report:
// spawn the victim, wait for at least two sealed epochs on disk,
// SIGKILL it, then resume three ways — from the intact directory, from
// a copy with the newest record truncated, and from a copy with the
// newest record bit-flipped. The corrupted resumes must fall back to an
// older epoch; all three must land bit-identical to base.
func durability(b *strings.Builder, p *partition.Partitioned, job core.Job[float64], base []float64, workers int) error {
	dir, err := os.MkdirTemp("", "aap-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		durableChildDirEnv+"="+dir,
		durableChildWorkersEnv+"="+strconv.Itoa(workers))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}

	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if e, _, err := d.NewestSealed(); err == nil && e >= 2 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return fmt.Errorf("durability: victim sealed fewer than 2 epochs in 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()

	// Corruption copies are taken before the first resume — resuming
	// appends fresh epochs to the live directory.
	truncDir, err := copyCheckpointDir(dir)
	if err != nil {
		return err
	}
	defer os.RemoveAll(truncDir)
	flipDir, err := copyCheckpointDir(dir)
	if err != nil {
		return err
	}
	defer os.RemoveAll(flipDir)

	fmt.Fprintf(b, "\ndurability: crash-consistent records, whole-process SIGKILL + restart:\n")
	fmt.Fprintf(b, "%-22s %10s %11s %10s %12s %8s\n",
		"run", "time(s)", "from-epoch", "read(B)", "resume(ms)", "fsyncs")

	row := func(name, rdir string, wantBelow int32) error {
		opts := core.Options{
			Mode:       core.AAP,
			Timeout:    time.Minute,
			Checkpoint: core.CheckpointOptions{EveryRounds: 1, Dir: rdir, Retain: 8},
		}
		res, err := core.Resume(p, job, opts)
		if err != nil {
			return fmt.Errorf("durability: %s: %w", name, err)
		}
		if err := sameDistances(base, res.Values); err != nil {
			return fmt.Errorf("durability: %s: resumed run diverged from fault-free run: %w", name, err)
		}
		st := res.Stats
		if st.ResumeEpoch < 1 {
			return fmt.Errorf("durability: %s: resumed without a sealed epoch", name)
		}
		if wantBelow > 0 && st.ResumeEpoch >= wantBelow {
			return fmt.Errorf("durability: %s: resumed from epoch %d, want fallback below corrupted %d",
				name, st.ResumeEpoch, wantBelow)
		}
		fmt.Fprintf(b, "%-22s %10.3f %11d %10d %12.3f %8d\n",
			name, st.Seconds, st.ResumeEpoch, st.ResumeBytes, st.ResumeSeconds*1e3, st.FsyncCount)
		return nil
	}

	if err := row("sigkill+resume", dir, 0); err != nil {
		return err
	}
	newest, err := corruptNewestRecord(truncDir, true)
	if err != nil {
		return err
	}
	if err := row("truncated-tail", truncDir, newest); err != nil {
		return err
	}
	newest, err = corruptNewestRecord(flipDir, false)
	if err != nil {
		return err
	}
	if err := row("bitflipped-tail", flipDir, newest); err != nil {
		return err
	}
	b.WriteString("all resumed runs bit-identical to the fault-free baseline\n")
	return nil
}

func copyCheckpointDir(src string) (string, error) {
	dst, err := os.MkdirTemp("", "aap-durable-copy-")
	if err != nil {
		return "", err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

// corruptNewestRecord damages the newest record in dir — a torn tail
// (truncation) or a flipped payload byte — and returns its epoch so the
// caller can assert the resume fell back below it.
func corruptNewestRecord(dir string, truncate bool) (int32, error) {
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		return 0, err
	}
	es := d.Epochs()
	if len(es) < 2 {
		return 0, fmt.Errorf("need >= 2 epochs on disk to corrupt one, have %v", es)
	}
	newest := es[len(es)-1]
	p := filepath.Join(dir, checkpoint.RecordFile(newest))
	data, err := os.ReadFile(p)
	if err != nil {
		return 0, err
	}
	if truncate {
		data = data[:len(data)*2/3]
	} else {
		data[len(data)-5] ^= 0x20
	}
	return newest, os.WriteFile(p, data, 0o644)
}
