// Package harness drives the paper's evaluation (Section 7): it builds
// the stand-in datasets, runs every engine/mode combination, and formats
// the tables and figure series of the paper. Every experiment function
// returns a printable report; cmd/aapbench and the root benchmarks call
// them.
package harness

import (
	"fmt"
	"os"
	"strconv"

	"aap/internal/gen"
	"aap/internal/graph"
)

// Scale multiplies dataset sizes. 1 is the laptop default used by the
// benchmarks; the AAP_SCALE environment variable overrides it for larger
// runs on bigger machines.
func Scale() int {
	if s := os.Getenv("AAP_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// Dataset is one workload graph with its metadata.
type Dataset struct {
	Name   string
	Graph  *graph.Graph
	Source graph.VertexID // SSSP source
	// Ratings is set for the CF datasets.
	Ratings *gen.Ratings
	Users   int
	Prods   int
}

// FriendsterSim is the Friendster stand-in: a directed weighted
// power-law graph (65M nodes / 1.8B edges in the paper, scaled down
// here). Low diameter, heavy-tailed degrees.
func FriendsterSim(scale int) Dataset {
	n := 30000 * scale
	return Dataset{
		Name:   "friendster-sim",
		Graph:  gen.PowerLaw(n, 8, 2.1, true, 101),
		Source: 0,
	}
}

// TrafficSim is the US-road-network stand-in: an undirected weighted
// grid. High diameter, uniform degree — the workload where vertex-centric
// label correcting is weakest.
func TrafficSim(scale int) Dataset {
	side := 160 * scale
	return Dataset{
		Name:   "traffic-sim",
		Graph:  gen.Grid(side, side, 103),
		Source: 0,
	}
}

// RoadNetSim is the road-network stand-in with dispersed segment
// weights (gen.RoadNet): high diameter, long shortest-path trees, the
// workload of the SSSP delta axis in aapbench -exp compute. TrafficSim
// (a uniform-weight grid) remains the stand-in the paper's tables use.
func RoadNetSim(scale int) Dataset {
	side := 150 * scale
	return Dataset{
		Name:   "roadnet-sim",
		Graph:  gen.RoadNet(side, side, 131),
		Source: 0,
	}
}

// UKWebSim is the UKWeb stand-in: a denser directed power-law graph.
func UKWebSim(scale int) Dataset {
	n := 40000 * scale
	return Dataset{
		Name:   "ukweb-sim",
		Graph:  gen.PowerLaw(n, 14, 2.0, false, 107),
		Source: 0,
	}
}

// MovieLensSim is the movieLens stand-in bipartite rating graph.
func MovieLensSim(scale int) Dataset {
	users, prods := 2000*scale, 300
	r := gen.Bipartite(users, prods, 12, 8, 0.9, 109)
	return Dataset{Name: "movielens-sim", Graph: r.G, Ratings: r, Users: users, Prods: prods}
}

// NetflixSim is the Netflix stand-in bipartite rating graph.
func NetflixSim(scale int) Dataset {
	users, prods := 5000*scale, 600
	r := gen.Bipartite(users, prods, 16, 8, 0.9, 113)
	return Dataset{Name: "netflix-sim", Graph: r.G, Ratings: r, Users: users, Prods: prods}
}

// SyntheticSim is the GTgraph stand-in used by the scale-up and
// large-scale experiments: a power-law graph sized proportionally to the
// worker count (the paper uses up to 300M vertices / 10B edges).
func SyntheticSim(workers, scale int) Dataset {
	n := 400 * workers * scale
	return Dataset{
		Name:   fmt.Sprintf("synthetic-%dw", workers),
		Graph:  gen.PowerLaw(n, 8, 2.1, true, int64(127+workers)),
		Source: 0,
	}
}
