// Package supervise owns the lifecycle of remote worker hosts: it
// launches them from a spec, and when the transport's failure detector
// declares a host dead it respawns the process under a restart policy
// and hands the engine the new incarnation number to rejoin it.
//
// The supervisor is deliberately mechanism-only. It does not decide
// *when* a host is dead (the phi-accrual detector does), nor *how* its
// state comes back (the engine restores the Program from the newest
// sealed epoch over RPC and replays). It answers exactly one question —
// "may worker k have another process, and as which incarnation?" — and
// the answer is deterministic given the policy seed: the backoff jitter
// is a pure function of (seed, worker, attempt), reusing the transport
// retry schedule.
package supervise

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aap/internal/transport"
)

// Spec describes how to start one worker host. Start must launch the
// process (the returned Cmd is already running) serving the given
// worker against the parent's listen address, carrying the incarnation
// so its Hello can fence the dead predecessor's frames. A Spec may
// return a nil Cmd for in-process or test hosts.
type Spec struct {
	Worker int
	Start  func(addr string, incarnation uint64) (*exec.Cmd, error)
}

// Command builds a Spec that re-executes argv with the placeholders
// {addr}, {worker} and {incarnation} substituted in each argument, and
// env appended to the parent environment. This is the seed of a real
// launch registry: swap the exec for ssh and the spec still holds.
func Command(worker int, argv []string, env ...string) Spec {
	return Spec{
		Worker: worker,
		Start: func(addr string, inc uint64) (*exec.Cmd, error) {
			if len(argv) == 0 {
				return nil, fmt.Errorf("supervise: empty argv for worker %d", worker)
			}
			sub := strings.NewReplacer(
				"{addr}", addr,
				"{worker}", strconv.Itoa(worker),
				"{incarnation}", strconv.FormatUint(inc, 10),
			)
			args := make([]string, len(argv))
			for i, a := range argv {
				args[i] = sub.Replace(a)
			}
			cmd := exec.Command(args[0], args[1:]...)
			cmd.Env = append(os.Environ(), env...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd, nil
		},
	}
}

// Policy bounds the self-healing ladder's first rung: each host gets
// MaxRestarts respawns (default 2); past that the engine fails the
// worker back to a local Program. Backoff spaces the respawns — the
// same capped exponential + deterministic jitter the link layer uses
// for reconnects, so a flapping host cannot restart-storm. Seed the
// Backoff from the run seed to keep chaos schedules replayable.
type Policy struct {
	MaxRestarts int
	Backoff     transport.Backoff
}

func (p Policy) withDefaults() Policy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 2
	}
	if p.MaxRestarts < 0 {
		p.MaxRestarts = 0
	}
	return p
}

// HostReport is one host's supervision outcome.
type HostReport struct {
	Worker      int
	Incarnation uint64
	Restarts    int
	Exhausted   bool // restart budget spent; worker failed back
}

// Report summarises a run's supervision activity for CLIs and benches.
type Report struct {
	Hosts    []HostReport
	Restarts int
}

// Supervisor launches and respawns worker hosts. Safe for concurrent
// use; Respawn is typically driven by the engine's recovery goroutine
// while Kill is driven by chaos schedules.
type Supervisor struct {
	policy Policy

	mu      sync.Mutex
	logf    func(format string, args ...any)
	addr    string
	hosts   map[int]*host
	stopped bool
}

type host struct {
	spec      Spec
	inc       uint64
	cmd       *exec.Cmd
	restarts  int
	exhausted bool
}

// New builds a supervisor over the given host specs. Call Start (or
// wire OnListen into TransportOptions) to launch them.
func New(policy Policy, specs ...Spec) *Supervisor {
	s := &Supervisor{
		policy: policy.withDefaults(),
		logf:   func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		hosts:  make(map[int]*host, len(specs)),
	}
	for _, sp := range specs {
		s.hosts[sp.Worker] = &host{spec: sp}
	}
	return s
}

// SetLogger redirects supervision logs (default: stderr). Pass the
// test's Logf or a file writer; nil silences them.
func (s *Supervisor) SetLogger(logf func(format string, args ...any)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Start launches every host at incarnation 1 against the parent's
// listen address. It matches TransportOptions.OnListen's shape via
// OnListen, so the engine can trigger the launch as soon as its
// listener is bound.
func (s *Supervisor) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("supervise: supervisor stopped")
	}
	s.addr = addr
	var firstErr error
	for _, w := range s.workersLocked() {
		h := s.hosts[w]
		if h.cmd != nil || h.inc > 0 {
			continue
		}
		h.inc = 1
		if err := s.launchLocked(w, h); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// OnListen is Start with errors logged instead of returned, shaped for
// the engine's listen callback.
func (s *Supervisor) OnListen(addr string) {
	if err := s.Start(addr); err != nil {
		s.log("supervise: launch failed: %v", err)
	}
}

// Respawn implements the engine's restart policy hook. Called with the
// run quiesced when worker's host is declared dead, it spends one unit
// of restart budget: kill the corpse, wait out the jittered backoff,
// and launch the next incarnation. It returns that incarnation and true
// when a new process is (being) started, or false when the budget is
// exhausted and the engine should fail the worker back locally. A
// launch error still returns true — the engine's rejoin wait times out
// and the next Respawn spends the next unit of budget.
func (s *Supervisor) Respawn(worker int) (uint64, bool) {
	s.mu.Lock()
	h, ok := s.hosts[worker]
	if !ok || s.stopped {
		s.mu.Unlock()
		return 0, false
	}
	if h.restarts >= s.policy.MaxRestarts {
		h.exhausted = true
		max := s.policy.MaxRestarts
		s.mu.Unlock()
		s.log("supervise: worker %d restart budget exhausted (%d/%d); failing back", worker, max, max)
		return 0, false
	}
	attempt := h.restarts
	h.restarts++
	s.reapLocked(h)
	bo := s.policy.Backoff
	bo.Seed ^= uint64(worker+1) * 0x9E3779B97F4A7C15
	delay := bo.Delay(attempt)
	s.mu.Unlock()

	time.Sleep(delay)

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, false
	}
	h.inc++
	inc := h.inc
	err := s.launchLocked(worker, h)
	restarts, max := h.restarts, s.policy.MaxRestarts
	s.mu.Unlock()
	if err != nil {
		s.log("supervise: worker %d incarnation %d failed to launch: %v", worker, inc, err)
	} else {
		s.log("supervise: worker %d respawned as incarnation %d after %v (restart %d/%d)", worker, inc, delay, restarts, max)
	}
	return inc, true
}

// Kill SIGKILLs worker's current process — the chaos-schedule entry
// point. It does not touch the restart budget; the detector's death
// verdict drives Respawn.
func (s *Supervisor) Kill(worker int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hosts[worker]
	if !ok {
		return fmt.Errorf("supervise: no host for worker %d", worker)
	}
	if h.cmd == nil || h.cmd.Process == nil {
		return fmt.Errorf("supervise: worker %d has no live process", worker)
	}
	return h.cmd.Process.Kill()
}

// Incarnation returns worker's current launch incarnation (0 before
// the first Start). Chaos schedules use it to wait until a respawn has
// actually happened before killing again.
func (s *Supervisor) Incarnation(worker int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hosts[worker]; ok {
		return h.inc
	}
	return 0
}

// Stop kills every live host and refuses further respawns. Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	for _, h := range s.hosts {
		s.reapLocked(h)
	}
}

// Report snapshots supervision activity, hosts ordered by worker.
func (s *Supervisor) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	var r Report
	for _, w := range s.workersLocked() {
		h := s.hosts[w]
		r.Hosts = append(r.Hosts, HostReport{Worker: w, Incarnation: h.inc, Restarts: h.restarts, Exhausted: h.exhausted})
		r.Restarts += h.restarts
	}
	return r
}

func (s *Supervisor) workersLocked() []int {
	ws := make([]int, 0, len(s.hosts))
	for w := range s.hosts {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}

func (s *Supervisor) launchLocked(worker int, h *host) error {
	cmd, err := h.spec.Start(s.addr, h.inc)
	if err != nil {
		return err
	}
	h.cmd = cmd
	if cmd != nil {
		// Reap in the background so a kill never leaves a zombie.
		go func() { _ = cmd.Wait() }()
	}
	return nil
}

// reapLocked kills h's current process, if any. The spawn-time Wait
// goroutine collects the exit status.
func (s *Supervisor) reapLocked(h *host) {
	if h.cmd != nil && h.cmd.Process != nil {
		_ = h.cmd.Process.Kill()
	}
	h.cmd = nil
}

func (s *Supervisor) log(format string, args ...any) {
	s.mu.Lock()
	logf := s.logf
	s.mu.Unlock()
	logf(format, args...)
}
