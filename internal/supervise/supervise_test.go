package supervise

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"aap/internal/transport"
)

func quiet(s *Supervisor) *Supervisor {
	s.SetLogger(nil)
	return s
}

func TestRespawnBudget(t *testing.T) {
	// The ladder's first rung: MaxRestarts respawns with monotonically
	// increasing incarnations, then a hard false that triggers failback.
	var started []uint64
	sp := Spec{Worker: 3, Start: func(addr string, inc uint64) (*exec.Cmd, error) {
		started = append(started, inc)
		return nil, nil
	}}
	s := quiet(New(Policy{MaxRestarts: 2, Backoff: transport.Backoff{Base: time.Microsecond, Max: time.Microsecond}}, sp))
	if err := s.Start("addr:0"); err != nil {
		t.Fatal(err)
	}
	if inc, ok := s.Respawn(3); !ok || inc != 2 {
		t.Fatalf("first respawn: got (%d,%v) want (2,true)", inc, ok)
	}
	if inc, ok := s.Respawn(3); !ok || inc != 3 {
		t.Fatalf("second respawn: got (%d,%v) want (3,true)", inc, ok)
	}
	if inc, ok := s.Respawn(3); ok {
		t.Fatalf("past budget: got (%d,%v) want refusal", inc, ok)
	}
	wantStarts := []uint64{1, 2, 3}
	if len(started) != len(wantStarts) {
		t.Fatalf("starts: got %v want %v", started, wantStarts)
	}
	for i, inc := range wantStarts {
		if started[i] != inc {
			t.Fatalf("starts: got %v want %v", started, wantStarts)
		}
	}
	r := s.Report()
	if r.Restarts != 2 || len(r.Hosts) != 1 || !r.Hosts[0].Exhausted || r.Hosts[0].Incarnation != 3 {
		t.Fatalf("report: %+v", r)
	}
	if s.Incarnation(3) != 3 {
		t.Fatalf("incarnation: got %d want 3", s.Incarnation(3))
	}
}

func TestRespawnUnknownWorkerAndStopped(t *testing.T) {
	s := quiet(New(Policy{}, Spec{Worker: 0, Start: func(string, uint64) (*exec.Cmd, error) { return nil, nil }}))
	if _, ok := s.Respawn(7); ok {
		t.Fatal("respawned a worker with no spec")
	}
	s.Stop()
	if _, ok := s.Respawn(0); ok {
		t.Fatal("respawned after Stop")
	}
	if err := s.Start("addr"); err == nil {
		t.Fatal("Start after Stop succeeded")
	}
}

func TestLaunchErrorStillSpendsBudget(t *testing.T) {
	// A failing launch returns true (the engine's rejoin wait times out)
	// but each attempt consumes budget, so a dead launcher converges to
	// failback instead of looping forever.
	fails := 0
	sp := Spec{Worker: 0, Start: func(addr string, inc uint64) (*exec.Cmd, error) {
		if inc > 1 {
			fails++
			return nil, os.ErrNotExist
		}
		return nil, nil
	}}
	s := quiet(New(Policy{MaxRestarts: 2, Backoff: transport.Backoff{Base: time.Microsecond, Max: time.Microsecond}}, sp))
	if err := s.Start("addr:0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Respawn(0); !ok {
		t.Fatal("first respawn refused")
	}
	if _, ok := s.Respawn(0); !ok {
		t.Fatal("second respawn refused")
	}
	if _, ok := s.Respawn(0); ok {
		t.Fatal("third respawn allowed past budget")
	}
	if fails != 2 {
		t.Fatalf("launch attempts past incarnation 1: got %d want 2", fails)
	}
}

func TestBackoffDeterministicPerWorker(t *testing.T) {
	// Same seed → same schedule; distinct workers draw distinct jitter
	// streams so a multi-host die-off does not respawn in lockstep.
	bo := transport.Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	mix := func(worker int) transport.Backoff {
		b := bo
		b.Seed ^= uint64(worker+1) * 0x9E3779B97F4A7C15
		return b
	}
	if mix(0).Delay(0) != mix(0).Delay(0) {
		t.Fatal("same (seed, worker, attempt) gave different delays")
	}
	distinct := false
	for a := 0; a < 4; a++ {
		if mix(0).Delay(a) != mix(1).Delay(a) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("workers share a jitter stream")
	}
}

func TestCommandSubstitutesPlaceholders(t *testing.T) {
	out := filepath.Join(t.TempDir(), "launched")
	sp := Command(5, []string{"/bin/sh", "-c", "printf %s '{addr} {worker} {incarnation}' > " + out})
	s := quiet(New(Policy{}, sp))
	if err := s.Start("127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	var got []byte
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(out); err == nil && len(b) > 0 {
			got = b
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if want := "127.0.0.1:9 5 1"; string(got) != want {
		t.Fatalf("substituted argv wrote %q want %q", got, want)
	}
}

func TestKillWithoutProcess(t *testing.T) {
	s := quiet(New(Policy{}, Spec{Worker: 1, Start: func(string, uint64) (*exec.Cmd, error) { return nil, nil }}))
	if err := s.Kill(1); err == nil {
		t.Fatal("Kill with no live process succeeded")
	}
	if err := s.Kill(9); err == nil {
		t.Fatal("Kill of unknown worker succeeded")
	}
}
