// Hybrid slot tables: the owned contiguous range of a fragment maps to
// local slots arithmetically (v - Lo), and only the F.O copy set goes
// through a compact open-addressed table. That cuts the routing memory
// from O(n·m) — m dense length-n arrays — to O(n + Σ|F.O|), while
// keeping Slot an O(1) lookup on both the owned and the copy path.
//
// DenseSlotTables restores the PR 1 dense arrays for deployments that
// prefer the unconditional single-load lookup over the memory; the
// differential tests in dense_test.go pin both representations to the
// same reference behavior.
package partition

// DenseSlotTables switches Fragment slot lookup back to one dense
// length-n array per fragment (O(n·m) total memory, one load per
// lookup). It is read once per partition Build, so it is effectively a
// build-time constant; tests flip it to cover both representations.
var DenseSlotTables = false

// flatSlots is an open-addressed global-vertex→slot table over a
// fragment's F.O copy set. Entries pack key<<32|slot; keys are global
// vertex indexes (< 2^31), so an all-ones entry is a safe empty marker.
type flatSlots struct {
	entries []uint64
	mask    uint32
}

const flatSlotsEmpty = ^uint64(0)

// newFlatSlots builds the table for the sorted copy set out, mapping
// out[s] to base+s — the same slot numbering the dense table records.
func newFlatSlots(out []int32, base int32) flatSlots {
	if len(out) == 0 {
		return flatSlots{}
	}
	size := 8
	for size < len(out)*2 {
		size <<= 1
	}
	t := flatSlots{entries: make([]uint64, size), mask: uint32(size - 1)}
	for i := range t.entries {
		t.entries[i] = flatSlotsEmpty
	}
	for s, v := range out {
		i := t.hash(v)
		for t.entries[i] != flatSlotsEmpty {
			i = (i + 1) & t.mask
		}
		t.entries[i] = uint64(uint32(v))<<32 | uint64(uint32(base+int32(s)))
	}
	return t
}

func (t *flatSlots) hash(v int32) uint32 {
	return (uint32(v) * 2654435769) & t.mask
}

// get returns the slot of global vertex v, or -1 when v is not a copy —
// including ids outside the graph's vertex range (synthetic routing
// keys never collide because absent keys terminate on an empty slot).
func (t *flatSlots) get(v int32) int32 {
	if t.entries == nil {
		return -1
	}
	i := t.hash(v)
	for {
		e := t.entries[i]
		if e == flatSlotsEmpty {
			return -1
		}
		if int32(e>>32) == v {
			return int32(uint32(e))
		}
		i = (i + 1) & t.mask
	}
}

// SlotTableBytes reports the resident size of the per-fragment slot
// mappings alone — the structures the hybrid representation shrinks
// from O(n·m) to O(Σ|F.O|). The ingest benchmarks use it to compare
// the two representations.
func (p *Partitioned) SlotTableBytes() int64 {
	var total int64
	for _, f := range p.Frags {
		total += int64(len(f.slot))*4 + int64(len(f.copySlots.entries))*8
	}
	return total
}

// RoutingTableBytes reports the resident size of all routing
// structures: the dense owner array and CSR holder index (identical
// under both slot representations) plus SlotTableBytes.
func (p *Partitioned) RoutingTableBytes() int64 {
	total := int64(len(p.owner)) * 4
	total += int64(len(p.holderOff))*4 + int64(len(p.holderDat))*4
	return total + p.SlotTableBytes()
}
