// Package partition implements the edge-cut graph partitioning layer of
// the GRAPE/AAP model (Section 2 of the paper): strategies that assign
// vertices to fragments, the renumbering that makes each fragment a
// contiguous index range of the global graph, border sets
// (F.I, F.O, F.I', F.O'), and the routing index I_i that maps a border
// node to the fragments holding a copy of it.
package partition

import (
	"fmt"
	"sort"

	"aap/internal/graph"
)

// Strategy assigns each vertex of a graph to one of m fragments.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Assign returns, for every internal vertex of g, a fragment id in
	// [0, m).
	Assign(g *graph.Graph, m int) []int32
}

// Fragment is the per-worker view of a partitioned graph: the contiguous
// range of owned vertices plus the out-border copy set.
//
// Border sets follow the paper's notation for edge-cut partitions:
//
//	F.I  — owned vertices with an incoming edge from another fragment
//	F.O' — owned vertices with an outgoing edge to another fragment
//	F.O  — foreign vertices with an incoming edge from this fragment
//	       (this fragment holds a copy of them; they form the default
//	       candidate set C_i)
//	F.I' — foreign vertices with an outgoing edge into this fragment
type Fragment struct {
	ID int
	// Lo, Hi delimit the owned vertex range [Lo, Hi) in the renumbered
	// global graph.
	Lo, Hi int32

	// In is F.I, OutPrime is F.O', Out is F.O, InPrime is F.I'; all hold
	// global vertex indexes, sorted ascending.
	In       []int32
	OutPrime []int32
	Out      []int32
	InPrime  []int32

	// Slot routing is hybrid by default: owned vertices map
	// arithmetically (v - Lo) and the F.O copy set resolves through
	// copySlots, a compact open-addressed table (slots.go). slot is the
	// dense length-n alternative, built only under DenseSlotTables;
	// when present it covers owned vertices and copies alike.
	copySlots flatSlots
	slot      []int32

	p *Partitioned
}

// NumOwned returns the number of vertices owned by the fragment.
func (f *Fragment) NumOwned() int { return int(f.Hi - f.Lo) }

// Owns reports whether global vertex v is owned by the fragment.
func (f *Fragment) Owns(v int32) bool { return v >= f.Lo && v < f.Hi }

// OutSlot returns the dense slot of out-border copy v in [0, len(Out)),
// or -1 if v is not in F.O.
func (f *Fragment) OutSlot(v int32) int32 {
	if f.Owns(v) {
		return -1
	}
	if s := f.Slot(v); s >= 0 {
		return s - int32(f.NumOwned())
	}
	return -1
}

// Slots returns the number of local state slots of the fragment: owned
// vertices followed by the F.O copies. Programs size their per-vertex
// state by Slots rather than by the global vertex count.
func (f *Fragment) Slots() int { return f.NumOwned() + len(f.Out) }

// Slot maps global vertex v to its dense local slot: owned vertices map
// to [0, NumOwned) and F.O copies to [NumOwned, Slots). It returns -1
// when v is neither owned nor a copy, including synthetic ids outside
// the graph's vertex range (SendTo's arbitrary routing). Owned vertices
// resolve with two compares, copies with one probe of the compact
// table — or, under DenseSlotTables, one load from the dense array.
func (f *Fragment) Slot(v int32) int32 {
	if v >= f.Lo && v < f.Hi {
		return v - f.Lo
	}
	if f.slot != nil {
		if v < 0 || int(v) >= len(f.slot) {
			return -1
		}
		return f.slot[v]
	}
	return f.copySlots.get(v)
}

// Graph returns the renumbered global graph the fragment views.
func (f *Fragment) Graph() *graph.Graph { return f.p.G }

// Partitioned returns the partition the fragment belongs to.
func (f *Fragment) Partitioned() *Partitioned { return f.p }

// Partitioned is a graph partitioned into m fragments over a renumbered
// global graph. Fragment i owns the contiguous vertex range
// [Ranges[i], Ranges[i+1]).
//
// Immutability contract: after Build returns, a Partitioned — the
// graph, ranges, owner/routing tables, per-fragment slot tables and
// border sets — is read-only. This is what lets core.Session share one
// Partitioned across concurrently executing queries with no locking:
// per-query state lives entirely in the engine's vertex arenas, never
// here. Anything that wants different fragments (Relabel, a different
// m) builds a new Partitioned.
type Partitioned struct {
	G      *graph.Graph
	M      int
	Ranges []int32 // length M+1
	Frags  []*Fragment

	// owner is the dense vertex→fragment table: owner[v] is the fragment
	// id owning global vertex v. One array load replaces the former
	// binary search over Ranges on the per-Send hot path.
	owner []int32

	// holderOff/holderDat are the routing index I_i in CSR form: the
	// fragments holding a copy of vertex v are
	// holderDat[holderOff[v]:holderOff[v+1]], ascending. Two array loads
	// replace the former map[int32][]int32 lookup.
	holderOff []int32
	holderDat []int32

	// sizes[i] is ||F_i|| (owned vertices + owned edges), computed once
	// in Build so Skew never rescans degrees.
	sizes []float64

	strategy string
}

// Holders returns the fragments (other than the owner) holding a copy of
// vertex v in their F.O set — the routing index I_i of the paper, used to
// push an owner's canonical value back to every copy. Ids outside the
// vertex range (SendTo's synthetic routing keys) have no holders.
func (p *Partitioned) Holders(v int32) []int32 {
	if v < 0 || int(v) >= len(p.holderOff)-1 {
		return nil
	}
	return p.holderDat[p.holderOff[v]:p.holderOff[v+1]]
}

// Strategy returns the name of the strategy that produced the partition.
func (p *Partitioned) Strategy() string { return p.strategy }

// Owner returns the fragment id owning global vertex v. Ids outside the
// vertex range take the binary-search path, preserving the pre-dense
// behavior for synthetic routing keys.
func (p *Partitioned) Owner(v int32) int {
	if v < 0 || int(v) >= len(p.owner) {
		return p.ownerSearch(v)
	}
	return int(p.owner[v])
}

// Routing lookups stay O(1) at O(n + Σ|F.O|) memory: the owner table
// is one dense length-n array shared by the partition, and per-fragment
// slots are hybrid (arithmetic owned range + compact copy table, see
// slots.go). The former O(n·m) dense slot arrays survive behind
// DenseSlotTables.

// ownerSearch is the reference O(log m) owner lookup the dense table
// replaced; kept for the differential test.
func (p *Partitioned) ownerSearch(v int32) int {
	// Ranges is sorted; binary search for the fragment whose range holds v.
	i := sort.Search(p.M, func(i int) bool { return p.Ranges[i+1] > v })
	return i
}

// Skew returns ||F_max|| / ||F_median||, the imbalance measure r used in
// Exp-4 of the paper, with fragment size measured as owned vertices plus
// owned edges. Fragment sizes are precomputed in Build (each is one CSR
// offset subtraction), so Skew costs O(m log m) in fragments, not O(n).
func (p *Partitioned) Skew() float64 {
	sizes := append([]float64(nil), p.sizes...)
	sort.Float64s(sizes)
	med := sizes[p.M/2]
	if med == 0 {
		return 1
	}
	return sizes[p.M-1] / med
}

// Build partitions g into m fragments using the strategy: it assigns
// vertices, relabels the graph so each fragment owns a contiguous range,
// and computes border sets and the routing index.
func Build(g *graph.Graph, m int, s Strategy) (*Partitioned, error) {
	if m < 1 {
		return nil, fmt.Errorf("partition: need at least 1 fragment, got %d", m)
	}
	n := g.NumVertices()
	assign := s.Assign(g, m)
	if len(assign) != n {
		return nil, fmt.Errorf("partition: strategy %s returned %d assignments for %d vertices", s.Name(), len(assign), n)
	}
	counts := make([]int32, m+1)
	for _, fi := range assign {
		if fi < 0 || int(fi) >= m {
			return nil, fmt.Errorf("partition: strategy %s assigned invalid fragment %d", s.Name(), fi)
		}
		counts[fi+1]++
	}
	for i := 0; i < m; i++ {
		counts[i+1] += counts[i]
	}
	ranges := append([]int32(nil), counts...)

	// perm maps old index -> new index; fragment i occupies
	// [ranges[i], ranges[i+1]).
	perm := make([]int32, n)
	cursor := make([]int32, m)
	copy(cursor, ranges[:m])
	for v := 0; v < n; v++ {
		fi := assign[v]
		perm[v] = cursor[fi]
		cursor[fi]++
	}
	rg, err := graph.Relabel(g, perm)
	if err != nil {
		return nil, err
	}

	p := &Partitioned{G: rg, M: m, Ranges: ranges, strategy: s.Name()}
	p.owner = make([]int32, n)
	for i := 0; i < m; i++ {
		for v := ranges[i]; v < ranges[i+1]; v++ {
			p.owner[v] = int32(i)
		}
	}
	p.sizes = make([]float64, m)
	for i := 0; i < m; i++ {
		p.sizes[i] = float64(int64(ranges[i+1]-ranges[i]) + rg.OutSpan(ranges[i], ranges[i+1]))
	}
	p.Frags = make([]*Fragment, m)
	for i := 0; i < m; i++ {
		p.Frags[i] = &Fragment{ID: i, Lo: ranges[i], Hi: ranges[i+1], p: p}
	}
	// Hybrid slot routing needs no per-fragment prefill — the owned
	// range is arithmetic and the copy tables are built from the border
	// sets. Only the dense fallback materializes m length-n arrays.
	if DenseSlotTables {
		parFrags(p.M, func(i int) {
			f := p.Frags[i]
			f.slot = make([]int32, n)
			for v := range f.slot {
				f.slot[v] = -1
			}
			for v := f.Lo; v < f.Hi; v++ {
				f.slot[v] = v - f.Lo
			}
		})
	}
	p.computeBorders()
	return p, nil
}
