package partition_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

func strategies() []partition.Strategy {
	return []partition.Strategy{
		partition.Hash{},
		partition.Range{},
		partition.BFSLocality{Seed: 1},
		partition.Skewed{Ratio: 3, Seed: 2},
	}
}

func TestBuildCoversAllVertices(t *testing.T) {
	g := gen.PowerLaw(500, 4, 2.1, false, 3)
	for _, s := range strategies() {
		for _, m := range []int{1, 2, 7, 16} {
			p, err := partition.Build(g, m, s)
			if err != nil {
				t.Fatalf("%s m=%d: %v", s.Name(), m, err)
			}
			if p.M != m || len(p.Frags) != m {
				t.Fatalf("%s: wrong fragment count", s.Name())
			}
			total := 0
			for i, f := range p.Frags {
				if f.Lo != p.Ranges[i] || f.Hi != p.Ranges[i+1] {
					t.Fatalf("%s: fragment %d range mismatch", s.Name(), i)
				}
				total += f.NumOwned()
			}
			if total != g.NumVertices() {
				t.Fatalf("%s m=%d: owned %d of %d vertices", s.Name(), m, total, g.NumVertices())
			}
		}
	}
}

func TestOwnerMatchesRanges(t *testing.T) {
	g := gen.Grid(20, 20, 5)
	p, err := partition.Build(g, 5, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(p.G.NumVertices()); v++ {
		o := p.Owner(v)
		if !p.Frags[o].Owns(v) {
			t.Fatalf("Owner(%d)=%d but fragment does not own it", v, o)
		}
	}
}

// TestBorderSetsMatchBruteForce recomputes the four border sets by
// definition and compares, for random graphs and strategies.
func TestBorderSetsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := gen.Random(n, n*3, false, seed)
		m := 2 + rng.Intn(5)
		p, err := partition.Build(g, m, partition.Hash{})
		if err != nil {
			return false
		}
		for _, f := range p.Frags {
			in := map[int32]bool{}
			outPrime := map[int32]bool{}
			out := map[int32]bool{}
			inPrime := map[int32]bool{}
			for v := int32(0); v < int32(p.G.NumVertices()); v++ {
				for _, u := range p.G.Out(v) {
					if p.Owner(v) == p.Owner(u) {
						continue
					}
					if p.Owner(v) == f.ID {
						outPrime[v] = true
						out[u] = true
					}
					if p.Owner(u) == f.ID {
						in[u] = true
						inPrime[v] = true
					}
				}
			}
			if !sameSet(f.In, in) || !sameSet(f.OutPrime, outPrime) || !sameSet(f.Out, out) || !sameSet(f.InPrime, inPrime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sameSet(got []int32, want map[int32]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, v := range got {
		if !want[v] {
			return false
		}
	}
	return true
}

func TestSlotsAndSlotMapping(t *testing.T) {
	g := gen.Grid(10, 10, 7)
	p, err := partition.Build(g, 4, partition.Range{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Frags {
		if f.Slots() != f.NumOwned()+len(f.Out) {
			t.Fatalf("Slots() inconsistent")
		}
		seen := map[int32]bool{}
		for v := f.Lo; v < f.Hi; v++ {
			s := f.Slot(v)
			if s < 0 || int(s) >= f.NumOwned() || seen[s] {
				t.Fatalf("owned slot %d invalid", s)
			}
			seen[s] = true
		}
		for _, v := range f.Out {
			s := f.Slot(v)
			if int(s) < f.NumOwned() || int(s) >= f.Slots() || seen[s] {
				t.Fatalf("copy slot %d invalid", s)
			}
			seen[s] = true
			if f.OutSlot(v) != s-int32(f.NumOwned()) {
				t.Fatalf("OutSlot disagrees with Slot")
			}
		}
		// Vertices neither owned nor copies map to -1.
		for v := int32(0); v < int32(p.G.NumVertices()); v++ {
			if !f.Owns(v) && f.OutSlot(v) < 0 && f.Slot(v) != -1 {
				t.Fatalf("foreign vertex %d has slot %d", v, f.Slot(v))
			}
		}
	}
}

func TestHoldersInverseOfOut(t *testing.T) {
	g := gen.PowerLaw(200, 5, 2.1, false, 9)
	p, err := partition.Build(g, 6, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	// v is in fragment j's Out set iff j is in Holders(v).
	for j, f := range p.Frags {
		for _, v := range f.Out {
			found := false
			for _, h := range p.Holders(v) {
				if int(h) == j {
					found = true
				}
			}
			if !found {
				t.Fatalf("fragment %d holds %d but Holders misses it", j, v)
			}
		}
	}
	for v := int32(0); v < int32(p.G.NumVertices()); v++ {
		for _, h := range p.Holders(v) {
			if p.Frags[h].OutSlot(v) < 0 {
				t.Fatalf("Holders(%d) lists %d which has no copy", v, h)
			}
		}
	}
}

func TestRelabelPreservesGraphSemantics(t *testing.T) {
	g := gen.PowerLaw(300, 4, 2.1, true, 11)
	p, err := partition.Build(g, 8, partition.BFSLocality{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.G.NumVertices() != g.NumVertices() || p.G.NumEdges() != g.NumEdges() {
		t.Fatal("partitioned graph changed size")
	}
	// Spot-check per-vertex out-degree via external ids.
	for v := int32(0); v < int32(g.NumVertices()); v += 17 {
		id := g.IDOf(v)
		pv, ok := p.G.IndexOf(id)
		if !ok {
			t.Fatalf("vertex %d lost", id)
		}
		if p.G.OutDegree(pv) != g.OutDegree(v) {
			t.Fatalf("degree of %d changed", id)
		}
	}
}

func TestSkewedPartitionRatio(t *testing.T) {
	g := gen.PowerLaw(5000, 6, 2.1, false, 13)
	for _, ratio := range []float64{1, 3, 5, 7, 9} {
		p, err := partition.Build(g, 8, partition.Skewed{Ratio: ratio, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := p.Skew()
		if ratio == 1 {
			if got > 2.5 {
				t.Errorf("ratio 1: skew %v too high", got)
			}
			continue
		}
		if got < ratio*0.6 || got > ratio*1.6 {
			t.Errorf("requested skew %v, got %v", ratio, got)
		}
	}
}

func TestSkewMonotone(t *testing.T) {
	g := gen.PowerLaw(3000, 5, 2.1, false, 17)
	prev := 0.0
	for _, ratio := range []float64{1, 3, 5, 9} {
		p, err := partition.Build(g, 6, partition.Skewed{Ratio: ratio, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Skew()
		if s+0.5 < prev {
			t.Errorf("skew not monotone: ratio %v gave %v after %v", ratio, s, prev)
		}
		prev = s
	}
}

func TestBuildErrors(t *testing.T) {
	g := gen.Grid(3, 3, 1)
	if _, err := partition.Build(g, 0, partition.Hash{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := partition.Build(g, 2, badStrategy{}); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := partition.Build(g, 2, shortStrategy{}); err == nil {
		t.Error("short assignment accepted")
	}
}

type badStrategy struct{}

func (badStrategy) Name() string { return "bad" }
func (badStrategy) Assign(g *graph.Graph, m int) []int32 {
	return make([]int32, g.NumVertices()+1)
}

type shortStrategy struct{}

func (shortStrategy) Name() string { return "short" }
func (shortStrategy) Assign(g *graph.Graph, m int) []int32 {
	out := make([]int32, g.NumVertices())
	for i := range out {
		out[i] = int32(m) // out of range
	}
	return out
}

func TestMoreFragmentsThanVertices(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddEdge(0, 1)
	g := b.Build()
	p, err := partition.Build(g, 5, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for _, f := range p.Frags {
		owned += f.NumOwned()
	}
	if owned != 2 {
		t.Fatalf("owned %d, want 2", owned)
	}
	if p.Skew() < 1 {
		t.Error("skew below 1")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range strategies() {
		if s.Name() == "" {
			t.Error("empty strategy name")
		}
	}
	g := gen.Grid(4, 4, 1)
	p, _ := partition.Build(g, 2, partition.Hash{})
	if p.Strategy() != "hash" {
		t.Errorf("Strategy() = %q", p.Strategy())
	}
}
