// Border-set computation as a parallel, map-free edge sweep.
//
// The former implementation routed every cross-fragment edge through four
// map[int32]bool inserts; this one sets four bits in per-fragment dense
// bitsets over the vertex range (idempotent, so the parallel sweep needs
// only atomic OR, and compaction by ascending scan yields the sorted
// border slices for free). The map implementation is retained in
// borders_ref.go and pinned by the differential tests in borders_test.go.
package partition

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"aap/internal/par"
)

// bordersShardEdges is the minimum edge span per sweep shard before
// another worker is added.
const bordersShardEdges = 1 << 15

// parFrags runs fn(0..m-1) across min(GOMAXPROCS, m) goroutines.
func parFrags(m int, fn func(i int)) {
	p := par.Procs(int64(m), 1)
	if p > m {
		p = m
	}
	par.Do(p, func(w int) {
		for i := w; i < m; i += p {
			fn(i)
		}
	})
}

// The four border-set kinds, in fragment-arena order.
const (
	kIn = iota
	kOutPrime
	kOut
	kInPrime
	kinds
)

// computeBorders fills the four border sets of each fragment from the
// renumbered graph, assigns F.O copy slots, and builds the CSR holder
// index.
func (p *Partitioned) computeBorders() {
	n := p.G.NumVertices()
	words := (n + 63) / 64
	// One arena holds all 4*M bitsets; fragment i's set of kind k is
	// arena[(i*kinds+k)*words : ...+words].
	arena := make([]uint64, kinds*p.M*words)
	bitset := func(frag, kind int) []uint64 {
		o := (frag*kinds + kind) * words
		return arena[o : o+words]
	}

	procs := par.Procs(p.G.OutSpan(0, int32(n)), bordersShardEdges)
	vb := p.G.OutShards(procs)
	set := setBitAtomic
	if procs == 1 {
		set = setBit // uncontended sweep skips the atomics
	}
	par.Do(procs, func(w int) {
		p.sweepBorders(vb[w], vb[w+1], arena, words, set)
	})

	// Popcount pass: per-fragment border sizes. The scan is uniform
	// (every fragment owns the same 4·words), so fragment-strided
	// parallelism is already balanced here.
	cnts := make([]int, kinds*p.M)
	parFrags(p.M, func(i int) {
		for k := 0; k < kinds; k++ {
			c := 0
			for _, w := range bitset(i, k) {
				c += bits.OnesCount64(w)
			}
			cnts[i*kinds+k] = c
		}
	})

	// Compact each fragment's bitsets into the sorted border slices and
	// build its copy-slot table. Compaction cost is dominated by the
	// border sizes, not the fragment count, so fragments are scheduled
	// largest-first from a shared counter: a single huge-F.O straggler
	// starts immediately while the small fragments pack around it,
	// instead of serializing whatever a fragment-strided split queued
	// behind it.
	weight := make([]int, p.M)
	order := make([]int, p.M)
	for i := range order {
		weight[i] = cnts[i*kinds] + cnts[i*kinds+1] + cnts[i*kinds+2] + cnts[i*kinds+3]
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if wa, wb := weight[order[a]], weight[order[b]]; wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	cprocs := par.Procs(int64(p.M), 1)
	if cprocs > p.M {
		cprocs = p.M
	}
	var nextFrag atomic.Int32
	par.Do(cprocs, func(int) {
		for {
			oi := int(nextFrag.Add(1)) - 1
			if oi >= p.M {
				return
			}
			i := order[oi]
			f := p.Frags[i]
			f.In = collectBitsN(bitset(i, kIn), cnts[i*kinds+kIn])
			f.OutPrime = collectBitsN(bitset(i, kOutPrime), cnts[i*kinds+kOutPrime])
			f.Out = collectBitsN(bitset(i, kOut), cnts[i*kinds+kOut])
			f.InPrime = collectBitsN(bitset(i, kInPrime), cnts[i*kinds+kInPrime])
			base := int32(f.NumOwned())
			if f.slot != nil {
				for s, v := range f.Out {
					f.slot[v] = base + int32(s)
				}
			} else {
				f.copySlots = newFlatSlots(f.Out, base)
			}
		}
	})

	// Holder index: invert the F.O sets into CSR form. Fragments are
	// visited in ascending id order, so each vertex's holder list comes
	// out sorted, matching the old append order.
	hoff := make([]int32, n+1)
	for _, f := range p.Frags {
		for _, v := range f.Out {
			hoff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		hoff[v+1] += hoff[v]
	}
	hdat := make([]int32, hoff[n])
	cursor := append([]int32(nil), hoff[:n]...)
	for i, f := range p.Frags {
		for _, v := range f.Out {
			hdat[cursor[v]] = int32(i)
			cursor[v]++
		}
	}
	p.holderOff, p.holderDat = hoff, hdat
}

// sweepBorders marks the border bits induced by out-edges of vertices in
// [lo, hi). set is setBit for the single-worker sweep and setBitAtomic
// for the shared-arena parallel sweep; bit-setting is idempotent and
// commutative, so the parallel result is schedule-independent.
func (p *Partitioned) sweepBorders(lo, hi int32, arena []uint64, words int, set func([]uint64, int32)) {
	for v := lo; v < hi; v++ {
		fv := p.owner[v]
		for _, u := range p.G.Out(v) {
			fu := p.owner[u]
			if fu == fv {
				continue
			}
			// Edge v->u crosses fragments fv -> fu.
			fvo := int(fv) * kinds * words
			fuo := int(fu) * kinds * words
			set(arena[fvo+kOutPrime*words:fvo+(kOutPrime+1)*words], v)
			set(arena[fvo+kOut*words:fvo+(kOut+1)*words], u)
			set(arena[fuo+kIn*words:fuo+(kIn+1)*words], u)
			set(arena[fuo+kInPrime*words:fuo+(kInPrime+1)*words], v)
		}
	}
}

func setBit(ws []uint64, v int32) {
	ws[v>>6] |= 1 << (uint(v) & 63)
}

// setBitAtomic checks before the read-modify-write: border bits are set
// many times (once per cross edge touching the vertex), and the plain
// load skips the contended OR on every hit after the first.
func setBitAtomic(ws []uint64, v int32) {
	w := &ws[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	if atomic.LoadUint64(w)&mask == 0 {
		atomic.OrUint64(w, mask)
	}
}

// collectBitsN compacts a bitset into the ascending slice of set
// indexes; cnt is the bitset's popcount, already known from the sizing
// pass, so compaction never rescans what was counted.
func collectBitsN(ws []uint64, cnt int) []int32 {
	if cnt == 0 {
		return nil
	}
	out := make([]int32, 0, cnt)
	for wi, w := range ws {
		for w != 0 {
			out = append(out, int32(wi*64+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}
