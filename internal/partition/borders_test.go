package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/par"
)

// forceBorderShards makes the border sweep and fragment fan-out run with
// p workers regardless of GOMAXPROCS, exercising the atomic bitset path
// on single-core machines.
func forceBorderShards(t *testing.T, p int) {
	t.Helper()
	prev := par.Override
	par.Override = p
	t.Cleanup(func() { par.Override = prev })
}

// TestBordersMatchMapReference is the differential test pinning the
// bitset border pipeline to the retained map-based implementation:
// identical sorted border sets, identical slot assignment, identical
// holder lists — across directed and undirected graphs, self-loops,
// parallel edges, every strategy, and m=1 (empty borders).
func TestBordersMatchMapReference(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"powerlaw-directed", gen.PowerLaw(400, 5, 2.1, true, 21)},
		{"grid-undirected", gen.Grid(15, 15, 22)},
		{"random-directed", gen.Random(200, 1200, false, 23)},
		{"selfloop-parallel", selfLoopParallelGraph()},
	}
	strategies := []Strategy{Hash{}, Range{}, BFSLocality{Seed: 5}, Skewed{Ratio: 4, Seed: 5}}
	for _, procs := range []int{1, 4} {
		forceBorderShards(t, procs)
		for _, c := range cases {
			for _, m := range []int{1, 2, 7} {
				for _, s := range strategies {
					p, err := Build(c.g, m, s)
					if err != nil {
						t.Fatalf("%s/%s/m=%d: %v", c.name, s.Name(), m, err)
					}
					tag := fmt.Sprintf("procs=%d/%s/%s/m=%d", procs, c.name, s.Name(), m)
					checkAgainstRef(t, tag, p)
				}
			}
		}
	}
}

// selfLoopParallelGraph is a small directed graph dense in self-loops and
// parallel cross edges.
func selfLoopParallelGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(true)
	b.SetWeighted()
	for i := 0; i < 40; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < 300; e++ {
		s := int32(rng.Intn(40))
		d := int32(rng.Intn(40))
		if e%7 == 0 {
			d = s // self-loop
		}
		b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), float64(e))
		if e%5 == 0 {
			b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), float64(e)+0.5)
		}
	}
	return b.Build()
}

func checkAgainstRef(t *testing.T, tag string, p *Partitioned) {
	t.Helper()
	ref := p.bordersRef()
	eq := func(kind string, frag int, got, want []int32) {
		if len(got) != len(want) {
			t.Fatalf("%s: frag %d %s: %d entries, want %d", tag, frag, kind, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: frag %d %s[%d] = %d, want %d", tag, frag, kind, i, got[i], want[i])
			}
		}
	}
	for i, f := range p.Frags {
		eq("In", i, f.In, ref.in[i])
		eq("OutPrime", i, f.OutPrime, ref.outPrime[i])
		eq("Out", i, f.Out, ref.out[i])
		eq("InPrime", i, f.InPrime, ref.inPrime[i])
		// Slot table: owned range, then F.O copies in Out order, -1
		// everywhere else.
		base := int32(f.NumOwned())
		want := make(map[int32]int32)
		for v := f.Lo; v < f.Hi; v++ {
			want[v] = v - f.Lo
		}
		for s, v := range ref.out[i] {
			want[v] = base + int32(s)
		}
		for v := int32(0); v < int32(p.G.NumVertices()); v++ {
			w, ok := want[v]
			if !ok {
				w = -1
			}
			if got := f.Slot(v); got != w {
				t.Fatalf("%s: frag %d Slot(%d) = %d, want %d", tag, i, v, got, w)
			}
		}
	}
	n := int32(p.G.NumVertices())
	for v := int32(-2); v < n+2; v++ {
		got := p.Holders(v)
		want := ref.holders[v]
		if len(got) != len(want) {
			t.Fatalf("%s: Holders(%d): %v, want %v", tag, v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: Holders(%d): %v, want %v", tag, v, got, want)
			}
		}
	}
}

// TestSkewedCompactionMatchesReference pins the largest-first
// compaction schedule on the case it exists for: a partition where one
// fragment's border sets dwarf the rest (hub-heavy power-law graph,
// skewed strategy). The schedule only reorders work, so every border
// set, slot table, and holder list must still match the map reference
// — under single- and multi-worker compaction and both slot-table
// representations.
func TestSkewedCompactionMatchesReference(t *testing.T) {
	g := gen.PowerLaw(1500, 10, 2.0, true, 41)
	for _, dense := range []bool{false, true} {
		forceSlotTables(t, dense)
		for _, procs := range []int{1, 5} {
			forceBorderShards(t, procs)
			for _, m := range []int{4, 13} {
				p, err := Build(g, m, Skewed{Ratio: 8, Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstRef(t, fmt.Sprintf("skewed/dense=%v/procs=%d/m=%d", dense, procs, m), p)
			}
		}
	}
}

// TestSkewMatchesRecompute pins the precomputed fragment sizes to a
// from-scratch degree scan.
func TestSkewMatchesRecompute(t *testing.T) {
	g := gen.PowerLaw(800, 6, 2.1, false, 31)
	for _, m := range []int{1, 4, 9} {
		for _, s := range []Strategy{Hash{}, Skewed{Ratio: 5, Seed: 2}} {
			p, err := Build(g, m, s)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range p.Frags {
				var edges int64
				for v := f.Lo; v < f.Hi; v++ {
					edges += int64(p.G.OutDegree(v))
				}
				want := float64(int64(f.NumOwned()) + edges)
				if p.sizes[i] != want {
					t.Fatalf("m=%d %s: sizes[%d] = %v, want %v", m, s.Name(), i, p.sizes[i], want)
				}
			}
		}
	}
}
