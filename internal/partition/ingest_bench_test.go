package partition_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"aap/internal/graph"
	"aap/internal/partition"
)

// benchGraph builds the partition-bench input once: a directed weighted
// power-law graph shaped like the harness datasets.
func benchGraph(n, deg int) *graph.Graph {
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.Reserve(n, n*deg)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < n*deg; e++ {
		f := rng.Float64()
		s := int32(f * f * float64(n))
		d := int32(rng.Intn(n))
		if s == d {
			d = (d + 1) % int32(n)
		}
		b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*99)
	}
	return b.Build()
}

// BenchmarkPartitionBuild measures the full partition pipeline (assign +
// relabel + border sets + routing tables) with the hash strategy, the
// worst case for border-set size.
func BenchmarkPartitionBuild(b *testing.B) {
	g := benchGraph(150_000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := partition.Build(g, 16, partition.Hash{})
		if err != nil {
			b.Fatal(err)
		}
		if p.M != 16 {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkIngestEndToEnd is the acceptance benchmark: CSR build plus the
// full partition pipeline, everything between "edges in memory" and "engine
// ready to run".
func BenchmarkIngestEndToEnd(b *testing.B) {
	n, deg := 150_000, 16
	rng := rand.New(rand.NewSource(42))
	bld := graph.NewBuilder(true)
	bld.SetWeighted()
	bld.Reserve(n, n*deg)
	for i := 0; i < n; i++ {
		bld.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < n*deg; e++ {
		f := rng.Float64()
		s := int32(f * f * float64(n))
		d := int32(rng.Intn(n))
		if s == d {
			d = (d + 1) % int32(n)
		}
		bld.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*99)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bld.Build()
		p, err := partition.Build(g, 16, partition.Hash{})
		if err != nil {
			b.Fatal(err)
		}
		if p.M != 16 {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkFileToFragments is the full ingest path the streaming loader
// targets: file bytes through the chunked parallel parse, sharded
// intern, CSR build, and the partition pipeline, to engine-ready
// fragments.
func BenchmarkFileToFragments(b *testing.B) {
	g := benchGraph(150_000, 16)
	path := filepath.Join(b.TempDir(), "bench.txt")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, err := graph.ReadEdgeListFile(path)
		if err != nil {
			b.Fatal(err)
		}
		p, err := partition.Build(g2, 16, partition.Hash{})
		if err != nil {
			b.Fatal(err)
		}
		if p.M != 16 {
			b.Fatal("bad partition")
		}
	}
}
