package partition

import (
	"testing"

	"aap/internal/gen"
)

// TestDenseTablesMatchReference verifies, on partitioned random graphs
// across strategies and fragment counts, that the dense owner and slot
// tables agree with the reference lookups they replaced: binary search
// over Ranges for Owner, and the F.O map reconstructed from each
// fragment's border set for Slot/OutSlot.
func TestDenseTablesMatchReference(t *testing.T) {
	graphs := []struct {
		name string
		gen  func() *Partitioned
	}{}
	for _, m := range []int{1, 3, 8} {
		for _, s := range []Strategy{Hash{}, Range{}, BFSLocality{Seed: 5}, Skewed{Ratio: 4, Seed: 5}} {
			m, s := m, s
			graphs = append(graphs, struct {
				name string
				gen  func() *Partitioned
			}{
				name: s.Name(),
				gen: func() *Partitioned {
					g := gen.Random(500, 3000, false, 11)
					p, err := Build(g, m, s)
					if err != nil {
						t.Fatal(err)
					}
					return p
				},
			})
		}
	}
	for _, tc := range graphs {
		p := tc.gen()
		n := int32(p.G.NumVertices())
		// Out-of-range ids included: Owner must mirror the binary search
		// exactly, even for synthetic routing keys.
		for v := int32(-3); v < n+3; v++ {
			if got, want := p.Owner(v), p.ownerSearch(v); got != want {
				t.Fatalf("%s/m=%d: Owner(%d) = %d, search says %d", tc.name, p.M, v, got, want)
			}
		}
		for _, f := range p.Frags {
			// Reference slot map: owned range then F.O copies in order.
			ref := make(map[int32]int32)
			for v := f.Lo; v < f.Hi; v++ {
				ref[v] = v - f.Lo
			}
			base := int32(f.NumOwned())
			for s, v := range f.Out {
				ref[v] = base + int32(s)
			}
			for v := int32(0); v < n; v++ {
				want, ok := ref[v]
				if !ok {
					want = -1
				}
				if got := f.Slot(v); got != want {
					t.Fatalf("%s/m=%d: frag %d Slot(%d) = %d, want %d", tc.name, p.M, f.ID, v, got, want)
				}
				wantOut := int32(-1)
				if !f.Owns(v) && want >= 0 {
					wantOut = want - base
				}
				if got := f.OutSlot(v); got != wantOut {
					t.Fatalf("%s/m=%d: frag %d OutSlot(%d) = %d, want %d", tc.name, p.M, f.ID, v, got, wantOut)
				}
			}
		}
	}
}
