package partition

import (
	"testing"

	"aap/internal/gen"
)

// forceSlotTables pins the slot-table representation for the duration
// of a test: hybrid (arithmetic + compact copy table, the default) or
// the dense per-fragment arrays kept behind DenseSlotTables.
func forceSlotTables(t *testing.T, dense bool) {
	t.Helper()
	prev := DenseSlotTables
	DenseSlotTables = dense
	t.Cleanup(func() { DenseSlotTables = prev })
}

// TestDenseTablesMatchReference verifies, on partitioned random graphs
// across strategies, fragment counts, and both slot-table
// representations, that Owner/Slot/OutSlot agree with the reference
// lookups they replaced: binary search over Ranges for Owner, and the
// F.O map reconstructed from each fragment's border set for
// Slot/OutSlot.
func TestDenseTablesMatchReference(t *testing.T) {
	for _, dense := range []bool{false, true} {
		forceSlotTables(t, dense)
		tag := "hybrid"
		if dense {
			tag = "dense"
		}
		for _, m := range []int{1, 3, 8} {
			for _, s := range []Strategy{Hash{}, Range{}, BFSLocality{Seed: 5}, Skewed{Ratio: 4, Seed: 5}} {
				g := gen.Random(500, 3000, false, 11)
				p, err := Build(g, m, s)
				if err != nil {
					t.Fatal(err)
				}
				if dense != (p.Frags[0].slot != nil) {
					t.Fatalf("%s/%s/m=%d: dense table presence = %v, want %v",
						tag, s.Name(), m, p.Frags[0].slot != nil, dense)
				}
				n := int32(p.G.NumVertices())
				// Out-of-range ids included: Owner must mirror the binary
				// search exactly, even for synthetic routing keys.
				for v := int32(-3); v < n+3; v++ {
					if got, want := p.Owner(v), p.ownerSearch(v); got != want {
						t.Fatalf("%s/%s/m=%d: Owner(%d) = %d, search says %d", tag, s.Name(), m, v, got, want)
					}
				}
				for _, f := range p.Frags {
					// Reference slot map: owned range then F.O copies in order.
					ref := make(map[int32]int32)
					for v := f.Lo; v < f.Hi; v++ {
						ref[v] = v - f.Lo
					}
					base := int32(f.NumOwned())
					for s, v := range f.Out {
						ref[v] = base + int32(s)
					}
					// Synthetic ids well outside the vertex range resolve
					// to -1 on both representations.
					for v := int32(-3); v < n+3; v++ {
						want, ok := ref[v]
						if !ok {
							want = -1
						}
						if got := f.Slot(v); got != want {
							t.Fatalf("%s/%s/m=%d: frag %d Slot(%d) = %d, want %d", tag, s.Name(), m, f.ID, v, got, want)
						}
						wantOut := int32(-1)
						if !f.Owns(v) && want >= 0 {
							wantOut = want - base
						}
						if got := f.OutSlot(v); got != wantOut {
							t.Fatalf("%s/%s/m=%d: frag %d OutSlot(%d) = %d, want %d", tag, s.Name(), m, f.ID, v, got, wantOut)
						}
					}
				}
			}
		}
	}
}

// TestRoutingTableBytesHybridShrinks pins the memory claim: on a
// locality partition the hybrid representation must be far smaller than
// the dense arrays, and both must report a consistent accounting.
func TestRoutingTableBytesHybridShrinks(t *testing.T) {
	g := gen.Grid(100, 100, 3)
	forceSlotTables(t, false)
	hp, err := Build(g, 16, BFSLocality{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	forceSlotTables(t, true)
	dp, err := Build(g, 16, BFSLocality{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hb, db := hp.SlotTableBytes(), dp.SlotTableBytes()
	if hb <= 0 || db <= 0 {
		t.Fatalf("non-positive accounting: hybrid %d dense %d", hb, db)
	}
	if hb*4 > db {
		t.Fatalf("hybrid slot tables %d bytes, dense %d bytes: expected ≥ 4x shrink on a locality partition", hb, db)
	}
	if hp.RoutingTableBytes() <= hb || dp.RoutingTableBytes() <= db {
		t.Fatal("RoutingTableBytes must include owner and holder structures on top of the slot tables")
	}
}
