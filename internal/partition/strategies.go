package partition

import (
	"math/rand"

	"aap/internal/graph"
)

// Hash assigns vertices to fragments by hashing their internal index.
// It produces balanced fragments with poor locality, a common baseline.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Assign implements Strategy.
func (Hash) Assign(g *graph.Graph, m int) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		// Fibonacci hashing of the index spreads consecutive ids.
		h := uint64(v) * 0x9E3779B97F4A7C15
		out[v] = int32(h % uint64(m))
	}
	return out
}

// Range assigns contiguous, equally sized index ranges to fragments. On
// generator output whose ids follow a spatial or crawl order this yields
// good locality, similar in spirit to chunk-based partitioners.
type Range struct{}

// Name implements Strategy.
func (Range) Name() string { return "range" }

// Assign implements Strategy.
func (Range) Assign(g *graph.Graph, m int) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	per := (n + m - 1) / m
	for v := 0; v < n; v++ {
		f := v / per
		if f >= m {
			f = m - 1
		}
		out[v] = int32(f)
	}
	return out
}

// BFSLocality orders vertices by breadth-first traversal from successive
// unvisited seeds and then chunks the order into m equal parts, a cheap
// locality-aware partitioner playing the role of XtraPuLP in the paper's
// experiments (minimizing cut edges relative to hash partitioning).
type BFSLocality struct {
	// Seed selects the traversal tie-breaking; 0 is a valid seed.
	Seed int64
}

// Name implements Strategy.
func (BFSLocality) Name() string { return "bfs" }

// Assign implements Strategy.
func (s BFSLocality) Assign(g *graph.Graph, m int) []int32 {
	n := g.NumVertices()
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, 1024)
	rng := rand.New(rand.NewSource(s.Seed))
	start := int32(0)
	if n > 0 {
		start = int32(rng.Intn(n))
	}
	for scanned := int32(0); len(order) < n; {
		seed := int32(-1)
		if !visited[start] {
			seed = start
		} else {
			for ; scanned < int32(n); scanned++ {
				if !visited[scanned] {
					seed = scanned
					break
				}
			}
		}
		if seed < 0 {
			break
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Out(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
			for _, u := range g.In(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	out := make([]int32, n)
	per := (n + m - 1) / m
	for pos, v := range order {
		f := pos / per
		if f >= m {
			f = m - 1
		}
		out[v] = int32(f)
	}
	return out
}

// Skewed produces fragments with a controlled skew ratio
// r = ||F_max|| / ||F_median||, reproducing the partitions of Exp-4
// (Fig 6(k)) where the paper reshuffles a partitioned graph to control
// straggler weight. Fragment sizes are measured as vertices plus edges.
// Ratio <= 1 yields a weight-balanced partition; larger ratios inflate
// fragment 0 while keeping the remaining fragments equal, so the median
// stays at the fair share and fragment 0 lands at Ratio times it.
type Skewed struct {
	Ratio float64
	Seed  int64
}

// Name implements Strategy.
func (s Skewed) Name() string { return "skewed" }

// Assign implements Strategy.
func (s Skewed) Assign(g *graph.Graph, m int) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	if m < 2 {
		return out
	}
	weight := func(v int32) float64 { return 1 + float64(g.OutDegree(v)) }
	var total float64
	for v := 0; v < n; v++ {
		total += weight(int32(v))
	}
	ratio := s.Ratio
	if ratio < 1 {
		ratio = 1
	}
	// Solve f0 = Ratio * median with the other m-1 fragments sharing the
	// remainder equally: f0 = Ratio*(total-f0)/(m-1).
	f0 := ratio * total / (float64(m-1) + ratio)
	// Cumulative thresholds: fragment 0 ends at f0, then equal shares.
	thresholds := make([]float64, m)
	thresholds[0] = f0
	rest := (total - f0) / float64(m-1)
	for i := 1; i < m; i++ {
		thresholds[i] = thresholds[i-1] + rest
	}
	var cum float64
	frag := int32(0)
	for v := 0; v < n; v++ {
		cum += weight(int32(v))
		out[v] = frag
		if cum >= thresholds[frag] && int(frag) < m-1 {
			frag++
		}
	}
	return out
}
