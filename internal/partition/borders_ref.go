// Sequential map-based border computation, retained from the
// pre-bitset pipeline as the differential-test oracle.
package partition

import "sort"

// refBorders holds everything the old computeBorders produced: the four
// sorted border sets per fragment and the map-based holder index.
type refBorders struct {
	in, outPrime, out, inPrime [][]int32
	holders                    map[int32][]int32
}

// bordersRef recomputes border sets and holders with the original
// map-per-fragment sweep over the renumbered graph.
func (p *Partitioned) bordersRef() refBorders {
	type borderSets struct {
		in, outPrime, out, inPrime map[int32]bool
	}
	sets := make([]borderSets, p.M)
	for i := range sets {
		sets[i] = borderSets{
			in:       make(map[int32]bool),
			outPrime: make(map[int32]bool),
			out:      make(map[int32]bool),
			inPrime:  make(map[int32]bool),
		}
	}
	n := int32(p.G.NumVertices())
	for v := int32(0); v < n; v++ {
		fv := p.Owner(v)
		for _, u := range p.G.Out(v) {
			fu := p.Owner(u)
			if fu == fv {
				continue
			}
			// Edge v->u crosses fragments fv -> fu.
			sets[fv].outPrime[v] = true
			sets[fv].out[u] = true
			sets[fu].in[u] = true
			sets[fu].inPrime[v] = true
		}
	}
	ref := refBorders{
		in:       make([][]int32, p.M),
		outPrime: make([][]int32, p.M),
		out:      make([][]int32, p.M),
		inPrime:  make([][]int32, p.M),
		holders:  make(map[int32][]int32),
	}
	for i := range sets {
		ref.in[i] = sortedKeys(sets[i].in)
		ref.outPrime[i] = sortedKeys(sets[i].outPrime)
		ref.out[i] = sortedKeys(sets[i].out)
		ref.inPrime[i] = sortedKeys(sets[i].inPrime)
		for _, v := range ref.out[i] {
			ref.holders[v] = append(ref.holders[v], int32(i))
		}
	}
	return ref
}

func sortedKeys(m map[int32]bool) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
