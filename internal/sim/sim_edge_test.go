package sim_test

import (
	"math"
	"sort"
	"testing"

	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
	"aap/internal/sim"
)

func TestSimMaxRoundsAborts(t *testing.T) {
	g := gen.Grid(10, 10, 3)
	p := mustPartition(t, g, 4, partition.Hash{})
	_, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-12}), sim.Config{Mode: core.AP, MaxRounds: 2})
	if err == nil {
		t.Fatal("expected max-rounds error")
	}
}

func TestSimSingleWorker(t *testing.T) {
	g := gen.Grid(10, 10, 5)
	p := mustPartition(t, g, 1, partition.Hash{})
	res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMsgs != 0 {
		t.Errorf("single worker sent %d messages", res.Stats.TotalMsgs)
	}
	if res.Stats.MaxRound != 1 {
		t.Errorf("single worker ran %d rounds, want 1 (PEval only)", res.Stats.MaxRound)
	}
}

// TestSimSpeedScalesStragglerTime: doubling a worker's slowdown factor
// increases its busy time proportionally.
func TestSimSpeedScalesStragglerTime(t *testing.T) {
	g := gen.PowerLaw(1000, 6, 2.1, true, 37)
	p := mustPartition(t, g, 4, partition.Range{})
	busy := func(slow float64) float64 {
		res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: core.BSP, Speed: []float64{slow, 1, 1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Workers[0].BusySeconds
	}
	b1, b2 := busy(1), busy(2)
	if b2 < 1.8*b1 || b2 > 2.2*b1 {
		t.Errorf("slowdown 2 changed busy time by %.2fx, want ~2x", b2/b1)
	}
}

// TestSimIdlePlusBusyEqualsMakespan: per-worker accounting closes.
func TestSimIdlePlusBusyEqualsMakespan(t *testing.T) {
	g := gen.PowerLaw(500, 5, 2.1, true, 41)
	p := mustPartition(t, g, 6, partition.Hash{})
	res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range res.Stats.Workers {
		if d := math.Abs(w.BusySeconds + w.IdleSeconds - res.Stats.Seconds); d > 1e-9 {
			t.Errorf("worker %d: busy+idle off makespan by %v", i, d)
		}
	}
}

// TestSimStalenessBoundRespected: under SSP with bound c, the recorded
// trace never lets a worker start round r while some active worker is
// more than c rounds behind at that moment. We verify a weaker static
// property that is schedule-independent: per-worker round counts differ
// from the max by at most c plus the rounds a worker legitimately skips
// while inactive — here, on an all-active PageRank workload, the spread
// itself.
func TestSimStalenessBoundRespected(t *testing.T) {
	g := gen.PowerLaw(800, 6, 2.1, false, 43)
	p := mustPartition(t, g, 4, partition.Hash{})
	res, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-6}), sim.Config{
		Mode: core.SSP, Staleness: 1, Speed: []float64{2.5, 1, 1, 1}, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the trace: at any time, started rounds must respect the
	// bound against concurrently active workers.
	type ev struct {
		t     float64
		w     int
		round int32
	}
	var evs []ev
	for _, iv := range res.Trace {
		evs = append(evs, ev{iv.Start, iv.Worker, iv.Round})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	rounds := make([]int32, 4)
	for _, e := range evs {
		rounds[e.w] = e.round
		min := rounds[0]
		for _, r := range rounds {
			if r < min {
				min = r
			}
		}
		if e.round-min > 1+1 { // bound c=1 plus one in-flight round
			t.Fatalf("worker %d started round %d while min is %d (c=1)", e.w, e.round, min)
		}
	}
}
