// Package sim is the deterministic virtual-time cluster simulator: it
// executes the same PIE programs as the concurrent engine, but under a
// discrete-event clock with an explicit cost model — per-round duration
// proportional to the work the program reports, scaled by a per-worker
// speed factor, plus a fixed message latency.
//
// The simulator reproduces the paper's timing figures (Fig 1, Fig 7, and
// every "time vs workers" plot) deterministically on one machine: the
// phenomena AAP exploits — stragglers, stale rounds, idle time — are
// functions of relative worker progress, which the cost model preserves.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"aap/internal/core"
	"aap/internal/partition"
)

// Config parameterizes a simulated run.
type Config struct {
	// Mode, Staleness, LFloor and HsyncWindow mirror core.Options.
	Mode        core.Mode
	Staleness   int
	LFloor      int
	HsyncWindow int32

	// RoundOverhead is the fixed virtual seconds per round, and
	// WorkUnitCost the virtual seconds per unit of work reported through
	// Context.AddWork. Defaults: 0.002 and 2e-5, calibrated so that the
	// computation cost of a skewed fragment dominates the per-round
	// overhead, as on the paper's clusters.
	RoundOverhead float64
	WorkUnitCost  float64
	// MsgLatency is the virtual seconds a designated message spends in
	// flight. Default: 0.005.
	MsgLatency float64
	// Speed scales the duration of worker i's rounds (1 = nominal,
	// 2 = twice as slow — a straggler). Nil means all 1.
	Speed []float64

	// MaxRounds aborts runaway computations. Default 1 << 20.
	MaxRounds int32
	// Trace records per-round intervals for timing diagrams.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.RoundOverhead == 0 {
		c.RoundOverhead = 0.002
	}
	if c.WorkUnitCost == 0 {
		c.WorkUnitCost = 2e-5
	}
	if c.MsgLatency == 0 {
		c.MsgLatency = 0.005
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1 << 20
	}
	return c
}

// Interval is one executed round in the trace.
type Interval struct {
	Worker int
	Round  int32
	Start  float64
	End    float64
}

// Result is the outcome of a simulated run: the assembled values, the
// run statistics in virtual seconds, and (when requested) the trace.
type Result[T any] struct {
	Values []T
	Stats  core.RunStats
	Trace  []Interval
}

// Run simulates job over p under cfg and returns the assembled result.
func Run[T any](p *partition.Partitioned, job core.Job[T], cfg Config) (*Result[T], error) {
	if job.Validate != nil {
		if err := job.Validate(p); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()
	s := newSim(p, job, cfg)
	if err := s.run(); err != nil {
		return nil, err
	}
	stats := core.RunStats{Job: job.Name, Mode: cfg.Mode.String(), Seconds: s.now}
	stats.Workers = make([]core.WorkerStats, p.M)
	for i, w := range s.workers {
		w.stats.IdleSeconds = s.now - w.stats.BusySeconds
		stats.Workers[i] = w.stats
	}
	stats.Finalize()
	progs := make([]core.Program[T], p.M)
	for i, w := range s.workers {
		progs[i] = w.prog
	}
	return &Result[T]{Values: core.Assemble(p, progs, job), Stats: stats, Trace: s.trace}, nil
}

// wstate is the scheduling state of a simulated worker.
type wstate int

const (
	wRunning   wstate = iota // a finish event is pending
	wIdle                    // buffer empty, inactive
	wSuspended               // buffer nonempty, DS_i = Forever
	wDelayed                 // buffer nonempty, wake event pending
)

type simWorker[T any] struct {
	id     int
	prog   core.Program[T]
	ctx    *core.Context[T]
	ctrl   core.Controller
	folder *core.Folder[T]

	state   wstate
	wakeGen int64 // invalidates stale wake events

	buffer  []core.VMsg[T]
	origins map[int32]bool

	rounds        int32
	roundTimeEWMA float64
	rateEWMA      float64
	lastArrive    float64
	lastRoundEnd  float64
	runStart      float64
	pendingOut    [][]core.VMsg[T] // messages of the running round, shipped at finish

	stats core.WorkerStats
	speed float64
}

type evKind int

const (
	evFinish evKind = iota
	evArrive
	evWake
)

type event[T any] struct {
	t    float64
	seq  int64
	kind evKind
	w    int
	gen  int64          // for evWake
	from int32          // for evArrive
	msgs []core.VMsg[T] // for evArrive
}

type eventHeap[T any] struct{ evs []*event[T] }

func (h *eventHeap[T]) Len() int { return len(h.evs) }
func (h *eventHeap[T]) Less(i, j int) bool {
	if h.evs[i].t != h.evs[j].t {
		return h.evs[i].t < h.evs[j].t
	}
	return h.evs[i].seq < h.evs[j].seq
}
func (h *eventHeap[T]) Swap(i, j int)      { h.evs[i], h.evs[j] = h.evs[j], h.evs[i] }
func (h *eventHeap[T]) Push(x interface{}) { h.evs = append(h.evs, x.(*event[T])) }
func (h *eventHeap[T]) Pop() interface{} {
	e := h.evs[len(h.evs)-1]
	h.evs = h.evs[:len(h.evs)-1]
	return e
}

type sim[T any] struct {
	p       *partition.Partitioned
	job     core.Job[T]
	cfg     Config
	workers []*simWorker[T]
	ctrls   *core.ControllerSet
	events  eventHeap[T]
	seq     int64
	now     float64
	trace   []Interval
	rounds  []int32
}

func newSim[T any](p *partition.Partitioned, job core.Job[T], cfg Config) *sim[T] {
	opts := core.Options{Mode: cfg.Mode, Staleness: cfg.Staleness, LFloor: cfg.LFloor, HsyncWindow: cfg.HsyncWindow}
	s := &sim[T]{p: p, job: job, cfg: cfg, ctrls: core.NewControllerSet(opts, p.M), rounds: make([]int32, p.M)}
	s.workers = make([]*simWorker[T], p.M)
	for i, f := range p.Frags {
		speed := 1.0
		if cfg.Speed != nil && i < len(cfg.Speed) && cfg.Speed[i] > 0 {
			speed = cfg.Speed[i]
		}
		s.workers[i] = &simWorker[T]{
			id:      i,
			prog:    job.New(f),
			ctx:     core.NewEngineContext[T](f, p.M),
			ctrl:    s.ctrls.Controller(i),
			folder:  core.NewFolder[T](f),
			origins: make(map[int32]bool),
			speed:   speed,
		}
	}
	return s
}

func (s *sim[T]) push(e *event[T]) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// startRound executes PEval or IncEval at virtual time t and schedules
// the finish event at t plus the modeled duration.
func (s *sim[T]) startRound(w *simWorker[T], t float64) error {
	if w.rounds >= s.cfg.MaxRounds {
		return fmt.Errorf("sim: %s/%s worker %d exceeded %d rounds", s.job.Name, s.cfg.Mode, w.id, s.cfg.MaxRounds)
	}
	w.state = wRunning
	w.runStart = t
	w.ctx.SetRound(w.rounds)
	if w.rounds == 0 {
		w.prog.PEval(w.ctx)
	} else {
		msgs := w.folder.Fold(w.buffer, s.job.Aggregate)
		w.buffer = w.buffer[:0]
		for k := range w.origins {
			delete(w.origins, k)
		}
		w.prog.IncEval(msgs, w.ctx)
	}
	out, work := w.ctx.TakeOut()
	w.stats.Work += work
	w.pendingOut = out
	dur := (s.cfg.RoundOverhead + float64(work)*s.cfg.WorkUnitCost) * w.speed
	s.push(&event[T]{t: t + dur, kind: evFinish, w: w.id})
	return nil
}

// finishRound ships the round's messages and re-decides the worker.
func (s *sim[T]) finishRound(w *simWorker[T], t float64) {
	w.state = wIdle // tentative; the caller re-decides immediately
	dur := t - w.runStart
	w.stats.BusySeconds += dur
	w.roundTimeEWMA = core.NextRoundTimeEWMA(w.roundTimeEWMA, dur)
	if s.cfg.Trace {
		s.trace = append(s.trace, Interval{Worker: w.id, Round: w.rounds, Start: w.runStart, End: t})
	}
	w.rounds++
	w.stats.Rounds = w.rounds
	s.rounds[w.id] = w.rounds
	w.lastRoundEnd = t
	for j, msgs := range w.pendingOut {
		if len(msgs) == 0 {
			continue
		}
		var bytes int64
		for _, m := range msgs {
			bytes += int64(s.job.ValueBytes(m.Val))
		}
		w.stats.MsgsSent += int64(len(msgs))
		w.stats.BytesSent += bytes
		s.push(&event[T]{t: t + s.cfg.MsgLatency, kind: evArrive, w: j, from: int32(w.id), msgs: msgs})
	}
	w.ctx.ReleaseOut(w.pendingOut)
	w.pendingOut = nil
	s.ctrls.ObserveRound(s.rmax())
}

func (s *sim[T]) rmax() int32 {
	var rmax int32
	for _, r := range s.rounds {
		if r > rmax {
			rmax = r
		}
	}
	return rmax
}

// view builds the controller View of worker w at virtual time t.
func (s *sim[T]) view(w *simWorker[T], t float64) core.View {
	rmin := int32(math.MaxInt32)
	var rmax int32
	var rateSum, rtSum float64
	for i, o := range s.workers {
		if s.rounds[i] > rmax {
			rmax = s.rounds[i]
		}
		busy := o.state == wRunning || len(o.buffer) > 0
		if busy && s.rounds[i] < rmin {
			rmin = s.rounds[i]
		}
		rateSum += o.rateEWMA
		rtSum += o.roundTimeEWMA
	}
	if rmin == int32(math.MaxInt32) {
		rmin = s.rounds[w.id]
	}
	return core.View{
		Worker:       w.id,
		NumWorkers:   s.p.M,
		Round:        w.rounds,
		RMin:         rmin,
		RMax:         rmax,
		Eta:          len(w.origins),
		Buffered:     len(w.buffer),
		RoundTime:    w.roundTimeEWMA,
		AvgRoundTime: rtSum / float64(s.p.M),
		Rate:         w.rateEWMA,
		AvgRate:      rateSum / float64(s.p.M),
		IdleTime:     t - w.lastRoundEnd,
	}
}

// decide re-evaluates a non-running worker's delay stretch at time t.
func (s *sim[T]) decide(w *simWorker[T], t float64) error {
	if w.state == wRunning {
		return nil
	}
	w.wakeGen++
	if len(w.buffer) == 0 {
		w.state = wIdle
		return nil
	}
	d := w.ctrl.Delay(s.view(w, t))
	switch {
	case math.IsInf(d, 1):
		w.state = wSuspended
	case d <= 0:
		return s.startRound(w, t)
	default:
		w.state = wDelayed
		s.push(&event[T]{t: t + d, kind: evWake, w: w.id, gen: w.wakeGen})
	}
	return nil
}

// reDecideWaiters re-evaluates suspended and delayed workers after global
// progress changes (the concurrent engine's progress broadcast).
func (s *sim[T]) reDecideWaiters(t float64) error {
	for _, w := range s.workers {
		if w.state == wSuspended || w.state == wDelayed {
			if err := s.decide(w, t); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *sim[T]) run() error {
	for _, w := range s.workers {
		if err := s.startRound(w, 0); err != nil {
			return err
		}
	}
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event[T])
		s.now = e.t
		w := s.workers[e.w]
		switch e.kind {
		case evFinish:
			s.finishRound(w, e.t)
			if err := s.decide(w, e.t); err != nil {
				return err
			}
			if err := s.reDecideWaiters(e.t); err != nil {
				return err
			}
		case evArrive:
			w.buffer = append(w.buffer, e.msgs...)
			w.origins[e.from] = true
			w.stats.MsgsRecv += int64(len(e.msgs))
			s.ctrls.ObserveConsumed(int64(len(e.msgs)))
			dt := e.t - w.lastArrive
			w.lastArrive = e.t
			if dt > 0 {
				w.rateEWMA = 0.5*w.rateEWMA + 0.5*float64(len(e.msgs))/dt
			}
			if w.state != wRunning {
				if err := s.decide(w, e.t); err != nil {
					return err
				}
			}
		case evWake:
			if e.gen != w.wakeGen || w.state != wDelayed {
				break // superseded by a later decision
			}
			// The stretch elapsed: run with the messages accumulated.
			if len(w.buffer) > 0 {
				if err := s.startRound(w, e.t); err != nil {
					return err
				}
			} else {
				w.state = wIdle
			}
		}
	}
	for _, w := range s.workers {
		if len(w.buffer) > 0 {
			return fmt.Errorf("sim: %s/%s deadlock: worker %d stuck with %d buffered messages", s.job.Name, s.cfg.Mode, w.id, len(w.buffer))
		}
	}
	return nil
}
