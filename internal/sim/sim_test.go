package sim_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/ref"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/sim"
)

func mustPartition(t testing.TB, g *graph.Graph, m int, s partition.Strategy) *partition.Partitioned {
	t.Helper()
	p, err := partition.Build(g, m, s)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	return p
}

func TestSimSSSPCorrectAllModes(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 11)
	want := ref.SSSP(g, 0)
	p := mustPartition(t, g, 6, partition.Hash{})
	for _, mode := range []core.Mode{core.AAP, core.BSP, core.AP, core.SSP, core.Hsync} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: mode, Staleness: 2})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				id := p.G.IDOf(int32(v))
				orig, _ := g.IndexOf(id)
				got, w := res.Values[v], want[orig]
				if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
					t.Fatalf("vertex %d: got %v want %v", id, got, w)
				}
			}
		})
	}
}

func TestSimDeterministic(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, true, 13)
	p := mustPartition(t, g, 5, partition.Hash{})
	cfg := sim.Config{Mode: core.AAP, Trace: true, Speed: []float64{1, 1, 3, 1, 1}}
	r1, err := sim.Run(p, sssp.Job(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(p, sssp.Job(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Seconds != r2.Stats.Seconds {
		t.Fatalf("nondeterministic makespan: %v vs %v", r1.Stats.Seconds, r2.Stats.Seconds)
	}
	if !reflect.DeepEqual(sim.SortedCopy(r1.Trace), sim.SortedCopy(r2.Trace)) {
		t.Fatal("nondeterministic trace")
	}
	if !reflect.DeepEqual(r1.Values, r2.Values) {
		t.Fatal("nondeterministic values")
	}
}

// TestSimBSPBehavesLikeBarriers checks the BSP special case on a
// workload where every fragment stays active until global convergence
// (PageRank on a power-law graph): active workers move in lockstep, so
// round counts stay close, the straggler is the busiest worker, and the
// fast workers idle more under BSP than under AP.
func TestSimBSPBehavesLikeBarriers(t *testing.T) {
	g := gen.PowerLaw(800, 6, 2.1, false, 17)
	p := mustPartition(t, g, 4, partition.Hash{})
	speed := []float64{1, 1, 1, 2.5}
	job := pagerank.Job(pagerank.Config{Tol: 1e-7})
	bsp, err := sim.Run(p, job, sim.Config{Mode: core.BSP, Speed: speed, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := sim.Run(p, job, sim.Config{Mode: core.AP, Speed: speed})
	if err != nil {
		t.Fatal(err)
	}
	st := bsp.Stats
	if st.MaxRound-st.MinRound > 2 {
		t.Errorf("BSP rounds spread too far: max %d min %d", st.MaxRound, st.MinRound)
	}
	var maxBusy float64
	for _, w := range st.Workers {
		if w.BusySeconds > maxBusy {
			maxBusy = w.BusySeconds
		}
	}
	if st.Workers[3].BusySeconds != maxBusy {
		t.Errorf("straggler is not the busiest worker")
	}
	// Fast workers wait at barriers under BSP; AP never waits, so the
	// fast workers' idle share must be higher under BSP.
	bspIdle := st.Workers[0].IdleSeconds / st.Seconds
	apIdle := ap.Stats.Workers[0].IdleSeconds / ap.Stats.Seconds
	if bspIdle <= apIdle {
		t.Errorf("BSP fast-worker idle share %.2f not above AP's %.2f", bspIdle, apIdle)
	}
}

// TestSimAAPNoSlowerThanBSPWithStraggler checks the headline claim on a
// skewed run: AAP's makespan is no worse than BSP's.
func TestSimAAPNoSlowerThanBSPWithStraggler(t *testing.T) {
	g := gen.PowerLaw(2000, 8, 2.1, true, 19)
	p := mustPartition(t, g, 8, partition.Hash{})
	speed := []float64{1, 1, 1, 1, 1, 1, 1, 4}
	var mk [2]float64
	for i, mode := range []core.Mode{core.AAP, core.BSP} {
		res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: mode, Speed: speed})
		if err != nil {
			t.Fatal(err)
		}
		mk[i] = res.Stats.Seconds
	}
	if mk[0] > mk[1]*1.05 {
		t.Errorf("AAP (%.3f) slower than BSP (%.3f) on a straggler-heavy run", mk[0], mk[1])
	}
}

func TestSimPageRankMatchesReference(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, false, 23)
	want := ref.PageRank(g, 0.85, 1e-9, 500)
	p := mustPartition(t, g, 4, partition.Hash{})
	for _, mode := range []core.Mode{core.AAP, core.BSP, core.AP} {
		res, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-10}), sim.Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := p.G.IDOf(int32(v))
			orig, _ := g.IndexOf(id)
			if d := math.Abs(res.Values[v] - want[orig]); d > 1e-5 {
				t.Fatalf("%s vertex %d: got %v want %v", mode, id, res.Values[v], want[orig])
			}
		}
	}
}

// TestSimChurchRosser: different modes and straggler profiles must reach
// identical fixpoints for monotone jobs (Theorem 2).
func TestSimChurchRosser(t *testing.T) {
	g := gen.SmallWorld(500, 3, 0.1, true, 29)
	p := mustPartition(t, g, 7, partition.BFSLocality{})
	var first []int64
	for i, cfg := range []sim.Config{
		{Mode: core.AAP},
		{Mode: core.AP},
		{Mode: core.BSP},
		{Mode: core.SSP, Staleness: 1},
		{Mode: core.AAP, Speed: []float64{5, 1, 1, 1, 1, 1, 1}},
		{Mode: core.AP, Speed: []float64{1, 1, 9, 1, 1, 1, 1}},
		{Mode: core.AAP, LFloor: 3},
	} {
		res, err := sim.Run(p, cc.Job(), cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if first == nil {
			first = res.Values
			continue
		}
		if !reflect.DeepEqual(first, res.Values) {
			t.Fatalf("config %d diverged from first fixpoint", i)
		}
	}
}

func TestTraceRendering(t *testing.T) {
	trace := []sim.Interval{
		{Worker: 0, Round: 0, Start: 0, End: 3},
		{Worker: 1, Round: 0, Start: 0, End: 6},
		{Worker: 0, Round: 1, Start: 4, End: 7},
	}
	s := sim.RenderTrace(trace, 2, 20)
	if s == "(empty trace)\n" {
		t.Fatal("unexpected empty render")
	}
	for _, want := range []string{"P1", "P2", "#"} {
		if !contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	sum := sim.TraceSummary(trace, 2)
	if !contains(sum, "P1") || !contains(sum, "2") {
		t.Errorf("summary missing fields:\n%s", sum)
	}
	if got := sim.RoundsOf(trace, 2); got[0] != 2 || got[1] != 1 {
		t.Errorf("RoundsOf = %v", got)
	}
	if sim.Makespan(trace) != 7 {
		t.Errorf("Makespan = %v", sim.Makespan(trace))
	}
	if sim.RenderTrace(nil, 2, 20) != "(empty trace)\n" {
		t.Error("empty trace should render placeholder")
	}
}

// TestSimStragglerReducesRoundsUnderAAP reproduces the mechanism of
// Example 4: under AAP a straggler accumulates updates and converges in
// no more rounds than under AP.
func TestSimStragglerReducesRoundsUnderAAP(t *testing.T) {
	g := gen.PowerLaw(3000, 6, 2.1, true, 31)
	p := mustPartition(t, g, 8, partition.Hash{})
	speed := []float64{1, 1, 1, 1, 1, 1, 1, 6}
	rounds := map[core.Mode]int32{}
	for _, mode := range []core.Mode{core.AAP, core.AP} {
		res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: mode, Speed: speed, LFloor: 2})
		if err != nil {
			t.Fatal(err)
		}
		rounds[mode] = res.Stats.Workers[7].Rounds
	}
	if rounds[core.AAP] > rounds[core.AP] {
		t.Errorf("straggler rounds: AAP %d > AP %d", rounds[core.AAP], rounds[core.AP])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func ExampleRenderTrace() {
	trace := []sim.Interval{
		{Worker: 0, Round: 0, Start: 0, End: 1},
		{Worker: 1, Round: 0, Start: 0, End: 2},
	}
	fmt.Print(sim.RenderTrace(trace, 2, 10))
	// Output:
	// time 0 .. 2.00 (virtual seconds), '#' computing, '.' waiting
	// P1   |#####.....|
	// P2   |##########|
}
