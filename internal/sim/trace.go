package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RenderTrace draws an ASCII timing diagram of a simulated run in the
// style of Figures 1 and 7 of the paper: one row per worker, time running
// left to right, '#' while the worker computes, '.' while it waits.
// width is the number of character columns used for the time axis.
func RenderTrace(trace []Interval, numWorkers int, width int) string {
	if len(trace) == 0 || numWorkers == 0 || width <= 0 {
		return "(empty trace)\n"
	}
	var makespan float64
	for _, iv := range trace {
		if iv.End > makespan {
			makespan = iv.End
		}
	}
	if makespan == 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, numWorkers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	clamp := func(c int) int {
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, iv := range trace {
		lo := clamp(int(iv.Start / makespan * float64(width)))
		hi := clamp(int(math.Ceil(iv.End/makespan*float64(width))) - 1)
		if hi < lo {
			hi = lo
		}
		for c := lo; c <= hi; c++ {
			rows[iv.Worker][c] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.2f (virtual seconds), '#' computing, '.' waiting\n", makespan)
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", i+1, row)
	}
	return b.String()
}

// TraceSummary reports per-worker round counts and busy fractions of a
// trace, the quantitative companion of the diagrams.
func TraceSummary(trace []Interval, numWorkers int) string {
	rounds := make([]int, numWorkers)
	busy := make([]float64, numWorkers)
	var makespan float64
	for _, iv := range trace {
		rounds[iv.Worker]++
		busy[iv.Worker] += iv.End - iv.Start
		if iv.End > makespan {
			makespan = iv.End
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %10s %8s\n", "worker", "rounds", "busy(s)", "busy%")
	for i := 0; i < numWorkers; i++ {
		pct := 0.0
		if makespan > 0 {
			pct = busy[i] / makespan * 100
		}
		fmt.Fprintf(&b, "P%-7d %8d %10.2f %7.1f%%\n", i+1, rounds[i], busy[i], pct)
	}
	return b.String()
}

// RoundsOf returns per-worker round counts from a trace.
func RoundsOf(trace []Interval, numWorkers int) []int {
	rounds := make([]int, numWorkers)
	for _, iv := range trace {
		rounds[iv.Worker]++
	}
	return rounds
}

// Makespan returns the virtual completion time of a trace.
func Makespan(trace []Interval) float64 {
	var m float64
	for _, iv := range trace {
		if iv.End > m {
			m = iv.End
		}
	}
	return m
}

// SortedCopy returns the trace ordered by start time then worker, for
// deterministic golden comparisons in tests.
func SortedCopy(trace []Interval) []Interval {
	out := append([]Interval(nil), trace...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}
