package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"aap/internal/checkpoint"
	"aap/internal/codec"
)

func encInt64(dst []byte, v int64) []byte { return codec.AppendInt64(dst, v) }
func decInt64(r *codec.Reader) int64      { return r.Int64() }
func mustOpen(t *testing.T) (*checkpoint.DurableStore, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func testSnapshot(epoch int32) *checkpoint.Snapshot[int64] {
	return &checkpoint.Snapshot[int64]{
		Epoch:     epoch,
		States:    [][]byte{codec.AppendInt64(nil, 70), codec.AppendInt64(nil, 100)},
		Rounds:    []int32{3, 2},
		PEvalDone: []bool{true, false},
		InFlight: []checkpoint.Flight[int64]{
			{From: 0, To: 1, Msgs: []int64{30, int64(epoch)}},
		},
	}
}

func writeEpoch(t *testing.T, d *checkpoint.DurableStore, epoch int32) {
	t.Helper()
	payload := checkpoint.EncodeSnapshot(testSnapshot(epoch), encInt64)
	if err := d.WriteEpoch(epoch, payload); err != nil {
		t.Fatal(err)
	}
}

// TestRecordFutureEpoch pins the named-error contract: a Record for an
// epoch that was never announced is rejected with ErrFutureEpoch, both
// on an idle store and while an older epoch is pending.
func TestRecordFutureEpoch(t *testing.T) {
	st := checkpoint.NewStore[int64](2)
	if err := st.Record(0, 5, nil, 0, false, nil); !errors.Is(err, checkpoint.ErrFutureEpoch) {
		t.Fatalf("record for unannounced epoch 5: err = %v, want ErrFutureEpoch", err)
	}
	st.Announce() // epoch 1 pending
	if err := st.Record(0, 2, nil, 0, false, nil); !errors.Is(err, checkpoint.ErrFutureEpoch) {
		t.Fatalf("record for epoch 2 while 1 pending: err = %v, want ErrFutureEpoch", err)
	}
	// The benign misuses keep their generic (non-future) errors.
	if err := st.Record(0, 1, nil, 0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(0, 1, nil, 0, false, nil); errors.Is(err, checkpoint.ErrFutureEpoch) || err == nil {
		t.Fatalf("double record: err = %v, want a non-future error", err)
	}
}

// TestOnSealHook: the tee fires once per seal with the sealed snapshot.
func TestOnSealHook(t *testing.T) {
	st := checkpoint.NewStore[int64](2)
	var sealed []int32
	st.SetOnSeal(func(s *checkpoint.Snapshot[int64]) { sealed = append(sealed, s.Epoch) })
	for e := int32(1); e <= 3; e++ {
		st.Announce()
		st.Record(0, e, nil, 0, true, nil)
		st.Record(1, e, nil, 0, true, nil)
	}
	if len(sealed) != 3 || sealed[0] != 1 || sealed[2] != 3 {
		t.Fatalf("onSeal fired for %v, want [1 2 3]", sealed)
	}
}

// TestSeed: a seeded store continues the epoch numbering of the run
// that wrote the snapshot and does not count the seed as a fresh seal.
func TestSeed(t *testing.T) {
	st := checkpoint.NewStore[int64](2)
	st.Seed(testSnapshot(4))
	if st.SealedEpoch() != 4 || st.AnnouncedEpoch() != 4 {
		t.Fatalf("seeded store at (sealed %d, announced %d), want (4, 4)", st.SealedEpoch(), st.AnnouncedEpoch())
	}
	if st.SealedCount() != 0 {
		t.Fatalf("seed counted as a seal: %d", st.SealedCount())
	}
	if e, ok := st.Announce(); !ok || e != 5 {
		t.Fatalf("announce after seed = (%d, %v), want (5, true)", e, ok)
	}
	st.Record(0, 5, nil, 0, true, nil)
	st.Record(1, 5, nil, 0, true, nil)
	if st.SealedEpoch() != 5 || st.SealedCount() != 1 {
		t.Fatalf("post-seed seal: epoch %d count %d, want 5 and 1", st.SealedEpoch(), st.SealedCount())
	}
}

// TestDurableRoundtrip: a written epoch reads back bit-identical
// through the envelope and snapshot codec.
func TestDurableRoundtrip(t *testing.T) {
	d, dir := mustOpen(t)
	writeEpoch(t, d, 1)
	writeEpoch(t, d, 2)

	// A second store opened on the same directory (the restarted
	// process) must see the same newest epoch.
	d2, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, payload, err := d2.NewestSealed()
	if err != nil {
		t.Fatal(err)
	}
	if e != 2 {
		t.Fatalf("newest sealed = %d, want 2", e)
	}
	snap, err := checkpoint.DecodeSnapshot(e, payload, decInt64)
	if err != nil {
		t.Fatal(err)
	}
	want := testSnapshot(2)
	if snap.Epoch != want.Epoch || len(snap.States) != 2 ||
		string(snap.States[0]) != string(want.States[0]) ||
		snap.Rounds[0] != 3 || snap.Rounds[1] != 2 ||
		!snap.PEvalDone[0] || snap.PEvalDone[1] ||
		len(snap.InFlight) != 1 || snap.InFlight[0].Msgs[1] != 2 {
		t.Fatalf("decoded snapshot %+v does not match written %+v", snap, want)
	}
	if d.BytesWritten() == 0 || d.FsyncCount() == 0 {
		t.Fatalf("accounting: bytes %d fsyncs %d, want both > 0", d.BytesWritten(), d.FsyncCount())
	}
}

// TestDurableRetention: only the newest Retain epochs stay on disk, and
// the manifest tracks the retained set.
func TestDurableRetention(t *testing.T) {
	dir := t.TempDir()
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for e := int32(1); e <= 5; e++ {
		writeEpoch(t, d, e)
	}
	got := d.Epochs()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("retained epochs %v, want [4 5]", got)
	}
	mb, err := os.ReadFile(filepath.Join(dir, checkpoint.ManifestFile()))
	if err != nil {
		t.Fatal(err)
	}
	newest, epochs, err := checkpoint.DecodeManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	if newest != 5 || len(epochs) != 2 || epochs[0] != 4 {
		t.Fatalf("manifest (%d, %v), want (5, [4 5])", newest, epochs)
	}
}

// TestDurableSyncEvery: the fsync policy skips syncs between every Nth
// write but never skips the atomic-rename discipline.
func TestDurableSyncEvery(t *testing.T) {
	d, err := checkpoint.OpenDurable(t.TempDir(), checkpoint.DurableOptions{SyncEvery: 3, Retain: 10})
	if err != nil {
		t.Fatal(err)
	}
	for e := int32(1); e <= 6; e++ {
		writeEpoch(t, d, e)
	}
	// Writes 1 and 4 sync (record + manifest file fsync + up to 2 dir
	// fsyncs each); writes 2, 3, 5, 6 must not.
	if n := d.FsyncCount(); n < 4 || n > 8 {
		t.Fatalf("fsyncs = %d with SyncEvery=3 over 6 writes, want 4..8", n)
	}
	if e, _, err := d.NewestSealed(); err != nil || e != 6 {
		t.Fatalf("newest = (%d, %v), want 6", e, err)
	}
}

// TestDurableFallback: a truncated or bit-flipped newest record (the
// torn tail a crash leaves) falls back to the previous sealed epoch;
// manifest damage costs nothing because the directory scan is the
// authority.
func TestDurableFallback(t *testing.T) {
	corrupt := func(t *testing.T, name string, f func(b []byte) []byte) func(dir string) {
		return func(dir string) {
			t.Helper()
			p := filepath.Join(dir, name)
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, f(b), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []struct {
		name   string
		mangle func(dir string)
		want   int32
	}{
		{"truncated newest", corrupt(t, checkpoint.RecordFile(3), func(b []byte) []byte { return b[:len(b)/2] }), 2},
		{"bitflip newest payload", corrupt(t, checkpoint.RecordFile(3), func(b []byte) []byte {
			b[len(b)-3] ^= 0x40
			return b
		}), 2},
		{"bitflip newest header", corrupt(t, checkpoint.RecordFile(3), func(b []byte) []byte {
			b[1] ^= 0x01
			return b
		}), 2},
		{"empty newest", corrupt(t, checkpoint.RecordFile(3), func(b []byte) []byte { return nil }), 2},
		{"manifest deleted", func(dir string) { os.Remove(filepath.Join(dir, checkpoint.ManifestFile())) }, 3},
		{"manifest garbage", corrupt(t, checkpoint.ManifestFile(), func(b []byte) []byte { return []byte("not a manifest") }), 3},
		{"newest and middle corrupt", func(dir string) {
			corrupt(t, checkpoint.RecordFile(3), func(b []byte) []byte { return b[:10] })(dir)
			corrupt(t, checkpoint.RecordFile(2), func(b []byte) []byte { b[25] ^= 0xff; return b })(dir)
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{Retain: 5})
			if err != nil {
				t.Fatal(err)
			}
			for e := int32(1); e <= 3; e++ {
				writeEpoch(t, d, e)
			}
			tc.mangle(dir)
			reopened, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			e, payload, err := reopened.NewestSealed()
			if err != nil {
				t.Fatal(err)
			}
			if e != tc.want {
				t.Fatalf("fell back to epoch %d, want %d", e, tc.want)
			}
			if _, err := checkpoint.DecodeSnapshot(e, payload, decInt64); err != nil {
				t.Fatalf("fallback epoch %d undecodable: %v", e, err)
			}
		})
	}
}

// TestDurableNoSealedEpoch: an empty directory, one with only damaged
// records, and one with only a stray .tmp all report ErrNoSealedEpoch.
func TestDurableNoSealedEpoch(t *testing.T) {
	d, dir := mustOpen(t)
	if _, _, err := d.NewestSealed(); !errors.Is(err, checkpoint.ErrNoSealedEpoch) {
		t.Fatalf("empty dir: err = %v, want ErrNoSealedEpoch", err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpoint.RecordFile(1)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpoint.RecordFile(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.NewestSealed(); !errors.Is(err, checkpoint.ErrNoSealedEpoch) {
		t.Fatalf("only damaged files: err = %v, want ErrNoSealedEpoch", err)
	}
}

// TestDurableRewriteEpoch: a resumed run re-sealing an epoch number
// whose old record was corrupt atomically replaces it.
func TestDurableRewriteEpoch(t *testing.T) {
	d, dir := mustOpen(t)
	writeEpoch(t, d, 1)
	writeEpoch(t, d, 2)
	p := filepath.Join(dir, checkpoint.RecordFile(2))
	b, _ := os.ReadFile(p)
	b[len(b)-1] ^= 0xff
	os.WriteFile(p, b, 0o644)
	writeEpoch(t, d, 2) // the resumed run seals a fresh epoch 2
	e, payload, err := d.NewestSealed()
	if err != nil || e != 2 {
		t.Fatalf("newest after rewrite = (%d, %v), want 2", e, err)
	}
	if _, err := checkpoint.DecodeSnapshot(e, payload, decInt64); err != nil {
		t.Fatal(err)
	}
}

// failFS wraps the real filesystem with switchable write/fsync/open
// failures — the full-disk / dying-device model for the durable store.
type failFS struct {
	checkpoint.FS
	failWrite atomic.Bool
	failSync  atomic.Bool
	failOpen  atomic.Bool
}

var errDiskFull = errors.New("no space left on device (injected)")

func newFailFS() *failFS { return &failFS{FS: checkpoint.OsFS()} }

func (f *failFS) OpenFile(name string, flag int, perm os.FileMode) (checkpoint.File, error) {
	if f.failOpen.Load() {
		return nil, errDiskFull
	}
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f}, nil
}

type failFile struct {
	checkpoint.File
	fs *failFS
}

func (f *failFile) Write(b []byte) (int, error) {
	if f.fs.failWrite.Load() {
		return 0, errDiskFull
	}
	return f.File.Write(b)
}

func (f *failFile) Sync() error {
	if f.fs.failSync.Load() {
		return errDiskFull
	}
	return f.File.Sync()
}

// TestDurableFailingDisk drives WriteEpoch into every injected failure
// mode and pins the degradation contract: the call returns the error
// (never panics or wedges), leaves no .tmp litter under a record name,
// and NewestSealed keeps serving the last epoch that landed before the
// disk died.
func TestDurableFailingDisk(t *testing.T) {
	fsys := newFailFS()
	dir := t.TempDir()
	d, err := checkpoint.OpenDurable(dir, checkpoint.DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	writeEpoch(t, d, 1)
	writeEpoch(t, d, 2)

	fail := func(name string, arm func(bool)) {
		t.Helper()
		arm(true)
		payload := checkpoint.EncodeSnapshot(testSnapshot(3), encInt64)
		err := d.WriteEpoch(3, payload)
		arm(false)
		if err == nil {
			t.Fatalf("%s: WriteEpoch succeeded on a failing disk", name)
		}
		if !errors.Is(err, errDiskFull) {
			t.Fatalf("%s: injected error not surfaced: %v", name, err)
		}
		ep, _, nerr := d.NewestSealed()
		if nerr != nil || ep != 2 {
			t.Fatalf("%s: newest sealed after failure: epoch %d err %v, want 2", name, ep, nerr)
		}
	}
	fail("write", func(b bool) { fsys.failWrite.Store(b) })
	fail("fsync", func(b bool) { fsys.failSync.Store(b) })
	fail("open", func(b bool) { fsys.failOpen.Store(b) })

	// The disk comes back: the store must not have latched the failure.
	writeEpoch(t, d, 3)
	if ep, _, err := d.NewestSealed(); err != nil || ep != 3 {
		t.Fatalf("after recovery: epoch %d err %v, want 3", ep, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("failed write leaked temp file %s", e.Name())
		}
	}
}

// TestDurableFailingDiskAtOpen: a directory that cannot even be created
// surfaces the error from OpenDurable.
func TestDurableFailingDiskAtOpen(t *testing.T) {
	fsys := newFailFS()
	mk := &failMkdirFS{FS: fsys}
	if _, err := checkpoint.OpenDurable(filepath.Join(t.TempDir(), "sub"), checkpoint.DurableOptions{FS: mk}); !errors.Is(err, errDiskFull) {
		t.Fatalf("OpenDurable on failing mkdir: %v", err)
	}
}

type failMkdirFS struct{ checkpoint.FS }

func (failMkdirFS) MkdirAll(string, os.FileMode) error { return errDiskFull }
