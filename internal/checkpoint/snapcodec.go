package checkpoint

import (
	"fmt"

	"aap/internal/codec"
)

// EncodeSnapshot serializes a sealed snapshot into a durable record
// payload: per-worker program state, round counters, PEval flags, and
// the captured in-flight batches, each message encoded by enc. The
// epoch is not part of the payload — it lives in the record envelope.
func EncodeSnapshot[M any](s *Snapshot[M], enc func(dst []byte, m M) []byte) []byte {
	buf := codec.AppendUint32(nil, uint32(len(s.States)))
	for _, st := range s.States {
		buf = codec.AppendBytes(buf, st)
	}
	buf = codec.AppendInt32s(buf, s.Rounds)
	buf = codec.AppendBools(buf, s.PEvalDone)
	buf = codec.AppendUint32(buf, uint32(len(s.InFlight)))
	for _, f := range s.InFlight {
		buf = codec.AppendInt32(buf, f.From)
		buf = codec.AppendInt32(buf, f.To)
		buf = codec.AppendUint32(buf, uint32(len(f.Msgs)))
		for _, m := range f.Msgs {
			buf = enc(buf, m)
		}
	}
	return buf
}

// DecodeSnapshot parses a record payload written by EncodeSnapshot.
// Element counts come from the (possibly corrupt) input, so nothing is
// pre-allocated from a header figure: every slice grows by append under
// a reader-error guard, which bounds allocation by the bytes actually
// decoded — the need-before-make discipline of decodeBatch, extended to
// nested counts. dec must consume at least one byte per message or set
// the reader's error.
func DecodeSnapshot[M any](epoch int32, data []byte, dec func(r *codec.Reader) M) (*Snapshot[M], error) {
	r := codec.NewReader(data)
	nw := int(r.Uint32())
	if lim := r.Remaining(); nw > lim {
		// Each worker entry costs at least a 4-byte state length prefix.
		return nil, fmt.Errorf("checkpoint: snapshot claims %d workers in %d bytes", nw, lim)
	}
	s := &Snapshot[M]{Epoch: epoch}
	for i := 0; i < nw && r.Err() == nil; i++ {
		s.States = append(s.States, append([]byte(nil), r.Bytes()...))
	}
	s.Rounds = r.Int32s()
	s.PEvalDone = r.Bools()
	nf := int(r.Uint32())
	for i := 0; i < nf && r.Err() == nil; i++ {
		f := Flight[M]{From: r.Int32(), To: r.Int32()}
		nm := int(r.Uint32())
		for j := 0; j < nm && r.Err() == nil; j++ {
			f.Msgs = append(f.Msgs, dec(r))
		}
		s.InFlight = append(s.InFlight, f)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing snapshot bytes", r.Remaining())
	}
	if len(s.States) != nw || len(s.Rounds) != nw || len(s.PEvalDone) != nw {
		return nil, fmt.Errorf("checkpoint: snapshot worker vectors disagree: %d states, %d rounds, %d peval flags (want %d)",
			len(s.States), len(s.Rounds), len(s.PEvalDone), nw)
	}
	return s, nil
}
