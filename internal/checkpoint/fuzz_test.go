package checkpoint_test

import (
	"testing"

	"aap/internal/checkpoint"
	"aap/internal/codec"
)

// FuzzDurableDecode feeds arbitrary bytes through every durable decode
// surface — record envelope, manifest, and snapshot payload — and pins
// the crash-consistency contract: corrupt, truncated, or length-lying
// input must come back as an error, never a panic, and never an
// allocation larger than the input itself (the need-before-make guard,
// same discipline as decodeBatch).
func FuzzDurableDecode(f *testing.F) {
	snap := &checkpoint.Snapshot[int64]{
		Epoch:     3,
		States:    [][]byte{codec.AppendInt64(nil, 42), nil},
		Rounds:    []int32{5, 4},
		PEvalDone: []bool{true, true},
		InFlight:  []checkpoint.Flight[int64]{{From: 1, To: 0, Msgs: []int64{7, -9}}},
	}
	payload := checkpoint.EncodeSnapshot(snap, encInt64)

	// Seed corpus: a valid snapshot payload, assorted truncations of
	// it, and shapes that lie about their lengths.
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add(payload[:1])
	f.Add([]byte{})
	f.Add(codec.AppendUint32(nil, 0xffffffff))                   // worker count lie
	f.Add(codec.AppendUint32(codec.AppendUint32(nil, 1), 1<<30)) // state length lie
	lie := codec.AppendUint32(nil, 2)                            // 2 workers...
	lie = codec.AppendBytes(lie, nil)                            // ...but one state
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Record and manifest envelopes: any successful parse must have
		// actually validated the CRC over a payload that fits the input.
		if epoch, p, err := checkpoint.DecodeRecord(data); err == nil {
			if len(p) > len(data) || epoch <= 0 {
				t.Fatalf("DecodeRecord accepted epoch %d with %d payload bytes from %d input bytes", epoch, len(p), len(data))
			}
		}
		if newest, epochs, err := checkpoint.DecodeManifest(data); err == nil {
			if newest <= 0 || len(epochs)*4 > len(data) {
				t.Fatalf("DecodeManifest accepted (%d, %d epochs) from %d bytes", newest, len(epochs), len(data))
			}
		}
		// Snapshot payload: decoded structure must be bounded by the
		// input (every state byte, round, flag, and 8-byte message was
		// read from somewhere).
		s, err := checkpoint.DecodeSnapshot(1, data, decInt64)
		if err != nil {
			return
		}
		total := 0
		for _, st := range s.States {
			total += len(st) + 4
		}
		total += 4 * len(s.Rounds)
		total += len(s.PEvalDone)
		for _, fl := range s.InFlight {
			total += 12 + 8*len(fl.Msgs)
		}
		if total > len(data) {
			t.Fatalf("decoded %d bytes of structure from %d input bytes", total, len(data))
		}
	})
}
