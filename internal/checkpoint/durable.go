// Durable mirrors the Store's seal protocol onto disk so a run survives
// the death of the whole process, not just a worker: every sealed
// snapshot becomes one crash-consistent record file, and a restarted
// process resumes from the newest record that still decodes.
//
// On-disk layout of a checkpoint directory:
//
//	ep-0000000001.ckpt    record: envelope + snapshot payload
//	ep-0000000002.ckpt
//	ep-0000000003.ckpt    (newest sealed epoch)
//	MANIFEST              envelope + (newest epoch, retained epochs)
//	*.tmp                 in-progress writes, ignored by readers
//
// Every file carries the same 20-byte envelope — magic, format version,
// epoch, payload length, CRC32 (IEEE) of the payload — so a torn tail,
// a bit flip, or a length-lying header is detected before any payload
// byte is trusted. Writes are crash-consistent by construction: the
// bytes go to a .tmp sibling first, are fsync'd (per the SyncEvery
// policy), and land under their final name with an atomic rename
// followed by a directory fsync. A reader therefore never observes a
// half-written record under a record name; the worst a crash leaves
// behind is a stale .tmp and a missing newest epoch, both of which the
// open path tolerates by falling back to the previous sealed record.
package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"aap/internal/codec"
)

const (
	recordMagic    = 0x43504141 // "AAPC" little-endian: checkpoint record
	manifestMagic  = 0x4d504141 // "AAPM" little-endian: manifest
	durableVersion = 1
	envelopeBytes  = 20
)

// manifestName is the fixed name of the manifest file inside a
// checkpoint directory.
const manifestName = "MANIFEST"

// ErrNoSealedEpoch is returned when a checkpoint directory holds no
// record that decodes cleanly — nothing to resume from.
var ErrNoSealedEpoch = fmt.Errorf("checkpoint: no usable sealed epoch")

// DurableOptions tunes the file-backed store.
type DurableOptions struct {
	// SyncEvery fsyncs every Nth record write (1 = every write, the
	// default). Between synced writes the data still goes through the
	// temp-file + atomic-rename dance, so a crash can lose at most the
	// last SyncEvery-1 epochs to the page cache — never corrupt one.
	SyncEvery int
	// Retain keeps the newest K epochs on disk and prunes older record
	// files. Defaults to 3; the floor is 2 so a corruption of the
	// newest record always leaves a fallback.
	Retain int
	// FS overrides the filesystem (fault-injection seam); nil uses the
	// real one.
	FS FS
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.Retain <= 0 {
		o.Retain = 3
	}
	if o.Retain < 2 {
		o.Retain = 2
	}
	if o.FS == nil {
		o.FS = OsFS()
	}
	return o
}

// DurableStore persists sealed snapshots as per-epoch record files in
// one directory. It is safe for concurrent use, and a reader in another
// process may poll the same directory while this store writes.
type DurableStore struct {
	dir  string
	opts DurableOptions

	mu     sync.Mutex
	epochs []int32 // retained epochs, ascending
	writes int64   // WriteEpoch calls, drives the SyncEvery policy

	fsyncs atomic.Int64
	bytes  atomic.Int64
}

// OpenDurable opens (creating if needed) a checkpoint directory. It
// scans for existing record files but does not validate their contents;
// NewestSealed validates lazily, per candidate, so a corrupt record
// costs nothing until someone tries to resume from it.
func OpenDurable(dir string, opts DurableOptions) (*DurableStore, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open durable dir: %w", err)
	}
	d := &DurableStore{dir: dir, opts: opts}
	d.epochs = scanEpochs(opts.FS, dir)
	return d, nil
}

// Dir returns the directory this store writes to.
func (d *DurableStore) Dir() string { return d.dir }

// FsyncCount returns how many fsync syscalls the store has issued.
func (d *DurableStore) FsyncCount() int64 { return d.fsyncs.Load() }

// BytesWritten returns the cumulative record + manifest bytes written.
func (d *DurableStore) BytesWritten() int64 { return d.bytes.Load() }

// RecordFile returns the file name of epoch's record inside a
// checkpoint directory; exported so tests and chaos harnesses can
// corrupt a specific record.
func RecordFile(epoch int32) string {
	return fmt.Sprintf("ep-%010d.ckpt", epoch)
}

// ManifestFile returns the manifest's file name inside a checkpoint
// directory.
func ManifestFile() string { return manifestName }

func parseRecordName(name string) (int32, bool) {
	var e int32
	if n, err := fmt.Sscanf(name, "ep-%d.ckpt", &e); n != 1 || err != nil || e <= 0 {
		return 0, false
	}
	if RecordFile(e) != name {
		return 0, false
	}
	return e, true
}

func scanEpochs(fsys FS, dir string) []int32 {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var es []int32
	for _, ent := range ents {
		if e, ok := parseRecordName(ent.Name()); ok {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	return es
}

// WriteEpoch persists one sealed epoch's payload as a record file,
// prunes epochs beyond the retention window, and rewrites the manifest
// to name the newest sealed epoch. Re-writing an existing epoch (a
// resumed run re-sealing past a corrupt tail) atomically replaces it.
func (d *DurableStore) WriteEpoch(epoch int32, payload []byte) error {
	if epoch <= 0 {
		return fmt.Errorf("checkpoint: cannot persist epoch %d", epoch)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sync := d.writes%int64(d.opts.SyncEvery) == 0
	d.writes++

	rec := appendEnvelope(make([]byte, 0, envelopeBytes+len(payload)), recordMagic, epoch, payload)
	if err := d.writeAtomic(RecordFile(epoch), rec, sync); err != nil {
		return err
	}
	d.bytes.Add(int64(len(rec)))

	// Insert into the retained set and prune the oldest beyond Retain.
	i := sort.Search(len(d.epochs), func(i int) bool { return d.epochs[i] >= epoch })
	if i == len(d.epochs) || d.epochs[i] != epoch {
		d.epochs = append(d.epochs, 0)
		copy(d.epochs[i+1:], d.epochs[i:])
		d.epochs[i] = epoch
	}
	for len(d.epochs) > d.opts.Retain {
		victim := d.epochs[0]
		d.epochs = d.epochs[1:]
		// Best-effort: a record that refuses to die only wastes disk,
		// and the next prune retries it anyway.
		_ = d.opts.FS.Remove(filepath.Join(d.dir, RecordFile(victim)))
	}

	mp := codec.AppendInt32(nil, d.epochs[len(d.epochs)-1])
	mp = codec.AppendInt32s(mp, d.epochs)
	man := appendEnvelope(make([]byte, 0, envelopeBytes+len(mp)), manifestMagic, d.epochs[len(d.epochs)-1], mp)
	if err := d.writeAtomic(manifestName, man, sync); err != nil {
		return err
	}
	d.bytes.Add(int64(len(man)))
	return nil
}

// writeAtomic lands data under name via temp file + (fsync) + rename +
// (directory fsync), so readers only ever see the old file or the
// complete new one.
func (d *DurableStore) writeAtomic(name string, data []byte, sync bool) error {
	fsys := d.opts.FS
	final := filepath.Join(d.dir, name)
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return fmt.Errorf("checkpoint: %s: fsync: %w", name, err)
		}
		d.fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if sync {
		if dirf, err := fsys.Open(d.dir); err == nil {
			if dirf.Sync() == nil {
				d.fsyncs.Add(1)
			}
			dirf.Close()
		}
	}
	return nil
}

// NewestSealed returns the newest epoch whose record file decodes
// cleanly, with its snapshot payload. Candidates come from the union of
// the manifest (when it decodes) and a directory scan — the scan is the
// authority, since a crash between record and manifest writes leaves
// the manifest one epoch stale — and are tried newest-first: a torn,
// truncated, or bit-flipped record is skipped, falling back to the
// previous sealed epoch. ErrNoSealedEpoch when nothing decodes.
func (d *DurableStore) NewestSealed() (int32, []byte, error) {
	seen := make(map[int32]bool)
	var cands []int32
	for _, e := range scanEpochs(d.opts.FS, d.dir) {
		if !seen[e] {
			seen[e] = true
			cands = append(cands, e)
		}
	}
	if mb, err := d.opts.FS.ReadFile(filepath.Join(d.dir, manifestName)); err == nil {
		if _, es, err := DecodeManifest(mb); err == nil {
			for _, e := range es {
				if !seen[e] {
					seen[e] = true
					cands = append(cands, e)
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, e := range cands {
		data, err := d.opts.FS.ReadFile(filepath.Join(d.dir, RecordFile(e)))
		if err != nil {
			continue
		}
		epoch, payload, err := DecodeRecord(data)
		if err != nil || epoch != e {
			continue // corrupt or misfiled: fall back to the next older
		}
		return e, payload, nil
	}
	return 0, nil, fmt.Errorf("%w in %s", ErrNoSealedEpoch, d.dir)
}

// Epochs returns the epochs currently on disk, ascending (contents not
// validated).
func (d *DurableStore) Epochs() []int32 {
	return scanEpochs(d.opts.FS, d.dir)
}

func appendEnvelope(dst []byte, magic uint32, epoch int32, payload []byte) []byte {
	dst = codec.AppendUint32(dst, magic)
	dst = codec.AppendUint32(dst, durableVersion)
	dst = codec.AppendInt32(dst, epoch)
	dst = codec.AppendUint32(dst, uint32(len(payload)))
	dst = codec.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// decodeEnvelope validates the 20-byte header against the actual bytes
// present — the need-before-make guard: a length-lying header fails
// here before any payload byte is trusted or copied.
func decodeEnvelope(data []byte, wantMagic uint32) (epoch int32, payload []byte, err error) {
	r := codec.NewReader(data)
	magic := r.Uint32()
	version := r.Uint32()
	epoch = r.Int32()
	plen := r.Uint32()
	crc := r.Uint32()
	if r.Err() != nil {
		return 0, nil, fmt.Errorf("checkpoint: truncated envelope (%d bytes)", len(data))
	}
	if magic != wantMagic {
		return 0, nil, fmt.Errorf("checkpoint: bad magic %#08x", magic)
	}
	if version != durableVersion {
		return 0, nil, fmt.Errorf("checkpoint: unsupported format version %d", version)
	}
	if epoch <= 0 {
		return 0, nil, fmt.Errorf("checkpoint: invalid epoch %d", epoch)
	}
	if int(plen) != r.Remaining() {
		return 0, nil, fmt.Errorf("checkpoint: payload length %d does not match %d bytes on disk", plen, r.Remaining())
	}
	payload = data[envelopeBytes:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return 0, nil, fmt.Errorf("checkpoint: CRC mismatch: header %#08x, payload %#08x", crc, got)
	}
	return epoch, payload, nil
}

// DecodeRecord validates a record file's envelope and returns its epoch
// and snapshot payload. The payload aliases data.
func DecodeRecord(data []byte) (epoch int32, payload []byte, err error) {
	return decodeEnvelope(data, recordMagic)
}

// DecodeManifest validates a manifest file and returns the newest
// sealed epoch and the retained epoch list it names.
func DecodeManifest(data []byte) (newest int32, epochs []int32, err error) {
	epoch, payload, err := decodeEnvelope(data, manifestMagic)
	if err != nil {
		return 0, nil, err
	}
	r := codec.NewReader(payload)
	newest = r.Int32()
	epochs = r.Int32s()
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	if r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("checkpoint: %d trailing manifest bytes", r.Remaining())
	}
	if newest != epoch {
		return 0, nil, fmt.Errorf("checkpoint: manifest names epoch %d but envelope says %d", newest, epoch)
	}
	for _, e := range epochs {
		if e <= 0 || e > newest {
			return 0, nil, fmt.Errorf("checkpoint: manifest retains impossible epoch %d (newest %d)", e, newest)
		}
	}
	return newest, epochs, nil
}
