package checkpoint_test

import (
	"math/rand"
	"sync"
	"testing"

	"aap/internal/checkpoint"
)

// TestSnapshotConservesTotal runs concurrent random transfers while
// taking snapshots and checks the Chandy-Lamport consistency invariant:
// every snapshot's total (states + in-flight) equals the initial total.
func TestSnapshotConservesTotal(t *testing.T) {
	const procs = 8
	const initial = 1000
	states := make([]int64, procs)
	for i := range states {
		states[i] = initial
	}
	c := checkpoint.NewCoordinator(states)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Application traffic: random transfers with a delivery queue that
	// reorders messages, modeling asynchronous channels.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var queue []checkpoint.Message
			for {
				select {
				case <-stop:
					for _, m := range queue {
						c.Deliver(m)
					}
					return
				default:
				}
				from, to := rng.Intn(procs), rng.Intn(procs)
				if from == to {
					continue
				}
				queue = append(queue, c.Send(from, to, int64(rng.Intn(5))))
				// Deliver a random queued message, possibly out of order.
				if len(queue) > 3 {
					i := rng.Intn(len(queue))
					c.Deliver(queue[i])
					queue = append(queue[:i], queue[i+1:]...)
				}
			}
		}(int64(w))
	}

	for epoch := 0; epoch < 20; epoch++ {
		c.BeginSnapshot()
	}
	close(stop)
	wg.Wait()
	snap := c.Collect()
	if got := snap.Total(); got != procs*initial {
		t.Fatalf("snapshot total %d, want %d", got, procs*initial)
	}
}

// TestQuiescentSnapshotMatchesState: with no traffic, the snapshot is
// exactly the current states and has no channel state.
func TestQuiescentSnapshotMatchesState(t *testing.T) {
	c := checkpoint.NewCoordinator([]int64{5, 7, 11})
	c.BeginSnapshot()
	snap := c.Collect()
	if snap.Total() != 23 {
		t.Fatalf("total %d, want 23", snap.Total())
	}
	if len(snap.InFlight) != 0 {
		t.Fatalf("unexpected in-flight messages: %v", snap.InFlight)
	}
	want := []int64{5, 7, 11}
	for i, s := range snap.States {
		if s != want[i] {
			t.Errorf("state[%d] = %d, want %d", i, s, want[i])
		}
	}
}

// TestLateMessageRecordedAsChannelState pins the Section 6 rule: a
// message sent before the snapshot but delivered after the receiver
// recorded goes into the channel state.
func TestLateMessageRecordedAsChannelState(t *testing.T) {
	c := checkpoint.NewCoordinator([]int64{100, 100})
	m := c.Send(0, 1, 30) // in flight, pre-snapshot
	c.BeginSnapshot()
	c.Deliver(m) // arrives without the token
	snap := c.Collect()
	if len(snap.InFlight) != 1 || snap.InFlight[0].Value != 30 {
		t.Fatalf("in-flight = %v, want the 30-unit transfer", snap.InFlight)
	}
	if snap.Total() != 200 {
		t.Fatalf("total %d, want 200", snap.Total())
	}
	// The sender's recorded state must show the deduction, the
	// receiver's must not show the delivery.
	if snap.States[0] != 70 || snap.States[1] != 100 {
		t.Fatalf("states = %v, want [70 100]", snap.States)
	}
}

// TestPostSnapshotMessageExcluded pins the complementary rule: messages
// stamped with the token are not channel state.
func TestPostSnapshotMessageExcluded(t *testing.T) {
	c := checkpoint.NewCoordinator([]int64{100, 100})
	c.BeginSnapshot()
	m := c.Send(0, 1, 30) // carries the token
	c.Deliver(m)
	snap := c.Collect()
	if len(snap.InFlight) != 0 {
		t.Fatalf("post-snapshot message leaked into channel state: %v", snap.InFlight)
	}
	if snap.States[0] != 100 || snap.States[1] != 100 {
		t.Fatalf("states = %v, want pre-send values", snap.States)
	}
}

// TestRestoreReplaysInFlight: recovery resets states and redelivers the
// channel state, after which the live total is conserved.
func TestRestoreReplaysInFlight(t *testing.T) {
	c := checkpoint.NewCoordinator([]int64{50, 50})
	m := c.Send(0, 1, 20)
	c.BeginSnapshot()
	c.Deliver(m)
	snap := c.Collect()

	// Simulate divergence after the snapshot, then a failure.
	c.Deliver(c.Send(0, 1, 10))

	replay, err := c.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range replay {
		c.Deliver(rm)
	}
	total := c.Process(0).State + c.Process(1).State
	if total != 100 {
		t.Fatalf("post-recovery total %d, want 100", total)
	}
	if c.Process(0).State != 30 || c.Process(1).State != 70 {
		t.Fatalf("post-recovery states [%d %d], want [30 70]", c.Process(0).State, c.Process(1).State)
	}
}

func TestRestoreSizeMismatch(t *testing.T) {
	c := checkpoint.NewCoordinator([]int64{1, 2})
	if _, err := c.Restore(&checkpoint.Snapshot{States: []int64{1}}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
