package checkpoint_test

import (
	"math/rand"
	"sync"
	"testing"

	"aap/internal/checkpoint"
	"aap/internal/codec"
)

// node simulates one engine worker following the marker discipline the
// engine implements: stamp sends with the sender's epoch, record the
// local cut before draining any batch stamped with a newer epoch,
// capture late batches, report every batch's lifecycle to the store.
type node struct {
	id    int32
	state int64
	epoch int32
}

type batch struct {
	from, to int32
	stamp    int32
	msgs     []int64
}

type sim struct {
	mu    sync.Mutex
	store *checkpoint.Store[int64]
	nodes []*node
}

func newSim(states []int64) *sim {
	s := &sim{store: checkpoint.NewStore[int64](len(states))}
	for i, v := range states {
		s.nodes = append(s.nodes, &node{id: int32(i), state: v})
	}
	return s
}

// send debits the sender and hands off a batch stamped with the
// sender's current epoch, like the engine's flush handoff.
func (s *sim) send(from, to int32, vals []int64) batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[from]
	for _, v := range vals {
		n.state -= v
	}
	b := batch{from: from, to: to, stamp: n.epoch, msgs: vals}
	s.store.BatchSent(b.stamp)
	return b
}

// drain delivers a batch at its destination, recording the receiver's
// cut first if the batch carries a newer epoch (the marker rule), and
// capturing the batch as channel state if it predates the receiver's
// cut (the late-message rule).
func (s *sim) drain(b batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[b.to]
	if b.stamp > n.epoch {
		s.recordLocked(n, b.stamp)
	}
	if b.stamp < n.epoch {
		s.store.Capture(checkpoint.Flight[int64]{
			From: b.from, To: b.to, Msgs: append([]int64(nil), b.msgs...),
		})
	}
	for _, v := range b.msgs {
		n.state += v
	}
	s.store.BatchDrained(b.stamp)
}

// poll is the safe-point check: a node with no incoming marker still
// records when it notices the announced epoch advanced.
func (s *sim) poll(i int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[i]
	if e := s.store.AnnouncedEpoch(); e > n.epoch {
		s.recordLocked(n, e)
	}
}

func (s *sim) recordLocked(n *node, epoch int32) {
	st := codec.AppendInt64(nil, n.state)
	if err := s.store.Record(n.id, epoch, st, 0, true, nil); err != nil {
		panic(err)
	}
	n.epoch = epoch
}

// total decodes a snapshot's conserved quantity: recorded states plus
// in-flight values.
func total(t *testing.T, snap *checkpoint.Snapshot[int64]) int64 {
	t.Helper()
	var sum int64
	for _, st := range snap.States {
		r := codec.NewReader(st)
		sum += r.Int64()
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
	for _, f := range snap.InFlight {
		for _, v := range f.Msgs {
			sum += v
		}
	}
	return sum
}

// TestSnapshotConservesTotal runs concurrent random transfers while
// taking snapshots and checks the Chandy-Lamport consistency invariant:
// every sealed snapshot's total (states + in-flight) equals the initial
// total.
func TestSnapshotConservesTotal(t *testing.T) {
	const procs = 8
	const initial = 1000
	states := make([]int64, procs)
	for i := range states {
		states[i] = initial
	}
	s := newSim(states)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var queue []batch
			for {
				select {
				case <-stop:
					for _, b := range queue {
						s.drain(b)
					}
					return
				default:
				}
				from, to := rng.Intn(procs), rng.Intn(procs)
				if from == to {
					continue
				}
				queue = append(queue, s.send(int32(from), int32(to), []int64{int64(rng.Intn(5))}))
				// Drain a random queued batch, possibly out of order.
				if len(queue) > 3 {
					i := rng.Intn(len(queue))
					s.drain(queue[i])
					queue = append(queue[:i], queue[i+1:]...)
				}
				s.poll(int32(rng.Intn(procs)))
			}
		}(int64(w))
	}

	for epoch := 0; epoch < 20; epoch++ {
		s.store.Announce()
		for i := 0; i < procs; i++ {
			s.poll(int32(i))
		}
	}
	close(stop)
	wg.Wait()
	// Everything drained: the final pending epoch (if any) can seal once
	// all nodes record it.
	for i := 0; i < procs; i++ {
		s.poll(int32(i))
	}
	snap := s.store.Sealed()
	if snap == nil {
		t.Fatal("no snapshot sealed")
	}
	if got := total(t, snap); got != procs*initial {
		t.Fatalf("snapshot total %d, want %d", got, procs*initial)
	}
}

// TestQuiescentSnapshotMatchesState: with no traffic, the snapshot
// seals as soon as every worker records, with no channel state.
func TestQuiescentSnapshotMatchesState(t *testing.T) {
	s := newSim([]int64{5, 7, 11})
	if _, ok := s.store.Announce(); !ok {
		t.Fatal("announce refused on idle store")
	}
	for i := int32(0); i < 3; i++ {
		s.poll(i)
	}
	snap := s.store.Sealed()
	if snap == nil {
		t.Fatal("epoch did not seal with all recorded and nothing outstanding")
	}
	if got := total(t, snap); got != 23 {
		t.Fatalf("total %d, want 23", got)
	}
	if len(snap.InFlight) != 0 {
		t.Fatalf("unexpected in-flight messages: %v", snap.InFlight)
	}
}

// TestLateMessageRecordedAsChannelState pins the Section 6 rule: a
// message sent before the snapshot but drained after the receiver
// recorded goes into the channel state, and the epoch cannot seal until
// that message has drained.
func TestLateMessageRecordedAsChannelState(t *testing.T) {
	s := newSim([]int64{100, 100})
	b := s.send(0, 1, []int64{30}) // in flight, pre-snapshot
	s.store.Announce()
	s.poll(0)
	s.poll(1)
	if s.store.Sealed() != nil {
		t.Fatal("sealed while a pre-cut batch was still outstanding")
	}
	s.drain(b) // arrives without the token
	snap := s.store.Sealed()
	if snap == nil {
		t.Fatal("epoch did not seal after the late batch drained")
	}
	if len(snap.InFlight) != 1 || snap.InFlight[0].Msgs[0] != 30 {
		t.Fatalf("in-flight = %v, want the 30-unit transfer", snap.InFlight)
	}
	if got := total(t, snap); got != 200 {
		t.Fatalf("total %d, want 200", got)
	}
	// The sender's recorded state must show the deduction, the
	// receiver's must not show the delivery.
	if codec.NewReader(snap.States[0]).Int64() != 70 {
		t.Fatalf("sender state = %v, want 70", snap.States[0])
	}
	if codec.NewReader(snap.States[1]).Int64() != 100 {
		t.Fatalf("receiver state = %v, want 100", snap.States[1])
	}
}

// TestPostSnapshotMessageExcluded pins the complementary rule: messages
// stamped with the new epoch are not channel state.
func TestPostSnapshotMessageExcluded(t *testing.T) {
	s := newSim([]int64{100, 100})
	s.store.Announce()
	s.poll(0)
	b := s.send(0, 1, []int64{30}) // carries the token
	s.drain(b)                     // receiver records on the marker, then applies
	snap := s.store.Sealed()
	if snap == nil {
		t.Fatal("epoch did not seal")
	}
	if len(snap.InFlight) != 0 {
		t.Fatalf("post-snapshot message leaked into channel state: %v", snap.InFlight)
	}
	if codec.NewReader(snap.States[0]).Int64() != 100 || codec.NewReader(snap.States[1]).Int64() != 100 {
		t.Fatal("states must be pre-send values")
	}
}

// TestAnnounceGatedOnSeal: only one epoch is in flight at a time.
func TestAnnounceGatedOnSeal(t *testing.T) {
	s := newSim([]int64{1, 2})
	if _, ok := s.store.Announce(); !ok {
		t.Fatal("first announce refused")
	}
	if _, ok := s.store.Announce(); ok {
		t.Fatal("second announce accepted while first epoch still recording")
	}
	s.poll(0)
	s.poll(1)
	if e, ok := s.store.Announce(); !ok || e != 2 {
		t.Fatalf("announce after seal = (%d, %v), want (2, true)", e, ok)
	}
}

// TestResetRewindsToSealed: recovery abandons the pending epoch and
// outstanding accounting; announcing afterwards starts the next epoch
// after the sealed one.
func TestResetRewindsToSealed(t *testing.T) {
	s := newSim([]int64{1, 2})
	s.store.Announce()
	s.poll(0)
	s.poll(1) // epoch 1 seals
	s.store.Announce()
	s.send(0, 1, []int64{1}) // outstanding batch, never drained (lost in the crash)
	s.poll(0)
	s.store.Reset()
	if got := s.store.AnnouncedEpoch(); got != 1 {
		t.Fatalf("announced after reset = %d, want 1", got)
	}
	if snap := s.store.Sealed(); snap == nil || snap.Epoch != 1 {
		t.Fatalf("sealed snapshot lost across reset: %v", snap)
	}
	// The post-reset epoch must be able to seal even though the lost
	// batch was never drained.
	s.store.Announce()
	s.nodes[0].epoch, s.nodes[1].epoch = 1, 1
	s.poll(0)
	s.poll(1)
	if snap := s.store.Sealed(); snap == nil || snap.Epoch != 2 {
		t.Fatalf("epoch 2 did not seal after reset: %v", snap)
	}
}

// TestRecordMisuse: recording for a non-pending epoch or twice for the
// same epoch errors instead of corrupting the snapshot.
func TestRecordMisuse(t *testing.T) {
	st := checkpoint.NewStore[int64](2)
	if err := st.Record(0, 1, nil, 0, false, nil); err == nil {
		t.Fatal("record with no pending epoch must error")
	}
	st.Announce()
	if err := st.Record(0, 1, nil, 0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(0, 1, nil, 0, false, nil); err == nil {
		t.Fatal("double record must error")
	}
}
