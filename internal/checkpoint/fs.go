package checkpoint

import (
	"io"
	"io/fs"
	"os"
)

// FS abstracts the filesystem calls DurableStore makes, so tests and
// chaos harnesses can inject write/fsync failures (full disk, dying
// device) and prove the store degrades instead of panicking or wedging
// the seal path. The zero value of DurableOptions uses the real
// filesystem via OsFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the slice of *os.File the durable store needs: sequential
// writes, fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OsFS returns the passthrough FS over the real filesystem.
func OsFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }
