// Package checkpoint implements Chandy-Lamport distributed snapshots
// (Section 6 of the paper): GRAPE+ adapts them for fault tolerance
// because asynchronous runs have no superstep boundary to check-point at.
//
// The protocol here is the one the paper describes: the master broadcasts
// a checkpoint request carrying a token; a worker that sees the token for
// the first time records its local state before sending any further
// messages and attaches the token to subsequent messages; messages that
// arrive late without the token are added to the snapshot as in-flight
// channel state. The resulting global state is consistent: no message is
// lost or duplicated across the cut.
package checkpoint

import (
	"fmt"
	"sync"
)

// Message is an application payload in transit between processes.
type Message struct {
	From, To int
	Value    int64
	// token marks messages sent after the sender recorded its snapshot
	// for this epoch.
	token int32
}

// Process is a participant in the snapshot protocol. Applications embed
// their state as a single int64 here (the tests use account balances and
// PageRank-style mass); real engines would serialize program state.
type Process struct {
	ID    int
	State int64

	mu        sync.Mutex
	recorded  bool
	snapState int64
	inFlight  []Message
	epoch     int32
}

// Snapshot is a recorded consistent global state.
type Snapshot struct {
	Epoch  int32
	States []int64
	// InFlight holds the channel state: messages crossing the cut.
	InFlight []Message
}

// Total returns the conserved quantity of a snapshot: the sum of process
// states plus in-flight values, the invariant the tests check.
func (s *Snapshot) Total() int64 {
	var t int64
	for _, v := range s.States {
		t += v
	}
	for _, m := range s.InFlight {
		t += m.Value
	}
	return t
}

// Coordinator runs the protocol over a set of processes connected by
// in-memory channels. It plays both the master (broadcasting the request)
// and the collector.
type Coordinator struct {
	mu    sync.Mutex
	procs []*Process
	epoch int32
}

// NewCoordinator creates a coordinator over n processes with the given
// initial states.
func NewCoordinator(states []int64) *Coordinator {
	c := &Coordinator{}
	for i, s := range states {
		c.procs = append(c.procs, &Process{ID: i, State: s})
	}
	return c
}

// Process returns process i.
func (c *Coordinator) Process(i int) *Process { return c.procs[i] }

// NumProcesses returns the number of participants.
func (c *Coordinator) NumProcesses() int { return len(c.procs) }

// Send transfers value units from process `from` to `to`, stamping the
// message with the sender's epoch. It models the point-to-point push
// channels of the engine.
func (c *Coordinator) Send(from, to int, value int64) Message {
	p := c.procs[from]
	p.mu.Lock()
	p.State -= value
	m := Message{From: from, To: to, Value: value, token: p.epoch}
	p.mu.Unlock()
	return m
}

// Deliver applies a message at its destination. If the receiver has
// recorded the current epoch's snapshot but the message predates the
// sender's snapshot (no token), the message is added to the snapshot's
// channel state, exactly the "late messages without the token" rule of
// Section 6.
func (c *Coordinator) Deliver(m Message) {
	p := c.procs[m.To]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.recorded && m.token < p.epoch {
		p.inFlight = append(p.inFlight, m)
	}
	p.State += m.Value
}

// BeginSnapshot broadcasts the checkpoint request: every process records
// its state before its next send. It returns the new epoch.
func (c *Coordinator) BeginSnapshot() int32 {
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()
	for _, p := range c.procs {
		p.mu.Lock()
		if p.epoch < epoch {
			p.epoch = epoch
			p.recorded = true
			p.snapState = p.State
			p.inFlight = nil
		}
		p.mu.Unlock()
	}
	return epoch
}

// Collect assembles the snapshot once the application has quiesced or
// decides the channel-recording window is over.
func (c *Coordinator) Collect() *Snapshot {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	snap := &Snapshot{Epoch: epoch}
	for _, p := range c.procs {
		p.mu.Lock()
		if !p.recorded {
			p.mu.Unlock()
			snap.States = append(snap.States, p.State)
			continue
		}
		snap.States = append(snap.States, p.snapState)
		snap.InFlight = append(snap.InFlight, p.inFlight...)
		p.recorded = false
		p.inFlight = nil
		p.mu.Unlock()
	}
	return snap
}

// Restore resets every process to the snapshot state and returns the
// in-flight messages that must be redelivered, the recovery path the
// paper measured at ~20 seconds per worker failure.
func (c *Coordinator) Restore(s *Snapshot) ([]Message, error) {
	if len(s.States) != len(c.procs) {
		return nil, fmt.Errorf("checkpoint: snapshot has %d states for %d processes", len(s.States), len(c.procs))
	}
	for i, p := range c.procs {
		p.mu.Lock()
		p.State = s.States[i]
		p.recorded = false
		p.inFlight = nil
		p.mu.Unlock()
	}
	return append([]Message(nil), s.InFlight...), nil
}
