// Package checkpoint implements Chandy-Lamport distributed snapshots
// (Section 6 of the paper): GRAPE+ adapts them for fault tolerance
// because asynchronous runs have no superstep boundary to check-point at.
//
// The protocol is the paper's: the master broadcasts a checkpoint
// request carrying a token (here an epoch number); a worker that sees
// the token for the first time records its local state before sending
// any further messages and stamps subsequent messages with the new
// epoch; messages that arrive late without the token are added to the
// snapshot as in-flight channel state. The resulting global state is
// consistent: no message is lost or duplicated across the cut.
//
// Store is the collector half of that protocol, generic over the
// message type so the engine can snapshot real designated-message
// batches. The engine side supplies the marker discipline: stamp every
// batch with the sender's epoch at handoff, record a worker's cut
// before delivering any batch stamped with a newer epoch, and report
// every batch's lifecycle (BatchSent at handoff, BatchDrained at
// delivery) so the Store knows when no pre-cut message can still be in
// flight and the epoch can seal.
package checkpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrFutureEpoch is returned by Record when a worker offers a cut for an
// epoch that has never been announced. A record from the future would
// let a buggy caller seal a snapshot no marker ever propagated, so the
// store rejects it by name and the engine can tell the misuse apart from
// the benign already-sealed race.
var ErrFutureEpoch = errors.New("checkpoint: record for an unannounced future epoch")

// Flight is channel state crossing the cut: messages that were sent
// before the sender recorded epoch e but drained after the receiver
// did. On recovery they are re-injected through the normal inbox path.
type Flight[M any] struct {
	From, To int32
	Msgs     []M
}

// Snapshot is a consistent global state: per-worker serialized program
// state, per-worker round counters, and the in-flight messages across
// the cut.
type Snapshot[M any] struct {
	Epoch     int32
	States    [][]byte
	Rounds    []int32
	PEvalDone []bool
	InFlight  []Flight[M]
}

// Bytes returns the serialized size of the snapshot's program state,
// the figure reported as bytes/snapshot overhead.
func (s *Snapshot[M]) Bytes() int {
	n := 0
	for _, st := range s.States {
		n += len(st)
	}
	return n
}

// Store assembles snapshots for one run. One epoch is in flight at a
// time: Announce refuses to start epoch e+1 until epoch e has sealed,
// which keeps the marker algebra trivial (every live batch is stamped
// with either the pending epoch or the one before it).
type Store[M any] struct {
	announced atomic.Int32 // highest epoch announced; workers poll this

	mu          sync.Mutex
	n           int
	recorded    []int32       // per-worker highest epoch recorded
	pending     *Snapshot[M]  // epoch being assembled
	sealed      *Snapshot[M]  // last complete snapshot
	sealedEpoch atomic.Int32  // == sealed.Epoch, lock-free read
	outstanding map[int32]int // handed-off-not-yet-drained batches per stamp

	sealedCount atomic.Int64 // snapshots sealed over the run
	sealedBytes atomic.Int64 // cumulative serialized state bytes sealed

	onSeal func(*Snapshot[M]) // seal tee, see SetOnSeal
}

// SetOnSeal registers fn to run with every snapshot the moment it seals
// (the durable tee). fn is called with the store's lock held, on the
// goroutine that completed the seal: it must be O(1) and non-blocking —
// hand the snapshot to a channel, don't write it to disk inline.
func (s *Store[M]) SetOnSeal(fn func(*Snapshot[M])) {
	s.mu.Lock()
	s.onSeal = fn
	s.mu.Unlock()
}

// Seed installs snap as the store's sealed snapshot without counting it
// toward SealedCount/SealedBytes: the resume path re-enters the seal
// protocol exactly where the writing run left it, so the next Announce
// starts epoch snap.Epoch+1 and rollback falls back to snap until a
// newer epoch seals.
func (s *Store[M]) Seed(snap *Snapshot[M]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = snap
	s.sealedEpoch.Store(snap.Epoch)
	s.announced.Store(snap.Epoch)
	for i := range s.recorded {
		s.recorded[i] = snap.Epoch
	}
	s.pending = nil
	s.outstanding = make(map[int32]int)
}

// SealedCount returns how many snapshots have sealed over the run.
func (s *Store[M]) SealedCount() int64 { return s.sealedCount.Load() }

// SealedBytes returns the cumulative serialized program-state bytes of
// all sealed snapshots, the numerator of the bytes/snapshot overhead.
func (s *Store[M]) SealedBytes() int64 { return s.sealedBytes.Load() }

// NewStore creates a store for n workers. Epoch 0 means "no snapshot":
// recovery from epoch 0 is a fresh restart.
func NewStore[M any](n int) *Store[M] {
	return &Store[M]{
		n:           n,
		recorded:    make([]int32, n),
		outstanding: make(map[int32]int),
	}
}

// Announce begins snapshot epoch e+1 and returns it. It refuses while
// the previous epoch is still recording (ok=false), so callers simply
// retry at the next boundary.
func (s *Store[M]) Announce() (int32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return 0, false
	}
	e := s.announced.Load() + 1
	s.pending = &Snapshot[M]{
		Epoch:     e,
		States:    make([][]byte, s.n),
		Rounds:    make([]int32, s.n),
		PEvalDone: make([]bool, s.n),
	}
	s.announced.Store(e)
	return e, true
}

// AnnouncedEpoch returns the highest announced epoch; workers compare
// it against their own recorded epoch at safe points.
func (s *Store[M]) AnnouncedEpoch() int32 { return s.announced.Load() }

// SealedEpoch returns the epoch of the last complete snapshot, 0 if
// none has sealed yet.
func (s *Store[M]) SealedEpoch() int32 { return s.sealedEpoch.Load() }

// Record stores worker w's local cut for epoch: its serialized program
// state, round counter, whether PEval has run, and the pre-cut messages
// sitting in its buffer at record time (already part of the channel
// state — the engine guarantees the buffer holds no post-cut message
// when it records). The Store takes ownership of state and flights.
func (s *Store[M]) Record(w, epoch int32, state []byte, rounds int32, pevalDone bool, inFlight []Flight[M]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.announced.Load(); epoch > a {
		return fmt.Errorf("%w: worker %d offered epoch %d, announced %d", ErrFutureEpoch, w, epoch, a)
	}
	if s.pending == nil || s.pending.Epoch != epoch {
		return fmt.Errorf("checkpoint: record for epoch %d but pending is %v", epoch, s.pendingEpochLocked())
	}
	if s.recorded[w] >= epoch {
		return fmt.Errorf("checkpoint: worker %d already recorded epoch %d", w, epoch)
	}
	s.recorded[w] = epoch
	s.pending.States[w] = state
	s.pending.Rounds[w] = rounds
	s.pending.PEvalDone[w] = pevalDone
	s.pending.InFlight = append(s.pending.InFlight, inFlight...)
	s.trySealLocked()
	return nil
}

// Capture adds a late batch to the pending snapshot's channel state: it
// was stamped before the sender's cut but drained after the receiver's.
// The caller must pass copies (the engine recycles batch slices) and
// must call Capture before BatchDrained for the same batch.
func (s *Store[M]) Capture(f Flight[M]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		s.pending.InFlight = append(s.pending.InFlight, f)
	}
}

// BatchSent records that a batch stamped with the sender's epoch was
// handed off for delivery.
func (s *Store[M]) BatchSent(stamp int32) {
	s.mu.Lock()
	s.outstanding[stamp]++
	s.mu.Unlock()
}

// BatchDrained records that a batch stamped stamp was consumed (or
// dropped by fault injection); once no batch stamped before the pending
// epoch remains outstanding and every worker has recorded, the epoch
// seals.
func (s *Store[M]) BatchDrained(stamp int32) {
	s.mu.Lock()
	if s.outstanding[stamp]--; s.outstanding[stamp] <= 0 {
		delete(s.outstanding, stamp)
	}
	s.trySealLocked()
	s.mu.Unlock()
}

// Sealed returns the last complete snapshot, nil if none has sealed.
// The snapshot is shared: callers must copy message slices before
// mutating or re-injecting them.
func (s *Store[M]) Sealed() *Snapshot[M] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// Reset abandons any pending epoch and forgets outstanding batches;
// recovery calls it after a rollback destroys every in-flight message.
// The announced epoch rewinds to the sealed one so stamping resumes
// consistently and the next Announce starts a fresh epoch.
func (s *Store[M]) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
	s.outstanding = make(map[int32]int)
	e := int32(0)
	if s.sealed != nil {
		e = s.sealed.Epoch
	}
	s.announced.Store(e)
	for i := range s.recorded {
		s.recorded[i] = e
	}
}

func (s *Store[M]) pendingEpochLocked() interface{} {
	if s.pending == nil {
		return nil
	}
	return s.pending.Epoch
}

// trySealLocked promotes the pending snapshot once (a) every worker has
// recorded it and (b) no batch stamped with an earlier epoch is still
// outstanding — the Chandy-Lamport completion condition: all channel
// state has been captured.
func (s *Store[M]) trySealLocked() {
	if s.pending == nil {
		return
	}
	e := s.pending.Epoch
	for _, r := range s.recorded {
		if r < e {
			return
		}
	}
	for stamp, n := range s.outstanding {
		if stamp < e && n > 0 {
			return
		}
	}
	s.sealed = s.pending
	s.pending = nil
	s.sealedEpoch.Store(e)
	s.sealedCount.Add(1)
	s.sealedBytes.Add(int64(s.sealed.Bytes()))
	if s.onSeal != nil {
		s.onSeal(s.sealed)
	}
}
