package mapreduce_test

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"aap/internal/core"
	"aap/internal/mapreduce"
)

// wordCount is the canonical one-round job.
func wordCount() mapreduce.Job {
	return mapreduce.Job{
		Workers: 4,
		Rounds: []mapreduce.Round{{
			Map: func(kv mapreduce.KV, emit func(mapreduce.KV)) {
				for _, w := range strings.Fields(kv.Value) {
					emit(mapreduce.KV{Key: w, Value: "1"})
				}
			},
			Reduce: func(key string, values []string, emit func(mapreduce.KV)) {
				emit(mapreduce.KV{Key: key, Value: strconv.Itoa(len(values))})
			},
		}},
	}
}

func docs() []mapreduce.KV {
	return []mapreduce.KV{
		{Key: "d1", Value: "the quick brown fox"},
		{Key: "d2", Value: "the lazy dog"},
		{Key: "d3", Value: "the quick dog jumps"},
		{Key: "d4", Value: "fox and dog and fox"},
	}
}

func TestWordCountMatchesDirect(t *testing.T) {
	want, err := mapreduce.Run(wordCount(), docs())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.AAP, core.BSP, core.AP} {
		got, err := mapreduce.RunOnAAP(wordCount(), docs(), core.Options{Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %v want %v", mode, got, want)
		}
	}
}

func TestWordCountValues(t *testing.T) {
	got, err := mapreduce.RunOnAAP(wordCount(), docs(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range got {
		counts[kv.Key] = kv.Value
	}
	for word, want := range map[string]string{"the": "3", "fox": "3", "dog": "3", "quick": "2", "and": "2"} {
		if counts[word] != want {
			t.Errorf("count[%s] = %s, want %s", word, counts[word], want)
		}
	}
}

// TestTwoRoundJob chains word count with a filter keeping words that
// appear at least twice, exercising the multi-subroutine branch of the
// compiled IncEval.
func TestTwoRoundJob(t *testing.T) {
	job := wordCount()
	job.Rounds = append(job.Rounds, mapreduce.Round{
		Map: func(kv mapreduce.KV, emit func(mapreduce.KV)) {
			if n, _ := strconv.Atoi(kv.Value); n >= 2 {
				emit(mapreduce.KV{Key: "frequent", Value: kv.Key})
			}
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) {
			emit(mapreduce.KV{Key: key, Value: strings.Join(values, ",")})
		},
	})
	want, err := mapreduce.Run(job, docs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := mapreduce.RunOnAAP(job, docs(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(got) != 1 || got[0].Key != "frequent" {
		t.Fatalf("unexpected output %v", got)
	}
	if got[0].Value != "and,dog,fox,quick,the" {
		t.Errorf("frequent words = %q", got[0].Value)
	}
}

// TestInvertedIndex exercises string-heavy shuffles.
func TestInvertedIndex(t *testing.T) {
	job := mapreduce.Job{
		Workers: 3,
		Rounds: []mapreduce.Round{{
			Map: func(kv mapreduce.KV, emit func(mapreduce.KV)) {
				for _, w := range strings.Fields(kv.Value) {
					emit(mapreduce.KV{Key: w, Value: kv.Key})
				}
			},
			Reduce: func(key string, values []string, emit func(mapreduce.KV)) {
				seen := map[string]bool{}
				var uniq []string
				for _, v := range values {
					if !seen[v] {
						seen[v] = true
						uniq = append(uniq, v)
					}
				}
				emit(mapreduce.KV{Key: key, Value: strings.Join(uniq, " ")})
			},
		}},
	}
	want, err := mapreduce.Run(job, docs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := mapreduce.RunOnAAP(job, docs(), core.Options{Mode: core.AP})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	idx := map[string]string{}
	for _, kv := range got {
		idx[kv.Key] = kv.Value
	}
	if idx["fox"] != "d1 d4" {
		t.Errorf("index[fox] = %q", idx["fox"])
	}
}

func TestWorkerCounts(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		job := wordCount()
		job.Workers = n
		got, err := mapreduce.RunOnAAP(job, docs(), core.Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, _ := mapreduce.Run(job, docs())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: results diverge", n)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	got, err := mapreduce.RunOnAAP(wordCount(), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty output, got %v", got)
	}
}

func TestNoRoundsIsError(t *testing.T) {
	if _, err := mapreduce.Run(mapreduce.Job{}, docs()); err == nil {
		t.Error("Run: expected error for empty job")
	}
	if _, err := mapreduce.RunOnAAP(mapreduce.Job{}, docs(), core.Options{}); err == nil {
		t.Error("RunOnAAP: expected error for empty job")
	}
}

// TestLargeSkewedKeys stresses the shuffle with many keys hashed to few
// workers.
func TestLargeSkewedKeys(t *testing.T) {
	var input []mapreduce.KV
	for i := 0; i < 500; i++ {
		input = append(input, mapreduce.KV{Key: fmt.Sprintf("rec%d", i), Value: fmt.Sprintf("k%d v", i%7)})
	}
	want, err := mapreduce.Run(wordCount(), input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mapreduce.RunOnAAP(wordCount(), input, core.Options{Mode: core.AAP})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("skewed-key results diverge")
	}
}
