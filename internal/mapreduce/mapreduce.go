// Package mapreduce implements the optimal simulation of MapReduce by
// the AAP/GRAPE model (Theorem 4 of the paper): a sequence of
// mapper/reducer subroutines is compiled into a single PIE program over a
// worker clique G_W, where the status variable of each clique node is a
// multiset of (round, key, value) tuples and designated messages carry
// the shuffled tuples.
//
// The compiled program self-synchronizes: a worker runs reducer ρ_r only
// after it has received the round-r shuffle from every worker, so the
// simulation is correct under any AAP schedule (AP, BSP, SSP or adaptive)
// and costs O(T) time and O(C) communication of the original job.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"

	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// KV is one key/value pair.
type KV struct {
	Key   string
	Value string
}

// Mapper transforms one input pair into zero or more output pairs.
type Mapper func(kv KV, emit func(KV))

// Reducer folds all values of one key into zero or more output pairs.
type Reducer func(key string, values []string, emit func(KV))

// Round is one MapReduce subroutine B_r = (µ_r, ρ_r).
type Round struct {
	Map    Mapper
	Reduce Reducer
}

// Job is a MapReduce job: a sequence of rounds executed by n workers.
type Job struct {
	Rounds  []Round
	Workers int
}

// Run executes the job directly (the reference semantics): each round
// maps every pair, groups by key, and reduces each group. Output order is
// normalized by key then value.
func Run(job Job, input []KV) ([]KV, error) {
	if len(job.Rounds) == 0 {
		return nil, fmt.Errorf("mapreduce: job has no rounds")
	}
	cur := append([]KV(nil), input...)
	for _, r := range job.Rounds {
		var mapped []KV
		for _, kv := range cur {
			r.Map(kv, func(out KV) { mapped = append(mapped, out) })
		}
		groups := make(map[string][]string)
		for _, kv := range mapped {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var reduced []KV
		for _, k := range keys {
			vs := groups[k]
			sort.Strings(vs)
			r.Reduce(k, vs, func(out KV) { reduced = append(reduced, out) })
		}
		cur = reduced
	}
	Sort(cur)
	return cur, nil
}

// tuple is a shuffled pair tagged with its round.
type tuple struct {
	Round int32
	KV    KV
}

// shuffleBatch is the unit shipped between workers: all round-r tuples
// from one sender (possibly none — the batch doubles as the "mapper
// finished" marker the self-synchronization needs).
type shuffleBatch struct {
	Round  int32
	From   int32
	Tuples []KV
}

// Payload is the message value of the compiled PIE program: batches are
// concatenated by the aggregate function and untangled by round/sender in
// IncEval.
type Payload struct {
	Batches []shuffleBatch
}

// payloadBytes estimates the wire size of a payload.
func payloadBytes(p Payload) int {
	n := 8
	for _, b := range p.Batches {
		n += 8
		for _, kv := range b.Tuples {
			n += 8 + len(kv.Key) + len(kv.Value)
		}
	}
	return n
}

// RunOnAAP executes the job by compiling it to a PIE program and running
// it on the AAP engine under opts (any mode).
func RunOnAAP(job Job, input []KV, opts core.Options) ([]KV, error) {
	if len(job.Rounds) == 0 {
		return nil, fmt.Errorf("mapreduce: job has no rounds")
	}
	n := job.Workers
	if n <= 0 {
		n = 4
	}
	// G_W: a clique of n nodes, one per worker, so that every pair of
	// workers can exchange data through border-node update parameters.
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	clique := b.Build()
	p, err := partition.Build(clique, n, partition.Range{})
	if err != nil {
		return nil, err
	}
	// Round-robin input distribution, as A would do.
	parts := make([][]KV, n)
	for i, kv := range input {
		parts[i%n] = append(parts[i%n], kv)
	}
	coreJob := core.Job[Payload]{
		Name: "mapreduce",
		New: func(f *partition.Fragment) core.Program[Payload] {
			return &program{f: f, job: job, n: n, input: parts[f.ID], pending: make(map[int32][]shuffleBatch)}
		},
		Aggregate: func(a, b Payload) Payload {
			return Payload{Batches: append(append([]shuffleBatch(nil), a.Batches...), b.Batches...)}
		},
		Bytes: payloadBytes,
	}
	res, err := core.Run(p, coreJob, opts)
	if err != nil {
		return nil, err
	}
	var out []KV
	for _, v := range res.Values {
		for _, b := range v.Batches {
			out = append(out, b.Tuples...)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders pairs by key then value, the normalized output order.
func Sort(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
}

func workerOf(key string, n int) int32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int32(h.Sum32() % uint32(n))
}

// program is the per-worker half of the compiled PIE program.
type program struct {
	f     *partition.Fragment
	job   Job
	n     int
	input []KV

	// pending[r] collects the round-r shuffle batches received so far;
	// reducer ρ_r runs once all n are present.
	pending map[int32][]shuffleBatch
	nextR   int32 // next round whose reducer is due
	output  []KV  // final tuples owned by this worker
	done    bool
}

// self returns the clique vertex owned by this worker.
func (p *program) self() int32 { return p.f.Lo }

// PEval runs mapper µ_1 on the local input share and shuffles the output
// (Theorem 4 step 1).
func (p *program) PEval(ctx *core.Context[Payload]) {
	p.nextR = 1
	p.shuffle(ctx, 1, p.mapLocal(0, p.input))
	p.drain(ctx)
}

// IncEval accumulates shuffle batches; whenever all n round-r batches
// are present it runs ρ_r (and µ_{r+1} unless r is the last round) and
// shuffles onward (Theorem 4 step 2).
func (p *program) IncEval(msgs []core.VMsg[Payload], ctx *core.Context[Payload]) {
	for _, m := range msgs {
		for _, b := range m.Val.Batches {
			p.pending[b.Round] = append(p.pending[b.Round], b)
		}
	}
	ctx.AddWork(len(msgs))
	p.drain(ctx)
}

// Get returns the worker's final output as a payload.
func (p *program) Get(int32) Payload {
	return Payload{Batches: []shuffleBatch{{Tuples: p.output}}}
}

// mapLocal applies mapper µ_{r+1} (0-based index r) to pairs.
func (p *program) mapLocal(round int, pairs []KV) []KV {
	var out []KV
	m := p.job.Rounds[round].Map
	for _, kv := range pairs {
		m(kv, func(o KV) { out = append(out, o) })
	}
	return out
}

// shuffle groups pairs by destination worker and ships one round-r batch
// to every worker (empty batches serve as completion markers).
func (p *program) shuffle(ctx *core.Context[Payload], round int32, pairs []KV) {
	byWorker := make([][]KV, p.n)
	for _, kv := range pairs {
		w := workerOf(kv.Key, p.n)
		byWorker[w] = append(byWorker[w], kv)
	}
	ctx.AddWork(len(pairs) + 1)
	for w := 0; w < p.n; w++ {
		batch := shuffleBatch{Round: round, From: int32(p.f.ID), Tuples: byWorker[w]}
		if w == p.f.ID {
			p.pending[round] = append(p.pending[round], batch)
			continue
		}
		ctx.SendTo(w, int32(w), Payload{Batches: []shuffleBatch{batch}})
	}
}

// drain runs as many due reducer/mapper phases as the accumulated batches
// allow.
func (p *program) drain(ctx *core.Context[Payload]) {
	for !p.done && len(p.pending[p.nextR]) >= p.n {
		r := p.nextR
		batches := p.pending[r]
		delete(p.pending, r)
		groups := make(map[string][]string)
		for _, b := range batches {
			for _, kv := range b.Tuples {
				groups[kv.Key] = append(groups[kv.Key], kv.Value)
			}
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var reduced []KV
		reduce := p.job.Rounds[r-1].Reduce
		for _, k := range keys {
			vs := groups[k]
			sort.Strings(vs)
			reduce(k, vs, func(o KV) { reduced = append(reduced, o) })
		}
		ctx.AddWork(len(reduced) + len(keys))
		if int(r) == len(p.job.Rounds) {
			p.output = reduced
			p.done = true
			return
		}
		p.nextR = r + 1
		p.shuffle(ctx, p.nextR, p.mapLocal(int(r), reduced))
	}
}
