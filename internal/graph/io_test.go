package graph

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// parseBoth runs the chunked parallel parser and the retained sequential
// reference over the same bytes and returns both results.
func parseBoth(data []byte) (*Graph, error, *Graph, error) {
	got, gotErr := ParseEdgeList(data)
	want, wantErr := readEdgeListRef(bytes.NewReader(data))
	return got, gotErr, want, wantErr
}

// checkSameOutcome asserts the two readers agreed: identical graphs, or
// identical error text.
func checkSameOutcome(t *testing.T, tag string, got *Graph, gotErr error, want *Graph, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: chunked err = %v, reference err = %v", tag, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: chunked err %q, reference err %q", tag, gotErr, wantErr)
		}
		return
	}
	equalGraphs(t, tag, got, want)
}

// TestReadEdgeListMatchesReference is the primary differential pin: the
// chunked parser must reproduce the reference bit for bit on round-trip
// corpora covering directed/undirected, weighted/unweighted, duplicate
// ids, parallel edges, self-loops, and isolated vertices, across forced
// shard counts.
func TestReadEdgeListMatchesReference(t *testing.T) {
	for _, procs := range shardCounts {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed + 400))
			directed := seed%2 == 0
			weighted := seed%4 < 2
			n := 1 + rng.Intn(60)
			m := rng.Intn(300)
			g := randomBuilder(rng, directed, weighted, n, m).buildRef()
			var buf bytes.Buffer
			if err := WriteEdgeList(&buf, g); err != nil {
				t.Fatal(err)
			}
			forceShards(t, procs)
			got, gotErr, want, wantErr := parseBoth(buf.Bytes())
			checkSameOutcome(t, tagOf("read", procs, seed), got, gotErr, want, wantErr)
		}
	}
}

// TestReadEdgeListMatchesReferenceLarge spans many real chunks: ~60k
// lines under a forced 7-way fan-out, so chunk boundaries, the sharded
// dedup, and the S-way merge all carry real load.
func TestReadEdgeListMatchesReferenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomBuilder(rng, true, true, 3000, 60000).buildRef()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 7} {
		forceShards(t, procs)
		got, gotErr, want, wantErr := parseBoth(buf.Bytes())
		checkSameOutcome(t, tagOf("read-large", procs, 77), got, gotErr, want, wantErr)
	}
}

// TestReadEdgeListMergeHighShards drives the tournament-tree merge
// fan-in at shard counts well past the physical core count — wide
// enough that the loser tree has several levels and padded (exhausted)
// leaves — and at non-power-of-two widths. The id assignment must stay
// the sequential Builder's first-appearance order exactly.
func TestReadEdgeListMergeHighShards(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	g := randomBuilder(rng, true, false, 1200, 20000).buildRef()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{5, 16, 32} {
		forceShards(t, procs)
		got, gotErr, want, wantErr := parseBoth(buf.Bytes())
		checkSameOutcome(t, tagOf("read-highshards", procs, 271), got, gotErr, want, wantErr)
	}
}

// TestReadEdgeListHandcrafted pins the parsing corners one at a time:
// CRLF, missing final newline, interleaved comments and blanks, v-lines,
// mixed 2/3-field rows, the header-with-no-data quirk, tabs, signs, and
// headers appearing after comments.
func TestReadEdgeListHandcrafted(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"newline-only", "\n\n\n"},
		{"comments-only", "# directed=false weighted=true\n# more\n"},
		{"snap", "# some comment\n0 1\n1 2\n2 0\n"},
		{"crlf", "# directed=true weighted=true\r\n1 2 0.5\r\n2 3 1.5\r\n"},
		{"no-final-newline", "0 1\n1 2"},
		{"no-final-newline-weighted", "# directed=true weighted=true\n0 1 2.5"},
		{"blank-and-comments-interleaved", "0 1\n\n# mid comment\n1 2\n   \n2 0\n"},
		{"v-lines", "# directed=false weighted=false\nv 5\n5 6\nv 9\n"},
		{"v-line-only", "v 7\n"},
		{"header-weighted-v-only", "# directed=true weighted=true\nv 3\nv 4\n"},
		{"mixed-2-and-3-field", "0 1\n1 2 7.5\n2 0\n"},
		{"mixed-3-then-2-field", "0 1 7.5\n1 2\n"},
		{"header-weighted-2-field", "# directed=true weighted=true\n0 1\n1 2\n"},
		{"undirected-header", "# directed=false weighted=false\n1 2\n2 3\n"},
		{"undirected-substring-quirk", "# undirected=true\n1 2\n"},
		{"late-header-ignored", "0 1\n# directed=false weighted=true\n1 2\n"},
		{"header-after-comment", "# banner\n# directed=false weighted=true\n1 2 0.25\n"},
		{"tabs-and-spaces", "\t0\t1\t \n  1  2  \n"},
		{"signs", "+1 -2\n-2 +3\n"},
		{"dup-ids-self-loops", "5 5\n5 5\n5 6\n6 5\n5 6\n"},
		{"float-forms", "# directed=true weighted=true\n0 1 1e3\n1 2 .5\n2 3 3.\n3 4 0.123456789012345678\n4 5 1e-300\n"},
		{"big-ids", "922337203685477580 1\n1 9223372036854775807\n"},
		{"indented-comment", "   # directed=false weighted=false\n1 2\n"},
		{"leading-blanks-then-header", "\n\n# directed=false weighted=true\n1 2 4\n"},
	}
	for _, procs := range shardCounts {
		forceShards(t, procs)
		for _, c := range cases {
			got, gotErr, want, wantErr := parseBoth([]byte(c.in))
			checkSameOutcome(t, c.name, got, gotErr, want, wantErr)
		}
	}
}

// TestReadEdgeListErrorsMatchReference pins error behavior: same first
// error, same text, same global line number — including errors landing
// in later chunks of a forced multi-chunk parse.
func TestReadEdgeListErrorsMatchReference(t *testing.T) {
	prefix := strings.Repeat("1 2\n", 40)
	cases := []string{
		"1 2 3 4\n",
		"x y\n",
		"1 y\n",
		"1 2 z\n",
		"v\n",
		"v x\n",
		"v 1 2\n",
		"1\n",
		"0 1\n1 2\nbogus line here with many fields\n",
		"0 1\n99999999999999999999 2\n", // int64 overflow via strconv fallback
		"0 1\n1 0x12\n",
		prefix + "3 nope\n" + prefix,          // error mid-file
		prefix + prefix + "v too many args\n", // error near the end
		"# directed=true weighted=true\n" + prefix + "1 2 1e\n",
	}
	for _, procs := range shardCounts {
		forceShards(t, procs)
		for i, in := range cases {
			got, gotErr, want, wantErr := parseBoth([]byte(in))
			checkSameOutcome(t, tagOf("err", procs, int64(i)), got, gotErr, want, wantErr)
			if wantErr == nil {
				t.Fatalf("case %d: expected the reference to error", i)
			}
		}
	}
}

// TestReadEdgeListTooLong pins the 1 MiB line ceiling the reference
// inherits from its scanner buffer: both readers must fail with
// bufio.ErrTooLong, before and past the boundary.
func TestReadEdgeListTooLong(t *testing.T) {
	forceShards(t, 3)
	okLine := "# " + strings.Repeat("x", maxLineLen-3) // maxLineLen-1 bytes: fits
	in := []byte("0 9\n" + okLine + "\n0 8\n")
	got, gotErr, want, wantErr := parseBoth(in)
	checkSameOutcome(t, "at-boundary-ok", got, gotErr, want, wantErr)
	if wantErr != nil {
		t.Fatalf("line of maxLineLen-1 bytes should parse, got %v", wantErr)
	}

	longLine := "# " + strings.Repeat("x", maxLineLen-2) // maxLineLen bytes: too long
	in = []byte("0 9\n" + longLine + "\n0 8\n")
	got, gotErr, want, wantErr = parseBoth(in)
	checkSameOutcome(t, "past-boundary", got, gotErr, want, wantErr)
	if wantErr != bufio.ErrTooLong {
		t.Fatalf("reference error = %v, want bufio.ErrTooLong", wantErr)
	}
}

// TestWriteEdgeListHeader pins the self-describing header: exact n=/m=
// counts and a parse that consumes them as Reserve hints.
func TestWriteEdgeListHeader(t *testing.T) {
	b := NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(3, 7, 1.25)
	b.AddWeightedEdge(7, 9, 2.5)
	b.AddVertex(42)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if first != "# directed=true weighted=true n=4 m=2" {
		t.Fatalf("header = %q", first)
	}
	h := newHeader()
	if _, err := h.scan(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !h.directed || !h.weighted || h.nHint != 4 || h.mHint != 2 {
		t.Fatalf("header scan = %+v", h)
	}
}

// ioBenchBytes builds the benchmark input once: a 150k-vertex weighted
// power-law edge list, the same shape as the harness datasets.
func ioBenchBytes(tb testing.TB) []byte {
	rng := rand.New(rand.NewSource(42))
	n := 150_000
	deg := 16
	b := NewBuilder(true)
	b.SetWeighted()
	b.Reserve(n, n*deg)
	for i := 0; i < n; i++ {
		b.AddVertex(VertexID(i))
	}
	for e := 0; e < n*deg; e++ {
		f := rng.Float64()
		s := int32(f * f * float64(n))
		d := int32(rng.Intn(n))
		if s == d {
			d = (d + 1) % int32(n)
		}
		b.AddWeightedEdge(VertexID(s), VertexID(d), 1+rng.Float64()*99)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, b.Build()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadEdgeList(b *testing.B) {
	data := ioBenchBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ParseEdgeList(data)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != 150_000 {
			b.Fatal("bad parse")
		}
	}
}

// BenchmarkReadEdgeListRef is the PR 2 baseline: the sequential
// scanner/Fields/Builder reader the chunked loader replaced.
func BenchmarkReadEdgeListRef(b *testing.B) {
	data := ioBenchBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := readEdgeListRef(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != 150_000 {
			b.Fatal("bad parse")
		}
	}
}

func BenchmarkWriteEdgeList(b *testing.B) {
	data := ioBenchBytes(b)
	g, err := ParseEdgeList(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(data))
		if err := WriteEdgeList(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReadEdgeListUnicodeWhitespace pins the tokenizer's unicode
// semantics deterministically (the fuzz corpus is not committed): every
// separator strings.Fields accepts — NBSP, NEL, thin space, ideographic
// space, line/paragraph separators — must tokenize identically in the
// chunked parser, and non-space multi-byte runes must stay token bytes.
func TestReadEdgeListUnicodeWhitespace(t *testing.T) {
	cases := []string{
		"0\u00a01\n",                                 // NBSP separates fields
		"\u00851 2\n",                                // NEL before the first token
		"1\u30002\u30003.5\n",                        // ideographic space, weighted
		"7\u20098 0.5\nv\u00a09\n",                   // thin space + NBSP vertex line
		"\u00a0\u2028\u00a0\n1 2\n",                  // unicode-blank line skipped
		"\u00a0# directed=true weighted=true\n0 1\n", // NBSP-indented header
		"\u20280 1\u2029\n",                          // line/paragraph separators trim
		"1 2\xe2\x80\n",                              // truncated rune: token bytes
		"0 \u00e9 1\n",                               // non-space rune: 3 fields, bad number
		"v\u00a05\n",                                 // vertex line with unicode separator
	}
	for _, procs := range shardCounts {
		for i, in := range cases {
			forceShards(t, procs)
			got, gotErr, want, wantErr := parseBoth([]byte(in))
			checkSameOutcome(t, tagOf("unicode", procs, int64(i)), got, gotErr, want, wantErr)
		}
	}
}

// TestLyingHeaderHints: a tiny input claiming two billion vertices and
// edges in its header must parse instantly — hints size buffers from
// clamped or actual counts, never from the header's raw claim
// (regression: the dedup-shard intern tables were sized straight from
// n=, turning a 46-byte file into a multi-gigabyte allocation).
func TestLyingHeaderHints(t *testing.T) {
	data := []byte("# directed=true weighted=false n=2000000000 m=2000000000\n0 1\n1 2\n")
	for _, procs := range shardCounts {
		forceShards(t, procs)
		done := make(chan struct{})
		go func() {
			defer close(done)
			got, gotErr, want, wantErr := parseBoth(data)
			checkSameOutcome(t, tagOf("lying-header", procs, 0), got, gotErr, want, wantErr)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("procs=%d: lying header hint forced a pathological allocation", procs)
		}
	}
}
