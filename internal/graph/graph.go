// Package graph provides the immutable in-memory graph substrate used by
// every engine in this repository: a compressed sparse row (CSR)
// representation with both out- and in-adjacency, optional edge weights,
// and stable external vertex identifiers.
//
// Graphs are constructed through a Builder and immutable afterwards, so
// they can be shared freely across workers without locks.
package graph

import (
	"fmt"
	"sort"
)

// VertexID is the external (application-level) identifier of a vertex.
// Internally vertices are dense int32 indexes in [0, NumVertices).
type VertexID int64

// Edge is a single directed edge between external vertex identifiers.
// For undirected graphs an Edge represents both directions.
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Graph is an immutable directed or undirected graph in CSR form.
//
// For undirected graphs every edge appears in the out-adjacency of both
// endpoints, and the in-adjacency aliases the out-adjacency.
type Graph struct {
	directed bool

	ids   []VertexID         // internal index -> external id
	index map[VertexID]int32 // external id -> internal index

	outOff []int64   // len n+1
	outDst []int32   // len m (directed) or 2m (undirected)
	outW   []float64 // parallel to outDst; nil when unweighted

	inOff []int64
	inSrc []int32
	inW   []float64

	numEdges int64 // logical edge count (undirected edges counted once)
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the number of logical edges (undirected edges are
// counted once).
func (g *Graph) NumEdges() int64 { return g.numEdges }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// IDOf returns the external identifier of internal vertex v.
func (g *Graph) IDOf(v int32) VertexID { return g.ids[v] }

// IndexOf returns the internal index of the external identifier id and
// whether it exists.
func (g *Graph) IndexOf(id VertexID) (int32, bool) {
	v, ok := g.index[id]
	return v, ok
}

// OutDegree returns the out-degree of internal vertex v.
func (g *Graph) OutDegree(v int32) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the in-degree of internal vertex v.
func (g *Graph) InDegree(v int32) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Out returns the out-neighbors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int32) []int32 { return g.outDst[g.outOff[v]:g.outOff[v+1]] }

// OutWeights returns the weights parallel to Out(v); nil for unweighted
// graphs.
func (g *Graph) OutWeights(v int32) []float64 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[v]:g.outOff[v+1]]
}

// In returns the in-neighbors of v. For undirected graphs In(v) equals
// Out(v).
func (g *Graph) In(v int32) []int32 { return g.inSrc[g.inOff[v]:g.inOff[v+1]] }

// InWeights returns the weights parallel to In(v); nil for unweighted
// graphs.
func (g *Graph) InWeights(v int32) []float64 {
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inOff[v]:g.inOff[v+1]]
}

// Edges calls fn for every logical edge with internal endpoints. For
// undirected graphs each edge is reported once with src <= dst.
func (g *Graph) Edges(fn func(src, dst int32, w float64)) {
	for v := int32(0); v < int32(len(g.ids)); v++ {
		ws := g.OutWeights(v)
		for i, u := range g.Out(v) {
			if !g.directed && u < v {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			fn(v, u, w)
		}
	}
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertices are created implicitly by AddEdge; isolated vertices can be
// added with AddVertex. The builder may be reused after Build.
type Builder struct {
	directed bool
	weighted bool
	ids      []VertexID
	index    map[VertexID]int32
	srcs     []int32
	dsts     []int32
	ws       []float64
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed, index: make(map[VertexID]int32)}
}

// SetWeighted declares that edges carry weights. It is implied by the
// first call to AddWeightedEdge.
func (b *Builder) SetWeighted() { b.weighted = true }

// AddVertex ensures id exists and returns its internal index.
func (b *Builder) AddVertex(id VertexID) int32 {
	if v, ok := b.index[id]; ok {
		return v
	}
	v := int32(len(b.ids))
	b.ids = append(b.ids, id)
	b.index[id] = v
	return v
}

// AddEdge adds an unweighted edge (weight 1).
func (b *Builder) AddEdge(src, dst VertexID) {
	s, d := b.AddVertex(src), b.AddVertex(dst)
	b.srcs = append(b.srcs, s)
	b.dsts = append(b.dsts, d)
	b.ws = append(b.ws, 1)
}

// AddWeightedEdge adds an edge with the given weight.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float64) {
	b.weighted = true
	s, d := b.AddVertex(src), b.AddVertex(dst)
	b.srcs = append(b.srcs, s)
	b.dsts = append(b.dsts, d)
	b.ws = append(b.ws, w)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.ids) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// Build produces the immutable Graph. Edge order within an adjacency list
// is by increasing destination index, with parallel edges preserved.
func (b *Builder) Build() *Graph {
	n := len(b.ids)
	m := len(b.srcs)
	g := &Graph{
		directed: b.directed,
		ids:      append([]VertexID(nil), b.ids...),
		index:    make(map[VertexID]int32, n),
		numEdges: int64(m),
	}
	for i, id := range g.ids {
		g.index[id] = int32(i)
	}

	// Out-adjacency. Undirected graphs store each edge in both lists.
	outDeg := make([]int64, n+1)
	for i := 0; i < m; i++ {
		outDeg[b.srcs[i]+1]++
		if !b.directed && b.srcs[i] != b.dsts[i] {
			outDeg[b.dsts[i]+1]++
		}
	}
	for i := 0; i < n; i++ {
		outDeg[i+1] += outDeg[i]
	}
	g.outOff = outDeg
	total := g.outOff[n]
	g.outDst = make([]int32, total)
	if b.weighted {
		g.outW = make([]float64, total)
	}
	cursor := make([]int64, n)
	copy(cursor, g.outOff[:n])
	emit := func(s, d int32, w float64) {
		p := cursor[s]
		cursor[s]++
		g.outDst[p] = d
		if g.outW != nil {
			g.outW[p] = w
		}
	}
	for i := 0; i < m; i++ {
		emit(b.srcs[i], b.dsts[i], b.ws[i])
		// Undirected edges appear in both endpoint lists; self-loops are
		// stored once so Edges reports them exactly once.
		if !b.directed && b.srcs[i] != b.dsts[i] {
			emit(b.dsts[i], b.srcs[i], b.ws[i])
		}
	}
	sortAdjacency(g.outOff, g.outDst, g.outW, n)

	if b.directed {
		inDeg := make([]int64, n+1)
		for i := 0; i < m; i++ {
			inDeg[b.dsts[i]+1]++
		}
		for i := 0; i < n; i++ {
			inDeg[i+1] += inDeg[i]
		}
		g.inOff = inDeg
		g.inSrc = make([]int32, m)
		if b.weighted {
			g.inW = make([]float64, m)
		}
		copy(cursor, g.inOff[:n])
		for i := 0; i < m; i++ {
			d := b.dsts[i]
			p := cursor[d]
			cursor[d]++
			g.inSrc[p] = b.srcs[i]
			if g.inW != nil {
				g.inW[p] = b.ws[i]
			}
		}
		sortAdjacency(g.inOff, g.inSrc, g.inW, n)
	} else {
		g.inOff, g.inSrc, g.inW = g.outOff, g.outDst, g.outW
	}
	return g
}

// sortAdjacency sorts each adjacency list by neighbor index, keeping the
// weight slice parallel.
func sortAdjacency(off []int64, adj []int32, w []float64, n int) {
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if hi-lo < 2 {
			continue
		}
		seg := adj[lo:hi]
		if w == nil {
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			continue
		}
		wseg := w[lo:hi]
		sort.Sort(&adjSorter{seg, wseg})
	}
}

type adjSorter struct {
	adj []int32
	w   []float64
}

func (s *adjSorter) Len() int           { return len(s.adj) }
func (s *adjSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *adjSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// AsUndirected returns g itself when already undirected, or a new
// undirected graph over the same vertices with one undirected edge per
// directed edge of g. Connectivity algorithms use it to work on the
// underlying undirected graph.
func AsUndirected(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(false)
	if g.Weighted() {
		b.SetWeighted()
	}
	for _, id := range g.ids {
		b.AddVertex(id)
	}
	g.Edges(func(src, dst int32, w float64) {
		if g.Weighted() {
			b.AddWeightedEdge(g.ids[src], g.ids[dst], w)
		} else {
			b.AddEdge(g.ids[src], g.ids[dst])
		}
	})
	return b.Build()
}

// Relabel returns a copy of g whose internal vertex v becomes perm[v].
// perm must be a permutation of [0, NumVertices). External identifiers
// follow their vertices. Relabel is used by partitioners to make each
// fragment a contiguous index range.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	b := NewBuilder(g.directed)
	if g.Weighted() {
		b.SetWeighted()
	}
	// Pre-create vertices in the new order so ids land at perm positions.
	newIDs := make([]VertexID, n)
	for v := 0; v < n; v++ {
		newIDs[perm[v]] = g.ids[v]
	}
	for _, id := range newIDs {
		b.AddVertex(id)
	}
	g.Edges(func(src, dst int32, w float64) {
		if g.Weighted() {
			b.AddWeightedEdge(g.ids[src], g.ids[dst], w)
		} else {
			b.AddEdge(g.ids[src], g.ids[dst])
		}
	})
	return b.Build(), nil
}
