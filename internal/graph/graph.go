// Package graph provides the immutable in-memory graph substrate used by
// every engine in this repository: a compressed sparse row (CSR)
// representation with both out- and in-adjacency, optional edge weights,
// and stable external vertex identifiers.
//
// Graphs are constructed through a Builder and immutable afterwards, so
// they can be shared freely across workers without locks.
package graph

import "fmt"

// VertexID is the external (application-level) identifier of a vertex.
// Internally vertices are dense int32 indexes in [0, NumVertices).
type VertexID int64

// Edge is a single directed edge between external vertex identifiers.
// For undirected graphs an Edge represents both directions.
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Graph is an immutable directed or undirected graph in CSR form.
//
// For undirected graphs every edge appears in the out-adjacency of both
// endpoints, and the in-adjacency aliases the out-adjacency.
type Graph struct {
	directed bool

	ids []VertexID // internal index -> external id

	// index maps external id -> base index: the index the vertex had in
	// the graph Build produced. Relabeled graphs share this map with
	// their ancestor and compose permutations in baseToCur instead of
	// rebuilding it, so relabeling performs zero map operations.
	index     map[VertexID]int32
	baseToCur []int32 // base index -> current index; nil means identity

	outOff []int64   // len n+1
	outDst []int32   // len m (directed) or 2m (undirected)
	outW   []float64 // parallel to outDst; nil when unweighted

	inOff []int64
	inSrc []int32
	inW   []float64

	numEdges int64 // logical edge count (undirected edges counted once)
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the number of logical edges (undirected edges are
// counted once).
func (g *Graph) NumEdges() int64 { return g.numEdges }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// IDOf returns the external identifier of internal vertex v.
func (g *Graph) IDOf(v int32) VertexID { return g.ids[v] }

// IndexOf returns the internal index of the external identifier id and
// whether it exists.
func (g *Graph) IndexOf(id VertexID) (int32, bool) {
	v, ok := g.index[id]
	if ok && g.baseToCur != nil {
		v = g.baseToCur[v]
	}
	return v, ok
}

// OutDegree returns the out-degree of internal vertex v.
func (g *Graph) OutDegree(v int32) int { return int(g.outOff[v+1] - g.outOff[v]) }

// OutSpan returns the total number of stored out-entries of the vertex
// range [lo, hi): one subtraction on the CSR offsets, replacing
// per-vertex degree loops when partitioners size contiguous fragments.
func (g *Graph) OutSpan(lo, hi int32) int64 { return g.outOff[hi] - g.outOff[lo] }

// OutShards splits the vertex range into p contiguous shards of
// near-equal out-edge span, the balance edge-parallel sweeps over the
// graph (border computation, future analytics) need under skew.
func (g *Graph) OutShards(p int) []int32 { return vertexShardsByWork(g.outOff, p) }

// InDegree returns the in-degree of internal vertex v.
func (g *Graph) InDegree(v int32) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Out returns the out-neighbors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int32) []int32 { return g.outDst[g.outOff[v]:g.outOff[v+1]] }

// OutWeights returns the weights parallel to Out(v); nil for unweighted
// graphs.
func (g *Graph) OutWeights(v int32) []float64 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[v]:g.outOff[v+1]]
}

// In returns the in-neighbors of v. For undirected graphs In(v) equals
// Out(v).
func (g *Graph) In(v int32) []int32 { return g.inSrc[g.inOff[v]:g.inOff[v+1]] }

// InWeights returns the weights parallel to In(v); nil for unweighted
// graphs.
func (g *Graph) InWeights(v int32) []float64 {
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inOff[v]:g.inOff[v+1]]
}

// Edges calls fn for every logical edge with internal endpoints. For
// undirected graphs each edge is reported once with src <= dst.
func (g *Graph) Edges(fn func(src, dst int32, w float64)) {
	for v := int32(0); v < int32(len(g.ids)); v++ {
		ws := g.OutWeights(v)
		for i, u := range g.Out(v) {
			if !g.directed && u < v {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			fn(v, u, w)
		}
	}
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertices are created implicitly by AddEdge; isolated vertices can be
// added with AddVertex. The builder may be reused after Build.
type Builder struct {
	directed bool
	weighted bool
	ids      []VertexID
	index    map[VertexID]int32
	srcs     []int32
	dsts     []int32
	ws       []float64
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed, index: make(map[VertexID]int32)}
}

// SetWeighted declares that edges carry weights. It is implied by the
// first call to AddWeightedEdge.
func (b *Builder) SetWeighted() { b.weighted = true }

// Reserve pre-sizes the builder for n vertices and m edges so generators
// and loaders that know their size fill without growth reallocations.
func (b *Builder) Reserve(n, m int) {
	if cap(b.ids) < n {
		ids := make([]VertexID, len(b.ids), n)
		copy(ids, b.ids)
		b.ids = ids
		index := make(map[VertexID]int32, n)
		for id, v := range b.index {
			index[id] = v
		}
		b.index = index
	}
	if cap(b.srcs) < m {
		srcs := make([]int32, len(b.srcs), m)
		copy(srcs, b.srcs)
		b.srcs = srcs
		dsts := make([]int32, len(b.dsts), m)
		copy(dsts, b.dsts)
		b.dsts = dsts
		ws := make([]float64, len(b.ws), m)
		copy(ws, b.ws)
		b.ws = ws
	}
}

// AddVertex ensures id exists and returns its internal index.
func (b *Builder) AddVertex(id VertexID) int32 {
	if v, ok := b.index[id]; ok {
		return v
	}
	v := int32(len(b.ids))
	b.ids = append(b.ids, id)
	b.index[id] = v
	return v
}

// AddEdge adds an unweighted edge (weight 1).
func (b *Builder) AddEdge(src, dst VertexID) {
	s, d := b.AddVertex(src), b.AddVertex(dst)
	b.srcs = append(b.srcs, s)
	b.dsts = append(b.dsts, d)
	b.ws = append(b.ws, 1)
}

// AddWeightedEdge adds an edge with the given weight.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float64) {
	b.weighted = true
	s, d := b.AddVertex(src), b.AddVertex(dst)
	b.srcs = append(b.srcs, s)
	b.dsts = append(b.dsts, d)
	b.ws = append(b.ws, w)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.ids) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// Build produces the immutable Graph. Edge order within an adjacency list
// is by increasing destination index, with parallel edges preserved in
// insertion order. The CSR arrays are built by the parallel pipeline in
// ingest.go; the id index builds concurrently on its own goroutine, so
// the map work overlaps the scatter instead of preceding it.
func (b *Builder) Build() *Graph {
	n := len(b.ids)
	m := len(b.srcs)
	g := &Graph{
		directed: b.directed,
		ids:      append([]VertexID(nil), b.ids...),
		numEdges: int64(m),
	}
	idxDone := make(chan map[VertexID]int32, 1)
	go func() {
		idx := make(map[VertexID]int32, n)
		for i, id := range g.ids {
			idx[id] = int32(i)
		}
		idxDone <- idx
	}()
	var ws []float64
	if b.weighted {
		ws = b.ws
	}
	g.outOff, g.outDst, g.outW = scatterCSR(n, b.srcs, b.dsts, ws, !b.directed)
	if b.directed {
		g.inOff, g.inSrc, g.inW = scatterCSR(n, b.dsts, b.srcs, ws, false)
	} else {
		g.inOff, g.inSrc, g.inW = g.outOff, g.outDst, g.outW
	}
	g.index = <-idxDone
	return g
}

// AsUndirected returns g itself when already undirected, or a new
// undirected graph over the same vertices with one undirected edge per
// directed edge of g. Connectivity algorithms use it to work on the
// underlying undirected graph. The undirected rows are produced by
// merging the already-sorted out- and in-rows (symmetrize in ingest.go):
// O(n+m) with no Builder and no map operations.
func AsUndirected(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	ng := &Graph{
		directed:  false,
		ids:       g.ids,
		index:     g.index,
		baseToCur: g.baseToCur,
		numEdges:  g.numEdges,
	}
	ng.outOff, ng.outDst, ng.outW = symmetrize(g)
	ng.inOff, ng.inSrc, ng.inW = ng.outOff, ng.outDst, ng.outW
	return ng
}

// Relabel returns a copy of g whose internal vertex v becomes perm[v].
// perm must be a permutation of [0, NumVertices). External identifiers
// follow their vertices. Relabel is used by partitioners to make each
// fragment a contiguous index range.
//
// The CSR arrays are permuted directly (permuteCSR in ingest.go) and the
// id index is shared with g, composing permutations in baseToCur — an
// O(n+m) array pass with zero rebuild and zero map traffic, where the
// old path re-fed every edge through a map-based Builder.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if err := checkPerm(perm, n); err != nil {
		return nil, err
	}
	ng := &Graph{
		directed: g.directed,
		ids:      make([]VertexID, n),
		index:    g.index,
		numEdges: g.numEdges,
	}
	for v, id := range g.ids {
		ng.ids[perm[v]] = id
	}
	ng.baseToCur = make([]int32, n)
	if g.baseToCur == nil {
		copy(ng.baseToCur, perm)
	} else {
		for i, v := range g.baseToCur {
			ng.baseToCur[i] = perm[v]
		}
	}
	ng.outOff, ng.outDst, ng.outW = permuteCSR(g.outOff, g.outDst, g.outW, perm)
	if g.directed {
		ng.inOff, ng.inSrc, ng.inW = permuteCSR(g.inOff, g.inSrc, g.inW, perm)
	} else {
		ng.inOff, ng.inSrc, ng.inW = ng.outOff, ng.outDst, ng.outW
	}
	return ng, nil
}

// checkPerm validates that perm is a permutation of [0, n).
func checkPerm(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("graph: permutation length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	return nil
}
