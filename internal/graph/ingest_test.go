package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"aap/internal/par"
)

// forceShards makes the ingest pipeline run with p workers regardless of
// GOMAXPROCS, so the sharded code paths are exercised even on single-core
// machines.
func forceShards(t *testing.T, p int) {
	t.Helper()
	prev := par.Override
	par.Override = p
	t.Cleanup(func() { par.Override = prev })
}

// randomBuilder fills a Builder with a random graph containing the cases
// the differential tests must pin: self-loops, parallel edges (including
// weighted parallel edges, whose relative order is defined by insertion),
// isolated vertices, and empty rows.
func randomBuilder(rng *rand.Rand, directed, weighted bool, n, m int) *Builder {
	b := NewBuilder(directed)
	if weighted {
		b.SetWeighted()
	}
	for i := 0; i < n; i++ {
		b.AddVertex(VertexID(i * 3)) // non-contiguous external ids
	}
	add := func(s, d int32) {
		if weighted {
			b.AddWeightedEdge(VertexID(s*3), VertexID(d*3), float64(rng.Intn(1000))/8)
		} else {
			b.AddEdge(VertexID(s*3), VertexID(d*3))
		}
	}
	for e := 0; e < m; e++ {
		s, d := int32(rng.Intn(n)), int32(rng.Intn(n))
		switch rng.Intn(10) {
		case 0: // self-loop
			add(s, s)
		case 1, 2: // parallel edges
			add(s, d)
			add(s, d)
		case 3: // hub edge, grows rows past the radix threshold
			add(0, d)
		default:
			add(s, d)
		}
	}
	return b
}

// equalGraphs fails the test unless got and want are bit-identical: same
// flags, same vertex order, same CSR arrays, same id resolution.
func equalGraphs(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	if got.directed != want.directed || got.numEdges != want.numEdges {
		t.Fatalf("%s: flags/edge count differ: directed %v/%v edges %d/%d",
			tag, got.directed, want.directed, got.numEdges, want.numEdges)
	}
	if len(got.ids) != len(want.ids) {
		t.Fatalf("%s: %d vs %d vertices", tag, len(got.ids), len(want.ids))
	}
	for v := range got.ids {
		if got.ids[v] != want.ids[v] {
			t.Fatalf("%s: ids[%d] = %d, want %d", tag, v, got.ids[v], want.ids[v])
		}
	}
	for _, id := range want.ids {
		gv, gok := got.IndexOf(id)
		wv, wok := want.IndexOf(id)
		if gv != wv || gok != wok {
			t.Fatalf("%s: IndexOf(%d) = (%d,%v), want (%d,%v)", tag, id, gv, gok, wv, wok)
		}
	}
	if _, ok := got.IndexOf(VertexID(-999)); ok {
		t.Fatalf("%s: nonexistent id resolved", tag)
	}
	eqOff := func(name string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", tag, name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", tag, name, i, a[i], b[i])
			}
		}
	}
	eqAdj := func(name string, a, b []int32) {
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", tag, name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] = %d, want %d", tag, name, i, a[i], b[i])
			}
		}
	}
	eqW := func(name string, a, b []float64) {
		if (a == nil) != (b == nil) || len(a) != len(b) {
			t.Fatalf("%s: %s presence/length differ", tag, name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] = %v, want %v", tag, name, i, a[i], b[i])
			}
		}
	}
	eqOff("outOff", got.outOff, want.outOff)
	eqAdj("outDst", got.outDst, want.outDst)
	eqW("outW", got.outW, want.outW)
	eqOff("inOff", got.inOff, want.inOff)
	eqAdj("inSrc", got.inSrc, want.inSrc)
	eqW("inW", got.inW, want.inW)
}

// shardCounts is the worker-count axis of every differential test: the
// sequential path, a small forced fan-out, and one larger than typical
// row counts so shard boundaries hit edge cases.
var shardCounts = []int{1, 3, 7}

func TestBuildMatchesReference(t *testing.T) {
	for _, procs := range shardCounts {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			directed := seed%2 == 0
			weighted := seed%4 < 2
			n := 1 + rng.Intn(60)
			m := rng.Intn(300)
			b := randomBuilder(rng, directed, weighted, n, m)
			want := b.buildRef()
			forceShards(t, procs)
			got := b.Build()
			equalGraphs(t, tagOf("build", procs, seed), got, want)
		}
	}
}

// TestBuildMatchesReferenceLarge runs one bigger power-law-ish graph per
// shard count so the radix path (rows > insertionMax) and multi-shard
// scatter are exercised together.
func TestBuildMatchesReferenceLarge(t *testing.T) {
	for _, procs := range []int{1, 4} {
		for _, directed := range []bool{true, false} {
			rng := rand.New(rand.NewSource(99))
			b := randomBuilder(rng, directed, true, 2000, 30000)
			want := b.buildRef()
			forceShards(t, procs)
			got := b.Build()
			equalGraphs(t, tagOf("build-large", procs, 99), got, want)
		}
	}
}

func TestRelabelMatchesReference(t *testing.T) {
	for _, procs := range shardCounts {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed + 100))
			directed := seed%2 == 0
			weighted := seed%4 < 2
			n := 1 + rng.Intn(60)
			b := randomBuilder(rng, directed, weighted, n, rng.Intn(300))
			g := b.buildRef()
			perm := rand.New(rand.NewSource(seed)).Perm(n)
			p32 := make([]int32, n)
			for i, p := range perm {
				p32[i] = int32(p)
			}
			want, err := relabelRef(g, p32)
			if err != nil {
				t.Fatal(err)
			}
			forceShards(t, procs)
			got, err := Relabel(g, p32)
			if err != nil {
				t.Fatal(err)
			}
			equalGraphs(t, tagOf("relabel", procs, seed), got, want)

			// Relabel the relabeled graph again: the composed baseToCur
			// path must keep matching the rebuild-from-scratch reference.
			perm2 := rand.New(rand.NewSource(seed + 1)).Perm(n)
			p232 := make([]int32, n)
			for i, p := range perm2 {
				p232[i] = int32(p)
			}
			want2, err := relabelRef(want, p232)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := Relabel(got, p232)
			if err != nil {
				t.Fatal(err)
			}
			equalGraphs(t, tagOf("relabel-twice", procs, seed), got2, want2)
		}
	}
}

func TestAsUndirectedMatchesReference(t *testing.T) {
	for _, procs := range shardCounts {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed + 200))
			weighted := seed%2 == 0
			n := 1 + rng.Intn(60)
			b := randomBuilder(rng, true, weighted, n, rng.Intn(300))
			g := b.buildRef()
			want := asUndirectedRef(g)
			forceShards(t, procs)
			got := AsUndirected(g)
			equalGraphs(t, tagOf("asundirected", procs, seed), got, want)
		}
	}
}

// TestAsUndirectedSelfLoopHeavy pins the pairwise self-loop consumption
// of the merge: vertices whose rows are dominated by parallel self-loops.
func TestAsUndirectedSelfLoopHeavy(t *testing.T) {
	for _, procs := range shardCounts {
		b := NewBuilder(true)
		b.SetWeighted()
		for i := 0; i < 5; i++ {
			b.AddVertex(VertexID(i))
		}
		for k := 0; k < 6; k++ {
			b.AddWeightedEdge(2, 2, float64(k))
			b.AddWeightedEdge(0, 2, 10+float64(k))
			b.AddWeightedEdge(2, 0, 20+float64(k))
		}
		g := b.buildRef()
		want := asUndirectedRef(g)
		forceShards(t, procs)
		got := AsUndirected(g)
		equalGraphs(t, tagOf("selfloops", procs, 0), got, want)
	}
}

// TestRelabelSharesIndex pins the zero-rebuild property: a relabeled
// graph reuses its ancestor's id map rather than building a new one.
func TestRelabelSharesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomBuilder(rng, true, false, 20, 60).Build()
	perm := make([]int32, 20)
	for i := range perm {
		perm[i] = int32((i + 7) % 20)
	}
	rg, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if &rg.index == &g.index {
		t.Fatal("maps are values; compare identity via mutation instead")
	}
	// Same map object: adding to one is visible through the other. The
	// graphs are immutable so this never happens in production; it is the
	// cheapest identity probe a test can make.
	g.index[VertexID(-12345)] = 7
	defer delete(g.index, VertexID(-12345))
	if _, ok := rg.index[VertexID(-12345)]; !ok {
		t.Fatal("Relabel rebuilt the id index instead of sharing it")
	}
}

func tagOf(kind string, procs int, seed int64) string {
	return fmt.Sprintf("%s/procs=%d/seed=%d", kind, procs, seed)
}
