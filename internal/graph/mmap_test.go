package graph

// Differential pin for the mmap front end: mapping the file and parsing
// it in place must reproduce the streaming file reader bit for bit,
// including when the streaming side is forced into multi-window mode,
// and both front ends must report identical errors on malformed input.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeTemp round-trips g through WriteEdgeList into a file and returns
// its path.
func writeTemp(t *testing.T, dir, name string, g *Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadEdgeListFileMmapMatchesStreaming(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		directed := seed%2 == 0
		weighted := seed%3 != 0
		g := randomBuilder(rng, directed, weighted, 1+rng.Intn(80), rng.Intn(600)).buildRef()
		path := writeTemp(t, dir, fmt.Sprintf("g%d.txt", seed), g)
		// A tiny window forces the streaming side through many carry-over
		// refills while the mmap side parses the whole mapping at once —
		// the strongest version of the equivalence.
		if seed%2 == 1 {
			smallWindow(t, 64)
		}
		mm, err := ReadEdgeListFileMmap(path)
		if err != nil {
			t.Fatalf("seed %d: mmap read: %v", seed, err)
		}
		st, err := ReadEdgeListFile(path)
		if err != nil {
			t.Fatalf("seed %d: streaming read: %v", seed, err)
		}
		// Not compared against g itself: the file round trip reassigns
		// internal ids to first-appearance order, which both readers must
		// agree on but the in-memory source need not share.
		equalGraphs(t, fmt.Sprintf("mmap/seed=%d", seed), mm, st)
	}
}

// TestReadEdgeListFileMmapFallsBack: inputs the mapper refuses (empty
// file) must still load, through the streaming path, with the same
// result as ReadEdgeListFile.
func TestReadEdgeListFileMmapFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	mm, err := ReadEdgeListFileMmap(path)
	if err != nil {
		t.Fatalf("mmap read of empty file: %v", err)
	}
	st, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatalf("streaming read of empty file: %v", err)
	}
	equalGraphs(t, "mmap-empty", mm, st)
}

// TestReadEdgeListFileMmapErrors: malformed input fails with the exact
// error text of the in-memory/streaming parse.
func TestReadEdgeListFileMmapErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\nnope nope\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, mmErr := ReadEdgeListFileMmap(path)
	_, stErr := ReadEdgeListFile(path)
	if mmErr == nil || stErr == nil {
		t.Fatalf("expected both readers to fail: mmap=%v streaming=%v", mmErr, stErr)
	}
	if mmErr.Error() != stErr.Error() {
		t.Fatalf("error text diverges: mmap %q, streaming %q", mmErr, stErr)
	}
}

// TestReadEdgeListFileMmapMissing: a missing file reports the open
// error, not a fallback parse of nothing.
func TestReadEdgeListFileMmapMissing(t *testing.T) {
	if _, err := ReadEdgeListFileMmap(filepath.Join(t.TempDir(), "absent")); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}
