package graph

import "os"

// ReadEdgeListFileMmap loads an edge-list file like ReadEdgeListFile,
// but memory-maps the file and hands the mapping straight to the
// in-memory parallel parser: no read syscalls, no copy of the input
// into user buffers, and the kernel drops clean pages under memory
// pressure instead of the process holding them. When the file cannot
// be mapped (empty, not a regular file, platform without mmap) it
// falls back to the streaming reader, so callers may use it
// unconditionally.
//
// The result is bit-identical to ReadEdgeListFile: both front ends
// feed the same chunk parser and deterministic merge, and window
// boundaries never change the assembled graph.
func ReadEdgeListFileMmap(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, unmap, err := mmapFile(f)
	if err != nil {
		return readEdgeListStream(f)
	}
	defer unmap()
	// Safe to unmap on return: ParseEdgeList copies every parsed field
	// out of its input (ids and weights become fresh arrays), so nothing
	// references the mapping afterwards.
	return ParseEdgeList(data)
}
