package graph

import (
	"bytes"
	"testing"

	"aap/internal/par"
)

// FuzzReadEdgeList feeds arbitrary byte streams through the chunked
// parallel parser and the sequential reference, asserting identical
// graphs or identical errors under both a single- and a multi-chunk
// split. This includes multi-byte unicode whitespace (NBSP, NEL,
// ideographic space, …) — the tokenizer decodes runes like the
// reference's strings.Fields — and arbitrary binary / invalid-UTF-8
// streams.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"# directed=true weighted=true n=3 m=2\n0 1 2.5\n1 2 0.125\n",
		"# directed=false weighted=false\nv 5\n5 6\nv 9\n",
		"0 1\n1 2\n2 0",
		"# c\r\n1 2 3.5\r\n2 3 4.5\r\n",
		"1 2 3 4\n",
		"v\nx y\n",
		"5 5\n5 5\n5 6\n6 5\n",
		"# undirected=true\n+1 -2\n",
		"0 1\n\n# mid\n1 2 1e3\n   \n2 0 .5\n",
		"9223372036854775807 1\n1 99999999999999999999\n",
		"# directed=true weighted=true\nv 3\n",
		"0 1 0x1p-2\n",
		"\t0\t1\t\n1 2\n",
		// Unicode whitespace: NBSP separator, NEL leading, ideographic
		// space, thin space in a weighted line, unicode-blank line,
		// NBSP before a comment mark, a truncated rune at EOL, and a
		// line separator (not a line break in either reader).
		"0\u00a01\n",
		"\u00851 2\n",
		"1\u30002\u30003.5\n",
		"# directed=true weighted=true\n7\u20098 0.5\nv\u00a09\n",
		"\u00a0\u2028\u00a0\n1 2\n",
		"\u00a0# directed=true weighted=true\n0 1\n",
		"1 2\xe2\x80\n",
		"\u20280 1\u2029\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := readEdgeListRef(bytes.NewReader(data))
		for _, procs := range []int{1, 3} {
			prev := par.Override
			par.Override = procs
			got, gotErr := ParseEdgeList(data)
			par.Override = prev
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("procs=%d: chunked err = %v, reference err = %v", procs, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("procs=%d: chunked err %q, reference err %q", procs, gotErr, wantErr)
				}
				continue
			}
			equalGraphs(t, tagOf("fuzz", procs, 0), got, want)
		}
	})
}
