// Chunked parallel edge-list loader: the streaming ingest front end.
//
// ParseEdgeList turns file bytes into a Graph with every stage
// multicore:
//
//	bytes ─ chunk split (newline-aligned) ─ per-chunk parse + local
//	intern ─ hash-sharded dedup ─ deterministic merge/assign ─ remap ─
//	parallel CSR scatter (ingest.go)
//
// Each chunk parses on its own goroutine with hand-rolled tokenizing
// and integer parsing (no strings.Fields, no per-line allocations) into
// chunk-local edge buffers and a chunk-local intern map, so parser
// workers never share a map. Cross-chunk dedup shards by hash(id):
// shard s owns every id with shardOf(id)==s and scans the chunks'
// first-appearance records in (chunk, position) order, which makes the
// final internal-id assignment — a merge of the shard lists by that
// same key — exactly the first-appearance order a single sequential
// Builder would produce. The result is bit-identical to the retained
// reference reader (io_ref.go) for any chunk or shard count, which the
// differential and fuzz tests in io_test.go pin.
package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"sync/atomic"
	"unicode"
	"unicode/utf8"
	"unsafe"

	"aap/internal/par"
)

const (
	// loaderGrainBytes is the input size per parse worker before the
	// loader adds another; below it goroutine fan-out costs more than
	// the parsing saves.
	loaderGrainBytes = 1 << 20

	// loaderChunksPerWorker oversubscribes chunks to workers so a chunk
	// dense in long lines or new vertices does not straggle the tail;
	// workers pull chunks from a shared counter.
	loaderChunksPerWorker = 4

	// maxLineLen mirrors the reference reader's bufio.Scanner buffer: a
	// line whose terminator is not within 1 MiB fails with
	// bufio.ErrTooLong there, so the chunked parser enforces the same
	// ceiling to stay differentially identical.
	maxLineLen = 1 << 20
)

// asciiSpace marks the single-byte separators of the tokenizer: the
// ASCII subset of unicode.IsSpace, the fast path of every line. Bytes
// outside ASCII take the rune-decoding slow path so multi-byte
// whitespace (NBSP, NEL, ideographic space, …) separates fields exactly
// as the reference reader's strings.Fields does — the two paths accept
// identical inputs byte for byte.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// skipSpace advances i over the whitespace run starting at region[i],
// returning the first non-space position <= le. ASCII bytes resolve
// through the table; other bytes decode as UTF-8 and consult
// unicode.IsSpace, mirroring strings.Fields (invalid sequences decode
// to U+FFFD, which is not a space, and join the next token byte-wise in
// both readers).
func skipSpace(region []byte, i, le int) int {
	for i < le {
		if c := region[i]; c < utf8.RuneSelf {
			if !asciiSpace[c] {
				return i
			}
			i++
			continue
		}
		r, sz := utf8.DecodeRune(region[i:le])
		if !unicode.IsSpace(r) {
			return i
		}
		i += sz
	}
	return i
}

// skipToken advances i over the token starting at region[i] (which must
// not be a space), returning the position just past it.
func skipToken(region []byte, i, le int) int {
	for i < le {
		if c := region[i]; c < utf8.RuneSelf {
			if asciiSpace[c] {
				return i
			}
			i++
			continue
		}
		r, sz := utf8.DecodeRune(region[i:le])
		if unicode.IsSpace(r) {
			return i
		}
		i += sz
	}
	return i
}

// bstr reinterprets b as a string without copying — strconv fallbacks
// only read the bytes during the call and the loader never mutates the
// input buffer, so the aliasing is safe and the hot path stays
// allocation-free.
func bstr(b []byte) string { return unsafe.String(unsafe.SliceData(b), len(b)) }

// parseIntBytes is the hand-rolled base-10 int64 fast path. ok=false
// means "let strconv decide": the caller re-parses with strconv.ParseInt
// for the exact value (19-digit magnitudes) or the canonical error, so
// accepted syntax and error text match the reference reader exactly.
func parseIntBytes(tok []byte) (int64, bool) {
	i := 0
	neg := false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		i = 1
	}
	if nd := len(tok) - i; nd == 0 || nd > 18 {
		return 0, false
	}
	var u uint64
	for ; i < len(tok); i++ {
		c := tok[i] - '0'
		if c > 9 {
			return 0, false
		}
		u = u*10 + uint64(c)
	}
	if neg {
		return -int64(u), true
	}
	return int64(u), true
}

// shardOf maps an external id to its intern shard.
func shardOf(id VertexID, shards int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(shards))
}

// flatIntern is an open-addressed VertexID→int32 table used for the
// chunk-local intern and the shard dedup. The intern workload is
// hit-heavy (two lookups per edge line, one insert per distinct id),
// where linear probing at ≤0.75 load runs several times cheaper than a
// Go map and rehashing is the only allocation. Values are ≥0; vals[i]
// < 0 marks an empty slot, so any int64 id is a valid key.
type flatIntern struct {
	keys []VertexID
	vals []int32
	n    int
	mask uint64
}

func newFlatIntern(hint int) *flatIntern {
	size := 16
	for size < hint*2 {
		size <<= 1
	}
	f := &flatIntern{keys: make([]VertexID, size), vals: make([]int32, size), mask: uint64(size - 1)}
	for i := range f.vals {
		f.vals[i] = -1
	}
	return f
}

func (f *flatIntern) hash(id VertexID) uint64 {
	// Deliberately a different mix than shardOf: the shard dedup tables
	// hold only keys with hash%shards == s, so reusing shardOf's
	// avalanche would pin the low bits of every home index and lengthen
	// probe chains by the shard count.
	h := uint64(id) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	return h & f.mask
}

// get returns the value stored for id, or -1.
func (f *flatIntern) get(id VertexID) int32 {
	i := f.hash(id)
	for {
		if f.vals[i] < 0 {
			return -1
		}
		if f.keys[i] == id {
			return f.vals[i]
		}
		i = (i + 1) & f.mask
	}
}

// getOrPut returns (existing value, true) when id is present, otherwise
// inserts val and returns (val, false).
func (f *flatIntern) getOrPut(id VertexID, val int32) (int32, bool) {
	i := f.hash(id)
	for {
		if f.vals[i] < 0 {
			f.keys[i], f.vals[i] = id, val
			f.n++
			if uint64(f.n)*4 > (f.mask+1)*3 {
				f.rehash()
			}
			return val, false
		}
		if f.keys[i] == id {
			return f.vals[i], true
		}
		i = (i + 1) & f.mask
	}
}

// put overwrites the value of a key that is already present (the
// merge's final-id fixup); absent keys would spin, so callers must
// guarantee membership.
func (f *flatIntern) put(id VertexID, val int32) {
	i := f.hash(id)
	for {
		if f.vals[i] >= 0 && f.keys[i] == id {
			f.vals[i] = val
			return
		}
		i = (i + 1) & f.mask
	}
}

func (f *flatIntern) rehash() {
	old := *f
	size := (int(f.mask) + 1) * 2
	f.keys = make([]VertexID, size)
	f.vals = make([]int32, size)
	f.mask = uint64(size - 1)
	for i := range f.vals {
		f.vals[i] = -1
	}
	for i, v := range old.vals {
		if v < 0 {
			continue
		}
		j := f.hash(old.keys[i])
		for f.vals[j] >= 0 {
			j = (j + 1) & f.mask
		}
		f.keys[j], f.vals[j] = old.keys[i], v
	}
}

// header holds what the sequential prescan of the leading comment/blank
// lines established: the graph flags, optional n=/m= size hints, and
// where the data region starts.
type header struct {
	directed, weighted bool
	seen               bool // a "directed=" comment already fixed the flags
	nHint, mHint       int
	off                int // byte offset of the first data line
	lines              int // lines consumed before the data region
}

// newHeader returns the prescan state with the reference reader's
// defaults (directed, unweighted).
func newHeader() header { return header{directed: true} }

// scan consumes leading blank and comment lines from data exactly like
// the reference reader: the first comment containing "directed=" fixes
// the flags, later ones are ignored, and flags are frozen once the
// first data line appears. done=true means a data line was found and
// h.off is its offset within data; done=false means data held only
// header lines — the streaming reader calls scan again on the next
// window, accumulating flags, hints and line counts across calls.
func (h *header) scan(data []byte) (done bool, err error) {
	pos := 0
	for pos < len(data) {
		ls := pos
		le, next := len(data), len(data)
		if nl := bytes.IndexByte(data[pos:], '\n'); nl >= 0 {
			le, next = pos+nl, pos+nl+1
		}
		if le-ls >= maxLineLen {
			return false, bufio.ErrTooLong
		}
		line := bytes.TrimSpace(data[ls:le])
		if len(line) == 0 {
			h.lines++
			pos = next
			continue
		}
		if line[0] != '#' {
			h.off = ls
			return true, nil
		}
		if !h.seen && bytes.Contains(line, []byte("directed=")) {
			h.seen = true
			h.directed = bytes.Contains(line, []byte("directed=true"))
			h.weighted = bytes.Contains(line, []byte("weighted=true"))
		}
		h.scanHints(line)
		h.lines++
		pos = next
	}
	h.off = len(data)
	return false, nil
}

// scanHints extracts n=/m= size hints from a header comment. They only
// pre-size buffers, so malformed or missing hints cost nothing.
func (h *header) scanHints(line []byte) {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace[line[i]] {
			i++
		}
		s := i
		for i < len(line) && !asciiSpace[line[i]] {
			i++
		}
		tok := line[s:i]
		if len(tok) > 2 && tok[1] == '=' {
			// Bound by MaxInt32 so int(v) cannot wrap negative on
			// 32-bit platforms and sneak past the size clamps.
			if v, ok := parseIntBytes(tok[2:]); ok && v >= 0 && v < 1<<31 {
				if tok[0] == 'n' {
					h.nHint = int(v)
				} else if tok[0] == 'm' {
					h.mHint = int(v)
				}
			}
		}
	}
}

// Chunk error kinds; the first failing chunk materializes the same
// error, with the same global line number, the reference reader stops
// on.
const (
	failNone = iota
	failTooLong
	failBadVertex
	failFieldCount
	failNum
)

type chunkError struct {
	kind  int
	line  int   // 1-based within the chunk
	count int   // field count for failFieldCount
	num   error // strconv error for failNum
}

// internRec is one chunk-local first appearance of an external id.
type internRec struct {
	id  VertexID
	pos int32 // index into the chunk's localIDs
}

// chunk is one newline-aligned byte range with everything its parse
// produced.
type chunk struct {
	lo, hi   int
	index    *flatIntern
	localIDs []VertexID    // chunk-local first-appearance order
	buckets  [][]internRec // per intern shard, in localIDs order
	srcs     []int32       // chunk-local vertex indexes
	dsts     []int32
	ws       []float64 // nil until a 3-field line appears in this chunk
	sawData  bool
	lines    int
	fail     chunkError
}

func (c *chunk) intern(id VertexID, shards int) int32 {
	v, existed := c.index.getOrPut(id, int32(len(c.localIDs)))
	if existed {
		return v
	}
	c.localIDs = append(c.localIDs, id)
	s := shardOf(id, shards)
	c.buckets[s] = append(c.buckets[s], internRec{id: id, pos: v})
	return v
}

// parse tokenizes the chunk's lines. It stops at the chunk's first
// error; the line count of an errored chunk is only consumed up to the
// failure, which is fine because only chunks before the earliest
// failure contribute to its global line number.
func (c *chunk) parse(region []byte, shards, vHint, eHint int) {
	c.index = newFlatIntern(vHint)
	c.localIDs = make([]VertexID, 0, vHint)
	c.buckets = make([][]internRec, shards)
	c.srcs = make([]int32, 0, eHint)
	c.dsts = make([]int32, 0, eHint)

	pos := c.lo
	var tok [3][2]int
	for pos < c.hi {
		ls := pos
		le := c.hi
		if nl := bytes.IndexByte(region[pos:c.hi], '\n'); nl >= 0 {
			le = pos + nl
			pos = le + 1
		} else {
			pos = c.hi
		}
		c.lines++
		if le-ls >= maxLineLen {
			c.fail = chunkError{kind: failTooLong, line: c.lines}
			return
		}

		// Tokenize: remember the first three tokens, count them all.
		total := 0
		for i := ls; i < le; {
			i = skipSpace(region, i, le)
			if i >= le {
				break
			}
			s := i
			i = skipToken(region, i, le)
			if total < 3 {
				tok[total] = [2]int{s, i}
			}
			total++
		}
		if total == 0 {
			continue // blank line
		}
		if region[tok[0][0]] == '#' {
			continue // comment; header flags froze at the prescan
		}
		c.sawData = true

		if tok[0][1]-tok[0][0] == 1 && region[tok[0][0]] == 'v' {
			if total != 2 {
				c.fail = chunkError{kind: failBadVertex, line: c.lines}
				return
			}
			id, ok := c.parseVertexID(region, tok[1])
			if !ok {
				return
			}
			c.intern(id, shards)
			continue
		}
		if total < 2 || total > 3 {
			c.fail = chunkError{kind: failFieldCount, line: c.lines, count: total}
			return
		}
		src, ok := c.parseVertexID(region, tok[0])
		if !ok {
			return
		}
		dst, ok := c.parseVertexID(region, tok[1])
		if !ok {
			return
		}
		s, d := c.intern(src, shards), c.intern(dst, shards)
		if total == 3 {
			w := region[tok[2][0]:tok[2][1]]
			wt, err := strconv.ParseFloat(bstr(w), 64)
			if err != nil {
				c.fail = chunkError{kind: failNum, line: c.lines, num: err}
				return
			}
			if c.ws == nil {
				// Earlier 2-field edges of this chunk carry weight 1,
				// exactly as Builder.AddEdge records them.
				c.ws = make([]float64, len(c.srcs), cap(c.srcs))
				for i := range c.ws {
					c.ws[i] = 1
				}
			}
			c.ws = append(c.ws, wt)
		} else if c.ws != nil {
			c.ws = append(c.ws, 1)
		}
		c.srcs = append(c.srcs, s)
		c.dsts = append(c.dsts, d)
	}
}

// parseVertexID resolves one id token, falling back to strconv for
// oversized magnitudes and for the canonical error text.
func (c *chunk) parseVertexID(region []byte, t [2]int) (VertexID, bool) {
	b := region[t[0]:t[1]]
	if v, ok := parseIntBytes(b); ok {
		return VertexID(v), true
	}
	v, err := strconv.ParseInt(bstr(b), 10, 64)
	if err != nil {
		c.fail = chunkError{kind: failNum, line: c.lines, num: err}
		return 0, false
	}
	return VertexID(v), true
}

// shardAssign is one intern shard's view of the dedup: the ids it owns
// in global first-appearance order, with their (chunk, position) keys
// and, after the merge, their final internal ids.
type shardAssign struct {
	m     *flatIntern
	ids   []VertexID
	keys  []uint64 // chunk<<32 | chunk-local first-appearance position
	final []int32
}

// mergeAssign is the tournament-tree fan-in of the sharded dedup: it
// merges the shards' first-appearance lists by their (chunk, position)
// keys, writing each id's final internal id and the global id table in
// merged order. Keys are unique ((chunk, position) pairs identify one
// first appearance), so ties cannot arise and the merge is total.
//
// The tree is a classic loser tree: leaves are the shard heads padded to
// a power of two with an exhausted sentinel, internal nodes hold the
// loser of their subtree's match, and tree[0] holds the overall winner.
// Popping the winner replays exactly one root-to-leaf path — O(log S)
// comparisons — where the linear scan it replaces compared all S heads
// per output id.
func mergeAssign(assigns []shardAssign, ids []VertexID) {
	shards := len(assigns)
	width := 1
	for width < shards {
		width <<= 1
	}
	const exhausted = ^uint64(0)
	heads := make([]int, width)
	key := make([]uint64, width) // current key of each leaf
	for s := range key {
		if s < shards && len(assigns[s].keys) > 0 {
			key[s] = assigns[s].keys[0]
		} else {
			key[s] = exhausted
		}
	}
	tree := make([]int, width) // tree[1:] hold losers; tree[0] the winner
	var build func(node int) int
	build = func(node int) int {
		if node >= width {
			return node - width // leaf: shard index
		}
		l, r := build(2*node), build(2*node+1)
		if key[l] <= key[r] {
			tree[node] = r
			return l
		}
		tree[node] = l
		return r
	}
	tree[0] = build(1)

	for i := range ids {
		w := tree[0]
		a := &assigns[w]
		a.final[heads[w]] = int32(i)
		ids[i] = a.ids[heads[w]]
		heads[w]++
		if heads[w] < len(a.keys) {
			key[w] = a.keys[heads[w]]
		} else {
			key[w] = exhausted
		}
		// Replay the matches on w's root path; the smaller key survives.
		for node := (width + w) / 2; node >= 1; node /= 2 {
			if key[tree[node]] < key[w] {
				tree[node], w = w, tree[node]
			}
		}
		tree[0] = w
	}
}

// ParseEdgeList parses an in-memory edge list with the chunked parallel
// loader. See ReadEdgeList for the format.
func ParseEdgeList(data []byte) (*Graph, error) {
	h := newHeader()
	if _, err := h.scan(data); err != nil {
		return nil, err
	}
	region := data[h.off:]
	procs := par.Procs(int64(len(region)), loaderGrainBytes)
	vHint, eHint := h.chunkHints(len(region), procs*loaderChunksPerWorker)
	chunks := parseChunks(region, procs, procs, vHint, eHint)
	if _, err := chunkFail(chunks, h.lines); err != nil {
		return nil, err
	}
	return assembleGraph(h, chunks, procs, procs), nil
}

// chunkHints sizes the per-chunk vertex/edge buffer hints for nc chunks
// over a region of regionLen bytes, clamping the header's claims so a
// lying header cannot force absurd allocations: every edge line has ≥4
// bytes, every vertex ≥2.
func (h *header) chunkHints(regionLen, nc int) (vHint, eHint int) {
	n, m := h.nHint, h.mHint
	if m > regionLen/4+1 {
		m = regionLen/4 + 1
	}
	if n > regionLen/2+1 {
		n = regionLen/2 + 1
	}
	return n/nc + 8, m/nc + 8
}

// parseChunks splits region into newline-aligned chunks pulled by procs
// workers from a shared counter and parses them concurrently, interning
// ids into `shards` dedup shards.
func parseChunks(region []byte, procs, shards, vHint, eHint int) []chunk {
	nc := procs * loaderChunksPerWorker

	// Newline-aligned chunk boundaries: push each tentative split to
	// the start of the next line. Collapsed (empty) chunks are fine.
	bounds := make([]int, nc+1)
	bounds[nc] = len(region)
	for i := 1; i < nc; i++ {
		s := i * len(region) / nc
		if s < bounds[i-1] {
			s = bounds[i-1]
		}
		if s > 0 && (s == len(region) || region[s-1] == '\n') {
			bounds[i] = s
			continue
		}
		if nl := bytes.IndexByte(region[s:], '\n'); nl >= 0 {
			bounds[i] = s + nl + 1
		} else {
			bounds[i] = len(region)
		}
	}

	chunks := make([]chunk, nc)
	var nextChunk atomic.Int32
	par.Do(procs, func(int) {
		for {
			k := int(nextChunk.Add(1)) - 1
			if k >= nc {
				return
			}
			chunks[k].lo, chunks[k].hi = bounds[k], bounds[k+1]
			chunks[k].parse(region, shards, vHint, eHint)
		}
	})
	return chunks
}

// chunkFail scans chunks for the first failure in file order and
// materializes it with the reference reader's line numbering; startLine
// is the global line count before chunks[0]. On success it returns the
// line count after the last chunk, so the streaming reader can thread
// it through windows. (Errors are formatted here, before the caller may
// reuse the underlying byte buffer, because strconv errors alias it.)
func chunkFail(chunks []chunk, startLine int) (int, error) {
	line := startLine
	for k := range chunks {
		c := &chunks[k]
		if c.fail.kind != failNone {
			n := line + c.fail.line
			switch c.fail.kind {
			case failTooLong:
				return 0, bufio.ErrTooLong
			case failBadVertex:
				return 0, fmt.Errorf("graph: line %d: bad vertex line", n)
			case failFieldCount:
				return 0, fmt.Errorf("graph: line %d: expected 2 or 3 fields, got %d", n, c.fail.count)
			default:
				return 0, fmt.Errorf("graph: line %d: %v", n, c.fail.num)
			}
		}
		line += c.lines
	}
	return line, nil
}

// assembleGraph runs the sharded dedup, the deterministic merge and the
// edge remap over the parsed (failure-free) chunks and builds the CSR
// graph. Chunks must all have interned into `shards` shards; the order
// of the slice is file order, which the (chunk, position) merge keys
// rely on.
func assembleGraph(h header, chunks []chunk, procs, shards int) *Graph {
	nc := len(chunks)
	sawData, sawWeight := false, false
	m := 0
	for k := range chunks {
		sawData = sawData || chunks[k].sawData
		sawWeight = sawWeight || chunks[k].ws != nil
		m += len(chunks[k].srcs)
	}
	// The weighted flag freezes when the first data line creates the
	// builder (reference quirk: a weighted header with no data lines
	// yields an unweighted empty graph).
	weighted := (h.weighted && sawData) || sawWeight

	// Sharded dedup: shard s scans every chunk's bucket s in (chunk,
	// position) order, keeping the first record per id. The kept keys
	// come out sorted, so the merge below is a linear S-way merge. The
	// intern table is sized from the actual record count — an exact
	// upper bound on the shard's distinct ids — never from the header's
	// unclamped n= claim (a lying header must not force allocations).
	assigns := make([]shardAssign, shards)
	par.Do(shards, func(s int) {
		a := &assigns[s]
		recs := 0
		for k := range chunks {
			recs += len(chunks[k].buckets[s])
		}
		a.m = newFlatIntern(recs)
		for k := range chunks {
			for _, r := range chunks[k].buckets[s] {
				// Membership insert; the final id overwrites it below.
				if _, existed := a.m.getOrPut(r.id, 0); !existed {
					a.ids = append(a.ids, r.id)
					a.keys = append(a.keys, uint64(k)<<32|uint64(uint32(r.pos)))
				}
			}
		}
		a.final = make([]int32, len(a.ids))
	})

	// Deterministic assignment: merging the shard lists by (chunk,
	// position) restores the global first-appearance order — the exact
	// internal-id order of a sequential Builder fed the same lines. The
	// merge is a tournament (loser) tree over the shard heads: O(log S)
	// comparisons per id instead of the former O(S) linear scan, which
	// matters once the fan-out grows past a handful of shards.
	n := 0
	for s := range assigns {
		n += len(assigns[s].ids)
	}
	ids := make([]VertexID, n)
	mergeAssign(assigns, ids)
	par.Do(shards, func(s int) {
		a := &assigns[s]
		for i, id := range a.ids {
			a.m.put(id, a.final[i])
		}
	})

	// Remap chunk-local edges into the global edge arrays (chunk-major
	// order = file order), translating through the shard maps.
	edgeOff := make([]int, nc+1)
	for k := range chunks {
		edgeOff[k+1] = edgeOff[k] + len(chunks[k].srcs)
	}
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	// ws stays nil for an edgeless weighted graph: the reference's
	// Builder only materializes its weight column on the first edge, and
	// Graph.Weighted reports outW presence.
	var ws []float64
	if weighted && m > 0 {
		ws = make([]float64, m)
	}
	var nextRemap atomic.Int32
	par.Do(procs, func(int) {
		for {
			k := int(nextRemap.Add(1)) - 1
			if k >= nc {
				return
			}
			c := &chunks[k]
			trans := make([]int32, len(c.localIDs))
			for i, id := range c.localIDs {
				trans[i] = assigns[shardOf(id, shards)].m.get(id)
			}
			off := edgeOff[k]
			for i, s := range c.srcs {
				srcs[off+i] = trans[s]
			}
			for i, d := range c.dsts {
				dsts[off+i] = trans[d]
			}
			if ws != nil {
				if c.ws != nil {
					copy(ws[off:off+len(c.ws)], c.ws)
				} else {
					for i := range c.srcs {
						ws[off+i] = 1
					}
				}
			}
		}
	})

	// Hand the assembled arrays to the parallel CSR pipeline. The
	// builder is construction-only scratch (its intern map stays nil —
	// Build never touches it), so no per-edge Builder calls and no
	// single-map contention anywhere on the path.
	b := &Builder{directed: h.directed, weighted: weighted, ids: ids, srcs: srcs, dsts: dsts, ws: ws}
	return b.Build()
}
