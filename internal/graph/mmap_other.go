//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapFile on platforms without memory mapping always reports failure;
// ReadEdgeListFileMmap then takes the streaming path.
func mmapFile(*os.File) ([]byte, func(), error) {
	return nil, nil, errors.New("graph: mmap unsupported on this platform")
}
