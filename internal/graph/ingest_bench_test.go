package graph_test

import (
	"math/rand"
	"testing"

	"aap/internal/gen"
	"aap/internal/graph"
)

// The ingest benchmarks measure the three stages of getting a graph into
// the engine — CSR construction, relabeling, and symmetrization — on a
// power-law graph shaped like the harness datasets. Builder fill (the
// external-id dedup map) is excluded: it is paid once per dataset and is
// not part of the Build/Relabel/AsUndirected hot path.

const (
	benchN   = 150_000
	benchDeg = 16
)

// fillBuilder adds benchN*benchDeg power-law edges to a fresh Builder.
func fillBuilder(directed, weighted bool) *graph.Builder {
	rng := rand.New(rand.NewSource(42))
	n := benchN
	b := graph.NewBuilder(directed)
	if weighted {
		b.SetWeighted()
	}
	b.Reserve(n, n*benchDeg)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i))
	}
	for e := 0; e < n*benchDeg; e++ {
		// Zipf-ish endpoints: square the uniform draw to skew low ids.
		f := rng.Float64()
		s := int32(f * f * float64(n))
		d := int32(rng.Intn(n))
		if s == d {
			d = (d + 1) % int32(n)
		}
		if weighted {
			b.AddWeightedEdge(graph.VertexID(s), graph.VertexID(d), 1+rng.Float64()*99)
		} else {
			b.AddEdge(graph.VertexID(s), graph.VertexID(d))
		}
	}
	return b
}

func BenchmarkBuildDirectedWeighted(b *testing.B) {
	bld := fillBuilder(true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bld.Build()
		if g.NumVertices() != benchN {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkBuildUndirected(b *testing.B) {
	bld := fillBuilder(false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bld.Build()
		if g.NumVertices() != benchN {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkRelabel(b *testing.B) {
	g := fillBuilder(true, true).Build()
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Relabel(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsUndirected(b *testing.B) {
	g := fillBuilder(true, true).Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.AsUndirected(g)
		if u.Directed() {
			b.Fatal("still directed")
		}
	}
}

// BenchmarkBuildGenPowerLaw measures Build behind the generator used by
// the harness datasets (fill + build, the full generator cost).
func BenchmarkBuildGenPowerLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.PowerLaw(benchN, benchDeg, 2.1, true, 42)
		if g.NumVertices() != benchN {
			b.Fatal("bad build")
		}
	}
}
