// Windowed streaming front end of the chunked parallel loader: instead
// of slurping the whole file (peak RSS >= file size), the reader pulls
// fixed-size byte windows, parses each window's complete lines through
// the same chunk machinery (parseChunks), carries the trailing partial
// line to the front of the next window, and only the parsed chunk
// outputs (edge arrays, intern records) stay resident. The sharded
// dedup, deterministic merge and CSR build run once over all chunks at
// EOF, so the result is bit-identical to the slurp path for any window
// size — window boundaries only move chunk boundaries, and the (chunk,
// position) merge keys make the assignment independent of those.
package graph

import (
	"bufio"
	"bytes"
	"io"

	"aap/internal/par"
)

// streamWindow is the read window of the streaming loader. Inputs that
// fit one window take the in-memory path unchanged; larger inputs
// stream. A variable so tests can shrink it to force multi-window
// parses on small inputs.
var streamWindow = 8 << 20

// readEdgeListStream reads the edge-list format from r window by
// window. Errors report the same text and global line numbers as the
// in-memory parse: windows are checked in file order before the buffer
// is reused.
func readEdgeListStream(r io.Reader) (*Graph, error) {
	buf, eof, err := fillBuf(r, make([]byte, 0, streamWindow))
	if err != nil {
		return nil, err
	}
	if eof {
		// The whole input fits one window: identical to the slurp path.
		return ParseEdgeList(buf)
	}

	// Size unknown (and already > one window): assume enough work for
	// the full fan-out. All windows must agree on the dedup shard count.
	procs := par.Procs(int64(1)<<40, loaderGrainBytes)
	shards := procs

	h := newHeader()
	headerDone := false
	line := 0
	var all []chunk
	for {
		// The complete region: everything up to the last newline; at
		// EOF the final (possibly unterminated) line joins it.
		cut := len(buf)
		if !eof {
			if nl := bytes.LastIndexByte(buf, '\n'); nl >= 0 {
				cut = nl + 1
			} else {
				cut = 0
			}
		}
		complete := buf[:cut]
		pos := len(complete)
		if !headerDone {
			done, err := h.scan(complete)
			if err != nil {
				return nil, err
			}
			if done {
				headerDone = true
				line = h.lines
				pos = h.off
			}
		} else {
			pos = 0
		}
		if pos < len(complete) {
			region := complete[pos:]
			vHint, eHint := h.chunkHints(len(region), procs*loaderChunksPerWorker)
			chunks := parseChunks(region, procs, shards, vHint, eHint)
			// Check before the buffer is recycled: the first failing
			// window holds the first failing line of the file.
			if line, err = chunkFail(chunks, line); err != nil {
				return nil, err
			}
			all = append(all, chunks...)
		}
		if eof {
			break
		}
		// Carry the partial tail line to the front and refill. A full
		// buffer without any newline is one huge line: grow it until
		// the reference reader's line ceiling says ErrTooLong.
		carry := len(buf) - cut
		if carry >= maxLineLen {
			return nil, bufio.ErrTooLong
		}
		copy(buf, buf[cut:])
		buf = buf[:carry]
		if carry == cap(buf) {
			nb := make([]byte, carry, cap(buf)*2)
			copy(nb, buf)
			buf = nb
		}
		if buf, eof, err = fillBuf(r, buf); err != nil {
			return nil, err
		}
	}
	return assembleGraph(h, all, procs, shards), nil
}

// fillBuf reads from r until buf reaches capacity or EOF; eof reports
// that the input is exhausted.
func fillBuf(r io.Reader, buf []byte) (_ []byte, eof bool, err error) {
	for len(buf) < cap(buf) {
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, true, nil
		}
		if err != nil {
			return buf, false, err
		}
	}
	return buf, false, nil
}
