// Parallel ingest pipeline: multicore CSR construction, zero-rebuild
// relabeling, and direct symmetrization.
//
// The three entry points (Builder.Build, Relabel, AsUndirected) share a
// small toolbox: contiguous edge shards with per-shard counters feeding a
// deterministic scatter, vertex shards balanced by edge work, and a
// stable per-row sorter with monomorphic insertion and LSD-radix fast
// paths. Everything is dense-array work — no maps anywhere on the path —
// and every stage produces output bit-identical to the retained
// sequential references in ingest_ref.go: same vertex order, same
// adjacency order (ascending neighbor, parallel edges in input order).
package graph

import (
	"sort"

	"aap/internal/par"
)

// ingestShardEdges is the minimum number of edges a shard must carry
// before the pipeline adds another worker; below it goroutine fan-out
// costs more than it saves.
const ingestShardEdges = 1 << 15

// countStripeBudget bounds the transient per-worker degree-count stripes
// of scatterCSR (4 bytes per vertex per worker), so many-core machines
// with very large vertex counts don't allocate stripes bigger than the
// CSR arrays they are building.
const countStripeBudget = 256 << 20

// ingestProcs picks the worker count for an m-edge ingest stage.
func ingestProcs(m int) int {
	return par.Procs(int64(m), ingestShardEdges)
}

// edgeShards splits [0, m) into p near-equal contiguous ranges.
func edgeShards(m, p int) []int {
	b := make([]int, p+1)
	for i := 0; i <= p; i++ {
		b[i] = i * m / p
	}
	return b
}

// vertexShardsByWork splits [0, n) into p contiguous vertex ranges with
// near-equal total edge span, so hub vertices of a power-law graph do not
// serialize the row-parallel stages.
func vertexShardsByWork(off []int64, p int) []int32 {
	n := len(off) - 1
	total := off[n]
	b := make([]int32, p+1)
	b[p] = int32(n)
	for i := 1; i < p; i++ {
		target := total * int64(i) / int64(p)
		b[i] = int32(sort.Search(n, func(v int) bool { return off[v] >= target }))
	}
	return b
}

// scatterCSR builds one CSR side — offsets, adjacency, parallel weights —
// for n vertices from m edges key[i] → val[i]. When mirror is true every
// key ≠ val edge is also emitted reversed (the undirected storage
// convention; self-loops stay single). ws may be nil for unweighted
// graphs. Rows come out stable-sorted: ascending neighbor index, parallel
// edges in input order.
//
// The scatter is deterministic under any worker count: each worker owns a
// contiguous edge shard and a private per-vertex cursor stripe, and the
// cursor stripes are pre-offset so shard w's entries land after shard
// w-1's within every row — exactly the sequential emission order.
func scatterCSR(n int, keys, vals []int32, ws []float64, mirror bool) ([]int64, []int32, []float64) {
	m := len(keys)
	sp := ingestProcs(m)
	// The count stripes are transient O(sp·n) memory; cap the
	// counting/scatter fan-out so they never dwarf the CSR output on
	// many-core machines with huge vertex counts. Row sorting below is
	// stripe-free and keeps the full worker count.
	if n > 0 {
		if lim := countStripeBudget / 4 / n; sp > lim {
			sp = lim
			if sp < 1 {
				sp = 1
			}
		}
	}
	eb := edgeShards(m, sp)

	// Per-shard degree counting into private stripes.
	counts := make([]int32, sp*n)
	par.Do(sp, func(w int) {
		c := counts[w*n : (w+1)*n]
		for i := eb[w]; i < eb[w+1]; i++ {
			c[keys[i]]++
			if mirror && keys[i] != vals[i] {
				c[vals[i]]++
			}
		}
	})

	// Offsets: per-vertex exclusive scan across shards (turning each
	// stripe entry into the shard's start within the row), then a
	// two-pass parallel prefix sum over vertex ranges.
	off := make([]int64, n+1)
	vb := make([]int, sp+1)
	for i := 0; i <= sp; i++ {
		vb[i] = i * n / sp
	}
	rangeTotal := make([]int64, sp)
	par.Do(sp, func(w int) {
		var tot int64
		for v := vb[w]; v < vb[w+1]; v++ {
			var run int32
			for q := 0; q < sp; q++ {
				c := counts[q*n+v]
				counts[q*n+v] = run
				run += c
			}
			off[v+1] = int64(run)
			tot += int64(run)
		}
		rangeTotal[w] = tot
	})
	var base int64
	for w := 0; w < sp; w++ {
		base, rangeTotal[w] = base+rangeTotal[w], base
	}
	par.Do(sp, func(w int) {
		run := rangeTotal[w]
		for v := vb[w]; v < vb[w+1]; v++ {
			run += off[v+1]
			off[v+1] = run
		}
	})

	// Scatter: each worker walks its edge shard in order, placing entries
	// at off[v] + stripe cursor.
	total := off[n]
	adj := make([]int32, total)
	var wgt []float64
	if ws != nil {
		wgt = make([]float64, total)
	}
	par.Do(sp, func(w int) {
		cur := counts[w*n : (w+1)*n]
		for i := eb[w]; i < eb[w+1]; i++ {
			s, d := keys[i], vals[i]
			pos := off[s] + int64(cur[s])
			cur[s]++
			adj[pos] = d
			if wgt != nil {
				wgt[pos] = ws[i]
			}
			if mirror && s != d {
				pos := off[d] + int64(cur[d])
				cur[d]++
				adj[pos] = s
				if wgt != nil {
					wgt[pos] = ws[i]
				}
			}
		}
	})

	sortRows(off, adj, wgt, ingestProcs(m))
	return off, adj, wgt
}

// sortRows stable-sorts every adjacency row by neighbor index, in
// parallel across vertex ranges balanced by edge count.
func sortRows(off []int64, adj []int32, w []float64, p int) {
	vb := vertexShardsByWork(off, p)
	par.Do(p, func(worker int) {
		var rs rowSorter
		for v := vb[worker]; v < vb[worker+1]; v++ {
			lo, hi := off[v], off[v+1]
			if hi-lo < 2 {
				continue
			}
			if w == nil {
				rs.sort(adj[lo:hi], nil)
			} else {
				rs.sort(adj[lo:hi], w[lo:hi])
			}
		}
	})
}

// insertionMax is the row length at or below which binary-shift insertion
// sort beats the radix setup cost.
const insertionMax = 32

// rowSorter stable-sorts one adjacency row at a time, reusing scratch
// across rows so a whole vertex shard sorts with O(1) allocations.
type rowSorter struct {
	adjTmp []int32
	wTmp   []float64
	count  [256]int32
}

func (rs *rowSorter) sort(adj []int32, w []float64) {
	if len(adj) <= insertionMax {
		if w == nil {
			insertionSortAdj(adj)
		} else {
			insertionSortAdjW(adj, w)
		}
		return
	}
	rs.radixSort(adj, w)
}

// insertionSortAdj is a stable insertion sort over neighbor indexes.
func insertionSortAdj(adj []int32) {
	for i := 1; i < len(adj); i++ {
		a := adj[i]
		j := i - 1
		for j >= 0 && adj[j] > a {
			adj[j+1] = adj[j]
			j--
		}
		adj[j+1] = a
	}
}

// insertionSortAdjW is insertionSortAdj with the weight column kept
// parallel.
func insertionSortAdjW(adj []int32, w []float64) {
	for i := 1; i < len(adj); i++ {
		a, wv := adj[i], w[i]
		j := i - 1
		for j >= 0 && adj[j] > a {
			adj[j+1], w[j+1] = adj[j], w[j]
			j--
		}
		adj[j+1], w[j+1] = a, wv
	}
}

// radixSort is a stable byte-wise LSD radix sort; neighbor indexes are
// non-negative so unsigned byte order is value order. Passes above the
// row maximum and passes where every key shares a byte are skipped.
func (rs *rowSorter) radixSort(adj []int32, w []float64) {
	nr := len(adj)
	if cap(rs.adjTmp) < nr {
		rs.adjTmp = make([]int32, nr)
		if w != nil {
			rs.wTmp = make([]float64, nr)
		}
	}
	if w != nil && cap(rs.wTmp) < nr {
		rs.wTmp = make([]float64, nr)
	}
	src, dst := adj, rs.adjTmp[:nr]
	var wsrc, wdst []float64
	if w != nil {
		wsrc, wdst = w, rs.wTmp[:nr]
	}
	var max int32
	for _, a := range src {
		if a > max {
			max = a
		}
	}
	for shift := uint(0); max>>shift != 0; shift += 8 {
		count := &rs.count
		*count = [256]int32{}
		for _, a := range src {
			count[(a>>shift)&0xff]++
		}
		// A pass where every key shares the byte moves nothing.
		if count[(src[0]>>shift)&0xff] == int32(nr) {
			continue
		}
		var run int32
		for b := range count {
			c := count[b]
			count[b] = run
			run += c
		}
		if w != nil {
			for i, a := range src {
				b := (a >> shift) & 0xff
				pos := count[b]
				count[b]++
				dst[pos] = a
				wdst[pos] = wsrc[i]
			}
		} else {
			for _, a := range src {
				b := (a >> shift) & 0xff
				pos := count[b]
				count[b]++
				dst[pos] = a
			}
		}
		src, dst = dst, src
		wsrc, wdst = wdst, wsrc
	}
	if &src[0] != &adj[0] {
		copy(adj, src)
		if w != nil {
			copy(w, wsrc)
		}
	}
}

// permuteCSR relabels one CSR side by perm in O(n+m): new offsets from
// permuted degrees, rows copied with neighbors mapped through perm, then
// re-sorted. Parallel edges keep their input order (the old row is
// stable-sorted, the copy preserves it, and the re-sort is stable), so
// the result matches the Builder-based reference bit for bit.
func permuteCSR(off []int64, adj []int32, w []float64, perm []int32) ([]int64, []int32, []float64) {
	n := len(off) - 1
	mm := len(adj)
	p := ingestProcs(mm)
	noff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		noff[perm[v]+1] = off[v+1] - off[v]
	}
	for v := 0; v < n; v++ {
		noff[v+1] += noff[v]
	}
	nadj := make([]int32, mm)
	var nw []float64
	if w != nil {
		nw = make([]float64, mm)
	}
	vb := vertexShardsByWork(off, p)
	par.Do(p, func(worker int) {
		var rs rowSorter
		for v := vb[worker]; v < vb[worker+1]; v++ {
			lo, hi := off[v], off[v+1]
			if lo == hi {
				continue
			}
			nlo := noff[perm[v]]
			row := nadj[nlo : nlo+(hi-lo)]
			for i, u := range adj[lo:hi] {
				row[i] = perm[u]
			}
			if w == nil {
				rs.sort(row, nil)
			} else {
				wrow := nw[nlo : nlo+(hi-lo)]
				copy(wrow, w[lo:hi])
				rs.sort(row, wrow)
			}
		}
	})
	return noff, nadj, nw
}

// symmetrize builds the undirected CSR of a directed graph in O(n+m):
// row v is the sorted merge of Out(v) and In(v), with self-loops stored
// once. Both inputs are stable-sorted, so the merge resolves equal
// neighbors to the order the Builder-based reference produces — edges
// sorted by source index — without any comparison sort.
func symmetrize(g *Graph) ([]int64, []int32, []float64) {
	n := len(g.ids)
	p := ingestProcs(len(g.outDst) + len(g.inSrc))
	noff := make([]int64, n+1)

	// Row lengths: outdeg + indeg − self-loop count (each directed
	// self-loop appears in both input rows but is stored once).
	vb := make([]int32, p+1)
	for i := 0; i <= p; i++ {
		vb[i] = int32(i * n / p)
	}
	par.Do(p, func(worker int) {
		for v := vb[worker]; v < vb[worker+1]; v++ {
			row := g.outDst[g.outOff[v]:g.outOff[v+1]]
			i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
			self := 0
			for i+self < len(row) && row[i+self] == v {
				self++
			}
			noff[v+1] = (g.outOff[v+1] - g.outOff[v]) + (g.inOff[v+1] - g.inOff[v]) - int64(self)
		}
	})
	for v := 0; v < n; v++ {
		noff[v+1] += noff[v]
	}

	nadj := make([]int32, noff[n])
	var nw []float64
	if g.outW != nil {
		nw = make([]float64, noff[n])
	}
	mb := vertexShardsByWork(noff, p)
	par.Do(p, func(worker int) {
		for v := mb[worker]; v < mb[worker+1]; v++ {
			out := g.outDst[g.outOff[v]:g.outOff[v+1]]
			in := g.inSrc[g.inOff[v]:g.inOff[v+1]]
			var outw, inw []float64
			if nw != nil {
				outw = g.outW[g.outOff[v]:g.outOff[v+1]]
				inw = g.inW[g.inOff[v]:g.inOff[v+1]]
			}
			pos := noff[v]
			i, j := 0, 0
			for i < len(out) && j < len(in) {
				a, b := out[i], in[j]
				switch {
				case a < b:
					nadj[pos] = a
					if nw != nil {
						nw[pos] = outw[i]
					}
					i++
				case b < a:
					nadj[pos] = b
					if nw != nil {
						nw[pos] = inw[j]
					}
					j++
				case a == v:
					// Self-loop: both rows carry the same edges in the
					// same order; keep the out copy, drop the in copy.
					nadj[pos] = a
					if nw != nil {
						nw[pos] = outw[i]
					}
					i++
					j++
				case a < v:
					// Neighbor u < v: the u→v edges precede the v→u ones
					// in the reference's source-ordered emission.
					nadj[pos] = b
					if nw != nil {
						nw[pos] = inw[j]
					}
					j++
				default:
					nadj[pos] = a
					if nw != nil {
						nw[pos] = outw[i]
					}
					i++
				}
				pos++
			}
			for ; i < len(out); i++ {
				nadj[pos] = out[i]
				if nw != nil {
					nw[pos] = outw[i]
				}
				pos++
			}
			for ; j < len(in); j++ {
				nadj[pos] = in[j]
				if nw != nil {
					nw[pos] = inw[j]
				}
				pos++
			}
		}
	})
	return noff, nadj, nw
}
