// Sequential reference edge-list reader, retained from the
// pre-streaming loader as the differential-test oracle for the chunked
// parallel parser in loader.go: line-by-line bufio.Scanner tokenizing
// with strings.Fields and strconv, feeding one Builder. The parallel
// reader must match it bit for bit on ASCII inputs — same vertex order
// (first appearance in the token stream), same edge order, same flags,
// and the same error for the same first bad line.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// readEdgeListRef parses the edge-list format with the original
// single-goroutine scanner loop.
func readEdgeListRef(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	directed := true
	weighted := false
	headerSeen := false
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if !headerSeen && strings.Contains(text, "directed=") {
				headerSeen = true
				directed = strings.Contains(text, "directed=true")
				weighted = strings.Contains(text, "weighted=true")
			}
			continue
		}
		if b == nil {
			b = NewBuilder(directed)
			if weighted {
				b.SetWeighted()
			}
		}
		fields := strings.Fields(text)
		if fields[0] == "v" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad vertex line", line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddVertex(VertexID(id))
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: expected 2 or 3 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if len(fields) == 3 {
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddWeightedEdge(VertexID(src), VertexID(dst), wt)
		} else {
			b.AddEdge(VertexID(src), VertexID(dst))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		b = NewBuilder(directed)
	}
	return b.Build(), nil
}
