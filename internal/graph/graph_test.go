package graph_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"aap/internal/graph"
)

func TestBuilderBasics(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(10, 20, 1.5)
	b.AddWeightedEdge(20, 30, 2.5)
	b.AddWeightedEdge(10, 30, 3.5)
	b.AddVertex(99)
	g := b.Build()

	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if !g.Directed() || !g.Weighted() {
		t.Fatal("directed/weighted flags wrong")
	}
	v10, ok := g.IndexOf(10)
	if !ok {
		t.Fatal("vertex 10 missing")
	}
	if g.OutDegree(v10) != 2 {
		t.Errorf("outdeg(10) = %d, want 2", g.OutDegree(v10))
	}
	v30, _ := g.IndexOf(30)
	if g.InDegree(v30) != 2 {
		t.Errorf("indeg(30) = %d, want 2", g.InDegree(v30))
	}
	v99, _ := g.IndexOf(99)
	if g.OutDegree(v99) != 0 || g.InDegree(v99) != 0 {
		t.Error("isolated vertex has edges")
	}
	if g.IDOf(v10) != 10 {
		t.Errorf("IDOf round trip failed")
	}
	if _, ok := g.IndexOf(12345); ok {
		t.Error("nonexistent id resolved")
	}
}

func TestUndirectedAdjacencyBothDirections(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	v2, _ := g.IndexOf(2)
	if g.OutDegree(v2) != 2 {
		t.Fatalf("undirected degree(2) = %d, want 2", g.OutDegree(v2))
	}
	if !reflect.DeepEqual(g.In(v2), g.Out(v2)) {
		t.Error("In and Out must alias for undirected graphs")
	}
	if g.NumEdges() != 2 {
		t.Errorf("logical edges = %d, want 2", g.NumEdges())
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	count := 0
	g.Edges(func(src, dst int32, w float64) { count++ })
	if count != 3 {
		t.Errorf("Edges visited %d, want 3", count)
	}
}

func TestParallelEdgesPreserved(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 1, 2)
	g := b.Build()
	v0, _ := g.IndexOf(0)
	if g.OutDegree(v0) != 2 {
		t.Fatalf("parallel edges collapsed: outdeg = %d", g.OutDegree(v0))
	}
	ws := g.OutWeights(v0)
	if ws[0]+ws[1] != 3 {
		t.Errorf("weights = %v", ws)
	}
}

func TestSelfLoop(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(5, 5)
	g := b.Build()
	v, _ := g.IndexOf(5)
	if g.OutDegree(v) != 1 || g.InDegree(v) != 1 {
		t.Errorf("self loop degrees: out=%d in=%d", g.OutDegree(v), g.InDegree(v))
	}
}

// TestAdjacencySortedProperty: adjacency lists come out sorted for any
// random edge set.
func TestAdjacencySortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(true)
		n := 1 + rng.Intn(30)
		for e := 0; e < 60; e++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			out := g.Out(v)
			if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCSRPreservesAdjacencyProperty: building a CSR preserves exactly the
// multiset of edges added, for random graphs.
func TestCSRPreservesAdjacencyProperty(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(directed)
		n := 2 + rng.Intn(20)
		type pair struct{ s, d graph.VertexID }
		want := map[pair]int{}
		for e := 0; e < 40; e++ {
			s, d := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
			b.AddEdge(s, d)
			if !directed && d < s {
				s, d = d, s
			}
			want[pair{s, d}]++
		}
		g := b.Build()
		got := map[pair]int{}
		g.Edges(func(src, dst int32, w float64) {
			s, d := g.IDOf(src), g.IDOf(dst)
			if !directed && d < s {
				s, d = d, s
			}
			got[pair{s, d}]++
		})
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelPreservesEdges(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 2)
	b.AddWeightedEdge(2, 0, 3)
	g := b.Build()
	perm := []int32{2, 0, 1}
	rg, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumVertices() != 3 || rg.NumEdges() != 3 {
		t.Fatal("size changed")
	}
	// Every original edge must exist with the same weight, by external id.
	g.Edges(func(src, dst int32, w float64) {
		rs, _ := rg.IndexOf(g.IDOf(src))
		rd, _ := rg.IndexOf(g.IDOf(dst))
		found := false
		ws := rg.OutWeights(rs)
		for i, u := range rg.Out(rs) {
			if u == rd && ws[i] == w {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d->%d (w=%v) lost after relabel", g.IDOf(src), g.IDOf(dst), w)
		}
	})
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(0, 1)
	g := b.Build()
	for _, perm := range [][]int32{{0}, {0, 0}, {0, 5}, {1, -1}} {
		if _, err := graph.Relabel(g, perm); err == nil {
			t.Errorf("permutation %v accepted", perm)
		}
	}
}

func TestAsUndirected(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Build()
	u := graph.AsUndirected(g)
	if u.Directed() {
		t.Fatal("still directed")
	}
	v1, _ := u.IndexOf(1)
	if u.OutDegree(v1) != 2 {
		t.Errorf("degree(1) = %d, want 2", u.OutDegree(v1))
	}
	// Undirected input returns the same graph.
	if graph.AsUndirected(u) != u {
		t.Error("AsUndirected should be identity on undirected graphs")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	b.AddWeightedEdge(3, 7, 1.25)
	b.AddWeightedEdge(7, 9, 2.5)
	b.AddVertex(42) // isolated
	g := b.Build()

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size: %d/%d vs %d/%d", g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if g2.Directed() != g.Directed() || g2.Weighted() != g.Weighted() {
		t.Error("flags lost")
	}
	if _, ok := g2.IndexOf(42); !ok {
		t.Error("isolated vertex lost")
	}
	v3, _ := g2.IndexOf(3)
	ws := g2.OutWeights(v3)
	if len(ws) != 1 || ws[0] != 1.25 {
		t.Errorf("weight lost: %v", ws)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 3 4\n",
		"x y\n",
		"1 y\n",
		"1 2 z\n",
		"v\n",
		"v x\n",
	} {
		if _, err := graph.ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

func TestReadEdgeListSNAPStyle(t *testing.T) {
	in := "# some comment\n# more\n0 1\n1 2\n\n2 0\n"
	g, err := graph.ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d/%d", g.NumVertices(), g.NumEdges())
	}
	if !g.Directed() || g.Weighted() {
		t.Error("SNAP default should be directed unweighted")
	}
}

func TestEmptyEdgeList(t *testing.T) {
	g, err := graph.ReadEdgeList(bytes.NewBufferString(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Error("empty input should give empty graph")
	}
}
