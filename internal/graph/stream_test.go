package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// smallWindow shrinks the stream window so modest inputs cross many
// window boundaries, restoring it on cleanup.
func smallWindow(t *testing.T, w int) {
	t.Helper()
	old := streamWindow
	streamWindow = w
	t.Cleanup(func() { streamWindow = old })
}

// streamBoth parses data through the windowed streaming reader and the
// in-memory slurp path.
func streamBoth(data []byte) (*Graph, error, *Graph, error) {
	got, gotErr := readEdgeListStream(bytes.NewReader(data))
	want, wantErr := ParseEdgeList(data)
	return got, gotErr, want, wantErr
}

// TestStreamMatchesSlurp pins the streaming reader bit for bit against
// the in-memory parse on inputs spanning many windows, across window
// sizes that land boundaries mid-line and forced shard counts.
func TestStreamMatchesSlurp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomBuilder(rng, true, true, 800, 12000).buildRef()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes() // ~100 KiB
	for _, win := range []int{1 << 10, 4096 + 13, 1 << 16} {
		for _, procs := range []int{1, 3} {
			smallWindow(t, win)
			forceShards(t, procs)
			got, gotErr, want, wantErr := streamBoth(data)
			if gotErr != nil || wantErr != nil {
				t.Fatalf("win=%d procs=%d: stream err %v, slurp err %v", win, procs, gotErr, wantErr)
			}
			equalGraphs(t, tagOf("stream", procs, int64(win)), got, want)
		}
	}
}

// TestStreamCarryOverLines drives lines comparable to the window size,
// so nearly every line spans a window boundary and the carry/grow path
// does real work (numbers long enough come from wide weights).
func TestStreamCarryOverLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# directed=true weighted=true\n")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		// Long tokens: huge ids with maximal-precision weights, plus
		// padding runs of tabs so single lines exceed tiny windows.
		sb.WriteString(strings.Repeat("\t", rng.Intn(40)))
		sb.WriteString("90071992547409")
		sb.WriteString(itoa(i))
		sb.WriteString(" ")
		sb.WriteString(itoa(rng.Intn(50)))
		sb.WriteString(" 0.")
		for j := 0; j < 60; j++ {
			sb.WriteByte(byte('1' + rng.Intn(9)))
		}
		sb.WriteString("\n")
	}
	data := []byte(sb.String())
	for _, win := range []int{64, 97, 256} {
		smallWindow(t, win)
		got, gotErr, want, wantErr := streamBoth(data)
		if gotErr != nil || wantErr != nil {
			t.Fatalf("win=%d: stream err %v, slurp err %v", win, gotErr, wantErr)
		}
		equalGraphs(t, tagOf("stream-carry", 0, int64(win)), got, want)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestStreamErrorParity places the first bad line deep in a late
// window: the streaming reader must report the same error text and
// global line number as the slurp path (and the sequential reference).
func TestStreamErrorParity(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# directed=false weighted=true\n")
	for i := 0; i < 3000; i++ {
		sb.WriteString(itoa(i))
		sb.WriteString(" ")
		sb.WriteString(itoa(i + 1))
		sb.WriteString(" 1.5\n")
	}
	sb.WriteString("7 8 not-a-number\n") // line 3002
	sb.WriteString("9 10 2.5\n")
	data := []byte(sb.String())
	smallWindow(t, 512)
	got, gotErr, want, wantErr := streamBoth(data)
	if got != nil || want != nil {
		t.Fatal("expected both paths to fail")
	}
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("stream err %q, slurp err %q", gotErr, wantErr)
	}
	ref, refErr := readEdgeListRef(bytes.NewReader(data))
	if ref != nil || refErr == nil || refErr.Error() != gotErr.Error() {
		t.Fatalf("reference err %q, stream err %q", refErr, gotErr)
	}
	if !strings.Contains(gotErr.Error(), "line 3002") {
		t.Fatalf("error lost the global line number: %q", gotErr)
	}
}

// TestStreamHeaderSpansWindows feeds a header far longer than the
// window: flags, hints and line numbering must survive the resumable
// prescan.
func TestStreamHeaderSpansWindows(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# directed=false weighted=true n=3 m=2\n")
	for i := 0; i < 300; i++ {
		sb.WriteString("# filler comment line with some padding text\n")
	}
	sb.WriteString("\n\n")
	sb.WriteString("0 1 2.5\n1 2 0.5\n")
	sb.WriteString("bad line with four fields\n") // checks line numbers too
	data := []byte(sb.String())
	smallWindow(t, 256)
	_, gotErr, _, wantErr := streamBoth(data)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("stream err %q, slurp err %q", gotErr, wantErr)
	}
	// Drop the bad tail: the parsed graph must carry the header flags.
	clean := data[:bytes.LastIndexByte(data[:len(data)-1], '\n')+1]
	got, err := readEdgeListStream(bytes.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	if got.Directed() || !got.Weighted() || got.NumVertices() != 3 {
		t.Fatalf("flags lost across windows: directed=%v weighted=%v n=%d",
			got.Directed(), got.Weighted(), got.NumVertices())
	}
}

// TestStreamTooLongLine: a line exceeding the reference reader's 1 MiB
// ceiling must fail with bufio.ErrTooLong from the growth path instead
// of looping or slurping.
func TestStreamTooLongLine(t *testing.T) {
	data := append([]byte("0 1\n2 "), bytes.Repeat([]byte("9"), maxLineLen+8)...)
	data = append(data, '\n')
	smallWindow(t, 1024)
	got, gotErr, want, wantErr := streamBoth(data)
	if got != nil || want != nil {
		t.Fatal("expected both paths to fail")
	}
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("stream err %v, slurp err %v", gotErr, wantErr)
	}
}

// TestStreamNoTrailingNewline: the final unterminated line parses at
// EOF exactly as in memory.
func TestStreamNoTrailingNewline(t *testing.T) {
	data := []byte("0 1\n1 2\n2 3")
	smallWindow(t, 8)
	got, gotErr, want, wantErr := streamBoth(data)
	if gotErr != nil || wantErr != nil {
		t.Fatalf("errs: %v / %v", gotErr, wantErr)
	}
	equalGraphs(t, "stream-eof", got, want)
}

// TestStreamFile round-trips through ReadEdgeListFile with a window
// smaller than the file, the production entry point of the streaming
// path.
func TestStreamFile(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomBuilder(rng, false, true, 200, 3000).buildRef()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	smallWindow(t, 777)
	got, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ParseEdgeList(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, "stream-file", got, want)
}
