// Sequential reference implementations of the ingest path, retained from
// the pre-parallel pipeline. They are the oracles for the differential
// tests in ingest_test.go: buildRef is the single-threaded map-based CSR
// build, relabelRef and asUndirectedRef re-feed every edge through a
// Builder. The parallel pipeline in ingest.go must match them bit for
// bit — same vertex order, same adjacency order.
package graph

import "sort"

// buildRef is the sequential reference Build: per-edge emission into
// cursor-tracked rows, then a stable per-row comparison sort.
func (b *Builder) buildRef() *Graph {
	n := len(b.ids)
	m := len(b.srcs)
	g := &Graph{
		directed: b.directed,
		ids:      append([]VertexID(nil), b.ids...),
		index:    make(map[VertexID]int32, n),
		numEdges: int64(m),
	}
	for i, id := range g.ids {
		g.index[id] = int32(i)
	}

	// Out-adjacency. Undirected graphs store each edge in both lists.
	outDeg := make([]int64, n+1)
	for i := 0; i < m; i++ {
		outDeg[b.srcs[i]+1]++
		if !b.directed && b.srcs[i] != b.dsts[i] {
			outDeg[b.dsts[i]+1]++
		}
	}
	for i := 0; i < n; i++ {
		outDeg[i+1] += outDeg[i]
	}
	g.outOff = outDeg
	total := g.outOff[n]
	g.outDst = make([]int32, total)
	if b.weighted {
		g.outW = make([]float64, total)
	}
	cursor := make([]int64, n)
	copy(cursor, g.outOff[:n])
	emit := func(s, d int32, w float64) {
		p := cursor[s]
		cursor[s]++
		g.outDst[p] = d
		if g.outW != nil {
			g.outW[p] = w
		}
	}
	for i := 0; i < m; i++ {
		emit(b.srcs[i], b.dsts[i], b.ws[i])
		// Undirected edges appear in both endpoint lists; self-loops are
		// stored once so Edges reports them exactly once.
		if !b.directed && b.srcs[i] != b.dsts[i] {
			emit(b.dsts[i], b.srcs[i], b.ws[i])
		}
	}
	sortAdjacencyRef(g.outOff, g.outDst, g.outW, n)

	if b.directed {
		inDeg := make([]int64, n+1)
		for i := 0; i < m; i++ {
			inDeg[b.dsts[i]+1]++
		}
		for i := 0; i < n; i++ {
			inDeg[i+1] += inDeg[i]
		}
		g.inOff = inDeg
		g.inSrc = make([]int32, m)
		if b.weighted {
			g.inW = make([]float64, m)
		}
		copy(cursor, g.inOff[:n])
		for i := 0; i < m; i++ {
			d := b.dsts[i]
			p := cursor[d]
			cursor[d]++
			g.inSrc[p] = b.srcs[i]
			if g.inW != nil {
				g.inW[p] = b.ws[i]
			}
		}
		sortAdjacencyRef(g.inOff, g.inSrc, g.inW, n)
	} else {
		g.inOff, g.inSrc, g.inW = g.outOff, g.outDst, g.outW
	}
	return g
}

// sortAdjacencyRef stable-sorts each adjacency list by neighbor index,
// keeping the weight slice parallel. Stability pins the order of parallel
// edges to their insertion order, the canonical adjacency order both the
// reference and the parallel pipeline produce.
func sortAdjacencyRef(off []int64, adj []int32, w []float64, n int) {
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if hi-lo < 2 {
			continue
		}
		seg := adj[lo:hi]
		if w == nil {
			sort.SliceStable(seg, func(i, j int) bool { return seg[i] < seg[j] })
			continue
		}
		wseg := w[lo:hi]
		sort.Stable(&adjSorter{seg, wseg})
	}
}

type adjSorter struct {
	adj []int32
	w   []float64
}

func (s *adjSorter) Len() int           { return len(s.adj) }
func (s *adjSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *adjSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// asUndirectedRef is the reference AsUndirected: re-feed every directed
// edge through an undirected Builder.
func asUndirectedRef(g *Graph) *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(false)
	if g.Weighted() {
		b.SetWeighted()
	}
	for _, id := range g.ids {
		b.AddVertex(id)
	}
	g.Edges(func(src, dst int32, w float64) {
		if g.Weighted() {
			b.AddWeightedEdge(g.IDOf(src), g.IDOf(dst), w)
		} else {
			b.AddEdge(g.IDOf(src), g.IDOf(dst))
		}
	})
	return b.buildRef()
}

// relabelRef is the reference Relabel: pre-create vertices in permuted
// order, then re-feed every edge through the Builder's id map.
func relabelRef(g *Graph, perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if err := checkPerm(perm, n); err != nil {
		return nil, err
	}
	b := NewBuilder(g.directed)
	if g.Weighted() {
		b.SetWeighted()
	}
	newIDs := make([]VertexID, n)
	for v := 0; v < n; v++ {
		newIDs[perm[v]] = g.ids[v]
	}
	for _, id := range newIDs {
		b.AddVertex(id)
	}
	g.Edges(func(src, dst int32, w float64) {
		if g.Weighted() {
			b.AddWeightedEdge(g.IDOf(src), g.IDOf(dst), w)
		} else {
			b.AddEdge(g.IDOf(src), g.IDOf(dst))
		}
	})
	return b.buildRef(), nil
}
