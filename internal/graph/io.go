package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a plain text edge-list format:
//
//	# directed=<bool> weighted=<bool>
//	<src> <dst> [<weight>]
//
// one edge per line using external vertex identifiers. Isolated vertices
// are written as "v <id>" lines so a round trip preserves them.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed=%t weighted=%t\n", g.Directed(), g.Weighted()); err != nil {
		return err
	}
	deg := make([]int64, g.NumVertices())
	g.Edges(func(src, dst int32, wt float64) {
		deg[src]++
		deg[dst]++
	})
	var err error
	g.Edges(func(src, dst int32, wt float64) {
		if err != nil {
			return
		}
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", g.IDOf(src), g.IDOf(dst), wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", g.IDOf(src), g.IDOf(dst))
		}
	})
	if err != nil {
		return err
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if deg[v] == 0 {
			if _, err := fmt.Fprintf(bw, "v %d\n", g.IDOf(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header are ignored, as are blank lines, so
// ordinary SNAP-style edge lists also load (defaulting to directed,
// unweighted unless a third column is present).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	directed := true
	weighted := false
	headerSeen := false
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if !headerSeen && strings.Contains(text, "directed=") {
				headerSeen = true
				directed = strings.Contains(text, "directed=true")
				weighted = strings.Contains(text, "weighted=true")
			}
			continue
		}
		if b == nil {
			b = NewBuilder(directed)
			if weighted {
				b.SetWeighted()
			}
		}
		fields := strings.Fields(text)
		if fields[0] == "v" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad vertex line", line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddVertex(VertexID(id))
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: expected 2 or 3 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if len(fields) == 3 {
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddWeightedEdge(VertexID(src), VertexID(dst), wt)
		} else {
			b.AddEdge(VertexID(src), VertexID(dst))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		b = NewBuilder(directed)
	}
	return b.Build(), nil
}
