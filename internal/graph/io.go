package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Throughput renders an ingest rate as "X MB/s, YM edges/s" — the load
// report shared by grapecli, simviz, and the examples.
func Throughput(bytes, edges int64, secs float64) string {
	return fmt.Sprintf("%.1f MB/s, %.2fM edges/s",
		float64(bytes)/(1<<20)/secs, float64(edges)/secs/1e6)
}

// WriteEdgeList writes g in a plain text edge-list format:
//
//	# directed=<bool> weighted=<bool> n=<vertices> m=<edges>
//	<src> <dst> [<weight>]
//
// one edge per line using external vertex identifiers. Isolated vertices
// are written as "v <id>" lines so a round trip preserves them. The
// n=/m= header counts let ReadEdgeList size its buffers exactly once;
// readers of headerless SNAP-style files still work, they just grow.
//
// Lines are formatted with strconv.Append* into one reused buffer —
// no fmt, no per-line allocations.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 80)
	buf = append(buf, "# directed="...)
	buf = strconv.AppendBool(buf, g.Directed())
	buf = append(buf, " weighted="...)
	buf = strconv.AppendBool(buf, g.Weighted())
	buf = append(buf, " n="...)
	buf = strconv.AppendInt(buf, int64(g.NumVertices()), 10)
	buf = append(buf, " m="...)
	buf = strconv.AppendInt(buf, g.NumEdges(), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	var err error
	g.Edges(func(src, dst int32, wt float64) {
		if err != nil {
			return
		}
		buf = strconv.AppendInt(buf[:0], int64(g.IDOf(src)), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(g.IDOf(dst)), 10)
		if g.Weighted() {
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, wt, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		_, err = bw.Write(buf)
	})
	if err != nil {
		return err
	}
	// Isolated vertices: no incident edges in either direction. The CSR
	// offsets answer that in O(1) per vertex, no edge sweep needed.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.OutDegree(v) == 0 && g.InDegree(v) == 0 {
			buf = append(buf[:0], 'v', ' ')
			buf = strconv.AppendInt(buf, int64(g.IDOf(v)), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines
// starting with '#' other than the header are ignored, as are blank
// lines, so ordinary SNAP-style edge lists also load (defaulting to
// directed, unweighted unless a third column is present).
//
// The input is parsed by the chunked parallel loader (loader.go): the
// byte range splits into newline-aligned chunks parsed concurrently,
// external ids intern through hash-sharded maps, and a deterministic
// merge reproduces the exact graph the retained sequential reference
// reader builds — same vertex order, same edge order, same field
// separators (all of unicode.IsSpace, like strings.Fields), same
// errors.
// Inputs up to one stream window load in memory; larger inputs parse
// window by window with carry-over partial lines (stream.go), so peak
// resident bytes stay near the parsed representation instead of >= the
// input size.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeListStream(r)
}

// ReadEdgeListFile loads an edge-list file through the parallel parser,
// streaming it in fixed-size windows (see ReadEdgeList) so files larger
// than memory do not slurp.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readEdgeListStream(f)
}
