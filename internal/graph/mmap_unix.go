//go:build unix

package graph

import (
	"errors"
	"math"
	"os"
	"syscall"
)

// errNotMappable marks inputs the mmap front end cannot serve (empty
// files, non-regular files, sizes past the address space); callers
// fall back to the streaming reader.
var errNotMappable = errors.New("graph: file not mappable")

// mmapFile maps f read-only and returns the mapping plus an unmap
// function. A private mapping: the loader never writes the input, and
// MAP_PRIVATE keeps concurrent truncation of the file from corrupting
// other readers' view.
func mmapFile(f *os.File) ([]byte, func(), error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if !st.Mode().IsRegular() || size == 0 || uint64(size) > uint64(math.MaxInt) {
		return nil, nil, errNotMappable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
