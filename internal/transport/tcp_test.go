package transport

import (
	"sync"
	"testing"
	"time"

	"aap/internal/codec"
)

// collector accumulates delivered frames for assertions.
type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) onFrame(f Frame) {
	pl := append([]byte(nil), f.Payload...)
	c.mu.Lock()
	c.frames = append(c.frames, Frame{Kind: f.Kind, From: f.From, To: f.To, Seq: f.Seq, Payload: pl})
	c.mu.Unlock()
}

func (c *collector) snapshot() []Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Frame(nil), c.frames...)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func testConfig(onFrame func(Frame)) Config {
	return Config{
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   50 * time.Millisecond,
		DeadAfter:      150 * time.Millisecond,
		RetryLimit:     20,
		Retry:          Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		OnFrame:        onFrame,
	}
}

func TestPlaneDeliversBothWays(t *testing.T) {
	var ca, cb collector
	cfgA := testConfig(ca.onFrame)
	cfgA.ListenAddr = "127.0.0.1:0"
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(testConfig(cb.onFrame))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// B serves endpoint 9 and routes endpoints 0,1 to A.
	if err := b.Dial(9, a.Addr(), []int32{9}, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitRoute(9, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	const n = 50
	for i := 0; i < n; i++ {
		if err := b.Send(9, 0, KindData, codec.AppendUint32(nil, uint32(i))); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(0, 9, KindCtrl, codec.AppendUint32(nil, uint32(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "all frames", func() bool {
		return len(ca.snapshot()) == n && len(cb.snapshot()) == n
	})
	for i, f := range ca.snapshot() {
		if got := codec.NewReader(f.Payload).Uint32(); got != uint32(i) {
			t.Fatalf("A frame %d: payload %d, delivery out of order", i, got)
		}
		if f.Kind != KindData || f.From != 9 || f.To != 0 {
			t.Fatalf("A frame %d: bad header %+v", i, f)
		}
	}
	for i, f := range cb.snapshot() {
		if got := codec.NewReader(f.Payload).Uint32(); got != uint32(100+i) {
			t.Fatalf("B frame %d: payload %d, delivery out of order", i, got)
		}
	}
	st := a.Stats()
	if st.WireBytesIn == 0 || st.WireBytesOut == 0 {
		t.Fatalf("wire accounting empty: %+v", st)
	}
}

// TestPlaneReplayAfterReconnect severs the conn mid-stream and asserts
// every frame still arrives exactly once, in order: the dialer redials
// with backoff, the Hello/HelloAck exchange trades resume points, the
// unacked suffix replays, and the receiver's dedup drops what it
// already saw.
func TestPlaneReplayAfterReconnect(t *testing.T) {
	var ca collector
	cfgA := testConfig(ca.onFrame)
	cfgA.ListenAddr = "127.0.0.1:0"
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(testConfig(func(Frame) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(3, a.Addr(), []int32{3}, []int32{0}); err != nil {
		t.Fatal(err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		if err := b.Send(3, 0, KindData, codec.AppendUint32(nil, uint32(i))); err != nil {
			t.Fatal(err)
		}
		if i == 60 || i == 140 {
			// Sever the live conn; frames keep flowing into the queue
			// while the dialer re-establishes.
			b.mu.Lock()
			l := b.dialLinks[3]
			b.mu.Unlock()
			l.mu.Lock()
			c := l.conn
			l.mu.Unlock()
			if c != nil {
				c.Close()
			}
		}
	}
	waitFor(t, 5*time.Second, "all frames despite reconnects", func() bool {
		return len(ca.snapshot()) >= n
	})
	got := ca.snapshot()
	if len(got) != n {
		t.Fatalf("delivered %d frames, want exactly %d (dup leaked through dedup?)", len(got), n)
	}
	for i, f := range got {
		if v := codec.NewReader(f.Payload).Uint32(); v != uint32(i) {
			t.Fatalf("frame %d: payload %d — replay broke ordering", i, v)
		}
	}
}

// TestPlaneHeartbeatDeath kills the remote plane outright and asserts
// the survivor's detector — not any explicit signal — declares the peer
// dead and reports its served endpoints.
func TestPlaneHeartbeatDeath(t *testing.T) {
	deadCh := make(chan struct {
		link   int32
		served []int32
	}, 1)
	cfgA := testConfig(func(Frame) {})
	cfgA.ListenAddr = "127.0.0.1:0"
	cfgA.OnPeerDead = func(link int32, served []int32, err error) {
		deadCh <- struct {
			link   int32
			served []int32
		}{link, served}
	}
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(testConfig(func(Frame) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Dial(5, a.Addr(), []int32{5}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitRoute(5, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Let a few heartbeats flow so the detector has started.
	waitFor(t, 2*time.Second, "heartbeat traffic", func() bool {
		a.mu.Lock()
		l := a.acceptLinks[5]
		a.mu.Unlock()
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.det.started
	})
	b.Close() // peer vanishes; no re-Hello will come

	select {
	case d := <-deadCh:
		if d.link != 5 {
			t.Fatalf("dead link %d, want 5", d.link)
		}
		if len(d.served) != 1 || d.served[0] != 5 {
			t.Fatalf("dead served %v, want [5]", d.served)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("detector never declared the silent peer dead")
	}
	if err := a.Send(0, 5, KindData, nil); err == nil {
		t.Fatal("Send to a dead endpoint succeeded")
	}
	if a.Stats().HeartbeatTimeouts == 0 {
		t.Fatal("death without a recorded heartbeat timeout")
	}
}
