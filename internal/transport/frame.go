// Package transport is the pluggable message plane of the engine: the
// byte-level half of the "multi-process distributed plane" item — a
// length-prefixed TCP frame protocol with per-link sequence numbers,
// cumulative acks, replay on reconnect, heartbeat failure detection,
// and bounded jittered-backoff retry. The engine's in-proc channel path
// bypasses this package entirely (it is the fast path); the TCP plane
// codec-encodes message batches at this boundary so communication
// accounting measures real serialized bytes.
//
// The package is deliberately ignorant of the engine's message types:
// frames carry opaque payloads between int32 endpoint ids. Reliability
// guarantees (per PR 7's transport contract):
//
//   - frames between the same pair of processes are delivered in send
//     order (TCP FIFO per conn; replay preserves sequence order);
//   - a frame is delivered at most once (per-sender sequence numbers,
//     receiver drops already-seen sequences after a reconnect replay);
//   - a frame handed to Send is delivered eventually, or the link is
//     declared dead and OnPeerDead fires — nothing is silently lost.
package transport

import (
	"fmt"

	"aap/internal/codec"
)

// Kind discriminates frame roles on the wire.
type Kind uint8

const (
	// KindHello opens (or resumes) a link: payload is the link id, the
	// endpoint ids served by the sender, and the highest sequence number
	// the sender has delivered from its peer (the resume point).
	KindHello Kind = 1
	// KindHelloAck confirms a Hello with the acceptor's own resume state.
	KindHelloAck Kind = 2
	// KindData carries an engine message batch (codec-encoded VMsgs).
	KindData Kind = 3
	// KindCtrl carries a coordinator protocol token (round / sent /
	// consumed / active, snapshot announce & seal accounting) or its
	// reply.
	KindCtrl Kind = 4
	// KindRPC carries a remote-worker call (PEval / IncEval / snapshot /
	// restore / collect) or its response.
	KindRPC Kind = 5
	// KindHeartbeat is the liveness beacon; unsequenced, never replayed.
	KindHeartbeat Kind = 6
	// KindAck acknowledges delivery up to a cumulative sequence number;
	// unsequenced.
	KindAck Kind = 7
)

// Frame is one unit on the wire.
//
// Wire layout (little-endian), after a uint32 length prefix covering
// everything below:
//
//	uint8  kind
//	int32  from      sending endpoint id
//	int32  to        destination endpoint id
//	uint64 seq       per-link sequence number; 0 = unsequenced
//	...    payload   kind-specific bytes
type Frame struct {
	Kind    Kind
	From    int32
	To      int32
	Seq     uint64
	Payload []byte
}

// frameHeader is the fixed post-length header size: kind(1) + from(4) +
// to(4) + seq(8).
const frameHeader = 17

// DefaultMaxFrame bounds a single frame (length prefix excluded); a
// length prefix above the limit is rejected before any allocation — the
// frame-layer mirror of the codec's vecLen header-lie guard.
const DefaultMaxFrame = 64 << 20

// AppendFrame appends the wire encoding of f, length prefix included.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = codec.AppendUint32(dst, uint32(frameHeader+len(f.Payload)))
	dst = append(dst, byte(f.Kind))
	dst = codec.AppendInt32(dst, f.From)
	dst = codec.AppendInt32(dst, f.To)
	dst = codec.AppendUint64(dst, f.Seq)
	return append(dst, f.Payload...)
}

// EncodedSize returns the on-wire size of a frame with a payload of n
// bytes, length prefix included.
func EncodedSize(n int) int { return 4 + frameHeader + n }

// ParseFrame decodes one frame from the front of buf and returns it
// with the remaining bytes. The Payload aliases buf. A truncated,
// corrupt, or length-lying prefix returns an error without panicking
// and without allocating in proportion to the claimed length.
func ParseFrame(buf []byte, maxFrame int) (Frame, []byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(buf) < 4 {
		return Frame{}, buf, fmt.Errorf("transport: truncated frame: %d bytes, need 4-byte length prefix", len(buf))
	}
	r := codec.NewReader(buf)
	n := int(r.Uint32())
	if n < frameHeader {
		return Frame{}, buf, fmt.Errorf("transport: frame length %d below header size %d", n, frameHeader)
	}
	if n > maxFrame {
		return Frame{}, buf, fmt.Errorf("transport: frame length %d exceeds limit %d", n, maxFrame)
	}
	if len(buf)-4 < n {
		return Frame{}, buf, fmt.Errorf("transport: truncated frame: prefix claims %d bytes, %d available", n, len(buf)-4)
	}
	body := buf[4 : 4+n]
	f := Frame{Kind: Kind(body[0])}
	br := codec.NewReader(body[1:])
	f.From = br.Int32()
	f.To = br.Int32()
	f.Seq = br.Uint64()
	if err := br.Err(); err != nil {
		return Frame{}, buf, err
	}
	f.Payload = body[frameHeader:n]
	if f.Kind < KindHello || f.Kind > KindAck {
		return Frame{}, buf, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	return f, buf[4+n:], nil
}
