package transport

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2, Seed: 7}
	for attempt := 0; attempt < 12; attempt++ {
		if b.Delay(attempt) != b.Delay(attempt) {
			t.Fatalf("attempt %d: schedule is not a pure function", attempt)
		}
	}
}

func TestBackoffEnvelope(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2, Seed: 42}
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 16; attempt++ {
		// The jitter factor lives in [0.5, 1.0), so every delay sits in
		// [ceil/2, ceil) where ceil is the capped exponential term.
		ceil := 2 * time.Millisecond
		for i := 0; i < attempt && ceil < 500*time.Millisecond; i++ {
			ceil *= 2
		}
		if ceil > 500*time.Millisecond {
			ceil = 500 * time.Millisecond
		}
		d := b.Delay(attempt)
		if d < ceil/2 || d >= ceil {
			t.Fatalf("attempt %d: delay %v outside jitter envelope [%v, %v)", attempt, d, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("attempt %d: envelope shrank", attempt)
		}
		prevCeil = ceil
	}
}

func TestBackoffSeedsDecorrelate(t *testing.T) {
	// Two links retrying in lockstep must not share a schedule — that is
	// the whole point of per-link jitter.
	a := Backoff{Seed: 1}
	b := Backoff{Seed: 2}
	same := 0
	for attempt := 0; attempt < 10; attempt++ {
		if a.Delay(attempt) == b.Delay(attempt) {
			same++
		}
	}
	if same == 10 {
		t.Fatal("seeds 1 and 2 produced identical 10-step schedules")
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(0); d < time.Millisecond || d >= 2*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside [1ms, 2ms)", d)
	}
	if d := b.Delay(1000); d >= 500*time.Millisecond {
		t.Fatalf("zero-value delay uncapped: %v", d)
	}
	if b.Delay(-3) != b.Delay(0) {
		t.Fatal("negative attempt not clamped to 0")
	}
}
