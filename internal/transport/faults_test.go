package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"aap/internal/codec"
)

// TestPartitionHealNoDeath is the injector's core guarantee: a
// partition window longer than SuspectAfter but shorter than DeadAfter
// trips suspicion, blackholes traffic, and then heals with every frame
// delivered and OnPeerDead never fired — the transport-level half of
// the "healed partition means zero restarts" acceptance criterion.
func TestPartitionHealNoDeath(t *testing.T) {
	var ca, cb collector
	var deadA, deadB atomic.Int64
	cfgA := testConfig(ca.onFrame)
	cfgA.ListenAddr = "127.0.0.1:0"
	cfgA.DeadAfter = 2 * time.Second
	cfgA.OnPeerDead = func(int32, []int32, error) { deadA.Add(1) }
	cfgA.Faults = &LinkFaults{
		Seed:    1,
		Windows: []Window{{Link: 9, Dir: DirBoth, After: 60 * time.Millisecond, For: 150 * time.Millisecond}},
	}
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfgB := testConfig(cb.onFrame)
	cfgB.DeadAfter = 2 * time.Second
	cfgB.OnPeerDead = func(int32, []int32, error) { deadB.Add(1) }
	b, err := Listen(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(9, a.Addr(), []int32{9}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitRoute(9, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Send across the window: some frames before, some while it is
	// open. All of them must arrive, in order, once it heals.
	const n = 40
	for i := 0; i < n; i++ {
		if err := b.Send(9, 0, KindData, codec.AppendUint32(nil, uint32(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 5*time.Second, "all frames after heal", func() bool {
		return len(ca.snapshot()) == n
	})
	for i, f := range ca.snapshot() {
		if got := codec.NewReader(f.Payload).Uint32(); got != uint32(i) {
			t.Fatalf("frame %d: payload %d — partition reordered or dropped", i, got)
		}
	}
	if deadA.Load() != 0 || deadB.Load() != 0 {
		t.Fatalf("healed partition killed a peer: OnPeerDead A=%d B=%d", deadA.Load(), deadB.Load())
	}
	if st := a.Stats(); st.HeartbeatTimeouts == 0 {
		t.Fatalf("window never tripped suspicion: %+v", st)
	}
}

// TestPartitionOutlastingDeadAfterKills proves the injector can do the
// opposite too: a window past the death threshold must end in a real
// OnPeerDead verdict (this is what the supervisor reacts to).
func TestPartitionOutlastingDeadAfterKills(t *testing.T) {
	var ca, cb collector
	deadCh := make(chan int32, 1)
	cfgA := testConfig(ca.onFrame)
	cfgA.ListenAddr = "127.0.0.1:0"
	cfgA.OnPeerDead = func(id int32, _ []int32, _ error) {
		select {
		case deadCh <- id:
		default:
		}
	}
	cfgA.Faults = &LinkFaults{
		Windows: []Window{{Link: 9, Dir: DirBoth, After: 30 * time.Millisecond, For: 2 * time.Second}},
	}
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfgB := testConfig(cb.onFrame)
	cfgB.DeadAfter = 10 * time.Second // only A may reach the verdict
	cfgB.RetryLimit = 1
	b, err := Listen(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(9, a.Addr(), []int32{9}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-deadCh:
		if id != 9 {
			t.Fatalf("OnPeerDead for link %d, want 9", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partition past DeadAfter never produced OnPeerDead")
	}
}

// TestIncarnationRejoinAndFencing exercises the handshake fencing: a
// higher incarnation supersedes the old link and fires OnPeerRejoin; a
// stale incarnation is refused at the link layer.
func TestIncarnationRejoinAndFencing(t *testing.T) {
	var ca, c1, c2 collector
	var deadA atomic.Int64
	rejoin := make(chan uint64, 4)
	cfgA := testConfig(ca.onFrame)
	cfgA.ListenAddr = "127.0.0.1:0"
	cfgA.OnPeerDead = func(int32, []int32, error) { deadA.Add(1) }
	cfgA.OnPeerRejoin = func(id int32, served []int32, inc uint64) {
		if id == 9 {
			rejoin <- inc
		}
	}
	a, err := Listen(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Incarnation 1 joins and speaks.
	cfg1 := testConfig(c1.onFrame)
	cfg1.Incarnation = 1
	b1, err := Listen(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.Dial(9, a.Addr(), []int32{9}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := b1.Send(9, 0, KindData, codec.AppendUint32(nil, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "incarnation 1 frame", func() bool { return len(ca.snapshot()) == 1 })
	b1.Close() // the process "dies"

	// Incarnation 2 dials the same link id: A must retire the old link
	// (without a death report — the supersede is quiet) and announce the
	// rejoin.
	cfg2 := testConfig(c2.onFrame)
	cfg2.Incarnation = 2
	b2, err := Listen(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if err := b2.Dial(9, a.Addr(), []int32{9}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	select {
	case inc := <-rejoin:
		if inc != 2 {
			t.Fatalf("OnPeerRejoin incarnation %d, want 2", inc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("higher incarnation never produced OnPeerRejoin")
	}
	if err := b2.Send(9, 0, KindData, codec.AppendUint32(nil, 2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "incarnation 2 frame", func() bool { return len(ca.snapshot()) == 2 })

	// A zombie of incarnation 1 tries to come back: the link layer must
	// refuse its handshake outright.
	cfg3 := testConfig(func(Frame) {})
	cfg3.Incarnation = 1
	cfg3.RetryLimit = 2
	b3, err := Listen(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	if err := b3.Dial(9, a.Addr(), []int32{9}, []int32{0}); err == nil {
		t.Fatal("stale incarnation completed a handshake; fencing failed")
	}
	if got := len(ca.snapshot()); got != 2 {
		t.Fatalf("frames after fencing: got %d want 2", got)
	}
	if deadA.Load() != 0 {
		t.Fatalf("quiet supersede reported a death: OnPeerDead fired %d times", deadA.Load())
	}
}

// TestWriteDelayDeterminism pins the seeded shaping as a pure function
// of (seed, link, op index).
func TestWriteDelayDeterminism(t *testing.T) {
	f1 := &LinkFaults{Seed: 42, DropProb: 0.3, RTO: 10 * time.Millisecond, DelayProb: 0.5, DelayBy: time.Millisecond, DelayJitter: 4 * time.Millisecond}
	f2 := &LinkFaults{Seed: 42, DropProb: 0.3, RTO: 10 * time.Millisecond, DelayProb: 0.5, DelayBy: time.Millisecond, DelayJitter: 4 * time.Millisecond}
	f3 := &LinkFaults{Seed: 43, DropProb: 0.3, RTO: 10 * time.Millisecond, DelayProb: 0.5, DelayBy: time.Millisecond, DelayJitter: 4 * time.Millisecond}
	same, diff, hits := true, false, 0
	for seq := uint64(1); seq <= 200; seq++ {
		d1, d2, d3 := f1.writeDelay(3, seq), f2.writeDelay(3, seq), f3.writeDelay(3, seq)
		if d1 != d2 {
			same = false
		}
		if d1 != d3 {
			diff = true
		}
		if d1 > 0 {
			hits++
		}
		if dOther := f1.writeDelay(4, seq); dOther != d1 {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical LinkFaults produced different delays")
	}
	if !diff {
		t.Fatal("seed/link never changed a verdict; the draws are not keyed")
	}
	if hits < 40 || hits > 180 {
		t.Fatalf("delay hit rate %d/200 implausible for DropProb 0.3 + DelayProb 0.5", hits)
	}
}
