package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/codec"
)

// Config configures a Plane.
type Config struct {
	// ListenAddr is the TCP address to accept peers on; "" makes a
	// dial-only plane (a remote worker host). Use "127.0.0.1:0" for an
	// ephemeral loopback port.
	ListenAddr string
	// MaxFrame bounds one frame; DefaultMaxFrame when zero.
	MaxFrame int
	// HeartbeatEvery is the per-link beacon period (default 25ms); it
	// also paces the failure monitor and ack piggybacking.
	HeartbeatEvery time.Duration
	// SuspectAfter / DeadAfter are the detector's absolute silence
	// floors (defaults 8× and 24× HeartbeatEvery).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// RetryLimit bounds reconnect attempts per outage on the dialing
	// side of a link (default 8); Retry shapes their backoff schedule.
	RetryLimit int
	Retry      Backoff
	// OnFrame receives every delivered Data/Ctrl/RPC frame, in per-link
	// send order, each frame at most once. It runs on a reader
	// goroutine and MUST NOT call Plane.Send synchronously (hand off to
	// a queue instead): a reader blocked on a full send buffer stops
	// draining its conn, and two such readers deadlock the loop.
	OnFrame func(Frame)
	// OnPeerDead fires once when a link is declared dead: heartbeat
	// silence past DeadAfter, or reconnect attempts exhausted. served
	// lists the endpoint ids the dead peer was serving.
	OnPeerDead func(linkID int32, served []int32, err error)
	// Incarnation stamps every Hello this plane sends (default 1). A
	// respawned process dials in with a higher incarnation; the acceptor
	// fences anything lower (see admit), so frames and acks from a dead
	// incarnation can never leak into the run its replacement joined.
	Incarnation uint64
	// OnPeerRejoin fires after an inbound Hello with a HIGHER
	// incarnation supersedes an existing link: the respawned peer has
	// completed its handshake and its endpoints are routable again. Like
	// OnFrame it runs on a transport goroutine and must not call send
	// paths synchronously.
	OnPeerRejoin func(linkID int32, served []int32, incarnation uint64)
	// Faults, when non-nil, wraps every conn in the deterministic
	// link-fault injector (seeded partition windows, delay, loss-as-RTO
	// stalls). See LinkFaults.
	Faults *LinkFaults
}

func (c Config) withDefaults() Config {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 8 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 24 * c.HeartbeatEvery
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 8
	}
	if c.Incarnation == 0 {
		c.Incarnation = 1
	}
	return c
}

// Stats is the plane's cumulative wire accounting.
type Stats struct {
	WireBytesOut      int64 // frame bytes written, headers included
	WireBytesIn       int64 // frame bytes read, headers included
	Retries           int64 // reconnect attempts after a link outage
	HeartbeatTimeouts int64 // detector Alive→Suspect transitions
}

// Plane is one process's attachment to the TCP message plane: a
// listener (optional), a set of links to peers, and a routing table
// from endpoint id to link. Frames sent to an endpoint id are written
// to its link with a per-link sequence number; the receiving plane
// deduplicates and dispatches them to OnFrame in order.
type Plane struct {
	cfg   Config
	ln    net.Listener
	start time.Time // fault-injection windows are offsets from here

	mu          sync.Mutex
	cond        *sync.Cond // broadcast on route-table changes
	dialLinks   map[int32]*link
	acceptLinks map[int32]*link
	routes      map[int32]*link
	closed      bool
	// tombTimeouts preserves the detector Timeouts of links superseded
	// by a higher incarnation, so Stats stays cumulative across rejoins.
	tombTimeouts int64

	done chan struct{}
	wg   sync.WaitGroup

	wireOut atomic.Int64
	wireIn  atomic.Int64
	retries atomic.Int64
}

// link is one reliable duplex stream to a peer. The sequenced outbound
// queue `out` holds every frame not yet cumulatively acked: frames
// [0, nextSend) are written-but-unacked (replayed after a reconnect),
// [nextSend, len) are pending. Acks prune the prefix.
type link struct {
	p        *Plane
	id       int32
	inc      uint64  // peer incarnation (accept side) / ours (dial side)
	dialAddr string  // non-empty on the side that dials (and re-dials)
	served   []int32 // endpoint ids the peer serves (routes to this link)
	serve    []int32 // endpoint ids this side serves (re-announced on Hello)

	mu         sync.Mutex
	conn       net.Conn
	connGen    uint64
	out        []Frame
	nextSend   int
	seq        uint64 // last sequence number assigned
	baseSeq    uint64 // seq of out[0] minus 1 (acked prefix dropped)
	lastRecv   uint64 // inbound dedup high-water mark
	unacked    int    // inbound frames since the last ack we sent
	hbPending  bool
	ackPending bool
	det        *Detector
	dead       bool
	deadErr    error
	redialing  bool

	notify chan struct{}
	wbuf   []byte // writer's encode scratch
}

// Listen creates a plane. With a ListenAddr it accepts peers
// immediately; links are added with Dial (outbound) or by inbound
// Hello handshakes.
func Listen(cfg Config) (*Plane, error) {
	cfg = cfg.withDefaults()
	if cfg.OnFrame == nil {
		return nil, fmt.Errorf("transport: Config.OnFrame is required")
	}
	p := &Plane{
		cfg:         cfg,
		start:       time.Now(),
		dialLinks:   make(map[int32]*link),
		acceptLinks: make(map[int32]*link),
		routes:      make(map[int32]*link),
		done:        make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, err
		}
		p.ln = ln
		p.wg.Add(1)
		go p.acceptLoop()
	}
	return p, nil
}

// Addr returns the listen address, "" for a dial-only plane.
func (p *Plane) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stats returns the cumulative wire accounting across all links.
func (p *Plane) Stats() Stats {
	s := Stats{
		WireBytesOut: p.wireOut.Load(),
		WireBytesIn:  p.wireIn.Load(),
		Retries:      p.retries.Load(),
	}
	p.mu.Lock()
	s.HeartbeatTimeouts += p.tombTimeouts
	for _, l := range p.dialLinks {
		l.mu.Lock()
		s.HeartbeatTimeouts += l.det.Timeouts()
		l.mu.Unlock()
	}
	for _, l := range p.acceptLinks {
		l.mu.Lock()
		s.HeartbeatTimeouts += l.det.Timeouts()
		l.mu.Unlock()
	}
	p.mu.Unlock()
	return s
}

// Dial opens link id to addr. serve lists the endpoint ids THIS side
// hosts over the link (the peer routes them back to us); route lists
// the peer's endpoint ids (registered into our routing table). The
// initial connect runs the same bounded-backoff schedule reconnects
// use, so a worker process can dial a coordinator that is still
// binding its listener.
func (p *Plane) Dial(id int32, addr string, serve, route []int32) error {
	l := &link{
		p:        p,
		id:       id,
		inc:      p.cfg.Incarnation,
		dialAddr: addr,
		serve:    serve,
		det:      NewDetector(p.cfg.SuspectAfter, p.cfg.DeadAfter),
		notify:   make(chan struct{}, 1),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("transport: plane closed")
	}
	if _, ok := p.dialLinks[id]; ok {
		p.mu.Unlock()
		return fmt.Errorf("transport: link %d already dialed", id)
	}
	p.dialLinks[id] = l
	p.mu.Unlock()

	conn, br, lastRecv, err := l.dialAndShake(serve)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.attachLocked(conn, br, lastRecv)
	l.mu.Unlock()

	p.mu.Lock()
	for _, r := range route {
		p.routes[r] = l
	}
	p.cond.Broadcast()
	p.mu.Unlock()

	p.wg.Add(2)
	go l.writer()
	go l.ticker()
	return nil
}

// dialAndShake runs the bounded connect/handshake schedule and returns
// the peer's resume point (the highest seq it has delivered from us)
// plus the handshake's buffered reader, which may already hold frames
// the peer pipelined behind its HelloAck.
func (l *link) dialAndShake(serve []int32) (net.Conn, *bufio.Reader, uint64, error) {
	bo := l.p.cfg.Retry
	bo.Seed ^= splitmix64(uint64(l.id) + 1)
	var lastErr error
	for attempt := 0; attempt < l.p.cfg.RetryLimit; attempt++ {
		if attempt > 0 {
			l.p.retries.Add(1)
			select {
			case <-time.After(bo.Delay(attempt - 1)):
			case <-l.p.done:
				return nil, nil, 0, fmt.Errorf("transport: plane closed during dial")
			}
		}
		conn, err := net.DialTimeout("tcp", l.dialAddr, time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if l.p.cfg.Faults != nil {
			conn = l.p.cfg.Faults.wrap(conn, l.id, l.p.start, l.p.done)
		}
		br, resume, err := l.shake(conn, serve)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		return conn, br, resume, nil
	}
	return nil, nil, 0, fmt.Errorf("transport: link %d to %s failed after %d attempts: %w",
		l.id, l.dialAddr, l.p.cfg.RetryLimit, lastErr)
}

// shake performs the dialer half of the handshake on a fresh conn:
// Hello{link, our inbound high-water, our incarnation, served ids} out,
// HelloAck{link, peer's inbound high-water, incarnation echo} back. The
// incarnation fences process generations: a respawned host dials with a
// higher one and the acceptor retires the dead generation's link (see
// admit). The returned reader MUST be handed
// to the conn's frame reader: the peer starts writing frames the
// instant it sends the HelloAck, so the buffered read that captured the
// ack may already hold the first of them — constructing a fresh buffer
// on the conn would silently drop those bytes (and with them a seq the
// cumulative-ack protocol would then confirm without ever delivering).
func (l *link) shake(conn net.Conn, serve []int32) (*bufio.Reader, uint64, error) {
	if tc, ok := unwrapConn(conn).(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l.mu.Lock()
	hello := codec.AppendInt32(nil, l.id)
	hello = codec.AppendUint64(hello, l.lastRecv)
	hello = codec.AppendUint64(hello, l.inc)
	hello = codec.AppendInt32s(hello, serve)
	l.mu.Unlock()
	buf := AppendFrame(nil, Frame{Kind: KindHello, Payload: hello})
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(buf); err != nil {
		return nil, 0, err
	}
	l.p.wireOut.Add(int64(len(buf)))
	br := bufio.NewReaderSize(conn, 1<<16)
	f, err := readFrame(br, l.p.cfg.MaxFrame, &l.p.wireIn)
	if err != nil {
		return nil, 0, err
	}
	if f.Kind != KindHelloAck {
		return nil, 0, fmt.Errorf("transport: link %d: want HelloAck, got kind %d", l.id, f.Kind)
	}
	r := codec.NewReader(f.Payload)
	if got := r.Int32(); got != l.id {
		return nil, 0, fmt.Errorf("transport: link %d: HelloAck for link %d", l.id, got)
	}
	resume := r.Uint64()
	inc := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if inc != l.inc {
		return nil, 0, fmt.Errorf("transport: link %d: HelloAck for incarnation %d, we are %d", l.id, inc, l.inc)
	}
	conn.SetDeadline(time.Time{})
	return br, resume, nil
}

// attachLocked installs a live conn: prunes frames the peer confirmed,
// rewinds nextSend so everything unconfirmed replays in order, rearms
// the detector, and wakes the writer. br is the handshake's buffered
// reader (see shake for why it must carry over). Caller holds l.mu.
func (l *link) attachLocked(conn net.Conn, br *bufio.Reader, peerSeen uint64) {
	l.pruneLocked(peerSeen)
	l.nextSend = 0 // replay everything the peer has not confirmed
	l.conn = conn
	l.connGen++
	l.det.Reset(time.Now())
	gen := l.connGen
	l.p.wg.Add(1)
	go l.reader(conn, br, gen)
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// pruneLocked drops the acked prefix of the outbound queue.
func (l *link) pruneLocked(upto uint64) {
	k := 0
	for k < len(l.out) && l.out[k].Seq <= upto {
		k++
	}
	if k > 0 {
		rest := len(l.out) - k
		copy(l.out, l.out[k:])
		for i := rest; i < len(l.out); i++ {
			l.out[i] = Frame{}
		}
		l.out = l.out[:rest]
		l.nextSend -= k
		if l.nextSend < 0 {
			l.nextSend = 0
		}
		l.baseSeq = upto
	}
}

// Send enqueues a sequenced frame for endpoint `to` and returns
// immediately; the link's writer goroutine drains the queue. An error
// means the frame will never be delivered: no route is registered for
// `to`, or its link is dead (OnPeerDead has fired or is firing).
func (p *Plane) Send(from, to int32, kind Kind, payload []byte) error {
	p.mu.Lock()
	l := p.routes[to]
	p.mu.Unlock()
	if l == nil {
		return fmt.Errorf("transport: no route to endpoint %d", to)
	}
	l.mu.Lock()
	if l.dead {
		err := l.deadErr
		l.mu.Unlock()
		return fmt.Errorf("transport: link %d dead: %w", l.id, err)
	}
	l.seq++
	l.out = append(l.out, Frame{Kind: kind, From: from, To: to, Seq: l.seq, Payload: payload})
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return nil
}

// WaitRoute blocks until a route for endpoint id exists (a peer serving
// it completed its handshake) or the timeout expires.
func (p *Plane) WaitRoute(id int32, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// cond has no timed wait; poll with short sleeps — WaitRoute runs
	// once per remote worker at startup, never on the hot path.
	for {
		p.mu.Lock()
		_, ok := p.routes[id]
		closed := p.closed
		p.mu.Unlock()
		if ok {
			return nil
		}
		if closed {
			return fmt.Errorf("transport: plane closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: no peer serving endpoint %d after %v", id, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close tears the plane down: listener, conns, goroutines. It does not
// fire OnPeerDead.
func (p *Plane) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	links := make([]*link, 0, len(p.dialLinks)+len(p.acceptLinks))
	for _, l := range p.dialLinks {
		links = append(links, l)
	}
	for _, l := range p.acceptLinks {
		links = append(links, l)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.ln != nil {
		p.ln.Close()
	}
	for _, l := range links {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
	return nil
}

// acceptLoop admits inbound peers: every conn must open with a Hello
// naming its link id; a re-Hello for a known link is a reconnect and
// resumes its sequence state.
func (p *Plane) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			// Transient accept errors (EMFILE etc.): keep serving.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		p.wg.Add(1)
		go p.admit(conn)
	}
}

// admit runs the acceptor half of the handshake. The Hello's
// incarnation decides the link's fate: equal incarnations are ordinary
// reconnects resuming sequence state; a HIGHER incarnation is a
// respawned peer — the old generation's link is retired wholesale
// (quietly: its death was already reported, and resurrecting its queue
// would replay frames addressed to a dead process) and a fresh link
// with fresh sequence space takes its place, announced via
// OnPeerRejoin; a LOWER incarnation (or a dead same-incarnation peer)
// is fenced off — a partitioned zombie must not slip frames into the
// run its replacement has joined.
func (p *Plane) admit(conn net.Conn) {
	defer p.wg.Done()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var fc *faultConn
	if p.cfg.Faults != nil {
		fc = p.cfg.Faults.wrap(conn, faultLinkUnknown, p.start, p.done)
		conn = fc
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	// br carries over to the attached reader: the dialer is free to
	// pipeline frames behind its Hello, and the read that captured the
	// Hello may have buffered them already (see shake).
	br := bufio.NewReaderSize(conn, 1<<16)
	f, err := readFrame(br, p.cfg.MaxFrame, &p.wireIn)
	if err != nil || f.Kind != KindHello {
		conn.Close()
		return
	}
	r := codec.NewReader(f.Payload)
	id := r.Int32()
	peerSeen := r.Uint64()
	inc := r.Uint64()
	served := r.Int32s()
	if r.Err() != nil {
		conn.Close()
		return
	}
	if fc != nil {
		fc.setLink(id)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	l := p.acceptLinks[id]
	fresh := false
	rejoined := false
	if l != nil {
		l.mu.Lock() // p.mu -> l.mu matches Stats' lock order
		switch {
		case inc < l.inc || (inc == l.inc && l.dead):
			// Stale generation, or a late reconnect from a peer already
			// declared dead: fenced out of the run.
			l.mu.Unlock()
			p.mu.Unlock()
			conn.Close()
			return
		case inc > l.inc:
			p.tombTimeouts += l.det.Timeouts()
			l.dead = true
			l.deadErr = fmt.Errorf("transport: link %d superseded by incarnation %d", id, inc)
			if l.conn != nil {
				l.conn.Close()
				l.conn = nil
			}
			l.out = nil
			l.nextSend = 0
			l.mu.Unlock()
			select {
			case l.notify <- struct{}{}:
			default:
			}
			l = nil
			rejoined = true
		default:
			l.mu.Unlock()
		}
	}
	if l == nil {
		fresh = true
		l = &link{
			p:      p,
			id:     id,
			inc:    inc,
			served: served,
			det:    NewDetector(p.cfg.SuspectAfter, p.cfg.DeadAfter),
			notify: make(chan struct{}, 1),
		}
		p.acceptLinks[id] = l
	}
	for _, s := range served {
		p.routes[s] = l
	}
	p.cond.Broadcast()
	p.mu.Unlock()

	l.mu.Lock()
	if l.dead {
		// The peer was declared dead between the map update and here; a
		// late reconnect cannot rejoin this run.
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close() // replaced by the reconnect
	}
	ack := codec.AppendInt32(nil, id)
	ack = codec.AppendUint64(ack, l.lastRecv)
	ack = codec.AppendUint64(ack, inc)
	buf := AppendFrame(nil, Frame{Kind: KindHelloAck, Payload: ack})
	if _, err := conn.Write(buf); err != nil {
		l.mu.Unlock()
		conn.Close()
		return
	}
	p.wireOut.Add(int64(len(buf)))
	conn.SetDeadline(time.Time{})
	l.attachLocked(conn, br, peerSeen)
	l.mu.Unlock()

	if fresh {
		p.wg.Add(2)
		go l.writer()
		go l.ticker()
	}
	if rejoined && p.cfg.OnPeerRejoin != nil && !p.isClosed() {
		p.cfg.OnPeerRejoin(id, served, inc)
	}
}

// writer drains the link's work: pending acks and heartbeats first
// (unsequenced, never replayed), then the sequenced queue in order.
// Frames are encoded under the link lock and written outside it, so a
// conn blocked on TCP backpressure never blocks Send.
func (l *link) writer() {
	defer l.p.wg.Done()
	for {
		select {
		case <-l.notify:
		case <-l.p.done:
			return
		}
		for {
			l.mu.Lock()
			if l.dead {
				l.mu.Unlock()
				return
			}
			conn := l.conn
			gen := l.connGen
			if conn == nil {
				l.mu.Unlock()
				break
			}
			l.wbuf = l.wbuf[:0]
			if l.ackPending {
				l.ackPending = false
				l.unacked = 0
				pl := codec.AppendUint64(nil, l.lastRecv)
				l.wbuf = AppendFrame(l.wbuf, Frame{Kind: KindAck, Payload: pl})
			}
			if l.hbPending {
				l.hbPending = false
				l.wbuf = AppendFrame(l.wbuf, Frame{Kind: KindHeartbeat})
			}
			for l.nextSend < len(l.out) && len(l.wbuf) < 1<<16 {
				l.wbuf = AppendFrame(l.wbuf, l.out[l.nextSend])
				l.nextSend++
			}
			buf := l.wbuf
			l.mu.Unlock()
			if len(buf) == 0 {
				break
			}
			if _, err := conn.Write(buf); err != nil {
				l.connBroken(gen, err)
				break
			}
			l.p.wireOut.Add(int64(len(buf)))
		}
	}
}

// ticker paces heartbeats (with a piggybacked cumulative ack) and runs
// the failure monitor.
func (l *link) ticker() {
	defer l.p.wg.Done()
	t := time.NewTicker(l.p.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-l.p.done:
			return
		}
		l.mu.Lock()
		if l.dead {
			l.mu.Unlock()
			return
		}
		l.hbPending = true
		if l.lastRecv > 0 {
			l.ackPending = true
		}
		st := l.det.Check(time.Now())
		l.mu.Unlock()
		select {
		case l.notify <- struct{}{}:
		default:
		}
		if st == Dead {
			l.declareDead(fmt.Errorf("transport: link %d: no traffic for %v (heartbeat timeout)",
				l.id, l.p.cfg.DeadAfter))
			return
		}
	}
}

// reader drains one conn: observes the detector, deduplicates sequenced
// frames, prunes on acks, and dispatches payloads to OnFrame in order.
func (l *link) reader(conn net.Conn, br *bufio.Reader, gen uint64) {
	defer l.p.wg.Done()
	for {
		f, err := readFrame(br, l.p.cfg.MaxFrame, &l.p.wireIn)
		if err != nil {
			l.connBroken(gen, err)
			return
		}
		l.mu.Lock()
		if l.connGen != gen {
			l.mu.Unlock()
			return // a reconnect superseded this conn
		}
		l.det.Observe(time.Now())
		deliver := true
		if f.Seq != 0 {
			if f.Seq <= l.lastRecv {
				deliver = false // duplicate from a replay: idempotent drop
			} else {
				l.lastRecv = f.Seq
				l.unacked++
				if l.unacked >= 32 {
					l.ackPending = true
					select {
					case l.notify <- struct{}{}:
					default:
					}
				}
			}
		}
		var ackTo uint64
		if f.Kind == KindAck {
			r := codec.NewReader(f.Payload)
			ackTo = r.Uint64()
			if r.Err() == nil {
				l.pruneLocked(ackTo)
			}
			deliver = false
		}
		l.mu.Unlock()
		switch f.Kind {
		case KindHeartbeat, KindAck, KindHello, KindHelloAck:
			// Link-layer traffic: the Observe above was its whole job.
		default:
			if deliver {
				l.p.cfg.OnFrame(f)
			}
		}
	}
}

// connBroken handles a conn failure observed by the reader or writer of
// generation gen: the dialing side starts the bounded-backoff redial
// loop; the accepting side detaches and waits for a re-Hello, bounded
// by the detector's death clock.
func (l *link) connBroken(gen uint64, err error) {
	select {
	case <-l.p.done:
		return
	default:
	}
	l.mu.Lock()
	if l.connGen != gen || l.dead {
		l.mu.Unlock()
		return
	}
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	redial := l.dialAddr != "" && !l.redialing
	if redial {
		l.redialing = true
	}
	l.mu.Unlock()
	if !redial {
		return
	}
	l.p.wg.Add(1)
	go func() {
		defer l.p.wg.Done()
		conn, br, resume, derr := l.dialAndShake(l.serve)
		if derr != nil {
			l.declareDead(fmt.Errorf("transport: link %d reconnect failed: %w", l.id, derr))
			return
		}
		l.mu.Lock()
		l.redialing = false
		if l.dead || l.p.isClosed() {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.attachLocked(conn, br, resume)
		l.mu.Unlock()
	}()
}

func (p *Plane) isClosed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// declareDead marks the link dead, drops its queue, and reports the
// peer exactly once.
func (l *link) declareDead(err error) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	l.dead = true
	l.deadErr = err
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.out = nil
	l.nextSend = 0
	served := l.served
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	if l.p.cfg.OnPeerDead != nil && !l.p.isClosed() {
		l.p.cfg.OnPeerDead(l.id, served, err)
	}
}

// readFrame reads one length-prefixed frame from br, charging wireIn.
func readFrame(br *bufio.Reader, maxFrame int, wireIn *atomic.Int64) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if n < frameHeader {
		return Frame{}, fmt.Errorf("transport: frame length %d below header size %d", n, frameHeader)
	}
	if n > maxFrame {
		return Frame{}, fmt.Errorf("transport: frame length %d exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return Frame{}, err
	}
	wireIn.Add(int64(4 + n))
	f := Frame{Kind: Kind(body[0])}
	r := codec.NewReader(body[1:])
	f.From = r.Int32()
	f.To = r.Int32()
	f.Seq = r.Uint64()
	if err := r.Err(); err != nil {
		return Frame{}, err
	}
	if f.Kind < KindHello || f.Kind > KindAck {
		return Frame{}, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	f.Payload = body[frameHeader:]
	return f, nil
}
