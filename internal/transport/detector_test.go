package transport

import (
	"testing"
	"time"
)

// All detector tests drive the state machine with an explicit fake
// clock — no sleeps, deterministic transitions.

func TestDetectorLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	d := NewDetector(100*time.Millisecond, 300*time.Millisecond)

	// Never observed: silence means nothing, the peer has not joined yet.
	if got := d.Check(clock.Add(time.Hour)); got != Alive {
		t.Fatalf("unstarted detector: got %v want alive", got)
	}

	d.Observe(clock)
	if got := d.Check(clock.Add(50 * time.Millisecond)); got != Alive {
		t.Fatalf("within floor: got %v want alive", got)
	}
	if got := d.Check(clock.Add(150 * time.Millisecond)); got != Suspect {
		t.Fatalf("past suspect floor: got %v want suspect", got)
	}
	if d.Timeouts() != 1 {
		t.Fatalf("timeouts after first suspect: got %d want 1", d.Timeouts())
	}
	// Staying suspect is not a second timeout.
	if got := d.Check(clock.Add(200 * time.Millisecond)); got != Suspect {
		t.Fatalf("still suspect: got %v", got)
	}
	if d.Timeouts() != 1 {
		t.Fatalf("timeouts while suspect: got %d want 1", d.Timeouts())
	}

	// Traffic revives a suspect.
	d.Observe(clock.Add(250 * time.Millisecond))
	if got := d.State(); got != Alive {
		t.Fatalf("after revive: got %v want alive", got)
	}

	// Full silence to death. The revive gap (250ms) fed the EWMA, so the
	// effective deadline is max(DeadAfter, 12 × mean gap) = 3s.
	if got := d.Check(clock.Add(250*time.Millisecond + 4*time.Second)); got != Dead {
		t.Fatalf("past dead deadline: got %v want dead", got)
	}
	// Dead is terminal: late traffic must not un-kill a reported peer.
	d.Observe(clock.Add(time.Hour))
	if got := d.State(); got != Dead {
		t.Fatalf("observe after dead: got %v want dead", got)
	}
	// Reset (reconnect handshake) rearms it.
	d.Reset(clock.Add(2 * time.Hour))
	if got := d.State(); got != Alive {
		t.Fatalf("after reset: got %v want alive", got)
	}
}

func TestDetectorPhiStretchesSlowLinks(t *testing.T) {
	// Heartbeats every 100ms on a link with a 50ms suspect floor: the
	// phi term (6 × mean gap = 600ms) must dominate the absolute floor,
	// so the natural cadence never trips suspicion.
	clock := time.Unix(0, 0)
	d := NewDetector(50*time.Millisecond, 150*time.Millisecond)
	for i := 0; i < 20; i++ {
		clock = clock.Add(100 * time.Millisecond)
		d.Observe(clock)
	}
	if got := d.Check(clock.Add(400 * time.Millisecond)); got != Alive {
		t.Fatalf("silence under phi deadline on slow link: got %v want alive", got)
	}
	if got := d.Check(clock.Add(700 * time.Millisecond)); got != Suspect {
		t.Fatalf("silence past phi deadline: got %v want suspect", got)
	}
	// Death needs 12 × mean gap = 1.2s here.
	if got := d.Check(clock.Add(1100 * time.Millisecond)); got != Suspect {
		t.Fatalf("silence under phi death deadline: got %v want suspect", got)
	}
	if got := d.Check(clock.Add(1300 * time.Millisecond)); got != Dead {
		t.Fatalf("silence past phi death deadline: got %v want dead", got)
	}
}

func TestDetectorHealBeforeDeadRecovers(t *testing.T) {
	// The zero-restart guarantee the partition injector leans on: a link
	// that goes Suspect but resumes heartbeats before the Dead threshold
	// must walk back to Alive — never reach Dead (the state that fires
	// OnPeerDead and, under supervision, burns a restart). Three
	// partition-shaped silences in a row must each heal cleanly and the
	// detector must count exactly one timeout per window.
	clock := time.Unix(0, 0)
	d := NewDetector(80*time.Millisecond, 240*time.Millisecond)
	const hb = 10 * time.Millisecond
	for i := 0; i < 10; i++ {
		clock = clock.Add(hb)
		d.Observe(clock)
	}
	for window := 1; window <= 3; window++ {
		// Silence long enough to trip suspicion, checked at the ticker's
		// cadence, but healed before DeadAfter.
		for off := hb; off <= 200*time.Millisecond; off += hb {
			if got := d.Check(clock.Add(off)); got == Dead {
				t.Fatalf("window %d: detector reached dead at %v silence (DeadAfter 240ms)", window, off)
			}
		}
		if got := d.State(); got != Suspect {
			t.Fatalf("window %d: after 200ms silence got %v want suspect", window, got)
		}
		// The partition heals: queued heartbeats burst through.
		clock = clock.Add(210 * time.Millisecond)
		d.Observe(clock)
		if got := d.State(); got != Alive {
			t.Fatalf("window %d: heal did not revive: got %v want alive", window, got)
		}
		if got := d.Timeouts(); got != int64(window) {
			t.Fatalf("window %d: timeouts got %d want %d", window, got, window)
		}
		// Re-establish the fast cadence so the next window's phi deadline
		// does not balloon from the 210ms heal gap.
		for i := 0; i < 10; i++ {
			clock = clock.Add(hb)
			d.Observe(clock)
		}
	}
}

func TestDetectorForwardOnlyCheck(t *testing.T) {
	// Check never moves backward: a detector that reached Suspect stays
	// suspect when evaluated at an earlier instant (out-of-order timer
	// fire), rather than flapping.
	clock := time.Unix(0, 0)
	d := NewDetector(100*time.Millisecond, time.Hour)
	d.Observe(clock)
	if got := d.Check(clock.Add(200 * time.Millisecond)); got != Suspect {
		t.Fatalf("got %v want suspect", got)
	}
	if got := d.Check(clock.Add(10 * time.Millisecond)); got != Suspect {
		t.Fatalf("earlier check flapped back: got %v want suspect", got)
	}
}
