package transport

import "time"

// Backoff computes the retry schedule for transient link failures:
// exponential growth from Base capped at Max, with deterministic
// full-range jitter drawn from splitmix64(Seed, attempt). The schedule
// is a pure function of (Backoff, attempt) — no shared random stream,
// no clock — so tests assert exact delays and concurrent links never
// contend on a generator. Jitter decorrelates reconnect storms: after a
// coordinator restart every link retries, and identical schedules would
// reconnect in lockstep.
type Backoff struct {
	Base   time.Duration // first delay; default 2ms
	Max    time.Duration // cap; default 500ms
	Factor float64       // growth per attempt; default 2
	Seed   uint64        // jitter stream identity (e.g. link id)
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// Delay returns the wait before retry `attempt` (0-based): the capped
// exponential term, scaled by a jitter factor in [0.5, 1.0] so the
// expected delay keeps growing while aligned retries spread out.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	h := splitmix64(b.Seed ^ uint64(attempt)*0x9E3779B97F4A7C15)
	jitter := 0.5 + 0.5*float64(h>>11)/(1<<53) // [0.5, 1.0)
	return time.Duration(d * jitter)
}

// splitmix64 is the standard 64-bit finalizer, the same generator the
// engine's fault injector uses for interleaving-independent verdicts.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
