package transport

import (
	"bytes"
	"testing"

	"aap/internal/codec"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindData, From: 2, To: 5, Seq: 17, Payload: []byte("batch bytes")},
		{Kind: KindHeartbeat},
		{Kind: KindCtrl, From: 0, To: 8, Seq: 1, Payload: nil},
		{Kind: KindAck, Payload: codec.AppendUint64(nil, 42)},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	rest := buf
	for i, want := range frames {
		got, r, err := ParseFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		rest = r
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To || got.Seq != want.Seq {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d payload: got %q want %q", i, got.Payload, want.Payload)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after parsing all frames", len(rest))
	}
}

func TestParseFrameRejects(t *testing.T) {
	good := AppendFrame(nil, Frame{Kind: KindData, From: 1, To: 2, Seq: 3, Payload: []byte("xyz")})
	cases := []struct {
		name string
		buf  []byte
		max  int
	}{
		{"empty", nil, 0},
		{"short prefix", good[:3], 0},
		{"truncated body", good[:len(good)-1], 0},
		{"length below header", codec.AppendUint32(nil, frameHeader-1), 0},
		{"length-lying oversize", codec.AppendUint32(nil, 1<<30), 0},
		{"over frame limit", good, 8},
		{"unknown kind", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}(), 0},
	}
	for _, c := range cases {
		if _, _, err := ParseFrame(c.buf, c.max); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

// FuzzFrameDecode asserts the decoder never panics and never trusts a
// lying length prefix: arbitrary bytes either parse into a frame whose
// payload fits the input, or error out.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, Frame{Kind: KindData, From: 1, To: 2, Seq: 9, Payload: []byte("seed")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindHeartbeat}))
	f.Add(codec.AppendUint32(nil, 0xFFFFFFFF))
	f.Add(codec.AppendUint32(nil, frameHeader))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := ParseFrame(data, 1<<16)
		if err != nil {
			return
		}
		if len(fr.Payload)+len(rest) > len(data) {
			t.Fatalf("decoded frame claims more bytes than the input holds: payload %d + rest %d > input %d",
				len(fr.Payload), len(rest), len(data))
		}
		if fr.Kind < KindHello || fr.Kind > KindAck {
			t.Fatalf("decoder accepted unknown kind %d", fr.Kind)
		}
		// A successfully parsed frame must survive re-encode → re-parse.
		re := AppendFrame(nil, fr)
		fr2, _, err := ParseFrame(re, 1<<16)
		if err != nil {
			t.Fatalf("re-parse of re-encoded frame failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.From != fr.From || fr2.To != fr.To || fr2.Seq != fr.Seq ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-encode round trip mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
