package transport

import (
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// Link-fault injection: a deterministic, netem-style network-pathology
// model for the TCP plane, composing with the engine's delivery faults
// (which act above the plane, on whole batches) by acting below them,
// on the conns themselves.
//
// Because the link contract is a reliable ordered stream (per-link
// FIFO, at-most-once — see the package doc), packet-level pathologies
// surface as latency, not loss:
//
//   - a partition Window blackholes the conn by blocking its reads and
//     writes until the window closes — which is exactly what lets a
//     healed partition resume with zero frame loss: the detector walks
//     Alive→Suspect and back with no restart;
//   - a "dropped" packet (DropProb) stalls the write by one RTO, the
//     retransmission delay the real network would charge;
//   - reordering across links emerges from independent per-link delay
//     draws (DelayProb); within one link FIFO order is contractual, so
//     true intra-link reorder is deliberately not modeled.
//
// All verdicts are pure functions of (Seed, link, direction, op index)
// via splitmix64, and windows are fixed offsets from the plane's start,
// so a schedule replays identically across runs. The one approximation:
// a read already blocked in the kernel when a window opens can still
// return bytes that arrived before it — gating happens at call
// boundaries, not mid-syscall.
type LinkFaults struct {
	// Seed drives every probabilistic verdict.
	Seed uint64
	// Windows are the partition schedule, checked on every read/write.
	Windows []Window
	// DropProb stalls that fraction of writes by RTO (default 40ms),
	// modeling packet loss under a reliable stream.
	DropProb float64
	RTO      time.Duration
	// DelayProb delays that fraction of writes by DelayBy plus a seeded
	// uniform draw from [0, DelayJitter).
	DelayProb   float64
	DelayBy     time.Duration
	DelayJitter time.Duration
}

// Dir selects which conn directions a partition window blackholes,
// making asymmetric partitions (peer hears us, we don't hear it)
// expressible.
type Dir uint8

const (
	DirBoth Dir = iota
	DirOut      // writes blocked, reads flow
	DirIn       // reads blocked, writes flow
)

// Window is one partition interval on one link (or every link), as an
// offset from the plane's start.
type Window struct {
	Link  int32 // link id; FaultAllLinks matches every link
	Dir   Dir
	After time.Duration
	For   time.Duration
}

// FaultAllLinks makes a Window apply to every link, including conns
// whose link id is not yet known (the interval between accept and the
// Hello parse).
const FaultAllLinks int32 = -1

// faultLinkUnknown marks a conn admitted but not yet past its Hello;
// only FaultAllLinks windows apply to it.
const faultLinkUnknown int32 = -2

// PartitionSchedule builds n equally spaced partition windows on one
// link: window k covers [start + k*every, start + k*every + dur).
// Keeping dur above the detector's SuspectAfter but below DeadAfter
// makes the schedule a pure false-positive probe: every window must end
// Suspect→Alive with zero restarts.
func PartitionSchedule(link int32, n int, start, every, dur time.Duration) []Window {
	ws := make([]Window, 0, n)
	for k := 0; k < n; k++ {
		ws = append(ws, Window{Link: link, Dir: DirBoth, After: start + time.Duration(k)*every, For: dur})
	}
	return ws
}

// errFaultClosed aborts an I/O call blocked in a partition window when
// the plane shuts down, so Close never waits out a schedule.
var errFaultClosed = errors.New("transport: plane closed during fault window")

// wrap returns conn gated by the fault schedule. id may be
// faultLinkUnknown until the handshake names the link (setLink).
func (f *LinkFaults) wrap(conn net.Conn, id int32, start time.Time, done <-chan struct{}) *faultConn {
	fc := &faultConn{Conn: conn, f: f, start: start, done: done}
	fc.link.Store(id)
	return fc
}

// unwrapConn recovers the underlying conn (for TCP socket options).
func unwrapConn(c net.Conn) net.Conn {
	if fc, ok := c.(*faultConn); ok {
		return fc.Conn
	}
	return c
}

// faultConn gates one conn's I/O through the schedule. Reads and writes
// that fall inside a matching partition window block until it closes
// (or the plane does); writes additionally pay the seeded loss/delay
// stalls. Deadlines still apply to the underlying I/O, so a handshake
// gated past its deadline fails and retries like any slow network.
type faultConn struct {
	net.Conn
	f     *LinkFaults
	link  atomic.Int32
	start time.Time
	done  <-chan struct{}
	wseq  atomic.Uint64
}

func (c *faultConn) setLink(id int32) { c.link.Store(id) }

func (c *faultConn) Write(b []byte) (int, error) {
	if err := c.gate(DirOut); err != nil {
		return 0, err
	}
	if d := c.f.writeDelay(c.link.Load(), c.wseq.Add(1)); d > 0 {
		if err := c.sleep(d); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Read(b []byte) (int, error) {
	if err := c.gate(DirIn); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

// gate blocks while any matching partition window is open in direction
// dir, re-checking in case windows overlap or abut.
func (c *faultConn) gate(dir Dir) error {
	for {
		wait := c.f.windowWait(c.link.Load(), dir, time.Since(c.start))
		if wait <= 0 {
			return nil
		}
		if err := c.sleep(wait); err != nil {
			return err
		}
	}
}

func (c *faultConn) sleep(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return errFaultClosed
	}
}

// windowWait returns how long a call on link/dir at offset `now` must
// block for the currently open windows, zero when none match.
func (f *LinkFaults) windowWait(link int32, dir Dir, now time.Duration) time.Duration {
	var wait time.Duration
	for _, w := range f.Windows {
		if w.Link != FaultAllLinks && w.Link != link {
			continue
		}
		if w.Dir != DirBoth && dir != DirBoth && w.Dir != dir {
			continue
		}
		if now >= w.After && now < w.After+w.For {
			if rem := w.After + w.For - now; rem > wait {
				wait = rem
			}
		}
	}
	return wait
}

// writeDelay is the seeded per-write stall: loss-as-RTO plus jittered
// delay, a pure function of (Seed, link, op index).
func (f *LinkFaults) writeDelay(link int32, seq uint64) time.Duration {
	if f.DropProb <= 0 && f.DelayProb <= 0 {
		return 0
	}
	var d time.Duration
	h := splitmix64(f.Seed ^ uint64(uint32(link))<<32 ^ seq*0x9E3779B97F4A7C15)
	if f.DropProb > 0 && unit(h) < f.DropProb {
		rto := f.RTO
		if rto <= 0 {
			rto = 40 * time.Millisecond
		}
		d += rto
	}
	h = splitmix64(h)
	if f.DelayProb > 0 && unit(h) < f.DelayProb {
		d += f.DelayBy + time.Duration(unit(splitmix64(h))*float64(f.DelayJitter))
	}
	return d
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
