package transport

import (
	"fmt"
	"time"
)

// State is the liveness verdict of a Detector for one peer.
type State uint8

const (
	// Alive: traffic is arriving within the expected interval.
	Alive State = iota
	// Suspect: the silence is abnormally long; the peer may be dead or
	// the link merely slow. The engine keeps running but the plane
	// escalates monitoring (the state is sticky until traffic resumes).
	Suspect
	// Dead: the silence exceeded the death threshold; the plane reports
	// the peer via OnPeerDead exactly once and the engine triggers
	// recovery. Dead is terminal until Reset.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Detector is the per-link failure suspicion state machine: a
// phi-accrual–style detector simplified to a scaled-interval rule.
// Every inbound frame (data, control, or heartbeat) is an Observe; a
// periodic Check compares the current silence against an adaptive
// expectation — an EWMA of past inter-arrival gaps — and against two
// hard floors:
//
//	suspect when silence > max(SuspectAfter, PhiSuspect × mean gap)
//	dead    when silence > max(DeadAfter,    PhiDead    × mean gap)
//
// The phi terms make the detector patient on links whose natural cadence
// is slow (long rounds, coarse heartbeats) without configuration; the
// absolute floors bound detection latency on fast links. All methods
// take explicit times, so the unit tests drive the machine with a fake
// clock and no real sleeps; the Detector is not goroutine-safe (the
// plane guards it with the link lock).
type Detector struct {
	// SuspectAfter and DeadAfter are the absolute silence floors.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// PhiSuspect and PhiDead scale the observed mean inter-arrival gap;
	// zero values default to 6 and 12.
	PhiSuspect float64
	PhiDead    float64

	meanGap float64 // EWMA of inter-arrival gaps, seconds
	last    time.Time
	started bool
	state   State
	// timeouts counts Alive→Suspect transitions: the
	// RunStats.HeartbeatTimeouts figure.
	timeouts int64
}

// NewDetector returns a detector with the given absolute thresholds and
// default phi multipliers.
func NewDetector(suspectAfter, deadAfter time.Duration) *Detector {
	return &Detector{SuspectAfter: suspectAfter, DeadAfter: deadAfter}
}

func (d *Detector) phiSuspect() float64 {
	if d.PhiSuspect > 0 {
		return d.PhiSuspect
	}
	return 6
}

func (d *Detector) phiDead() float64 {
	if d.PhiDead > 0 {
		return d.PhiDead
	}
	return 12
}

// Observe records an arrival at now. Any traffic revives a Suspect link;
// a Dead verdict is terminal (the peer was already reported — a late
// arrival must not un-kill it) until Reset.
func (d *Detector) Observe(now time.Time) {
	if d.state == Dead {
		return
	}
	if d.started {
		gap := now.Sub(d.last).Seconds()
		if gap < 0 {
			gap = 0
		}
		if d.meanGap == 0 {
			d.meanGap = gap
		} else {
			d.meanGap = 0.8*d.meanGap + 0.2*gap
		}
	}
	d.last = now
	d.started = true
	d.state = Alive
}

// Check evaluates the silence at now and returns the (possibly
// advanced) state. It only moves forward (Alive→Suspect→Dead); Observe
// moves back.
func (d *Detector) Check(now time.Time) State {
	if !d.started || d.state == Dead {
		return d.state
	}
	silence := now.Sub(d.last)
	if silence >= d.deadline(d.DeadAfter, d.phiDead()) {
		if d.state != Dead {
			d.state = Dead
		}
		return d.state
	}
	if silence >= d.deadline(d.SuspectAfter, d.phiSuspect()) {
		if d.state == Alive {
			d.state = Suspect
			d.timeouts++
		}
		return d.state
	}
	return d.state
}

// deadline is the effective threshold: the absolute floor stretched by
// the phi-scaled mean gap when the link's cadence is slower.
func (d *Detector) deadline(floor time.Duration, phi float64) time.Duration {
	adaptive := time.Duration(phi * d.meanGap * float64(time.Second))
	if adaptive > floor {
		return adaptive
	}
	return floor
}

// State returns the current verdict without advancing it.
func (d *Detector) State() State { return d.state }

// Timeouts returns how many times the detector transitioned into
// Suspect — the heartbeat-timeout count surfaced in RunStats.
func (d *Detector) Timeouts() int64 { return d.timeouts }

// Reset rearms a Dead detector after a successful reconnect handshake.
func (d *Detector) Reset(now time.Time) {
	d.state = Alive
	d.last = now
	d.started = true
	d.meanGap = 0
}
