package serve

// The serving RPC plane: a Server hosted behind the internal/transport
// TCP message plane (KindRPC frames, length-prefixed codec payloads —
// the same wire discipline as the engine's remote-worker protocol).
//
// Topology: the server plane listens and serves endpoint 0. Each client
// makes a dial-only plane with a unique positive id, serving endpoint
// id over link id, routing endpoint 0 to the server. Requests carry a
// client-chosen request id; responses echo it, so one client may issue
// concurrent calls over its single link.
//
// OnFrame runs on transport reader goroutines and must never call Send
// synchronously, so both sides only enqueue frames there: the server
// hands requests to a worker pool, the client hands responses to the
// waiting call's buffered channel.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/codec"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/transport"
)

// RPC operation codes.
const (
	opSSSP uint32 = iota + 1
	opCC
	opPageRank
	opRecommend
	opStats
	opIDs
)

// serverEndpoint is the endpoint id the serving plane answers on.
const serverEndpoint int32 = 0

// QueryMeta is the per-query serving metadata shipped back with every
// RPC response (the RunStats serving fields plus wall latency).
type QueryMeta struct {
	Seconds          float64
	QueueWaitSeconds float64
	BatchSize        int
	ArenaBytes       int64
	ScannedEdges     int64
}

func appendMeta(dst []byte, seconds float64, st *core.RunStats) []byte {
	dst = codec.AppendFloat64(dst, seconds)
	dst = codec.AppendFloat64(dst, st.QueueWaitSeconds)
	dst = codec.AppendInt64(dst, int64(st.BatchSize))
	dst = codec.AppendInt64(dst, st.ArenaBytes)
	return codec.AppendInt64(dst, st.ScannedEdges)
}

func readMeta(r *codec.Reader) QueryMeta {
	return QueryMeta{
		Seconds:          r.Float64(),
		QueueWaitSeconds: r.Float64(),
		BatchSize:        int(r.Int64()),
		ArenaBytes:       r.Int64(),
		ScannedEdges:     r.Int64(),
	}
}

// RPCServer hosts a Server behind a listening transport plane.
type RPCServer struct {
	srv   *Server
	plane *transport.Plane
	reqs  chan transport.Frame
	done  chan struct{}
	wg    sync.WaitGroup
}

// ListenRPC exposes srv on addr ("127.0.0.1:0" for an ephemeral port).
// workers bounds concurrent request handling ahead of the Server's own
// admission control; <= 0 defaults to the server's in-flight cap plus
// its queue depth, so the transport pool is never what sheds load.
func ListenRPC(srv *Server, addr string, workers int) (*RPCServer, error) {
	if workers <= 0 {
		workers = srv.cfg.maxInflight + srv.cfg.queueDepth
	}
	rs := &RPCServer{
		srv:  srv,
		reqs: make(chan transport.Frame, workers),
		done: make(chan struct{}),
	}
	plane, err := transport.Listen(transport.Config{
		ListenAddr: addr,
		OnFrame: func(f transport.Frame) {
			if f.Kind != transport.KindRPC {
				return
			}
			select {
			case rs.reqs <- f:
			case <-rs.done:
			}
		},
	})
	if err != nil {
		return nil, err
	}
	rs.plane = plane
	for i := 0; i < workers; i++ {
		rs.wg.Add(1)
		go rs.worker()
	}
	return rs, nil
}

// Addr is the plane's bound listen address.
func (rs *RPCServer) Addr() string { return rs.plane.Addr() }

// Close stops the workers and tears down the transport plane.
func (rs *RPCServer) Close() error {
	close(rs.done)
	err := rs.plane.Close()
	rs.wg.Wait()
	return err
}

func (rs *RPCServer) worker() {
	defer rs.wg.Done()
	for {
		select {
		case <-rs.done:
			return
		case f := <-rs.reqs:
			resp := rs.handle(f.Payload)
			// Send failures mean the client link died; the response is
			// undeliverable and the client's own timeout reports it.
			_ = rs.plane.Send(serverEndpoint, f.From, transport.KindRPC, resp)
		}
	}
}

// handle decodes one request and runs it through the scheduler.
func (rs *RPCServer) handle(payload []byte) []byte {
	r := codec.NewReader(payload)
	reqID := r.Uint64()
	op := r.Uint32()
	fail := func(err error) []byte {
		out := codec.AppendUint64(nil, reqID)
		out = codec.AppendUint32(out, 1)
		return codec.AppendString(out, err.Error())
	}
	if r.Err() != nil {
		return fail(fmt.Errorf("serve: bad request frame: %w", r.Err()))
	}
	ok := func() []byte {
		out := codec.AppendUint64(nil, reqID)
		return codec.AppendUint32(out, 0)
	}
	t0 := time.Now()
	switch op {
	case opSSSP:
		src := graph.VertexID(r.Int64())
		if r.Err() != nil {
			return fail(r.Err())
		}
		dist, st, err := rs.srv.SSSP(src)
		if err != nil {
			return fail(err)
		}
		out := appendMeta(ok(), time.Since(t0).Seconds(), &st)
		return codec.AppendFloat64s(out, dist)
	case opCC:
		labels, st, err := rs.srv.CC()
		if err != nil {
			return fail(err)
		}
		out := appendMeta(ok(), time.Since(t0).Seconds(), &st)
		return codec.AppendInt64s(out, labels)
	case opPageRank:
		ranks, st, err := rs.srv.PageRank()
		if err != nil {
			return fail(err)
		}
		out := appendMeta(ok(), time.Since(t0).Seconds(), &st)
		return codec.AppendFloat64s(out, ranks)
	case opRecommend:
		user := int(r.Int64())
		k := int(r.Int64())
		if r.Err() != nil {
			return fail(r.Err())
		}
		recs, st, err := rs.srv.Recommend(user, k)
		if err != nil {
			return fail(err)
		}
		out := appendMeta(ok(), time.Since(t0).Seconds(), &st)
		out = codec.AppendUint32(out, uint32(len(recs)))
		for _, rec := range recs {
			out = codec.AppendInt64(out, int64(rec.Product))
			out = codec.AppendFloat64(out, rec.Score)
		}
		return out
	case opStats:
		st := rs.srv.Stats()
		out := ok()
		out = codec.AppendInt64(out, st.Admitted)
		out = codec.AppendInt64(out, st.Completed)
		out = codec.AppendInt64(out, st.Failed)
		out = codec.AppendInt64(out, st.Active)
		out = codec.AppendFloat64(out, st.BusySeconds)
		out = codec.AppendFloat64(out, st.UpSeconds)
		out = codec.AppendFloat64(out, st.QPS)
		out = codec.AppendInt64(out, st.Rejected)
		out = codec.AppendInt64(out, st.Batches)
		out = codec.AppendInt64(out, st.BatchedQueries)
		out = codec.AppendInt64(out, st.MaxBatch)
		out = codec.AppendInt64(out, st.QueuedNow)
		return out
	case opIDs:
		// Part of the shared immutable plane, so clients fetch it once
		// per connection, not per query: ids[v] is the external vertex
		// identifier of internal slot v, the order every value vector in
		// the other responses uses.
		g := rs.srv.sess.Partitioned().G
		ids := make([]int64, g.NumVertices())
		for v := range ids {
			ids[v] = int64(g.IDOf(int32(v)))
		}
		return codec.AppendInt64s(ok(), ids)
	default:
		return fail(fmt.Errorf("serve: unknown rpc op %d", op))
	}
}

// Client is one process's connection to a serving plane. Safe for
// concurrent calls; each call gets its own request id and response
// channel over the shared link.
type Client struct {
	plane   *transport.Plane
	id      int32
	timeout time.Duration

	nextReq atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan []byte
	closed  bool
}

// DialRPC connects to a serving plane at addr. id must be a positive
// endpoint id unique among the plane's clients (a PID works). timeout
// bounds both the dial handshake and each call.
func DialRPC(addr string, id int32, timeout time.Duration) (*Client, error) {
	if id <= serverEndpoint {
		return nil, errors.New("serve: client id must be positive")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &Client{id: id, timeout: timeout, pending: make(map[uint64]chan []byte)}
	plane, err := transport.Listen(transport.Config{
		ListenAddr: "",
		OnFrame:    c.onFrame,
	})
	if err != nil {
		return nil, err
	}
	c.plane = plane
	if err := plane.Dial(id, addr, []int32{id}, []int32{serverEndpoint}); err != nil {
		plane.Close()
		return nil, err
	}
	if err := plane.WaitRoute(serverEndpoint, timeout); err != nil {
		plane.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down the client plane; in-flight calls fail by timeout.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.plane.Close()
}

func (c *Client) onFrame(f transport.Frame) {
	if f.Kind != transport.KindRPC {
		return
	}
	r := codec.NewReader(f.Payload)
	reqID := r.Uint64()
	if r.Err() != nil {
		return
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- f.Payload // buffered, never blocks the reader
	}
}

// call sends one request and waits for its response body (positioned
// after the reqID/status prefix) or an error.
func (c *Client) call(op uint32, args func([]byte) []byte) (*codec.Reader, error) {
	reqID := c.nextReq.Add(1)
	req := codec.AppendUint64(nil, reqID)
	req = codec.AppendUint32(req, op)
	if args != nil {
		req = args(req)
	}
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("serve: client closed")
	}
	c.pending[reqID] = ch
	c.mu.Unlock()
	if err := c.plane.Send(c.id, serverEndpoint, transport.KindRPC, req); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case payload := <-ch:
		r := codec.NewReader(payload)
		r.Uint64() // reqID, already matched
		if r.Uint32() != 0 {
			msg := r.String()
			if r.Err() != nil {
				return nil, fmt.Errorf("serve: malformed error response: %w", r.Err())
			}
			return nil, errors.New(msg)
		}
		return r, nil
	case <-time.After(c.timeout):
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: rpc op %d timed out after %s", op, c.timeout)
	}
}

// SSSP asks the server for single-source shortest paths from src.
func (c *Client) SSSP(src graph.VertexID) ([]float64, QueryMeta, error) {
	r, err := c.call(opSSSP, func(b []byte) []byte {
		return codec.AppendInt64(b, int64(src))
	})
	if err != nil {
		return nil, QueryMeta{}, err
	}
	meta := readMeta(r)
	dist := r.Float64s()
	return dist, meta, r.Err()
}

// CC asks the server for connected-component labels.
func (c *Client) CC() ([]int64, QueryMeta, error) {
	r, err := c.call(opCC, nil)
	if err != nil {
		return nil, QueryMeta{}, err
	}
	meta := readMeta(r)
	labels := r.Int64s()
	return labels, meta, r.Err()
}

// PageRank asks the server for PageRank scores.
func (c *Client) PageRank() ([]float64, QueryMeta, error) {
	r, err := c.call(opPageRank, nil)
	if err != nil {
		return nil, QueryMeta{}, err
	}
	meta := readMeta(r)
	ranks := r.Float64s()
	return ranks, meta, r.Err()
}

// Recommend asks the server for the user's top-k unrated products.
func (c *Client) Recommend(user, k int) ([]Rec, QueryMeta, error) {
	r, err := c.call(opRecommend, func(b []byte) []byte {
		b = codec.AppendInt64(b, int64(user))
		return codec.AppendInt64(b, int64(k))
	})
	if err != nil {
		return nil, QueryMeta{}, err
	}
	meta := readMeta(r)
	n := int(r.Uint32())
	if r.Err() != nil {
		return nil, meta, r.Err()
	}
	recs := make([]Rec, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Rec{Product: int(r.Int64()), Score: r.Float64()})
	}
	return recs, meta, r.Err()
}

// IDs fetches the server's external vertex identifiers: ids[v] names
// the vertex whose value sits at index v of every SSSP/CC/PageRank
// response. Static for the life of the server — fetch once and reuse.
func (c *Client) IDs() ([]int64, error) {
	r, err := c.call(opIDs, nil)
	if err != nil {
		return nil, err
	}
	ids := r.Int64s()
	return ids, r.Err()
}

// Stats fetches the server's scheduling counters.
func (c *Client) Stats() (Stats, error) {
	r, err := c.call(opStats, nil)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	st.Admitted = r.Int64()
	st.Completed = r.Int64()
	st.Failed = r.Int64()
	st.Active = r.Int64()
	st.BusySeconds = r.Float64()
	st.UpSeconds = r.Float64()
	st.QPS = r.Float64()
	st.Rejected = r.Int64()
	st.Batches = r.Int64()
	st.BatchedQueries = r.Int64()
	st.MaxBatch = r.Int64()
	st.QueuedNow = r.Int64()
	return st, r.Err()
}
