package serve

// Scheduler tests: batched SSSP equivalence to dedicated runs,
// admission control shedding, deadline propagation, and the
// recommendation path.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aap/internal/algo/cf"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
)

func buildPartition(t *testing.T, g *graph.Graph, m int) *partition.Partitioned {
	t.Helper()
	p, err := partition.Build(g, m, partition.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestServedSSSPMatchesDedicatedRuns: concurrent SSSP queries through
// the batching scheduler are bit-identical to dedicated core.Run calls,
// and under a generous window they actually coalesce.
func TestServedSSSPMatchesDedicatedRuns(t *testing.T) {
	g := gen.PowerLaw(500, 6, 2.1, true, 19)
	p := buildPartition(t, g, 2)
	srv := New(p, WithBatchWindow(20*time.Millisecond), WithBatchMax(4), WithMaxInflight(2))

	sources := []graph.VertexID{0, 1, 2, 3, 4, 5, 6, 7}
	want := make([][]float64, len(sources))
	for i, src := range sources {
		res, err := core.Run(p, sssp.Job(src), core.Options{Mode: core.AAP})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Values
	}

	got := make([][]float64, len(sources))
	stats := make([]core.RunStats, len(sources))
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], stats[i], errs[i] = srv.SSSP(src)
		}()
	}
	wg.Wait()

	batched := false
	for i := range sources {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for v := range want[i] {
			if math.Float64bits(got[i][v]) != math.Float64bits(want[i][v]) {
				t.Fatalf("source %d vertex %d: served %v != dedicated %v",
					sources[i], v, got[i][v], want[i][v])
			}
		}
		if stats[i].BatchSize > 1 {
			batched = true
		}
		if stats[i].BatchSize <= 0 || stats[i].QueueWaitSeconds < 0 {
			t.Fatalf("source %d: serving stats not stamped: %+v", sources[i], stats[i])
		}
	}
	if !batched {
		t.Fatal("no query was served from a batch despite the 20ms window")
	}
	st := srv.Stats()
	if st.Batches <= 0 || st.BatchedQueries != int64(len(sources)) || st.MaxBatch < 2 {
		t.Fatalf("batch counters off: %+v", st)
	}
	if st.Admitted != st.Completed || st.Failed != 0 {
		t.Fatalf("session counters off: %+v", st)
	}
}

// TestBatchWindowZeroRunsImmediately: without a window every query is
// its own engine run, so the scheduler degrades to plain concurrency.
func TestBatchWindowZeroRunsImmediately(t *testing.T) {
	g := gen.Grid(10, 10, 3)
	p := buildPartition(t, g, 1)
	srv := New(p)
	dist, st, err := srv.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchSize != 1 {
		t.Fatalf("BatchSize = %d, want 1", st.BatchSize)
	}
	if len(dist) != g.NumVertices() || dist[0] != 0 {
		t.Fatalf("bad distances: len=%d dist[0]=%v", len(dist), dist[0])
	}
}

// TestAdmissionControlShedsLoad: with one in-flight slot and a
// one-query queue, a burst must see both completions and ErrOverloaded
// rejections, and the counters must account for every query.
func TestAdmissionControlShedsLoad(t *testing.T) {
	g := gen.PowerLaw(800, 6, 2.1, true, 23)
	p := buildPartition(t, g, 2)
	srv := New(p, WithMaxInflight(1), WithQueueDepth(1))

	const burst = 12
	var rejected, completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := srv.CC()
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no query completed")
	}
	if rejected.Load() == 0 {
		t.Fatal("no query was shed despite queue depth 1 and a 12-query burst")
	}
	st := srv.Stats()
	if st.Rejected != rejected.Load() || st.Completed != completed.Load() {
		t.Fatalf("counters disagree: %+v vs completed=%d rejected=%d", st, completed.Load(), rejected.Load())
	}
	if st.QueuedNow != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestDeadlinePropagates: a vanishing per-query deadline surfaces as
// context.DeadlineExceeded through the serving path.
func TestDeadlinePropagates(t *testing.T) {
	g := gen.PowerLaw(2000, 8, 2.1, true, 29)
	p := buildPartition(t, g, 4)
	srv := New(p, WithDeadline(time.Nanosecond))
	_, _, err := srv.SSSP(0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRecommendTopK: the CF path trains once, excludes the user's rated
// products, returns k descending scores, and is stable across calls.
func TestRecommendTopK(t *testing.T) {
	const users, products = 120, 30
	r := gen.Bipartite(users, products, 8, 4, 1.0, 7)
	p := buildPartition(t, r.G, 2)
	srv := New(p, WithCF(cf.Config{Users: users, Products: products, Rank: 4, Epochs: 8, Seed: 5}))

	recs, _, err := srv.Recommend(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d recs, want 5", len(recs))
	}
	rated := make(map[int]bool)
	for _, e := range r.TrainEdges {
		if e.Src == 0 {
			rated[int(e.Dst)-users] = true
		}
	}
	for i, rec := range recs {
		if rated[rec.Product] {
			t.Fatalf("rec %d recommends already-rated product %d", i, rec.Product)
		}
		if i > 0 && recs[i-1].Score < rec.Score {
			t.Fatalf("recs not sorted: %v", recs)
		}
	}
	again, _, err := srv.Recommend(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatalf("recommendations unstable across calls: %v vs %v", recs, again)
		}
	}
	if _, _, err := srv.Recommend(-1, 5); err == nil {
		t.Fatal("negative user accepted")
	}
	bare := New(p)
	if _, _, err := bare.Recommend(0, 5); !errors.Is(err, ErrNoCF) {
		t.Fatalf("err = %v, want ErrNoCF", err)
	}
}
