package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/cf"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

// ErrOverloaded is returned when a query arrives while the wait queue
// is already at WithQueueDepth capacity — the admission controller's
// fail-fast signal to shed load instead of queueing unboundedly.
var ErrOverloaded = errors.New("serve: server overloaded, query rejected")

// ErrNoCF is returned by Recommend when the server was built without
// WithCF.
var ErrNoCF = errors.New("serve: recommendation path not configured (WithCF)")

// Server schedules concurrent queries onto one resident core.Session.
// All methods are safe for concurrent use; the underlying shared plane
// is read-only, so queries never contend on data, only on the admission
// semaphore.
type Server struct {
	sess *core.Session
	cfg  config

	sem     chan struct{} // in-flight permits
	waiting atomic.Int64  // queries admitted but not yet holding a permit

	// SSSP batcher: pending sources coalesce until the window expires
	// or batchMax is reached, then one leader runs them as lanes of a
	// single batched multi-source engine run.
	mu      sync.Mutex
	pending []*ssspReq
	timer   *time.Timer

	// CF factors, trained on first Recommend.
	cfOnce sync.Once
	cfErr  error
	userF  [][]float64
	prodF  [][]float64

	rejected       atomic.Int64
	batches        atomic.Int64
	batchedQueries atomic.Int64
	maxBatch       atomic.Int64
}

// New builds a Server hosting p behind a fresh resident Session.
func New(p *partition.Partitioned, opts ...Option) *Server {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	return &Server{
		sess: core.NewSession(p),
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.maxInflight),
	}
}

// Session exposes the resident session (stats, shared plane).
func (s *Server) Session() *core.Session { return s.sess }

// Stats is a point-in-time snapshot of the scheduling plane.
type Stats struct {
	core.SessionStats
	Rejected       int64 // queries shed by admission control
	Batches        int64 // batched SSSP engine runs executed
	BatchedQueries int64 // SSSP queries served through those batches
	MaxBatch       int64 // largest batch cut so far
	QueuedNow      int64 // queries currently waiting for a permit
}

// Stats snapshots the server and session counters.
func (s *Server) Stats() Stats {
	return Stats{
		SessionStats:   s.sess.Stats(),
		Rejected:       s.rejected.Load(),
		Batches:        s.batches.Load(),
		BatchedQueries: s.batchedQueries.Load(),
		MaxBatch:       s.maxBatch.Load(),
		QueuedNow:      s.waiting.Load(),
	}
}

// runOpts is the engine option set every query runs with.
func (s *Server) runOpts() core.Options {
	return core.Options{
		Mode:            s.cfg.mode,
		PhysicalWorkers: s.cfg.njobs,
		Deadline:        s.cfg.deadline,
		Staleness:       s.cfg.staleness,
	}
}

// acquire admits one unit of work: reject if the wait queue is full,
// otherwise wait for an in-flight permit. Returns the release func and
// the time spent queued.
func (s *Server) acquire() (release func(), wait time.Duration, err error) {
	if s.waiting.Add(1) > int64(s.cfg.queueDepth) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return nil, 0, ErrOverloaded
	}
	t0 := time.Now()
	s.sem <- struct{}{}
	s.waiting.Add(-1)
	return func() { <-s.sem }, time.Since(t0), nil
}

// logQuery emits the per-query serving line when a logger is set.
func (s *Server) logQuery(name string, seconds float64, st *core.RunStats, err error) {
	if s.cfg.logger == nil {
		return
	}
	status := "ok"
	if err != nil {
		status = "err=" + err.Error()
	}
	s.cfg.logger.Printf(
		"query=%s %s seconds=%.4f queue_wait=%.4f batch=%d arena_bytes=%d scanned_edges=%d",
		name, status, seconds, st.QueueWaitSeconds, st.BatchSize, st.ArenaBytes, st.ScannedEdges)
}

// ssspReq is one queued SSSP source waiting for its batch to be cut.
type ssspReq struct {
	src  graph.VertexID
	enq  time.Time
	done chan ssspResp
}

type ssspResp struct {
	dist  []float64
	stats core.RunStats
	err   error
}

// SSSP answers a single-source shortest-paths query. With a batch
// window configured, queued sources coalesce into one batched
// multi-source engine run; the returned distances are bit-identical to
// a dedicated run either way.
func (s *Server) SSSP(source graph.VertexID) ([]float64, core.RunStats, error) {
	// Admission is per query, before batching: a shed query must fail
	// fast, not occupy a batch lane.
	if s.waiting.Add(1) > int64(s.cfg.queueDepth) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return nil, core.RunStats{}, ErrOverloaded
	}
	req := &ssspReq{src: source, enq: time.Now(), done: make(chan ssspResp, 1)}
	s.mu.Lock()
	s.pending = append(s.pending, req)
	n := len(s.pending)
	if n >= s.cfg.batchMax || s.cfg.batchWindow == 0 {
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		batch := s.pending
		s.pending = nil
		s.mu.Unlock()
		go s.runBatch(batch)
	} else {
		if n == 1 {
			s.timer = time.AfterFunc(s.cfg.batchWindow, s.cutBatch)
		}
		s.mu.Unlock()
	}
	resp := <-req.done
	return resp.dist, resp.stats, resp.err
}

// cutBatch fires when the batch window expires.
func (s *Server) cutBatch() {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.timer = nil
	s.mu.Unlock()
	if len(batch) > 0 {
		s.runBatch(batch)
	}
}

// runBatch executes one batched multi-source engine run and fans the
// lanes back out to the queued requests.
func (s *Server) runBatch(batch []*ssspReq) {
	s.sem <- struct{}{} // one permit covers the whole batch
	s.waiting.Add(int64(-len(batch)))
	start := time.Now()
	defer func() { <-s.sem }()

	srcs := make([]graph.VertexID, len(batch))
	for i, r := range batch {
		srcs[i] = r.src
	}
	res, err := core.Query(s.sess, sssp.MultiJob(sssp.MultiConfig{Sources: srcs}), s.runOpts())
	seconds := time.Since(start).Seconds()

	s.batches.Add(1)
	s.batchedQueries.Add(int64(len(batch)))
	for {
		cur := s.maxBatch.Load()
		if int64(len(batch)) <= cur || s.maxBatch.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}

	for i, r := range batch {
		var resp ssspResp
		if res != nil {
			resp.stats = res.Stats
			resp.dist = sssp.Lane(res.Values, i)
		}
		resp.stats.QueueWaitSeconds = start.Sub(r.enq).Seconds()
		resp.stats.BatchSize = len(batch)
		resp.err = err
		s.logQuery("sssp", seconds, &resp.stats, err)
		r.done <- resp
	}
}

// CC answers a connected-components query (labels over the hosted
// graph's edges as partitioned; undirected graphs give the classic
// components).
func (s *Server) CC() ([]int64, core.RunStats, error) {
	return direct(s, "cc", cc.Job())
}

// PageRank answers a PageRank query at the server's configured
// tolerance.
func (s *Server) PageRank() ([]float64, core.RunStats, error) {
	return direct(s, "pagerank", pagerank.Job(pagerank.Config{Tol: s.cfg.pagerankTol}))
}

// direct runs one job as one engine run, through admission control.
func direct[T any](s *Server, name string, job core.Job[T]) ([]T, core.RunStats, error) {
	release, wait, err := s.acquire()
	if err != nil {
		return nil, core.RunStats{}, err
	}
	defer release()
	t0 := time.Now()
	res, err := core.Query(s.sess, job, s.runOpts())
	seconds := time.Since(t0).Seconds()
	var vals []T
	var st core.RunStats
	if res != nil {
		vals = res.Values
		st = res.Stats
	}
	st.QueueWaitSeconds = wait.Seconds()
	st.BatchSize = 1
	s.logQuery(name, seconds, &st, err)
	return vals, st, err
}

// Rec is one recommendation: a product index (0-based, before the user
// offset) and its predicted rating.
type Rec struct {
	Product int
	Score   float64
}

// Recommend returns the top-k unrated products for a user by predicted
// rating. The first call trains the latent factors with one engine run
// (bounded-staleness SGD); later calls only read the trained model and
// the user's adjacency, so they are admission-free.
func (s *Server) Recommend(user, k int) ([]Rec, core.RunStats, error) {
	if s.cfg.cfConfig == nil {
		return nil, core.RunStats{}, ErrNoCF
	}
	var trainStats core.RunStats
	s.cfOnce.Do(func() {
		release, wait, err := s.acquire()
		if err != nil {
			s.cfErr = err
			// Leave cfOnce spent: an overloaded server stays untrained
			// only for this process; retraining on retry would need a
			// fresh Once, which a rejected training run does not merit.
			return
		}
		defer release()
		t0 := time.Now()
		opts := s.runOpts()
		opts.Staleness = s.cfg.cfStaleness
		res, err := core.Query(s.sess, cf.Job(*s.cfg.cfConfig), opts)
		seconds := time.Since(t0).Seconds()
		if err != nil {
			s.cfErr = err
			return
		}
		trainStats = res.Stats
		trainStats.QueueWaitSeconds = wait.Seconds()
		trainStats.BatchSize = 1
		s.logQuery("cf-train", seconds, &trainStats, nil)
		s.userF, s.prodF = cf.Factors(s.sess.Partitioned(), res.Values, *s.cfg.cfConfig)
	})
	if s.cfErr != nil {
		return nil, core.RunStats{}, s.cfErr
	}
	if user < 0 || user >= len(s.userF) {
		return nil, trainStats, errors.New("serve: unknown user")
	}

	// Rated products are the user's out-neighbors in the rating graph
	// (products sit after the users in the bipartite id layout).
	users := s.cfg.cfConfig.Users
	p := s.sess.Partitioned()
	rated := make(map[int]bool)
	if idx, ok := p.G.IndexOf(graph.VertexID(user)); ok {
		for _, u := range p.G.Out(idx) {
			if pid := int(p.G.IDOf(u)) - users; pid >= 0 {
				rated[pid] = true
			}
		}
	}
	uf := s.userF[user]
	recs := make([]Rec, 0, len(s.prodF))
	for pid, pf := range s.prodF {
		if rated[pid] || pf == nil {
			continue
		}
		var dot float64
		for i := range uf {
			dot += uf[i] * pf[i]
		}
		recs = append(recs, Rec{Product: pid, Score: dot})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Product < recs[j].Product
	})
	if k > 0 && k < len(recs) {
		recs = recs[:k]
	}
	return recs, trainStats, nil
}
