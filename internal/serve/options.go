// Package serve is the concurrent-query scheduling plane over a
// resident core.Session: admission control (bounded in-flight engine
// runs plus a bounded wait queue), source batching for SSSP (k queued
// sources collapse into one batched multi-source engine run that shares
// edge scans, bit-identical per lane to k separate runs), per-query
// deadlines through the engine's existing Options.Deadline, and a
// trained-once collaborative-filtering recommendation path.
//
// The package splits responsibilities with core cleanly: core.Session
// owns the shared immutable plane (fragments, slot tables, routing) and
// the per-query engine runs; serve decides WHEN and in WHAT SHAPE those
// runs happen.
package serve

import (
	"log"
	"time"

	"aap/internal/algo/cf"
	"aap/internal/core"
)

// config collects the scheduler knobs; zero values resolve in
// withDefaults. Construction is via functional options so new knobs
// never break callers.
type config struct {
	maxInflight int           // concurrent engine runs
	queueDepth  int           // queries allowed to wait beyond the in-flight cap
	batchWindow time.Duration // how long the first queued SSSP source waits for company
	batchMax    int           // sources per batched run; reaching it cuts the batch early
	njobs       int           // engine compute parallelism (core.Options.PhysicalWorkers)
	deadline    time.Duration // per-query engine deadline (core.Options.Deadline)
	mode        core.Mode
	staleness   int     // engine staleness bound (CF training wants > 0)
	pagerankTol float64 // PageRank query convergence tolerance
	cfConfig    *cf.Config
	cfStaleness int // staleness bound used for the one-time CF training run
	logger      *log.Logger
}

func (c config) withDefaults() config {
	if c.maxInflight <= 0 {
		c.maxInflight = 4
	}
	if c.queueDepth <= 0 {
		c.queueDepth = 64
	}
	if c.batchWindow < 0 {
		c.batchWindow = 0
	}
	if c.batchMax <= 0 {
		c.batchMax = 8
	}
	if c.pagerankTol <= 0 {
		c.pagerankTol = 1e-8
	}
	if c.cfStaleness <= 0 {
		c.cfStaleness = 4
	}
	return c
}

// Option configures a Server.
type Option func(*config)

// WithMaxInflight bounds how many engine runs may execute at once;
// further admitted queries wait in the queue. Default 4.
func WithMaxInflight(n int) Option { return func(c *config) { c.maxInflight = n } }

// WithQueueDepth bounds how many queries may wait for an in-flight
// slot; beyond it queries fail fast with ErrOverloaded. Default 64.
func WithQueueDepth(n int) Option { return func(c *config) { c.queueDepth = n } }

// WithBatchWindow sets how long the first queued SSSP source waits for
// more sources before its batch is cut. Zero (the default) disables
// time-based batching: every SSSP runs immediately with batch size 1.
func WithBatchWindow(d time.Duration) Option { return func(c *config) { c.batchWindow = d } }

// WithBatchMax caps the sources per batched SSSP run; a batch reaching
// the cap is cut before the window expires. Default 8.
func WithBatchMax(n int) Option { return func(c *config) { c.batchMax = n } }

// WithNJobs sets the engine's compute parallelism per run
// (core.Options.PhysicalWorkers); 0 uses GOMAXPROCS.
func WithNJobs(n int) Option { return func(c *config) { c.njobs = n } }

// WithDeadline force-finishes each query's engine run after d,
// returning the partial result with a context.DeadlineExceeded error
// (core.Options.Deadline semantics). Zero disables.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// WithMode selects the engine's parallel model; default AAP.
func WithMode(m core.Mode) Option { return func(c *config) { c.mode = m } }

// WithStaleness sets the engine staleness bound for query runs.
func WithStaleness(n int) Option { return func(c *config) { c.staleness = n } }

// WithPageRankTol sets the PageRank query convergence tolerance;
// default 1e-8.
func WithPageRankTol(tol float64) Option { return func(c *config) { c.pagerankTol = tol } }

// WithCF enables the recommendation path: the Server's graph is a
// bipartite rating graph (users then products, gen.Bipartite layout)
// and the first Recommend call trains latent factors once with cfg.
func WithCF(cfg cf.Config) Option { return func(c *config) { c.cfConfig = &cfg } }

// WithCFStaleness sets the staleness bound of the one-time CF training
// run (distributed SGD wants bounded staleness under AAP). Default 4.
func WithCFStaleness(n int) Option { return func(c *config) { c.cfStaleness = n } }

// WithLogger makes the Server log one line per completed query (name,
// latency, queue wait, batch size, arena bytes, scanned edges).
func WithLogger(l *log.Logger) Option { return func(c *config) { c.logger = l } }
