package serve

// End-to-end RPC tests over loopback TCP: concurrent clients issuing
// mixed queries against one hosted Session, results identical to
// in-process serving.

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"aap/internal/algo/cf"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
)

// TestRPCServesMixedQueries: two clients over one serving plane, SSSP /
// CC / PageRank / Stats, all answers matching dedicated engine runs.
func TestRPCServesMixedQueries(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 37)
	p := buildPartition(t, g, 2)
	srv := New(p, WithBatchWindow(5*time.Millisecond), WithBatchMax(4))
	rs, err := ListenRPC(srv, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	c1, err := DialRPC(rs.Addr(), 101, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialRPC(rs.Addr(), 102, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	sources := []graph.VertexID{0, 1, 2, 3, 4, 5}
	want := make([][]float64, len(sources))
	for i, src := range sources {
		res, err := core.Run(p, sssp.Job(src), core.Options{Mode: core.AAP})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Values
	}

	var wg sync.WaitGroup
	errs := make([]error, len(sources)+2)
	got := make([][]float64, len(sources))
	metas := make([]QueryMeta, len(sources))
	for i, src := range sources {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := c1
			if i%2 == 1 {
				c = c2
			}
			got[i], metas[i], errs[i] = c.SSSP(src)
		}()
	}
	var labels []int64
	var ranks []float64
	wg.Add(2)
	go func() { defer wg.Done(); labels, _, errs[len(sources)] = c1.CC() }()
	go func() { defer wg.Done(); ranks, _, errs[len(sources)+1] = c2.PageRank() }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i := range sources {
		if metas[i].BatchSize <= 0 || metas[i].Seconds <= 0 {
			t.Fatalf("source %d: meta not stamped: %+v", sources[i], metas[i])
		}
		for v := range want[i] {
			if math.Float64bits(got[i][v]) != math.Float64bits(want[i][v]) {
				t.Fatalf("rpc sssp src=%d vertex %d: %v != %v", sources[i], v, got[i][v], want[i][v])
			}
		}
	}
	if len(labels) != g.NumVertices() || len(ranks) != g.NumVertices() {
		t.Fatalf("cc/pagerank shapes: %d, %d", len(labels), len(ranks))
	}

	ids, err := c1.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != g.NumVertices() {
		t.Fatalf("ids length %d, want %d", len(ids), g.NumVertices())
	}
	for v, id := range ids {
		if id != int64(p.G.IDOf(int32(v))) {
			t.Fatalf("ids[%d] = %d, want %d", v, id, p.G.IDOf(int32(v)))
		}
	}

	st, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Admitted counts engine runs: the SSSP queries coalesce into
	// st.Batches runs, CC and PageRank are one run each.
	if st.BatchedQueries != int64(len(sources)) || st.Completed != st.Batches+2 || st.Active != 0 {
		t.Fatalf("server stats: %+v", st)
	}
}

// TestRPCRecommendAndErrors: the CF path over the wire, plus error
// propagation for unconfigured and malformed requests.
func TestRPCRecommendAndErrors(t *testing.T) {
	const users, products = 80, 20
	r := gen.Bipartite(users, products, 6, 4, 1.0, 3)
	p := buildPartition(t, r.G, 2)
	srv := New(p, WithCF(cf.Config{Users: users, Products: products, Rank: 4, Epochs: 6, Seed: 9}))
	rs, err := ListenRPC(srv, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	c, err := DialRPC(rs.Addr(), 7, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs, meta, err := c.Recommend(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recs", len(recs))
	}
	local, _, err := srv.Recommend(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i] != local[i] {
			t.Fatalf("rpc recs diverge from local: %v vs %v", recs, local)
		}
	}
	if meta.Seconds < 0 {
		t.Fatalf("meta: %+v", meta)
	}

	if _, _, err := c.Recommend(-5, 3); err == nil || !strings.Contains(err.Error(), "user") {
		t.Fatalf("bad-user error not propagated: %v", err)
	}
}
