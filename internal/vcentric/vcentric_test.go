package vcentric_test

import (
	"math"
	"testing"

	"aap/internal/algo/ref"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/vcentric"
)

func modes() []vcentric.Mode {
	return []vcentric.Mode{vcentric.Sync, vcentric.Async, vcentric.HsyncMode}
}

func TestVertexCentricSSSP(t *testing.T) {
	g := gen.PowerLaw(400, 5, 2.1, true, 41)
	want := ref.SSSP(g, 0)
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			got, stats, err := vcentric.Run(g, vcentric.SSSPProgram{Source: 0}, vcentric.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
					t.Fatalf("vertex %d: got %v want %v", v, got[v], want[v])
				}
			}
			if stats.Updates == 0 {
				t.Error("no updates recorded")
			}
		})
	}
}

func TestVertexCentricCC(t *testing.T) {
	g := gen.SmallWorld(300, 2, 0.05, false, 43)
	want := ref.CC(g)
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			got, _, err := vcentric.Run(g, vcentric.CCProgram{}, vcentric.Options{Mode: mode, Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if int64(got[v]) != want[v] {
					t.Fatalf("vertex %d: got cid %v want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestVertexCentricPageRank(t *testing.T) {
	g := gen.PowerLaw(300, 5, 2.1, false, 47)
	want := ref.PageRank(g, 0.85, 1e-9, 500)
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			got, _, err := vcentric.Run(g, vcentric.PageRankProgram{Tol: 1e-10}, vcentric.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if d := math.Abs(got[v] - want[v]); d > 1e-5 {
					t.Fatalf("vertex %d: got %v want %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestSyncCountsPerEdgeMessages pins the vertex-centric cost model: a
// star graph's center activation sends one message per edge.
func TestSyncCountsPerEdgeMessages(t *testing.T) {
	b := graph.NewBuilder(true)
	b.SetWeighted()
	for i := 1; i <= 10; i++ {
		b.AddWeightedEdge(0, graph.VertexID(i), 1)
	}
	g := b.Build()
	_, stats, err := vcentric.Run(g, vcentric.SSSPProgram{Source: 0}, vcentric.Options{Mode: vcentric.Sync})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Msgs != 10 {
		t.Errorf("want 10 per-edge messages, got %d", stats.Msgs)
	}
	if stats.Bytes != 160 {
		t.Errorf("want 160 bytes, got %d", stats.Bytes)
	}
	if stats.Supersteps != 2 {
		t.Errorf("want 2 supersteps (activate + drain), got %d", stats.Supersteps)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(false).Build()
	for _, mode := range modes() {
		got, _, err := vcentric.Run(g, vcentric.CCProgram{}, vcentric.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("%s: want empty result, got %d values", mode, len(got))
		}
	}
}

func TestUnknownMode(t *testing.T) {
	g := gen.Grid(3, 3, 1)
	if _, _, err := vcentric.Run(g, vcentric.CCProgram{}, vcentric.Options{Mode: vcentric.Mode(99)}); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
