// Package vcentric implements vertex-centric graph processing engines in
// the style of the systems the paper compares against in Table 1:
// a synchronous superstep engine (Pregel/Giraph, GraphLab-sync), an
// asynchronous engine with immediate message visibility (GraphLab-async,
// and with delta-accumulative programs, Maiter), and a hybrid engine that
// switches between the two (PowerSwitch/Hsync).
//
// Unlike the fragment-centric PIE programs of internal/core, programs
// here compute one vertex at a time, messages are generated per edge
// (combined only at the destination), and no sequential-algorithm
// optimizations (priority queues, union-find, incremental fragment
// evaluation) are available — the cost profile the paper attributes the
// Table 1 gaps to.
package vcentric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aap/internal/graph"
)

// Mode selects the engine variant.
type Mode int

// Engine variants.
const (
	// Sync runs Pregel-style supersteps with a global barrier.
	Sync Mode = iota
	// Async gives every shard immediate access to incoming messages.
	Async
	// HsyncMode runs a synchronous warm-up phase and switches to
	// asynchronous execution, the coarse-grained PowerSwitch strategy.
	HsyncMode
)

// String returns the conventional name of the engine variant.
func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case Async:
		return "async"
	case HsyncMode:
		return "hsync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Program is a vertex program over float64 vertex values, the common
// denominator of the Table 1 workloads (distances, component ids, rank
// deltas).
type Program interface {
	// Init returns the initial value of vertex v and whether v is active
	// in the initial superstep.
	Init(g *graph.Graph, v int32) (val float64, active bool)
	// Compute updates an active vertex. msg is the combined incoming
	// message; initial marks the activation pass, where msg is
	// meaningless. It returns the new value, the basis handed to Message
	// for outgoing edges (the new distance for SSSP, the delta for
	// accumulative PageRank), and whether to notify out-neighbors.
	Compute(g *graph.Graph, v int32, val, msg float64, initial bool) (newVal, out float64, send bool)
	// Message returns the value sent to neighbor u over an edge of
	// weight w, given the out basis returned by Compute.
	Message(g *graph.Graph, v, u int32, w, out float64) float64
	// Combine folds two messages for the same destination; it must be
	// associative and commutative.
	Combine(a, b float64) float64
	// Finalize maps the converged internal value to the reported value.
	Finalize(g *graph.Graph, v int32, val float64) float64
}

// Stats reports the cost of a run.
type Stats struct {
	Mode       string
	Seconds    float64
	Supersteps int
	Msgs       int64 // per-edge messages before combining
	Bytes      int64 // 16 bytes per message (dst + value)
	Updates    int64 // vertex Compute invocations
}

// Options configures a run.
type Options struct {
	Mode   Mode
	Shards int // parallel shards; default 4
	// MaxSupersteps bounds sync runs; default 1 << 20.
	MaxSupersteps int
	// HsyncWindow is the number of synchronous supersteps before the
	// hybrid engine switches to asynchronous execution; default 5.
	HsyncWindow int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 1 << 20
	}
	if o.HsyncWindow <= 0 {
		o.HsyncWindow = 5
	}
	return o
}

const msgBytes = 16

// state is the engine-independent computation state, letting the hybrid
// engine hand a partially converged run from one engine to the other:
// current values plus the combined pending real message per vertex.
type state struct {
	vals []float64
	msg  []float64
	has  []bool
}

// Run executes prog on g and returns the finalized vertex values.
func Run(g *graph.Graph, prog Program, opts Options) ([]float64, Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	n := g.NumVertices()
	st := &state{vals: make([]float64, n), msg: make([]float64, n), has: make([]bool, n)}
	for v := 0; v < n; v++ {
		st.vals[v], _ = prog.Init(g, int32(v))
	}
	var stats Stats
	switch opts.Mode {
	case Sync:
		stats = runSync(g, prog, opts, st, opts.MaxSupersteps, true)
	case Async:
		stats = runAsync(g, prog, opts, st, true)
	case HsyncMode:
		s1 := runSync(g, prog, opts, st, opts.HsyncWindow, true)
		s2 := runAsync(g, prog, opts, st, false)
		stats = Stats{
			Supersteps: s1.Supersteps,
			Msgs:       s1.Msgs + s2.Msgs,
			Bytes:      s1.Bytes + s2.Bytes,
			Updates:    s1.Updates + s2.Updates,
		}
	default:
		return nil, Stats{}, fmt.Errorf("vcentric: unknown mode %d", opts.Mode)
	}
	stats.Mode = opts.Mode.String()
	stats.Seconds = time.Since(start).Seconds()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = prog.Finalize(g, int32(v), st.vals[v])
	}
	return out, stats, nil
}

// computeVertex runs Compute for one vertex and routes the per-edge
// messages through emit; it returns (messages generated, updated).
func computeVertex(g *graph.Graph, prog Program, st *state, v int32, msg float64, initial bool, emit func(u int32, m float64)) int64 {
	newVal, outBasis, send := prog.Compute(g, v, st.vals[v], msg, initial)
	st.vals[v] = newVal
	if !send {
		return 0
	}
	ws := g.OutWeights(v)
	var n int64
	for i, u := range g.Out(v) {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		emit(u, prog.Message(g, v, u, w, outBasis))
		n++
	}
	return n
}

// runSync is the Pregel loop: every superstep processes all vertices with
// pending messages (or, in the initial superstep, all active vertices),
// generates per-edge messages, and synchronizes at a global barrier. It
// mutates st and stops after maxSteps supersteps or quiescence.
func runSync(g *graph.Graph, prog Program, opts Options, st *state, maxSteps int, initial bool) Stats {
	n := g.NumVertices()
	next := make([]float64, n)
	nextHas := make([]bool, n)
	var stats Stats
	var mu sync.Mutex

	if initial {
		for v := 0; v < n; v++ {
			_, active := prog.Init(g, int32(v))
			st.has[v] = active
		}
	}
	first := initial
	for step := 0; step < maxSteps; step++ {
		anyActive := false
		for v := 0; v < n; v++ {
			if st.has[v] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
		stats.Supersteps++
		var wg sync.WaitGroup
		per := (n + opts.Shards - 1) / opts.Shards
		isInit := first
		for s := 0; s < opts.Shards; s++ {
			lo, hi := s*per, (s+1)*per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				local := make(map[int32]float64)
				var localMsgs, localUpdates int64
				for v := int32(lo); v < int32(hi); v++ {
					if !st.has[v] {
						continue
					}
					localUpdates++
					localMsgs += computeVertex(g, prog, st, v, st.msg[v], isInit, func(u int32, m float64) {
						if old, ok := local[u]; ok {
							local[u] = prog.Combine(old, m)
						} else {
							local[u] = m
						}
					})
				}
				mu.Lock()
				for u, m := range local {
					if nextHas[u] {
						next[u] = prog.Combine(next[u], m)
					} else {
						next[u] = m
						nextHas[u] = true
					}
				}
				stats.Msgs += localMsgs
				stats.Updates += localUpdates
				mu.Unlock()
			}(lo, hi)
		}
		wg.Wait()
		first = false
		st.msg, next = next, st.msg
		st.has, nextHas = nextHas, st.has
		for v := range next {
			next[v] = 0
			nextHas[v] = false
		}
	}
	stats.Bytes = stats.Msgs * msgBytes
	return stats
}

// shard is one asynchronous worker: it owns the vertices v with
// v mod Shards == id and keeps a combined pending message per vertex.
type shard struct {
	id      int
	mu      sync.Mutex
	pending map[int32]float64
	notify  chan struct{}
}

// put delivers a message, combining with any pending one for the same
// vertex. pendingCount tracks pending map entries (not raw messages), so
// it is incremented only on insertion; the processing loop decrements it
// once per entry.
func (s *shard) put(v int32, m float64, combine func(a, b float64) float64, pendingCount *atomic.Int64) {
	s.mu.Lock()
	if old, ok := s.pending[v]; ok {
		s.pending[v] = combine(old, m)
	} else {
		s.pending[v] = m
		pendingCount.Add(1)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *shard) take() map[int32]float64 {
	s.mu.Lock()
	p := s.pending
	s.pending = make(map[int32]float64)
	s.mu.Unlock()
	return p
}

// runAsync processes vertices shard-parallel with immediate message
// visibility. When initial is true, every active vertex is computed once
// in an activation pass before the message loop; otherwise the pending
// messages carried in st seed the queues. Termination: the run ends when
// every shard is idle and the global pending count is zero.
func runAsync(g *graph.Graph, prog Program, opts Options, st *state, initial bool) Stats {
	shards := make([]*shard, opts.Shards)
	for i := range shards {
		shards[i] = &shard{id: i, pending: make(map[int32]float64), notify: make(chan struct{}, 1)}
	}
	shardOf := func(v int32) *shard { return shards[int(v)%opts.Shards] }
	var pendingCount atomic.Int64
	var msgs, updates atomic.Int64

	if initial {
		// Activation pass, shard-parallel: each shard computes its own
		// active vertices once and seeds the queues with real messages.
		var wg sync.WaitGroup
		wg.Add(len(shards))
		for i := range shards {
			go func(id int) {
				defer wg.Done()
				for v := int32(id); v < int32(g.NumVertices()); v += int32(opts.Shards) {
					if _, active := prog.Init(g, v); !active {
						continue
					}
					updates.Add(1)
					msgs.Add(computeVertex(g, prog, st, v, 0, true, func(u int32, m float64) {
						shardOf(u).put(u, m, prog.Combine, &pendingCount)
					}))
				}
			}(i)
		}
		wg.Wait()
	} else {
		for v := 0; v < g.NumVertices(); v++ {
			if st.has[v] {
				shardOf(int32(v)).put(int32(v), st.msg[v], prog.Combine, &pendingCount)
				st.has[v] = false
				st.msg[v] = 0
			}
		}
	}

	var idle atomic.Int32
	done := make(chan struct{})
	var closeOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, s := range shards {
		go func(s *shard) {
			defer wg.Done()
			isIdle := false
			for {
				batch := s.take()
				if len(batch) == 0 {
					if !isIdle {
						isIdle = true
						if idle.Add(1) == int32(len(shards)) && pendingCount.Load() == 0 {
							closeOnce.Do(func() { close(done) })
						}
					}
					select {
					case <-s.notify:
						if isIdle {
							isIdle = false
							idle.Add(-1)
						}
						continue
					case <-done:
						return
					}
				}
				for v, m := range batch {
					pendingCount.Add(-1)
					updates.Add(1)
					msgs.Add(computeVertex(g, prog, st, v, m, false, func(u int32, out float64) {
						shardOf(u).put(u, out, prog.Combine, &pendingCount)
					}))
				}
			}
		}(s)
	}
	wg.Wait()
	stats := Stats{Msgs: msgs.Load(), Updates: updates.Load()}
	stats.Bytes = stats.Msgs * msgBytes
	return stats
}
