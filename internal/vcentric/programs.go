package vcentric

import (
	"math"

	"aap/internal/graph"
)

// SSSPProgram is vertex-centric single-source shortest paths: values are
// tentative distances, messages are candidate distances, min-combined.
// Without a priority queue the label-correcting behavior wastes work on
// long-path graphs, the penalty the paper measures on traffic.
type SSSPProgram struct {
	// Source is the external id of the source vertex.
	Source graph.VertexID
}

// Init implements Program: only the source is active.
func (p SSSPProgram) Init(g *graph.Graph, v int32) (float64, bool) {
	if s, ok := g.IndexOf(p.Source); ok && s == v {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program.
func (p SSSPProgram) Compute(_ *graph.Graph, _ int32, val, msg float64, initial bool) (float64, float64, bool) {
	if initial {
		return val, val, true
	}
	if msg < val {
		return msg, msg, true
	}
	return val, 0, false
}

// Message implements Program: candidate distance through the edge.
func (p SSSPProgram) Message(_ *graph.Graph, _, _ int32, w, out float64) float64 { return out + w }

// Combine implements Program.
func (p SSSPProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

// Finalize implements Program.
func (p SSSPProgram) Finalize(_ *graph.Graph, _ int32, val float64) float64 { return val }

// CCProgram is vertex-centric connected components by min-label
// propagation. Run it on an undirected graph so Out covers both
// directions. Values are component ids, initially the external vertex id.
type CCProgram struct{}

// Init implements Program: every vertex is active with its own id.
func (CCProgram) Init(g *graph.Graph, v int32) (float64, bool) {
	return float64(g.IDOf(v)), true
}

// Compute implements Program.
func (CCProgram) Compute(_ *graph.Graph, _ int32, val, msg float64, initial bool) (float64, float64, bool) {
	if initial {
		return val, val, true
	}
	if msg < val {
		return msg, msg, true
	}
	return val, 0, false
}

// Message implements Program: propagate the candidate component id.
func (CCProgram) Message(_ *graph.Graph, _, _ int32, _ float64, out float64) float64 { return out }

// Combine implements Program.
func (CCProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

// Finalize implements Program.
func (CCProgram) Finalize(_ *graph.Graph, _ int32, val float64) float64 { return val }

// PageRankProgram is the delta-accumulative PageRank of Maiter: values
// are accumulated scores, messages carry rank deltas combined by
// addition, and propagation stops below Tol. The fixpoint matches the
// paper's P_v = Σ_paths p(v) + (1-d) formulation.
type PageRankProgram struct {
	// Damping is d (0.85 when zero) and Tol the propagation threshold
	// (1e-6 when zero).
	Damping float64
	Tol     float64
}

func (p PageRankProgram) params() (float64, float64) {
	d, tol := p.Damping, p.Tol
	if d == 0 {
		d = 0.85
	}
	if tol == 0 {
		tol = 1e-6
	}
	return d, tol
}

// Init implements Program: score 0, all vertices active.
func (p PageRankProgram) Init(_ *graph.Graph, _ int32) (float64, bool) { return 0, true }

// Compute implements Program: fold the incoming delta into the score and
// forward it if above tolerance; the initial pass injects 1-d.
func (p PageRankProgram) Compute(g *graph.Graph, v int32, val, msg float64, initial bool) (float64, float64, bool) {
	d, tol := p.params()
	delta := msg
	if initial {
		delta = 1 - d
	}
	newVal := val + delta
	if delta <= tol || g.OutDegree(v) == 0 {
		return newVal, 0, false
	}
	return newVal, delta, true
}

// Message implements Program: each out-neighbor receives d*delta/N.
func (p PageRankProgram) Message(g *graph.Graph, v, _ int32, _ float64, out float64) float64 {
	d, _ := p.params()
	return d * out / float64(g.OutDegree(v))
}

// Combine implements Program.
func (PageRankProgram) Combine(a, b float64) float64 { return a + b }

// Finalize implements Program.
func (PageRankProgram) Finalize(_ *graph.Graph, _ int32, val float64) float64 { return val }
