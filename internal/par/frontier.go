// Frontier/worklist primitives for the intra-fragment parallel compute
// plane: a sharded frontier with a generation-stamped dedup set, work-
// balanced chunking of item lists for edge-range sweeps over CSR rows,
// and the atomic-min hooks the kernels relax with.
//
// The contract every kernel built on these primitives relies on:
//
//   - Marks dedups concurrent Add calls, so a slot enters the next
//     frontier at most once per round regardless of how many shards
//     discover it.
//   - Advance concatenates the per-shard staging lists in shard order,
//     so for a fixed shard count the frontier sequence is deterministic;
//     kernels that need shard-count independence sort the result.
//   - The atomic mins are exact (they install one of their operands, no
//     arithmetic), so min-fixpoint kernels (SSSP, CC) converge to the
//     same bits under any interleaving.
package par

import (
	"math"
	"slices"
	"sync/atomic"
)

// kernelGrainEdges is the per-shard work floor of an intra-fragment
// kernel round: below it, goroutine fan-out costs more than the sweep.
const kernelGrainEdges = 1 << 14

// Kernel returns the shard count for an intra-fragment kernel pass over
// `work` units (edges to scan, contributions to apply). It respects
// Override like every other fan-out decision in the repository.
func Kernel(work int64) int { return Procs(work, kernelGrainEdges) }

// Marks is a generation-stamped membership set over [0, n): Reset clears
// it in O(1) by bumping the generation, and TryMark is an atomic
// test-and-set so concurrent markers agree on a single winner. It
// replaces a per-round []bool + clear loop on kernel hot paths.
type Marks struct {
	gen []atomic.Uint32
	cur uint32
}

// NewMarks returns an empty mark set over [0, n).
func NewMarks(n int) *Marks {
	return &Marks{gen: make([]atomic.Uint32, n), cur: 1}
}

// Len returns the domain size.
func (m *Marks) Len() int { return len(m.gen) }

// Reset unmarks everything in O(1). Not safe concurrently with the
// other methods: call it between parallel phases.
func (m *Marks) Reset() {
	m.cur++
	if m.cur == 0 { // generation wrapped: invalidate every stamp
		for i := range m.gen {
			m.gen[i].Store(0)
		}
		m.cur = 1
	}
}

// TryMark marks i and reports whether this call was the first to do so
// since the last Reset. Safe for concurrent use.
func (m *Marks) TryMark(i int32) bool {
	g := &m.gen[i]
	for {
		old := g.Load()
		if old == m.cur {
			return false
		}
		if g.CompareAndSwap(old, m.cur) {
			return true
		}
	}
}

// Marked reports whether i is marked.
func (m *Marks) Marked(i int32) bool { return m.gen[i].Load() == m.cur }

// Unmark clears i. cur is always >= 1, so cur-1 is a valid "stale"
// stamp.
func (m *Marks) Unmark(i int32) { m.gen[i].Store(m.cur - 1) }

// Frontier is a sharded worklist over dense int32 slots. During a round
// the current frontier is read-only; shard w stages discoveries for the
// next round through Add(w, ·), deduplicated by a Marks set, and Advance
// splices the staging lists into the next current frontier in shard
// order.
type Frontier struct {
	marks *Marks
	cur   []int32
	next  [][]int32
}

// NewFrontier returns a frontier over slots [0, n) with staging capacity
// for up to `shards` concurrent producers.
func NewFrontier(n, shards int) *Frontier {
	if shards < 1 {
		shards = 1
	}
	return &Frontier{marks: NewMarks(n), next: make([][]int32, shards)}
}

// EnsureShards grows the staging array so shards [0, k) are valid
// producers. Not safe concurrently with Add.
func (f *Frontier) EnsureShards(k int) {
	for len(f.next) < k {
		f.next = append(f.next, nil)
	}
}

// Add stages slot v for the next round on shard w's list and reports
// whether v was newly staged. Concurrent calls with distinct w are safe;
// the marks arbitrate duplicates across shards.
func (f *Frontier) Add(w int, v int32) bool {
	if !f.marks.TryMark(v) {
		return false
	}
	f.next[w] = append(f.next[w], v)
	return true
}

// Cur returns the current frontier. Read-only during a round.
func (f *Frontier) Cur() []int32 { return f.cur }

// Advance splices the staged shard lists into the current frontier in
// shard order, clears the dedup set, and returns the new frontier. With
// sorted=true the result is sorted ascending, making the frontier order
// canonical (independent of the shard count that produced it) — the
// ordering contract deterministic-sum kernels (PageRank) need. Not safe
// concurrently with Add.
func (f *Frontier) Advance(sorted bool) []int32 {
	f.cur = f.cur[:0]
	for w := range f.next {
		f.cur = append(f.cur, f.next[w]...)
		f.next[w] = f.next[w][:0]
	}
	if sorted {
		slices.Sort(f.cur)
	}
	f.marks.Reset()
	return f.cur
}

// ChunksByWork splits items into at most p contiguous chunks of
// near-equal total weight and returns the chunk boundaries b
// (b[0] = 0, b[len(b)-1] = len(items), len(b) = p+1; empty chunks are
// possible under extreme skew). buf is reused when it has capacity, so
// steady-state rounds plan their sweep without allocating. weight must
// be non-negative.
func ChunksByWork(items []int32, p int, buf []int, weight func(int32) int64) []int {
	b := buf[:0]
	b = append(b, 0)
	if p < 1 {
		p = 1
	}
	var total int64
	for _, it := range items {
		total += weight(it)
	}
	if p == 1 || total == 0 {
		for len(b) < p+1 {
			b = append(b, len(items))
		}
		return b
	}
	var cum int64
	j := 1
	for i, it := range items {
		cum += weight(it)
		// Place boundary j after item i once the running weight crosses
		// j/p of the total; several boundaries may collapse onto one
		// index when a single item dominates.
		for j < p && cum*int64(p) >= total*int64(j) {
			b = append(b, i+1)
			j++
		}
	}
	for len(b) < p+1 {
		b = append(b, len(items))
	}
	return b
}

// MinInt64 atomically lowers *a to v and reports whether it decreased.
func MinInt64(a *atomic.Int64, v int64) bool {
	for {
		old := a.Load()
		if old <= v {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

// MinInt32 atomically lowers *a to v and reports whether it decreased.
func MinInt32(a *atomic.Int32, v int32) bool {
	for {
		old := a.Load()
		if old <= v {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

// MinFloat64Bits atomically lowers the float64 stored as bits in *a to
// v and reports whether it decreased. The min is exact — it installs
// v's bits, no arithmetic — so concurrent relaxations settle on the
// same value any sequential order would.
func MinFloat64Bits(a *atomic.Uint64, v float64) bool {
	nb := math.Float64bits(v)
	for {
		ob := a.Load()
		if math.Float64frombits(ob) <= v {
			return false
		}
		if a.CompareAndSwap(ob, nb) {
			return true
		}
	}
}
