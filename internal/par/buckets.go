// Bucketed (delta-stepping) frontier for priority-ordered kernels.
//
// Buckets extends the Frontier/Marks worklist machinery with a priority
// dimension: slots are staged into distance-range buckets of width delta
// and drained in bucket order, so a kernel processes "almost smallest
// first" at full shard parallelism instead of re-relaxing in arbitrary
// (Bellman-Ford) order. The structure is deliberately lazy — it never
// deletes an entry eagerly:
//
//   - where[slot] holds the lowest bucket the slot is currently staged
//     in (CAS-min, like the kernels' atomic distance mins). An Add that
//     does not lower it is a duplicate and stages nothing.
//   - An entry whose bucket no longer matches where[slot] is stale (the
//     slot was re-staged into a lower bucket when its priority improved)
//     and is dropped when its bucket is taken.
//   - Priorities only decrease (the kernels relax with exact mins), so a
//     slot's live entry can only move to lower buckets, and a drained
//     bucket never needs revisiting within a sweep.
//
// The contract mirrors Frontier's: TakeCur splices per-shard staging
// lists in shard order (deterministic for a fixed shard count), and the
// drain order cannot change the result of an exact-min fixpoint kernel —
// only how much work it wastes. Add is safe for concurrent calls with
// distinct shard indexes during a parallel phase; TakeCur, Advance and
// Restart are phase boundaries and must run single-threaded.
package par

import (
	"math"
	"sync/atomic"
)

// bucketRing is the number of directly addressable buckets: entries
// within [base, base+bucketRing) land in a cyclic ring slot, entries
// beyond it spill to per-shard overflow lists and redistribute when the
// window catches up (the classic cyclic-bucket-array trick, so a tiny
// delta cannot force an unbounded bucket array).
const bucketRing = 512

// unstagedBucket marks a slot not currently staged in any bucket.
const unstagedBucket = math.MaxInt32

// overEntry is one spilled staging: the slot and the bucket it was
// bound for when staged.
type overEntry struct {
	slot   int32
	bucket int32
}

// Buckets is a sharded bucketed worklist over dense int32 slots in
// [0, n) with float64 priorities.
type Buckets struct {
	delta  float64
	where  []atomic.Int32 // lowest staged bucket per slot; unstagedBucket when idle
	ring   [][]int32      // (bucket%bucketRing)*stride + shard -> staged slots
	counts []atomic.Int32 // staged-entry count per ring bucket (Advance skip hint)
	over   [][]overEntry  // per-shard far entries (bucket outside the ring window)
	stride int            // shard capacity of the ring rows
	base   int            // current (lowest undrained) bucket index
}

// NewBuckets returns an empty bucketed frontier over slots [0, n) with
// bucket width delta (must be positive) and staging capacity for up to
// `shards` concurrent producers.
func NewBuckets(n, shards int, delta float64) *Buckets {
	if shards < 1 {
		shards = 1
	}
	bk := &Buckets{
		delta:  delta,
		where:  make([]atomic.Int32, n),
		ring:   make([][]int32, bucketRing*shards),
		counts: make([]atomic.Int32, bucketRing),
		over:   make([][]overEntry, shards),
		stride: shards,
	}
	for i := range bk.where {
		bk.where[i].Store(unstagedBucket)
	}
	return bk
}

// Delta returns the bucket width.
func (bk *Buckets) Delta() float64 { return bk.delta }

// Cur returns the current bucket index.
func (bk *Buckets) Cur() int { return bk.base }

// EnsureShards grows the staging arrays so shards [0, k) are valid
// producers. Not safe concurrently with Add.
func (bk *Buckets) EnsureShards(k int) {
	if k <= bk.stride {
		return
	}
	ring := make([][]int32, bucketRing*k)
	for b := 0; b < bucketRing; b++ {
		copy(ring[b*k:], bk.ring[b*bk.stride:(b+1)*bk.stride])
	}
	bk.ring = ring
	for len(bk.over) < k {
		bk.over = append(bk.over, nil)
	}
	bk.stride = k
}

// BucketFor maps a priority to its bucket index. Priorities at or below
// zero map to bucket 0; indexes clamp below the unstaged sentinel, so a
// huge priority/delta ratio degrades to coarser ordering, never to a
// wrong result.
func (bk *Buckets) BucketFor(pri float64) int {
	if !(pri > 0) {
		return 0
	}
	b := pri / bk.delta
	if b >= unstagedBucket-1 {
		return unstagedBucket - 1
	}
	return int(b)
}

// Add stages slot with the given priority on shard w's lists and reports
// whether it was staged (false: the slot is already staged at the same
// or a lower bucket). Buckets below the current one clamp to it — with
// monotonically decreasing priorities that only happens for seeds, and
// processing a slot early never changes an exact-min fixpoint. Safe for
// concurrent calls with distinct w.
func (bk *Buckets) Add(w int, slot int32, pri float64) bool {
	b := bk.BucketFor(pri)
	if b < bk.base {
		b = bk.base
	}
	if !MinInt32(&bk.where[slot], int32(b)) {
		return false
	}
	if b-bk.base >= bucketRing {
		bk.over[w] = append(bk.over[w], overEntry{slot: slot, bucket: int32(b)})
		return true
	}
	bk.ring[(b%bucketRing)*bk.stride+w] = append(bk.ring[(b%bucketRing)*bk.stride+w], slot)
	bk.counts[b%bucketRing].Add(1)
	return true
}

// TakeCur drains the current bucket's staged slots into dst (reused when
// it has capacity) and unstages them, dropping stale and duplicate
// entries. An empty result means the bucket is drained; re-staging
// during a subsequent parallel phase re-fills it (light-edge
// re-insertion). Not safe concurrently with Add.
func (bk *Buckets) TakeCur(dst []int32) []int32 {
	dst = dst[:0]
	r := bk.base % bucketRing
	if bk.counts[r].Load() == 0 {
		return dst
	}
	bk.counts[r].Store(0)
	cur := int32(bk.base)
	for w := 0; w < bk.stride; w++ {
		lst := bk.ring[r*bk.stride+w]
		for _, s := range lst {
			if bk.where[s].Load() == cur {
				bk.where[s].Store(unstagedBucket)
				dst = append(dst, s)
			}
		}
		bk.ring[r*bk.stride+w] = lst[:0]
	}
	return dst
}

// Advance moves to the next nonempty bucket and reports whether one
// exists; false means the structure is empty (entry counts are hints, so
// a true return can still yield an empty TakeCur when every entry of the
// found bucket was stale — callers just advance again). When the ring
// window is exhausted it redistributes the overflow lists: base jumps to
// the lowest live spilled bucket and every spilled entry now inside the
// window moves into the ring. Not safe concurrently with Add.
func (bk *Buckets) Advance() bool {
	for i := bk.base + 1; i < bk.base+bucketRing; i++ {
		if bk.counts[i%bucketRing].Load() > 0 {
			bk.base = i
			return true
		}
	}
	minb := -1
	for w := range bk.over {
		keep := bk.over[w][:0]
		for _, e := range bk.over[w] {
			if bk.where[e.slot].Load() != e.bucket {
				continue // re-staged lower and already drained: stale
			}
			keep = append(keep, e)
			if minb < 0 || int(e.bucket) < minb {
				minb = int(e.bucket)
			}
		}
		bk.over[w] = keep
	}
	if minb < 0 {
		return false
	}
	bk.base = minb
	for w := range bk.over {
		keep := bk.over[w][:0]
		for _, e := range bk.over[w] {
			if int(e.bucket)-bk.base >= bucketRing {
				keep = append(keep, e)
				continue
			}
			r := int(e.bucket) % bucketRing
			bk.ring[r*bk.stride+w] = append(bk.ring[r*bk.stride+w], e.slot)
			bk.counts[r].Add(1)
		}
		bk.over[w] = keep
	}
	return true
}

// Restart re-aims the window at the bucket of minPri so a drained
// structure can be re-seeded below the old base (incremental rounds
// re-seed from message distances). It must only be called when the
// structure is empty.
func (bk *Buckets) Restart(minPri float64) { bk.base = bk.BucketFor(minPri) }
