package par

import (
	"math"
	"slices"
	"sort"
	"testing"
)

// drainAll drains bk completely, returning the slots of every taken
// batch in order, asserting bucket indexes never decrease.
func drainAll(t *testing.T, bk *Buckets) [][]int32 {
	t.Helper()
	var out [][]int32
	last := -1
	var items []int32
	for {
		for {
			items = bk.TakeCur(items)
			if len(items) == 0 {
				break
			}
			if bk.Cur() < last {
				t.Fatalf("bucket order regressed: %d after %d", bk.Cur(), last)
			}
			last = bk.Cur()
			out = append(out, append([]int32(nil), items...))
		}
		if !bk.Advance() {
			return out
		}
	}
}

func TestBucketsBucketFor(t *testing.T) {
	bk := NewBuckets(4, 1, 2.5)
	cases := []struct {
		pri  float64
		want int
	}{
		{0, 0}, {-3, 0}, {math.NaN(), 0}, {1.2, 0}, {2.4, 0}, {2.5, 1}, {7.6, 3},
	}
	for _, c := range cases {
		if got := bk.BucketFor(c.pri); got != c.want {
			t.Fatalf("BucketFor(%v) = %d, want %d", c.pri, got, c.want)
		}
	}
	if got := bk.BucketFor(1e300); got != unstagedBucket-1 {
		t.Fatalf("huge priority bucket = %d, want clamp %d", got, unstagedBucket-1)
	}
}

// TestBucketsDrainOrder stages slots with scattered priorities and
// checks they come back grouped by bucket, lowest bucket first, each
// slot exactly once.
func TestBucketsDrainOrder(t *testing.T) {
	bk := NewBuckets(10, 2, 1)
	pris := []float64{7.2, 0.1, 3.3, 3.9, 0.8, 12.0, 7.9, 0.5, 3.0, 12.9}
	for s, p := range pris {
		bk.Add(s%2, int32(s), p)
	}
	var got []int32
	for _, batch := range drainAll(t, bk) {
		got = append(got, batch...)
	}
	if len(got) != len(pris) {
		t.Fatalf("drained %d slots, want %d", len(got), len(pris))
	}
	// Buckets must come out in priority-bucket order.
	for i := 1; i < len(got); i++ {
		if int(pris[got[i-1]]) > int(pris[got[i]]) {
			t.Fatalf("slot %d (bucket %d) drained before slot %d (bucket %d)",
				got[i-1], int(pris[got[i-1]]), got[i], int(pris[got[i]]))
		}
	}
	sorted := append([]int32(nil), got...)
	slices.Sort(sorted)
	for i, s := range sorted {
		if s != int32(i) {
			t.Fatalf("slot %d missing or duplicated: %v", i, got)
		}
	}
}

// TestBucketsDedupAndStale re-stages a slot at a lower bucket and checks
// the higher entry is dropped, and duplicate same-bucket adds stage once.
func TestBucketsDedupAndStale(t *testing.T) {
	bk := NewBuckets(4, 1, 1)
	if !bk.Add(0, 1, 9.5) {
		t.Fatal("first add rejected")
	}
	if bk.Add(0, 1, 9.7) {
		t.Fatal("same-bucket duplicate staged")
	}
	if !bk.Add(0, 1, 2.5) {
		t.Fatal("improving add rejected")
	}
	if bk.Add(0, 1, 4.0) {
		t.Fatal("worse-bucket add staged")
	}
	bk.Add(0, 2, 0.5)
	batches := drainAll(t, bk)
	var flat []int32
	for _, b := range batches {
		flat = append(flat, b...)
	}
	want := []int32{2, 1} // bucket 0 then bucket 2; the bucket-9 entry is stale
	if !slices.Equal(flat, want) {
		t.Fatalf("drained %v, want %v", flat, want)
	}
}

// TestBucketsReinsertCurrent mimics light-edge settling: a slot taken
// from the current bucket is re-staged into the same bucket and must be
// taken again before the bucket counts as drained.
func TestBucketsReinsertCurrent(t *testing.T) {
	bk := NewBuckets(4, 1, 10)
	bk.Add(0, 0, 1)
	items := bk.TakeCur(nil)
	if len(items) != 1 || items[0] != 0 {
		t.Fatalf("first take = %v", items)
	}
	if !bk.Add(0, 0, 2) { // still bucket 0: re-insertion after improvement
		t.Fatal("re-insertion rejected")
	}
	items = bk.TakeCur(items)
	if len(items) != 1 || items[0] != 0 {
		t.Fatalf("re-take = %v", items)
	}
	if items = bk.TakeCur(items); len(items) != 0 {
		t.Fatalf("drained bucket returned %v", items)
	}
	if bk.Advance() {
		t.Fatal("empty structure advanced")
	}
}

// TestBucketsOverflow stages priorities far beyond the ring window so
// entries spill and redistribute, including a spilled entry that went
// stale before redistribution.
func TestBucketsOverflow(t *testing.T) {
	bk := NewBuckets(6, 1, 1)
	far := float64(bucketRing) * 40
	bk.Add(0, 0, 0.5)
	bk.Add(0, 1, far)      // spills
	bk.Add(0, 2, 3*far)    // spills further
	bk.Add(0, 3, far+0.25) // same spilled bucket region
	bk.Add(0, 4, 2.5)      // in window
	if got := len(bk.over[0]); got != 3 {
		t.Fatalf("overflow holds %d entries, want 3", got)
	}
	bk.Add(0, 2, 1.5) // improves the far slot into the window: spill goes stale

	batches := drainAll(t, bk)
	var flat []int32
	for _, b := range batches {
		flat = append(flat, b...)
	}
	want := []int32{0, 2, 4, 1, 3} // buckets 0, 1, 2, far, far
	if !slices.Equal(flat, want) {
		t.Fatalf("drained %v, want %v", flat, want)
	}
}

// TestBucketsRestart drains, then re-seeds below the old base like an
// incremental round does.
func TestBucketsRestart(t *testing.T) {
	bk := NewBuckets(4, 1, 1)
	bk.Add(0, 3, 100)
	drainAll(t, bk)
	bk.Restart(5)
	if bk.Cur() != 5 {
		t.Fatalf("base after restart = %d, want 5", bk.Cur())
	}
	bk.Add(0, 1, 5.5)
	bk.Add(0, 2, 7.5)
	var flat []int32
	for _, b := range drainAll(t, bk) {
		flat = append(flat, b...)
	}
	if !slices.Equal(flat, []int32{1, 2}) {
		t.Fatalf("post-restart drain %v", flat)
	}
}

// TestBucketsSeedBelowBase clamps a seed below the current base into the
// base bucket instead of losing it.
func TestBucketsSeedBelowBase(t *testing.T) {
	bk := NewBuckets(4, 1, 1)
	bk.Restart(50)
	bk.Add(0, 0, 3) // bucket 3 < base 50: clamps to 50
	var flat []int32
	for _, b := range drainAll(t, bk) {
		flat = append(flat, b...)
	}
	if !slices.Equal(flat, []int32{0}) {
		t.Fatalf("clamped seed drain %v", flat)
	}
}

// TestBucketsConcurrentAdd hammers Add from several shards (exercised
// under -race in CI): every slot must come out exactly once with its
// lowest priority's bucket respected.
func TestBucketsConcurrentAdd(t *testing.T) {
	const n = 4096
	const shards = 8
	bk := NewBuckets(n, shards, 1)
	pri := func(s int32) float64 { return float64(s%97) + 0.5 }
	Do(shards, func(w int) {
		for s := int32(0); s < n; s++ {
			// Every shard tries every slot; MinInt32 arbitrates.
			bk.Add(w, s, pri(s)+float64(w)) // shard 0 offers the best priority
		}
	})
	var got []int32
	lastBucket := -1
	var items []int32
	for {
		for {
			items = bk.TakeCur(items)
			if len(items) == 0 {
				break
			}
			for _, s := range items {
				if want := bk.BucketFor(pri(s)); bk.Cur() > want {
					t.Fatalf("slot %d drained at bucket %d, best stage was %d", s, bk.Cur(), want)
				}
			}
			if bk.Cur() < lastBucket {
				t.Fatalf("bucket order regressed")
			}
			lastBucket = bk.Cur()
			got = append(got, items...)
		}
		if !bk.Advance() {
			break
		}
	}
	if len(got) != n {
		t.Fatalf("drained %d slots, want %d", len(got), n)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, s := range got {
		if s != int32(i) {
			t.Fatalf("slot %d missing/duplicated", i)
		}
	}
}

// TestBucketsEnsureShards grows mid-flight without losing staged work.
func TestBucketsEnsureShards(t *testing.T) {
	bk := NewBuckets(8, 1, 1)
	bk.Add(0, 0, 0.5)
	bk.Add(0, 1, 5.5)
	bk.EnsureShards(4)
	bk.Add(3, 2, 5.25)
	var flat []int32
	for _, b := range drainAll(t, bk) {
		flat = append(flat, b...)
	}
	if !slices.Equal(flat, []int32{0, 1, 2}) {
		t.Fatalf("post-grow drain %v", flat)
	}
}
