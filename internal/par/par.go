// Package par is the tiny fan-out toolbox shared by the ingest
// pipeline's parallel stages (graph CSR construction, partition border
// sweeps): pick a worker count proportional to the work, run a function
// across workers, wait.
package par

import (
	"runtime"
	"sync"
)

// Override forces the worker count returned by Procs when nonzero.
// Tests use it to exercise multi-shard code paths on single-core
// machines; production code leaves it zero.
var Override int

// Procs returns the worker count for `work` units of sharded work,
// adding a worker only per `grain` units so tiny inputs stay
// single-threaded, capped at GOMAXPROCS.
func Procs(work int64, grain int) int {
	if Override > 0 {
		return Override
	}
	p := runtime.GOMAXPROCS(0)
	if lim := 1 + int(work/int64(grain)); p > lim {
		p = lim
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Do runs fn(0), …, fn(p-1) concurrently and waits for all of them.
func Do(p int, fn func(worker int)) {
	if p <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
