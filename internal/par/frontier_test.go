package par

import (
	"math"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
)

// TestMarksDedupConcurrent: many goroutines racing TryMark on the same
// slots must elect exactly one winner per slot per generation.
func TestMarksDedupConcurrent(t *testing.T) {
	const n, workers, trials = 256, 8, 50
	m := NewMarks(n)
	for trial := 0; trial < trials; trial++ {
		var wins atomic.Int64
		Do(workers, func(int) {
			for v := int32(0); v < n; v++ {
				if m.TryMark(v) {
					wins.Add(1)
				}
			}
		})
		if wins.Load() != n {
			t.Fatalf("trial %d: %d wins, want %d", trial, wins.Load(), n)
		}
		m.Reset()
	}
}

// TestMarksReset: Reset clears membership in O(1), Unmark clears one
// slot, and marks survive until the next Reset.
func TestMarksReset(t *testing.T) {
	m := NewMarks(4)
	if !m.TryMark(2) || m.TryMark(2) {
		t.Fatal("first mark should win, second should not")
	}
	if !m.Marked(2) || m.Marked(1) {
		t.Fatal("membership wrong")
	}
	m.Unmark(2)
	if m.Marked(2) {
		t.Fatal("unmark did not clear")
	}
	if !m.TryMark(2) {
		t.Fatal("remark after unmark should win")
	}
	m.Reset()
	if m.Marked(2) {
		t.Fatal("reset did not clear")
	}
}

// TestMarksGenerationWrap: force the generation counter to wrap and
// check stale stamps cannot masquerade as current marks.
func TestMarksGenerationWrap(t *testing.T) {
	m := NewMarks(2)
	m.TryMark(0)
	m.cur = math.MaxUint32 // jump to the wrap boundary
	m.gen[1].Store(math.MaxUint32)
	m.Reset()
	if m.Marked(0) || m.Marked(1) {
		t.Fatal("wrap leaked a stale mark")
	}
	if !m.TryMark(1) {
		t.Fatal("mark after wrap failed")
	}
}

// TestFrontierDeterministicAdvance: per-shard staging lists splice in
// shard order; sorted advance is canonical regardless of which shard
// discovered a slot.
func TestFrontierDeterministicAdvance(t *testing.T) {
	f := NewFrontier(100, 3)
	f.Add(2, 7)
	f.Add(0, 42)
	f.Add(1, 3)
	f.Add(0, 7) // duplicate across shards: must dedup
	got := f.Advance(false)
	if want := []int32{42, 3, 7}; !slices.Equal(got, want) {
		t.Fatalf("unsorted advance = %v, want %v", got, want)
	}
	// After Advance the dedup set is clear: everything re-addable.
	f.Add(0, 7)
	f.Add(1, 3)
	got = f.Advance(true)
	if want := []int32{3, 7}; !slices.Equal(got, want) {
		t.Fatalf("sorted advance = %v, want %v", got, want)
	}
	if len(f.Advance(false)) != 0 {
		t.Fatal("empty advance should drain")
	}
}

// TestFrontierConcurrentAdd: racing adds across shards never lose or
// duplicate slots.
func TestFrontierConcurrentAdd(t *testing.T) {
	const n, shards = 2000, 7
	f := NewFrontier(n, shards)
	rng := rand.New(rand.NewSource(9))
	universe := make([]int32, n)
	for i := range universe {
		universe[i] = int32(i)
	}
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(n, func(i, j int) { universe[i], universe[j] = universe[j], universe[i] })
		Do(shards, func(w int) {
			// Every shard tries to add an overlapping slice of the
			// universe; dedup must keep exactly one copy of each.
			for _, v := range universe[:n/2+w*100] {
				f.Add(w, v)
			}
		})
		got := f.Advance(true)
		want := n/2 + (shards-1)*100
		if len(got) != want {
			t.Fatalf("trial %d: %d staged, want %d", trial, len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("trial %d: duplicate slot %d", trial, got[i])
			}
		}
	}
}

// TestChunksByWork: boundaries cover the items, chunks are contiguous,
// and weights balance within one max-item of even.
func TestChunksByWork(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		p := 1 + rng.Intn(9)
		items := make([]int32, n)
		w := make([]int64, n)
		var total int64
		for i := range items {
			items[i] = int32(i)
			w[i] = int64(rng.Intn(20))
			total += w[i]
		}
		b := ChunksByWork(items, p, nil, func(v int32) int64 { return w[v] })
		if len(b) != p+1 || b[0] != 0 || b[p] != n {
			t.Fatalf("trial %d: bad boundaries %v (n=%d p=%d)", trial, b, n, p)
		}
		for i := 1; i <= p; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("trial %d: non-monotone boundaries %v", trial, b)
			}
		}
		// Each chunk's weight stays under an even share plus one item.
		var maxItem int64
		for _, x := range w {
			maxItem = max(maxItem, x)
		}
		for i := 0; i < p; i++ {
			var cw int64
			for _, it := range items[b[i]:b[i+1]] {
				cw += w[it]
			}
			if cw > total/int64(p)+maxItem {
				t.Fatalf("trial %d: chunk %d weight %d exceeds share %d + max %d",
					trial, i, cw, total/int64(p), maxItem)
			}
		}
	}
}

// TestAtomicMins: the hooks install exact operands and report strict
// decreases only.
func TestAtomicMins(t *testing.T) {
	var i64 atomic.Int64
	i64.Store(10)
	if !MinInt64(&i64, 3) || MinInt64(&i64, 3) || MinInt64(&i64, 5) || i64.Load() != 3 {
		t.Fatal("MinInt64 semantics wrong")
	}
	var i32 atomic.Int32
	i32.Store(7)
	if !MinInt32(&i32, -2) || MinInt32(&i32, 0) || i32.Load() != -2 {
		t.Fatal("MinInt32 semantics wrong")
	}
	var f atomic.Uint64
	f.Store(math.Float64bits(math.Inf(1)))
	if !MinFloat64Bits(&f, 1.5) || MinFloat64Bits(&f, 1.5) || MinFloat64Bits(&f, 2.0) {
		t.Fatal("MinFloat64Bits decrease reporting wrong")
	}
	if math.Float64frombits(f.Load()) != 1.5 {
		t.Fatal("MinFloat64Bits did not install the operand exactly")
	}
	// Concurrent torture: the final value is the global min.
	var g atomic.Uint64
	g.Store(math.Float64bits(math.Inf(1)))
	Do(8, func(w int) {
		for k := 0; k < 1000; k++ {
			MinFloat64Bits(&g, float64((w*1000+k)%997)+0.25)
		}
	})
	if math.Float64frombits(g.Load()) != 0.25 {
		t.Fatalf("concurrent min = %v, want 0.25", math.Float64frombits(g.Load()))
	}
}
