// Command aapbench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports, produced
// by the harness over the synthetic dataset stand-ins.
//
// Usage:
//
//	aapbench -exp table1|fig1|fig6a..fig6h|fig6i|fig6j|fig6k|fig6l|fig7|exp2|cfcase|ingest|chaos|serve|all
//	aapbench -exp fig6b -workers 64,96,128,160,192
//	aapbench -exp fig6b -cpuprofile cpu.pprof -memprofile mem.pprof
//	aapbench -exp ingest -input graph.txt
//
// Dataset sizes scale with the AAP_SCALE environment variable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"aap/internal/harness"
)

func main() {
	// The chaos experiment's durability and self-healing sections
	// re-exec this binary as a SIGKILL victim / supervised worker host;
	// the children are selected purely by environment, so check before
	// flags.
	harness.DurableChildMain()
	harness.SuperviseChildMain()

	exp := flag.String("exp", "all", "experiment to run (table1, fig1, fig6a..fig6l, fig7, exp2, cfcase, ingest, chaos, serve, all)")
	workersFlag := flag.String("workers", "16,32,48,64", "comma-separated worker counts for figure sweeps")
	tableWorkers := flag.Int("table-workers", 32, "worker count for table1/exp2")
	input := flag.String("input", "", "edge-list file for -exp ingest (default: generated stand-ins)")
	ssspDelta := flag.Float64("sssp-delta", 0, "extra forced bucket width for the SSSP delta axis of -exp compute (0: just tiny/auto/huge)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	maxRestarts := flag.Int("max-restarts", 2, "restart budget per supervised worker host in the -exp chaos self-healing section")
	restartBackoff := flag.Duration("restart-backoff", 2*time.Millisecond, "base respawn backoff for the -exp chaos self-healing section (capped exponential, seeded jitter)")
	serveClients := flag.Int("serve-clients", 6, "closed-loop client goroutines for -exp serve")
	servePerClient := flag.Int("serve-per-client", 6, "queries each client issues back to back in -exp serve")
	flag.Parse()

	workers, err := parseInts(*workersFlag)
	if err != nil {
		fatal(err)
	}
	// fatal exits via os.Exit, which would skip deferred profile
	// flushing and leave a truncated pprof file; stop explicitly on both
	// paths instead.
	stopProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if err := run(*exp, workers, *tableWorkers, *input, *ssspDelta, *maxRestarts, *restartBackoff, *serveClients, *servePerClient); err != nil {
		stopProfile()
		fatal(err)
	}
	stopProfile()
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapbench:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(exp string, workers []int, tableWorkers int, input string, ssspDelta float64, maxRestarts int, restartBackoff time.Duration, serveClients, servePerClient int) error {
	experiments := map[string]func() (string, error){
		"table1":  func() (string, error) { return harness.Table1(tableWorkers) },
		"fig1":    harness.Fig1,
		"ingest":  func() (string, error) { return harness.Ingest(input) },
		"compute": func() (string, error) { return harness.Compute(ssspDelta) },
		"fig6i":   func() (string, error) { return harness.Fig6ScaleUp("sssp", workers) },
		"fig6j":   func() (string, error) { return harness.Fig6ScaleUp("pagerank", workers) },
		"fig6k":   func() (string, error) { return harness.Fig6k(tableWorkers, []float64{1, 3, 5, 7, 9}) },
		"fig6l":   func() (string, error) { return harness.Fig6l(workers) },
		"fig7":    harness.Fig7,
		"exp2":    func() (string, error) { return harness.Exp2Comm(tableWorkers) },
		"cfcase":  harness.CFCase,
		"chaos": func() (string, error) {
			return harness.Chaos(tableWorkers, harness.ChaosSeeds, maxRestarts, restartBackoff)
		},
		"serve": func() (string, error) {
			return harness.Serving(tableWorkers, serveClients, servePerClient)
		},
	}
	for _, p := range harness.Fig6Panels() {
		p := p
		experiments["fig6"+p.Panel] = func() (string, error) { return harness.Fig6(p, workers) }
	}

	names := []string{exp}
	if exp == "all" {
		names = []string{
			"table1", "fig1",
			"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h",
			"fig6i", "fig6j", "fig6k", "fig6l", "exp2", "fig7", "cfcase", "ingest", "compute", "chaos", "serve",
		}
	}
	for _, name := range names {
		fn, ok := experiments[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
	}
	return nil
}
