// Command simviz renders ASCII timing diagrams of simulated runs, the
// tool behind Figure 1 and Figure 7: it runs one algorithm under all four
// parallel models on a straggler-laden virtual cluster and draws each
// schedule.
//
// Usage:
//
//	simviz -exp fig1
//	simviz -exp fig7
//	simviz -algo pagerank -workers 8 -straggler 3 -slow 4
//	simviz -graph g.txt -algo sssp -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/harness"
	"aap/internal/partition"
	"aap/internal/sim"
)

func main() {
	exp := flag.String("exp", "", "predefined experiment: fig1 or fig7")
	graphPath := flag.String("graph", "", "edge-list file for custom runs (default: generated friendster stand-in)")
	algo := flag.String("algo", "pagerank", "algorithm for custom runs: sssp, cc, pagerank")
	source := flag.Int64("source", 0, "SSSP source vertex id for custom runs")
	workers := flag.Int("workers", 8, "number of workers")
	straggler := flag.Int("straggler", 0, "index of the straggler worker")
	slow := flag.Float64("slow", 4, "straggler slowdown factor")
	width := flag.Int("width", 72, "diagram width in columns")
	flag.Parse()

	switch *exp {
	case "fig1":
		out, err := harness.Fig1()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	case "fig7":
		out, err := harness.Fig7()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	var ds harness.Dataset
	if *graphPath != "" {
		st, err := os.Stat(*graphPath)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		g, err := graph.ReadEdgeListFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		secs := time.Since(t0).Seconds()
		fmt.Printf("loaded %s in %.3fs (%s)\n",
			*graphPath, secs, graph.Throughput(st.Size(), g.NumEdges(), secs))
		ds = harness.Dataset{Name: filepath.Base(*graphPath), Graph: g}
	} else {
		ds = harness.FriendsterSim(harness.Scale())
	}
	ds.Source = graph.VertexID(*source)
	if *algo == "sssp" {
		if _, ok := ds.Graph.IndexOf(ds.Source); !ok {
			fmt.Fprintf(os.Stderr, "simviz: warning: source vertex %d not in the graph; all distances stay Inf\n", *source)
		}
	}
	t0 := time.Now()
	p, err := partition.Build(ds.Graph, *workers, partition.BFSLocality{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("partitioned %s (%d vertices, %d edges) into %d fragments in %.3fs\n\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), *workers, time.Since(t0).Seconds())
	speed := make([]float64, *workers)
	for i := range speed {
		speed[i] = 1
	}
	if *straggler >= 0 && *straggler < *workers {
		speed[*straggler] = *slow
	}
	for _, m := range []core.Mode{core.AAP, core.BSP, core.AP, core.SSP} {
		cfg := sim.Config{Mode: m, Speed: speed, Trace: true, Staleness: 2}
		var trace []sim.Interval
		var seconds float64
		switch *algo {
		case "sssp":
			res, err := sim.Run(p, sssp.Job(ds.Source), cfg)
			if err != nil {
				fatal(err)
			}
			trace, seconds = res.Trace, res.Stats.Seconds
		case "cc":
			res, err := sim.Run(p, cc.Job(), cfg)
			if err != nil {
				fatal(err)
			}
			trace, seconds = res.Trace, res.Stats.Seconds
		case "pagerank":
			res, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), cfg)
			if err != nil {
				fatal(err)
			}
			trace, seconds = res.Trace, res.Stats.Seconds
		default:
			fatal(fmt.Errorf("unknown algorithm %q", *algo))
		}
		fmt.Printf("== %s: makespan %.2f virtual seconds ==\n", m, seconds)
		fmt.Print(sim.RenderTrace(trace, *workers, *width))
		fmt.Print(sim.TraceSummary(trace, *workers))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simviz:", err)
	os.Exit(1)
}
