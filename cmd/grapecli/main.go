// Command grapecli runs a PIE job over an edge-list graph file under a
// chosen parallel model, the end-user entry point of Fig 5's
// architecture.
//
// Usage:
//
//	grapecli -graph g.txt -algo sssp -source 0 -workers 8 -mode aap
//	grapecli -graph g.txt -algo sssp -sssp-kernel buckets -delta 2.5
//	grapecli -graph g.txt -algo cc -mode bsp -out cids.txt
//	grapecli -graph g.txt -algo pagerank -mode ap
//	grapecli -graph g.txt -algo sssp -checkpoint-every 1 -fault-seed 42
//	grapecli -graph g.txt -algo cc -transport tcp
//	grapecli -graph g.txt -algo sssp -checkpoint-dir /tmp/ckpt
//	grapecli -graph g.txt -algo sssp -checkpoint-dir /tmp/ckpt -resume
//	grapecli -graph g.txt -algo sssp -remote-workers 1,2 -max-restarts 2
//
// Client mode runs queries against a resident graped server instead of
// loading a graph locally (-graph is not needed; -out lines carry the
// same external vertex ids a local run writes):
//
//	grapecli -connect 127.0.0.1:7700 -algo sssp -source 3
//	grapecli -connect 127.0.0.1:7700 -algo recommend -user 2 -topk 5
//	grapecli -connect 127.0.0.1:7700 -algo stats
//
// Exit codes:
//
//	0  run completed (recovered runs included — restarts, failbacks and
//	   degraded durability are reported on stdout, not failures)
//	1  any other error (bad flags, unreadable graph, failed run/query)
//	3  -resume found no usable sealed epoch in -checkpoint-dir
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/checkpoint"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/serve"
	"aap/internal/supervise"
	"aap/internal/transport"
)

// serveCfg carries the internal -serve-worker child mode: when the
// supervisor re-execs grapecli as a worker host, execute serves the
// fragment over the plane instead of running the job.
var serveCfg struct {
	worker int
	addr   string
	inc    uint64
}

func main() {
	graphPath := flag.String("graph", "", "edge-list graph file (see graph.WriteEdgeList)")
	algo := flag.String("algo", "sssp", "algorithm: sssp, cc, pagerank")
	source := flag.Int64("source", 0, "SSSP source vertex id")
	delta := flag.Float64("delta", 0, "SSSP delta-stepping bucket width (0: auto-tune from mean edge weight)")
	ssspKernel := flag.String("sssp-kernel", "auto", "SSSP kernel: auto, ref, frontier, buckets")
	workers := flag.Int("workers", 8, "number of virtual workers (fragments)")
	modeName := flag.String("mode", "aap", "parallel model: aap, bsp, ap, ssp, hsync")
	staleness := flag.Int("staleness", 2, "SSP staleness bound c")
	strategy := flag.String("partition", "bfs", "partition strategy: hash, range, bfs")
	out := flag.String("out", "", "write per-vertex results to this file (default stdout summary only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "seal a Chandy-Lamport snapshot every N incremental rounds (0: checkpointing off)")
	faultSeed := flag.Int64("fault-seed", 0, "seeded chaos run: kill worker seed%workers at its first incremental round and recover (0: no faults; implies -checkpoint-every 1)")
	transportName := flag.String("transport", "inproc", "message plane: inproc, tcp (loopback TCP with codec-encoded batches)")
	checkpointDir := flag.String("checkpoint-dir", "", "tee sealed snapshots to durable records in this directory (implies -checkpoint-every 1 when unset)")
	syncEvery := flag.Int("sync-every", 1, "fsync every Nth durable record write (1: every write)")
	retain := flag.Int("retain", 3, "keep the newest K durable epochs on disk (min 2)")
	resume := flag.Bool("resume", false, "restart from the newest sealed epoch in -checkpoint-dir instead of running from scratch")
	remoteWorkers := flag.String("remote-workers", "", "comma-separated worker ids hosted in supervised child processes (grapecli re-exec'd per host, loopback TCP)")
	maxRestarts := flag.Int("max-restarts", 2, "restart budget per supervised worker host before failing the worker back to a local Program")
	restartBackoff := flag.Duration("restart-backoff", 2*time.Millisecond, "base respawn backoff (capped exponential with jitter seeded from -fault-seed)")
	serveWorker := flag.Int("serve-worker", -1, "internal: host this worker's Program against -parent-addr instead of running the job")
	parentAddr := flag.String("parent-addr", "", "internal: parent listen address for -serve-worker")
	incarnation := flag.Uint64("incarnation", 1, "internal: link incarnation announced by -serve-worker")
	connect := flag.String("connect", "", "client mode: query a graped server at this address instead of running locally")
	clientID := flag.Int("client-id", 0, "client mode endpoint id, unique per client (0: derive from pid)")
	rpcTimeout := flag.Duration("rpc-timeout", 30*time.Second, "client mode per-call timeout")
	user := flag.Int("user", 0, "client mode: user id for -algo recommend")
	topk := flag.Int("topk", 5, "client mode: recommendations for -algo recommend")
	flag.Parse()
	serveCfg.worker, serveCfg.addr, serveCfg.inc = *serveWorker, *parentAddr, *incarnation

	if *connect != "" {
		runClient(*connect, *clientID, *rpcTimeout, *algo, graph.VertexID(*source), *user, *topk, *out)
		return
	}

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	st, err := os.Stat(*graphPath)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	g, err := graph.ReadEdgeListFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	loadSecs := time.Since(t0).Seconds()
	loadRate := graph.Throughput(st.Size(), g.NumEdges(), loadSecs)

	var strat partition.Strategy
	switch *strategy {
	case "hash":
		strat = partition.Hash{}
	case "range":
		strat = partition.Range{}
	case "bfs":
		strat = partition.BFSLocality{}
	default:
		fatal(fmt.Errorf("unknown partition strategy %q", *strategy))
	}
	t0 = time.Now()
	p, err := partition.Build(g, *workers, strat)
	if err != nil {
		fatal(err)
	}
	partSecs := time.Since(t0).Seconds()

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Mode: mode, Staleness: *staleness}
	if *checkpointEvery > 0 {
		opts.Checkpoint = core.CheckpointOptions{EveryRounds: int32(*checkpointEvery)}
	}
	if *faultSeed != 0 {
		if opts.Checkpoint.EveryRounds == 0 {
			// A kill without a sealed snapshot to roll back to would
			// abort the run; recovery is the point of the flag.
			opts.Checkpoint = core.CheckpointOptions{EveryRounds: 1}
		}
		w := int64(*workers)
		victim := int(((*faultSeed % w) + w) % w)
		opts.Faults = &core.Faults{
			Seed: *faultSeed,
			Kill: &core.KillSpec{Worker: victim, Round: 1},
		}
	}
	switch *transportName {
	case "inproc":
	case "tcp":
		opts.Transport = &core.TransportOptions{TCP: true}
	default:
		fatal(fmt.Errorf("unknown transport %q", *transportName))
	}
	var sup *supervise.Supervisor
	if *remoteWorkers != "" && serveCfg.worker < 0 {
		ids, err := parseWorkerList(*remoteWorkers, *workers)
		if err != nil {
			fatal(err)
		}
		if opts.Checkpoint.EveryRounds == 0 {
			// Recovery (rejoin restore, failback) rolls back to a sealed
			// snapshot; without one a lost host forces a fresh restart.
			opts.Checkpoint = core.CheckpointOptions{EveryRounds: 1}
		}
		// Each host re-runs this same command line plus the serve-mode
		// flags; the supervisor substitutes the listen address and the
		// fencing incarnation at (re)spawn time.
		argv := append([]string{os.Args[0]}, os.Args[1:]...)
		argv = append(argv, "-serve-worker", "{worker}", "-parent-addr", "{addr}", "-incarnation", "{incarnation}")
		specs := make([]supervise.Spec, 0, len(ids))
		for _, w := range ids {
			specs = append(specs, supervise.Command(w, argv))
		}
		sup = supervise.New(supervise.Policy{
			MaxRestarts: *maxRestarts,
			Backoff:     transport.Backoff{Base: *restartBackoff, Seed: uint64(*faultSeed)},
		}, specs...)
		defer sup.Stop()
		topts := core.TransportOptions{RemoteWorkers: ids, OnListen: sup.OnListen, Supervisor: sup}
		opts.Transport = &topts
	}
	if *resume && *checkpointDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *checkpointDir != "" {
		if opts.Checkpoint.EveryRounds == 0 {
			opts.Checkpoint.EveryRounds = 1
		}
		opts.Checkpoint.Dir = *checkpointDir
		opts.Checkpoint.SyncEvery = *syncEvery
		opts.Checkpoint.Retain = *retain
	}

	var lines []string
	var stats core.RunStats
	switch *algo {
	case "sssp":
		kernel, err := sssp.ParseKernel(*ssspKernel)
		if err != nil {
			fatal(err)
		}
		cfg := sssp.Config{Source: graph.VertexID(*source), Delta: *delta, Kernel: kernel}
		res := execute(p, sssp.JobConfig(cfg), opts, *resume)
		stats = res.Stats
		for v, d := range res.Values {
			lines = append(lines, fmt.Sprintf("%d %g", p.G.IDOf(int32(v)), d))
		}
	case "cc":
		res := execute(p, cc.Job(), opts, *resume)
		stats = res.Stats
		for v, c := range res.Values {
			lines = append(lines, fmt.Sprintf("%d %d", p.G.IDOf(int32(v)), c))
		}
	case "pagerank":
		res := execute(p, pagerank.Job(pagerank.Config{}), opts, *resume)
		stats = res.Stats
		for v, s := range res.Values {
			lines = append(lines, fmt.Sprintf("%d %g", p.G.IDOf(int32(v)), s))
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("%s/%s on %s: %d vertices, %d edges, %d workers\n",
		*algo, stats.Mode, *graphPath, g.NumVertices(), g.NumEdges(), *workers)
	fmt.Printf("ingest: load %.3fs (%s), partition(%s) %.3fs\n",
		loadSecs, loadRate, p.Strategy(), partSecs)
	fmt.Printf("time %.3fs, rounds max %d, messages %d, bytes %d\n",
		stats.Seconds, stats.MaxRound, stats.TotalMsgs, stats.TotalBytes)
	if stats.Checkpoints > 0 || stats.Recoveries > 0 {
		fmt.Printf("checkpoints %d (%d bytes), recoveries %d (%.3fms quiesced)\n",
			stats.Checkpoints, stats.CheckpointBytes, stats.Recoveries, stats.RecoverySeconds*1e3)
	}
	if *resume {
		fmt.Printf("resumed from epoch %d: %d bytes read in %.1fms\n",
			stats.ResumeEpoch, stats.ResumeBytes, stats.ResumeSeconds*1e3)
	}
	if stats.DurableBytes > 0 {
		fmt.Printf("durable: %d bytes written, %d fsyncs\n", stats.DurableBytes, stats.FsyncCount)
	}
	if stats.WireBytesOut > 0 || stats.WireBytesIn > 0 {
		fmt.Printf("wire: %d bytes out, %d bytes in, %d retries, %d heartbeat timeouts\n",
			stats.WireBytesOut, stats.WireBytesIn, stats.Retries, stats.HeartbeatTimeouts)
	}
	if stats.Restarts > 0 || stats.Failbacks > 0 || stats.FreshRestarts > 0 {
		fmt.Printf("supervision: %d restarts (rejoin %.1fms), %d failbacks, %d fresh restarts\n",
			stats.Restarts, stats.RejoinSeconds*1e3, stats.Failbacks, stats.FreshRestarts)
	}
	if sup != nil {
		for _, h := range sup.Report().Hosts {
			fmt.Printf("host worker=%d: incarnation %d, %d restarts%s\n",
				h.Worker, h.Incarnation, h.Restarts, map[bool]string{true: " (budget exhausted)", false: ""}[h.Exhausted])
		}
	}
	if stats.DroppedSeals > 0 {
		fmt.Printf("warning: durable persister lagged, dropped %d sealed epochs (resume fallback widened)\n", stats.DroppedSeals)
	}
	if stats.DurableDegraded != "" {
		fmt.Printf("warning: durable checkpoints degraded, run finished non-durable: %s\n", stats.DurableDegraded)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("results written to %s\n", *out)
	}
}

// runClient executes one query against a graped serving plane and
// prints a summary (plus the values to -out if set, one "externalID
// value" line per vertex — the format local -graph runs write).
func runClient(addr string, clientID int, timeout time.Duration, algo string, source graph.VertexID, user, topk int, out string) {
	id := int32(clientID)
	if id == 0 {
		id = int32(os.Getpid()&0x3fffffff) + 1
	}
	c, err := serve.DialRPC(addr, id, timeout)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	// External vertex identifiers: fetched once so -out lines carry the
	// same ids a local -graph run writes, regardless of the server's
	// internal vertex order.
	extID := func(v int) int64 { return int64(v) }
	if out != "" && algo != "recommend" {
		ids, err := c.IDs()
		if err != nil {
			fatal(err)
		}
		extID = func(v int) int64 { return ids[v] }
	}

	var lines []string
	var meta serve.QueryMeta
	switch algo {
	case "sssp":
		dist, m, err := c.SSSP(source)
		if err != nil {
			fatal(err)
		}
		meta = m
		reached := 0
		for v, d := range dist {
			if !math.IsInf(d, 1) {
				reached++
			}
			lines = append(lines, fmt.Sprintf("%d %g", extID(v), d))
		}
		fmt.Printf("sssp from %d via %s: %d vertices, %d reached\n", source, addr, len(dist), reached)
	case "cc":
		labels, m, err := c.CC()
		if err != nil {
			fatal(err)
		}
		meta = m
		comps := make(map[int64]bool)
		for v, l := range labels {
			comps[l] = true
			lines = append(lines, fmt.Sprintf("%d %d", extID(v), l))
		}
		fmt.Printf("cc via %s: %d vertices, %d components\n", addr, len(labels), len(comps))
	case "pagerank":
		ranks, m, err := c.PageRank()
		if err != nil {
			fatal(err)
		}
		meta = m
		for v, r := range ranks {
			lines = append(lines, fmt.Sprintf("%d %g", extID(v), r))
		}
		fmt.Printf("pagerank via %s: %d vertices\n", addr, len(ranks))
	case "recommend":
		recs, m, err := c.Recommend(user, topk)
		if err != nil {
			fatal(err)
		}
		meta = m
		fmt.Printf("top %d recommendations for user %d via %s:\n", len(recs), user, addr)
		for _, rec := range recs {
			fmt.Printf("  product %-6d predicted rating %.3f\n", rec.Product, rec.Score)
			lines = append(lines, fmt.Sprintf("%d %g", rec.Product, rec.Score))
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("server %s: admitted %d, completed %d, failed %d, active %d, rejected %d\n",
			addr, st.Admitted, st.Completed, st.Failed, st.Active, st.Rejected)
		fmt.Printf("batches %d (%d queries, max batch %d), queued now %d, qps %.2f, busy %.3fs over %.3fs\n",
			st.Batches, st.BatchedQueries, st.MaxBatch, st.QueuedNow, st.QPS, st.BusySeconds, st.UpSeconds)
		return
	default:
		fatal(fmt.Errorf("unknown client algorithm %q (sssp, cc, pagerank, recommend, stats)", algo))
	}
	fmt.Printf("query %.3fs (queue wait %.3fs, batch %d, arena %d bytes, scanned %d edges)\n",
		meta.Seconds, meta.QueueWaitSeconds, meta.BatchSize, meta.ArenaBytes, meta.ScannedEdges)
	if out != "" {
		if err := os.WriteFile(out, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("results written to %s\n", out)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "aap":
		return core.AAP, nil
	case "bsp":
		return core.BSP, nil
	case "ap":
		return core.AP, nil
	case "ssp":
		return core.SSP, nil
	case "hsync":
		return core.Hsync, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// parseWorkerList parses a comma-separated list of worker ids, each in
// [0, workers).
func parseWorkerList(s string, workers int) ([]int, error) {
	var ids []int
	for _, f := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad worker id %q in -remote-workers", f)
		}
		if id < 0 || id >= workers {
			return nil, fmt.Errorf("-remote-workers id %d outside [0, %d)", id, workers)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// execute runs (or resumes) one job — or, in the internal -serve-worker
// child mode, hosts the worker's Program against the parent and exits.
// A resume against a directory with no decodable sealed record is its
// own failure mode — the operator should rerun without -resume — and
// gets a distinct message and exit code 3 so scripts can tell it apart
// from an ordinary failed run.
func execute[T any](p *partition.Partitioned, job core.Job[T], opts core.Options, resume bool) *core.Result[T] {
	if serveCfg.worker >= 0 {
		if serveCfg.addr == "" {
			fatal(fmt.Errorf("-serve-worker requires -parent-addr"))
		}
		topts := core.TransportOptions{Incarnation: serveCfg.inc}
		if err := core.ServeWorker(p, job, serveCfg.worker, serveCfg.addr, topts); err != nil {
			fatal(err)
		}
		os.Exit(0)
	}
	var res *core.Result[T]
	var err error
	if resume {
		res, err = core.Resume(p, job, opts)
	} else {
		res, err = core.Run(p, job, opts)
	}
	if err != nil {
		if errors.Is(err, checkpoint.ErrNoSealedEpoch) {
			fmt.Fprintf(os.Stderr, "grapecli: nothing to resume: no usable sealed epoch in %s (run without -resume to start fresh)\n",
				opts.Checkpoint.Dir)
			os.Exit(3)
		}
		fatal(err)
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grapecli:", err)
	os.Exit(1)
}
