// Command graped is the resident graph serving daemon: it loads (or
// generates) a graph once, builds the shared immutable plane, and hosts
// it behind the serving RPC plane so many clients can run queries
// against one Session concurrently — the serving-plane counterpart of
// grapecli's one-shot runs.
//
// Usage:
//
//	graped -graph g.txt -listen 127.0.0.1:7700
//	graped -gen powerlaw:5000:8:7 -listen 127.0.0.1:0 -addr-file /tmp/addr
//	graped -gen ratings:500:60:10:4:9 -cf-epochs 12   # SSSP + Recommend
//	graped -graph g.txt -max-inflight 4 -batch-window 2ms -batch-max 8
//
// The bound address is printed on stdout (and written to -addr-file
// when set) once the server is accepting queries; per-query serving
// metrics are logged to stderr. SIGINT/SIGTERM drains and exits 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aap/internal/algo/cf"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/serve"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list graph file to serve")
	useMmap := flag.Bool("mmap", false, "load -graph via mmap instead of streaming reads (falls back when unmappable)")
	genSpec := flag.String("gen", "", "generate the served graph: powerlaw:N:avgdeg:seed, grid:rows:cols:seed, ratings:users:products:peruser:rank:seed")
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to serve on (port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once serving")
	workers := flag.Int("workers", 4, "fragments of the shared plane")
	strategy := flag.String("partition", "hash", "partition strategy: hash, range, bfs")
	modeName := flag.String("mode", "aap", "engine mode for query runs: aap, bsp, ap, ssp, hsync")
	maxInflight := flag.Int("max-inflight", 4, "concurrent engine runs")
	queueDepth := flag.Int("queue-depth", 64, "queries allowed to wait beyond the in-flight cap")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "SSSP batching window (0 disables batching)")
	batchMax := flag.Int("batch-max", 8, "max sources per batched SSSP run")
	njobs := flag.Int("njobs", 0, "engine compute parallelism per run (0: GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "per-query engine deadline (0: none)")
	pagerankTol := flag.Float64("pagerank-tol", 1e-8, "PageRank query tolerance")
	cfEpochs := flag.Int("cf-epochs", 10, "CF training epochs for -gen ratings graphs")
	rpcWorkers := flag.Int("rpc-workers", 0, "RPC handler pool size (0: in-flight cap + queue depth)")
	flag.Parse()

	logger := log.New(os.Stderr, "graped ", log.LstdFlags|log.Lmicroseconds)

	g, cfCfg, err := loadGraph(*graphPath, *genSpec, *cfEpochs, *useMmap)
	if err != nil {
		fatal(err)
	}
	var strat partition.Strategy
	switch *strategy {
	case "hash":
		strat = partition.Hash{}
	case "range":
		strat = partition.Range{}
	case "bfs":
		strat = partition.BFSLocality{}
	default:
		fatal(fmt.Errorf("unknown partition strategy %q", *strategy))
	}
	p, err := partition.Build(g, *workers, strat)
	if err != nil {
		fatal(err)
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	opts := []serve.Option{
		serve.WithMaxInflight(*maxInflight),
		serve.WithQueueDepth(*queueDepth),
		serve.WithBatchWindow(*batchWindow),
		serve.WithBatchMax(*batchMax),
		serve.WithNJobs(*njobs),
		serve.WithDeadline(*deadline),
		serve.WithMode(mode),
		serve.WithPageRankTol(*pagerankTol),
		serve.WithLogger(logger),
	}
	if cfCfg != nil {
		opts = append(opts, serve.WithCF(*cfCfg))
	}
	srv := serve.New(p, opts...)
	rs, err := serve.ListenRPC(srv, *listen, *rpcWorkers)
	if err != nil {
		fatal(err)
	}
	logger.Printf("serving %d vertices, %d edges, %d fragments on %s",
		g.NumVertices(), g.NumEdges(), *workers, rs.Addr())
	fmt.Printf("graped: listening on %s\n", rs.Addr())
	if *addrFile != "" {
		// Write-then-rename so a polling client never reads a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(rs.Addr()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := srv.Stats()
	logger.Printf("shutting down: admitted=%d completed=%d failed=%d rejected=%d batches=%d batched_queries=%d max_batch=%d qps=%.2f",
		st.Admitted, st.Completed, st.Failed, st.Rejected, st.Batches, st.BatchedQueries, st.MaxBatch, st.QPS)
	if err := rs.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
}

// loadGraph resolves -graph / -gen into the served graph, plus a CF
// config when the graph is a generated rating graph.
func loadGraph(path, spec string, cfEpochs int, useMmap bool) (*graph.Graph, *cf.Config, error) {
	switch {
	case path != "" && spec != "":
		return nil, nil, fmt.Errorf("-graph and -gen are mutually exclusive")
	case path != "":
		read := graph.ReadEdgeListFile
		if useMmap {
			read = graph.ReadEdgeListFileMmap
		}
		g, err := read(path)
		return g, nil, err
	case spec == "":
		return nil, nil, fmt.Errorf("one of -graph or -gen is required")
	}
	parts := strings.Split(spec, ":")
	argN := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("-gen %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "powerlaw":
		n, err1 := argN(1)
		deg, err2 := argN(2)
		seed, err3 := argN(3)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, nil, err
		}
		return gen.PowerLaw(n, float64(deg), 2.1, true, int64(seed)), nil, nil
	case "grid":
		rows, err1 := argN(1)
		cols, err2 := argN(2)
		seed, err3 := argN(3)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, nil, err
		}
		return gen.Grid(rows, cols, int64(seed)), nil, nil
	case "ratings":
		users, err1 := argN(1)
		products, err2 := argN(2)
		perUser, err3 := argN(3)
		rank, err4 := argN(4)
		seed, err5 := argN(5)
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			return nil, nil, err
		}
		r := gen.Bipartite(users, products, perUser, rank, 1.0, int64(seed))
		// Planted ratings are dot products plus noise and can dip to
		// zero or below; SSSP's weight validation (and any meaningful
		// shortest path) needs positive weights, so serving clamps them.
		// Recommendations are unaffected: training reads the same
		// clamped ratings every run, and serving equivalence is defined
		// over the graph as served.
		clampWeightsPositive(r.G)
		cfg := cf.Config{Users: users, Products: products, Rank: rank, Epochs: cfEpochs, Seed: int64(seed)}
		return r.G, &cfg, nil
	default:
		return nil, nil, fmt.Errorf("unknown -gen kind %q", parts[0])
	}
}

// clampWeightsPositive raises every edge weight to at least 0.01, in
// place, before the graph is shared. Only used at startup.
func clampWeightsPositive(g *graph.Graph) {
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ws := g.OutWeights(v)
		for i, w := range ws {
			if !(w > 0.01) {
				ws[i] = 0.01
			}
		}
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "aap":
		return core.AAP, nil
	case "bsp":
		return core.BSP, nil
	case "ap":
		return core.AP, nil
	case "ssp":
		return core.SSP, nil
	case "hsync":
		return core.Hsync, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graped:", err)
	os.Exit(1)
}
