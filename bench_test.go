// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7 and Appendix B) as Go benchmarks. Each benchmark
// prints the same rows or series the paper reports (once per run) and
// reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Dataset sizes scale with AAP_SCALE.
package bench

import (
	"fmt"
	"sync"
	"testing"

	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/harness"
	"aap/internal/sim"
)

// printOnce prints an experiment report a single time across benchmark
// iterations and re-runs.
var printed sync.Map

func report(b *testing.B, name, out string) {
	b.Helper()
	if _, dup := printed.LoadOrStore(name, true); !dup {
		fmt.Printf("\n==== %s ====\n%s\n", name, out)
	}
}

// workerSweep is the scaled-down worker axis of the Fig 6 panels (the
// paper uses 64..192 on a 20-server cluster).
var workerSweep = []int{16, 32, 48}

func BenchmarkTable1(b *testing.B) {
	if testing.Short() {
		// Table 1 drives the real concurrent engine at 32 virtual
		// workers across every mode; on boxes with very few cores the
		// AAP pagerank run can hit the engine's 5-minute ceiling
		// (pre-existing since the seed). The CI bench smoke passes
		// -short and skips it.
		b.Skip("skipping full concurrent-engine Table 1 in -short mode")
	}
	for i := 0; i < b.N; i++ {
		out, err := harness.Table1(32)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Table 1", out)
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 1", out)
	}
}

// benchPanel runs one Fig 6 worker sweep.
func benchPanel(b *testing.B, idx int) {
	b.Helper()
	panel := harness.Fig6Panels()[idx]
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig6(panel, workerSweep)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 6("+panel.Panel+")", out)
	}
}

func BenchmarkFig6a_SSSPTraffic(b *testing.B)        { benchPanel(b, 0) }
func BenchmarkFig6b_SSSPFriendster(b *testing.B)     { benchPanel(b, 1) }
func BenchmarkFig6c_CCTraffic(b *testing.B)          { benchPanel(b, 2) }
func BenchmarkFig6d_CCFriendster(b *testing.B)       { benchPanel(b, 3) }
func BenchmarkFig6e_PageRankFriendster(b *testing.B) { benchPanel(b, 4) }
func BenchmarkFig6f_PageRankUKWeb(b *testing.B)      { benchPanel(b, 5) }
func BenchmarkFig6g_CFMovieLens(b *testing.B)        { benchPanel(b, 6) }
func BenchmarkFig6h_CFNetflix(b *testing.B)          { benchPanel(b, 7) }

func BenchmarkFig6i_ScaleUpSSSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig6ScaleUp("sssp", []int{16, 24, 32, 40})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 6(i)", out)
	}
}

func BenchmarkFig6j_ScaleUpPageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig6ScaleUp("pagerank", []int{16, 24, 32, 40})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 6(j)", out)
	}
}

func BenchmarkFig6k_PartitionSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig6k(16, []float64{1, 3, 5, 7, 9})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 6(k)", out)
	}
}

func BenchmarkFig6l_LargeScaleSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig6l([]int{32, 48, 64})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 6(l)", out)
	}
}

func BenchmarkExp2_Communication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Exp2Comm(32)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Exp-2", out)
	}
}

func BenchmarkFig7_PageRankCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 7", out)
	}
}

func BenchmarkCFCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.CFCase()
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Appendix B CF", out)
	}
}

// BenchmarkEngineSSSP measures raw concurrent-engine throughput (not a
// paper figure; a sanity benchmark of the real engine).
func BenchmarkEngineSSSP(b *testing.B) {
	ds := harness.FriendsterSim(1)
	p, err := harness.SkewPartition(ds, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(p, sssp.Job(ds.Source), core.Options{Mode: core.AAP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorPageRank measures virtual-time simulator throughput.
func BenchmarkSimulatorPageRank(b *testing.B) {
	ds := harness.FriendsterSim(1)
	p, err := harness.SkewPartition(ds, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{Mode: core.AAP}); err != nil {
			b.Fatal(err)
		}
	}
}
