// Roadnet: shortest paths over a road network with a straggler, the
// traffic workload of the paper's evaluation.
//
// The example generates a grid road network (the stand-in for the US
// road graph), partitions it with a deliberately skewed partitioner so
// one worker holds far more road segments than the rest, and compares
// the four parallel models on the virtual-time simulator — the same
// methodology as Figure 6(k). It prints the timing diagram of the AAP
// run so the straggler's accumulated rounds are visible.
package main

import (
	"fmt"
	"log"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
	"aap/internal/sim"
)

func main() {
	g := gen.Grid(120, 120, 7)
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumVertices(), g.NumEdges())

	p, err := partition.Build(g, 8, partition.Skewed{Ratio: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition skew r = %.1f across %d workers\n\n", p.Skew(), p.M)

	var aapTrace []sim.Interval
	for _, mode := range []core.Mode{core.AAP, core.BSP, core.AP, core.SSP} {
		res, err := sim.Run(p, sssp.Job(0), sim.Config{Mode: mode, Staleness: 2, Trace: mode == core.AAP})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s time %7.3f virtual s, rounds max %2d, comm %6.2f MB\n",
			mode, res.Stats.Seconds, res.Stats.MaxRound, float64(res.Stats.TotalBytes)/(1<<20))
		if mode == core.AAP {
			aapTrace = res.Trace
		}
	}
	fmt.Println("\nAAP schedule ('#' computing, '.' waiting):")
	fmt.Print(sim.RenderTrace(aapTrace, p.M, 72))
}
