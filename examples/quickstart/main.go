// Quickstart: parallelize a sequential graph algorithm with the PIE
// model and run it under AAP.
//
// The example builds a small weighted graph, partitions it into four
// fragments, and runs single-source shortest paths — Dijkstra's
// algorithm as PEval, its bounded-incremental variant as IncEval, min as
// the aggregate function — under each of the four parallel models,
// showing they all converge to the same answer (the Church-Rosser
// property of Theorem 2).
package main

import (
	"fmt"
	"log"

	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/graph"
	"aap/internal/partition"
)

func main() {
	// A weighted road-trip graph: cities 0..7 with highway distances.
	b := graph.NewBuilder(true)
	b.SetWeighted()
	type road struct {
		from, to graph.VertexID
		km       float64
	}
	for _, r := range []road{
		{0, 1, 4}, {0, 2, 2}, {1, 2, 5}, {1, 3, 10},
		{2, 4, 3}, {4, 3, 4}, {3, 5, 11}, {4, 5, 8},
		{5, 6, 2}, {4, 6, 12}, {6, 7, 1}, {3, 7, 9},
	} {
		b.AddWeightedEdge(r.from, r.to, r.km)
	}
	g := b.Build()

	// Partition into 4 fragments; each runs on its own virtual worker.
	p, err := partition.Build(g, 4, partition.Hash{})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []core.Mode{core.AAP, core.BSP, core.AP, core.SSP} {
		res, err := core.Run(p, sssp.Job(0), core.Options{Mode: mode, Staleness: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s rounds=%d msgs=%d  distances:", mode, res.Stats.MaxRound, res.Stats.TotalMsgs)
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Printf(" %d:%g", p.G.IDOf(int32(v)), res.Values[v])
		}
		fmt.Println()
	}
}
