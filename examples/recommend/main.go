// Recommend: collaborative filtering on a rating graph — the
// movieLens/Netflix workload of Section 5.2.
//
// The example generates a bipartite rating graph with planted low-rank
// structure, trains latent factors with distributed SGD under AAP with
// bounded staleness, evaluates holdout RMSE against the noise floor, and
// produces top-N recommendations for one user.
package main

import (
	"fmt"
	"log"
	"sort"

	"aap/internal/algo/cf"
	"aap/internal/algo/ref"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/partition"
)

func main() {
	const (
		users    = 2000
		products = 300
		rank     = 8
	)
	r := gen.Bipartite(users, products, 15, rank, 0.9, 99)
	fmt.Printf("ratings: %d train, %d holdout (%d users x %d products)\n\n",
		len(r.TrainEdges), len(r.HoldoutEdges), users, products)

	p, err := partition.Build(r.G, 8, partition.Hash{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := cf.Config{Users: users, Products: products, Rank: rank, Epochs: 30, Seed: 3}
	res, err := core.Run(p, cf.Job(cfg), core.Options{Mode: core.AAP, Staleness: 4})
	if err != nil {
		log.Fatal(err)
	}
	uf, pf := cf.Factors(p, res.Values, cfg)

	fmt.Printf("trained in %.3fs, %d total worker rounds, %.2f MB shipped\n",
		res.Stats.Seconds, res.Stats.SumRounds, float64(res.Stats.TotalBytes)/(1<<20))
	fmt.Printf("holdout RMSE %.3f (rating noise sigma is 0.1)\n\n",
		ref.RMSE(users, uf, pf, r.HoldoutEdges))

	// Recommend unseen products for user 0.
	seen := map[int]bool{}
	for _, e := range r.TrainEdges {
		if e.Src == 0 {
			seen[int(e.Dst)-users] = true
		}
	}
	type rec struct {
		product int
		score   float64
	}
	var recs []rec
	for pid := 0; pid < products; pid++ {
		if !seen[pid] {
			recs = append(recs, rec{pid, ref.Dot(uf[0], pf[pid])})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Println("top recommendations for user 0:")
	for _, rc := range recs[:5] {
		fmt.Printf("  product %-4d predicted rating %.2f\n", rc.product, rc.score)
	}
}
