// Social: community and influence analysis on a social network — the
// Friendster-style workload of the paper's introduction.
//
// The example generates a power-law social graph, then runs connected
// components (community detection) and PageRank (influence ranking)
// under AAP on the concurrent engine, reporting the communication the
// incremental IncEval saves compared to a vertex-centric baseline on the
// same graph.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"aap/internal/algo/cc"
	"aap/internal/algo/pagerank"
	"aap/internal/core"
	"aap/internal/gen"
	"aap/internal/graph"
	"aap/internal/partition"
	"aap/internal/vcentric"
)

func main() {
	g := gen.PowerLaw(20000, 8, 2.1, false, 42)
	fmt.Printf("social network: %d users, %d follows\n", g.NumVertices(), g.NumEdges())

	// Round-trip through the on-disk format: production inputs arrive as
	// edge-list files, so run the same bytes→graph path — the chunked
	// parallel loader — and continue on the reloaded graph.
	f, err := os.CreateTemp("", "social-sim-*.txt")
	if err != nil {
		log.Fatal(err)
	}
	path := f.Name()
	defer os.Remove(path)
	// log.Fatal exits without running deferred cleanup, so failures
	// after this point remove the temp file explicitly.
	fatal := func(err error) {
		os.Remove(path)
		log.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	g, err = graph.ReadEdgeListFile(path)
	if err != nil {
		fatal(err)
	}
	secs := time.Since(t0).Seconds()
	fmt.Printf("reloaded from disk: %.1f MB in %.3fs (%s)\n\n",
		float64(fi.Size())/(1<<20), secs, graph.Throughput(fi.Size(), g.NumEdges(), secs))

	und := graph.AsUndirected(g)
	p, err := partition.Build(und, 8, partition.BFSLocality{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Communities via CC.
	res, err := core.Run(p, cc.Job(), core.Options{Mode: core.AAP})
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int64]int{}
	for _, cid := range res.Values {
		sizes[cid]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("communities: %d components, largest holds %.1f%% of users\n",
		len(sizes), 100*float64(largest)/float64(und.NumVertices()))
	fmt.Printf("  GRAPE+ CC: %.3fs, %d messages, %.2f MB shipped\n\n",
		res.Stats.Seconds, res.Stats.TotalMsgs, float64(res.Stats.TotalBytes)/(1<<20))

	// Influence via PageRank on the directed graph.
	pd, err := partition.Build(g, 8, partition.BFSLocality{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pr, err := core.Run(pd, pagerank.Job(pagerank.Config{Tol: 1e-6}), core.Options{Mode: core.AAP})
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		id    graph.VertexID
		score float64
	}
	top := make([]ranked, 0, pd.G.NumVertices())
	for v, s := range pr.Values {
		top = append(top, ranked{pd.G.IDOf(int32(v)), s})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].score > top[j].score })
	fmt.Println("top influencers (PageRank under AAP):")
	for _, r := range top[:5] {
		fmt.Printf("  user %-6d score %.2f\n", r.id, r.score)
	}
	fmt.Printf("  GRAPE+ PageRank: %.3fs, %.2f MB shipped\n\n", pr.Stats.Seconds, float64(pr.Stats.TotalBytes)/(1<<20))

	// The vertex-centric baseline ships one message per edge per update.
	_, st, err := vcentric.Run(g, vcentric.PageRankProgram{Tol: 1e-6}, vcentric.Options{Mode: vcentric.Async, Shards: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex-centric async PageRank on the same graph: %.3fs, %.2f MB shipped (%0.fx the traffic)\n",
		st.Seconds, float64(st.Bytes)/(1<<20), float64(st.Bytes)/float64(pr.Stats.TotalBytes))
}
