module aap

go 1.24
