package bench

import (
	"fmt"
	"testing"

	"aap/internal/algo/pagerank"
	"aap/internal/algo/sssp"
	"aap/internal/core"
	"aap/internal/harness"
	"aap/internal/partition"
	"aap/internal/sim"
)

// BenchmarkAblationLFloor sweeps the user bound L⊥ of the AAP controller
// (the paper lets users set it to start stale-computation reduction
// early; Appendix B uses 60% of the worker count for CF).
func BenchmarkAblationLFloor(b *testing.B) {
	ds := harness.FriendsterSim(1)
	p, err := harness.SkewPartition(ds, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out := "PageRank on friendster-sim, 16 workers, AAP with varying L⊥\n"
		for _, lf := range []int{0, 4, 10, 16} {
			res, err := sim.Run(p, pagerank.Job(pagerank.Config{Tol: 1e-4}), sim.Config{Mode: core.AAP, LFloor: lf})
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("L⊥=%-3d time %8.2f, rounds max %d\n", lf, res.Stats.Seconds, res.Stats.MaxRound)
		}
		report(b, "Ablation: L⊥", out)
	}
}

// BenchmarkAblationPartitioner compares partition strategies under AAP —
// the Section 2 remark that strategy choice changes skew and hence AAP's
// headroom, without affecting correctness.
func BenchmarkAblationPartitioner(b *testing.B) {
	ds := harness.FriendsterSim(1)
	strategies := []partition.Strategy{
		partition.Hash{},
		partition.Range{},
		partition.BFSLocality{Seed: 1},
		partition.Skewed{Ratio: 5, Seed: 1},
	}
	for i := 0; i < b.N; i++ {
		out := "SSSP on friendster-sim, 16 workers, AAP under each partitioner\n"
		for _, s := range strategies {
			p, err := partition.Build(ds.Graph, 16, s)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(p, sssp.Job(ds.Source), sim.Config{Mode: core.AAP})
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("%-8s skew %5.2f  time %8.2f  comm %7.2f MB\n",
				s.Name(), p.Skew(), res.Stats.Seconds, float64(res.Stats.TotalBytes)/(1<<20))
		}
		report(b, "Ablation: partitioner", out)
	}
}

// BenchmarkAblationIncEval quantifies the incremental-evaluation design
// choice: AAP with the bounded-incremental SSSP IncEval against the
// vertex-centric label-correcting equivalent (which recomputes from
// per-vertex messages), the Exp-1 explanation for the GRAPE+ gap.
func BenchmarkAblationIncEval(b *testing.B) {
	ds := harness.TrafficSim(1)
	p, err := harness.SkewPartition(ds, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, sssp.Job(ds.Source), sim.Config{Mode: core.AAP})
		if err != nil {
			b.Fatal(err)
		}
		out := fmt.Sprintf("fragment-centric incremental SSSP: work %d units, %d msgs\n",
			res.Stats.TotalWork, res.Stats.TotalMsgs)
		report(b, "Ablation: incremental IncEval (compare vcentric rows in Table 1)", out)
		b.ReportMetric(float64(res.Stats.TotalWork), "work-units")
	}
}
